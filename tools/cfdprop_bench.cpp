// cfdprop_bench: the scenario workload harness (a cbench for cover
// serving). One driver binary, seven seeded workloads, three serving
// paths:
//
//   cfdprop_bench [--workload NAME|all]
//                 [--path inproc|tcp|routed|both|all]
//                 [--tenants N] [--clients N] [--rounds N] [--seed N]
//                 [--batch N] [--burst N] [--max-inflight N]
//                 [--max-queue N] [--cfds N] [--views N] [--threads N]
//                 [--dispatchers N] [--shards N] [--io-timeout MS]
//                 [--snapshot-dir DIR] [--json PATH] [--quiet]
//                 [--trace-shift K] [--slow-threshold-us N] [--trace-seed N]
//
// Workloads: hit-heavy, churn-heavy, union-heavy, tenant-churn,
// burst-reject, snapshot-restart, mixed (src/gen/workload.h). Paths:
// inproc (CatalogService direct), tcp (one loopback CoverServer),
// routed (--shards loopback CoverServers behind a CoverRouter — the
// routed runs additionally live-migrate every tenant once and report
// the migration rate). `both` = inproc + tcp (the historical pair),
// `all` adds routed. Each run prints one summary line — covers/s plus
// p50/p95/p99 batch latency (obs::Histogram percentiles) — and, with
// --json, every report lands in a machine-readable file the CI diffs
// against BENCH_workloads.json.
//
// Tracing: --trace-shift K installs the runner's process tracer at 1
// in 2^K sampling (see src/obs/trace.h); the per-stage latency
// breakdown it yields — p50/p95/p99 per span name (rpc, route, decode,
// admission, queue_wait, dispatch, propagate, compute, ...) — is
// printed under each summary line and lands in the --json report as a
// "stages" array. --slow-threshold-us arms slow-request capture (the
// report carries the count).
//
// Determinism: the same --seed produces byte-identical request streams
// (the JSON carries the stream fingerprint), and burst-reject's
// admit/reject pattern is identical on every path — asserted by
// tests/workload_test.cc and re-checked by the CI cbench job.
//
// Spilling workloads (snapshot-restart, tenant-churn) write snapshots
// under --snapshot-dir (default ./cbench_snapshots), in a per-run
// subdirectory so no path warm-starts from another's files.
//
// Exit status: 0 when every selected run completed, 1 on usage or
// setup errors.

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/gen/workload.h"
#include "src/workload/runner.h"

namespace {

using cfdprop::Result;
using cfdprop::Status;
using cfdprop::gen::AllWorkloadKinds;
using cfdprop::gen::BuildWorkloadPlan;
using cfdprop::gen::ParseWorkloadKind;
using cfdprop::gen::WorkloadKind;
using cfdprop::gen::WorkloadKindName;
using cfdprop::gen::WorkloadOptions;
using cfdprop::gen::WorkloadPlan;
using cfdprop::workload::ParseRunnerPath;
using cfdprop::workload::RunnerOptions;
using cfdprop::workload::RunnerPath;
using cfdprop::workload::RunnerPathName;
using cfdprop::workload::RunWorkload;
using cfdprop::workload::WorkloadReport;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload NAME|all] [--path inproc|tcp|routed|both|all]\n"
      "          [--tenants N] [--clients N] [--rounds N] [--seed N]\n"
      "          [--batch N] [--burst N] [--max-inflight N] [--max-queue N]\n"
      "          [--cfds N] [--views N] [--threads N] [--dispatchers N]\n"
      "          [--shards N] [--io-timeout MS] [--snapshot-dir DIR]\n"
      "          [--json PATH] [--quiet]\n"
      "          [--trace-shift K] [--slow-threshold-us N] [--trace-seed N]\n"
      "workloads: hit-heavy churn-heavy union-heavy tenant-churn\n"
      "           burst-reject snapshot-restart mixed\n",
      argv0);
  return 1;
}

/// `--flag N`: digits only in [0, 2^24], exits on misuse — the same
/// contract as cfdprop_cli's ParseSizeFlag.
bool ParseSizeFlag(int argc, char** argv, int* i, const char* flag,
                   size_t* out) {
  if (std::strcmp(argv[*i], flag) != 0) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "error: %s needs a value\n", flag);
    std::exit(1);
  }
  const char* text = argv[++*i];
  const size_t kMaxFlagValue = 1u << 24;
  char* end = nullptr;
  unsigned long value = std::strtoul(text, &end, 10);
  if (*text == '\0' || end == text || *end != '\0' || *text == '-' ||
      *text == '+' || value > kMaxFlagValue) {
    std::fprintf(stderr, "error: %s needs a number in [0, %zu], got '%s'\n",
                 flag, kMaxFlagValue, text);
    std::exit(1);
  }
  *out = static_cast<size_t>(value);
  return true;
}

bool EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return true;
  std::fprintf(stderr, "error: cannot create directory %s: %s\n",
               path.c_str(), std::strerror(errno));
  return false;
}

void AppendJsonReport(std::string& out, const WorkloadReport& r) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"workload\": \"%s\", \"path\": \"%s\", \"seed\": %llu,\n"
      "     \"covers_per_sec\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f,"
      " \"p99_us\": %.1f,\n"
      "     \"requests\": %llu, \"covers_served\": %llu, \"batches\": %llu,"
      " \"errors\": %llu,\n"
      "     \"admitted\": %llu, \"rejected\": %llu, \"churn_ops\": %llu,"
      " \"reopens\": %llu, \"restored_lines\": %llu,\n"
      "     \"hit_rate_pct\": %.2f, \"elapsed_s\": %.4f,\n"
      "     \"migrations\": %llu, \"migrations_per_sec\": %.1f,"
      " \"migrated_lines\": %llu,\n"
      "     \"cover_fingerprint\": \"%llu\",\n"
      "     \"stream_fingerprint\": \"%llu\", \"admit_pattern\": \"%s\"",
      r.workload.c_str(), r.path.c_str(),
      static_cast<unsigned long long>(r.seed), r.covers_per_sec, r.p50_us,
      r.p95_us, r.p99_us, static_cast<unsigned long long>(r.requests),
      static_cast<unsigned long long>(r.covers_served),
      static_cast<unsigned long long>(r.batches),
      static_cast<unsigned long long>(r.errors),
      static_cast<unsigned long long>(r.admitted),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.churn_ops),
      static_cast<unsigned long long>(r.reopens),
      static_cast<unsigned long long>(r.restored_lines), r.hit_rate_pct,
      r.elapsed_s, static_cast<unsigned long long>(r.migrations),
      r.migrations_per_sec,
      static_cast<unsigned long long>(r.migrated_lines),
      static_cast<unsigned long long>(r.cover_fingerprint),
      static_cast<unsigned long long>(r.stream_fingerprint),
      r.admit_pattern.c_str());
  out += buf;
  // Tracing on: the per-stage latency breakdown and tracer health.
  if (!r.stages.empty() || r.spans_recorded > 0) {
    std::snprintf(buf, sizeof(buf),
                  ",\n     \"spans_recorded\": %llu, \"spans_dropped\": %llu,"
                  " \"slow_requests\": %llu,\n     \"stages\": [",
                  static_cast<unsigned long long>(r.spans_recorded),
                  static_cast<unsigned long long>(r.spans_dropped),
                  static_cast<unsigned long long>(r.slow_requests));
    out += buf;
    for (size_t i = 0; i < r.stages.size(); ++i) {
      const WorkloadReport::StageLatency& s = r.stages[i];
      std::snprintf(buf, sizeof(buf),
                    "%s\n       {\"stage\": \"%s\", \"spans\": %llu,"
                    " \"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f}",
                    i ? "," : "", s.stage.c_str(),
                    static_cast<unsigned long long>(s.spans), s.p50_us,
                    s.p95_us, s.p99_us);
      out += buf;
    }
    out += r.stages.empty() ? "]" : "\n     ]";
  }
  out += "}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_arg = "all";
  std::string path_arg = "both";
  std::string json_path;
  std::string snapshot_dir = "cbench_snapshots";
  WorkloadOptions base;
  RunnerOptions runner;
  size_t seed = base.seed, io_timeout_ms = 0;
  size_t trace_shift = 0, slow_threshold_us = 0, trace_seed = 0;
  bool trace_set = false, slow_set = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    auto int_arg = [&](const char* flag, size_t* out) {
      return ParseSizeFlag(argc, argv, &i, flag, out);
    };
    size_t max_inflight = 0, max_queue = 0;
    if (!std::strcmp(argv[i], "--workload")) {
      if (i + 1 >= argc) return Usage(argv[0]);
      workload_arg = argv[++i];
    } else if (!std::strcmp(argv[i], "--path")) {
      if (i + 1 >= argc) return Usage(argv[0]);
      path_arg = argv[++i];
    } else if (!std::strcmp(argv[i], "--json")) {
      if (i + 1 >= argc) return Usage(argv[0]);
      json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--snapshot-dir")) {
      if (i + 1 >= argc) return Usage(argv[0]);
      snapshot_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--quiet")) {
      quiet = true;
    } else if (int_arg("--tenants", &base.tenants) ||
               int_arg("--clients", &base.clients) ||
               int_arg("--rounds", &base.rounds) ||
               int_arg("--seed", &seed) ||
               int_arg("--batch", &base.batch_size) ||
               int_arg("--burst", &base.burst) ||
               int_arg("--cfds", &base.num_cfds) ||
               int_arg("--views", &base.num_views) ||
               int_arg("--threads", &runner.engine_threads) ||
               int_arg("--dispatchers", &runner.dispatcher_threads) ||
               int_arg("--shards", &runner.router_shards) ||
               int_arg("--io-timeout", &io_timeout_ms) ||
               int_arg("--trace-seed", &trace_seed)) {
      continue;
    } else if (int_arg("--trace-shift", &trace_shift)) {
      trace_set = true;
    } else if (int_arg("--slow-threshold-us", &slow_threshold_us)) {
      slow_set = true;
    } else if (int_arg("--max-inflight", &max_inflight)) {
      base.max_inflight = max_inflight;
    } else if (int_arg("--max-queue", &max_queue)) {
      base.max_queue = max_queue;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  base.seed = seed;
  runner.io_timeout = std::chrono::milliseconds(io_timeout_ms);
  if (trace_set) runner.trace_sample_shift = static_cast<int>(trace_shift);
  if (slow_set) {
    runner.slow_threshold_us = static_cast<int64_t>(slow_threshold_us);
  }
  runner.trace_seed = trace_seed;

  std::vector<WorkloadKind> kinds;
  if (workload_arg == "all") {
    kinds = AllWorkloadKinds();
  } else {
    auto kind = ParseWorkloadKind(workload_arg);
    if (!kind.ok()) {
      std::fprintf(stderr, "error: %s\n", kind.status().ToString().c_str());
      return 1;
    }
    kinds.push_back(*kind);
  }
  std::vector<RunnerPath> paths;
  if (path_arg == "both") {
    // The historical inproc+tcp pair; `all` adds the routed tier.
    paths = {RunnerPath::kInproc, RunnerPath::kTcp};
  } else if (path_arg == "all") {
    paths = {RunnerPath::kInproc, RunnerPath::kTcp, RunnerPath::kRouted};
  } else {
    auto parsed = ParseRunnerPath(path_arg);
    if (!parsed.ok()) {
      std::fprintf(stderr,
                   "error: --path wants inproc, tcp, routed, both or all\n");
      return 1;
    }
    paths = {*parsed};
  }

  std::vector<WorkloadReport> reports;
  for (WorkloadKind kind : kinds) {
    WorkloadOptions options = base;
    options.kind = kind;
    const WorkloadPlan plan = BuildWorkloadPlan(options);
    for (RunnerPath path : paths) {
      RunnerOptions run = runner;
      run.path = path;
      if (plan.needs_snapshots || path == RunnerPath::kRouted) {
        // Per-(workload, path) subdirectory: one path must not
        // warm-start from another's snapshot files. Routed runs always
        // get one — their migration epilogue spills on the source drop.
        if (!EnsureDir(snapshot_dir)) return 1;
        run.snapshot_dir = snapshot_dir + "/" +
                           std::string(WorkloadKindName(kind)) + "-" +
                           RunnerPathName(path);
        if (!EnsureDir(run.snapshot_dir)) return 1;
      }
      auto report = RunWorkload(plan, run);
      if (!report.ok()) {
        std::fprintf(stderr, "error: %s [%s]: %s\n", WorkloadKindName(kind),
                     RunnerPathName(path),
                     report.status().ToString().c_str());
        return 1;
      }
      if (!quiet) std::printf("%s\n", report->ToString().c_str());
      if (!quiet && !report->stages.empty()) {
        for (const WorkloadReport::StageLatency& s : report->stages) {
          std::printf(
              "  stage %-10s spans=%-7llu p50=%.0fus p95=%.0fus p99=%.0fus\n",
              s.stage.c_str(), static_cast<unsigned long long>(s.spans),
              s.p50_us, s.p95_us, s.p99_us);
        }
        std::printf(
            "  trace: recorded=%llu dropped=%llu slow=%llu\n",
            static_cast<unsigned long long>(report->spans_recorded),
            static_cast<unsigned long long>(report->spans_dropped),
            static_cast<unsigned long long>(report->slow_requests));
      }
      std::fflush(stdout);
      reports.push_back(std::move(report).value());
    }
  }

  if (!json_path.empty()) {
    std::string out = "{\n  \"schema\": \"cfdprop_bench/v1\",\n";
    char opts[256];
    std::snprintf(opts, sizeof(opts),
                  "  \"options\": {\"tenants\": %zu, \"clients\": %zu, "
                  "\"rounds\": %zu, \"seed\": %zu, \"batch\": %zu, "
                  "\"burst\": %zu},\n",
                  base.tenants, base.clients, base.rounds,
                  static_cast<size_t>(base.seed), base.batch_size, base.burst);
    out += opts;
    out += "  \"results\": [\n";
    for (size_t i = 0; i < reports.size(); ++i) {
      AppendJsonReport(out, reports[i]);
      out += i + 1 < reports.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    if (!quiet) std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
