// cfdprop_cli — the command-line front end of the library.
//
// Reads a specification file (see src/parser/parser.h for the syntax)
// and runs the paper's analyses:
//
//   cfdprop_cli SPEC                 run every analysis below
//   cfdprop_cli SPEC --check        decide Sigma |=V phi for each view
//                                    CFD declared in the spec
//   cfdprop_cli SPEC --cover        print a minimal propagation cover
//                                    per declared view (PropCFD_SPC)
//   cfdprop_cli SPEC --emptiness    report views that are always empty
//   cfdprop_cli SPEC --validate     evaluate views on the insert data
//                                    and report CFD violations
//
//   cfdprop_cli batch SPEC [--threads N] [--repeat K] [--cache N]
//               [--snapshot-in F] [--snapshot-out F]
//                                    serve every declared view (SPC and
//                                    SPCU/union) through the propagation
//                                    engine: registered Sigma, fingerprint
//                                    cache, worker pool. --repeat replays
//                                    the request list K times to exercise
//                                    the cache; --cache sets its capacity.
//                                    add-cfd/drop-cfd statements in the
//                                    spec are applied after the base
//                                    rounds, re-serving the round after
//                                    each mutation (selective cache
//                                    invalidation, see engine stats).
//                                    --snapshot-in warm-starts the cover
//                                    cache from a snapshot file before
//                                    serving (a mismatched/corrupt file
//                                    is rejected and the run proceeds
//                                    cold); --snapshot-out spills the
//                                    cache after the base rounds — the
//                                    state a restart wants back, before
//                                    the churn script mutates Sigma.
//
// Exit status: 0 on success, 1 on usage/parse errors, 2 when --validate
// found violations or --check found a non-propagated declared CFD.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "src/cover/propcfd_spc.h"
#include "src/data/eval.h"
#include "src/data/validate.h"
#include "src/engine/engine.h"
#include "src/parser/parser.h"
#include "src/propagation/emptiness.h"
#include "src/propagation/propagation.h"

using namespace cfdprop;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

/// Reads and parses a spec file; exits with a message via the returned
/// Status on open/parse failure.
Result<Spec> LoadSpec(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + std::string(path));
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseSpec(buffer.str());
}

/// Output-column name resolver for a view.
std::function<std::string(AttrIndex)> ViewAttrNames(const SPCUView& view) {
  const SPCView& first = view.disjuncts.front();
  return [&first](AttrIndex i) {
    return i < first.output.size() ? first.output[i].name
                                   : "#" + std::to_string(i);
  };
}

int RunCheck(Spec& spec, const PropagationOptions& options) {
  int violations = 0;
  std::printf("== propagation checks ==\n");
  if (spec.view_cfds.empty()) {
    std::printf("  (no view CFDs declared)\n");
    return 0;
  }
  for (const auto& [view_name, cfd] : spec.view_cfds) {
    const SPCUView& view = spec.views.at(view_name);
    auto r = IsPropagated(spec.catalog, view, spec.source_cfds, cfd,
                          options);
    if (!r.ok()) return Fail(r.status());
    std::string rendered = FormatCFD(cfd, spec.catalog.pool(), view_name,
                                     ViewAttrNames(view));
    std::printf("  %-60s : %s\n", rendered.c_str(),
                *r ? "PROPAGATED" : "NOT propagated");
    if (!*r) ++violations;
  }
  return violations == 0 ? 0 : 2;
}

int RunCover(Spec& spec) {
  std::printf("== minimal propagation covers ==\n");
  for (const std::string& name : spec.view_names) {
    const SPCUView& view = spec.views.at(name);
    auto result =
        PropagationCoverSPCU(spec.catalog, view, spec.source_cfds);
    if (!result.ok()) return Fail(result.status());
    std::printf("view %s (%zu CFDs%s%s):\n", name.c_str(),
                result->cover.size(),
                result->always_empty ? ", ALWAYS EMPTY" : "",
                result->truncated ? ", TRUNCATED" : "");
    for (const CFD& c : result->cover) {
      std::printf("  %s\n",
                  FormatCFD(c, spec.catalog.pool(), name,
                            ViewAttrNames(view))
                      .c_str());
    }
  }
  return 0;
}

int RunEmptiness(Spec& spec, const EmptinessOptions& options) {
  std::printf("== emptiness analysis ==\n");
  for (const std::string& name : spec.view_names) {
    auto r = IsAlwaysEmpty(spec.catalog, spec.views.at(name),
                           spec.source_cfds, options);
    if (!r.ok()) return Fail(r.status());
    std::printf("  view %-20s : %s\n", name.c_str(),
                *r ? "always empty under Sigma" : "satisfiable");
  }
  return 0;
}

int RunValidate(Spec& spec) {
  std::printf("== data validation ==\n");
  auto db = spec.MakeDatabase();
  if (!db.ok()) return Fail(db.status());

  int total_violations = 0;
  // Source CFDs against the source relations.
  for (const CFD& c : spec.source_cfds) {
    const Relation& rel = db->relation(c.relation);
    auto v = FindViolations(rel.tuples(), c, rel.schema().arity());
    if (!v.ok()) return Fail(v.status());
    if (!v->empty()) {
      total_violations += static_cast<int>(v->size());
      std::printf("  %s: %zu violation(s) on %s\n",
                  c.ToString(spec.catalog).c_str(), v->size(),
                  rel.schema().name().c_str());
    }
  }
  // View CFDs against the materialized views.
  for (const auto& [view_name, cfd] : spec.view_cfds) {
    const SPCUView& view = spec.views.at(view_name);
    auto rows = Evaluate(*db, view);
    if (!rows.ok()) return Fail(rows.status());
    auto v = FindViolations(*rows, cfd, view.OutputArity());
    if (!v.ok()) return Fail(v.status());
    if (!v->empty()) {
      total_violations += static_cast<int>(v->size());
      std::printf("  %s: %zu violation(s) on view %s (%zu rows)\n",
                  FormatCFD(cfd, spec.catalog.pool(), view_name,
                            ViewAttrNames(view))
                      .c_str(),
                  v->size(), view_name.c_str(), rows->size());
    }
  }
  if (total_violations == 0) {
    std::printf("  all declared CFDs hold on the data\n");
    return 0;
  }
  return 2;
}

int RunBatch(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s batch SPEC [--threads N] [--repeat K]"
                 " [--cache N] [--no-cache] [--quiet]"
                 " [--snapshot-in FILE] [--snapshot-out FILE]\n",
                 argv[0]);
    return 1;
  }
  auto spec = LoadSpec(argv[2]);
  if (!spec.ok()) return Fail(spec.status());

  EngineOptions options;
  size_t repeat = 1;
  bool quiet = false;
  std::string snapshot_in, snapshot_out;
  for (int i = 3; i < argc; ++i) {
    auto str_arg = [&](const char* flag, std::string* out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a path\n", flag);
        std::exit(1);
      }
      *out = argv[++i];
      return true;
    };
    if (str_arg("--snapshot-in", &snapshot_in)) continue;
    if (str_arg("--snapshot-out", &snapshot_out)) continue;
    auto int_arg = [&](const char* flag, size_t* out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(1);
      }
      // Digits only: strtoul would silently wrap '-1' to ULONG_MAX.
      const char* text = argv[++i];
      const size_t kMaxFlagValue = 1u << 24;
      char* end = nullptr;
      unsigned long value = std::strtoul(text, &end, 10);
      if (*text == '\0' || end == text || *end != '\0' || *text == '-' ||
          *text == '+' || value > kMaxFlagValue) {
        std::fprintf(stderr, "error: %s needs a number in [0, %zu], got"
                     " '%s'\n", flag, kMaxFlagValue, text);
        std::exit(1);
      }
      *out = static_cast<size_t>(value);
      return true;
    };
    if (int_arg("--threads", &options.num_threads)) continue;
    if (int_arg("--repeat", &repeat)) continue;
    if (int_arg("--cache", &options.cache_capacity)) {
      if (options.cache_capacity == 0) options.use_cache = false;
      continue;
    }
    if (!std::strcmp(argv[i], "--no-cache")) {
      options.use_cache = false;
    } else if (!std::strcmp(argv[i], "--quiet")) {
      quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  Engine engine(std::move(spec->catalog), options);
  auto sigma_id = engine.RegisterSigma(spec->source_cfds);
  if (!sigma_id.ok()) return Fail(sigma_id.status());

  // Warm start: restore cached covers spilled by a previous run. A
  // rejected file (version bump, changed Sigma, corruption) is not an
  // error — the run just serves cold, exactly as if no snapshot existed.
  if (!snapshot_in.empty()) {
    auto loaded = engine.LoadSnapshot(snapshot_in);
    if (loaded.ok()) {
      std::printf("== snapshot ==\n  loaded %s: restored=%llu "
                  "rejected=%llu\n",
                  snapshot_in.c_str(),
                  static_cast<unsigned long long>(loaded->restored),
                  static_cast<unsigned long long>(loaded->rejected));
    } else {
      std::printf("== snapshot ==\n  rejected %s: %s (restored=0)\n",
                  snapshot_in.c_str(),
                  loaded.status().ToString().c_str());
    }
  }

  // One request per declared view; the engine serves SPC and SPCU alike
  // (union requests assemble from the per-disjunct cache lines).
  std::vector<Engine::Request> round;
  std::vector<std::string> round_names;
  for (const std::string& name : spec->view_names) {
    round.push_back({spec->views.at(name), *sigma_id});
    round_names.push_back(name);
  }
  // Replay the same round `repeat` times rather than materializing
  // repeat * |round| request copies; stats aggregate across batches.
  const size_t total_requests = round.size() * repeat;
  std::vector<Result<EngineResult>> results;
  int rc = 0;
  auto start = std::chrono::steady_clock::now();
  for (size_t k = 0; k < repeat; ++k) {
    auto batch = engine.PropagateBatch(round);
    for (auto& r : batch) {
      if (!r.ok()) rc = 1;
    }
    if (k == 0) results = std::move(batch);
  }
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  auto print_result = [&](const std::string& name,
                          const Result<EngineResult>& r) {
    if (!r.ok()) {
      rc = Fail(r.status());
      return;
    }
    std::string union_info;
    if (r->disjunct_count > 1) {
      union_info = ", union " + std::to_string(r->disjunct_hits) + "/" +
                   std::to_string(r->disjunct_count) + " disjunct hits";
    }
    std::printf("view %s (%zu CFDs%s%s%s, fp=%016llx):\n", name.c_str(),
                r->cover->cover.size(),
                r->cover->always_empty ? ", ALWAYS EMPTY" : "",
                r->cover->truncated ? ", TRUNCATED" : "",
                union_info.c_str(),
                static_cast<unsigned long long>(r->fingerprint));
    if (!quiet) {
      const SPCUView& view = spec->views.at(name);
      for (const CFD& c : r->cover->cover) {
        std::printf("  %s\n",
                    FormatCFD(c, engine.catalog().pool(), name,
                              ViewAttrNames(view))
                        .c_str());
      }
    }
  };
  for (size_t i = 0; i < round.size() && i < results.size(); ++i) {
    print_result(round_names[i], results[i]);
  }
  EngineStatsSnapshot stats = engine.Stats();
  std::printf("== engine stats ==\n  %s\n", stats.ToString().c_str());
  std::printf("  batch: %zu requests in %.2f ms (%.0f covers/sec, "
              "%zu threads)\n",
              total_requests, elapsed_ms,
              elapsed_ms > 0 ? 1000.0 * total_requests / elapsed_ms : 0.0,
              // 0 and 1 both serve inline on the calling thread.
              std::max<size_t>(1, engine.options().num_threads));

  // Spill the cache now, before the churn script mutates Sigma: a
  // restart re-registers the spec's base Sigma, so this is the state it
  // can actually warm from (post-churn lines would just be rejected).
  if (!snapshot_out.empty()) {
    auto saved = engine.SaveSnapshot(snapshot_out);
    if (saved.ok()) {
      std::printf("  snapshot saved to %s (lines=%llu)\n",
                  snapshot_out.c_str(),
                  static_cast<unsigned long long>(*saved));
    } else {
      rc = Fail(saved.status());
    }
  }

  // Sigma churn script: apply each add-cfd/drop-cfd in file order and
  // re-serve the round after every step. Only the mutated sigma's cache
  // lines drop (watch invalidations in the stats); every other line
  // keeps hitting.
  for (const SigmaMutation& m : spec->sigma_mutations) {
    const RelationSchema& rel = engine.catalog().relation(m.cfd.relation);
    std::string rendered =
        FormatCFD(m.cfd, engine.catalog().pool(), rel.name(),
                  [&rel](AttrIndex a) {
                    return a < rel.arity() ? rel.attr(a).name
                                           : "#" + std::to_string(a);
                  });
    Status applied = m.add ? engine.AddCfd(*sigma_id, m.cfd)
                           : engine.RetractCfd(*sigma_id, m.cfd);
    if (!applied.ok()) {
      rc = Fail(applied);
      continue;
    }
    std::printf("== churn: applied %s-cfd (%s) ==\n", m.add ? "add" : "drop",
                rendered.c_str());
    auto batch = engine.PropagateBatch(round);
    for (size_t i = 0; i < round.size() && i < batch.size(); ++i) {
      print_result(round_names[i], batch[i]);
    }
    std::printf("  %s\n", engine.Stats().ToString().c_str());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && !std::strcmp(argv[1], "batch")) {
    return RunBatch(argc, argv);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s SPEC [--check|--cover|--emptiness|--validate]"
                 " [--general]\n",
                 argv[0]);
    return 1;
  }
  auto spec = LoadSpec(argv[1]);
  if (!spec.ok()) return Fail(spec.status());

  bool check = false, cover = false, emptiness = false, validate = false;
  bool general = false;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--check")) check = true;
    else if (!std::strcmp(argv[i], "--cover")) cover = true;
    else if (!std::strcmp(argv[i], "--emptiness")) emptiness = true;
    else if (!std::strcmp(argv[i], "--validate")) validate = true;
    else if (!std::strcmp(argv[i], "--general")) general = true;
    else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (!check && !cover && !emptiness && !validate) {
    check = cover = emptiness = validate = true;
  }

  PropagationOptions prop_options;
  prop_options.general_setting = general;
  EmptinessOptions empt_options;
  empt_options.general_setting = general;

  int rc = 0;
  auto update = [&rc](int r) { rc = std::max(rc, r); };
  if (emptiness) update(RunEmptiness(*spec, empt_options));
  if (check) update(RunCheck(*spec, prop_options));
  if (cover) update(RunCover(*spec));
  if (validate) update(RunValidate(*spec));
  return rc;
}
