// cfdprop_cli — the command-line front end of the library.
//
// Reads a specification file (see src/parser/parser.h for the syntax)
// and runs the paper's analyses:
//
//   cfdprop_cli SPEC                 run every analysis below
//   cfdprop_cli SPEC --check        decide Sigma |=V phi for each view
//                                    CFD declared in the spec
//   cfdprop_cli SPEC --cover        print a minimal propagation cover
//                                    per declared view (PropCFD_SPC)
//   cfdprop_cli SPEC --emptiness    report views that are always empty
//   cfdprop_cli SPEC --validate     evaluate views on the insert data
//                                    and report CFD violations
//
//   cfdprop_cli batch SPEC [--threads N] [--repeat K] [--cache N]
//               [--snapshot-in F] [--snapshot-out F]
//                                    serve every declared view (SPC and
//                                    SPCU/union) through the propagation
//                                    engine: registered Sigma, fingerprint
//                                    cache, worker pool. --repeat replays
//                                    the request list K times to exercise
//                                    the cache; --cache sets its capacity.
//                                    add-cfd/drop-cfd statements in the
//                                    spec are applied after the base
//                                    rounds, re-serving the round after
//                                    each mutation (selective cache
//                                    invalidation, see engine stats).
//                                    --snapshot-in warm-starts the cover
//                                    cache from a snapshot file before
//                                    serving (a mismatched/corrupt file
//                                    is rejected and the run proceeds
//                                    cold); --snapshot-out spills the
//                                    cache after the base rounds — the
//                                    state a restart wants back, before
//                                    the churn script mutates Sigma.
//                                    A `serve V1, V2, ...` statement in
//                                    the spec overrides which views make
//                                    up a serving round.
//
//   cfdprop_cli listen [--host H] [--port N] [--tenant NAME=SPEC ...]
//               [--threads N] [--dispatchers N] [--budget N]
//               [--max-inflight N] [--max-queue N] [--io-timeout MS]
//               [--snapshot-dir DIR]
//               [--interval-ms N] [--dirty N] [--metrics-dump PATH]
//               [--trace-dump PATH] [--trace-shift K]
//               [--slow-threshold-us N] [--trace-seed N]
//                                    network server mode: a CoverServer
//                                    (src/net/) in front of the same
//                                    CatalogService as `serve`. Tenants
//                                    given on the command line are
//                                    preloaded; clients can open more by
//                                    shipping spec text. Runs until a
//                                    client sends shutdown. --max-inflight/
//                                    --max-queue set the per-tenant
//                                    admission caps (0 = unlimited);
//                                    --io-timeout arms per-connection
//                                    socket deadlines in milliseconds
//                                    (0 = blocking forever) so a hung
//                                    peer costs one deadline window, not
//                                    a wedged connection thread;
//                                    --metrics-dump writes the final
//                                    metrics exposition (src/obs) to a
//                                    file on shutdown. --trace-dump
//                                    installs the process tracer
//                                    (src/obs/trace.h) and writes the
//                                    stitched span trees to a file on
//                                    shutdown — sampling everything
//                                    unless --trace-shift K narrows it
//                                    to 1 in 2^K; --slow-threshold-us
//                                    arms slow-request capture (the
//                                    slow trees print on shutdown,
//                                    sampled or not); --trace-seed
//                                    makes the span ids — and thus the
//                                    dump bytes — deterministic.
//
//   cfdprop_cli client [--host H] [--port N] --tenant NAME=SPEC [...]
//               [--rounds K] [--burst N] [--connect-timeout MS]
//               [--io-timeout MS] [--no-open] [--quiet]
//               [--stats] [--metrics] [--trace] [--shutdown]
//                                    network client mode: opens each
//                                    --tenant on the server (spec text
//                                    travels over the wire; --no-open
//                                    assumes they exist), serves --rounds
//                                    rounds of each spec's serving round,
//                                    printing first-round covers exactly
//                                    like `serve` does (the CI diffs them
//                                    byte-for-byte). --burst N pipelines
//                                    N copies of the round in one frame
//                                    to exercise admission control;
//                                    --stats prints the server's service
//                                    stats; --metrics scrapes and prints
//                                    the server's Prometheus-style text
//                                    exposition (the METRICS frame);
//                                    --connect-timeout bounds the whole
//                                    retrying Connect() and --io-timeout
//                                    each socket send/recv, both in ms,
//                                    both surfacing typed
//                                    DeadlineExceeded (0 = no deadline);
//                                    --trace samples every request at
//                                    this edge, fetches the server's
//                                    span rings afterwards (the
//                                    TRACE_DUMP frame) and prints the
//                                    stitched cross-process span trees;
//                                    --shutdown stops the server.
//
//   cfdprop_cli route --backend HOST:PORT [--backend HOST:PORT ...]
//               [--tenant NAME=SPEC ...] [--rounds K] [--vnodes N]
//               [--connect-timeout MS] [--io-timeout MS]
//               [--migrate TENANT[=SHARD] ...] [--quiet]
//               [--stats] [--metrics] [--trace] [--shutdown]
//                                    routing-tier mode: a CoverRouter
//                                    (src/net/cover_router.h) consistent-
//                                    hashes tenants across the given
//                                    backends (each a `listen` server)
//                                    and serves exactly like client mode
//                                    — covers print byte-identically, so
//                                    scripts can diff a routed cluster
//                                    against one fat server. --migrate
//                                    drains, snapshots and moves a
//                                    tenant to SHARD (default: the next
//                                    shard clockwise), printing the warm
//                                    start's restored=/rejected= line,
//                                    then re-serves and re-prints that
//                                    tenant's covers; --stats prints the
//                                    cross-shard aggregate; --metrics
//                                    merges every shard's exposition
//                                    into one scrape (shard="N"
//                                    labels); --trace samples every
//                                    request at the router edge,
//                                    fetches every shard's span rings
//                                    afterwards and prints the stitched
//                                    cross-shard span trees; --shutdown
//                                    stops every backend.
//
//   cfdprop_cli serve --tenant NAME=SPEC [--tenant NAME=SPEC ...]
//               [--rounds K] [--threads N] [--dispatchers N]
//               [--budget N] [--snapshot-dir DIR] [--interval-ms N]
//               [--dirty N] [--quiet] [--no-churn] [--metrics-dump PATH]
//                                    multi-tenant mode: each --tenant
//                                    loads one spec as a named catalog
//                                    behind one CatalogService and the
//                                    tenants' rounds are submitted as
//                                    overlapping async batches for
//                                    --rounds rounds; each tenant's
//                                    churn script then replays while
//                                    every other tenant keeps serving.
//                                    --budget is the global cover-cache
//                                    entry budget split across tenants;
//                                    --snapshot-dir enables warm starts
//                                    from (and background spills to)
//                                    per-tenant snapshot files, with the
//                                    policy knobs --interval-ms/--dirty.
//
// Exit status: 0 on success, 1 on usage/parse errors, 2 when --validate
// found violations or --check found a non-propagated declared CFD.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include <sys/stat.h>

#include <cerrno>
#include <future>
#include <thread>

#include "src/cover/propcfd_spc.h"
#include "src/data/eval.h"
#include "src/data/validate.h"
#include "src/engine/engine.h"
#include "src/net/cover_client.h"
#include "src/net/cover_router.h"
#include "src/net/cover_server.h"
#include "src/obs/trace.h"
#include "src/parser/parser.h"
#include "src/propagation/emptiness.h"
#include "src/propagation/propagation.h"
#include "src/service/catalog_service.h"

using namespace cfdprop;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

/// Reads a whole file; the network modes ship spec *text* (the server
/// parses it), the local modes parse it via LoadSpec.
Result<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Reads and parses a spec file; exits with a message via the returned
/// Status on open/parse failure.
Result<Spec> LoadSpec(const char* path) {
  CFDPROP_ASSIGN_OR_RETURN(std::string text, ReadFileText(path));
  return ParseSpec(text);
}

/// Writes the whole text to `path` (--metrics-dump). Truncates.
Status WriteFileText(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  out << text;
  out.flush();
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

/// Creates-if-missing and validates a snapshot directory — fail fast,
/// or background spills would fail silently and the serve-mode settle
/// wait would stall out with a misleading message.
bool EnsureSnapshotDir(const std::string& dir) {
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "error: cannot create snapshot dir %s: %s\n",
                 dir.c_str(), std::strerror(errno));
    return false;
  }
  struct stat st;
  if (stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    std::fprintf(stderr, "error: snapshot dir %s is not a directory\n",
                 dir.c_str());
    return false;
  }
  return true;
}

/// Output-column name resolver for a view.
std::function<std::string(AttrIndex)> ViewAttrNames(const SPCUView& view) {
  const SPCView& first = view.disjuncts.front();
  return [&first](AttrIndex i) {
    return i < first.output.size() ? first.output[i].name
                                   : "#" + std::to_string(i);
  };
}

int RunCheck(Spec& spec, const PropagationOptions& options) {
  int violations = 0;
  std::printf("== propagation checks ==\n");
  if (spec.view_cfds.empty()) {
    std::printf("  (no view CFDs declared)\n");
    return 0;
  }
  for (const auto& [view_name, cfd] : spec.view_cfds) {
    const SPCUView& view = spec.views.at(view_name);
    auto r = IsPropagated(spec.catalog, view, spec.source_cfds, cfd,
                          options);
    if (!r.ok()) return Fail(r.status());
    std::string rendered = FormatCFD(cfd, spec.catalog.pool(), view_name,
                                     ViewAttrNames(view));
    std::printf("  %-60s : %s\n", rendered.c_str(),
                *r ? "PROPAGATED" : "NOT propagated");
    if (!*r) ++violations;
  }
  return violations == 0 ? 0 : 2;
}

int RunCover(Spec& spec) {
  std::printf("== minimal propagation covers ==\n");
  for (const std::string& name : spec.view_names) {
    const SPCUView& view = spec.views.at(name);
    auto result =
        PropagationCoverSPCU(spec.catalog, view, spec.source_cfds);
    if (!result.ok()) return Fail(result.status());
    std::printf("view %s (%zu CFDs%s%s):\n", name.c_str(),
                result->cover.size(),
                result->always_empty ? ", ALWAYS EMPTY" : "",
                result->truncated ? ", TRUNCATED" : "");
    for (const CFD& c : result->cover) {
      std::printf("  %s\n",
                  FormatCFD(c, spec.catalog.pool(), name,
                            ViewAttrNames(view))
                      .c_str());
    }
  }
  return 0;
}

int RunEmptiness(Spec& spec, const EmptinessOptions& options) {
  std::printf("== emptiness analysis ==\n");
  for (const std::string& name : spec.view_names) {
    auto r = IsAlwaysEmpty(spec.catalog, spec.views.at(name),
                           spec.source_cfds, options);
    if (!r.ok()) return Fail(r.status());
    std::printf("  view %-20s : %s\n", name.c_str(),
                *r ? "always empty under Sigma" : "satisfiable");
  }
  return 0;
}

int RunValidate(Spec& spec) {
  std::printf("== data validation ==\n");
  auto db = spec.MakeDatabase();
  if (!db.ok()) return Fail(db.status());

  int total_violations = 0;
  // Source CFDs against the source relations.
  for (const CFD& c : spec.source_cfds) {
    const Relation& rel = db->relation(c.relation);
    auto v = FindViolations(rel.tuples(), c, rel.schema().arity());
    if (!v.ok()) return Fail(v.status());
    if (!v->empty()) {
      total_violations += static_cast<int>(v->size());
      std::printf("  %s: %zu violation(s) on %s\n",
                  c.ToString(spec.catalog).c_str(), v->size(),
                  rel.schema().name().c_str());
    }
  }
  // View CFDs against the materialized views.
  for (const auto& [view_name, cfd] : spec.view_cfds) {
    const SPCUView& view = spec.views.at(view_name);
    auto rows = Evaluate(*db, view);
    if (!rows.ok()) return Fail(rows.status());
    auto v = FindViolations(*rows, cfd, view.OutputArity());
    if (!v.ok()) return Fail(v.status());
    if (!v->empty()) {
      total_violations += static_cast<int>(v->size());
      std::printf("  %s: %zu violation(s) on view %s (%zu rows)\n",
                  FormatCFD(cfd, spec.catalog.pool(), view_name,
                            ViewAttrNames(view))
                      .c_str(),
                  v->size(), view_name.c_str(), rows->size());
    }
  }
  if (total_violations == 0) {
    std::printf("  all declared CFDs hold on the data\n");
    return 0;
  }
  return 2;
}

/// `--flag N` parsing shared by the batch and serve modes: digits only
/// in [0, 2^24] (strtoul would silently wrap '-1' to ULONG_MAX), exits
/// with a message on misuse. Advances *i past the consumed value.
bool ParseSizeFlag(int argc, char** argv, int* i, const char* flag,
                   size_t* out) {
  if (std::strcmp(argv[*i], flag) != 0) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "error: %s needs a value\n", flag);
    std::exit(1);
  }
  const char* text = argv[++*i];
  const size_t kMaxFlagValue = 1u << 24;
  char* end = nullptr;
  unsigned long value = std::strtoul(text, &end, 10);
  if (*text == '\0' || end == text || *end != '\0' || *text == '-' ||
      *text == '+' || value > kMaxFlagValue) {
    std::fprintf(stderr, "error: %s needs a number in [0, %zu], got '%s'\n",
                 flag, kMaxFlagValue, text);
    std::exit(1);
  }
  *out = static_cast<size_t>(value);
  return true;
}

int RunBatch(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s batch SPEC [--threads N] [--repeat K]"
                 " [--cache N] [--no-cache] [--quiet]"
                 " [--snapshot-in FILE] [--snapshot-out FILE]\n",
                 argv[0]);
    return 1;
  }
  auto spec = LoadSpec(argv[2]);
  if (!spec.ok()) return Fail(spec.status());

  EngineOptions options;
  size_t repeat = 1;
  bool quiet = false;
  std::string snapshot_in, snapshot_out;
  for (int i = 3; i < argc; ++i) {
    auto str_arg = [&](const char* flag, std::string* out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a path\n", flag);
        std::exit(1);
      }
      *out = argv[++i];
      return true;
    };
    if (str_arg("--snapshot-in", &snapshot_in)) continue;
    if (str_arg("--snapshot-out", &snapshot_out)) continue;
    auto int_arg = [&](const char* flag, size_t* out) {
      return ParseSizeFlag(argc, argv, &i, flag, out);
    };
    if (int_arg("--threads", &options.num_threads)) continue;
    if (int_arg("--repeat", &repeat)) continue;
    if (int_arg("--cache", &options.cache_capacity)) {
      if (options.cache_capacity == 0) options.use_cache = false;
      continue;
    }
    if (!std::strcmp(argv[i], "--no-cache")) {
      options.use_cache = false;
    } else if (!std::strcmp(argv[i], "--quiet")) {
      quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  Engine engine(std::move(spec->catalog), options);
  auto sigma_id = engine.RegisterSigma(spec->source_cfds);
  if (!sigma_id.ok()) return Fail(sigma_id.status());

  // Warm start: restore cached covers spilled by a previous run. A
  // rejected file (version bump, changed Sigma, corruption) is not an
  // error — the run just serves cold, exactly as if no snapshot existed.
  if (!snapshot_in.empty()) {
    auto loaded = engine.LoadSnapshot(snapshot_in);
    if (loaded.ok()) {
      std::printf("== snapshot ==\n  loaded %s: restored=%llu "
                  "rejected=%llu\n",
                  snapshot_in.c_str(),
                  static_cast<unsigned long long>(loaded->restored),
                  static_cast<unsigned long long>(loaded->rejected));
    } else {
      std::printf("== snapshot ==\n  rejected %s: %s (restored=0)\n",
                  snapshot_in.c_str(),
                  loaded.status().ToString().c_str());
    }
  }

  // The serving round: the spec's `serve` list when declared, else one
  // request per declared view. The engine serves SPC and SPCU alike
  // (union requests assemble from the per-disjunct cache lines).
  std::vector<Engine::Request> round;
  std::vector<std::string> round_names;
  for (const std::string& name : spec->ServingRound()) {
    round.push_back({spec->views.at(name), *sigma_id});
    round_names.push_back(name);
  }
  // Replay the same round `repeat` times rather than materializing
  // repeat * |round| request copies; stats aggregate across batches.
  const size_t total_requests = round.size() * repeat;
  std::vector<Result<EngineResult>> results;
  int rc = 0;
  auto start = std::chrono::steady_clock::now();
  for (size_t k = 0; k < repeat; ++k) {
    auto batch = engine.PropagateBatch(round);
    for (auto& r : batch) {
      if (!r.ok()) rc = 1;
    }
    if (k == 0) results = std::move(batch);
  }
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  auto print_result = [&](const std::string& name,
                          const Result<EngineResult>& r) {
    if (!r.ok()) {
      rc = Fail(r.status());
      return;
    }
    std::string union_info;
    if (r->disjunct_count > 1) {
      union_info = ", union " + std::to_string(r->disjunct_hits) + "/" +
                   std::to_string(r->disjunct_count) + " disjunct hits";
    }
    std::printf("view %s (%zu CFDs%s%s%s, fp=%016llx):\n", name.c_str(),
                r->cover->cover.size(),
                r->cover->always_empty ? ", ALWAYS EMPTY" : "",
                r->cover->truncated ? ", TRUNCATED" : "",
                union_info.c_str(),
                static_cast<unsigned long long>(r->fingerprint));
    if (!quiet) {
      const SPCUView& view = spec->views.at(name);
      for (const CFD& c : r->cover->cover) {
        std::printf("  %s\n",
                    FormatCFD(c, engine.catalog().pool(), name,
                              ViewAttrNames(view))
                        .c_str());
      }
    }
  };
  for (size_t i = 0; i < round.size() && i < results.size(); ++i) {
    print_result(round_names[i], results[i]);
  }
  EngineStatsSnapshot stats = engine.Stats();
  std::printf("== engine stats ==\n  %s\n", stats.ToString().c_str());
  std::printf("  batch: %zu requests in %.2f ms (%.0f covers/sec, "
              "%zu threads)\n",
              total_requests, elapsed_ms,
              elapsed_ms > 0 ? 1000.0 * total_requests / elapsed_ms : 0.0,
              // 0 and 1 both serve inline on the calling thread.
              std::max<size_t>(1, engine.options().num_threads));

  // Spill the cache now, before the churn script mutates Sigma: a
  // restart re-registers the spec's base Sigma, so this is the state it
  // can actually warm from (post-churn lines would just be rejected).
  if (!snapshot_out.empty()) {
    auto saved = engine.SaveSnapshot(snapshot_out);
    if (saved.ok()) {
      std::printf("  snapshot saved to %s (lines=%llu)\n",
                  snapshot_out.c_str(),
                  static_cast<unsigned long long>(*saved));
    } else {
      rc = Fail(saved.status());
    }
  }

  // Sigma churn script: apply each add-cfd/drop-cfd in file order and
  // re-serve the round after every step. Only the mutated sigma's cache
  // lines drop (watch invalidations in the stats); every other line
  // keeps hitting.
  for (const SigmaMutation& m : spec->sigma_mutations) {
    const RelationSchema& rel = engine.catalog().relation(m.cfd.relation);
    std::string rendered =
        FormatCFD(m.cfd, engine.catalog().pool(), rel.name(),
                  [&rel](AttrIndex a) {
                    return a < rel.arity() ? rel.attr(a).name
                                           : "#" + std::to_string(a);
                  });
    Status applied = m.add ? engine.AddCfd(*sigma_id, m.cfd)
                           : engine.RetractCfd(*sigma_id, m.cfd);
    if (!applied.ok()) {
      rc = Fail(applied);
      continue;
    }
    std::printf("== churn: applied %s-cfd (%s) ==\n", m.add ? "add" : "drop",
                rendered.c_str());
    auto batch = engine.PropagateBatch(round);
    for (size_t i = 0; i < round.size() && i < batch.size(); ++i) {
      print_result(round_names[i], batch[i]);
    }
    std::printf("  %s\n", engine.Stats().ToString().c_str());
  }
  return rc;
}

// ---------------------------------------------------------------------
// serve mode: many specs as tenants behind one CatalogService
// ---------------------------------------------------------------------

/// One loaded tenant: the spec (its views stay valid after the catalog
/// moves into the engine), the service handle, and the request round.
struct TenantCtx {
  std::string name;
  std::string spec_path;
  Spec spec;
  TenantHandle handle;
  std::vector<Engine::Request> round;
  std::vector<std::string> round_names;
};

int RunServe(int argc, char** argv) {
  auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s serve --tenant NAME=SPEC [--tenant NAME=SPEC...]"
                 " [--rounds K] [--threads N] [--dispatchers N] [--budget N]"
                 " [--snapshot-dir DIR] [--interval-ms N] [--dirty N]"
                 " [--quiet] [--no-churn] [--metrics-dump PATH]\n",
                 argv[0]);
    return 1;
  };

  std::vector<std::pair<std::string, std::string>> tenant_args;
  ServiceOptions options;
  options.engine.num_threads = 1;
  size_t rounds = 2, interval_ms = 0, dirty = 1;
  bool quiet = false, churn = true, dispatchers_set = false;
  std::string metrics_dump;
  for (int i = 2; i < argc; ++i) {
    auto int_arg = [&](const char* flag, size_t* out) {
      return ParseSizeFlag(argc, argv, &i, flag, out);
    };
    if (!std::strcmp(argv[i], "--tenant")) {
      if (i + 1 >= argc) return usage();
      std::string arg = argv[++i];
      size_t eq = arg.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size()) {
        std::fprintf(stderr, "error: --tenant needs NAME=SPEC, got '%s'\n",
                     arg.c_str());
        return 1;
      }
      tenant_args.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (!std::strcmp(argv[i], "--snapshot-dir")) {
      if (i + 1 >= argc) return usage();
      options.snapshot_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--metrics-dump")) {
      if (i + 1 >= argc) return usage();
      metrics_dump = argv[++i];
    } else if (int_arg("--dispatchers", &options.dispatcher_threads)) {
      dispatchers_set = true;
    } else if (int_arg("--rounds", &rounds) ||
               int_arg("--threads", &options.engine.num_threads) ||
               int_arg("--budget", &options.global_cache_budget) ||
               int_arg("--interval-ms", &interval_ms) ||
               int_arg("--dirty", &dirty)) {
      continue;
    } else if (!std::strcmp(argv[i], "--quiet")) {
      quiet = true;
    } else if (!std::strcmp(argv[i], "--no-churn")) {
      churn = false;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (tenant_args.empty()) return usage();
  if (!options.snapshot_dir.empty() &&
      !EnsureSnapshotDir(options.snapshot_dir)) {
    return 1;
  }
  // 0 would make the settle check below unsatisfiable (and the service
  // clamps the policy threshold to >= 1 anyway).
  dirty = std::max<size_t>(1, dirty);
  options.policy.interval = std::chrono::milliseconds(interval_ms);
  options.policy.dirty_line_threshold = dirty;
  if (options.dispatcher_threads < tenant_args.size()) {
    // One dispatcher per tenant so every tenant's batch of a round can
    // be in flight at once — the async-overlap point of serve mode.
    // Only warn when this overrides an explicit --dispatchers.
    if (dispatchers_set) {
      std::fprintf(stderr,
                   "note: raising --dispatchers from %zu to %zu (one per "
                   "tenant)\n",
                   options.dispatcher_threads, tenant_args.size());
    }
    options.dispatcher_threads = tenant_args.size();
  }

  CatalogService service(options);
  std::vector<TenantCtx> tenants;
  tenants.reserve(tenant_args.size());
  for (auto& [name, path] : tenant_args) {
    auto spec = LoadSpec(path.c_str());
    if (!spec.ok()) return Fail(spec.status());
    TenantCtx ctx;
    ctx.name = name;
    ctx.spec_path = path;
    ctx.spec = std::move(spec).value();
    auto handle = service.OpenCatalog(name, std::move(ctx.spec.catalog),
                                      {ctx.spec.source_cfds});
    if (!handle.ok()) return Fail(handle.status());
    ctx.handle = std::move(handle).value();
    for (const std::string& view : ctx.spec.ServingRound()) {
      ctx.round.push_back({ctx.spec.views.at(view), /*sigma_id=*/0});
      ctx.round_names.push_back(view);
    }
    tenants.push_back(std::move(ctx));
  }

  // Budgets settle only after the last open (every open rebalances), so
  // the tenant banner prints once all are up.
  std::printf("== tenants ==\n");
  for (const TenantCtx& t : tenants) {
    CacheStats cache = t.handle->engine().Stats().cache;
    std::printf("tenant %s: opened %s budget=%zu restored=%llu "
                "rejected=%llu\n",
                t.name.c_str(), t.spec_path.c_str(),
                t.handle->cache_budget(),
                static_cast<unsigned long long>(cache.restored),
                static_cast<unsigned long long>(cache.rejected));
  }

  int rc = 0;
  auto print_tenant_covers = [&](const TenantCtx& t,
                                 const std::vector<Result<EngineResult>>&
                                     results) {
    for (size_t i = 0; i < t.round_names.size() && i < results.size(); ++i) {
      const Result<EngineResult>& r = results[i];
      if (!r.ok()) continue;  // already reported by the drain loop
      const std::string& view_name = t.round_names[i];
      std::string union_info;
      if (r->disjunct_count > 1) {
        union_info = ", union " + std::to_string(r->disjunct_hits) + "/" +
                     std::to_string(r->disjunct_count) + " disjunct hits";
      }
      std::printf("view %s/%s (%zu CFDs%s%s%s, fp=%016llx):\n",
                  t.name.c_str(), view_name.c_str(), r->cover->cover.size(),
                  r->cover->always_empty ? ", ALWAYS EMPTY" : "",
                  r->cover->truncated ? ", TRUNCATED" : "",
                  union_info.c_str(),
                  static_cast<unsigned long long>(r->fingerprint));
      if (quiet) continue;
      const SPCUView& view = t.spec.views.at(view_name);
      for (const CFD& c : r->cover->cover) {
        std::printf("  %s\n",
                    FormatCFD(c, t.handle->engine().catalog().pool(),
                              view_name, ViewAttrNames(view))
                        .c_str());
      }
    }
  };

  // One round = one async batch per tenant, all in flight together; the
  // futures are drained in submission order, so output (and each
  // tenant's hit pattern) is deterministic while the serving itself
  // overlaps across tenants. `print_idx` selects whose covers print:
  // every tenant, none, or just one (the churned tenant's re-serve).
  constexpr int kPrintAll = -1, kPrintNone = -2;
  auto serve_round = [&](int print_idx) {
    std::vector<std::pair<size_t, std::future<BatchReply>>> inflight;
    inflight.reserve(tenants.size());
    for (size_t i = 0; i < tenants.size(); ++i) {
      auto submitted = service.SubmitBatch(tenants[i].name,
                                           tenants[i].round);
      if (!submitted.ok()) {
        rc = Fail(submitted.status());
        continue;
      }
      inflight.emplace_back(i, std::move(submitted).value());
    }
    for (auto& [idx, future] : inflight) {
      BatchReply reply = future.get();
      for (size_t i = 0; i < reply.results.size(); ++i) {
        if (!reply.results[i].ok()) {
          std::fprintf(stderr, "error: tenant %s request %zu: %s\n",
                       tenants[idx].name.c_str(), i,
                       reply.results[i].status().ToString().c_str());
          rc = 1;
        }
      }
      if (print_idx == kPrintAll || static_cast<size_t>(print_idx) == idx) {
        print_tenant_covers(tenants[idx], reply.results);
      }
    }
  };

  auto start = std::chrono::steady_clock::now();
  for (size_t k = 0; k < rounds; ++k) {
    serve_round(k == 0 ? kPrintAll : kPrintNone);
  }
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  size_t round_requests = 0;
  for (const TenantCtx& t : tenants) round_requests += t.round.size();
  std::printf("== base rounds ==\n  %zu requests in %.2f ms (%.0f "
              "covers/sec, %zu tenants, %zu dispatchers)\n",
              round_requests * rounds, elapsed_ms,
              elapsed_ms > 0
                  ? 1000.0 * static_cast<double>(round_requests * rounds) /
                        elapsed_ms
                  : 0.0,
              tenants.size(), service.options().dispatcher_threads);
  for (const TenantCtx& t : tenants) {
    std::printf("tenant %s base: %s\n", t.name.c_str(),
                t.handle->engine().Stats().ToString().c_str());
  }

  // When the background policy is on, prove it settles before moving
  // on: every tenant must drop below the dirty threshold, which on a
  // cold run means the policy thread actually spilled it (a warm-started
  // tenant that only hit was never dirty and settles at 0 spills).
  if (!options.snapshot_dir.empty() && interval_ms > 0) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(30);
    bool settled = false;
    std::vector<TenantStatsSnapshot> policy_stats;
    while (!settled && std::chrono::steady_clock::now() < deadline) {
      settled = true;
      policy_stats = service.Stats().tenants;
      for (const TenantStatsSnapshot& t : policy_stats) {
        if (t.dirty_lines >= dirty) settled = false;
      }
      if (!settled) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    if (settled) {
      for (const TenantStatsSnapshot& t : policy_stats) {
        std::printf("policy: tenant %s settled (policy_spills=%llu "
                    "dirty=%llu)\n",
                    t.name.c_str(),
                    static_cast<unsigned long long>(t.policy_spills),
                    static_cast<unsigned long long>(t.dirty_lines));
      }
    } else {
      std::fprintf(stderr,
                   "error: snapshot policy did not settle every tenant\n");
      rc = 1;
    }
  }

  // Churn replay: each tenant's add-cfd/drop-cfd script runs in spec
  // order while EVERY tenant's round stays in flight — the mutated
  // sigma's lines recompute, the other tenants keep hitting their own
  // caches (the isolation claim of the registry).
  if (churn) {
    for (size_t ti = 0; ti < tenants.size(); ++ti) {
      TenantCtx& t = tenants[ti];
      for (const SigmaMutation& m : t.spec.sigma_mutations) {
        Engine& engine = t.handle->engine();
        const RelationSchema& rel = engine.catalog().relation(m.cfd.relation);
        std::string rendered =
            FormatCFD(m.cfd, engine.catalog().pool(), rel.name(),
                      [&rel](AttrIndex a) {
                        return a < rel.arity() ? rel.attr(a).name
                                               : "#" + std::to_string(a);
                      });
        Status applied = m.add ? engine.AddCfd(0, m.cfd)
                               : engine.RetractCfd(0, m.cfd);
        if (!applied.ok()) {
          rc = Fail(applied);
          continue;
        }
        std::printf("== churn tenant %s: applied %s-cfd (%s) ==\n",
                    t.name.c_str(), m.add ? "add" : "drop",
                    rendered.c_str());
        // Every tenant's round stays in flight during the churned
        // tenant's re-serve; only the churned covers print.
        serve_round(static_cast<int>(ti));
        std::printf("  %s\n", engine.Stats().ToString().c_str());
      }
    }
  }

  // Explicit final spill: deterministic line counts for scripts/CI (the
  // destructor's flush would do the same work, silently).
  if (!options.snapshot_dir.empty()) {
    for (const TenantCtx& t : tenants) {
      auto spilled = service.SpillTenant(t.name);
      if (!spilled.ok()) {
        rc = Fail(spilled.status());
        continue;
      }
      std::printf("spill tenant %s: lines=%llu\n", t.name.c_str(),
                  static_cast<unsigned long long>(*spilled));
    }
  }

  ServiceStatsSnapshot stats = service.Stats();
  std::printf("== service stats ==\n");
  for (const TenantStatsSnapshot& t : stats.tenants) {
    std::printf("  %s\n", t.ToString().c_str());
  }
  std::printf("  service: tenants=%zu budget=%zu submitted=%llu "
              "completed=%llu\n",
              stats.tenants.size(), stats.global_cache_budget,
              static_cast<unsigned long long>(stats.batches_submitted),
              static_cast<unsigned long long>(stats.batches_completed));
  if (!metrics_dump.empty()) {
    Status dumped = WriteFileText(metrics_dump,
                                  service.RenderMetricsText());
    if (!dumped.ok()) return Fail(dumped);
    std::printf("metrics dumped to %s\n", metrics_dump.c_str());
  }
  return rc;
}

// ---------------------------------------------------------------------
// listen / client modes: the CatalogService behind a TCP socket
// ---------------------------------------------------------------------

int RunListen(int argc, char** argv) {
  auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s listen [--host H] [--port N]"
                 " [--tenant NAME=SPEC ...] [--threads N] [--dispatchers N]"
                 " [--budget N] [--max-inflight N] [--max-queue N]"
                 " [--io-timeout MS]"
                 " [--snapshot-dir DIR] [--interval-ms N] [--dirty N]"
                 " [--metrics-dump PATH] [--trace-dump PATH]"
                 " [--trace-shift K] [--slow-threshold-us N]"
                 " [--trace-seed N]\n",
                 argv[0]);
    return 1;
  };

  std::vector<std::pair<std::string, std::string>> tenant_args;
  ServiceOptions options;
  options.engine.num_threads = 1;
  net::CoverServerOptions server_options;
  size_t port = 0, interval_ms = 0, dirty = 1;
  size_t max_inflight = 0, max_queue = 0, io_timeout_ms = 0;
  size_t trace_shift = 0, trace_seed = 0, slow_threshold_us = 0;
  bool dispatchers_set = false, trace_shift_set = false, slow_set = false;
  std::string metrics_dump, trace_dump;
  for (int i = 2; i < argc; ++i) {
    auto int_arg = [&](const char* flag, size_t* out) {
      return ParseSizeFlag(argc, argv, &i, flag, out);
    };
    if (!std::strcmp(argv[i], "--tenant")) {
      if (i + 1 >= argc) return usage();
      std::string arg = argv[++i];
      size_t eq = arg.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size()) {
        std::fprintf(stderr, "error: --tenant needs NAME=SPEC, got '%s'\n",
                     arg.c_str());
        return 1;
      }
      tenant_args.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (!std::strcmp(argv[i], "--host")) {
      if (i + 1 >= argc) return usage();
      server_options.host = argv[++i];
    } else if (!std::strcmp(argv[i], "--snapshot-dir")) {
      if (i + 1 >= argc) return usage();
      options.snapshot_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--metrics-dump")) {
      if (i + 1 >= argc) return usage();
      metrics_dump = argv[++i];
    } else if (!std::strcmp(argv[i], "--trace-dump")) {
      if (i + 1 >= argc) return usage();
      trace_dump = argv[++i];
    } else if (int_arg("--dispatchers", &options.dispatcher_threads)) {
      dispatchers_set = true;
    } else if (int_arg("--trace-shift", &trace_shift)) {
      trace_shift_set = true;
    } else if (int_arg("--slow-threshold-us", &slow_threshold_us)) {
      slow_set = true;
    } else if (int_arg("--port", &port) ||
               int_arg("--threads", &options.engine.num_threads) ||
               int_arg("--budget", &options.global_cache_budget) ||
               int_arg("--max-inflight", &max_inflight) ||
               int_arg("--max-queue", &max_queue) ||
               int_arg("--io-timeout", &io_timeout_ms) ||
               int_arg("--interval-ms", &interval_ms) ||
               int_arg("--trace-seed", &trace_seed) ||
               int_arg("--dirty", &dirty)) {
      continue;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (port > 65535) {
    std::fprintf(stderr, "error: --port must be <= 65535\n");
    return 1;
  }
  server_options.port = static_cast<uint16_t>(port);
  server_options.io_timeout = std::chrono::milliseconds(io_timeout_ms);
  if (!options.snapshot_dir.empty() &&
      !EnsureSnapshotDir(options.snapshot_dir)) {
    return 1;
  }
  options.policy.interval = std::chrono::milliseconds(interval_ms);
  options.policy.dirty_line_threshold = std::max<size_t>(1, dirty);
  options.admission.max_inflight_batches = max_inflight;
  options.admission.max_queued_batches = max_queue;
  if (!dispatchers_set && options.dispatcher_threads < tenant_args.size()) {
    options.dispatcher_threads = tenant_args.size();
  }

  // Tracing arms before the service exists so every dispatcher thread
  // sees the tracer from its first frame — and the scope outlives the
  // service (declared first, destroyed last), so dispatcher tails can
  // still record while tearing down. --trace-dump alone samples every
  // request (shift 0): the CI greps exact span counts out of the dump.
  // --slow-threshold-us alone keeps sampling off and captures only the
  // slow ring.
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::ScopedProcessTracer> scoped_tracer;
  if (!trace_dump.empty() || trace_shift_set || slow_set) {
    obs::ObsOptions topts;
    topts.trace_sample_shift = trace_shift_set
                                   ? static_cast<int>(trace_shift)
                                   : (!trace_dump.empty() ? 0 : -1);
    topts.slow_threshold_us =
        slow_set ? static_cast<int64_t>(slow_threshold_us) : -1;
    topts.trace_seed = trace_seed;
    tracer = std::make_unique<obs::Tracer>(topts);
    scoped_tracer = std::make_unique<obs::ScopedProcessTracer>(tracer.get());
  }

  CatalogService service(options);
  net::CoverServer server(service, server_options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);

  std::printf("== tenants ==\n");
  for (const auto& [name, path] : tenant_args) {
    auto text = ReadFileText(path);
    if (!text.ok()) return Fail(text.status());
    auto opened = server.OpenSpec(name, *text);
    if (!opened.ok()) return Fail(opened.status());
    std::printf("tenant %s: opened %s budget=%llu restored=%llu "
                "rejected=%llu\n",
                name.c_str(), path.c_str(),
                static_cast<unsigned long long>(opened->cache_budget),
                static_cast<unsigned long long>(opened->restored),
                static_cast<unsigned long long>(opened->rejected));
  }
  std::printf("listening on %s:%u (max-inflight=%zu max-queue=%zu)\n",
              server_options.host.c_str(), server.port(), max_inflight,
              max_queue);
  std::fflush(stdout);

  server.WaitForShutdown();

  ServiceStatsSnapshot stats = service.Stats();
  std::printf("== service stats ==\n");
  for (const TenantStatsSnapshot& t : stats.tenants) {
    std::printf("  %s\n", t.ToString().c_str());
  }
  std::printf("  service: tenants=%zu budget=%zu submitted=%llu "
              "completed=%llu rejected=%llu\n",
              stats.tenants.size(), stats.global_cache_budget,
              static_cast<unsigned long long>(stats.batches_submitted),
              static_cast<unsigned long long>(stats.batches_completed),
              static_cast<unsigned long long>(stats.batches_rejected));
  net::CoverServerStats net_stats = server.Stats();
  std::printf("  net: connections=%llu frames=%llu decode_errors=%llu"
              " deadlines_exceeded=%llu\n",
              static_cast<unsigned long long>(net_stats.connections_accepted),
              static_cast<unsigned long long>(net_stats.frames_served),
              static_cast<unsigned long long>(net_stats.decode_errors),
              static_cast<unsigned long long>(net_stats.deadlines_exceeded));
  // Per-tenant admission outcome at a glance — the same counters the
  // cfdprop_admitted_total / cfdprop_admission_rejected_total series
  // export, so the CI can diff this ledger against a metrics scrape.
  for (const TenantStatsSnapshot& t : stats.tenants) {
    std::printf("  tenant %s admission: admitted=%llu rejected=%llu\n",
                t.name.c_str(),
                static_cast<unsigned long long>(t.admitted),
                static_cast<unsigned long long>(t.admission_rejected));
  }
  // The dump renders before Stop(): the server's net-layer collector
  // (connections/frames/decode_errors, net stage histograms) is removed
  // on Stop, and the dump should include every layer.
  if (!metrics_dump.empty()) {
    Status dumped = WriteFileText(metrics_dump,
                                  service.RenderMetricsText());
    if (!dumped.ok()) {
      server.Stop();
      return Fail(dumped);
    }
    std::printf("metrics dumped to %s\n", metrics_dump.c_str());
  }
  if (tracer != nullptr) {
    // The dump file carries the sampled trees (main ring) only; the
    // slow ring — which duplicates any sampled slow root — gets its own
    // section below, so a slow-but-sampled request isn't double-printed
    // inside one tree.
    std::vector<obs::SpanRecord> sampled, slow;
    for (obs::SpanRecord& s : tracer->Snapshot()) {
      (s.slow ? slow : sampled).push_back(std::move(s));
    }
    if (!trace_dump.empty()) {
      Status dumped = WriteFileText(trace_dump, obs::FormatSpanTrees(sampled));
      if (!dumped.ok()) {
        server.Stop();
        return Fail(dumped);
      }
      std::printf("trace dumped to %s (spans=%llu dropped=%llu slow=%llu)\n",
                  trace_dump.c_str(),
                  static_cast<unsigned long long>(tracer->spans_recorded()),
                  static_cast<unsigned long long>(tracer->spans_dropped()),
                  static_cast<unsigned long long>(tracer->slow_requests()));
    }
    if (tracer->slow_enabled()) {
      std::printf("== slow requests (threshold=%lldus, captured=%llu) ==\n%s",
                  static_cast<long long>(tracer->slow_threshold_us()),
                  static_cast<unsigned long long>(tracer->slow_requests()),
                  obs::FormatSpanTrees(slow).c_str());
    }
  }
  server.Stop();
  return 0;
}

int RunClient(int argc, char** argv) {
  auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s client [--host H] --port N"
                 " --tenant NAME=SPEC [...] [--rounds K] [--burst N]"
                 " [--connect-timeout MS] [--io-timeout MS]"
                 " [--no-open] [--quiet] [--stats] [--metrics]"
                 " [--trace] [--shutdown]\n",
                 argv[0]);
    return 1;
  };

  std::vector<std::pair<std::string, std::string>> tenant_args;
  net::CoverClientOptions client_options;
  size_t port = 0, rounds = 2, burst = 0;
  size_t connect_timeout_ms = 0, client_io_timeout_ms = 0;
  bool quiet = false, open_tenants = true, want_stats = false;
  bool want_metrics = false, want_shutdown = false, want_trace = false;
  for (int i = 2; i < argc; ++i) {
    auto int_arg = [&](const char* flag, size_t* out) {
      return ParseSizeFlag(argc, argv, &i, flag, out);
    };
    if (!std::strcmp(argv[i], "--tenant")) {
      if (i + 1 >= argc) return usage();
      std::string arg = argv[++i];
      size_t eq = arg.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size()) {
        std::fprintf(stderr, "error: --tenant needs NAME=SPEC, got '%s'\n",
                     arg.c_str());
        return 1;
      }
      tenant_args.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (!std::strcmp(argv[i], "--host")) {
      if (i + 1 >= argc) return usage();
      client_options.host = argv[++i];
    } else if (int_arg("--port", &port) || int_arg("--rounds", &rounds) ||
               int_arg("--burst", &burst) ||
               int_arg("--connect-timeout", &connect_timeout_ms) ||
               int_arg("--io-timeout", &client_io_timeout_ms)) {
      continue;
    } else if (!std::strcmp(argv[i], "--no-open")) {
      open_tenants = false;
    } else if (!std::strcmp(argv[i], "--quiet")) {
      quiet = true;
    } else if (!std::strcmp(argv[i], "--stats")) {
      want_stats = true;
    } else if (!std::strcmp(argv[i], "--metrics")) {
      want_metrics = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      want_trace = true;
    } else if (!std::strcmp(argv[i], "--shutdown")) {
      want_shutdown = true;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "error: client mode needs --port in [1, 65535]\n");
    return 1;
  }
  if (tenant_args.empty() && !want_stats && !want_metrics &&
      !want_shutdown) {
    return usage();
  }
  client_options.port = static_cast<uint16_t>(port);
  client_options.connect_timeout =
      std::chrono::milliseconds(connect_timeout_ms);
  client_options.io_timeout = std::chrono::milliseconds(client_io_timeout_ms);

  // --trace makes this client a trace edge that samples every request
  // (shift 0): each SubmitBatches starts a trace, records the rpc span
  // locally and ships the context in-band for the server's spans.
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::ScopedProcessTracer> scoped_tracer;
  if (want_trace) {
    obs::ObsOptions topts;
    topts.trace_sample_shift = 0;
    tracer = std::make_unique<obs::Tracer>(topts);
    scoped_tracer = std::make_unique<obs::ScopedProcessTracer>(tracer.get());
  }

  net::CoverClient client(client_options);
  Status connected = client.Connect();
  if (!connected.ok()) return Fail(connected);

  // Each tenant's spec is also parsed locally: the client needs the
  // serving round, the view shapes for attribute names, and a pool to
  // re-intern decoded cover constants into.
  struct ClientTenant {
    std::string name;
    std::string path;
    Spec spec;
    std::vector<std::string> round;
  };
  std::vector<ClientTenant> tenants;
  tenants.reserve(tenant_args.size());
  int rc = 0;
  if (!tenant_args.empty()) std::printf("== tenants ==\n");
  for (auto& [name, path] : tenant_args) {
    auto text = ReadFileText(path);
    if (!text.ok()) return Fail(text.status());
    auto spec = ParseSpec(*text);
    if (!spec.ok()) return Fail(spec.status());
    ClientTenant t;
    t.name = name;
    t.path = path;
    t.spec = std::move(spec).value();
    t.round = t.spec.ServingRound();
    if (open_tenants) {
      auto opened = client.OpenCatalog(name, *text);
      if (!opened.ok()) return Fail(opened.status());
      std::printf("tenant %s: opened %s budget=%llu restored=%llu "
                  "rejected=%llu\n",
                  name.c_str(), path.c_str(),
                  static_cast<unsigned long long>(opened->cache_budget),
                  static_cast<unsigned long long>(opened->restored),
                  static_cast<unsigned long long>(opened->rejected));
    }
    tenants.push_back(std::move(t));
  }

  // Round-trip the serving rounds; first-round covers print in exactly
  // serve mode's format, so scripts can diff network serving against
  // in-process serving byte for byte.
  auto print_covers = [&](ClientTenant& t,
                          const std::vector<Result<EngineResult>>& results) {
    for (size_t i = 0; i < t.round.size() && i < results.size(); ++i) {
      const Result<EngineResult>& r = results[i];
      if (!r.ok()) continue;
      const std::string& view_name = t.round[i];
      std::string union_info;
      if (r->disjunct_count > 1) {
        union_info = ", union " + std::to_string(r->disjunct_hits) + "/" +
                     std::to_string(r->disjunct_count) + " disjunct hits";
      }
      std::printf("view %s/%s (%zu CFDs%s%s%s, fp=%016llx):\n",
                  t.name.c_str(), view_name.c_str(), r->cover->cover.size(),
                  r->cover->always_empty ? ", ALWAYS EMPTY" : "",
                  r->cover->truncated ? ", TRUNCATED" : "",
                  union_info.c_str(),
                  static_cast<unsigned long long>(r->fingerprint));
      if (quiet) continue;
      const SPCUView& view = t.spec.views.at(view_name);
      for (const CFD& c : r->cover->cover) {
        std::printf("  %s\n",
                    FormatCFD(c, t.spec.catalog.pool(), view_name,
                              ViewAttrNames(view))
                        .c_str());
      }
    }
  };

  size_t total_requests = 0;
  auto start = std::chrono::steady_clock::now();
  for (size_t k = 0; k < rounds; ++k) {
    for (ClientTenant& t : tenants) {
      auto reply = client.SubmitBatch(t.name, t.round,
                                      t.spec.catalog.pool());
      if (!reply.ok()) return Fail(reply.status());
      if (!reply->status.ok()) {
        std::fprintf(stderr, "error: tenant %s round %zu: %s\n",
                     t.name.c_str(), k,
                     reply->status.ToString().c_str());
        rc = 1;
        continue;
      }
      total_requests += reply->results.size();
      for (size_t i = 0; i < reply->results.size(); ++i) {
        if (!reply->results[i].ok()) {
          std::fprintf(stderr, "error: tenant %s request %zu: %s\n",
                       t.name.c_str(), i,
                       reply->results[i].status().ToString().c_str());
          rc = 1;
        }
      }
      if (k == 0) print_covers(t, reply->results);
    }
  }
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  if (!tenants.empty() && rounds > 0) {
    std::printf("== client rounds ==\n  %zu requests in %.2f ms (%.0f "
                "covers/sec, %zu tenants, %zu rounds)\n",
                total_requests, elapsed_ms,
                elapsed_ms > 0 ? 1000.0 * total_requests / elapsed_ms : 0.0,
                tenants.size(), rounds);
  }

  // Pipelined burst: N copies of the round in ONE frame — the server
  // decides every batch's admission atomically, so the admitted and
  // rejected counts are deterministic for given caps.
  if (burst > 0) {
    for (ClientTenant& t : tenants) {
      std::vector<std::vector<std::string>> batches(burst, t.round);
      auto replies = client.SubmitBatches(t.name, batches,
                                          t.spec.catalog.pool());
      if (!replies.ok()) return Fail(replies.status());
      size_t admitted = 0, rejected = 0;
      for (const net::WireBatchResult& b : *replies) {
        if (b.status.ok()) {
          ++admitted;
        } else if (b.status.code() == StatusCode::kResourceExhausted) {
          ++rejected;
        } else {
          std::fprintf(stderr, "error: burst tenant %s: %s\n",
                       t.name.c_str(), b.status.ToString().c_str());
          rc = 1;
        }
      }
      std::printf("burst tenant %s: batches=%zu admitted=%zu rejected=%zu\n",
                  t.name.c_str(), burst, admitted, rejected);
    }
  }

  if (want_stats) {
    auto stats = client.Stats();
    if (!stats.ok()) return Fail(stats.status());
    std::printf("== service stats (remote) ==\n");
    for (const net::WireTenantStats& t : stats->tenants) {
      std::printf("tenant %s net: %s\n", t.name.c_str(),
                  t.engine_text.c_str());
      std::printf("tenant %s admission: admitted=%llu rejected=%llu "
                  "queued=%llu running=%llu\n",
                  t.name.c_str(),
                  static_cast<unsigned long long>(t.admitted),
                  static_cast<unsigned long long>(t.admission_rejected),
                  static_cast<unsigned long long>(t.queued),
                  static_cast<unsigned long long>(t.running));
    }
    std::printf("service: tenants=%zu budget=%llu submitted=%llu "
                "completed=%llu rejected=%llu\n",
                stats->tenants.size(),
                static_cast<unsigned long long>(stats->global_cache_budget),
                static_cast<unsigned long long>(stats->batches_submitted),
                static_cast<unsigned long long>(stats->batches_completed),
                static_cast<unsigned long long>(stats->batches_rejected));
  }

  // The raw exposition text, unmodified: pipe it to a file and any
  // Prometheus-format consumer (or tests/obs) can parse it.
  if (want_metrics) {
    auto metrics = client.Metrics();
    if (!metrics.ok()) return Fail(metrics.status());
    std::printf("== metrics (remote) ==\n");
    std::fwrite(metrics->data(), 1, metrics->size(), stdout);
    if (!metrics->empty() && metrics->back() != '\n') std::printf("\n");
  }

  // Stitched trees: this edge's rpc spans plus the server process's
  // rings (the TRACE_DUMP frame) — one tree per request, spanning both
  // processes via the in-band trace ids.
  if (want_trace) {
    auto remote = client.TraceDump();
    if (!remote.ok()) return Fail(remote.status());
    std::vector<obs::SpanRecord> spans = tracer->Snapshot();
    spans.insert(spans.end(), remote->begin(), remote->end());
    std::printf("== trace (stitched, %zu spans) ==\n%s", spans.size(),
                obs::FormatSpanTrees(spans).c_str());
  }

  if (want_shutdown) {
    Status down = client.Shutdown();
    if (!down.ok()) return Fail(down);
    std::printf("shutdown sent\n");
  }
  return rc;
}

// ---------------------------------------------------------------------
// route mode: a CoverRouter over several listen servers
// ---------------------------------------------------------------------

int RunRoute(int argc, char** argv) {
  auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s route --backend HOST:PORT [--backend ...]"
                 " [--tenant NAME=SPEC ...] [--rounds K] [--vnodes N]"
                 " [--connect-timeout MS] [--io-timeout MS]"
                 " [--migrate TENANT[=SHARD] ...] [--quiet]"
                 " [--stats] [--metrics] [--trace] [--shutdown]\n",
                 argv[0]);
    return 1;
  };

  std::vector<std::pair<std::string, std::string>> tenant_args;
  std::vector<std::pair<std::string, uint16_t>> backends;
  // tenant -> explicit target shard; SIZE_MAX = next shard clockwise.
  std::vector<std::pair<std::string, size_t>> migrations;
  size_t rounds = 2, vnodes = 0;
  size_t connect_timeout_ms = 0, io_timeout_ms = 0;
  bool quiet = false, want_stats = false, want_metrics = false;
  bool want_shutdown = false, want_trace = false;
  for (int i = 2; i < argc; ++i) {
    auto int_arg = [&](const char* flag, size_t* out) {
      return ParseSizeFlag(argc, argv, &i, flag, out);
    };
    if (!std::strcmp(argv[i], "--backend")) {
      if (i + 1 >= argc) return usage();
      std::string arg = argv[++i];
      size_t colon = arg.rfind(':');
      unsigned long port_value = 0;
      if (colon != std::string::npos && colon != 0) {
        char* end = nullptr;
        const char* text = arg.c_str() + colon + 1;
        port_value = std::strtoul(text, &end, 10);
        if (*text == '\0' || end == text || *end != '\0') port_value = 0;
      }
      if (port_value == 0 || port_value > 65535) {
        std::fprintf(stderr,
                     "error: --backend needs HOST:PORT, got '%s'\n",
                     arg.c_str());
        return 1;
      }
      backends.emplace_back(arg.substr(0, colon),
                            static_cast<uint16_t>(port_value));
    } else if (!std::strcmp(argv[i], "--tenant")) {
      if (i + 1 >= argc) return usage();
      std::string arg = argv[++i];
      size_t eq = arg.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size()) {
        std::fprintf(stderr, "error: --tenant needs NAME=SPEC, got '%s'\n",
                     arg.c_str());
        return 1;
      }
      tenant_args.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (!std::strcmp(argv[i], "--migrate")) {
      if (i + 1 >= argc) return usage();
      std::string arg = argv[++i];
      size_t target = SIZE_MAX;
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        if (eq == 0 || eq + 1 >= arg.size()) {
          std::fprintf(stderr,
                       "error: --migrate needs TENANT[=SHARD], got '%s'\n",
                       arg.c_str());
          return 1;
        }
        char* end = nullptr;
        const char* text = arg.c_str() + eq + 1;
        unsigned long value = std::strtoul(text, &end, 10);
        if (end == text || *end != '\0') {
          std::fprintf(stderr,
                       "error: --migrate shard must be a number, got '%s'\n",
                       text);
          return 1;
        }
        target = static_cast<size_t>(value);
        arg = arg.substr(0, eq);
      }
      migrations.emplace_back(std::move(arg), target);
    } else if (int_arg("--rounds", &rounds) || int_arg("--vnodes", &vnodes) ||
               int_arg("--connect-timeout", &connect_timeout_ms) ||
               int_arg("--io-timeout", &io_timeout_ms)) {
      continue;
    } else if (!std::strcmp(argv[i], "--quiet")) {
      quiet = true;
    } else if (!std::strcmp(argv[i], "--stats")) {
      want_stats = true;
    } else if (!std::strcmp(argv[i], "--metrics")) {
      want_metrics = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      want_trace = true;
    } else if (!std::strcmp(argv[i], "--shutdown")) {
      want_shutdown = true;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (backends.empty()) return usage();
  if (tenant_args.empty() && migrations.empty() && !want_stats &&
      !want_metrics && !want_shutdown) {
    return usage();
  }

  net::CoverRouterOptions router_options;
  for (auto& [host, port] : backends) {
    net::CoverClientOptions copts;
    copts.host = host;
    copts.port = port;
    copts.connect_timeout = std::chrono::milliseconds(connect_timeout_ms);
    copts.io_timeout = std::chrono::milliseconds(io_timeout_ms);
    router_options.shards.push_back(std::move(copts));
  }
  if (vnodes > 0) router_options.virtual_nodes = vnodes;

  // --trace makes the router the trace edge, sampling every request:
  // its route spans record here, the rpc/server spans on each shard.
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::ScopedProcessTracer> scoped_tracer;
  if (want_trace) {
    obs::ObsOptions topts;
    topts.trace_sample_shift = 0;
    tracer = std::make_unique<obs::Tracer>(topts);
    scoped_tracer = std::make_unique<obs::ScopedProcessTracer>(tracer.get());
  }

  net::CoverRouter router(std::move(router_options));

  // Each tenant's spec is also parsed locally, exactly as in client
  // mode: the serving round, view shapes for names, and a decode pool.
  struct RoutedTenant {
    std::string name;
    std::string path;
    Spec spec;
    std::vector<std::string> round;
  };
  std::vector<RoutedTenant> tenants;
  tenants.reserve(tenant_args.size());
  int rc = 0;
  if (!tenant_args.empty()) std::printf("== tenants ==\n");
  for (auto& [name, path] : tenant_args) {
    auto text = ReadFileText(path);
    if (!text.ok()) return Fail(text.status());
    auto spec = ParseSpec(*text);
    if (!spec.ok()) return Fail(spec.status());
    RoutedTenant t;
    t.name = name;
    t.path = path;
    t.spec = std::move(spec).value();
    t.round = t.spec.ServingRound();
    auto opened = router.OpenCatalog(name, *text);
    if (!opened.ok()) return Fail(opened.status());
    std::printf("tenant %s: opened %s via shard %zu budget=%llu "
                "restored=%llu rejected=%llu\n",
                name.c_str(), path.c_str(), router.ShardFor(name),
                static_cast<unsigned long long>(opened->cache_budget),
                static_cast<unsigned long long>(opened->restored),
                static_cast<unsigned long long>(opened->rejected));
    tenants.push_back(std::move(t));
  }

  // Identical to client mode's cover printing, so `route` output diffs
  // byte-for-byte against `client` talking to one fat server.
  auto print_covers = [&](RoutedTenant& t,
                          const std::vector<Result<EngineResult>>& results) {
    for (size_t i = 0; i < t.round.size() && i < results.size(); ++i) {
      const Result<EngineResult>& r = results[i];
      if (!r.ok()) continue;
      const std::string& view_name = t.round[i];
      std::string union_info;
      if (r->disjunct_count > 1) {
        union_info = ", union " + std::to_string(r->disjunct_hits) + "/" +
                     std::to_string(r->disjunct_count) + " disjunct hits";
      }
      std::printf("view %s/%s (%zu CFDs%s%s%s, fp=%016llx):\n",
                  t.name.c_str(), view_name.c_str(), r->cover->cover.size(),
                  r->cover->always_empty ? ", ALWAYS EMPTY" : "",
                  r->cover->truncated ? ", TRUNCATED" : "",
                  union_info.c_str(),
                  static_cast<unsigned long long>(r->fingerprint));
      if (quiet) continue;
      const SPCUView& view = t.spec.views.at(view_name);
      for (const CFD& c : r->cover->cover) {
        std::printf("  %s\n",
                    FormatCFD(c, t.spec.catalog.pool(), view_name,
                              ViewAttrNames(view))
                        .c_str());
      }
    }
  };

  auto serve_tenant = [&](RoutedTenant& t, size_t round_idx,
                          bool print) {
    auto reply = router.SubmitBatch(t.name, t.round, t.spec.catalog.pool());
    if (!reply.ok() || !reply->status.ok()) {
      const Status& s = reply.ok() ? reply->status : reply.status();
      std::fprintf(stderr, "error: tenant %s round %zu: %s\n",
                   t.name.c_str(), round_idx, s.ToString().c_str());
      rc = 1;
      return static_cast<size_t>(0);
    }
    for (size_t i = 0; i < reply->results.size(); ++i) {
      if (!reply->results[i].ok()) {
        std::fprintf(stderr, "error: tenant %s request %zu: %s\n",
                     t.name.c_str(), i,
                     reply->results[i].status().ToString().c_str());
        rc = 1;
      }
    }
    if (print) print_covers(t, reply->results);
    return reply->results.size();
  };

  size_t total_requests = 0;
  auto start = std::chrono::steady_clock::now();
  for (size_t k = 0; k < rounds; ++k) {
    for (RoutedTenant& t : tenants) {
      total_requests += serve_tenant(t, k, k == 0);
    }
  }
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  if (!tenants.empty() && rounds > 0) {
    std::printf("== routed rounds ==\n  %zu requests in %.2f ms (%.0f "
                "covers/sec, %zu tenants, %zu shards, %zu rounds)\n",
                total_requests, elapsed_ms,
                elapsed_ms > 0 ? 1000.0 * total_requests / elapsed_ms : 0.0,
                tenants.size(), router.num_shards(), rounds);
  }

  // Live migrations: drain -> snapshot -> warm-start on the target ->
  // flip the route, then re-serve the tenant so its post-move covers
  // print (the diff target for byte-identity across the move).
  for (auto& [name, explicit_target] : migrations) {
    const size_t from = router.ShardFor(name);
    const size_t target = explicit_target == SIZE_MAX
                              ? (from + 1) % router.num_shards()
                              : explicit_target;
    auto report = router.MigrateTenant(name, target);
    if (!report.ok()) {
      rc = Fail(report.status());
      continue;
    }
    std::printf("migrate tenant %s: shard %zu -> %zu snapshot_bytes=%zu "
                "restored=%llu rejected=%llu\n",
                name.c_str(), report->from, report->to,
                report->snapshot_bytes,
                static_cast<unsigned long long>(report->restored),
                static_cast<unsigned long long>(report->rejected));
    for (RoutedTenant& t : tenants) {
      if (t.name == name) serve_tenant(t, rounds, /*print=*/true);
    }
  }

  if (want_stats) {
    auto stats = router.Stats();
    if (!stats.ok()) return Fail(stats.status());
    std::printf("== service stats (routed, %zu shards) ==\n",
                router.num_shards());
    for (const net::WireTenantStats& t : stats->tenants) {
      std::printf("tenant %s net: %s\n", t.name.c_str(),
                  t.engine_text.c_str());
      std::printf("tenant %s admission: admitted=%llu rejected=%llu "
                  "queued=%llu running=%llu\n",
                  t.name.c_str(),
                  static_cast<unsigned long long>(t.admitted),
                  static_cast<unsigned long long>(t.admission_rejected),
                  static_cast<unsigned long long>(t.queued),
                  static_cast<unsigned long long>(t.running));
    }
    std::printf("service: tenants=%zu budget=%llu submitted=%llu "
                "completed=%llu rejected=%llu\n",
                stats->tenants.size(),
                static_cast<unsigned long long>(stats->global_cache_budget),
                static_cast<unsigned long long>(stats->batches_submitted),
                static_cast<unsigned long long>(stats->batches_completed),
                static_cast<unsigned long long>(stats->batches_rejected));
  }

  if (want_metrics) {
    auto metrics = router.Metrics();
    if (!metrics.ok()) return Fail(metrics.status());
    std::printf("== metrics (routed) ==\n");
    std::fwrite(metrics->data(), 1, metrics->size(), stdout);
    if (!metrics->empty() && metrics->back() != '\n') std::printf("\n");
  }

  // Stitched cross-shard trees: the router edge's route spans (and the
  // per-shard rpc spans, recorded in this process) plus every shard
  // server's rings, each record stamped with its shard index.
  if (want_trace) {
    std::vector<obs::SpanRecord> spans = tracer->Snapshot();
    for (size_t s = 0; s < router.num_shards(); ++s) {
      auto remote = router.TraceDumpFrom(s);
      if (!remote.ok()) return Fail(remote.status());
      spans.insert(spans.end(), remote->begin(), remote->end());
    }
    std::printf("== trace (stitched, %zu shards, %zu spans) ==\n%s",
                router.num_shards(), spans.size(),
                obs::FormatSpanTrees(spans).c_str());
  }

  if (want_shutdown) {
    Status down = router.ShutdownAll();
    if (!down.ok()) return Fail(down);
    std::printf("shutdown sent to %zu shards\n", router.num_shards());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && !std::strcmp(argv[1], "batch")) {
    return RunBatch(argc, argv);
  }
  if (argc >= 2 && !std::strcmp(argv[1], "serve")) {
    return RunServe(argc, argv);
  }
  if (argc >= 2 && !std::strcmp(argv[1], "listen")) {
    return RunListen(argc, argv);
  }
  if (argc >= 2 && !std::strcmp(argv[1], "client")) {
    return RunClient(argc, argv);
  }
  if (argc >= 2 && !std::strcmp(argv[1], "route")) {
    return RunRoute(argc, argv);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s SPEC [--check|--cover|--emptiness|--validate]"
                 " [--general]\n",
                 argv[0]);
    return 1;
  }
  auto spec = LoadSpec(argv[1]);
  if (!spec.ok()) return Fail(spec.status());

  bool check = false, cover = false, emptiness = false, validate = false;
  bool general = false;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--check")) check = true;
    else if (!std::strcmp(argv[i], "--cover")) cover = true;
    else if (!std::strcmp(argv[i], "--emptiness")) emptiness = true;
    else if (!std::strcmp(argv[i], "--validate")) validate = true;
    else if (!std::strcmp(argv[i], "--general")) general = true;
    else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (!check && !cover && !emptiness && !validate) {
    check = cover = emptiness = validate = true;
  }

  PropagationOptions prop_options;
  prop_options.general_setting = general;
  EmptinessOptions empt_options;
  empt_options.general_setting = general;

  int rc = 0;
  auto update = [&rc](int r) { rc = std::max(rc, r); };
  if (emptiness) update(RunEmptiness(*spec, empt_options));
  if (check) update(RunCheck(*spec, prop_options));
  if (cover) update(RunCover(*spec));
  if (validate) update(RunValidate(*spec));
  return rc;
}
