// cfdprop_cli — the command-line front end of the library.
//
// Reads a specification file (see src/parser/parser.h for the syntax)
// and runs the paper's analyses:
//
//   cfdprop_cli SPEC                 run every analysis below
//   cfdprop_cli SPEC --check        decide Sigma |=V phi for each view
//                                    CFD declared in the spec
//   cfdprop_cli SPEC --cover        print a minimal propagation cover
//                                    per declared view (PropCFD_SPC)
//   cfdprop_cli SPEC --emptiness    report views that are always empty
//   cfdprop_cli SPEC --validate     evaluate views on the insert data
//                                    and report CFD violations
//
// Exit status: 0 on success, 1 on usage/parse errors, 2 when --validate
// found violations or --check found a non-propagated declared CFD.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/cover/propcfd_spc.h"
#include "src/data/eval.h"
#include "src/data/validate.h"
#include "src/parser/parser.h"
#include "src/propagation/emptiness.h"
#include "src/propagation/propagation.h"

using namespace cfdprop;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

/// Output-column name resolver for a view.
std::function<std::string(AttrIndex)> ViewAttrNames(const SPCUView& view) {
  const SPCView& first = view.disjuncts.front();
  return [&first](AttrIndex i) {
    return i < first.output.size() ? first.output[i].name
                                   : "#" + std::to_string(i);
  };
}

int RunCheck(Spec& spec, const PropagationOptions& options) {
  int violations = 0;
  std::printf("== propagation checks ==\n");
  if (spec.view_cfds.empty()) {
    std::printf("  (no view CFDs declared)\n");
    return 0;
  }
  for (const auto& [view_name, cfd] : spec.view_cfds) {
    const SPCUView& view = spec.views.at(view_name);
    auto r = IsPropagated(spec.catalog, view, spec.source_cfds, cfd,
                          options);
    if (!r.ok()) return Fail(r.status());
    std::string rendered = FormatCFD(cfd, spec.catalog.pool(), view_name,
                                     ViewAttrNames(view));
    std::printf("  %-60s : %s\n", rendered.c_str(),
                *r ? "PROPAGATED" : "NOT propagated");
    if (!*r) ++violations;
  }
  return violations == 0 ? 0 : 2;
}

int RunCover(Spec& spec) {
  std::printf("== minimal propagation covers ==\n");
  for (const std::string& name : spec.view_names) {
    const SPCUView& view = spec.views.at(name);
    auto result =
        PropagationCoverSPCU(spec.catalog, view, spec.source_cfds);
    if (!result.ok()) return Fail(result.status());
    std::printf("view %s (%zu CFDs%s%s):\n", name.c_str(),
                result->cover.size(),
                result->always_empty ? ", ALWAYS EMPTY" : "",
                result->truncated ? ", TRUNCATED" : "");
    for (const CFD& c : result->cover) {
      std::printf("  %s\n",
                  FormatCFD(c, spec.catalog.pool(), name,
                            ViewAttrNames(view))
                      .c_str());
    }
  }
  return 0;
}

int RunEmptiness(Spec& spec, const EmptinessOptions& options) {
  std::printf("== emptiness analysis ==\n");
  for (const std::string& name : spec.view_names) {
    auto r = IsAlwaysEmpty(spec.catalog, spec.views.at(name),
                           spec.source_cfds, options);
    if (!r.ok()) return Fail(r.status());
    std::printf("  view %-20s : %s\n", name.c_str(),
                *r ? "always empty under Sigma" : "satisfiable");
  }
  return 0;
}

int RunValidate(Spec& spec) {
  std::printf("== data validation ==\n");
  auto db = spec.MakeDatabase();
  if (!db.ok()) return Fail(db.status());

  int total_violations = 0;
  // Source CFDs against the source relations.
  for (const CFD& c : spec.source_cfds) {
    const Relation& rel = db->relation(c.relation);
    auto v = FindViolations(rel.tuples(), c, rel.schema().arity());
    if (!v.ok()) return Fail(v.status());
    if (!v->empty()) {
      total_violations += static_cast<int>(v->size());
      std::printf("  %s: %zu violation(s) on %s\n",
                  c.ToString(spec.catalog).c_str(), v->size(),
                  rel.schema().name().c_str());
    }
  }
  // View CFDs against the materialized views.
  for (const auto& [view_name, cfd] : spec.view_cfds) {
    const SPCUView& view = spec.views.at(view_name);
    auto rows = Evaluate(*db, view);
    if (!rows.ok()) return Fail(rows.status());
    auto v = FindViolations(*rows, cfd, view.OutputArity());
    if (!v.ok()) return Fail(v.status());
    if (!v->empty()) {
      total_violations += static_cast<int>(v->size());
      std::printf("  %s: %zu violation(s) on view %s (%zu rows)\n",
                  FormatCFD(cfd, spec.catalog.pool(), view_name,
                            ViewAttrNames(view))
                      .c_str(),
                  v->size(), view_name.c_str(), rows->size());
    }
  }
  if (total_violations == 0) {
    std::printf("  all declared CFDs hold on the data\n");
    return 0;
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s SPEC [--check|--cover|--emptiness|--validate]"
                 " [--general]\n",
                 argv[0]);
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  auto spec = ParseSpec(buffer.str());
  if (!spec.ok()) return Fail(spec.status());

  bool check = false, cover = false, emptiness = false, validate = false;
  bool general = false;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--check")) check = true;
    else if (!std::strcmp(argv[i], "--cover")) cover = true;
    else if (!std::strcmp(argv[i], "--emptiness")) emptiness = true;
    else if (!std::strcmp(argv[i], "--validate")) validate = true;
    else if (!std::strcmp(argv[i], "--general")) general = true;
    else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (!check && !cover && !emptiness && !validate) {
    check = cover = emptiness = validate = true;
  }

  PropagationOptions prop_options;
  prop_options.general_setting = general;
  EmptinessOptions empt_options;
  empt_options.general_setting = general;

  int rc = 0;
  auto update = [&rc](int r) { rc = std::max(rc, r); };
  if (emptiness) update(RunEmptiness(*spec, empt_options));
  if (check) update(RunCheck(*spec, prop_options));
  if (cover) update(RunCover(*spec));
  if (validate) update(RunValidate(*spec));
  return rc;
}
