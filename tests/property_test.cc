// Property-based tests on randomized workloads (parameterized over
// seeds): the invariants that tie PropCFD_SPC, the propagation test, the
// chase and concrete evaluation together.
//
//   P1 (cover soundness):    every CFD in a computed cover passes the
//                            independent propagation test.
//   P2 (cover completeness): the propagation test and cover implication
//                            agree on random query CFDs.
//   P3 (semantic soundness): on a random source instance satisfying
//                            Sigma, the materialized view satisfies
//                            every cover CFD.
//   P4 (minimality):         re-running MinCover on a cover is a no-op.

#include <gtest/gtest.h>

#include "src/cfd/implication.h"
#include "src/cfd/mincover.h"
#include "src/cover/propcfd_spc.h"
#include "src/data/eval.h"
#include "src/data/validate.h"
#include "src/gen/generators.h"
#include "src/propagation/propagation.h"

namespace cfdprop {
namespace {

struct Workload {
  Catalog catalog;
  std::vector<CFD> sigma;
  SPCView view;
};

Workload MakeWorkload(uint64_t seed) {
  SchemaGenOptions schema_options;
  schema_options.num_relations = 4;
  schema_options.min_arity = 4;
  schema_options.max_arity = 7;
  Workload w{GenerateSchema(schema_options, seed), {}, {}};

  CFDGenOptions cfd_options;
  cfd_options.count = 12;
  cfd_options.min_lhs = 1;
  cfd_options.max_lhs = 3;
  cfd_options.var_pct = 50;
  cfd_options.const_hi = 8;  // small constants so patterns interact
  w.sigma = GenerateCFDs(w.catalog, cfd_options, seed + 1);

  ViewGenOptions view_options;
  view_options.num_projection = 6;
  view_options.num_selections = 2 + seed % 3;
  view_options.num_atoms = 2 + seed % 2;
  view_options.const_hi = 8;
  auto view = GenerateSPCView(w.catalog, view_options, seed + 2);
  EXPECT_TRUE(view.ok());
  w.view = *view;
  return w;
}

class CoverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverPropertyTest, P1_CoverMembersAreAllPropagated) {
  Workload w = MakeWorkload(GetParam());
  auto result = PropagationCoverSPC(w.catalog, w.view, w.sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  if (result->always_empty) return;  // vacuously sound
  for (const CFD& c : result->cover) {
    auto prop = IsPropagated(w.catalog, w.view, w.sigma, c);
    ASSERT_TRUE(prop.ok()) << prop.status();
    EXPECT_TRUE(*prop) << "not propagated: " << c.ToString(w.catalog)
                       << "\nview: " << w.view.ToString(w.catalog);
  }
}

TEST_P(CoverPropertyTest, P2_CoverAgreesWithDirectTestOnRandomQueries) {
  Workload w = MakeWorkload(GetParam());
  auto result = PropagationCoverSPC(w.catalog, w.view, w.sigma);
  ASSERT_TRUE(result.ok());
  if (result->always_empty) return;

  // Random query CFDs over the view schema.
  Rng rng(GetParam() + 99);
  const size_t arity = w.view.OutputArity();
  for (int q = 0; q < 20; ++q) {
    size_t k = rng.Uniform(1, 2);
    std::vector<AttrIndex> lhs;
    std::vector<PatternValue> pats;
    for (size_t i = 0; i < k; ++i) {
      lhs.push_back(static_cast<AttrIndex>(rng.Below(arity)));
      pats.push_back(rng.Percent(50)
                         ? PatternValue::Wildcard()
                         : PatternValue::Constant(w.catalog.pool().InternInt(
                               static_cast<int64_t>(rng.Uniform(1, 8)))));
    }
    AttrIndex rhs = static_cast<AttrIndex>(rng.Below(arity));
    auto made = CFD::Make(kViewSchemaId, lhs, pats, rhs,
                          PatternValue::Wildcard());
    if (!made.ok() || made.value().IsTrivial()) continue;
    CFD query = std::move(made).value();

    auto direct = IsPropagated(w.catalog, w.view, w.sigma, query);
    auto via_cover = Implies(result->cover, query, arity);
    ASSERT_TRUE(direct.ok() && via_cover.ok());
    EXPECT_EQ(*direct, *via_cover)
        << "disagreement on " << query.ToString(w.catalog)
        << "\nview: " << w.view.ToString(w.catalog);
  }
}

TEST_P(CoverPropertyTest, P3_CoverHoldsOnMaterializedViews) {
  Workload w = MakeWorkload(GetParam());
  auto result = PropagationCoverSPC(w.catalog, w.view, w.sigma);
  ASSERT_TRUE(result.ok());

  DataGenOptions data_options;
  data_options.rows_per_relation = 12;
  data_options.value_range = 6;
  auto db = GenerateSatisfyingDatabase(w.catalog, w.sigma, data_options,
                                       GetParam() + 7);
  if (!db.ok()) return;  // repair did not converge for this seed; skip

  auto rows = Evaluate(*db, w.view);
  ASSERT_TRUE(rows.ok()) << rows.status();
  if (result->always_empty) {
    EXPECT_TRUE(rows->empty())
        << "cover says always-empty but the view has tuples";
    return;
  }
  for (const CFD& c : result->cover) {
    auto sat = Satisfies(*rows, c, w.view.OutputArity());
    ASSERT_TRUE(sat.ok());
    EXPECT_TRUE(*sat) << "cover CFD violated on data: "
                      << c.ToString(w.catalog);
  }
}

TEST_P(CoverPropertyTest, P4_CoverIsAlreadyMinimal) {
  Workload w = MakeWorkload(GetParam());
  auto result = PropagationCoverSPC(w.catalog, w.view, w.sigma);
  ASSERT_TRUE(result.ok());
  auto again = MinCover(result->cover, w.view.OutputArity());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), result->cover.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverPropertyTest,
                         ::testing::Range<uint64_t>(1, 61));

// SPCU covers: sound by construction (every candidate is re-checked by
// the union-level propagation test); verify that plus data-level
// satisfaction on materialized unions.
class SPCUCoverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SPCUCoverPropertyTest, UnionCoverIsSoundAndHoldsOnData) {
  const uint64_t seed = GetParam();
  SchemaGenOptions schema_options;
  schema_options.num_relations = 3;
  schema_options.min_arity = 4;
  schema_options.max_arity = 6;
  Catalog catalog = GenerateSchema(schema_options, seed);

  CFDGenOptions cfd_options;
  cfd_options.count = 10;
  cfd_options.min_lhs = 1;
  cfd_options.max_lhs = 2;
  cfd_options.var_pct = 50;
  cfd_options.const_hi = 6;
  std::vector<CFD> sigma = GenerateCFDs(catalog, cfd_options, seed + 1);

  // Two union-compatible disjuncts: same |Y|.
  ViewGenOptions view_options;
  view_options.num_projection = 4;
  view_options.num_selections = 2;
  view_options.num_atoms = 1;
  view_options.const_hi = 6;
  SPCUView view;
  auto v1 = GenerateSPCView(catalog, view_options, seed + 2);
  auto v2 = GenerateSPCView(catalog, view_options, seed + 3);
  ASSERT_TRUE(v1.ok() && v2.ok());
  if (v1->OutputArity() != v2->OutputArity()) return;  // rare clamping
  view.disjuncts = {*v1, *v2};

  auto cover = PropagationCoverSPCU(catalog, view, sigma);
  ASSERT_TRUE(cover.ok()) << cover.status();

  for (const CFD& c : cover->cover) {
    auto prop = IsPropagated(catalog, view, sigma, c);
    ASSERT_TRUE(prop.ok());
    EXPECT_TRUE(*prop) << "unsound union cover member: "
                       << c.ToString(catalog);
  }

  DataGenOptions data_options;
  data_options.rows_per_relation = 10;
  data_options.value_range = 6;
  auto db = GenerateSatisfyingDatabase(catalog, sigma, data_options,
                                       seed + 4);
  if (!db.ok()) return;
  auto rows = Evaluate(*db, view);
  ASSERT_TRUE(rows.ok());
  for (const CFD& c : cover->cover) {
    if (cover->always_empty) break;
    auto sat = Satisfies(*rows, c, view.OutputArity());
    ASSERT_TRUE(sat.ok());
    EXPECT_TRUE(*sat) << "union cover CFD violated on data: "
                      << c.ToString(catalog);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SPCUCoverPropertyTest,
                         ::testing::Range<uint64_t>(1, 25));

class ChasePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChasePropertyTest, ImplicationIsSoundOnData) {
  // If sigma |= phi, then any database satisfying sigma satisfies phi.
  SchemaGenOptions schema_options;
  schema_options.num_relations = 1;
  schema_options.min_arity = 5;
  schema_options.max_arity = 5;
  Catalog cat = GenerateSchema(schema_options, GetParam());

  CFDGenOptions cfd_options;
  cfd_options.count = 8;
  cfd_options.min_lhs = 1;
  cfd_options.max_lhs = 2;
  cfd_options.var_pct = 50;
  cfd_options.const_hi = 5;
  std::vector<CFD> sigma = GenerateCFDs(cat, cfd_options, GetParam() + 1);

  DataGenOptions data_options;
  data_options.rows_per_relation = 15;
  data_options.value_range = 5;
  auto db = GenerateSatisfyingDatabase(cat, sigma, data_options,
                                       GetParam() + 2);
  if (!db.ok()) return;

  // Random candidate phis; those implied must hold on the data.
  Rng rng(GetParam() + 3);
  for (int q = 0; q < 25; ++q) {
    std::vector<AttrIndex> lhs = {static_cast<AttrIndex>(rng.Below(5))};
    AttrIndex rhs = static_cast<AttrIndex>(rng.Below(5));
    auto made = CFD::Make(
        0, lhs,
        {rng.Percent(50) ? PatternValue::Wildcard()
                         : PatternValue::Constant(cat.pool().InternInt(
                               static_cast<int64_t>(rng.Uniform(1, 5))))},
        rhs, PatternValue::Wildcard());
    if (!made.ok() || made.value().IsTrivial()) continue;
    CFD phi = std::move(made).value();
    auto implied = Implies(sigma, phi, 5);
    ASSERT_TRUE(implied.ok());
    if (*implied) {
      auto sat = Satisfies(*db, phi);
      ASSERT_TRUE(sat.ok());
      EXPECT_TRUE(*sat) << "implied CFD violated on satisfying data: "
                        << phi.ToString(cat);
    }
  }
}

TEST_P(ChasePropertyTest, MinCoverPreservesEquivalence) {
  SchemaGenOptions schema_options;
  schema_options.num_relations = 1;
  schema_options.min_arity = 6;
  schema_options.max_arity = 6;
  Catalog cat = GenerateSchema(schema_options, GetParam() + 50);

  CFDGenOptions cfd_options;
  cfd_options.count = 10;
  cfd_options.min_lhs = 1;
  cfd_options.max_lhs = 3;
  cfd_options.var_pct = 60;
  cfd_options.const_hi = 4;
  std::vector<CFD> sigma = GenerateCFDs(cat, cfd_options, GetParam() + 51);

  auto cover = MinCover(sigma, 6);
  ASSERT_TRUE(cover.ok());
  EXPECT_LE(cover->size(), sigma.size());
  for (const CFD& c : sigma) {
    auto implied = Implies(*cover, c, 6);
    ASSERT_TRUE(implied.ok());
    EXPECT_TRUE(*implied) << "cover lost " << c.ToString(cat);
  }
  for (const CFD& c : *cover) {
    auto implied = Implies(sigma, c, 6);
    ASSERT_TRUE(implied.ok());
    EXPECT_TRUE(*implied) << "cover invented " << c.ToString(cat);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChasePropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace cfdprop
