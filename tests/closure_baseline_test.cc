#include "src/cover/closure_baseline.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/base/rng.h"
#include "src/cfd/implication.h"
#include "src/cfd/mincover.h"
#include "src/cover/rbr.h"

namespace cfdprop {
namespace {

constexpr size_t kArity = 6;

CFD FD(std::vector<AttrIndex> lhs, AttrIndex rhs) {
  return CFD::FD(0, std::move(lhs), rhs).value();
}

TEST(AttributeClosureTest, BasicClosure) {
  std::vector<CFD> fds = {FD({0}, 1), FD({1}, 2), FD({3}, 4)};
  auto c = AttributeClosure(fds, {0}, kArity);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, (std::vector<AttrIndex>{0, 1, 2}));

  auto c2 = AttributeClosure(fds, {3}, kArity);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(*c2, (std::vector<AttrIndex>{3, 4}));

  auto c3 = AttributeClosure(fds, {5}, kArity);
  ASSERT_TRUE(c3.ok());
  EXPECT_EQ(*c3, (std::vector<AttrIndex>{5}));
}

TEST(AttributeClosureTest, MultiAttributeLhs) {
  std::vector<CFD> fds = {FD({0, 1}, 2), FD({2}, 3)};
  auto c = AttributeClosure(fds, {0}, kArity);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, (std::vector<AttrIndex>{0}));  // needs both 0 and 1

  auto c2 = AttributeClosure(fds, {0, 1}, kArity);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(*c2, (std::vector<AttrIndex>{0, 1, 2, 3}));
}

TEST(AttributeClosureTest, RejectsPatternCFDs) {
  ValuePool pool;
  CFD cfd = CFD::Make(0, {0}, {PatternValue::Constant(pool.Intern("a"))}, 1,
                      PatternValue::Wildcard())
                .value();
  auto c = AttributeClosure({cfd}, {0}, kArity);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnsupported);
}

TEST(ClosureBaselineTest, ProjectionCoverMatchesRBRSemantics) {
  // {A -> B, B -> C, C -> D}, project onto {A, D}: cover must give A -> D.
  std::vector<CFD> fds = {FD({0}, 1), FD({1}, 2), FD({2}, 3)};
  auto cover = ClosureBasedProjectionCover(fds, {0, 3}, kArity);
  ASSERT_TRUE(cover.ok());
  ASSERT_EQ(cover->size(), 1u);
  EXPECT_EQ((*cover)[0], FD({0}, 3));
}

TEST(ClosureBaselineTest, MinimalLhsOnlySuppressesSupersets) {
  std::vector<CFD> fds = {FD({0}, 2), FD({0, 1}, 3)};
  auto cover = ClosureBasedProjectionCover(fds, {0, 1, 2, 3}, kArity);
  ASSERT_TRUE(cover.ok());
  // A -> C present; AB -> C suppressed (superset of A); AB -> D present.
  bool has_a_c = false, has_ab_c = false, has_ab_d = false;
  for (const CFD& c : *cover) {
    if (c.rhs == 2 && c.lhs == std::vector<AttrIndex>{0}) has_a_c = true;
    if (c.rhs == 2 && c.lhs == std::vector<AttrIndex>{0, 1}) has_ab_c = true;
    if (c.rhs == 3 && c.lhs == std::vector<AttrIndex>{0, 1}) has_ab_d = true;
  }
  EXPECT_TRUE(has_a_c);
  EXPECT_FALSE(has_ab_c);
  EXPECT_TRUE(has_ab_d);
}

TEST(ClosureBaselineTest, ExponentialExampleProducesAllCombinations) {
  // Example 4.1 with n = 3: the projected cover holds all 8 choices.
  const size_t n = 3;
  const size_t arity = 3 * n + 1;
  std::vector<CFD> fds;
  std::vector<AttrIndex> cs, y;
  for (size_t i = 0; i < n; ++i) {
    AttrIndex a = static_cast<AttrIndex>(i);
    AttrIndex b = static_cast<AttrIndex>(n + i);
    AttrIndex c = static_cast<AttrIndex>(2 * n + i);
    fds.push_back(FD({a}, c));
    fds.push_back(FD({b}, c));
    cs.push_back(c);
    y.push_back(a);
    y.push_back(b);
  }
  fds.push_back(FD(cs, static_cast<AttrIndex>(3 * n)));
  y.push_back(static_cast<AttrIndex>(3 * n));

  auto cover = ClosureBasedProjectionCover(fds, y, arity);
  ASSERT_TRUE(cover.ok());

  size_t d_fds = 0;
  for (const CFD& c : *cover) {
    if (c.rhs == 3 * n) ++d_fds;
  }
  EXPECT_EQ(d_fds, 8u);
}

TEST(ClosureBaselineTest, AgreesWithImplicationOnRandomY) {
  std::vector<CFD> fds = {FD({0}, 1), FD({1, 2}, 3), FD({3}, 4),
                          FD({4}, 0)};
  std::vector<AttrIndex> y = {0, 2, 4};
  auto cover = ClosureBasedProjectionCover(fds, y, kArity);
  ASSERT_TRUE(cover.ok());
  // Soundness: each member implied by the source FDs.
  for (const CFD& c : *cover) {
    auto implied = Implies(fds, c, kArity);
    ASSERT_TRUE(implied.ok());
    EXPECT_TRUE(*implied);
    // And mentions only Y attributes.
    for (AttrIndex a : c.lhs) {
      EXPECT_NE(std::find(y.begin(), y.end(), a), y.end());
    }
  }
  // Completeness spot-check: 4 -> 0 survives projection.
  auto implied = Implies(*cover, FD({4}, 0), kArity);
  ASSERT_TRUE(implied.ok());
  EXPECT_TRUE(*implied);
}

// Cross-validation: RBR and the closure method are independent
// implementations of projected FD covers; on random workloads their
// outputs must be logically equivalent.
class BaselineAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselineAgreementTest, RBRAndClosureCoversAreEquivalent) {
  Rng rng(GetParam());
  const size_t arity = 10;
  std::vector<CFD> fds;
  const size_t num_fds = 4 + rng.Below(8);
  for (size_t i = 0; i < num_fds; ++i) {
    size_t k = 1 + rng.Below(2);
    std::vector<AttrIndex> lhs;
    for (size_t j = 0; j < k; ++j) {
      lhs.push_back(static_cast<AttrIndex>(rng.Below(arity)));
    }
    AttrIndex rhs = static_cast<AttrIndex>(rng.Below(arity));
    auto fd = CFD::FD(0, lhs, rhs);
    if (fd.ok() && !fd.value().IsTrivial()) {
      fds.push_back(std::move(fd).value());
    }
  }
  std::vector<AttrIndex> y, drop;
  for (AttrIndex a = 0; a < arity; ++a) {
    (rng.Percent(60) ? y : drop).push_back(a);
  }
  if (y.empty()) return;

  auto closure_cover = ClosureBasedProjectionCover(fds, y, arity);
  auto rbr_cover = RBR(fds, drop, arity);
  ASSERT_TRUE(closure_cover.ok()) << closure_cover.status();
  ASSERT_TRUE(rbr_cover.ok()) << rbr_cover.status();
  ASSERT_FALSE(rbr_cover->truncated);

  auto equivalent =
      AreEquivalent(*closure_cover, rbr_cover->cover, arity);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(*equivalent)
      << "closure: " << closure_cover->size()
      << " CFDs, RBR: " << rbr_cover->cover.size() << " CFDs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineAgreementTest,
                         ::testing::Range<uint64_t>(1, 31));

TEST(ClosureBaselineTest, BudgetGuard) {
  std::vector<AttrIndex> big_y;
  for (AttrIndex i = 0; i < 30; ++i) big_y.push_back(i);
  ClosureBaselineOptions options;
  options.max_projection_attrs = 22;
  auto cover = ClosureBasedProjectionCover({}, big_y, 40, options);
  EXPECT_FALSE(cover.ok());
  EXPECT_EQ(cover.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace cfdprop
