#include "src/gen/generators.h"

#include <gtest/gtest.h>

#include "src/cfd/implication.h"
#include "src/data/validate.h"

namespace cfdprop {
namespace {

TEST(SchemaGenTest, RespectsBounds) {
  SchemaGenOptions options;
  options.num_relations = 12;
  options.min_arity = 10;
  options.max_arity = 20;
  Catalog cat = GenerateSchema(options, 1);
  EXPECT_EQ(cat.num_relations(), 12u);
  for (RelationId r = 0; r < cat.num_relations(); ++r) {
    EXPECT_GE(cat.relation(r).arity(), 10u);
    EXPECT_LE(cat.relation(r).arity(), 20u);
  }
  EXPECT_FALSE(cat.HasFiniteDomainAttr());
}

TEST(SchemaGenTest, DeterministicInSeed) {
  SchemaGenOptions options;
  Catalog a = GenerateSchema(options, 7);
  Catalog b = GenerateSchema(options, 7);
  ASSERT_EQ(a.num_relations(), b.num_relations());
  for (RelationId r = 0; r < a.num_relations(); ++r) {
    EXPECT_EQ(a.relation(r).arity(), b.relation(r).arity());
  }
}

TEST(SchemaGenTest, FiniteDomainsWhenRequested) {
  SchemaGenOptions options;
  options.finite_pct = 100;
  options.finite_domain_size = 3;
  Catalog cat = GenerateSchema(options, 3);
  EXPECT_TRUE(cat.HasFiniteDomainAttr());
  const Domain& d = cat.relation(0).attr(0).domain;
  ASSERT_TRUE(d.finite());
  EXPECT_EQ(d.values().size(), 3u);
}

TEST(CFDGenTest, CountLhsAndValidity) {
  Catalog cat = GenerateSchema({}, 1);
  CFDGenOptions options;
  options.count = 200;
  options.min_lhs = 3;
  options.max_lhs = 9;
  std::vector<CFD> sigma = GenerateCFDs(cat, options, 2);
  ASSERT_EQ(sigma.size(), 200u);
  for (const CFD& c : sigma) {
    ASSERT_LT(c.relation, cat.num_relations());
    EXPECT_TRUE(c.Validate(cat.relation(c.relation).arity()).ok());
    EXPECT_LE(c.lhs.size(), 9u);
    if (c.rhs_pat.is_wildcard()) {
      // Constant-RHS CFDs canonicalize away wildcard LHS attributes, so
      // the LHS-size lower bound only applies to variable-RHS CFDs.
      EXPECT_GE(c.lhs.size(), 3u);
    }
    EXPECT_FALSE(c.IsTrivial());
  }
}

TEST(CFDGenTest, VarPctControlsWildcards) {
  Catalog cat = GenerateSchema({}, 1);
  CFDGenOptions all_wild;
  all_wild.var_pct = 100;
  for (const CFD& c : GenerateCFDs(cat, all_wild, 3)) {
    EXPECT_TRUE(c.IsPlainFD());
  }
  CFDGenOptions all_const;
  all_const.var_pct = 0;
  for (const CFD& c : GenerateCFDs(cat, all_const, 3)) {
    EXPECT_TRUE(c.rhs_pat.is_constant());
    for (const PatternValue& p : c.lhs_pats) {
      EXPECT_TRUE(p.is_constant());
    }
  }
}

TEST(CFDGenTest, DeterministicInSeed) {
  Catalog cat = GenerateSchema({}, 1);
  CFDGenOptions options;
  options.count = 50;
  std::vector<CFD> a = GenerateCFDs(cat, options, 9);
  std::vector<CFD> b = GenerateCFDs(cat, options, 9);
  EXPECT_EQ(a, b);
}

TEST(ViewGenTest, ParametersAreHonored) {
  Catalog cat = GenerateSchema({}, 1);
  ViewGenOptions options;
  options.num_projection = 25;
  options.num_selections = 10;
  options.num_atoms = 4;
  auto view = GenerateSPCView(cat, options, 4);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->atoms.size(), 4u);
  EXPECT_EQ(view->selections.size(), 10u);
  EXPECT_EQ(view->OutputArity(), 25u);
  EXPECT_TRUE(view->Validate(cat).ok());
}

TEST(ViewGenTest, ProjectionClampedToColumnSpace) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation("R", {"A", "B", "C"}).ok());
  ViewGenOptions options;
  options.num_projection = 100;
  options.num_atoms = 1;
  options.num_selections = 0;
  auto view = GenerateSPCView(cat, options, 5);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->OutputArity(), 3u);
}

TEST(DataGenTest, SatisfiesSigmaAfterRepair) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation("R", {"A", "B", "C", "D"}).ok());
  std::vector<CFD> sigma = {
      CFD::FD(0, {0}, 1).value(),
      CFD::Make(0, {1}, {PatternValue::Wildcard()}, 2,
                PatternValue::Constant(cat.pool().Intern("5")))
          .value()};
  DataGenOptions options;
  options.rows_per_relation = 30;
  auto db = GenerateSatisfyingDatabase(cat, sigma, options, 11);
  ASSERT_TRUE(db.ok()) << db.status();
  auto sat = SatisfiesAll(*db, sigma);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
  EXPECT_GT(db->relation(0).size(), 0u);
}

TEST(DataGenTest, WorksOnGeneratedWorkload) {
  SchemaGenOptions schema_options;
  schema_options.num_relations = 3;
  schema_options.min_arity = 4;
  schema_options.max_arity = 6;
  Catalog cat = GenerateSchema(schema_options, 21);
  CFDGenOptions cfd_options;
  cfd_options.count = 6;
  cfd_options.min_lhs = 1;
  cfd_options.max_lhs = 2;
  cfd_options.var_pct = 60;
  cfd_options.const_hi = 6;  // small range so patterns fire
  std::vector<CFD> sigma = GenerateCFDs(cat, cfd_options, 22);

  DataGenOptions data_options;
  data_options.rows_per_relation = 20;
  // Random workloads can be unsatisfiable (two all-tuple constants on one
  // attribute); scan a few seeds and require at least one success.
  bool succeeded = false;
  for (uint64_t seed = 23; seed < 33 && !succeeded; ++seed) {
    auto db = GenerateSatisfyingDatabase(cat, sigma, data_options, seed);
    if (!db.ok()) {
      EXPECT_EQ(db.status().code(), StatusCode::kInconsistent);
      break;  // unsatisfiability does not depend on the data seed
    }
    auto sat = SatisfiesAll(*db, sigma);
    ASSERT_TRUE(sat.ok());
    EXPECT_TRUE(*sat);
    succeeded = true;
  }
  // Either the workload was provably unsatisfiable or we produced a
  // satisfying database; both are correct generator behaviours. With
  // this seed the workload is satisfiable, so expect success.
  auto satisfiable = [&] {
    for (RelationId r = 0; r < cat.num_relations(); ++r) {
      std::vector<CFD> on_r;
      for (const CFD& c : sigma) {
        if (c.relation == r) on_r.push_back(c);
      }
      auto s = IsSatisfiable(on_r, cat.relation(r).arity());
      if (!s.ok() || !*s) return false;
    }
    return true;
  }();
  EXPECT_EQ(succeeded, satisfiable);
}

}  // namespace
}  // namespace cfdprop
