// Concurrency stress: PropagateBatch racing AddCfd/RetractCfd from a
// mutator thread. Designed to run under ThreadSanitizer (the CI
// sanitizer jobs build with -fsanitize=thread): every data path the race
// can touch — sigma snapshots, cache lines, generation checks, stats —
// is exercised, and the served covers are checked against the only two
// covers that can be correct (sigma with and without the churned CFD),
// so a torn read would fail the assertion even without TSan.
//
// Everything that interns into the ValuePool (catalog construction,
// view building, CFD constants) happens before the threads start: the
// engine's thread-safety contract requires pre-built inputs, and TSan
// verifies the serving/mutation paths then never touch the pool.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cover/propcfd_spc.h"
#include "src/engine/engine.h"

namespace cfdprop {
namespace {

Catalog MakeCatalog() {
  Catalog cat;
  EXPECT_TRUE(cat.AddRelation("R", {"A", "B", "C", "D"}).ok());
  EXPECT_TRUE(cat.AddRelation("S", {"E", "F"}).ok());
  return cat;
}

std::vector<CFD> MakeSigma() {
  return {CFD::FD(0, {0}, 1).value(),   // R: A -> B
          CFD::FD(0, {1}, 2).value(),   // R: B -> C
          CFD::FD(1, {0}, 1).value()};  // S: E -> F
}

SPCView MakeView(Catalog& cat, const char* d_const) {
  SPCViewBuilder b(cat);
  size_t r = b.AddAtom(0);
  EXPECT_TRUE(b.SelectConst(r, "D", d_const).ok());
  EXPECT_TRUE(b.Project(r, "A").ok());
  EXPECT_TRUE(b.Project(r, "C").ok());
  auto v = b.Build();
  EXPECT_TRUE(v.ok());
  return *v;
}

TEST(EngineStressTest, BatchesRaceMutatorWithoutTearingOrStaleServes) {
  EngineOptions options;
  options.num_threads = 4;
  options.cache_capacity = 64;
  Engine engine(MakeCatalog(), options);

  auto s0 = engine.RegisterSigma(MakeSigma());
  auto s1 = engine.RegisterSigma({CFD::FD(0, {0}, 2).value()});  // A -> C
  ASSERT_TRUE(s0.ok() && s1.ok());

  // The churned CFD and every view are built (and every constant
  // interned) before any thread starts.
  const CFD churned = CFD::FD(0, {0}, 3).value();  // R: A -> D
  std::vector<Engine::Request> requests;
  std::vector<SPCView> views;
  for (int i = 0; i < 6; ++i) {
    views.push_back(MakeView(engine.catalog(), std::to_string(i).c_str()));
    requests.push_back({views.back(), *s0});
    requests.push_back({views.back(), *s1});
  }
  SPCUView u01;
  u01.disjuncts = {views[0], views[1]};
  requests.push_back({u01, *s0});

  // The two covers each s0 request may legally serve: computed from the
  // base sigma and from the churned sigma. s1 is never mutated, so its
  // covers must stay pinned to one value throughout.
  auto one_shot_spc = [&](const SPCView& v, std::vector<CFD> sigma) {
    auto r = PropagationCoverSPC(engine.catalog(), v, std::move(sigma));
    EXPECT_TRUE(r.ok());
    return r.ok() ? r->cover : std::vector<CFD>{};
  };
  std::vector<CFD> with_churn = MakeSigma();
  with_churn.push_back(churned);
  std::vector<std::vector<CFD>> base_covers, churn_covers, s1_covers;
  for (const SPCView& v : views) {
    base_covers.push_back(one_shot_spc(v, MakeSigma()));
    churn_covers.push_back(one_shot_spc(v, with_churn));
    s1_covers.push_back(one_shot_spc(v, {CFD::FD(0, {0}, 2).value()}));
  }
  auto union_base = PropagationCoverSPCU(engine.catalog(), u01, MakeSigma());
  auto union_churn = PropagationCoverSPCU(engine.catalog(), u01, with_churn);
  ASSERT_TRUE(union_base.ok() && union_churn.ok());

  constexpr int kMutations = 40;
  constexpr int kBatchRounds = 30;
  std::atomic<bool> stop{false};

  std::thread mutator([&] {
    for (int i = 0; i < kMutations; ++i) {
      ASSERT_TRUE(engine.AddCfd(*s0, churned).ok());
      ASSERT_TRUE(engine.RetractCfd(*s0, churned).ok());
    }
    stop.store(true, std::memory_order_release);
  });

  // Race batches against the mutator, then keep serving until the churn
  // script finishes so late mutations are raced too.
  int rounds = 0;
  while (rounds < kBatchRounds || !stop.load(std::memory_order_acquire)) {
    auto results = engine.PropagateBatch(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status();
      const std::vector<CFD>& got = results[i].value().cover->cover;
      if (i + 1 == results.size()) {
        EXPECT_TRUE(got == union_base->cover || got == union_churn->cover)
            << "union cover matches neither sigma state";
      } else if (requests[i].sigma_id == *s1) {
        EXPECT_EQ(got, s1_covers[i / 2])
            << "the unmutated sigma's covers must never change";
      } else {
        EXPECT_TRUE(got == base_covers[i / 2] || got == churn_covers[i / 2])
            << "cover matches neither the base nor the churned sigma";
      }
    }
    ++rounds;
  }
  mutator.join();

  // Quiesced: the churn round-tripped, so everything equals the base
  // covers again.
  auto final_results = engine.PropagateBatch(requests);
  for (size_t i = 0; i + 1 < final_results.size(); ++i) {
    ASSERT_TRUE(final_results[i].ok());
    const auto& got = final_results[i].value().cover->cover;
    EXPECT_EQ(got, requests[i].sigma_id == *s1 ? s1_covers[i / 2]
                                               : base_covers[i / 2]);
  }
  EXPECT_EQ(engine.Stats().sigma_mutations,
            static_cast<uint64_t>(2 * kMutations));
  EXPECT_EQ(engine.Stats().errors, 0u);
}

TEST(EngineStressTest, ConcurrentRegistrationAndServing) {
  EngineOptions options;
  options.num_threads = 2;
  Engine engine(MakeCatalog(), options);
  auto s0 = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(s0.ok());
  SPCView view = MakeView(engine.catalog(), "7");

  // RegisterSigma is thread-safe against serving: new sets appear with
  // consecutive ids while requests against s0 keep succeeding.
  std::thread registrar([&] {
    for (int i = 0; i < 50; ++i) {
      auto id = engine.RegisterSigma({CFD::FD(1, {0}, 1).value()});
      ASSERT_TRUE(id.ok());
    }
  });
  for (int i = 0; i < 200; ++i) {
    auto r = engine.Propagate(view, *s0);
    ASSERT_TRUE(r.ok());
  }
  registrar.join();
  EXPECT_EQ(engine.num_sigmas(), 51u);
}

TEST(EngineStressTest, HeldCoversStayValidAcrossEvictionRetractionClear) {
  EngineOptions options;
  options.num_threads = 1;
  options.cache_capacity = 2;  // tiny: every serve evicts something
  options.cache_shards = 1;
  Engine engine(MakeCatalog(), options);
  auto s0 = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(s0.ok());

  std::vector<SPCView> views;
  for (int i = 0; i < 8; ++i) {
    views.push_back(MakeView(engine.catalog(), std::to_string(i).c_str()));
  }

  // Hold every result while later serves evict, a retraction
  // invalidates, and Clear drops the rest.
  std::vector<EngineResult> held;
  std::vector<std::vector<CFD>> copies;
  for (const SPCView& v : views) {
    auto r = engine.Propagate(v, *s0);
    ASSERT_TRUE(r.ok());
    copies.push_back(r->cover->cover);
    held.push_back(std::move(r).value());
  }
  ASSERT_TRUE(engine.RetractCfd(*s0, MakeSigma()[1]).ok());
  engine.ClearCache();
  for (const SPCView& v : views) {
    ASSERT_TRUE(engine.Propagate(v, *s0).ok());
  }
  for (size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i].cover->cover, copies[i])
        << "held cover " << i << " mutated or dangled";
  }
}

}  // namespace
}  // namespace cfdprop
