// Loopback differential suite: covers served through CoverServer /
// CoverClient over a real TCP socket must be byte-identical to direct
// CatalogService::SubmitBatch serving of the same spec — cold and warm —
// and per-tenant admission control must reject a pipelined burst's
// over-limit batches deterministically, with the counters visible in
// service stats.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "src/net/cover_client.h"
#include "src/net/cover_server.h"
#include "src/parser/parser.h"
#include "src/service/catalog_service.h"

namespace cfdprop {
namespace net {
namespace {

/// examples/specs/multi_tenant_demo.spec minus the churn script (tests
/// embed their inputs; the CLI-level CI diffs the real file): two
/// relations, three SPC views, a union assembling from per-SPC lines,
/// and a serve round with a repeated hot view.
constexpr char kDemoSpec[] = R"(
relation T(region, cust, tier, rep)
relation P(sku, region, price)

cfd T: [region] -> rep
cfd T: [tier] -> rep
cfd P: [sku, region] -> price

view ByRegion = pi("r" as tag, 0.region as region, 0.rep as rep) from(T)
view GoldReps = pi("g" as tag, 0.cust as cust, 0.rep as rep) sigma(0.tier = "gold") from(T)
view Pricing  = pi(0.sku as sku, 0.region as region, 0.price as price) sigma(0.region = "emea") from(P)

union AllReps = ByRegion, GoldReps

serve ByRegion, GoldReps, Pricing, AllReps, ByRegion
)";

/// Single-threaded engines on both sides: the serve round repeats
/// ByRegion, whose hit/miss split must be deterministic for the
/// byte-for-byte comparison (cache_hit travels in the encoding).
ServiceOptions DeterministicOptions() {
  ServiceOptions options;
  options.engine.num_threads = 1;
  return options;
}

/// The direct-serving side of the differential: one SubmitBatch on a
/// plain CatalogService, results wrapped for the wire encoder.
class DirectSide {
 public:
  DirectSide() : service_(DeterministicOptions()) {
    auto spec = ParseSpec(kDemoSpec);
    EXPECT_TRUE(spec.ok()) << spec.status();
    spec_ = std::move(spec).value();
    auto handle = service_.OpenCatalog("eu", std::move(spec_.catalog),
                                       {spec_.source_cfds});
    EXPECT_TRUE(handle.ok()) << handle.status();
    handle_ = std::move(handle).value();
  }

  WireBatchResult ServeRound() {
    std::vector<Engine::Request> requests;
    for (const std::string& view : spec_.ServingRound()) {
      requests.push_back({spec_.views.at(view), 0});
    }
    auto submitted = service_.SubmitBatch("eu", std::move(requests));
    EXPECT_TRUE(submitted.ok()) << submitted.status();
    WireBatchResult out;
    out.results = submitted->get().results;
    return out;
  }

  const ValuePool& pool() const {
    return handle_->engine().catalog().pool();
  }

 private:
  CatalogService service_;
  Spec spec_;
  TenantHandle handle_;
};

TEST(NetLoopbackTest, NetworkCoversAreByteIdenticalToDirectServing) {
  DirectSide direct;

  CatalogService service(DeterministicOptions());
  CoverServer server(service);
  ASSERT_TRUE(server.Start().ok());

  CoverClientOptions client_options;
  client_options.port = server.port();
  CoverClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  auto opened = client.OpenCatalog("eu", kDemoSpec);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(opened->restored, 0u) << "no snapshot dir: cold start";

  // The client's decode pool: same spec parsed client-side (as the CLI
  // does for rendering), but with its own interning history.
  auto client_spec = ParseSpec(kDemoSpec);
  ASSERT_TRUE(client_spec.ok());
  ValuePool& client_pool = client_spec->catalog.pool();
  const std::vector<std::string> round = client_spec->ServingRound();
  ASSERT_EQ(round.size(), 5u);

  // Cold round, then a warm repeat: every request a hit the second
  // time, and both rounds byte-identical to direct serving — the
  // re-encoding from each side's own pool erases process-local Value
  // ids, so equal bytes mean equal covers, flags, fingerprints and
  // hit patterns.
  for (int pass = 0; pass < 2; ++pass) {
    WireBatchResult direct_result = direct.ServeRound();
    auto net_result = client.SubmitBatch("eu", round, client_pool);
    ASSERT_TRUE(net_result.ok()) << net_result.status();
    ASSERT_TRUE(net_result->status.ok()) << net_result->status;
    ASSERT_EQ(net_result->results.size(), direct_result.results.size());

    EXPECT_EQ(EncodeSubmitBatchReply(Status::OK(), {*net_result},
                                     client_pool),
              EncodeSubmitBatchReply(Status::OK(), {direct_result},
                                     direct.pool()))
        << "pass " << pass;

    for (size_t i = 0; i < net_result->results.size(); ++i) {
      const auto& r = net_result->results[i];
      ASSERT_TRUE(r.ok());
      if (pass == 1) {
        EXPECT_TRUE(r->cache_hit) << "warm request " << i;
      }
    }
    // The union assembled from its two disjuncts' cache lines on the
    // cold pass (they were served earlier in the round).
    EXPECT_EQ(net_result->results[3]->disjunct_count, 2u);
    EXPECT_EQ(net_result->results[3]->disjunct_hits, 2u);
  }

  // Server-side hit pattern equals the in-process one: 5-view round
  // with one repeat and a fused union = 4 misses cold, then 5+5 hits
  // across the two passes (the fused union line hits warm).
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->tenants.size(), 1u);
  EXPECT_EQ(stats->tenants[0].batches_submitted, 2u);
  EXPECT_EQ(stats->tenants[0].admitted, 2u);
  EXPECT_EQ(stats->tenants[0].admission_rejected, 0u);

  server.Stop();
}

TEST(NetLoopbackTest, BurstOverInflightCapIsRejectedDeterministically) {
  ServiceOptions options = DeterministicOptions();
  options.dispatcher_threads = 1;
  options.admission.max_inflight_batches = 1;
  options.admission.max_queued_batches = 1;
  CatalogService service(options);
  CoverServer server(service);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.OpenSpec("eu", kDemoSpec).ok());

  CoverClientOptions client_options;
  client_options.port = server.port();
  CoverClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());

  auto client_spec = ParseSpec(kDemoSpec);
  ASSERT_TRUE(client_spec.ok());
  ValuePool& pool = client_spec->catalog.pool();
  const std::vector<std::string> round = client_spec->ServingRound();

  // Four batches in ONE frame: the server decides all four admissions
  // atomically (CatalogService::SubmitBatches), so with a cap of 1
  // running + 1 queued exactly the first two are admitted — regardless
  // of how fast the dispatcher drains. Slots 2 and 3 come back as the
  // typed ResourceExhausted rejection.
  auto burst = client.SubmitBatches("eu", {round, round, round, round}, pool);
  ASSERT_TRUE(burst.ok()) << burst.status();
  ASSERT_EQ(burst->size(), 4u);
  EXPECT_TRUE((*burst)[0].status.ok());
  EXPECT_TRUE((*burst)[1].status.ok());
  for (size_t i : {size_t{2}, size_t{3}}) {
    EXPECT_FALSE((*burst)[i].status.ok()) << "slot " << i;
    EXPECT_EQ((*burst)[i].status.code(), StatusCode::kResourceExhausted);
    EXPECT_TRUE((*burst)[i].results.empty());
  }
  // Admitted slots carry full result sets; the two admitted batches are
  // identical rounds, so the second is all hits.
  ASSERT_EQ((*burst)[0].results.size(), round.size());
  ASSERT_EQ((*burst)[1].results.size(), round.size());
  for (const auto& r : (*burst)[1].results) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->cache_hit);
  }

  // A second identical burst: the first one's batches all completed
  // (their replies arrived), so the pattern repeats exactly.
  auto again = client.SubmitBatches("eu", {round, round, round, round}, pool);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE((*again)[0].status.ok());
  EXPECT_TRUE((*again)[1].status.ok());
  EXPECT_EQ((*again)[2].status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ((*again)[3].status.code(), StatusCode::kResourceExhausted);

  // Counters through the wire: 4 admitted, 4 rejected, nothing left in
  // the service (both bursts' replies are back).
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->tenants.size(), 1u);
  EXPECT_EQ(stats->tenants[0].admitted, 4u);
  EXPECT_EQ(stats->tenants[0].admission_rejected, 4u);
  EXPECT_EQ(stats->tenants[0].queued, 0u);
  EXPECT_EQ(stats->batches_rejected, 4u);
  EXPECT_EQ(stats->batches_submitted, 4u);
  EXPECT_EQ(stats->batches_completed, 4u);

  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace cfdprop
