#include "src/cfd/mincover.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cfdprop {
namespace {

constexpr size_t kArity = 5;  // attrs 0..4 of abstract relation 0

class MinCoverTest : public ::testing::Test {
 protected:
  Value V(const char* s) { return pool_.Intern(s); }
  CFD FD(std::vector<AttrIndex> lhs, AttrIndex rhs) {
    return CFD::FD(0, std::move(lhs), rhs).value();
  }
  std::vector<CFD> Cover(std::vector<CFD> sigma) {
    auto r = MinCover(std::move(sigma), kArity);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : std::vector<CFD>{};
  }
  bool Equivalent(const std::vector<CFD>& a, const std::vector<CFD>& b) {
    for (const CFD& c : a) {
      auto r = Implies(b, c, kArity);
      if (!r.ok() || !*r) return false;
    }
    for (const CFD& c : b) {
      auto r = Implies(a, c, kArity);
      if (!r.ok() || !*r) return false;
    }
    return true;
  }

  ValuePool pool_;
};

TEST_F(MinCoverTest, RemovesRedundantFD) {
  CFD ab = FD({0}, 1), bc = FD({1}, 2), ac = FD({0}, 2);
  std::vector<CFD> cover = Cover({ab, bc, ac});
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_TRUE(Equivalent(cover, {ab, bc, ac}));
}

TEST_F(MinCoverTest, RemovesRedundantLhsAttribute) {
  // A -> B makes the C in AC -> B extraneous.
  CFD ab = FD({0}, 1);
  CFD acb = FD({0, 2}, 1);
  std::vector<CFD> cover = Cover({ab, acb});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], ab);
}

TEST_F(MinCoverTest, LhsMinimizationAlone) {
  // {AB -> C, A -> B}: B is extraneous in AB -> C.
  CFD abc = FD({0, 1}, 2);
  CFD ab = FD({0}, 1);
  std::vector<CFD> cover = Cover({abc, ab});
  EXPECT_EQ(cover.size(), 2u);
  bool found_ac = std::any_of(cover.begin(), cover.end(), [&](const CFD& c) {
    return c.lhs == std::vector<AttrIndex>{0} && c.rhs == 2;
  });
  EXPECT_TRUE(found_ac);
  EXPECT_TRUE(Equivalent(cover, {abc, ab}));
}

TEST_F(MinCoverTest, DropsTrivialAndDuplicates) {
  CFD ab = FD({0}, 1);
  CFD trivial = CFD::Make(0, {1}, {PatternValue::Wildcard()}, 1,
                          PatternValue::Wildcard())
                    .value();
  std::vector<CFD> cover = Cover({ab, ab, trivial});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], ab);
}

TEST_F(MinCoverTest, KeepsIndependentCFDs) {
  CFD ab = FD({0}, 1), cd = FD({2}, 3);
  std::vector<CFD> cover = Cover({ab, cd});
  EXPECT_EQ(cover.size(), 2u);
}

TEST_F(MinCoverTest, PatternAwareRedundancy) {
  // The conditional version is implied by the unconditional one.
  PatternValue wc = PatternValue::Wildcard();
  PatternValue pa = PatternValue::Constant(V("a"));
  CFD general = CFD::Make(0, {0}, {wc}, 1, wc).value();
  CFD conditional = CFD::Make(0, {0}, {pa}, 1, wc).value();
  std::vector<CFD> cover = Cover({general, conditional});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], general);
}

TEST_F(MinCoverTest, ConditionalsNotMergedWhenIncomparable) {
  // ([A=a] -> B) and ([A=b] -> B) are mutually non-redundant.
  PatternValue wc = PatternValue::Wildcard();
  CFD fa = CFD::Make(0, {0}, {PatternValue::Constant(V("a"))}, 1, wc).value();
  CFD fb = CFD::Make(0, {0}, {PatternValue::Constant(V("b"))}, 1, wc).value();
  std::vector<CFD> cover = Cover({fa, fb});
  EXPECT_EQ(cover.size(), 2u);
}

TEST_F(MinCoverTest, EqualityCFDsAreMinimized) {
  CFD ab = CFD::Equality(0, 0, 1);
  CFD ba = CFD::Equality(0, 1, 0);  // symmetric duplicate
  std::vector<CFD> cover = Cover({ab, ba});
  EXPECT_EQ(cover.size(), 1u);
}

TEST_F(MinCoverTest, CoverIsEquivalentToInput) {
  PatternValue wc = PatternValue::Wildcard();
  PatternValue pa = PatternValue::Constant(V("a"));
  std::vector<CFD> sigma = {
      FD({0}, 1),
      FD({1}, 2),
      FD({0, 3}, 2),                             // redundant via transitivity
      CFD::Make(0, {0}, {pa}, 3, wc).value(),
      CFD::Make(0, {0, 1}, {pa, wc}, 3, wc).value(),  // weaker than above
  };
  std::vector<CFD> cover = Cover(sigma);
  EXPECT_LT(cover.size(), sigma.size());
  EXPECT_TRUE(Equivalent(cover, sigma));
}

TEST_F(MinCoverTest, RemoveRedundantOnlyKeepsLhsIntact) {
  CFD ab = FD({0}, 1);
  CFD acb = FD({0, 2}, 1);  // redundant as a whole CFD
  auto r = RemoveRedundantCFDs({ab, acb}, kArity);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], ab);
}

TEST_F(MinCoverTest, EmptyInput) {
  std::vector<CFD> cover = Cover({});
  EXPECT_TRUE(cover.empty());
}

}  // namespace
}  // namespace cfdprop
