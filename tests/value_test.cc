#include "src/base/value.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/base/status.h"

namespace cfdprop {
namespace {

TEST(ValuePoolTest, InternReturnsStableIds) {
  ValuePool pool;
  Value a = pool.Intern("hello");
  Value b = pool.Intern("world");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, pool.Intern("hello"));
  EXPECT_EQ(b, pool.Intern("world"));
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ValuePoolTest, TextRoundTrips) {
  ValuePool pool;
  Value a = pool.Intern("42");
  EXPECT_EQ(pool.Text(a), "42");
  Value b = pool.InternInt(42);
  EXPECT_EQ(a, b);
}

TEST(ValuePoolTest, FindDoesNotIntern) {
  ValuePool pool;
  EXPECT_EQ(pool.Find("absent"), kNoValue);
  EXPECT_EQ(pool.size(), 0u);
  Value a = pool.Intern("present");
  EXPECT_EQ(pool.Find("present"), a);
}

TEST(ValuePoolTest, EmptyStringIsInternable) {
  ValuePool pool;
  Value e = pool.Intern("");
  EXPECT_EQ(pool.Text(e), "");
  EXPECT_EQ(pool.Intern(""), e);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);

  Result<int> err(Status::NotFound("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, PercentBoundaries) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Percent(0));
    EXPECT_TRUE(rng.Percent(100));
  }
}

}  // namespace
}  // namespace cfdprop
