// Routing correctness: everything served through
// CatalogService::SubmitBatch must be byte-identical to driving each
// tenant's own Engine::PropagateBatch directly — across tenants, SPC and
// SPCU requests, repeated rounds, and under concurrent churn on one
// tenant (where the unchurned tenants must stay byte-identical and the
// churned one must match one of the two legal sigma states). Runs under
// the ASan/TSan CI matrix like the engine stress test.

#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "src/gen/generators.h"
#include "src/service/catalog_service.h"

namespace cfdprop {
namespace {

struct Workload {
  Catalog catalog;
  std::vector<CFD> sigma;
  std::vector<SPCView> views;
};

/// Deterministic generated workload: the same seed always produces the
/// same catalog, sigma and views — and the same ValuePool interning
/// order, so CFDs from two same-seed workloads compare equal with ==.
Workload MakeWorkload(uint64_t seed) {
  SchemaGenOptions schema_options;
  schema_options.num_relations = 4;
  Workload w{GenerateSchema(schema_options, seed), {}, {}};
  CFDGenOptions cfd_options;
  cfd_options.count = 24;
  w.sigma = GenerateCFDs(w.catalog, cfd_options, seed + 1);
  ViewGenOptions view_options;
  view_options.num_atoms = 2;
  for (size_t i = 0; i < 10; ++i) {
    auto view = GenerateSPCView(w.catalog, view_options, seed + 10 + i);
    EXPECT_TRUE(view.ok()) << view.status();
    // Generation is seed-deterministic, so a (never observed) failure
    // skips the same view on both the service and the reference side.
    if (view.ok()) w.views.push_back(std::move(view).value());
  }
  return w;
}

/// The request stream for one tenant: every view as an SPC request plus
/// two-disjunct unions over neighbors, with repeats.
std::vector<Engine::Request> MakeStream(const Workload& w) {
  std::vector<Engine::Request> stream;
  for (size_t i = 0; i < w.views.size(); ++i) {
    stream.push_back({w.views[i], 0});
  }
  for (size_t i = 0; i + 1 < w.views.size(); i += 2) {
    // Generated views vary in output arity; only compatible neighbors
    // form a valid union.
    if (w.views[i].OutputArity() != w.views[i + 1].OutputArity()) continue;
    SPCUView u;
    u.disjuncts = {w.views[i], w.views[i + 1]};
    stream.push_back({std::move(u), 0});
  }
  for (size_t i = 0; i < w.views.size(); i += 3) {
    stream.push_back({w.views[i], 0});  // repeats -> cache hits
  }
  return stream;
}

void ExpectSameResults(const std::vector<Result<EngineResult>>& got,
                       const std::vector<Result<EngineResult>>& want,
                       const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].ok(), want[i].ok()) << what << " [" << i << "]";
    if (!got[i].ok()) continue;
    EXPECT_EQ(got[i]->fingerprint, want[i]->fingerprint)
        << what << " [" << i << "]";
    EXPECT_EQ(got[i]->cover->cover, want[i]->cover->cover)
        << what << " [" << i << "]";
    EXPECT_EQ(got[i]->cover->always_empty, want[i]->cover->always_empty);
    EXPECT_EQ(got[i]->cover->truncated, want[i]->cover->truncated);
  }
}

TEST(ServiceDifferentialTest, SubmitBatchMatchesDirectEngines) {
  constexpr size_t kTenants = 3;
  ServiceOptions options;
  options.dispatcher_threads = kTenants;  // all tenants in flight at once
  CatalogService service(options);

  // Service tenants and direct reference engines are built from
  // *separate* same-seed workloads: identical content, independent
  // catalogs/pools — exactly the restart situation the fingerprints and
  // CFD comparisons must be stable across.
  std::vector<std::vector<Engine::Request>> streams;
  std::vector<std::unique_ptr<Engine>> direct;
  for (size_t t = 0; t < kTenants; ++t) {
    const uint64_t seed = 1000 + 100 * t;
    Workload for_service = MakeWorkload(seed);
    std::string name = "tenant" + std::to_string(t);
    streams.push_back(MakeStream(for_service));
    auto opened = service.OpenCatalog(name, std::move(for_service.catalog),
                                      {std::move(for_service.sigma)});
    ASSERT_TRUE(opened.ok()) << opened.status();

    Workload for_direct = MakeWorkload(seed);
    auto engine = std::make_unique<Engine>(std::move(for_direct.catalog),
                                           EngineOptions{});
    auto sigma_id = engine->RegisterSigma(std::move(for_direct.sigma));
    ASSERT_TRUE(sigma_id.ok());
    direct.push_back(std::move(engine));
  }

  // Two rounds (cold then warm) of all tenants' streams in flight
  // together; each round's replies must match the direct engines
  // request-for-request.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::future<BatchReply>> futures;
    for (size_t t = 0; t < kTenants; ++t) {
      auto submitted =
          service.SubmitBatch("tenant" + std::to_string(t), streams[t]);
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
    for (size_t t = 0; t < kTenants; ++t) {
      BatchReply reply = futures[t].get();
      auto want = direct[t]->PropagateBatch(streams[t]);
      ExpectSameResults(reply.results, want,
                        ("round " + std::to_string(round) + " tenant " +
                         std::to_string(t))
                            .c_str());
    }
  }
}

TEST(ServiceDifferentialTest, ChurnOnOneTenantLeavesOthersByteIdentical) {
  ServiceOptions options;
  options.dispatcher_threads = 4;
  CatalogService service(options);

  Workload churned = MakeWorkload(7);
  Workload stable = MakeWorkload(77);
  std::vector<Engine::Request> churned_stream = MakeStream(churned);
  std::vector<Engine::Request> stable_stream = MakeStream(stable);
  // The churn toggles an FD over relation 0; pre-build it so no
  // interning happens mid-run.
  const CFD toggled = CFD::FD(0, {0, 1}, 2).value();

  auto churned_tenant =
      service.OpenCatalog("churned", std::move(churned.catalog),
                          {churned.sigma});
  ASSERT_TRUE(churned_tenant.ok());
  auto stable_tenant = service.OpenCatalog(
      "stable", std::move(stable.catalog), {std::move(stable.sigma)});
  ASSERT_TRUE(stable_tenant.ok());

  // Legal covers for the churned tenant in both sigma states, computed
  // on reference engines from same-seed workloads.
  Workload ref_base = MakeWorkload(7);
  Workload ref_added = MakeWorkload(7);
  Engine base_engine(std::move(ref_base.catalog), {});
  ASSERT_TRUE(base_engine.RegisterSigma(std::move(ref_base.sigma)).ok());
  auto base_want = base_engine.PropagateBatch(churned_stream);
  Engine added_engine(std::move(ref_added.catalog), {});
  {
    std::vector<CFD> with_added = std::move(ref_added.sigma);
    with_added.push_back(toggled);
    ASSERT_TRUE(added_engine.RegisterSigma(std::move(with_added)).ok());
  }
  auto added_want = added_engine.PropagateBatch(churned_stream);

  // Baseline for the stable tenant (its own engine, no churn anywhere).
  Workload ref_stable = MakeWorkload(77);
  Engine stable_engine(std::move(ref_stable.catalog), {});
  ASSERT_TRUE(stable_engine.RegisterSigma(std::move(ref_stable.sigma)).ok());
  auto stable_want = stable_engine.PropagateBatch(stable_stream);

  // Hammer both tenants while the churned one's sigma toggles.
  constexpr int kRounds = 12;
  std::vector<std::future<BatchReply>> churned_futures, stable_futures;
  std::thread mutator([&] {
    bool added = false;
    for (int i = 0; i < kRounds / 2; ++i) {
      Status s = added
                     ? (*churned_tenant)->engine().RetractCfd(0, toggled)
                     : (*churned_tenant)->engine().AddCfd(0, toggled);
      ASSERT_TRUE(s.ok()) << s;
      added = !added;
      std::this_thread::yield();
    }
    // End on the base state so late batches have a known answer too.
    if (added) {
      ASSERT_TRUE((*churned_tenant)->engine().RetractCfd(0, toggled).ok());
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    auto c = service.SubmitBatch("churned", churned_stream);
    auto s = service.SubmitBatch("stable", stable_stream);
    ASSERT_TRUE(c.ok() && s.ok());
    churned_futures.push_back(std::move(c).value());
    stable_futures.push_back(std::move(s).value());
  }
  mutator.join();

  // The stable tenant must be byte-identical in every round: churn on a
  // different tenant can never leak into its covers.
  for (auto& f : stable_futures) {
    ExpectSameResults(f.get().results, stable_want, "stable tenant");
  }
  // Every churned-tenant result must equal one of the two legal states.
  for (auto& f : churned_futures) {
    BatchReply reply = f.get();
    ASSERT_EQ(reply.results.size(), base_want.size());
    for (size_t i = 0; i < reply.results.size(); ++i) {
      const auto& r = reply.results[i];
      ASSERT_TRUE(r.ok()) << r.status();
      ASSERT_TRUE(base_want[i].ok() && added_want[i].ok());
      const bool matches_base =
          r->cover->cover == base_want[i]->cover->cover;
      const bool matches_added =
          r->cover->cover == added_want[i]->cover->cover;
      EXPECT_TRUE(matches_base || matches_added)
          << "churned request " << i
          << " served a cover from neither legal sigma state";
    }
  }
}

}  // namespace
}  // namespace cfdprop
