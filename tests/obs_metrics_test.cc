// src/obs unit tests: deterministic histogram bucket mapping and
// quantile interpolation (expected values computed by hand from the
// documented power-of-two bounds), the snapshot invariant "sum of
// buckets == count" under concurrent writers (the TSan target), the
// registry's idempotent-handle contract, and the render -> parse
// round trip of the text exposition.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/exporter.h"

namespace cfdprop {
namespace obs {
namespace {

TEST(HistogramTest, BucketMapping) {
  // Everything at or below the first bound (and garbage) lands in
  // bucket 0 (le="1").
  EXPECT_EQ(Histogram::BucketFor(0.0), 0u);
  EXPECT_EQ(Histogram::BucketFor(-5.0), 0u);
  EXPECT_EQ(Histogram::BucketFor(0.5), 0u);
  EXPECT_EQ(Histogram::BucketFor(1.0), 0u);
  EXPECT_EQ(Histogram::BucketFor(std::nan("")), 0u);

  // Exact powers of two sit in their own bucket: 2^i -> le = 2^i.
  for (size_t i = 0; i < kFiniteLatencyBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketFor(std::ldexp(1.0, static_cast<int>(i))), i)
        << "2^" << i;
  }

  // Just past a bound rolls into the next bucket.
  EXPECT_EQ(Histogram::BucketFor(1.5), 1u);   // le="2"
  EXPECT_EQ(Histogram::BucketFor(2.5), 2u);   // le="4"
  EXPECT_EQ(Histogram::BucketFor(100.0), 7u); // 64 < 100 <= 128
  EXPECT_EQ(Histogram::BucketFor(std::ldexp(1.0, 24) + 1.0),
            kLatencyBuckets - 1);  // past the largest finite bound
  EXPECT_EQ(Histogram::BucketFor(1e18), kLatencyBuckets - 1);
}

TEST(HistogramTest, QuantileInterpolationKnownValues) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(1.0);    // bucket 0: (0, 1]
  for (int i = 0; i < 30; ++i) h.Record(3.0);    // bucket 2: (2, 4]
  for (int i = 0; i < 20; ++i) h.Record(100.0);  // bucket 7: (64, 128]
  HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.count, 100u);

  // p50: target rank 50 falls exactly at the end of bucket 0 -> its
  // upper bound. p95/p99 interpolate inside bucket 7:
  //   p95: (95 - 80) / 20 of the way from 64 to 128 = 112.
  //   p99: (99 - 80) / 20 of the way from 64 to 128 = 124.8.
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.95), 112.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 124.8);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 128.0);

  // Value sum survives as microseconds (accumulated in integer ns).
  EXPECT_NEAR(s.sum_us, 50 * 1.0 + 30 * 3.0 + 20 * 100.0, 1e-6);
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Snapshot().Quantile(0.5), 0.0);

  // Samples past the largest finite bound clamp to it.
  Histogram overflow;
  overflow.Record(1e9);
  HistogramSnapshot s = overflow.Snapshot();
  EXPECT_EQ(s.buckets[kLatencyBuckets - 1], 1u);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), std::ldexp(1.0, 24));
}

TEST(HistogramTest, SnapshotInvariantUnderConcurrentWriters) {
  // The TSan target: racing Record() against Snapshot() must be clean,
  // and EVERY snapshot taken mid-race must satisfy sum(buckets) ==
  // count (it holds by construction: count is derived from the loaded
  // buckets, never read separately).
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      HistogramSnapshot s = h.Snapshot();
      uint64_t total = 0;
      for (uint64_t b : s.buckets) total += b;
      ASSERT_EQ(total, s.count);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>((t * kPerThread + i) % 300));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t total = 0;
  for (uint64_t b : s.buckets) total += b;
  EXPECT_EQ(total, s.count);
}

TEST(HistogramTest, DisabledBucketsKeepTheSum) {
  // The "registry-disabled" path: no bucket increments, but the value
  // sum (which backs EngineStatsSnapshot's total/compute milliseconds)
  // still accumulates.
  Histogram h(/*buckets_enabled=*/false);
  h.Record(250.0);
  h.Record(750.0);
  EXPECT_EQ(h.Snapshot().count, 0u);
  EXPECT_NEAR(h.SumUs(), 1000.0, 1e-6);
}

TEST(MetricsRegistryTest, HandlesAreIdempotentAndTyped) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("req_total", "requests");
  Counter* b = registry.GetCounter("req_total", "requests");
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(a, b) << "same name+labels must return the same handle";

  Counter* hq = registry.GetCounter("hits", "", {{"tenant", "hq"}});
  Counter* eu = registry.GetCounter("hits", "", {{"tenant", "eu"}});
  EXPECT_NE(hq, nullptr);
  EXPECT_NE(eu, nullptr);
  EXPECT_NE(hq, eu) << "different labels are different series";
  EXPECT_EQ(hq, registry.GetCounter("hits", "", {{"tenant", "hq"}}));

  // A name reused with a different type is a registration error.
  EXPECT_EQ(registry.GetGauge("req_total", ""), nullptr);
  EXPECT_EQ(registry.GetHistogram("hits", ""), nullptr);
}

TEST(MetricsRegistryTest, CountersAreMonotoneAcrossRenders) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("cfdprop_demo_total", "demo");
  c->Add(3);
  auto first = ParseMetricsText(registry.RenderText());
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_DOUBLE_EQ(first->Value("cfdprop_demo_total"), 3.0);

  c->Increment();
  auto second = ParseMetricsText(registry.RenderText());
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_DOUBLE_EQ(second->Value("cfdprop_demo_total"), 4.0);
  EXPECT_GE(second->Value("cfdprop_demo_total"),
            first->Value("cfdprop_demo_total"));
}

TEST(MetricsRegistryTest, RenderParseRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("cfdprop_hits_total", "Cache hits",
                      {{"tenant", "hq"}})->Add(21);
  registry.GetGauge("cfdprop_par_eff", "Parallel efficiency")->Set(0.25);
  Histogram* h = registry.GetHistogram("cfdprop_lat_us", "Latency",
                                       {{"tenant", "hq"}});
  h->Record(1.0);
  h->Record(3.0);
  h->Record(1e9);

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# TYPE cfdprop_hits_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cfdprop_lat_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("cfdprop_hits_total{tenant=\"hq\"} 21\n"),
            std::string::npos)
      << text;

  auto parsed = ParseMetricsText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->types.at("cfdprop_hits_total"), "counter");
  EXPECT_EQ(parsed->types.at("cfdprop_par_eff"), "gauge");
  EXPECT_EQ(parsed->types.at("cfdprop_lat_us"), "histogram");
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_hits_total{tenant=\"hq\"}"), 21.0);
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_par_eff"), 0.25);

  // Cumulative buckets: le="1" holds one sample, le="4" two, +Inf all
  // three — and the +Inf bucket always equals _count (the exposition-
  // level face of the snapshot invariant).
  EXPECT_DOUBLE_EQ(
      parsed->Value("cfdprop_lat_us_bucket{tenant=\"hq\",le=\"1\"}"), 1.0);
  EXPECT_DOUBLE_EQ(
      parsed->Value("cfdprop_lat_us_bucket{tenant=\"hq\",le=\"4\"}"), 2.0);
  EXPECT_DOUBLE_EQ(
      parsed->Value("cfdprop_lat_us_bucket{tenant=\"hq\",le=\"+Inf\"}"), 3.0);
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_lat_us_count{tenant=\"hq\"}"),
                   parsed->Value(
                       "cfdprop_lat_us_bucket{tenant=\"hq\",le=\"+Inf\"}"));
  EXPECT_NEAR(parsed->Value("cfdprop_lat_us_sum{tenant=\"hq\"}"),
              1.0 + 3.0 + 1e9, 1.0);
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", "", {{"path", "a\\b\"c\nd"}})->Add(1);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("c_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos)
      << text;
  auto parsed = ParseMetricsText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
}

TEST(MetricsRegistryTest, CollectorsContributeAndDetach) {
  MetricsRegistry registry;
  size_t id = registry.AddCollector([] {
    MetricFamilySamples f;
    f.name = "cfdprop_collected_total";
    f.type = MetricType::kCounter;
    f.help = "From a collector";
    Sample s;
    s.value = 7;
    f.samples.push_back(std::move(s));
    return std::vector<MetricFamilySamples>{std::move(f)};
  });
  auto with = ParseMetricsText(registry.RenderText());
  ASSERT_TRUE(with.ok());
  EXPECT_DOUBLE_EQ(with->Value("cfdprop_collected_total"), 7.0);

  registry.RemoveCollector(id);
  auto without = ParseMetricsText(registry.RenderText());
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without->Has("cfdprop_collected_total"));
}

TEST(MetricsRegistryTest, ConcurrentRecordAndRender) {
  // Registry-level TSan target: handles registered up front, then
  // writers hammer them while a renderer loops. Rendering reads each
  // metric exactly once per pass, so values can only be observed
  // moving up.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("cfdprop_c_total", "");
  Histogram* hist = registry.GetHistogram("cfdprop_h_us", "");
  std::atomic<bool> stop{false};
  std::thread renderer([&] {
    double last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto parsed = ParseMetricsText(registry.RenderText());
      ASSERT_TRUE(parsed.ok());
      double now = parsed->Value("cfdprop_c_total");
      ASSERT_GE(now, last);
      last = now;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        counter->Increment();
        hist->Record(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  renderer.join();
  EXPECT_EQ(counter->Value(), 80000u);
  EXPECT_EQ(hist->Snapshot().count, 80000u);
}

}  // namespace
}  // namespace obs
}  // namespace cfdprop
