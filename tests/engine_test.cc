#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include "src/cover/propcfd_spc.h"
#include "src/engine/cover_cache.h"
#include "src/gen/generators.h"

namespace cfdprop {
namespace {

/// Builds the shared test catalog: R(A,B,C,D), S(E,F).
Catalog MakeCatalog() {
  Catalog cat;
  EXPECT_TRUE(cat.AddRelation("R", {"A", "B", "C", "D"}).ok());
  EXPECT_TRUE(cat.AddRelation("S", {"E", "F"}).ok());
  return cat;
}

std::vector<CFD> MakeSigma() {
  return {CFD::FD(0, {0}, 1).value(),   // R: A -> B
          CFD::FD(0, {1}, 2).value(),   // R: B -> C
          CFD::FD(1, {0}, 1).value()};  // S: E -> F
}

/// pi(A, C) from R, with an optional selection constant on D.
SPCView MakeView(Catalog& cat, const char* d_const = nullptr) {
  SPCViewBuilder b(cat);
  size_t r = b.AddAtom(0);
  if (d_const != nullptr) EXPECT_TRUE(b.SelectConst(r, "D", d_const).ok());
  EXPECT_TRUE(b.Project(r, "A").ok());
  EXPECT_TRUE(b.Project(r, "C").ok());
  auto v = b.Build();
  EXPECT_TRUE(v.ok());
  return *v;
}

TEST(EngineTest, CacheHitReturnsIdenticalCoverToColdPath) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCView view = MakeView(engine.catalog());

  auto cold = engine.Propagate(view, *sigma_id);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->cache_hit);

  auto hit = engine.Propagate(view, *sigma_id);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->fingerprint, cold->fingerprint);
  EXPECT_EQ(hit->cover->cover, cold->cover->cover);

  // And both match the one-shot pipeline run directly.
  auto direct = PropagationCoverSPC(engine.catalog(), view, MakeSigma());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(cold->cover->cover, direct->cover);

  EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
}

TEST(EngineTest, EquivalentViewVariantHitsTheCache) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());

  // Same query, different output names and selection spelling.
  SPCView v1, v2;
  {
    SPCViewBuilder b(engine.catalog());
    size_t r = b.AddAtom(0);
    EXPECT_TRUE(b.SelectConst(r, "D", "5").ok());
    EXPECT_TRUE(b.Project(r, "A", "first").ok());
    EXPECT_TRUE(b.Project(r, "C", "second").ok());
    v1 = *b.Build();
  }
  {
    SPCViewBuilder b(engine.catalog());
    size_t r = b.AddAtom(0);
    EXPECT_TRUE(b.SelectConst(r, "D", "5").ok());
    EXPECT_TRUE(b.SelectConst(r, "D", "5").ok());  // duplicate conjunct
    EXPECT_TRUE(b.Project(r, "A", "x").ok());
    EXPECT_TRUE(b.Project(r, "C", "y").ok());
    v2 = *b.Build();
  }
  auto r1 = engine.Propagate(v1, *sigma_id);
  auto r2 = engine.Propagate(v2, *sigma_id);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_FALSE(r1->cache_hit);
  EXPECT_TRUE(r2->cache_hit);
  EXPECT_EQ(r1->cover->cover, r2->cover->cover);
}

TEST(EngineTest, SigmaSetsDoNotShareCacheLines) {
  Engine engine(MakeCatalog(), {});
  auto s1 = engine.RegisterSigma(MakeSigma());
  auto s2 = engine.RegisterSigma({CFD::FD(0, {0}, 2).value()});  // A -> C
  ASSERT_TRUE(s1.ok() && s2.ok());
  SPCView view = MakeView(engine.catalog());

  auto r1 = engine.Propagate(view, *s1);
  auto r2 = engine.Propagate(view, *s2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_FALSE(r2->cache_hit) << "second sigma set must not hit the first's"
                                 " cache line";
  EXPECT_NE(r1->fingerprint, r2->fingerprint);
}

TEST(EngineTest, RegistrationMinimizesSigma) {
  Engine engine(MakeCatalog(), {});
  // A -> B twice plus a redundant A -> C (implied by A -> B, B -> C).
  auto sigma_id = engine.RegisterSigma(
      {CFD::FD(0, {0}, 1).value(), CFD::FD(0, {0}, 1).value(),
       CFD::FD(0, {1}, 2).value(), CFD::FD(0, {0}, 2).value()});
  ASSERT_TRUE(sigma_id.ok());
  EXPECT_EQ(engine.sigma(*sigma_id).size(), 2u);
}

TEST(EngineTest, RejectsInvalidInput) {
  Engine engine(MakeCatalog(), {});
  EXPECT_FALSE(engine.RegisterSigma({CFD::FD(7, {0}, 1).value()}).ok());
  SPCView view = MakeView(engine.catalog());
  EXPECT_FALSE(engine.Propagate(view, 0).ok());  // no sigma registered
}

TEST(EngineTest, BatchOrderDeterministicAcrossThreadCounts) {
  // A workload big enough that a racy pool would scramble something:
  // 24 generated views, served with 1 and with 4 threads.
  constexpr size_t kViews = 24;
  auto serve = [&](size_t threads) {
    SchemaGenOptions so;
    so.num_relations = 4;
    so.min_arity = 6;
    so.max_arity = 8;
    Catalog cat = GenerateSchema(so, /*seed=*/7);
    CFDGenOptions co;
    co.count = 40;
    co.min_lhs = 2;
    co.max_lhs = 4;
    std::vector<CFD> sigma = GenerateCFDs(cat, co, /*seed=*/8);

    EngineOptions options;
    options.num_threads = threads;
    Engine engine(std::move(cat), options);
    EXPECT_TRUE(engine.RegisterSigma(std::move(sigma)).ok());
    std::vector<Engine::Request> requests;
    ViewGenOptions vo;
    vo.num_projection = 6;
    vo.num_selections = 3;
    vo.num_atoms = 2;
    for (size_t i = 0; i < kViews; ++i) {
      auto v = GenerateSPCView(engine.catalog(), vo, /*seed=*/100 + i);
      EXPECT_TRUE(v.ok());
      requests.push_back({*v, 0});
    }
    auto results = engine.PropagateBatch(requests);
    EXPECT_EQ(results.size(), requests.size());
    std::vector<std::vector<CFD>> covers;
    for (auto& r : results) {
      EXPECT_TRUE(r.ok()) << r.status();
      covers.push_back(r.ok() ? r->cover->cover : std::vector<CFD>{});
    }
    return covers;
  };

  auto sequential = serve(1);
  auto parallel4 = serve(4);
  auto parallel8 = serve(8);
  EXPECT_EQ(sequential, parallel4);
  EXPECT_EQ(sequential, parallel8);
}

TEST(EngineTest, BatchDeduplicatesViaCache) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCView view = MakeView(engine.catalog());

  std::vector<Engine::Request> requests(16, {view, *sigma_id});
  auto results = engine.PropagateBatch(requests);
  ASSERT_EQ(results.size(), 16u);
  size_t hits = 0;
  for (auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->cover->cover, results[0].value().cover->cover);
    hits += r->cache_hit ? 1 : 0;
  }
  // With the serial inline path (num_threads defaults to 4 but a pool
  // race may compute a few requests before the first insert lands),
  // at least one request computed and the rest mostly hit.
  EXPECT_GE(hits, 1u);
  EXPECT_EQ(engine.Stats().cache.insertions, 1u);
}

TEST(EngineTest, EvictionKeepsServingCorrectCovers) {
  EngineOptions options;
  options.cache_capacity = 2;
  options.cache_shards = 1;
  options.num_threads = 1;
  Engine engine(MakeCatalog(), options);
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());

  SPCView v1 = MakeView(engine.catalog(), "1");
  SPCView v2 = MakeView(engine.catalog(), "2");
  SPCView v3 = MakeView(engine.catalog(), "3");

  auto r1 = engine.Propagate(v1, *sigma_id);
  auto r2 = engine.Propagate(v2, *sigma_id);
  auto r3 = engine.Propagate(v3, *sigma_id);  // evicts v1 (LRU)
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(engine.Stats().cache.evictions, 1u);
  EXPECT_EQ(engine.Stats().cache.entries, 2u);

  // The held result survives eviction; a re-request recomputes the same
  // cover as a fresh miss.
  auto r1_again = engine.Propagate(v1, *sigma_id);
  ASSERT_TRUE(r1_again.ok());
  EXPECT_FALSE(r1_again->cache_hit);
  EXPECT_EQ(r1_again->cover->cover, r1->cover->cover);

  // v3 was just inserted and v1 re-inserted: v2 is now the LRU victim,
  // so a v3 request still hits.
  auto r3_again = engine.Propagate(v3, *sigma_id);
  ASSERT_TRUE(r3_again.ok());
  EXPECT_TRUE(r3_again->cache_hit);
}

TEST(EngineTest, ClearCacheForcesRecompute) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCView view = MakeView(engine.catalog());

  ASSERT_TRUE(engine.Propagate(view, *sigma_id).ok());
  engine.ClearCache();
  auto r = engine.Propagate(view, *sigma_id);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->cache_hit);
}

TEST(EngineTest, DisabledCacheAlwaysComputes) {
  EngineOptions options;
  options.use_cache = false;
  Engine engine(MakeCatalog(), options);
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCView view = MakeView(engine.catalog());

  auto r1 = engine.Propagate(view, *sigma_id);
  auto r2 = engine.Propagate(view, *sigma_id);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_FALSE(r1->cache_hit);
  EXPECT_FALSE(r2->cache_hit);
  EXPECT_EQ(r1->cover->cover, r2->cover->cover);
}

TEST(EngineTest, AlwaysEmptyViewsAreCachedWithTheFlag) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(
      {CFD::Make(0, {0}, {PatternValue::Wildcard()}, 1,
                 PatternValue::Constant(engine.catalog().pool().Intern("b1")))
           .value()});
  ASSERT_TRUE(sigma_id.ok());

  SPCViewBuilder b(engine.catalog());
  size_t r = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(r, "B", "b2").ok());  // contradicts sigma
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  auto cold = engine.Propagate(*view, *sigma_id);
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(cold->cover->always_empty);
  auto hit = engine.Propagate(*view, *sigma_id);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_TRUE(hit->cover->always_empty);
}

std::shared_ptr<CachedCover> CacheEntry(int tag) {
  auto c = std::make_shared<CachedCover>();
  c->cover.push_back(
      CFD::FD(kViewSchemaId, {0}, static_cast<AttrIndex>(tag)).value());
  return c;
}

TEST(CoverCacheTest, LruEvictionOrderAndStats) {
  CoverCache cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Insert(1, 10, CacheEntry(1));
  cache.Insert(2, 20, CacheEntry(2));
  ASSERT_NE(cache.Lookup(1, 10), nullptr);  // 1 becomes MRU
  cache.Insert(3, 30, CacheEntry(3));       // evicts 2
  EXPECT_EQ(cache.Lookup(2, 20), nullptr);
  EXPECT_NE(cache.Lookup(1, 10), nullptr);
  EXPECT_NE(cache.Lookup(3, 30), nullptr);

  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);

  cache.Clear();
  EXPECT_EQ(cache.Lookup(1, 10), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(CoverCacheTest, KeyCollisionIsAMissNotAWrongServe) {
  CoverCache cache(/*capacity=*/4, /*num_shards=*/1);
  cache.Insert(1, /*check=*/10, CacheEntry(1));
  // Same key, different check hash: a 64-bit key collision between two
  // non-equivalent requests. Lookup must miss rather than serve the
  // other request's cover.
  EXPECT_EQ(cache.Lookup(1, /*check=*/99), nullptr);
  EXPECT_NE(cache.Lookup(1, /*check=*/10), nullptr);

  // The colliding insert replaces the entry (latest wins)...
  auto other = CacheEntry(2);
  cache.Insert(1, /*check=*/99, other);
  EXPECT_EQ(cache.Lookup(1, /*check=*/10), nullptr);
  auto got = cache.Lookup(1, /*check=*/99);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->cover, other->cover);
  // ...and never double-counts capacity.
  EXPECT_EQ(cache.Stats().entries, 1u);
}

}  // namespace
}  // namespace cfdprop
