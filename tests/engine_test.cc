#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include "src/cover/propcfd_spc.h"
#include "src/engine/cover_cache.h"
#include "src/gen/generators.h"

namespace cfdprop {
namespace {

/// Builds the shared test catalog: R(A,B,C,D), S(E,F).
Catalog MakeCatalog() {
  Catalog cat;
  EXPECT_TRUE(cat.AddRelation("R", {"A", "B", "C", "D"}).ok());
  EXPECT_TRUE(cat.AddRelation("S", {"E", "F"}).ok());
  return cat;
}

std::vector<CFD> MakeSigma() {
  return {CFD::FD(0, {0}, 1).value(),   // R: A -> B
          CFD::FD(0, {1}, 2).value(),   // R: B -> C
          CFD::FD(1, {0}, 1).value()};  // S: E -> F
}

/// pi(A, C) from R, with an optional selection constant on D.
SPCView MakeView(Catalog& cat, const char* d_const = nullptr) {
  SPCViewBuilder b(cat);
  size_t r = b.AddAtom(0);
  if (d_const != nullptr) EXPECT_TRUE(b.SelectConst(r, "D", d_const).ok());
  EXPECT_TRUE(b.Project(r, "A").ok());
  EXPECT_TRUE(b.Project(r, "C").ok());
  auto v = b.Build();
  EXPECT_TRUE(v.ok());
  return *v;
}

TEST(EngineTest, CacheHitReturnsIdenticalCoverToColdPath) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCView view = MakeView(engine.catalog());

  auto cold = engine.Propagate(view, *sigma_id);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->cache_hit);

  auto hit = engine.Propagate(view, *sigma_id);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->fingerprint, cold->fingerprint);
  EXPECT_EQ(hit->cover->cover, cold->cover->cover);

  // And both match the one-shot pipeline run directly.
  auto direct = PropagationCoverSPC(engine.catalog(), view, MakeSigma());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(cold->cover->cover, direct->cover);

  EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
}

TEST(EngineTest, EquivalentViewVariantHitsTheCache) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());

  // Same query, different output names and selection spelling.
  SPCView v1, v2;
  {
    SPCViewBuilder b(engine.catalog());
    size_t r = b.AddAtom(0);
    EXPECT_TRUE(b.SelectConst(r, "D", "5").ok());
    EXPECT_TRUE(b.Project(r, "A", "first").ok());
    EXPECT_TRUE(b.Project(r, "C", "second").ok());
    v1 = *b.Build();
  }
  {
    SPCViewBuilder b(engine.catalog());
    size_t r = b.AddAtom(0);
    EXPECT_TRUE(b.SelectConst(r, "D", "5").ok());
    EXPECT_TRUE(b.SelectConst(r, "D", "5").ok());  // duplicate conjunct
    EXPECT_TRUE(b.Project(r, "A", "x").ok());
    EXPECT_TRUE(b.Project(r, "C", "y").ok());
    v2 = *b.Build();
  }
  auto r1 = engine.Propagate(v1, *sigma_id);
  auto r2 = engine.Propagate(v2, *sigma_id);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_FALSE(r1->cache_hit);
  EXPECT_TRUE(r2->cache_hit);
  EXPECT_EQ(r1->cover->cover, r2->cover->cover);
}

TEST(EngineTest, SigmaSetsDoNotShareCacheLines) {
  Engine engine(MakeCatalog(), {});
  auto s1 = engine.RegisterSigma(MakeSigma());
  auto s2 = engine.RegisterSigma({CFD::FD(0, {0}, 2).value()});  // A -> C
  ASSERT_TRUE(s1.ok() && s2.ok());
  SPCView view = MakeView(engine.catalog());

  auto r1 = engine.Propagate(view, *s1);
  auto r2 = engine.Propagate(view, *s2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_FALSE(r2->cache_hit) << "second sigma set must not hit the first's"
                                 " cache line";
  EXPECT_NE(r1->fingerprint, r2->fingerprint);
}

TEST(EngineTest, RegistrationMinimizesSigma) {
  Engine engine(MakeCatalog(), {});
  // A -> B twice plus a redundant A -> C (implied by A -> B, B -> C).
  auto sigma_id = engine.RegisterSigma(
      {CFD::FD(0, {0}, 1).value(), CFD::FD(0, {0}, 1).value(),
       CFD::FD(0, {1}, 2).value(), CFD::FD(0, {0}, 2).value()});
  ASSERT_TRUE(sigma_id.ok());
  EXPECT_EQ(engine.sigma(*sigma_id)->size(), 2u);
}

TEST(EngineTest, RejectsInvalidInput) {
  Engine engine(MakeCatalog(), {});
  EXPECT_FALSE(engine.RegisterSigma({CFD::FD(7, {0}, 1).value()}).ok());
  SPCView view = MakeView(engine.catalog());
  EXPECT_FALSE(engine.Propagate(view, 0).ok());  // no sigma registered
}

TEST(EngineTest, BatchOrderDeterministicAcrossThreadCounts) {
  // A workload big enough that a racy pool would scramble something:
  // 24 generated views, served with 1 and with 4 threads.
  constexpr size_t kViews = 24;
  auto serve = [&](size_t threads) {
    SchemaGenOptions so;
    so.num_relations = 4;
    so.min_arity = 6;
    so.max_arity = 8;
    Catalog cat = GenerateSchema(so, /*seed=*/7);
    CFDGenOptions co;
    co.count = 40;
    co.min_lhs = 2;
    co.max_lhs = 4;
    std::vector<CFD> sigma = GenerateCFDs(cat, co, /*seed=*/8);

    EngineOptions options;
    options.num_threads = threads;
    Engine engine(std::move(cat), options);
    EXPECT_TRUE(engine.RegisterSigma(std::move(sigma)).ok());
    std::vector<Engine::Request> requests;
    ViewGenOptions vo;
    vo.num_projection = 6;
    vo.num_selections = 3;
    vo.num_atoms = 2;
    for (size_t i = 0; i < kViews; ++i) {
      auto v = GenerateSPCView(engine.catalog(), vo, /*seed=*/100 + i);
      EXPECT_TRUE(v.ok());
      requests.push_back({*v, 0});
    }
    auto results = engine.PropagateBatch(requests);
    EXPECT_EQ(results.size(), requests.size());
    std::vector<std::vector<CFD>> covers;
    for (auto& r : results) {
      EXPECT_TRUE(r.ok()) << r.status();
      covers.push_back(r.ok() ? r->cover->cover : std::vector<CFD>{});
    }
    return covers;
  };

  auto sequential = serve(1);
  auto parallel4 = serve(4);
  auto parallel8 = serve(8);
  EXPECT_EQ(sequential, parallel4);
  EXPECT_EQ(sequential, parallel8);
}

TEST(EngineTest, BatchDeduplicatesViaCache) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCView view = MakeView(engine.catalog());

  std::vector<Engine::Request> requests(16, {view, *sigma_id});
  auto results = engine.PropagateBatch(requests);
  ASSERT_EQ(results.size(), 16u);
  size_t hits = 0;
  for (auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->cover->cover, results[0].value().cover->cover);
    hits += r->cache_hit ? 1 : 0;
  }
  // With the serial inline path (num_threads defaults to 4 but a pool
  // race may compute a few requests before the first insert lands),
  // at least one request computed and the rest mostly hit.
  EXPECT_GE(hits, 1u);
  EXPECT_EQ(engine.Stats().cache.insertions, 1u);
}

TEST(EngineTest, EvictionKeepsServingCorrectCovers) {
  EngineOptions options;
  options.cache_capacity = 2;
  options.cache_shards = 1;
  options.num_threads = 1;
  Engine engine(MakeCatalog(), options);
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());

  SPCView v1 = MakeView(engine.catalog(), "1");
  SPCView v2 = MakeView(engine.catalog(), "2");
  SPCView v3 = MakeView(engine.catalog(), "3");

  auto r1 = engine.Propagate(v1, *sigma_id);
  auto r2 = engine.Propagate(v2, *sigma_id);
  auto r3 = engine.Propagate(v3, *sigma_id);  // evicts v1 (LRU)
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(engine.Stats().cache.evictions, 1u);
  EXPECT_EQ(engine.Stats().cache.entries, 2u);

  // The held result survives eviction; a re-request recomputes the same
  // cover as a fresh miss.
  auto r1_again = engine.Propagate(v1, *sigma_id);
  ASSERT_TRUE(r1_again.ok());
  EXPECT_FALSE(r1_again->cache_hit);
  EXPECT_EQ(r1_again->cover->cover, r1->cover->cover);

  // v3 was just inserted and v1 re-inserted: v2 is now the LRU victim,
  // so a v3 request still hits.
  auto r3_again = engine.Propagate(v3, *sigma_id);
  ASSERT_TRUE(r3_again.ok());
  EXPECT_TRUE(r3_again->cache_hit);
}

TEST(EngineTest, ClearCacheForcesRecompute) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCView view = MakeView(engine.catalog());

  ASSERT_TRUE(engine.Propagate(view, *sigma_id).ok());
  engine.ClearCache();
  auto r = engine.Propagate(view, *sigma_id);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->cache_hit);
}

TEST(EngineTest, DisabledCacheAlwaysComputes) {
  EngineOptions options;
  options.use_cache = false;
  Engine engine(MakeCatalog(), options);
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCView view = MakeView(engine.catalog());

  auto r1 = engine.Propagate(view, *sigma_id);
  auto r2 = engine.Propagate(view, *sigma_id);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_FALSE(r1->cache_hit);
  EXPECT_FALSE(r2->cache_hit);
  EXPECT_EQ(r1->cover->cover, r2->cover->cover);
}

TEST(EngineTest, AlwaysEmptyViewsAreCachedWithTheFlag) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(
      {CFD::Make(0, {0}, {PatternValue::Wildcard()}, 1,
                 PatternValue::Constant(engine.catalog().pool().Intern("b1")))
           .value()});
  ASSERT_TRUE(sigma_id.ok());

  SPCViewBuilder b(engine.catalog());
  size_t r = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(r, "B", "b2").ok());  // contradicts sigma
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  auto cold = engine.Propagate(*view, *sigma_id);
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(cold->cover->always_empty);
  auto hit = engine.Propagate(*view, *sigma_id);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_TRUE(hit->cover->always_empty);
}

TEST(EngineTest, AddCfdInvalidatesOnlyTheMutatedSigma) {
  Engine engine(MakeCatalog(), {});
  auto s1 = engine.RegisterSigma(MakeSigma());
  auto s2 = engine.RegisterSigma({CFD::FD(0, {0}, 2).value()});  // A -> C
  ASSERT_TRUE(s1.ok() && s2.ok());
  SPCView view = MakeView(engine.catalog());

  ASSERT_TRUE(engine.Propagate(view, *s1).ok());
  ASSERT_TRUE(engine.Propagate(view, *s2).ok());
  EXPECT_EQ(engine.Stats().cache.entries, 2u);
  EXPECT_EQ(engine.sigma_generation(*s1), 0u);

  // Mutate s1: only its cache line drops; s2's line keeps hitting.
  ASSERT_TRUE(engine.AddCfd(*s1, CFD::FD(0, {0}, 3).value()).ok());  // A -> D
  EXPECT_EQ(engine.sigma_generation(*s1), 1u);
  EXPECT_EQ(engine.sigma_generation(*s2), 0u);
  EXPECT_EQ(engine.Stats().cache.invalidations, 1u);
  EXPECT_EQ(engine.Stats().cache.entries, 1u);

  auto r2 = engine.Propagate(view, *s2);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->cache_hit) << "the untouched sigma's line must survive";
  auto r1 = engine.Propagate(view, *s1);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->cache_hit) << "the mutated sigma must recompute";
  EXPECT_EQ(engine.Stats().sigma_mutations, 1u);
}

TEST(EngineTest, AddThenRetractRoundTripsTheCover) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCView view = MakeView(engine.catalog());

  auto before = engine.Propagate(view, *sigma_id);
  ASSERT_TRUE(before.ok());

  // A -> D is new information; with D unprojected it reshapes the raw
  // set (and the minimized cover) but must disappear again on retract.
  CFD added = CFD::FD(0, {0}, 3).value();
  ASSERT_TRUE(engine.AddCfd(*sigma_id, added).ok());
  EXPECT_EQ(engine.sigma_raw(*sigma_id).size(), 4u);
  auto during = engine.Propagate(view, *sigma_id);
  ASSERT_TRUE(during.ok());
  EXPECT_FALSE(during->cache_hit);

  ASSERT_TRUE(engine.RetractCfd(*sigma_id, added).ok());
  EXPECT_EQ(engine.sigma_raw(*sigma_id).size(), 3u);
  EXPECT_EQ(engine.sigma_generation(*sigma_id), 2u);
  auto after = engine.Propagate(view, *sigma_id);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit) << "generation changed; old line is gone";
  EXPECT_EQ(after->cover->cover, before->cover->cover);

  // Retracting something never registered is NotFound and changes
  // nothing (no generation bump, no invalidation).
  EXPECT_FALSE(engine.RetractCfd(*sigma_id, added).ok());
  EXPECT_EQ(engine.sigma_generation(*sigma_id), 2u);
}

TEST(EngineTest, HeldCoversSurviveRetractionAndClear) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCView view = MakeView(engine.catalog());

  auto held = engine.Propagate(view, *sigma_id);
  ASSERT_TRUE(held.ok());
  std::vector<CFD> copy = held->cover->cover;
  auto held_sigma = engine.sigma(*sigma_id);
  size_t sigma_size = held_sigma->size();

  ASSERT_TRUE(engine.RetractCfd(*sigma_id, MakeSigma()[0]).ok());
  engine.ClearCache();
  ASSERT_TRUE(engine.AddCfd(*sigma_id, MakeSigma()[0]).ok());

  // The handed-out cover and the sigma snapshot are shared_ptrs into
  // state the mutations replaced, not freed.
  EXPECT_EQ(held->cover->cover, copy);
  EXPECT_EQ(held_sigma->size(), sigma_size);
}

/// Two single-atom views over R differing in the selection constant on
/// D, plus a constant output column to discriminate them in the union.
SPCUView MakeUnion(Catalog& cat, const char* c1, const char* c2) {
  SPCUView u;
  for (const char* d_const : {c1, c2}) {
    SPCViewBuilder b(cat);
    size_t r = b.AddAtom(0);
    EXPECT_TRUE(b.SelectConst(r, "D", d_const).ok());
    EXPECT_TRUE(b.ProjectConstant("tag", d_const).ok());
    EXPECT_TRUE(b.Project(r, "A").ok());
    EXPECT_TRUE(b.Project(r, "C").ok());
    auto v = b.Build();
    EXPECT_TRUE(v.ok());
    u.disjuncts.push_back(*v);
  }
  return u;
}

TEST(EngineTest, UnionMatchesOneShotAndHitsOnRepeat) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCUView u = MakeUnion(engine.catalog(), "1", "2");

  auto cold = engine.PropagateUnion(u, *sigma_id);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->cache_hit);
  EXPECT_EQ(cold->disjunct_count, 2u);
  EXPECT_EQ(cold->disjunct_hits, 0u);

  auto direct = PropagationCoverSPCU(engine.catalog(), u, MakeSigma());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(cold->cover->cover, direct->cover);

  auto warm = engine.PropagateUnion(u, *sigma_id);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->fingerprint, cold->fingerprint);
  EXPECT_EQ(warm->cover->cover, direct->cover);
  EXPECT_EQ(engine.Stats().union_requests, 2u);
}

TEST(EngineTest, UnionAssemblesFromPerDisjunctCacheLines) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCUView u = MakeUnion(engine.catalog(), "1", "2");

  // Prime the per-SPC lines by serving the disjuncts individually.
  ASSERT_TRUE(engine.Propagate(u.disjuncts[0], *sigma_id).ok());
  ASSERT_TRUE(engine.Propagate(u.disjuncts[1], *sigma_id).ok());

  auto r = engine.PropagateUnion(u, *sigma_id);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->cache_hit) << "union line itself was never filled";
  EXPECT_EQ(r->disjunct_hits, 2u) << "both disjuncts must be partial hits";

  auto direct = PropagationCoverSPCU(engine.catalog(), u, MakeSigma());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(r->cover->cover, direct->cover);

  // And the reverse direction: a union serve fills the per-SPC lines, so
  // a later plain SPC request hits.
  SPCUView u2 = MakeUnion(engine.catalog(), "3", "4");
  ASSERT_TRUE(engine.PropagateUnion(u2, *sigma_id).ok());
  auto spc = engine.Propagate(u2.disjuncts[0], *sigma_id);
  ASSERT_TRUE(spc.ok());
  EXPECT_TRUE(spc->cache_hit);
}

TEST(EngineTest, UnionFingerprintIsOrderInsensitive) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCUView u = MakeUnion(engine.catalog(), "1", "2");
  SPCUView swapped;
  swapped.disjuncts = {u.disjuncts[1], u.disjuncts[0]};

  auto r1 = engine.PropagateUnion(u, *sigma_id);
  auto r2 = engine.PropagateUnion(swapped, *sigma_id);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->fingerprint, r2->fingerprint);
  EXPECT_TRUE(r2->cache_hit) << "reordered disjuncts are the same union";
  EXPECT_EQ(r1->cover->cover, r2->cover->cover);
}

TEST(EngineTest, SingleDisjunctUnionDegeneratesToSpc) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  SPCView view = MakeView(engine.catalog());

  auto spc = engine.Propagate(view, *sigma_id);
  auto via_union = engine.PropagateUnion(SPCUView(view), *sigma_id);
  ASSERT_TRUE(spc.ok() && via_union.ok());
  EXPECT_EQ(via_union->fingerprint, spc->fingerprint);
  EXPECT_TRUE(via_union->cache_hit);
  EXPECT_EQ(engine.Stats().union_requests, 0u);

  EXPECT_FALSE(engine.PropagateUnion(SPCUView{}, *sigma_id).ok());
}

std::shared_ptr<CachedCover> CacheEntry(int tag) {
  auto c = std::make_shared<CachedCover>();
  c->cover.push_back(
      CFD::FD(kViewSchemaId, {0}, static_cast<AttrIndex>(tag)).value());
  return c;
}

TEST(CoverCacheTest, LruEvictionOrderAndStats) {
  CoverCache cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Insert(1, 10, CacheEntry(1));
  cache.Insert(2, 20, CacheEntry(2));
  ASSERT_NE(cache.Lookup(1, 10), nullptr);  // 1 becomes MRU
  cache.Insert(3, 30, CacheEntry(3));       // evicts 2
  EXPECT_EQ(cache.Lookup(2, 20), nullptr);
  EXPECT_NE(cache.Lookup(1, 10), nullptr);
  EXPECT_NE(cache.Lookup(3, 30), nullptr);

  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);

  cache.Clear();
  EXPECT_EQ(cache.Lookup(1, 10), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(CoverCacheTest, KeyCollisionIsAMissNotAWrongServe) {
  CoverCache cache(/*capacity=*/4, /*num_shards=*/1);
  cache.Insert(1, /*check=*/10, CacheEntry(1));
  // Same key, different check hash: a 64-bit key collision between two
  // non-equivalent requests. Lookup must miss rather than serve the
  // other request's cover.
  EXPECT_EQ(cache.Lookup(1, /*check=*/99), nullptr);
  EXPECT_NE(cache.Lookup(1, /*check=*/10), nullptr);

  // The colliding insert replaces the entry (latest wins)...
  auto other = CacheEntry(2);
  cache.Insert(1, /*check=*/99, other);
  EXPECT_EQ(cache.Lookup(1, /*check=*/10), nullptr);
  auto got = cache.Lookup(1, /*check=*/99);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->cover, other->cover);
  // ...and never double-counts capacity.
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(CoverCacheTest, GenerationMismatchIsAMiss) {
  CoverCache cache(/*capacity=*/4, /*num_shards=*/1);
  cache.Insert(1, 10, CacheEntry(1), /*tag=*/0, /*generation=*/0);
  // A lookup at a newer sigma generation must not serve the stale cover,
  // even though key and check match.
  EXPECT_EQ(cache.Lookup(1, 10, /*tag=*/0, /*generation=*/1), nullptr);
  EXPECT_NE(cache.Lookup(1, 10, /*tag=*/0, /*generation=*/0), nullptr);

  // A stale in-flight insert landing after the mutation is displaced by
  // the fresh-generation insert (latest wins, no double-count).
  cache.Insert(1, 10, CacheEntry(2), /*tag=*/0, /*generation=*/1);
  EXPECT_EQ(cache.Lookup(1, 10, /*tag=*/0, /*generation=*/0), nullptr);
  EXPECT_NE(cache.Lookup(1, 10, /*tag=*/0, /*generation=*/1), nullptr);
  EXPECT_EQ(cache.Stats().entries, 1u);

  // ...but the reverse race — a slow compute from before the mutation
  // inserting after the fresh cover landed — must not displace the
  // newer entry (generations are monotone per tag).
  cache.Insert(1, 10, CacheEntry(3), /*tag=*/0, /*generation=*/0);
  EXPECT_NE(cache.Lookup(1, 10, /*tag=*/0, /*generation=*/1), nullptr);
  EXPECT_EQ(cache.Lookup(1, 10, /*tag=*/0, /*generation=*/0), nullptr);
}

TEST(CoverCacheTest, SetBudgetEvictsInLruOrder) {
  CoverCache cache(/*capacity=*/8, /*num_shards=*/1);
  for (uint64_t f = 1; f <= 8; ++f) {
    cache.Insert(f, 10 * f, CacheEntry(f));
  }
  ASSERT_NE(cache.Lookup(3, 30), nullptr);  // 3 becomes MRU
  EXPECT_EQ(cache.capacity(), 8u);

  // Shrink to 4: exactly the 4 least recently used entries (1, 2, 4, 5)
  // go, in LRU order; the refreshed 3 and the newest 6..8 stay.
  EXPECT_EQ(cache.SetBudget(4), 4u);
  EXPECT_EQ(cache.capacity(), 4u);
  for (uint64_t f : {1u, 2u, 4u, 5u}) {
    EXPECT_EQ(cache.Lookup(f, 10 * f), nullptr) << f;
  }
  for (uint64_t f : {3u, 6u, 7u, 8u}) {
    EXPECT_NE(cache.Lookup(f, 10 * f), nullptr) << f;
  }
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 4u) << "budget eviction counts as eviction";
  EXPECT_EQ(stats.entries, 4u);

  // The shrunk bound is enforced by later inserts...
  cache.Insert(9, 90, CacheEntry(9));
  EXPECT_EQ(cache.Stats().entries, 4u);
  // ...and growing back evicts nothing but opens the slots again.
  EXPECT_EQ(cache.SetBudget(6), 0u);
  cache.Insert(10, 100, CacheEntry(10));
  cache.Insert(11, 110, CacheEntry(11));
  EXPECT_EQ(cache.Stats().entries, 6u);

  // A zero budget clamps to one entry per shard, never zero.
  EXPECT_EQ(cache.SetBudget(0), 5u);
  EXPECT_EQ(cache.capacity(), 1u);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(EngineTest, SetCacheBudgetShrinksLiveCacheDeterministically) {
  EngineOptions options;
  options.cache_capacity = 8;
  options.cache_shards = 1;
  Engine engine(MakeCatalog(), options);
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());

  // Four distinct lines, then resize to 2: the two oldest go, the two
  // newest keep serving, and a held cover survives its own eviction.
  std::vector<SPCView> views;
  for (const char* d : {"1", "2", "3", "4"}) {
    views.push_back(MakeView(engine.catalog(), d));
  }
  auto held = engine.Propagate(views[0], *sigma_id);
  ASSERT_TRUE(held.ok());
  for (size_t i = 1; i < views.size(); ++i) {
    ASSERT_TRUE(engine.Propagate(views[i], *sigma_id).ok());
  }
  EXPECT_EQ(engine.Stats().cache.entries, 4u);

  EXPECT_EQ(engine.SetCacheBudget(2), 2u);
  EXPECT_EQ(engine.cache_capacity(), 2u);
  auto r0 = engine.Propagate(views[0], *sigma_id);
  auto r3 = engine.Propagate(views[3], *sigma_id);
  ASSERT_TRUE(r0.ok() && r3.ok());
  EXPECT_FALSE(r0->cache_hit) << "oldest line must have been evicted";
  EXPECT_TRUE(r3->cache_hit) << "newest line must have survived";
  EXPECT_EQ(r0->cover->cover, held->cover->cover)
      << "recompute after budget eviction is byte-identical";
}

TEST(EngineTest, BatchStatsReportEffectiveParallelism) {
  Engine engine(MakeCatalog(), {});
  auto sigma_id = engine.RegisterSigma(MakeSigma());
  ASSERT_TRUE(sigma_id.ok());
  std::vector<Engine::Request> requests;
  for (const char* d : {"1", "2", "3", "4", "5", "6"}) {
    requests.push_back({MakeView(engine.catalog(), d), *sigma_id});
  }
  for (auto& r : engine.PropagateBatch(requests)) ASSERT_TRUE(r.ok());

  EngineStatsSnapshot stats = engine.Stats();
  EXPECT_GT(stats.batch_wall_us, 0.0);
  EXPECT_GT(stats.batch_busy_us, 0.0);
  // Effective parallelism can never exceed the worker count (and on a
  // 1-CPU container it honestly sits near 1.0 regardless of workers).
  EXPECT_LE(stats.BatchParallelism(),
            static_cast<double>(engine.options().num_threads) + 0.5);
  EXPECT_NE(stats.ToString().find("par_eff="), std::string::npos);
}

TEST(CoverCacheTest, EraseTaggedDropsOnlyThatTag) {
  CoverCache cache(/*capacity=*/8, /*num_shards=*/1);
  cache.Insert(1, 10, CacheEntry(1), /*tag=*/0, /*generation=*/0);
  cache.Insert(2, 20, CacheEntry(2), /*tag=*/1, /*generation=*/0);
  cache.Insert(3, 30, CacheEntry(3), /*tag=*/0, /*generation=*/0);

  EXPECT_EQ(cache.EraseTagged(0), 2u);
  EXPECT_EQ(cache.Lookup(1, 10, 0, 0), nullptr);
  EXPECT_EQ(cache.Lookup(3, 30, 0, 0), nullptr);
  EXPECT_NE(cache.Lookup(2, 20, 1, 0), nullptr);

  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.evictions, 0u) << "invalidation is not LRU pressure";
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(cache.EraseTagged(7), 0u);
}

}  // namespace
}  // namespace cfdprop
