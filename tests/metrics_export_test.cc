// End-to-end metrics export: the in-process CatalogService render must
// agree exactly with the service's own stats snapshot (one registry
// snapshot per render — no torn reads), the METRICS wire frame must
// deliver the same exposition through CoverServer/CoverClient with the
// net-layer families added, and the reply codec must survive its own
// corruption checks.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "src/net/cover_client.h"
#include "src/net/cover_server.h"
#include "src/obs/exporter.h"
#include "src/parser/parser.h"
#include "src/service/catalog_service.h"

namespace cfdprop {
namespace {

constexpr char kSpecText[] = R"(
relation T(region, cust, tier, rep)

cfd T: [region] -> rep
cfd T: [tier] -> rep

view ByRegion = pi("r" as tag, 0.region as region, 0.rep as rep) from(T)
view GoldReps = pi("g" as tag, 0.cust as cust, 0.rep as rep) sigma(0.tier = "gold") from(T)

serve ByRegion, GoldReps, ByRegion
)";

ServiceOptions DeterministicOptions() {
  ServiceOptions options;
  options.engine.num_threads = 1;
  // One dispatcher: jobs run (and record their stages) strictly in
  // submission order, so stage counts observed after a future resolves
  // are deterministic.
  options.dispatcher_threads = 1;
  return options;
}

std::vector<Engine::Request> Round(const Spec& spec) {
  std::vector<Engine::Request> requests;
  for (const std::string& view : spec.ServingRound()) {
    requests.push_back({spec.views.at(view), 0});
  }
  return requests;
}

TEST(MetricsExportTest, ServiceRenderMatchesStatsSnapshot) {
  CatalogService service(DeterministicOptions());
  auto spec = ParseSpec(kSpecText);
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto handle = service.OpenCatalog("hq", std::move(spec->catalog),
                                    {spec->source_cfds});
  ASSERT_TRUE(handle.ok()) << handle.status();

  // Two rounds: the repeated ByRegion and the warm second pass make
  // hits, misses and batch counts all nonzero and deterministic.
  for (int pass = 0; pass < 2; ++pass) {
    auto submitted = service.SubmitBatch("hq", Round(*spec));
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    BatchReply reply = submitted->get();
    for (const auto& r : reply.results) ASSERT_TRUE(r.ok()) << r.status();
  }

  ServiceStatsSnapshot stats = service.Stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  const TenantStatsSnapshot& hq = stats.tenants[0];

  auto parsed = obs::ParseMetricsText(service.RenderMetricsText());
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  // Every exported scalar agrees with the stats snapshot it was
  // collected from.
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_cache_hits_total{tenant=\"hq\"}"),
                   static_cast<double>(hq.engine.cache.hits));
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_cache_misses_total{tenant=\"hq\"}"),
                   static_cast<double>(hq.engine.cache.misses));
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_requests_total{tenant=\"hq\"}"),
                   static_cast<double>(hq.engine.requests));
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_admitted_total{tenant=\"hq\"}"),
                   static_cast<double>(hq.admitted));
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_batches_submitted_total"),
                   static_cast<double>(stats.batches_submitted));
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_batches_completed_total"),
                   static_cast<double>(stats.batches_completed));
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_tenants"), 1.0);
  EXPECT_GT(parsed->Value("cfdprop_cache_hits_total{tenant=\"hq\"}"), 0.0);
  EXPECT_GT(parsed->Value("cfdprop_cache_misses_total{tenant=\"hq\"}"), 0.0);

  // Request-latency histogram: one sample per request, +Inf bucket ==
  // _count, and the engine's own snapshot agrees.
  EXPECT_DOUBLE_EQ(
      parsed->Value("cfdprop_request_latency_us_count{tenant=\"hq\"}"),
      static_cast<double>(hq.engine.requests));
  EXPECT_DOUBLE_EQ(
      parsed->Value(
          "cfdprop_request_latency_us_bucket{tenant=\"hq\",le=\"+Inf\"}"),
      static_cast<double>(hq.engine.requests));
  EXPECT_EQ(hq.engine.total_latency.count, hq.engine.requests);

  // Stage tracing: each admitted batch passes every lifecycle stage
  // exactly once. The first four stages record before the reply future
  // resolves, so their counts are exact here; the reply stage records
  // *after* delivery (it times delivery itself), so the single
  // dispatcher guarantees only every batch before the last.
  const double batches = static_cast<double>(hq.admitted);
  for (const char* stage :
       {"admission", "queue_wait", "dispatch", "propagate"}) {
    EXPECT_DOUBLE_EQ(
        parsed->Value(std::string("cfdprop_stage_latency_us_count{tenant="
                                  "\"hq\",stage=\"") +
                      stage + "\"}"),
        batches)
        << stage;
  }
  const double reply_count = parsed->Value(
      "cfdprop_stage_latency_us_count{tenant=\"hq\",stage=\"reply\"}");
  EXPECT_GE(reply_count, batches - 1);
  EXPECT_LE(reply_count, batches);
}

TEST(MetricsExportTest, RendersAreMonotoneAndConsistent) {
  CatalogService service(DeterministicOptions());
  auto spec = ParseSpec(kSpecText);
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(service
                  .OpenCatalog("hq", std::move(spec->catalog),
                               {spec->source_cfds})
                  .ok());

  double last_requests = 0;
  for (int pass = 0; pass < 3; ++pass) {
    auto submitted = service.SubmitBatch("hq", Round(*spec));
    ASSERT_TRUE(submitted.ok());
    submitted->get();
    auto parsed = obs::ParseMetricsText(service.RenderMetricsText());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const double requests =
        parsed->Value("cfdprop_requests_total{tenant=\"hq\"}");
    EXPECT_GE(requests, last_requests) << "counters must be monotone";
    last_requests = requests;
    // Within one render: hits + misses == requests (a torn read across
    // the hit/miss split would break this).
    EXPECT_DOUBLE_EQ(
        parsed->Value("cfdprop_cache_hits_total{tenant=\"hq\"}") +
            parsed->Value("cfdprop_cache_misses_total{tenant=\"hq\"}"),
        requests);
  }
}

TEST(MetricsExportTest, MetricsFrameDeliversTheExposition) {
  CatalogService service(DeterministicOptions());
  net::CoverServer server(service);
  ASSERT_TRUE(server.Start().ok());

  net::CoverClientOptions client_options;
  client_options.port = server.port();
  net::CoverClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.OpenCatalog("eu", kSpecText).ok());

  auto client_spec = ParseSpec(kSpecText);
  ASSERT_TRUE(client_spec.ok());
  auto reply = client.SubmitBatch("eu", client_spec->ServingRound(),
                                  client_spec->catalog.pool());
  ASSERT_TRUE(reply.ok()) << reply.status();

  auto text = client.Metrics();
  ASSERT_TRUE(text.ok()) << text.status();
  auto parsed = obs::ParseMetricsText(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  // The scrape agrees with the server-side ledgers it rode along with.
  ServiceStatsSnapshot stats = service.Stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_requests_total{tenant=\"eu\"}"),
                   static_cast<double>(stats.tenants[0].engine.requests));
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_cache_hits_total{tenant=\"eu\"}"),
                   static_cast<double>(stats.tenants[0].engine.cache.hits));

  // Net-layer families ride in the same exposition. The scrape itself
  // is a frame, so frames >= 3 (open + submit + metrics) and the
  // decode/encode/write stage histograms have recorded at least the
  // frames that preceded the render.
  EXPECT_EQ(parsed->types.at("cfdprop_net_frames_total"), "counter");
  EXPECT_GE(parsed->Value("cfdprop_net_frames_total"), 3.0);
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_net_connections_total"), 1.0);
  EXPECT_DOUBLE_EQ(parsed->Value("cfdprop_net_decode_errors_total"), 0.0);
  EXPECT_GE(
      parsed->Value("cfdprop_net_stage_latency_us_count{stage=\"decode\"}"),
      2.0);
  EXPECT_GE(
      parsed->Value("cfdprop_net_stage_latency_us_count{stage=\"write\"}"),
      2.0);

  server.Stop();
}

TEST(MetricsExportTest, MetricsReplyCodec) {
  const std::string text = "# TYPE a counter\na 1\n";
  auto decoded =
      net::DecodeMetricsReply(net::EncodeMetricsReply(Status::OK(), text));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, text);

  // A typed error Status survives the wire.
  auto failed = net::DecodeMetricsReply(
      net::EncodeMetricsReply(Status::Internal("render failed"), ""));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);

  // Truncation and trailing garbage are both malformed.
  std::string payload = net::EncodeMetricsReply(Status::OK(), text);
  EXPECT_FALSE(
      net::DecodeMetricsReply(
          std::string_view(payload).substr(0, payload.size() - 3))
          .ok());
  EXPECT_FALSE(net::DecodeMetricsReply(payload + "x").ok());
}

}  // namespace
}  // namespace cfdprop
