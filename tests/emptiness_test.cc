#include "src/propagation/emptiness.h"

#include <gtest/gtest.h>

namespace cfdprop {
namespace {

class EmptinessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.AddRelation("R", {"A", "B", "C"}).ok());
  }
  PatternValue Wc() { return PatternValue::Wildcard(); }
  PatternValue Const(const char* s) {
    return PatternValue::Constant(cat_.pool().Intern(s));
  }
  Catalog cat_;
};

TEST_F(EmptinessTest, PlainViewIsNonEmpty) {
  SPCViewBuilder b(cat_);
  b.AddAtom(0);
  auto v = b.Build();
  ASSERT_TRUE(v.ok());
  auto r = IsAlwaysEmpty(cat_, *v, {});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST_F(EmptinessTest, Example31CFDPlusSelection) {
  // phi = R(A -> B, (_ || b1)) and V = sigma_{B=b2}(R): always empty.
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(a, "B", "b2").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  std::vector<CFD> sigma = {
      CFD::Make(0, {0}, {Wc()}, 1, Const("b1")).value()};
  auto r = IsAlwaysEmpty(cat_, *v, sigma);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);

  // With the matching constant the view can be non-empty.
  SPCViewBuilder b2(cat_);
  size_t a2 = b2.AddAtom(0);
  ASSERT_TRUE(b2.SelectConst(a2, "B", "b1").ok());
  auto v2 = b2.Build();
  ASSERT_TRUE(v2.ok());
  r = IsAlwaysEmpty(cat_, *v2, sigma);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST_F(EmptinessTest, ContradictorySelectionAlone) {
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(a, "A", "1").ok());
  ASSERT_TRUE(b.SelectConst(a, "A", "2").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());
  auto r = IsAlwaysEmpty(cat_, *v, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST_F(EmptinessTest, SelectionChainForcesConflict) {
  // A = B (selection), sigma forces A = a1 and B = a2 on all tuples.
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectEq(a, "A", a, "B").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  std::vector<CFD> sigma = {
      CFD::Make(0, {2}, {Wc()}, 0, Const("a1")).value(),
      CFD::Make(0, {2}, {Wc()}, 1, Const("a2")).value()};
  auto r = IsAlwaysEmpty(cat_, *v, sigma);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST_F(EmptinessTest, UnionIsEmptyOnlyIfAllDisjunctsAre) {
  SPCViewBuilder b1(cat_);
  size_t a1 = b1.AddAtom(0);
  ASSERT_TRUE(b1.SelectConst(a1, "A", "1").ok());
  ASSERT_TRUE(b1.SelectConst(a1, "A", "2").ok());  // empty
  auto v1 = b1.Build();
  ASSERT_TRUE(v1.ok());

  SPCViewBuilder b2(cat_);
  b2.AddAtom(0);
  auto v2 = b2.Build();
  ASSERT_TRUE(v2.ok());

  SPCUView u;
  u.disjuncts = {*v1, *v2};
  auto r = IsAlwaysEmpty(cat_, u, {});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);

  SPCUView both_empty;
  both_empty.disjuncts = {*v1, *v1};
  r = IsAlwaysEmpty(cat_, both_empty, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST_F(EmptinessTest, GeneralSettingFiniteDomainExhaustion) {
  // dom(F) = {0,1}; sigma forbids both values via forbidden patterns:
  // ([F=0] -> A=p) + ([F=0] -> A=q) kills F=0, same for F=1.
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"F", Domain::Boolean(cat_.pool())});
  attrs.push_back(Attribute{"A", Domain::Infinite()});
  ASSERT_TRUE(cat_.AddRelation("S", std::move(attrs)).ok());
  RelationId s = cat_.FindRelation("S");

  SPCViewBuilder b(cat_);
  b.AddAtom(s);
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  std::vector<CFD> sigma = {
      CFD::Make(s, {0}, {Const("0")}, 1, Const("p")).value(),
      CFD::Make(s, {0}, {Const("0")}, 1, Const("q")).value(),
      CFD::Make(s, {0}, {Const("1")}, 1, Const("p")).value(),
      CFD::Make(s, {0}, {Const("1")}, 1, Const("q")).value()};

  // Infinite-domain reading: a fresh F value escapes all patterns.
  auto r_inf = IsAlwaysEmpty(cat_, *v, sigma);
  ASSERT_TRUE(r_inf.ok());
  EXPECT_FALSE(*r_inf);

  // General setting: F must be 0 or 1, both contradictory => empty.
  EmptinessOptions general;
  general.general_setting = true;
  auto r_gen = IsAlwaysEmpty(cat_, *v, sigma, general);
  ASSERT_TRUE(r_gen.ok());
  EXPECT_TRUE(*r_gen);

  // Removing one branch re-opens the view.
  sigma.pop_back();
  r_gen = IsAlwaysEmpty(cat_, *v, sigma, general);
  ASSERT_TRUE(r_gen.ok());
  EXPECT_FALSE(*r_gen);
}

TEST_F(EmptinessTest, InstantiationBudgetSurfaces) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < 12; ++i) {
    attrs.push_back(Attribute{"F" + std::to_string(i),
                              Domain::Boolean(cat_.pool())});
  }
  ASSERT_TRUE(cat_.AddRelation("Wide", std::move(attrs)).ok());
  RelationId w = cat_.FindRelation("Wide");

  SPCViewBuilder b(cat_);
  b.AddAtom(w);
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  // Branch-and-prune reaches a witness leaf in ~13 nodes (one per
  // variable), far under the naive 2^12 enumeration.
  EmptinessOptions tight;
  tight.general_setting = true;
  tight.instantiation.max_instantiations = 16;
  auto r = IsAlwaysEmpty(cat_, *v, {}, tight);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(*r);

  // A budget below the branch depth still fails loudly rather than
  // silently under-approximating.
  EmptinessOptions too_tight;
  too_tight.general_setting = true;
  too_tight.instantiation.max_instantiations = 4;
  auto r2 = IsAlwaysEmpty(cat_, *v, {}, too_tight);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace cfdprop
