// Wire-protocol unit tests and the corruption battery (the network
// sibling of the snapshot one in engine_snapshot_test.cc): every
// malformed byte stream — truncations at each structural boundary, bad
// magic, a future version, an oversized length prefix, bit flips under
// the checksum — must surface as a clean Status, and a CoverServer fed
// such bytes must drop that connection only, never stop serving.

#include "src/net/wire_protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/net/cover_client.h"
#include "src/net/cover_server.h"
#include "src/net/socket_io.h"
#include "src/parser/parser.h"

namespace cfdprop {
namespace net {
namespace {

constexpr char kSpecText[] = R"(
relation T(region, cust, tier, rep)

cfd T: [region] -> rep
cfd T: [tier] -> rep

view ByRegion = pi("r" as tag, 0.region as region, 0.rep as rep) from(T)
view GoldReps = pi("g" as tag, 0.cust as cust, 0.rep as rep) sigma(0.tier = "gold") from(T)
)";

TEST(WireProtocolTest, FrameRoundTrip) {
  const std::string payload = "hello, covers";
  std::string frame = EncodeFrame(FrameType::kStats, payload);
  EXPECT_EQ(frame.size(),
            kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);

  auto header = DecodeFrameHeader(frame);
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_EQ(header->type, FrameType::kStats);
  EXPECT_EQ(header->payload_len, payload.size());

  auto verified = VerifyFrame(frame);
  ASSERT_TRUE(verified.ok()) << verified.status();
  EXPECT_EQ(*verified, payload);

  // An empty payload is a legal frame (stats/shutdown requests).
  auto empty = VerifyFrame(EncodeFrame(FrameType::kShutdown, ""));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(WireProtocolTest, CorruptionBattery) {
  const std::string frame = EncodeFrame(FrameType::kSubmitBatch, "payload!");

  // Truncation at every structural boundary (and a few mid-field).
  for (size_t cut : {size_t{0}, size_t{3}, size_t{7}, size_t{8}, size_t{12},
                     kFrameHeaderBytes, kFrameHeaderBytes + 4,
                     frame.size() - kFrameTrailerBytes, frame.size() - 1}) {
    std::string t = frame.substr(0, cut);
    if (cut < kFrameHeaderBytes) {
      EXPECT_FALSE(DecodeFrameHeader(t).ok()) << "cut at " << cut;
    }
    EXPECT_FALSE(VerifyFrame(t).ok()) << "cut at " << cut;
  }

  // Bad magic.
  {
    std::string t = frame;
    t[0] = 'X';
    auto r = DecodeFrameHeader(t);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("magic"), std::string::npos);
  }
  // Future version.
  {
    std::string t = frame;
    t[4] = 0x7f;
    auto r = DecodeFrameHeader(t);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("version"), std::string::npos);
  }
  // Unknown frame type.
  {
    std::string t = frame;
    t[8] = 0x3f;
    EXPECT_FALSE(DecodeFrameHeader(t).ok());
  }
  // Oversized length prefix: rejected straight from the header, before
  // any reader would size a buffer by it.
  {
    std::string t = frame;
    t[9] = static_cast<char>(0xff);
    t[10] = static_cast<char>(0xff);
    t[11] = static_cast<char>(0xff);
    t[12] = static_cast<char>(0xff);
    auto r = DecodeFrameHeader(t);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("frame bound"), std::string::npos);
  }
  // Bit flips in the payload and in the checksum itself.
  for (size_t at : {kFrameHeaderBytes + 1, frame.size() - 1}) {
    std::string t = frame;
    t[at] = static_cast<char>(t[at] ^ 0x40);
    auto r = VerifyFrame(t);
    ASSERT_FALSE(r.ok()) << "flip at " << at;
    EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
  }
  // Length understating the payload: byte count and header disagree.
  {
    std::string t = frame;
    t[9] = 1;
    EXPECT_FALSE(VerifyFrame(t).ok());
  }
}

TEST(WireProtocolTest, StatusCodesSurviveTheTrip) {
  const Status statuses[] = {
      Status::OK(),
      Status::InvalidArgument("bad"),
      Status::NotFound("missing"),
      Status::Inconsistent("contradiction"),
      Status::ResourceExhausted("over cap"),
      Status::Unsupported("not here"),
      Status::Internal("bug"),
      Status::DeadlineExceeded("slow peer"),
  };
  for (const Status& s : statuses) {
    std::string bytes;
    EncodeStatus(bytes, s);
    size_t pos = 0;
    Status decoded;
    ASSERT_TRUE(DecodeStatus(bytes, &pos, &decoded));
    EXPECT_EQ(pos, bytes.size());
    EXPECT_EQ(decoded.code(), s.code());
    EXPECT_EQ(decoded.message(), s.message());
  }
  // Truncated status bytes fail the bounds check, never read past.
  std::string bytes;
  EncodeStatus(bytes, Status::NotFound("missing"));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    size_t pos = 0;
    Status decoded;
    EXPECT_FALSE(DecodeStatus(bytes.substr(0, cut), &pos, &decoded));
  }
}

TEST(WireProtocolTest, RequestCodecsRoundTrip) {
  OpenCatalogRequest open{"eu", "relation R(a, b)\n"};
  auto open2 = DecodeOpenCatalogRequest(EncodeOpenCatalogRequest(open));
  ASSERT_TRUE(open2.ok());
  EXPECT_EQ(open2->tenant, open.tenant);
  EXPECT_EQ(open2->spec_text, open.spec_text);

  SubmitBatchRequest submit;
  submit.tenant = "eu";
  submit.batches = {{"V1", "V2"}, {}, {"V1"}};
  auto submit2 = DecodeSubmitBatchRequest(EncodeSubmitBatchRequest(submit));
  ASSERT_TRUE(submit2.ok());
  EXPECT_EQ(submit2->tenant, submit.tenant);
  EXPECT_EQ(submit2->batches, submit.batches);

  // Truncation sweep over the submit request.
  const std::string bytes = EncodeSubmitBatchRequest(submit);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeSubmitBatchRequest(bytes.substr(0, cut)).ok());
  }

  WireServiceStats stats;
  stats.global_cache_budget = 4096;
  stats.batches_submitted = 7;
  stats.batches_completed = 6;
  stats.batches_rejected = 2;
  stats.tenants.push_back(
      {"eu", 128, 7, 5, 2, 1, 1, "requests=7 errors=0"});
  auto stats2 = DecodeStatsReply(EncodeStatsReply(Status::OK(), stats));
  ASSERT_TRUE(stats2.ok());
  ASSERT_EQ(stats2->tenants.size(), 1u);
  EXPECT_EQ(stats2->tenants[0].name, "eu");
  EXPECT_EQ(stats2->tenants[0].admission_rejected, 2u);
  EXPECT_EQ(stats2->tenants[0].engine_text, "requests=7 errors=0");
  EXPECT_EQ(stats2->batches_rejected, 2u);

  // A non-OK stats reply decodes to its typed status.
  auto failed = DecodeStatsReply(
      EncodeStatsReply(Status::Unsupported("no stats"), {}));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnsupported);
}

TEST(WireProtocolTest, TraceBlockRoundTripsThroughSubmitRequests) {
  SubmitBatchRequest request;
  request.tenant = "eu";
  request.batches = {{"ByRegion"}};

  // Absent (trace_id == 0): the block is one flag byte and decodes back
  // to an empty context.
  {
    const std::string bytes = EncodeSubmitBatchRequest(request);
    auto decoded = DecodeSubmitBatchRequest(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->trace.trace_id, 0u);
    EXPECT_EQ(decoded->trace.parent_span_id, 0u);
    EXPECT_FALSE(decoded->trace.sampled);

    // Present-unsampled costs exactly the two ids over the flag byte.
    SubmitBatchRequest traced = request;
    traced.trace.trace_id = 0x1111222233334444ull;
    EXPECT_EQ(EncodeSubmitBatchRequest(traced).size(), bytes.size() + 16);
  }

  // Present, unsampled and sampled: ids and the flag survive the trip.
  for (bool sampled : {false, true}) {
    request.trace.trace_id = 0xa1b2c3d4e5f60718ull;
    request.trace.parent_span_id = 0x1122334455667788ull;
    request.trace.sampled = sampled;
    auto decoded = DecodeSubmitBatchRequest(EncodeSubmitBatchRequest(request));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->trace.trace_id, request.trace.trace_id);
    EXPECT_EQ(decoded->trace.parent_span_id, request.trace.parent_span_id);
    EXPECT_EQ(decoded->trace.sampled, sampled);
    EXPECT_EQ(decoded->batches, request.batches);
  }
}

TEST(WireProtocolTest, TraceBlockCorruptionBattery) {
  SubmitBatchRequest request;
  request.tenant = "eu";
  request.batches = {{"ByRegion"}};
  request.trace.trace_id = 0xa1b2c3d4e5f60718ull;
  request.trace.parent_span_id = 0x1122334455667788ull;
  request.trace.sampled = true;
  const std::string bytes = EncodeSubmitBatchRequest(request);

  // Truncation at every byte of the trace block (flag + 2 x u64 at the
  // payload tail) must surface as a clean Malformed status.
  for (size_t cut = bytes.size() - 17; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeSubmitBatchRequest(bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }

  // An unknown flag value is refused.
  {
    std::string t = bytes;
    t[bytes.size() - 17] = 3;
    EXPECT_FALSE(DecodeSubmitBatchRequest(t).ok());
  }

  // flag=present with a zero trace id is contradictory (zero means "no
  // trace") and refused rather than smuggled through.
  {
    std::string t = bytes;
    for (size_t i = bytes.size() - 16; i < bytes.size() - 8; ++i) t[i] = 0;
    EXPECT_FALSE(DecodeSubmitBatchRequest(t).ok());
  }

  // Trailing garbage after a complete trace block is refused.
  EXPECT_FALSE(DecodeSubmitBatchRequest(bytes + '\0').ok());
}

TEST(WireProtocolTest, TraceDumpRoundTrip) {
  // The request must be empty; anything else is malformed.
  EXPECT_TRUE(DecodeTraceDumpRequest("").ok());
  EXPECT_FALSE(DecodeTraceDumpRequest("x").ok());

  std::vector<obs::SpanRecord> spans;
  for (int i = 0; i < 3; ++i) {
    obs::SpanRecord span;
    span.trace_id = 0x1000 + static_cast<uint64_t>(i / 2);
    span.span_id = 0x2000 + static_cast<uint64_t>(i);
    span.parent_id = i == 0 ? 0 : 0x2000;
    span.start_us = 100 + static_cast<uint64_t>(i);
    span.dur_us = 50;
    span.name = i == 0 ? "rpc" : "compute";  // repeats share a table slot
    span.tenant = "eu";
    span.annot = i == 2 ? "hits=4,misses=1" : "";
    span.shard = i;
    span.slow = i == 1;
    spans.push_back(span);
  }

  const std::string payload = EncodeTraceDumpReply(Status::OK(), spans);
  auto decoded = DecodeTraceDumpReply(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ((*decoded)[i].trace_id, spans[i].trace_id) << i;
    EXPECT_EQ((*decoded)[i].span_id, spans[i].span_id) << i;
    EXPECT_EQ((*decoded)[i].parent_id, spans[i].parent_id) << i;
    EXPECT_EQ((*decoded)[i].start_us, spans[i].start_us) << i;
    EXPECT_EQ((*decoded)[i].dur_us, spans[i].dur_us) << i;
    EXPECT_EQ((*decoded)[i].name, spans[i].name) << i;
    EXPECT_EQ((*decoded)[i].tenant, spans[i].tenant) << i;
    EXPECT_EQ((*decoded)[i].annot, spans[i].annot) << i;
    EXPECT_EQ((*decoded)[i].shard, spans[i].shard) << i;
    EXPECT_EQ((*decoded)[i].slow, spans[i].slow) << i;
  }

  // Determinism: equal span sets encode to equal bytes (the string
  // table is first-use ordered, not hash ordered).
  EXPECT_EQ(payload, EncodeTraceDumpReply(Status::OK(), spans));

  // An empty dump is a legal reply.
  auto empty = DecodeTraceDumpReply(EncodeTraceDumpReply(Status::OK(), {}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  // A non-OK reply decodes to its typed status.
  auto failed = DecodeTraceDumpReply(
      EncodeTraceDumpReply(Status::Unavailable("draining"), {}));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);

  // Truncation sweep: every prefix is refused cleanly.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeTraceDumpReply(payload.substr(0, cut)).ok())
        << "cut at " << cut;
  }

  // A span whose string index points past the table is refused (the
  // last 4 payload bytes are span 2's annot index).
  {
    std::string t = payload;
    t[t.size() - 4] = '\x7f';
    EXPECT_FALSE(DecodeTraceDumpReply(t).ok());
  }
}

TEST(WireProtocolTest, SubmitReplyCoversRemapAcrossPools) {
  // Server side: a cover whose CFDs carry pattern constants.
  Catalog server_cat;
  ASSERT_TRUE(server_cat.AddRelation("R", {"A", "B"}).ok());
  const Value lion = server_cat.pool().Intern("lion");
  const Value puma = server_cat.pool().Intern("puma");

  CFD cfd;
  cfd.relation = 0;
  cfd.lhs = {0};
  cfd.lhs_pats = {PatternValue::Constant(lion)};
  cfd.rhs = 1;
  cfd.rhs_pat = PatternValue::Constant(puma);

  EngineResult result;
  result.fingerprint = 0xfeedfacecafebeefull;
  result.cache_hit = true;
  result.disjunct_hits = 2;
  result.disjunct_count = 3;
  auto cover = std::make_shared<CachedCover>();
  cover->cover = {cfd};
  cover->truncated = true;
  result.cover = cover;

  std::vector<WireBatchResult> batches(2);
  batches[0].results.emplace_back(result);
  batches[0].results.emplace_back(Status::Internal("request blew up"));
  batches[1].status = Status::ResourceExhausted("admission: over cap");

  const std::string payload =
      EncodeSubmitBatchReply(Status::OK(), batches, server_cat.pool());

  // Client side: a pool with a *different* interning history — decoded
  // constants must remap by text, never by id.
  Catalog client_cat;
  ASSERT_TRUE(client_cat.AddRelation("R", {"A", "B"}).ok());
  client_cat.pool().Intern("zebra");
  client_cat.pool().Intern("puma");  // different id than the server's

  auto decoded = DecodeSubmitBatchReply(payload, client_cat.pool());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[1].status.code(), StatusCode::kResourceExhausted);
  ASSERT_EQ((*decoded)[0].results.size(), 2u);
  EXPECT_EQ((*decoded)[0].results[1].status().code(), StatusCode::kInternal);

  const Result<EngineResult>& r = (*decoded)[0].results[0];
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->fingerprint, result.fingerprint);
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->disjunct_hits, 2u);
  EXPECT_EQ(r->disjunct_count, 3u);
  EXPECT_TRUE(r->cover->truncated);
  ASSERT_EQ(r->cover->cover.size(), 1u);
  const CFD& got = r->cover->cover[0];
  EXPECT_EQ(client_cat.pool().Text(got.lhs_pats[0].value()), "lion");
  EXPECT_EQ(client_cat.pool().Text(got.rhs_pat.value()), "puma");

  // Deterministic bytes: re-encoding the decoded reply from the
  // client's (differently ordered) pool reproduces the payload exactly —
  // the loopback differential test's byte-identity lever.
  EXPECT_EQ(
      EncodeSubmitBatchReply(Status::OK(), *decoded, client_cat.pool()),
      payload);

  // Truncation sweep: every prefix rejects cleanly.
  for (size_t cut = 0; cut < payload.size(); cut += 3) {
    Catalog scratch;
    EXPECT_FALSE(
        DecodeSubmitBatchReply(payload.substr(0, cut), scratch.pool()).ok());
  }
}

/// Raw-socket helper: connect, send bytes, report whether the server
/// closed the connection (recv saw EOF) without answering.
bool ServerClosesOn(uint16_t port, const std::string& bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_TRUE(WriteAll(fd, bytes).ok());
  // Half-close the write side: a *truncated* frame otherwise leaves the
  // server blocked waiting for the missing bytes while we wait for its
  // verdict. EOF mid-frame is exactly the truncation under test.
  ::shutdown(fd, SHUT_WR);
  char buf[64];
  ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
  ::close(fd);
  return r == 0;
}

TEST(CoverServerTest, MalformedFramesCloseOnlyTheirConnection) {
  CatalogService service{ServiceOptions{}};
  CoverServer server(service);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.OpenSpec("eu", kSpecText).ok());

  // Garbage, bad magic, a tampered checksum, an oversized length
  // prefix, a mid-frame hangup: each connection dies quietly...
  EXPECT_TRUE(ServerClosesOn(server.port(), "GET / HTTP/1.1\r\n\r\n"));
  std::string frame = EncodeFrame(FrameType::kStats, "");
  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_TRUE(ServerClosesOn(server.port(), bad_magic));
  std::string bad_sum = frame;
  bad_sum.back() = static_cast<char>(bad_sum.back() ^ 0x01);
  EXPECT_TRUE(ServerClosesOn(server.port(), bad_sum));
  std::string huge = frame;
  huge[9] = huge[10] = huge[11] = huge[12] = static_cast<char>(0xff);
  EXPECT_TRUE(ServerClosesOn(server.port(), huge));
  EXPECT_TRUE(
      ServerClosesOn(server.port(), frame.substr(0, frame.size() - 3)));

  // ...while the server keeps serving well-formed clients.
  CoverClientOptions client_options;
  client_options.port = server.port();
  CoverClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->tenants.size(), 1u);
  EXPECT_EQ(stats->tenants[0].name, "eu");

  CoverServerStats net = server.Stats();
  EXPECT_EQ(net.decode_errors, 5u);
  EXPECT_GE(net.connections_accepted, 6u);
  server.Stop();
}

TEST(CoverServerTest, TypedErrorsAndShutdownHandshake) {
  CatalogService service{ServiceOptions{}};
  CoverServer server(service);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.OpenSpec("eu", kSpecText).ok());

  CoverClientOptions options;
  options.port = server.port();
  CoverClient client(options);
  ASSERT_TRUE(client.Connect().ok());

  // Unparsable spec text → InvalidArgument; re-open with identical text
  // → idempotent success (the reconnect contract); re-open with
  // *different* text → InvalidArgument; unknown tenant → NotFound;
  // unknown view → per-batch NotFound. All typed, all through the wire.
  auto bad_spec = client.OpenCatalog("xx", "relation ???");
  ASSERT_FALSE(bad_spec.ok());
  EXPECT_EQ(bad_spec.status().code(), StatusCode::kInvalidArgument);
  auto reopen = client.OpenCatalog("eu", kSpecText);
  EXPECT_TRUE(reopen.ok()) << reopen.status().ToString();
  auto dup = client.OpenCatalog("eu", std::string(kSpecText) + "\n# changed");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);

  Catalog scratch;
  auto missing_tenant = client.SubmitBatch("nope", {"ByRegion"},
                                           scratch.pool());
  ASSERT_FALSE(missing_tenant.ok());
  EXPECT_EQ(missing_tenant.status().code(), StatusCode::kNotFound);

  auto missing_view =
      client.SubmitBatch("eu", {"NoSuchView"}, scratch.pool());
  ASSERT_TRUE(missing_view.ok()) << "frame-level ok, batch-level error";
  EXPECT_EQ(missing_view->status.code(), StatusCode::kNotFound);

  EXPECT_FALSE(client.DropCatalog("nope").ok());
  EXPECT_TRUE(client.DropCatalog("eu").ok());
  auto after_drop = client.SubmitBatch("eu", {"ByRegion"}, scratch.pool());
  ASSERT_FALSE(after_drop.ok());
  EXPECT_EQ(after_drop.status().code(), StatusCode::kNotFound);

  EXPECT_FALSE(server.shutdown_requested());
  EXPECT_TRUE(client.Shutdown().ok());
  server.WaitForShutdown();
  EXPECT_TRUE(server.shutdown_requested());
  server.Stop();
}

/// Connects a raw (non-CoverClient) socket to the server.
int RawConnect(uint16_t port, int rcvbuf_bytes = 0) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf_bytes > 0) {
    // Before connect: the window is negotiated in the handshake.
    EXPECT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                           sizeof(rcvbuf_bytes)),
              0);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

/// Polls the server's deadline counter until it reaches `want` (bounded).
bool WaitForDeadlines(CoverServer& server, uint64_t want) {
  for (int i = 0; i < 200; ++i) {
    if (server.Stats().deadlines_exceeded >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

TEST(CoverServerDeadlineTest, HungSenderMidFrameTripsTheReadDeadline) {
  CatalogService service{ServiceOptions{}};
  CoverServerOptions options;
  options.io_timeout = std::chrono::milliseconds(200);
  CoverServer server(service, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.OpenSpec("eu", kSpecText).ok());

  // Five header bytes, then silence — no close, no shutdown: the
  // classic hung peer. Without SO_RCVTIMEO this parked the connection
  // thread in recv() forever.
  const std::string frame = EncodeFrame(FrameType::kStats, "");
  int fd = RawConnect(server.port());
  ASSERT_TRUE(WriteAll(fd, frame.substr(0, 5)).ok());
  EXPECT_TRUE(WaitForDeadlines(server, 1));

  // The deadline is its own counter — a hung peer is not a decode error.
  CoverServerStats stats = server.Stats();
  EXPECT_EQ(stats.deadlines_exceeded, 1u);
  EXPECT_EQ(stats.decode_errors, 0u);

  // Only that connection died: the server answers a well-formed client.
  char buf[16];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0) << "server closed our fd";
  ::close(fd);
  CoverClientOptions client_options;
  client_options.port = server.port();
  CoverClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.Stats().ok());
  server.Stop();
}

TEST(CoverServerDeadlineTest, HungReaderTripsTheSendDeadlineAndFreesTheSlot) {
  CatalogService service{ServiceOptions{}};
  CoverServerOptions options;
  options.io_timeout = std::chrono::milliseconds(300);
  // Shrink both buffers so a modest reply overfills the pipe: the
  // server's write blocks on a reader that never drains.
  options.send_buffer_bytes = 4096;
  CoverServer server(service, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.OpenSpec("eu", kSpecText).ok());

  // A legal burst whose reply (2000 covers) dwarfs the socket buffers,
  // sent by a peer that never reads.
  SubmitBatchRequest request;
  request.tenant = "eu";
  request.batches.push_back(
      std::vector<std::string>(2000, std::string("ByRegion")));
  const std::string frame = EncodeFrame(
      FrameType::kSubmitBatch, EncodeSubmitBatchRequest(request));
  int fd = RawConnect(server.port(), /*rcvbuf_bytes=*/4096);
  ASSERT_TRUE(WriteAll(fd, frame).ok());
  EXPECT_TRUE(WaitForDeadlines(server, 1));
  EXPECT_GE(server.Stats().deadlines_exceeded, 1u);
  ::close(fd);

  // The batch itself completed — the deadline fired delivering the
  // reply, after the dispatcher released the admission slot. The gauges
  // drain to zero and a fresh client gets served immediately, i.e. the
  // hung reader held neither a slot nor the server.
  for (int i = 0; i < 200; ++i) {
    const ServiceStatsSnapshot stats = service.Stats();
    if (!stats.tenants.empty() && stats.tenants[0].queued == 0 &&
        stats.tenants[0].running == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  const ServiceStatsSnapshot stats = service.Stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].queued, 0u);
  EXPECT_EQ(stats.tenants[0].running, 0u);

  CoverClientOptions client_options;
  client_options.port = server.port();
  CoverClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  Catalog scratch;
  auto served = client.SubmitBatch("eu", {"ByRegion"}, scratch.pool());
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_TRUE(served->status.ok());
  server.Stop();
}

TEST(CoverClientDeadlineTest, SilentServerTripsTheClientIoDeadline) {
  // A listener that accepts and then never speaks.
  int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  CoverClientOptions options;
  options.port = ntohs(addr.sin_port);
  options.io_timeout = std::chrono::milliseconds(200);
  CoverClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  auto stats = client.Stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
  // The stream has no resync point: the client dropped the connection.
  EXPECT_FALSE(client.connected());
  ::close(lfd);
}

TEST(CoverClientDeadlineTest, ConnectHonorsTheOverallDeadline) {
  // Grab an ephemeral port, then close it so nothing listens there.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);

  // Attempts-only this would retry for ~100 s; the overall deadline
  // caps it at ~300 ms with a typed verdict.
  CoverClientOptions options;
  options.port = ntohs(addr.sin_port);
  options.connect_attempts = 1000;
  options.retry_delay = std::chrono::milliseconds(100);
  options.connect_timeout = std::chrono::milliseconds(300);
  CoverClient client(options);
  const auto t0 = std::chrono::steady_clock::now();
  Status connected = client.Connect();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(connected.ok());
  EXPECT_EQ(connected.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

}  // namespace
}  // namespace net
}  // namespace cfdprop
