// The workload harness's two load-bearing promises, asserted directly:
//
//  1. Determinism — the same --seed yields a byte-identical request
//     stream (SerializeScripts compares equal, fingerprints match) and
//     a byte-identical regenerated tenant spec, which is what makes a
//     reopened tenant's warm start line up with its spilled snapshot.
//  2. Path equivalence — burst-reject produces the *same* admit/reject
//     pattern and admission totals whether the stream is served through
//     the in-process CatalogService, the TCP wire, or the 3-shard
//     routed tier (the wire paths' totals are read back through the
//     stats frame / router aggregate, as a remote client would), and
//     churn-free scenarios serve byte-identical covers on every path
//     (the order-independent cover_fingerprint compares equal).

#include "src/gen/workload.h"

#include <sys/stat.h>

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/workload/runner.h"

namespace cfdprop {
namespace {

using gen::AllWorkloadKinds;
using gen::BuildTenantSpec;
using gen::BuildWorkloadPlan;
using gen::FingerprintScripts;
using gen::ParseWorkloadKind;
using gen::SerializeScripts;
using gen::WorkloadKind;
using gen::WorkloadKindName;
using gen::WorkloadOp;
using gen::WorkloadOptions;
using gen::WorkloadPlan;
using workload::ParseRunnerPath;
using workload::RunnerOptions;
using workload::RunnerPath;
using workload::RunnerPathName;
using workload::RunWorkload;
using workload::WorkloadReport;

TEST(WorkloadPlanTest, KindNamesRoundTripAndCoverEveryKind) {
  std::set<std::string> seen;
  for (WorkloadKind kind : AllWorkloadKinds()) {
    const std::string name = WorkloadKindName(kind);
    EXPECT_TRUE(seen.insert(name).second) << name;
    auto parsed = ParseWorkloadKind(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_FALSE(ParseWorkloadKind("no-such-workload").ok());
}

TEST(WorkloadPlanTest, SameSeedIsByteIdenticalDifferentSeedIsNot) {
  for (WorkloadKind kind : AllWorkloadKinds()) {
    WorkloadOptions options;
    options.kind = kind;
    options.rounds = 4;
    const WorkloadPlan a = BuildWorkloadPlan(options);
    const WorkloadPlan b = BuildWorkloadPlan(options);
    EXPECT_EQ(SerializeScripts(a), SerializeScripts(b))
        << WorkloadKindName(kind);
    EXPECT_EQ(FingerprintScripts(a), FingerprintScripts(b));

    options.seed = 43;
    const WorkloadPlan c = BuildWorkloadPlan(options);
    EXPECT_NE(FingerprintScripts(a), FingerprintScripts(c))
        << WorkloadKindName(kind);
  }
}

TEST(WorkloadPlanTest, TenantSpecsRegenerateByteIdentical) {
  WorkloadOptions options;
  options.kind = WorkloadKind::kUnionHeavy;  // unions exercised too
  const WorkloadPlan plan = BuildWorkloadPlan(options);
  const Spec a = BuildTenantSpec(plan, 0);
  const Spec b = BuildTenantSpec(plan, 0);
  EXPECT_EQ(a.view_names, b.view_names);
  ASSERT_EQ(a.source_cfds.size(), b.source_cfds.size());
  EXPECT_GT(a.source_cfds.size(), 0u);
  // V* and U* views both present when the plan carries unions.
  EXPECT_NE(a.views.find("V0"), a.views.end());
  EXPECT_NE(a.views.find("U0"), a.views.end());
  // Different tenants draw from different generator streams.
  const Spec other = BuildTenantSpec(plan, 1);
  EXPECT_NE(SerializeScripts(plan), "");  // plan itself is non-trivial
  EXPECT_EQ(other.view_names.size(), a.view_names.size());
}

TEST(WorkloadPlanTest, PinnedScenariosClampClientsAndSetCaps) {
  WorkloadOptions options;
  options.kind = WorkloadKind::kBurstReject;
  options.tenants = 2;
  options.clients = 8;
  const WorkloadPlan plan = BuildWorkloadPlan(options);
  EXPECT_EQ(plan.scripts.size(), 2u) << "one driver per tenant";
  EXPECT_EQ(plan.max_inflight, options.max_inflight);
  EXPECT_EQ(plan.max_queue, options.max_queue);
  for (size_t c = 0; c < plan.scripts.size(); ++c) {
    for (const WorkloadOp& op : plan.scripts[c]) {
      EXPECT_EQ(op.type, WorkloadOp::Type::kBurst);
      EXPECT_EQ(op.tenant, c) << "bursts stay pinned to their driver";
    }
  }
  // Uncapped kinds leave admission off no matter the knobs.
  options.kind = WorkloadKind::kHitHeavy;
  const WorkloadPlan uncapped = BuildWorkloadPlan(options);
  EXPECT_EQ(uncapped.max_inflight, 0u);
  EXPECT_EQ(uncapped.max_queue, 0u);
}

TEST(WorkloadRunnerTest, PathNamesRoundTrip) {
  for (RunnerPath path : {RunnerPath::kInproc, RunnerPath::kTcp,
                          RunnerPath::kRouted}) {
    auto parsed = ParseRunnerPath(RunnerPathName(path));
    ASSERT_TRUE(parsed.ok()) << RunnerPathName(path);
    EXPECT_EQ(*parsed, path);
  }
  EXPECT_FALSE(ParseRunnerPath("udp").ok());
}

TEST(WorkloadRunnerTest, BurstRejectPatternIsIdenticalOnEveryPath) {
  WorkloadOptions options;
  options.kind = WorkloadKind::kBurstReject;
  options.rounds = 3;
  const WorkloadPlan plan = BuildWorkloadPlan(options);

  RunnerOptions inproc;
  auto a = RunWorkload(plan, inproc);
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_GT(a->rejected, 0u) << "caps tight enough to actually reject";
  EXPECT_GT(a->admitted, 0u);
  EXPECT_EQ(a->errors, 0u);
  EXPECT_EQ(a->admit_pattern.find('E'), std::string::npos)
      << a->admit_pattern;

  for (RunnerPath path : {RunnerPath::kTcp, RunnerPath::kRouted}) {
    RunnerOptions run;
    run.path = path;
    auto b = RunWorkload(plan, run);
    ASSERT_TRUE(b.ok()) << RunnerPathName(path) << ": " << b.status();
    // Same stream (by construction), same decisions, same covers (the
    // promise) — whether the batches cross one socket or a router.
    EXPECT_EQ(a->stream_fingerprint, b->stream_fingerprint);
    EXPECT_EQ(a->admit_pattern, b->admit_pattern) << RunnerPathName(path);
    EXPECT_EQ(a->admitted, b->admitted) << RunnerPathName(path);
    EXPECT_EQ(a->rejected, b->rejected) << RunnerPathName(path);
    EXPECT_EQ(a->cover_fingerprint, b->cover_fingerprint)
        << RunnerPathName(path) << ": served covers must be identical";
    EXPECT_EQ(b->errors, 0u) << RunnerPathName(path);
    // The pattern accounts for every burst slot, and the path-reported
    // totals agree with the letters.
    size_t admits = 0, rejects = 0;
    for (char ch : b->admit_pattern) (ch == 'A' ? admits : rejects)++;
    EXPECT_EQ(admits, b->admitted);
    EXPECT_EQ(rejects, b->rejected);
  }
}

TEST(WorkloadRunnerTest, EveryScenarioServesIdenticalCoversRouted) {
  // Churn-free scenarios are cover-deterministic: the same request
  // stream must produce the same cover bytes whether it is served in
  // process or sharded across the routed tier. (Churn scenarios race
  // Σ generations with serving by design, so their cover sets are
  // legitimately timing-dependent — the migration tests pin those down
  // with the two-legal-generations check instead.)
  const std::string dir = ::testing::TempDir() + "cfdprop_workload_routed";
  ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);
  for (WorkloadKind kind :
       {WorkloadKind::kHitHeavy, WorkloadKind::kUnionHeavy,
        WorkloadKind::kSnapshotRestart}) {
    WorkloadOptions options;
    options.kind = kind;
    options.rounds = 2;
    const WorkloadPlan plan = BuildWorkloadPlan(options);

    WorkloadReport reference;
    for (RunnerPath path : {RunnerPath::kInproc, RunnerPath::kRouted}) {
      RunnerOptions run;
      run.path = path;
      if (plan.needs_snapshots) {
        run.snapshot_dir = dir + "/" + WorkloadKindName(kind) + "-" +
                           RunnerPathName(path);
        ASSERT_TRUE(::mkdir(run.snapshot_dir.c_str(), 0755) == 0 ||
                    errno == EEXIST);
      }
      auto report = RunWorkload(plan, run);
      ASSERT_TRUE(report.ok())
          << WorkloadKindName(kind) << " [" << RunnerPathName(path)
          << "]: " << report.status();
      EXPECT_EQ(report->errors, 0u) << report->ToString();
      EXPECT_GT(report->covers_served, 0u);
      if (path == RunnerPath::kInproc) {
        reference = std::move(report).value();
        continue;
      }
      EXPECT_EQ(reference.covers_served, report->covers_served)
          << WorkloadKindName(kind);
      EXPECT_EQ(reference.cover_fingerprint, report->cover_fingerprint)
          << WorkloadKindName(kind) << ": routed covers must be identical";
      // The routed epilogue live-migrated every tenant once.
      EXPECT_EQ(report->migrations, plan.options.tenants);
    }
  }
}

TEST(WorkloadRunnerTest, SnapshotRestartWarmStartsOnEveryPath) {
  const std::string dir = ::testing::TempDir() + "cfdprop_workload_snap";
  ASSERT_TRUE(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST);

  WorkloadOptions options;
  options.kind = WorkloadKind::kSnapshotRestart;
  options.rounds = 2;
  const WorkloadPlan plan = BuildWorkloadPlan(options);
  ASSERT_TRUE(plan.needs_snapshots);

  // A spilling plan without a snapshot_dir is a typed setup error.
  RunnerOptions bare;
  auto rejected = RunWorkload(plan, bare);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  for (RunnerPath path : {RunnerPath::kInproc, RunnerPath::kTcp,
                          RunnerPath::kRouted}) {
    RunnerOptions run;
    run.path = path;
    run.snapshot_dir = dir + "/" + RunnerPathName(path);
    ASSERT_TRUE(::mkdir(run.snapshot_dir.c_str(), 0755) == 0 ||
                errno == EEXIST);
    auto report = RunWorkload(plan, run);
    ASSERT_TRUE(report.ok()) << RunnerPathName(path) << ": "
                             << report.status();
    EXPECT_EQ(report->reopens, plan.options.tenants);
    EXPECT_GT(report->restored_lines, 0u)
        << RunnerPathName(path) << ": reopen should restore from the spill";
    EXPECT_EQ(report->errors, 0u);
    EXPECT_GT(report->covers_served, 0u);
  }
}

}  // namespace
}  // namespace cfdprop
