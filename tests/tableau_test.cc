#include "src/tableau/tableau.h"

#include <gtest/gtest.h>

namespace cfdprop {
namespace {

class TableauTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.AddRelation("R1", {"A", "B", "C"}).ok());
    ASSERT_TRUE(cat_.AddRelation("R2", {"D", "E"}).ok());
  }
  Catalog cat_;
};

TEST_F(TableauTest, OneRowPerAtomWithFreshCells) {
  SPCViewBuilder b(cat_);
  b.AddAtom(0);
  b.AddAtom(1);
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  SymbolicInstance inst;
  auto t = BuildViewTableau(cat_, *view, inst);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(inst.num_rows(), 2u);
  EXPECT_EQ(inst.row(0).relation, 0u);
  EXPECT_EQ(inst.row(1).relation, 1u);
  EXPECT_EQ(t->ec_cells.size(), 5u);
  EXPECT_EQ(t->summary.size(), 5u);
  // All cells distinct before selections.
  for (size_t i = 0; i < t->ec_cells.size(); ++i) {
    for (size_t j = i + 1; j < t->ec_cells.size(); ++j) {
      EXPECT_FALSE(inst.EqualCells(t->ec_cells[i], t->ec_cells[j]));
    }
  }
}

TEST_F(TableauTest, SelectionsApplied) {
  SPCViewBuilder b(cat_);
  size_t r1 = b.AddAtom(0);
  size_t r2 = b.AddAtom(1);
  ASSERT_TRUE(b.SelectEq(r1, "C", r2, "D").ok());
  ASSERT_TRUE(b.SelectConst(r1, "A", "42").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  SymbolicInstance inst;
  auto t = BuildViewTableau(cat_, *view, inst);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(inst.EqualCells(t->ec_cells[2], t->ec_cells[3]));
  auto c = inst.ConstOf(t->ec_cells[0]);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(cat_.pool().Text(*c), "42");
  EXPECT_FALSE(inst.contradiction());
}

TEST_F(TableauTest, ConflictingConstantsContradict) {
  SPCViewBuilder b(cat_);
  size_t r1 = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(r1, "A", "1").ok());
  ASSERT_TRUE(b.SelectConst(r1, "A", "2").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  SymbolicInstance inst;
  auto t = BuildViewTableau(cat_, *view, inst);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(inst.contradiction());
}

TEST_F(TableauTest, TransitiveConstantThroughEquality) {
  // C = D and C = '5' must force D = '5'.
  SPCViewBuilder b(cat_);
  size_t r1 = b.AddAtom(0);
  size_t r2 = b.AddAtom(1);
  ASSERT_TRUE(b.SelectEq(r1, "C", r2, "D").ok());
  ASSERT_TRUE(b.SelectConst(r1, "C", "5").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  SymbolicInstance inst;
  auto t = BuildViewTableau(cat_, *view, inst);
  ASSERT_TRUE(t.ok());
  auto c = inst.ConstOf(t->ec_cells[3]);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(cat_.pool().Text(*c), "5");
}

TEST_F(TableauTest, SummaryMapsOutputColumns) {
  SPCViewBuilder b(cat_);
  size_t r1 = b.AddAtom(0);
  ASSERT_TRUE(b.Project(r1, "B").ok());
  ASSERT_TRUE(b.ProjectConstant("CC", "44").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  SymbolicInstance inst;
  auto t = BuildViewTableau(cat_, *view, inst);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->summary.size(), 2u);
  EXPECT_EQ(inst.Find(t->summary[0]), inst.Find(t->ec_cells[1]));
  auto c = inst.ConstOf(t->summary[1]);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(cat_.pool().Text(*c), "44");
}

TEST_F(TableauTest, CellsCarryDomains) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"F", Domain::Boolean(cat_.pool())});
  ASSERT_TRUE(cat_.AddRelation("R3", std::move(attrs)).ok());

  SPCViewBuilder b(cat_);
  auto r3 = b.AddAtom("R3");
  ASSERT_TRUE(r3.ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  SymbolicInstance inst;
  auto t = BuildViewTableau(cat_, *view, inst);
  ASSERT_TRUE(t.ok());
  const auto& dom = inst.FiniteDomainOf(t->ec_cells[0]);
  ASSERT_TRUE(dom.has_value());
  EXPECT_EQ(dom->size(), 2u);
}

TEST_F(TableauTest, TwoCopiesShareNothing) {
  SPCViewBuilder b(cat_);
  b.AddAtom(0);
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  SymbolicInstance inst;
  auto t1 = BuildViewTableau(cat_, *view, inst);
  auto t2 = BuildViewTableau(cat_, *view, inst);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(inst.num_rows(), 2u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(inst.EqualCells(t1->ec_cells[i], t2->ec_cells[i]));
  }
}

}  // namespace
}  // namespace cfdprop
