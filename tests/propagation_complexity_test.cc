// Tests exercising the complexity-theoretic content of Section 3: the
// infinite-domain and general settings genuinely differ (Table 1 / 2),
// finite-domain case analysis is what makes SC propagation coNP-hard
// (Theorem 3.2's 3SAT machinery), and the exponential instantiation
// budget is surfaced rather than silently truncated.

#include <gtest/gtest.h>

#include "src/propagation/emptiness.h"
#include "src/propagation/propagation.h"
#include "src/propagation/reductions.h"

namespace cfdprop {
namespace {

class GeneralSettingTest : public ::testing::Test {
 protected:
  PatternValue Wc() { return PatternValue::Wildcard(); }
  PatternValue Const(const char* s) {
    return PatternValue::Constant(cat_.pool().Intern(s));
  }
  Catalog cat_;
};

TEST_F(GeneralSettingTest, FiniteDomainFlipsThePropagationAnswer) {
  // R(F, B) with dom(F) = {0, 1}; sigma: ([F=0] -> B=b), ([F=1] -> B=b).
  // On the view pi_B(R), "B is constantly b" is propagated in the
  // general setting (F is 0 or 1 on every tuple) but NOT under the
  // infinite-domain reading. This is the phenomenon behind Theorem 3.2.
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"F", Domain::Boolean(cat_.pool())});
  attrs.push_back(Attribute{"B", Domain::Infinite()});
  ASSERT_TRUE(cat_.AddRelation("R", std::move(attrs)).ok());

  std::vector<CFD> sigma = {
      CFD::Make(0, {0}, {Const("0")}, 1, Const("b")).value(),
      CFD::Make(0, {0}, {Const("1")}, 1, Const("b")).value()};

  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.Project(a, "B").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  CFD phi = CFD::ConstantColumn(kViewSchemaId, 0, cat_.pool().Intern("b"));

  PropagationOptions infinite;
  auto r_inf = IsPropagated(cat_, *view, sigma, phi, infinite);
  ASSERT_TRUE(r_inf.ok());
  EXPECT_FALSE(*r_inf);

  PropagationOptions general;
  general.general_setting = true;
  auto r_gen = IsPropagated(cat_, *view, sigma, phi, general);
  ASSERT_TRUE(r_gen.ok());
  EXPECT_TRUE(*r_gen);
}

TEST_F(GeneralSettingTest, AutoOptionsDetectsFiniteDomains) {
  ASSERT_TRUE(cat_.AddRelation("Inf", {"A", "B"}).ok());
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"F", Domain::Boolean(cat_.pool())});
  ASSERT_TRUE(cat_.AddRelation("Fin", std::move(attrs)).ok());

  SPCViewBuilder b1(cat_);
  b1.AddAtom(0);
  auto v1 = b1.Build();
  ASSERT_TRUE(v1.ok());
  EXPECT_FALSE(AutoOptions(cat_, SPCUView(*v1)).general_setting);

  SPCViewBuilder b2(cat_);
  b2.AddAtom(1);
  auto v2 = b2.Build();
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(AutoOptions(cat_, SPCUView(*v2)).general_setting);
}

TEST_F(GeneralSettingTest, TwoVariableCaseAnalysis) {
  // dom(F) = dom(G) = {0,1}. sigma covers only three of the four
  // combinations with B=b: propagation fails because (F,G) = (1,1)
  // escapes; adding the fourth branch closes the analysis.
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"F", Domain::Boolean(cat_.pool())});
  attrs.push_back(Attribute{"G", Domain::Boolean(cat_.pool())});
  attrs.push_back(Attribute{"B", Domain::Infinite()});
  ASSERT_TRUE(cat_.AddRelation("R", std::move(attrs)).ok());

  auto branch = [&](const char* f, const char* g) {
    return CFD::Make(0, {0, 1}, {Const(f), Const(g)}, 2, Const("b")).value();
  };
  std::vector<CFD> sigma = {branch("0", "0"), branch("0", "1"),
                            branch("1", "0")};

  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.Project(a, "B").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  CFD phi = CFD::ConstantColumn(kViewSchemaId, 0, cat_.pool().Intern("b"));
  PropagationOptions general;
  general.general_setting = true;

  auto r = IsPropagated(cat_, *view, sigma, phi, general);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);

  sigma.push_back(branch("1", "1"));
  r = IsPropagated(cat_, *view, sigma, phi, general);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST_F(GeneralSettingTest, SCViewWithFiniteJoinAttribute) {
  // Join on a boolean attribute: in the general setting the join column
  // takes one of two values, enabling case analysis across atoms.
  std::vector<Attribute> r_attrs;
  r_attrs.push_back(Attribute{"F", Domain::Boolean(cat_.pool())});
  r_attrs.push_back(Attribute{"B", Domain::Infinite()});
  ASSERT_TRUE(cat_.AddRelation("R", std::move(r_attrs)).ok());
  std::vector<Attribute> s_attrs;
  s_attrs.push_back(Attribute{"G", Domain::Boolean(cat_.pool())});
  s_attrs.push_back(Attribute{"C", Domain::Infinite()});
  ASSERT_TRUE(cat_.AddRelation("S", std::move(s_attrs)).ok());

  // sigma: ([F=0] -> B=b), ([F=1] -> B=b) on R: B is b on every R tuple
  // in the general setting.
  std::vector<CFD> sigma = {
      CFD::Make(0, {0}, {Const("0")}, 1, Const("b")).value(),
      CFD::Make(0, {0}, {Const("1")}, 1, Const("b")).value()};

  SPCViewBuilder b(cat_);
  size_t r = b.AddAtom(0);
  size_t s = b.AddAtom(1);
  ASSERT_TRUE(b.SelectEq(r, "F", s, "G").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());
  // Output: F B G C (0..3).

  CFD phi = CFD::ConstantColumn(kViewSchemaId, 1, cat_.pool().Intern("b"));
  PropagationOptions general;
  general.general_setting = true;
  auto r_gen = IsPropagated(cat_, *view, sigma, phi, general);
  ASSERT_TRUE(r_gen.ok());
  EXPECT_TRUE(*r_gen);

  PropagationOptions infinite;
  auto r_inf = IsPropagated(cat_, *view, sigma, phi, infinite);
  ASSERT_TRUE(r_inf.ok());
  EXPECT_FALSE(*r_inf);
}

TEST_F(GeneralSettingTest, InstantiationBudgetErrorsOut) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < 16; ++i) {
    attrs.push_back(
        Attribute{"F" + std::to_string(i), Domain::Boolean(cat_.pool())});
  }
  ASSERT_TRUE(cat_.AddRelation("Wide", std::move(attrs)).ok());

  SPCViewBuilder b(cat_);
  b.AddAtom(0);
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  CFD phi = CFD::FD(kViewSchemaId, {0}, 1).value();
  PropagationOptions tight;
  tight.general_setting = true;
  tight.instantiation.max_instantiations = 100;  // far below 2^16 x 2
  auto r = IsPropagated(cat_, *view, {}, phi, tight);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// --- the Theorem 3.2 reduction, executable ----------------------------

class Theorem32Test : public ::testing::Test {
 protected:
  using L = ThreeSat::Literal;

  /// Runs the reduction and checks it decides satisfiability.
  void ExpectAgreesWithBruteForce(const ThreeSat& formula) {
    auto inst = BuildTheorem32Reduction(formula);
    ASSERT_TRUE(inst.ok()) << inst.status();
    PropagationOptions options;
    options.general_setting = true;
    options.instantiation.max_instantiations = 1u << 24;
    auto propagated = IsPropagated(inst->catalog, inst->view, inst->sigma,
                                   inst->psi, options);
    ASSERT_TRUE(propagated.ok()) << propagated.status();
    // phi satisfiable iff Sigma does NOT propagate psi.
    EXPECT_EQ(BruteForceSatisfiable(formula), !*propagated);
  }
};

TEST_F(Theorem32Test, SatisfiableSingleVariable) {
  ExpectAgreesWithBruteForce(
      ThreeSat{1, {{L{1, false}, L{1, false}, L{1, false}}}});
}

TEST_F(Theorem32Test, UnsatisfiableSingleVariable) {
  // (x1) and (!x1).
  ExpectAgreesWithBruteForce(
      ThreeSat{1,
               {{L{1, false}, L{1, false}, L{1, false}},
                {L{1, true}, L{1, true}, L{1, true}}}});
}

TEST_F(Theorem32Test, SatisfiableTwoVariables) {
  // (x1 v x2) and (!x1 v x2): satisfied by x2 = true.
  ExpectAgreesWithBruteForce(
      ThreeSat{2,
               {{L{1, false}, L{2, false}, L{2, false}},
                {L{1, true}, L{2, false}, L{2, false}}}});
}

TEST_F(Theorem32Test, UnsatisfiableTwoVariables) {
  // (x1) and (x2) and (!x1 v !x2).
  ExpectAgreesWithBruteForce(
      ThreeSat{2,
               {{L{1, false}, L{1, false}, L{1, false}},
                {L{2, false}, L{2, false}, L{2, false}},
                {L{1, true}, L{2, true}, L{1, true}}}});
}

TEST_F(Theorem32Test, MixedPolarityClause) {
  // (x1 v !x2 v x1) and (x2 v x2 v x2): needs x2 = 1, then x1 = 1.
  ExpectAgreesWithBruteForce(
      ThreeSat{2,
               {{L{1, false}, L{2, true}, L{1, false}},
                {L{2, false}, L{2, false}, L{2, false}}}});
}

TEST_F(Theorem32Test, RejectsMalformedFormulas) {
  auto e1 = BuildTheorem32Reduction(ThreeSat{0, {}});
  EXPECT_FALSE(e1.ok());
  auto e2 = BuildTheorem32Reduction(
      ThreeSat{1, {{L{2, false}, L{1, false}, L{1, false}}}});
  EXPECT_FALSE(e2.ok());  // variable out of range
}

TEST_F(GeneralSettingTest, SingletonDomainForcesEquality) {
  // dom(K) = {k}: every pair of view tuples agrees on K, so K behaves
  // like a constant column in the general setting.
  Value k = cat_.pool().Intern("k");
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"K", Domain::Finite("unit", {k})});
  attrs.push_back(Attribute{"B", Domain::Infinite()});
  ASSERT_TRUE(cat_.AddRelation("R", std::move(attrs)).ok());

  SPCViewBuilder b(cat_);
  b.AddAtom(0);
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  CFD phi = CFD::ConstantColumn(kViewSchemaId, 0, k);
  PropagationOptions general;
  general.general_setting = true;
  auto r = IsPropagated(cat_, *view, {}, phi, general);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);

  PropagationOptions infinite;
  auto r_inf = IsPropagated(cat_, *view, {}, phi, infinite);
  ASSERT_TRUE(r_inf.ok());
  EXPECT_FALSE(*r_inf);
}

}  // namespace
}  // namespace cfdprop
