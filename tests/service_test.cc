// CatalogService unit tests: tenant registry lifecycle, global-budget
// splitting, async submission (futures + callbacks), and the snapshot
// policy (warm starts, background spills, drop/shutdown flushes). The
// cross-checking of service results against direct per-engine serving
// lives in service_differential_test.cc.

#include "src/service/catalog_service.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "src/cfd/cfd.h"

namespace cfdprop {
namespace {

Catalog MakeCatalog() {
  Catalog cat;
  EXPECT_TRUE(cat.AddRelation("R", {"A", "B", "C", "D"}).ok());
  return cat;
}

std::vector<CFD> MakeSigma() {
  return {CFD::FD(0, {0}, 1).value(),   // R: A -> B
          CFD::FD(0, {1}, 2).value()};  // R: B -> C
}

/// pi(A, C) from R, optionally selecting D = d_const.
SPCView MakeView(Catalog& cat, const char* d_const = nullptr) {
  SPCViewBuilder b(cat);
  size_t r = b.AddAtom(0);
  if (d_const != nullptr) EXPECT_TRUE(b.SelectConst(r, "D", d_const).ok());
  EXPECT_TRUE(b.Project(r, "A").ok());
  EXPECT_TRUE(b.Project(r, "C").ok());
  auto v = b.Build();
  EXPECT_TRUE(v.ok());
  return *v;
}

/// A fresh per-test snapshot directory.
std::string MakeSnapshotDir(const char* name) {
  std::string dir = ::testing::TempDir() + "cfdprop_service_" + name + "_" +
                    std::to_string(::getpid());
  std::remove(dir.c_str());
  mkdir(dir.c_str(), 0755);
  return dir;
}

TEST(ServiceTest, OpenResolveDropLifecycle) {
  CatalogService service{ServiceOptions{}};
  auto t1 = service.OpenCatalog("acme", MakeCatalog(), {MakeSigma()});
  ASSERT_TRUE(t1.ok()) << t1.status();
  auto t2 = service.OpenCatalog("globex", MakeCatalog(), {MakeSigma()});
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(service.num_tenants(), 2u);
  EXPECT_EQ(service.TenantNames(),
            (std::vector<std::string>{"acme", "globex"}));

  auto resolved = service.ResolveCatalog("acme");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->get(), t1->get());
  EXPECT_FALSE(service.ResolveCatalog("nope").ok());

  // Duplicate and malformed names are rejected — including duplicates
  // that only differ by case, which would share one snapshot file on a
  // case-insensitive filesystem.
  EXPECT_FALSE(service.OpenCatalog("acme", MakeCatalog()).ok());
  EXPECT_FALSE(service.OpenCatalog("ACME", MakeCatalog()).ok());
  EXPECT_FALSE(service.OpenCatalog("", MakeCatalog()).ok());
  EXPECT_FALSE(service.OpenCatalog(std::string(101, 'x'), MakeCatalog()).ok())
      << "over-long names would exceed NAME_MAX as snapshot files";
  EXPECT_FALSE(service.OpenCatalog("a/b", MakeCatalog()).ok());
  EXPECT_FALSE(service.OpenCatalog(".hidden", MakeCatalog()).ok());
  EXPECT_FALSE(service.OpenCatalog("..", MakeCatalog()).ok());

  EXPECT_TRUE(service.DropCatalog("acme").ok());
  EXPECT_FALSE(service.ResolveCatalog("acme").ok());
  EXPECT_FALSE(service.DropCatalog("acme").ok()) << "double drop";
  EXPECT_EQ(service.num_tenants(), 1u);

  // The held handle (and its engine) outlives the drop.
  SPCView view = MakeView((*t1)->engine().catalog());
  EXPECT_TRUE((*t1)->engine().Propagate(view, 0).ok());
}

TEST(ServiceTest, BudgetSplitsAndRebalances) {
  ServiceOptions options;
  options.global_cache_budget = 120;
  options.engine.cache_shards = 1;  // exact budgets: no shard rounding
  CatalogService service(options);

  auto t1 = service.OpenCatalog("a", MakeCatalog(), {MakeSigma()});
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ((*t1)->cache_budget(), 120u);
  EXPECT_EQ((*t1)->engine().cache_capacity(), 120u);

  auto t2 = service.OpenCatalog("b", MakeCatalog(), {MakeSigma()});
  auto t3 = service.OpenCatalog("c", MakeCatalog(), {MakeSigma()});
  ASSERT_TRUE(t2.ok() && t3.ok());
  EXPECT_EQ((*t1)->cache_budget(), 40u);
  EXPECT_EQ((*t2)->cache_budget(), 40u);
  EXPECT_EQ((*t3)->cache_budget(), 40u);
  EXPECT_EQ((*t1)->engine().cache_capacity(), 40u);

  ASSERT_TRUE(service.DropCatalog("b").ok());
  EXPECT_EQ((*t1)->cache_budget(), 60u);
  EXPECT_EQ((*t3)->cache_budget(), 60u);

  ServiceStatsSnapshot stats = service.Stats();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].name, "a");
  EXPECT_EQ(stats.tenants[0].cache_budget, 60u);
  EXPECT_EQ(stats.global_cache_budget, 120u);
}

TEST(ServiceTest, SubmitBatchFutureResolvesInRequestOrder) {
  ServiceOptions options;
  // Inline per-engine serving: within one batch the repeat of request 0
  // is then guaranteed to run after it, making the hit deterministic.
  options.engine.num_threads = 1;
  CatalogService service(options);
  auto tenant = service.OpenCatalog("t", MakeCatalog(), {MakeSigma()});
  ASSERT_TRUE(tenant.ok());
  Catalog& cat = (*tenant)->engine().catalog();
  std::vector<Engine::Request> requests;
  for (const char* d : {"1", "2", "3", "1"}) {
    requests.push_back({MakeView(cat, d), 0});
  }

  auto submitted = service.SubmitBatch("t", requests);
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  BatchReply reply = submitted->get();
  EXPECT_EQ(reply.tenant, "t");
  EXPECT_EQ(reply.sequence, 0u);
  ASSERT_EQ(reply.results.size(), 4u);
  for (const auto& r : reply.results) ASSERT_TRUE(r.ok()) << r.status();
  // requests[3] repeats requests[0]: same fingerprint, a cache hit.
  EXPECT_EQ(reply.results[0]->fingerprint, reply.results[3]->fingerprint);
  EXPECT_NE(reply.results[0]->fingerprint, reply.results[1]->fingerprint);
  EXPECT_TRUE(reply.results[3]->cache_hit);

  auto again = service.SubmitBatch("t", std::move(requests));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get().sequence, 1u);

  EXPECT_FALSE(service.SubmitBatch("unknown", {}).ok());
}

TEST(ServiceTest, SubmitBatchCallbackOverload) {
  CatalogService service{ServiceOptions{}};
  auto tenant = service.OpenCatalog("t", MakeCatalog(), {MakeSigma()});
  ASSERT_TRUE(tenant.ok());
  std::vector<Engine::Request> requests{
      {MakeView((*tenant)->engine().catalog()), 0}};

  std::promise<BatchReply> delivered;
  ASSERT_TRUE(service
                  .SubmitBatch("t", std::move(requests),
                               [&](BatchReply reply) {
                                 delivered.set_value(std::move(reply));
                               })
                  .ok());
  BatchReply reply = delivered.get_future().get();
  EXPECT_EQ(reply.tenant, "t");
  ASSERT_EQ(reply.results.size(), 1u);
  EXPECT_TRUE(reply.results[0].ok());

  EXPECT_FALSE(service.SubmitBatch("t", {}, nullptr).ok());
}

TEST(ServiceTest, OverlappingBatchesAllResolve) {
  ServiceOptions options;
  options.dispatcher_threads = 4;
  CatalogService service(options);
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(service.OpenCatalog(name, MakeCatalog(), {MakeSigma()}).ok());
  }
  std::vector<std::future<BatchReply>> futures;
  for (int round = 0; round < 5; ++round) {
    for (const char* name : {"a", "b", "c"}) {
      auto tenant = service.ResolveCatalog(name);
      ASSERT_TRUE(tenant.ok());
      std::vector<Engine::Request> requests{
          {MakeView((*tenant)->engine().catalog(), "7"), 0}};
      auto submitted = service.SubmitBatch(name, std::move(requests));
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
  }
  for (auto& f : futures) {
    BatchReply reply = f.get();
    ASSERT_EQ(reply.results.size(), 1u);
    EXPECT_TRUE(reply.results[0].ok());
  }
  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.batches_submitted, 15u);
  EXPECT_EQ(stats.batches_completed, 15u);
  // A tenant's 5 identical single-request batches may overlap across
  // dispatchers, so several can miss concurrently — but a batch that
  // starts after any other completed must hit, and every request is
  // accounted for.
  for (const TenantStatsSnapshot& t : stats.tenants) {
    EXPECT_EQ(t.batches_submitted, 5u);
    EXPECT_EQ(t.engine.cache.hits + t.engine.cache.misses, 5u) << t.name;
    EXPECT_GE(t.engine.cache.hits, 1u) << t.name;
    EXPECT_GE(t.engine.cache.misses, 1u) << t.name;
  }
}

TEST(ServiceTest, DropFlushesAndReopenWarmStarts) {
  const std::string dir = MakeSnapshotDir("drop_flush");
  ServiceOptions options;
  options.snapshot_dir = dir;  // policy interval 0: no background thread
  // The background-policy bar must not gate the drop/shutdown flushes:
  // even far below this threshold, a computed cover survives the drop.
  options.policy.dirty_line_threshold = 1000;
  CatalogService service(options);

  auto opened = service.OpenCatalog("t", MakeCatalog(), {MakeSigma()});
  ASSERT_TRUE(opened.ok());
  SPCView view = MakeView((*opened)->engine().catalog(), "9");
  auto cold = (*opened)->engine().Propagate(view, 0);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->cache_hit);
  ASSERT_TRUE(service.DropCatalog("t").ok());

  // Reopen: the drop's flush must warm-start the tenant — the very
  // first request is already a hit, byte-identical to the cold compute.
  auto reopened = service.OpenCatalog("t", MakeCatalog(), {MakeSigma()});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->engine().Stats().cache.restored, 1u);
  SPCView view2 = MakeView((*reopened)->engine().catalog(), "9");
  auto warm = (*reopened)->engine().Propagate(view2, 0);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->cover->cover, cold->cover->cover);
}

TEST(ServiceTest, ShutdownFlushesDirtyTenants) {
  const std::string dir = MakeSnapshotDir("shutdown_flush");
  std::vector<CFD> cold_cover;
  {
    ServiceOptions options;
    options.snapshot_dir = dir;
    CatalogService service(options);
    auto opened = service.OpenCatalog("t", MakeCatalog(), {MakeSigma()});
    ASSERT_TRUE(opened.ok());
    auto cold = (*opened)->engine().Propagate(
        MakeView((*opened)->engine().catalog()), 0);
    ASSERT_TRUE(cold.ok());
    cold_cover = cold->cover->cover;
  }  // destructor flush
  ServiceOptions options;
  options.snapshot_dir = dir;
  CatalogService service(options);
  auto reopened = service.OpenCatalog("t", MakeCatalog(), {MakeSigma()});
  ASSERT_TRUE(reopened.ok());
  auto warm = (*reopened)->engine().Propagate(
      MakeView((*reopened)->engine().catalog()), 0);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->cover->cover, cold_cover);
}

TEST(ServiceTest, BackgroundPolicySpillsDirtyTenant) {
  const std::string dir = MakeSnapshotDir("policy");
  ServiceOptions options;
  options.snapshot_dir = dir;
  options.policy.interval = std::chrono::milliseconds(5);
  options.policy.dirty_line_threshold = 1;
  CatalogService service(options);
  auto opened = service.OpenCatalog("t", MakeCatalog(), {MakeSigma()});
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE((*opened)
                  ->engine()
                  .Propagate(MakeView((*opened)->engine().catalog()), 0)
                  .ok());

  // The cache changed, so within a few intervals the policy thread must
  // spill — and once clean, it must not keep spilling.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  uint64_t policy_spills = 0;
  while (policy_spills == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    policy_spills = service.Stats().tenants.at(0).policy_spills;
    if (policy_spills == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_GE(policy_spills, 1u);
  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.tenants.at(0).dirty_lines, 0u);
  EXPECT_EQ(stats.tenants.at(0).last_spill_lines, 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_EQ(service.Stats().tenants.at(0).policy_spills, policy_spills)
      << "a clean tenant must not be re-spilled";
}

TEST(ServiceTest, SpillTenantRequiresSnapshotDir) {
  CatalogService service{ServiceOptions{}};
  ASSERT_TRUE(service.OpenCatalog("t", MakeCatalog(), {MakeSigma()}).ok());
  EXPECT_FALSE(service.SpillTenant("t").ok());
}

TEST(ServiceTest, AdmissionRejectsDeterministicallyOverTheCap) {
  ServiceOptions options;
  options.dispatcher_threads = 1;
  options.engine.num_threads = 1;
  options.admission.max_inflight_batches = 1;
  options.admission.max_queued_batches = 2;
  CatalogService service(options);
  auto tenant = service.OpenCatalog("t", MakeCatalog(), {MakeSigma()});
  ASSERT_TRUE(tenant.ok());
  std::vector<Engine::Request> round = {
      {MakeView((*tenant)->engine().catalog()), 0}};

  // Occupy the only dispatcher: the callback holds the running slot (a
  // batch is in flight until its reply is delivered) until released, so
  // every decision below is a pure function of the caps.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::promise<void> entered;
  ASSERT_TRUE(service
                  .SubmitBatch("t", round,
                               [&, released](BatchReply) {
                                 entered.set_value();
                                 released.wait();
                               })
                  .ok());
  entered.get_future().wait();

  // Running 1 + queued 0..1 stays under 1 + 2; the third queued submit
  // crosses the bound and must be the typed, deterministic rejection.
  auto q1 = service.SubmitBatch("t", round);
  auto q2 = service.SubmitBatch("t", round);
  auto q3 = service.SubmitBatch("t", round);
  EXPECT_TRUE(q1.ok());
  EXPECT_TRUE(q2.ok());
  ASSERT_FALSE(q3.ok());
  EXPECT_EQ(q3.status().code(), StatusCode::kResourceExhausted);

  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.tenants.at(0).admitted, 3u);
  EXPECT_EQ(stats.tenants.at(0).admission_rejected, 1u);
  EXPECT_EQ(stats.tenants.at(0).running, 1u);
  EXPECT_EQ(stats.tenants.at(0).queued, 2u);
  EXPECT_EQ(stats.batches_rejected, 1u);

  release.set_value();
  EXPECT_EQ(q1->get().results.size(), 1u);
  EXPECT_EQ(q2->get().results.size(), 1u);
}

TEST(ServiceTest, BurstAdmissionIsAtomicAndDispatchIsRoundRobin) {
  ServiceOptions options;
  options.dispatcher_threads = 1;
  options.engine.num_threads = 1;
  options.admission.max_inflight_batches = 1;
  options.admission.max_queued_batches = 1;
  CatalogService service(options);
  auto ta = service.OpenCatalog("a", MakeCatalog(), {MakeSigma()});
  auto tb = service.OpenCatalog("b", MakeCatalog(), {MakeSigma()});
  ASSERT_TRUE(ta.ok() && tb.ok());
  std::vector<Engine::Request> round_a = {
      {MakeView((*ta)->engine().catalog()), 0}};
  std::vector<Engine::Request> round_b = {
      {MakeView((*tb)->engine().catalog()), 0}};

  // Park the dispatcher on tenant a, then interleave queued work: the
  // burst below decides all four admissions under one lock, so exactly
  // cap-many (1 running + 1 queued, minus the one already running) are
  // admitted no matter how fast batches would complete.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::promise<void> entered;
  std::mutex order_mu;
  std::vector<std::string> completion_order;
  ASSERT_TRUE(service
                  .SubmitBatch("a", round_a,
                               [&, released](BatchReply) {
                                 entered.set_value();
                                 released.wait();
                               })
                  .ok());
  entered.get_future().wait();

  auto burst = service.SubmitBatches(
      "a", {round_a, round_a, round_a, round_a});
  ASSERT_EQ(burst.size(), 4u);
  EXPECT_TRUE(burst[0].ok()) << "fills the queued slot";
  EXPECT_FALSE(burst[1].ok());
  EXPECT_FALSE(burst[2].ok());
  EXPECT_FALSE(burst[3].ok());
  EXPECT_EQ(burst[1].status().code(), StatusCode::kResourceExhausted);

  // Tenant b is idle, so its submissions are admitted regardless of a's
  // saturation — and the single dispatcher alternates tenants (round
  // robin from the cursor, which rests on "a") once released.
  auto log = [&](const char* name) {
    return [&, name](BatchReply) {
      std::lock_guard<std::mutex> lock(order_mu);
      completion_order.emplace_back(name);
    };
  };
  ASSERT_TRUE(service.SubmitBatch("b", round_b, log("b1")).ok());
  ASSERT_TRUE(service.SubmitBatch("b", round_b, log("b2")).ok());

  release.set_value();
  // Drain: both tenants' queues empty once every callback ran.
  for (;;) {
    ServiceStatsSnapshot stats = service.Stats();
    uint64_t left = 0;
    for (const auto& t : stats.tenants) left += t.queued + t.running;
    if (left == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    std::lock_guard<std::mutex> lock(order_mu);
    // Cursor sat on "a" when the blocker finished: b1 first, then a's
    // queued burst survivor, then b2.
    EXPECT_EQ(completion_order,
              (std::vector<std::string>{"b1", "b2"}));
  }
  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.tenants.at(0).admitted, 2u);            // blocker + burst[0]
  EXPECT_EQ(stats.tenants.at(0).admission_rejected, 3u);
  EXPECT_EQ(stats.tenants.at(1).admitted, 2u);
  EXPECT_EQ(stats.tenants.at(1).admission_rejected, 0u);
}

}  // namespace
}  // namespace cfdprop
