#include "src/chase/chase.h"

#include <gtest/gtest.h>

namespace cfdprop {
namespace {

class ChaseTest : public ::testing::Test {
 protected:
  // Two rows over an abstract 3-attribute relation (id 0).
  void SetUp() override {
    for (auto& row : rows_) {
      row.clear();
      for (int i = 0; i < 3; ++i) row.push_back(inst_.NewCell());
      inst_.AddRow(0, row);
    }
    a_ = pool_.Intern("a");
    b_ = pool_.Intern("b");
  }

  CFD FD01() {  // A -> B
    return CFD::FD(0, {0}, 1).value();
  }
  CFD FD12() {  // B -> C
    return CFD::FD(0, {1}, 2).value();
  }

  ValuePool pool_;
  SymbolicInstance inst_;
  std::vector<CellId> rows_[2];
  Value a_, b_;
};

TEST_F(ChaseTest, FDPairRuleMergesRhs) {
  ASSERT_TRUE(inst_.Union(rows_[0][0], rows_[1][0]));  // agree on A
  auto outcome = Chase(inst_, {FD01()});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, ChaseOutcome::kFixpoint);
  EXPECT_TRUE(inst_.EqualCells(rows_[0][1], rows_[1][1]));
  EXPECT_FALSE(inst_.EqualCells(rows_[0][2], rows_[1][2]));
}

TEST_F(ChaseTest, TransitivityThroughTwoFDs) {
  ASSERT_TRUE(inst_.Union(rows_[0][0], rows_[1][0]));
  auto outcome = Chase(inst_, {FD01(), FD12()});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, ChaseOutcome::kFixpoint);
  EXPECT_TRUE(inst_.EqualCells(rows_[0][2], rows_[1][2]));
}

TEST_F(ChaseTest, NoAgreementNoFiring) {
  auto outcome = Chase(inst_, {FD01()});
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(inst_.EqualCells(rows_[0][1], rows_[1][1]));
}

TEST_F(ChaseTest, ConstantPatternFiresOnlyOnBoundCells) {
  // ([A=a] -> B=b): variables do not match 'a' in the infinite setting.
  auto cfd = CFD::Make(0, {0}, {PatternValue::Constant(a_)}, 1,
                       PatternValue::Constant(b_));
  ASSERT_TRUE(cfd.ok());
  auto outcome = Chase(inst_, {*cfd});
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(inst_.ConstOf(rows_[0][1]).has_value());

  // Now bind A of row 0: the single-tuple rule binds B to 'b'.
  ASSERT_TRUE(inst_.BindConst(rows_[0][0], a_));
  outcome = Chase(inst_, {*cfd});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(inst_.ConstOf(rows_[0][1]), std::optional<Value>(b_));
  EXPECT_FALSE(inst_.ConstOf(rows_[1][1]).has_value());
}

TEST_F(ChaseTest, ContradictionWhenConstantsClash) {
  // Row constants already disagree on B while a CFD forces agreement.
  ASSERT_TRUE(inst_.Union(rows_[0][0], rows_[1][0]));
  ASSERT_TRUE(inst_.BindConst(rows_[0][1], a_));
  ASSERT_TRUE(inst_.BindConst(rows_[1][1], b_));
  auto outcome = Chase(inst_, {FD01()});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, ChaseOutcome::kContradiction);
}

TEST_F(ChaseTest, EqualityCFDUnifiesColumnsPerRow) {
  CFD eq = CFD::Equality(0, 0, 2);
  auto outcome = Chase(inst_, {eq});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(inst_.EqualCells(rows_[0][0], rows_[0][2]));
  EXPECT_TRUE(inst_.EqualCells(rows_[1][0], rows_[1][2]));
  EXPECT_FALSE(inst_.EqualCells(rows_[0][0], rows_[1][0]));
}

TEST_F(ChaseTest, EmptyLhsConstantCFDBindsEveryRow) {
  CFD k;
  k.relation = 0;
  k.rhs = 1;
  k.rhs_pat = PatternValue::Constant(a_);
  auto outcome = Chase(inst_, {k});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(inst_.ConstOf(rows_[0][1]), std::optional<Value>(a_));
  EXPECT_EQ(inst_.ConstOf(rows_[1][1]), std::optional<Value>(a_));
}

TEST_F(ChaseTest, RelationTagsAreRespected) {
  // A CFD on relation 1 must not touch rows of relation 0.
  auto cfd = CFD::FD(1, {0}, 1);
  ASSERT_TRUE(cfd.ok());
  ASSERT_TRUE(inst_.Union(rows_[0][0], rows_[1][0]));
  auto outcome = Chase(inst_, {*cfd});
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(inst_.EqualCells(rows_[0][1], rows_[1][1]));
}

TEST_F(ChaseTest, EmptyLhsPairRuleUnifiesAllRows) {
  // (() -> B) with a wildcard RHS: all rows must agree on B.
  CFD k;
  k.relation = 0;
  k.rhs = 1;
  k.rhs_pat = PatternValue::Wildcard();
  auto outcome = Chase(inst_, {k});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(inst_.EqualCells(rows_[0][1], rows_[1][1]));
  EXPECT_FALSE(inst_.EqualCells(rows_[0][0], rows_[1][0]));
}

TEST_F(ChaseTest, ForbiddenPatternCFDContradictsOnMatch) {
  // [A=a] -> A=b forbids tuples with A=a.
  auto forbidden = CFD::Make(0, {0}, {PatternValue::Constant(a_)}, 0,
                             PatternValue::Constant(b_));
  ASSERT_TRUE(forbidden.ok());
  ASSERT_TRUE(forbidden->IsForbiddenPattern());

  // Without a binding nothing fires.
  auto outcome = Chase(inst_, {*forbidden});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, ChaseOutcome::kFixpoint);

  // Binding row 0's A to 'a' triggers the contradiction.
  ASSERT_TRUE(inst_.BindConst(rows_[0][0], a_));
  outcome = Chase(inst_, {*forbidden});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, ChaseOutcome::kContradiction);
}

TEST_F(ChaseTest, ChaseIsIdempotent) {
  ASSERT_TRUE(inst_.Union(rows_[0][0], rows_[1][0]));
  auto o1 = Chase(inst_, {FD01(), FD12()});
  ASSERT_TRUE(o1.ok());
  uint64_t v = inst_.version();
  auto o2 = Chase(inst_, {FD01(), FD12()});
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(inst_.version(), v);  // fixpoint reached: no further change
}

TEST(ChaseInstantiationTest, EnumeratesAllAssignments) {
  ValuePool pool;
  Value a = pool.Intern("a"), b = pool.Intern("b"), c = pool.Intern("c");
  Domain d2 = Domain::Finite("d2", {a, b});
  Domain d3 = Domain::Finite("d3", {a, b, c});

  SymbolicInstance base;
  base.NewCell(&d2);
  base.NewCell(&d3);
  base.NewCell();  // infinite; not enumerated

  int count = 0;
  auto r = ForEachFiniteInstantiation(
      base,
      [&](SymbolicInstance& fork) {
        ++count;
        EXPECT_TRUE(fork.ConstOf(0).has_value());
        EXPECT_TRUE(fork.ConstOf(1).has_value());
        EXPECT_FALSE(fork.ConstOf(2).has_value());
        return true;
      });
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);  // not stopped early
  EXPECT_EQ(count, 6);
}

TEST(ChaseInstantiationTest, StopsEarlyWhenCallbackReturnsFalse) {
  ValuePool pool;
  Value a = pool.Intern("a"), b = pool.Intern("b");
  Domain d = Domain::Finite("d", {a, b});
  SymbolicInstance base;
  base.NewCell(&d);
  base.NewCell(&d);

  int count = 0;
  auto r = ForEachFiniteInstantiation(base, [&](SymbolicInstance&) {
    ++count;
    return count < 2;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  EXPECT_EQ(count, 2);
}

TEST(ChaseInstantiationTest, BudgetIsEnforced) {
  ValuePool pool;
  std::vector<Value> vals;
  for (int i = 0; i < 8; ++i) vals.push_back(pool.InternInt(i));
  Domain d = Domain::Finite("d", vals);
  SymbolicInstance base;
  for (int i = 0; i < 10; ++i) base.NewCell(&d);  // 8^10 assignments

  InstantiationOptions options;
  options.max_instantiations = 1000;
  auto r = ForEachFiniteInstantiation(
      base, [](SymbolicInstance&) { return true; }, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(ChaseInstantiationTest, NoFiniteCellsRunsOnce) {
  SymbolicInstance base;
  base.NewCell();
  int count = 0;
  auto r = ForEachFiniteInstantiation(base, [&](SymbolicInstance&) {
    ++count;
    return true;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace cfdprop
