// Generator-driven equivalence suite for the hash-grouped FindViolations
// and the early-exit Satisfies (src/data/validate.cc): both must agree,
// on randomized workloads, with a brute-force O(n^2) reading of
// Definition 2.1 — the optimization is a regrouping, never a semantics
// change.

#include "src/data/validate.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/gen/generators.h"

namespace cfdprop {
namespace {

/// Brute force over all ordered pairs, straight off Definition 2.1 —
/// deliberately no grouping, no early exit, nothing shared with the
/// implementation under test.
std::vector<Violation> ReferenceViolations(const std::vector<Tuple>& rows,
                                           const CFD& cfd) {
  std::vector<Violation> out;
  if (cfd.is_special_x()) {
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i][cfd.lhs[0]] != rows[i][cfd.rhs]) out.emplace_back(i, i);
    }
    return out;
  }
  auto matches = [&](const Tuple& t) {
    for (size_t k = 0; k < cfd.lhs.size(); ++k) {
      if (!cfd.lhs_pats[k].MatchesValue(t[cfd.lhs[k]])) return false;
    }
    return true;
  };
  auto same_key = [&](const Tuple& a, const Tuple& b) {
    for (AttrIndex attr : cfd.lhs) {
      if (a[attr] != b[attr]) return false;
    }
    return true;
  };
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!matches(rows[i])) continue;
    if (cfd.rhs_pat.is_constant() &&
        rows[i][cfd.rhs] != cfd.rhs_pat.value()) {
      out.emplace_back(i, i);
    }
    for (size_t j = i + 1; j < rows.size(); ++j) {
      if (!matches(rows[j]) || !same_key(rows[i], rows[j])) continue;
      if (rows[i][cfd.rhs] != rows[j][cfd.rhs]) out.emplace_back(i, j);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Random rows over a small value alphabet, so LHS groups collide and
/// violations actually occur (a wide alphabet would make every group a
/// singleton and the pair path dead code).
std::vector<Tuple> RandomRows(Catalog& catalog, RelationId rel, size_t count,
                              uint32_t alphabet, Rng& rng) {
  const size_t arity = catalog.relation(rel).arity();
  std::vector<Tuple> rows;
  rows.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Tuple t(arity);
    for (size_t a = 0; a < arity; ++a) {
      t[a] = catalog.pool().InternInt(
          static_cast<int64_t>(rng.Uniform(1, alphabet)));
    }
    rows.push_back(std::move(t));
  }
  return rows;
}

TEST(ValidateEquivalenceTest, RandomizedAgainstBruteForce) {
  size_t total_cfds = 0, violated_cfds = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SchemaGenOptions schema_options;
    schema_options.num_relations = 3;
    schema_options.min_arity = 4;
    schema_options.max_arity = 6;
    Catalog catalog = GenerateSchema(schema_options, seed);

    CFDGenOptions cfd_options;
    cfd_options.count = 12;
    cfd_options.min_lhs = 1;
    cfd_options.max_lhs = 3;
    cfd_options.var_pct = 60;
    // The same alphabet the rows draw from, so pattern constants match.
    cfd_options.const_lo = 1;
    cfd_options.const_hi = 6;
    std::vector<CFD> sigma = GenerateCFDs(catalog, cfd_options, seed * 31);

    Rng rng(seed * 977);
    for (const CFD& cfd : sigma) {
      std::vector<Tuple> rows =
          RandomRows(catalog, cfd.relation, /*count=*/40, /*alphabet=*/6, rng);
      const size_t arity = catalog.relation(cfd.relation).arity();

      auto expected = ReferenceViolations(rows, cfd);
      auto actual = FindViolations(rows, cfd, arity);
      ASSERT_TRUE(actual.ok()) << actual.status();
      EXPECT_EQ(*actual, expected) << "seed " << seed;

      auto satisfied = Satisfies(rows, cfd, arity);
      ASSERT_TRUE(satisfied.ok()) << satisfied.status();
      EXPECT_EQ(*satisfied, expected.empty()) << "seed " << seed;

      ++total_cfds;
      if (!expected.empty()) ++violated_cfds;
    }
  }
  // The workload must exercise both answers, or the equivalence above
  // proves nothing.
  EXPECT_GT(violated_cfds, 0u);
  EXPECT_LT(violated_cfds, total_cfds);
}

TEST(ValidateEquivalenceTest, SpecialFormAndConstantRhs) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", {"A", "B"}).ok());
  const Value one = catalog.pool().Intern("1");
  const Value two = catalog.pool().Intern("2");

  // (A -> B, (_ || _)) in special form: every tuple must have A = B.
  CFD special;
  special.relation = 0;
  special.lhs = {0};
  special.lhs_pats = {PatternValue::SpecialX()};
  special.rhs = 1;
  special.rhs_pat = PatternValue::SpecialX();
  std::vector<Tuple> rows = {{one, one}, {two, one}, {two, two}};
  auto v = FindViolations(rows, special, 2);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<Violation>{{1, 1}}));
  EXPECT_EQ(ReferenceViolations(rows, special), *v);
  auto sat = Satisfies(rows, special, 2);
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);

  // Constant RHS: ([A=1] -> B=1): row 0 fine, row with A=2 unconstrained.
  CFD constant;
  constant.relation = 0;
  constant.lhs = {0};
  constant.lhs_pats = {PatternValue::Constant(one)};
  constant.rhs = 1;
  constant.rhs_pat = PatternValue::Constant(one);
  std::vector<Tuple> rows2 = {{one, one}, {one, two}, {two, two}};
  auto v2 = FindViolations(rows2, constant, 2);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, (std::vector<Violation>{{0, 1}, {1, 1}}));
  auto sat2 = Satisfies(rows2, constant, 2);
  ASSERT_TRUE(sat2.ok());
  EXPECT_FALSE(*sat2);
}

}  // namespace
}  // namespace cfdprop
