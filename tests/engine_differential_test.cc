// Differential harness: the engine's cached serving paths must be
// *byte-identical* to the one-shot Fig. 2 algorithms, for randomized
// generator workloads (SPC and SPCU), cold, warm, and across
// AddCfd/RetractCfd churn. Any divergence — a stale cache line, a
// fingerprint collision handled wrong, a union assembled from the wrong
// per-disjunct covers — shows up as a cover mismatch here.
//
// The one-shot reference is always recomputed from engine.sigma_raw():
// the exact registered (pre-minimization) CFD list as mutated so far,
// run through PropagationCoverSPC/SPCU with input_mincover = true — the
// path a user without an engine would take.

#include <vector>

#include <gtest/gtest.h>

#include "src/cover/propcfd_spc.h"
#include "src/engine/engine.h"
#include "src/gen/generators.h"

namespace cfdprop {
namespace {

struct Workload {
  EngineOptions options;
  std::vector<SPCView> spc_views;
  std::vector<SPCUView> spcu_views;
  std::vector<CFD> churn;  // CFDs to add/retract, pre-built (no interning)
};

/// Builds an engine plus generated views/churn for one seed. All
/// interning happens here, before any serving.
std::unique_ptr<Engine> MakeEngine(uint64_t seed, Workload* w) {
  SchemaGenOptions so;
  so.num_relations = 4;
  so.min_arity = 6;
  so.max_arity = 8;
  Catalog cat = GenerateSchema(so, seed);

  CFDGenOptions co;
  co.count = 32;
  co.min_lhs = 1;
  co.max_lhs = 3;
  std::vector<CFD> sigma = GenerateCFDs(cat, co, seed + 1);

  // Churn CFDs drawn from the same generator with a disjoint seed, so
  // they are valid for the schema but (almost surely) not in sigma.
  CFDGenOptions churn_options = co;
  churn_options.count = 4;
  w->churn = GenerateCFDs(cat, churn_options, seed + 1000);

  auto engine = std::make_unique<Engine>(std::move(cat), w->options);
  EXPECT_TRUE(engine->RegisterSigma(std::move(sigma)).ok());

  ViewGenOptions vo;
  vo.num_projection = 5;
  vo.num_selections = 3;
  vo.num_atoms = 2;
  for (size_t i = 0; i < 6; ++i) {
    auto v = GenerateSPCView(engine->catalog(), vo, seed + 10 + i);
    EXPECT_TRUE(v.ok()) << v.status();
    if (!v.ok()) return nullptr;
    w->spc_views.push_back(std::move(v).value());
  }
  // Unions pair up generated views; equal num_projection makes every
  // pair union-compatible.
  for (size_t i = 0; i + 1 < w->spc_views.size(); i += 2) {
    SPCUView u;
    u.disjuncts = {w->spc_views[i], w->spc_views[i + 1]};
    EXPECT_TRUE(u.Validate(engine->catalog()).ok());
    w->spcu_views.push_back(std::move(u));
  }
  return engine;
}

/// Asserts every engine result equals the one-shot recomputation from
/// the engine's current raw sigma. `expect_hit` additionally pins the
/// cache behavior (nullopt = don't care).
void ExpectMatchesOneShot(Engine& engine, const Workload& w, SigmaId sid,
                          std::optional<bool> expect_hit,
                          const char* phase) {
  std::vector<CFD> raw = engine.sigma_raw(sid);
  for (size_t i = 0; i < w.spc_views.size(); ++i) {
    auto served = engine.Propagate(w.spc_views[i], sid);
    ASSERT_TRUE(served.ok()) << phase << " spc[" << i << "]: "
                             << served.status();
    auto direct = PropagationCoverSPC(engine.catalog(), w.spc_views[i], raw);
    ASSERT_TRUE(direct.ok()) << phase << " spc[" << i << "]";
    EXPECT_EQ(served->cover->cover, direct->cover)
        << phase << " spc[" << i << "]: cached cover diverged from one-shot";
    EXPECT_EQ(served->cover->always_empty, direct->always_empty)
        << phase << " spc[" << i << "]";
    if (expect_hit.has_value()) {
      EXPECT_EQ(served->cache_hit, *expect_hit)
          << phase << " spc[" << i << "]";
    }
  }
  for (size_t i = 0; i < w.spcu_views.size(); ++i) {
    auto served = engine.PropagateUnion(w.spcu_views[i], sid);
    ASSERT_TRUE(served.ok()) << phase << " spcu[" << i << "]: "
                             << served.status();
    auto direct =
        PropagationCoverSPCU(engine.catalog(), w.spcu_views[i], raw);
    ASSERT_TRUE(direct.ok()) << phase << " spcu[" << i << "]";
    EXPECT_EQ(served->cover->cover, direct->cover)
        << phase << " spcu[" << i << "]: cached union diverged from one-shot";
    EXPECT_EQ(served->cover->always_empty, direct->always_empty)
        << phase << " spcu[" << i << "]";
    if (expect_hit.has_value()) {
      EXPECT_EQ(served->cache_hit, *expect_hit)
          << phase << " spcu[" << i << "]";
    }
  }
}

class EngineDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineDifferentialTest, ColdWarmAndChurnedResultsMatchOneShot) {
  Workload w;
  w.options.num_threads = 1;
  auto engine = MakeEngine(GetParam(), &w);
  ASSERT_NE(engine, nullptr);
  const SigmaId sid = 0;

  // Cold: every request computes; warm: every request is served from the
  // cache — both must equal the one-shot pipeline.
  ExpectMatchesOneShot(*engine, w, sid, false, "cold");
  ExpectMatchesOneShot(*engine, w, sid, true, "warm");

  // Churn: after every add/retract the engine must serve covers for the
  // *current* sigma (cold again — the generation changed), still equal
  // to one-shot on the mutated raw set.
  for (const CFD& c : w.churn) {
    ASSERT_TRUE(engine->AddCfd(sid, c).ok());
    ExpectMatchesOneShot(*engine, w, sid, false, "post-add");
    ExpectMatchesOneShot(*engine, w, sid, true, "post-add warm");
  }
  for (const CFD& c : w.churn) {
    ASSERT_TRUE(engine->RetractCfd(sid, c).ok());
    ExpectMatchesOneShot(*engine, w, sid, std::nullopt, "post-retract");
  }

  // Full churn cycle undone: back to the registration-time covers.
  std::vector<CFD> raw = engine->sigma_raw(sid);
  auto final_result = engine->Propagate(w.spc_views[0], sid);
  auto reference = PropagationCoverSPC(engine->catalog(), w.spc_views[0],
                                       std::move(raw));
  ASSERT_TRUE(final_result.ok() && reference.ok());
  EXPECT_EQ(final_result->cover->cover, reference->cover);
}

TEST_P(EngineDifferentialTest, WorkerPoolServesSameCoversAsInline) {
  Workload inline_w, pooled_w;
  inline_w.options.num_threads = 1;
  pooled_w.options.num_threads = 4;
  auto inline_engine = MakeEngine(GetParam(), &inline_w);
  auto pooled_engine = MakeEngine(GetParam(), &pooled_w);
  ASSERT_NE(inline_engine, nullptr);
  ASSERT_NE(pooled_engine, nullptr);

  std::vector<Engine::Request> requests;
  for (const SPCView& v : inline_w.spc_views) requests.push_back({v, 0});
  for (const SPCUView& u : inline_w.spcu_views) requests.push_back({u, 0});

  auto a = inline_engine->PropagateBatch(requests);
  auto b = pooled_engine->PropagateBatch(requests);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok() && b[i].ok()) << "request " << i;
    EXPECT_EQ(a[i].value().cover->cover, b[i].value().cover->cover)
        << "request " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialTest,
                         ::testing::Values(3u, 17u, 99u));

}  // namespace
}  // namespace cfdprop
