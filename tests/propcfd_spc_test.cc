#include "src/cover/propcfd_spc.h"

#include <gtest/gtest.h>

#include "src/cfd/implication.h"
#include "src/propagation/propagation.h"

namespace cfdprop {
namespace {

class PropCoverTest : public ::testing::Test {
 protected:
  PatternValue Wc() { return PatternValue::Wildcard(); }
  PatternValue Const(const char* s) {
    return PatternValue::Constant(cat_.pool().Intern(s));
  }

  /// Every CFD of a computed cover must pass the independent
  /// propagation test — soundness of PropCFD_SPC.
  void ExpectSound(const SPCView& view, const std::vector<CFD>& sigma,
                   const std::vector<CFD>& cover) {
    for (const CFD& c : cover) {
      auto r = IsPropagated(cat_, view, sigma, c);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_TRUE(*r) << "unsound cover member: " << c.ToString(cat_);
    }
  }

  Catalog cat_;
};

TEST_F(PropCoverTest, Example43FromThePaper) {
  // Sources R1(B'1,B2), R2(A1,A2,A), R3(A',A'2,B1,B);
  // V = pi_Y(sigma_F(R1 x R2 x R3)), Y = {B1,B2,B'1,A1,A2,B},
  // F = (B1=B'1 and A=A' and A2=A'2);
  // Sigma = { psi1 = R2([A1,A2] -> A, (_, c || a)),
  //           psi2 = R3([A',A'2,B1] -> B, (_, c, b || _)) }.
  ASSERT_TRUE(cat_.AddRelation("R1", {"Bp1", "B2"}).ok());
  ASSERT_TRUE(cat_.AddRelation("R2", {"A1", "A2", "A"}).ok());
  ASSERT_TRUE(cat_.AddRelation("R3", {"Ap", "Ap2", "B1", "B"}).ok());

  SPCViewBuilder b(cat_);
  size_t r1 = b.AddAtom(0), r2 = b.AddAtom(1), r3 = b.AddAtom(2);
  ASSERT_TRUE(b.SelectEq(r3, "B1", r1, "Bp1").ok());
  ASSERT_TRUE(b.SelectEq(r2, "A", r3, "Ap").ok());
  ASSERT_TRUE(b.SelectEq(r2, "A2", r3, "Ap2").ok());
  ASSERT_TRUE(b.Project(r3, "B1").ok());   // out 0
  ASSERT_TRUE(b.Project(r1, "B2").ok());   // out 1
  ASSERT_TRUE(b.Project(r1, "Bp1").ok());  // out 2
  ASSERT_TRUE(b.Project(r2, "A1").ok());   // out 3
  ASSERT_TRUE(b.Project(r2, "A2").ok());   // out 4
  ASSERT_TRUE(b.Project(r3, "B").ok());    // out 5
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  std::vector<CFD> sigma = {
      CFD::Make(1, {0, 1}, {Wc(), Const("c")}, 2, Const("a")).value(),
      CFD::Make(2, {0, 1, 2}, {Wc(), Const("c"), Const("b")}, 3, Wc())
          .value()};

  auto result = PropagationCoverSPC(cat_, *view, sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->always_empty);
  EXPECT_FALSE(result->truncated);

  // The paper's cover: phi = ([A1,A2,B1] -> B, (_, c, b || _)) and
  // phi' = (B1 -> B'1, (x || x)).
  CFD phi = CFD::Make(kViewSchemaId, {3, 4, 0},
                      {Wc(), Const("c"), Const("b")}, 5, Wc())
                .value();
  CFD phi_prime = CFD::Equality(kViewSchemaId, 0, 2);

  ASSERT_EQ(result->cover.size(), 2u);
  auto implied1 = Implies(result->cover, phi, view->OutputArity());
  auto implied2 = Implies(result->cover, phi_prime, view->OutputArity());
  ASSERT_TRUE(implied1.ok() && implied2.ok());
  EXPECT_TRUE(*implied1);
  EXPECT_TRUE(*implied2);

  ExpectSound(*view, sigma, result->cover);
}

TEST_F(PropCoverTest, Example41ExponentialCover) {
  // Fischer-Jou-Tsou: Ai -> Ci, Bi -> Ci, C1..Cn -> D; project out the
  // Ci. Every eta1..etan -> D with etai in {Ai, Bi} is in the cover.
  const size_t n = 3;
  std::vector<std::string> names;
  for (size_t i = 0; i < n; ++i) names.push_back("A" + std::to_string(i));
  for (size_t i = 0; i < n; ++i) names.push_back("B" + std::to_string(i));
  for (size_t i = 0; i < n; ++i) names.push_back("C" + std::to_string(i));
  names.push_back("D");
  ASSERT_TRUE(cat_.AddRelation("R", names).ok());

  std::vector<CFD> sigma;
  std::vector<AttrIndex> cs;
  for (size_t i = 0; i < n; ++i) {
    sigma.push_back(CFD::FD(0, {static_cast<AttrIndex>(i)},
                            static_cast<AttrIndex>(2 * n + i))
                        .value());
    sigma.push_back(CFD::FD(0, {static_cast<AttrIndex>(n + i)},
                            static_cast<AttrIndex>(2 * n + i))
                        .value());
    cs.push_back(static_cast<AttrIndex>(2 * n + i));
  }
  sigma.push_back(CFD::FD(0, cs, static_cast<AttrIndex>(3 * n)).value());

  SPCViewBuilder b(cat_);
  size_t atom = b.AddAtom(0);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(b.Project(atom, "A" + std::to_string(i)).ok());
    ASSERT_TRUE(b.Project(atom, "B" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(b.Project(atom, "D").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());
  // Output columns: A0=0 B0=1 A1=2 B1=3 A2=4 B2=5 D=6.

  auto result = PropagationCoverSPC(cat_, *view, sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->cover.size(), 8u);  // 2^3 combinations

  // Each of the 2^n choices must be implied by the cover.
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<AttrIndex> lhs;
    for (size_t i = 0; i < n; ++i) {
      bool use_b = (mask >> i) & 1;
      lhs.push_back(static_cast<AttrIndex>(2 * i + (use_b ? 1 : 0)));
    }
    CFD choice = CFD::FD(kViewSchemaId, lhs, 6).value();
    auto implied = Implies(result->cover, choice, view->OutputArity());
    ASSERT_TRUE(implied.ok());
    EXPECT_TRUE(*implied) << "missing combination " << mask;
  }
  ExpectSound(*view, sigma, result->cover);
}

TEST_F(PropCoverTest, ConstantColumnsFromRc) {
  // The paper's Q1 = {(CC:44)} x R1 contributes RV(CC -> CC, (_ || 44)).
  ASSERT_TRUE(cat_.AddRelation("R", {"A", "B"}).ok());
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.Project(a, "A").ok());
  ASSERT_TRUE(b.Project(a, "B").ok());
  ASSERT_TRUE(b.ProjectConstant("CC", "44").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  std::vector<CFD> sigma = {CFD::FD(0, {0}, 1).value()};
  auto result = PropagationCoverSPC(cat_, *view, sigma);
  ASSERT_TRUE(result.ok());

  CFD cc = CFD::ConstantColumn(kViewSchemaId, 2, cat_.pool().Intern("44"));
  CFD ab = CFD::FD(kViewSchemaId, {0}, 1).value();
  auto i1 = Implies(result->cover, cc, 3);
  auto i2 = Implies(result->cover, ab, 3);
  ASSERT_TRUE(i1.ok() && i2.ok());
  EXPECT_TRUE(*i1);
  EXPECT_TRUE(*i2);
  ExpectSound(*view, sigma, result->cover);
}

TEST_F(PropCoverTest, InconsistencyReturnsLemma45Pair) {
  ASSERT_TRUE(cat_.AddRelation("R", {"A", "B"}).ok());
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(a, "B", "b2").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  std::vector<CFD> sigma = {
      CFD::Make(0, {0}, {Wc()}, 1, Const("b1")).value()};
  auto result = PropagationCoverSPC(cat_, *view, sigma);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->always_empty);
  EXPECT_TRUE(IsEmptyViewCover(result->cover));
}

TEST_F(PropCoverTest, SelectionConstantSimplifiesConditionalCFD) {
  // sigma: ([A=a] -> B), view selects A='a': the condition is always met
  // on the view, so plain B-determinacy is propagated.
  ASSERT_TRUE(cat_.AddRelation("R", {"A", "B", "C"}).ok());
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(a, "A", "a").ok());
  ASSERT_TRUE(b.Project(a, "B").ok());
  ASSERT_TRUE(b.Project(a, "C").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  std::vector<CFD> sigma = {
      CFD::Make(0, {0, 1}, {Const("a"), Wc()}, 2, Wc()).value()};
  auto result = PropagationCoverSPC(cat_, *view, sigma);
  ASSERT_TRUE(result.ok());

  CFD bc = CFD::FD(kViewSchemaId, {0}, 1).value();  // B -> C on the view
  auto implied = Implies(result->cover, bc, 2);
  ASSERT_TRUE(implied.ok());
  EXPECT_TRUE(*implied);
  ExpectSound(*view, sigma, result->cover);
}

TEST_F(PropCoverTest, MismatchedSelectionDropsConditionalCFD) {
  // sigma: ([A=a] -> B=p); view selects A='z' (z != a): the CFD is
  // vacuous on the view and must not constrain it.
  ASSERT_TRUE(cat_.AddRelation("R", {"A", "B", "C"}).ok());
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(a, "A", "z").ok());
  ASSERT_TRUE(b.Project(a, "B").ok());
  ASSERT_TRUE(b.Project(a, "C").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  std::vector<CFD> sigma = {
      CFD::Make(0, {0}, {Const("a")}, 1, Const("p")).value()};
  auto result = PropagationCoverSPC(cat_, *view, sigma);
  ASSERT_TRUE(result.ok());

  CFD bp = CFD::ConstantColumn(kViewSchemaId, 0, cat_.pool().Intern("p"));
  auto implied = Implies(result->cover, bp, 2);
  ASSERT_TRUE(implied.ok());
  EXPECT_FALSE(*implied);
  ExpectSound(*view, sigma, result->cover);
}

TEST_F(PropCoverTest, KeySimplificationPreservesEquivalence) {
  ASSERT_TRUE(cat_.AddRelation("R", {"A", "B", "C", "D"}).ok());
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(a, "A", "k").ok());
  ASSERT_TRUE(b.Project(a, "B").ok());
  ASSERT_TRUE(b.Project(a, "C").ok());
  ASSERT_TRUE(b.Project(a, "D").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  std::vector<CFD> sigma = {
      CFD::Make(0, {0, 1}, {Const("k"), Wc()}, 2, Wc()).value(),
      CFD::FD(0, {2}, 3).value()};

  PropCoverOptions with_keys;
  with_keys.simplify_with_keys = true;
  PropCoverOptions without_keys;
  without_keys.simplify_with_keys = false;

  auto r1 = PropagationCoverSPC(cat_, *view, sigma, with_keys);
  auto r2 = PropagationCoverSPC(cat_, *view, sigma, without_keys);
  ASSERT_TRUE(r1.ok() && r2.ok());

  size_t arity = view->OutputArity();
  for (const CFD& c : r1->cover) {
    auto imp = Implies(r2->cover, c, arity);
    ASSERT_TRUE(imp.ok());
    EXPECT_TRUE(*imp) << "missing in no-keys cover: " << c.ToString(cat_);
  }
  for (const CFD& c : r2->cover) {
    auto imp = Implies(r1->cover, c, arity);
    ASSERT_TRUE(imp.ok());
    EXPECT_TRUE(*imp) << "missing in keys cover: " << c.ToString(cat_);
  }
  ExpectSound(*view, sigma, r1->cover);
  ExpectSound(*view, sigma, r2->cover);
}

TEST_F(PropCoverTest, SPCUCoverIsSoundAcrossDisjuncts) {
  // Union of two selections on A: per-disjunct constants must be
  // filtered out; shared source FDs survive.
  ASSERT_TRUE(cat_.AddRelation("R", {"A", "B", "C"}).ok());

  auto make_disjunct = [&](const char* c) {
    SPCViewBuilder b(cat_);
    size_t a = b.AddAtom(0);
    EXPECT_TRUE(b.SelectConst(a, "A", c).ok());
    auto v = b.Build();
    EXPECT_TRUE(v.ok());
    return *v;
  };
  SPCUView u;
  u.disjuncts = {make_disjunct("1"), make_disjunct("2")};

  std::vector<CFD> sigma = {CFD::FD(0, {1}, 2).value()};  // B -> C
  auto result = PropagationCoverSPCU(cat_, u, sigma);
  ASSERT_TRUE(result.ok()) << result.status();

  size_t arity = u.OutputArity();
  CFD bc = CFD::FD(kViewSchemaId, {1}, 2).value();
  auto implied = Implies(result->cover, bc, arity);
  ASSERT_TRUE(implied.ok());
  EXPECT_TRUE(*implied);

  // A = '1' holds only on the first disjunct: must not be in the cover.
  CFD a1 = CFD::ConstantColumn(kViewSchemaId, 0, cat_.pool().Intern("1"));
  implied = Implies(result->cover, a1, arity);
  ASSERT_TRUE(implied.ok());
  EXPECT_FALSE(*implied);

  for (const CFD& c : result->cover) {
    auto r = IsPropagated(cat_, u, sigma, c);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(*r);
  }
}

TEST_F(PropCoverTest, SPCUCoverRecoversThePaperCFDs) {
  // Example 1.1 end to end: the union cover must imply phi1..phi5, via
  // the constant-column guards that discriminate the disjuncts.
  std::vector<std::string> attrs = {"AC",    "phn",  "name",
                                    "street", "city", "zip"};
  for (const char* name : {"R1", "R2", "R3"}) {
    ASSERT_TRUE(cat_.AddRelation(name, attrs).ok());
  }
  std::vector<CFD> sigma = {
      CFD::FD(0, {5}, 3).value(),  // f1: R1 zip -> street
      CFD::FD(0, {0}, 4).value(),  // f2: R1 AC -> city
      CFD::FD(2, {0}, 4).value(),  // f3: R3 AC -> city
      CFD::Make(0, {0}, {Const("20")}, 4, Const("ldn")).value(),
      CFD::Make(2, {0}, {Const("20")}, 4, Const("Amsterdam")).value()};

  SPCUView view;
  const char* ccs[3] = {"44", "01", "31"};
  for (int i = 0; i < 3; ++i) {
    SPCViewBuilder b(cat_);
    size_t atom = b.AddAtom(static_cast<RelationId>(i));
    for (const std::string& a : attrs) ASSERT_TRUE(b.Project(atom, a).ok());
    ASSERT_TRUE(b.ProjectConstant("CC", ccs[i]).ok());
    auto v = b.Build();
    ASSERT_TRUE(v.ok());
    view.disjuncts.push_back(*v);
  }

  auto result = PropagationCoverSPCU(cat_, view, sigma);
  ASSERT_TRUE(result.ok()) << result.status();

  const size_t arity = 7;  // AC phn name street city zip CC
  std::vector<CFD> expected = {
      CFD::Make(kViewSchemaId, {6, 5}, {Const("44"), Wc()}, 3, Wc()).value(),
      CFD::Make(kViewSchemaId, {6, 0}, {Const("44"), Wc()}, 4, Wc()).value(),
      CFD::Make(kViewSchemaId, {6, 0}, {Const("31"), Wc()}, 4, Wc()).value(),
      CFD::Make(kViewSchemaId, {6, 0}, {Const("44"), Const("20")}, 4,
                Const("ldn"))
          .value(),
      CFD::Make(kViewSchemaId, {6, 0}, {Const("31"), Const("20")}, 4,
                Const("Amsterdam"))
          .value()};
  for (const CFD& phi : expected) {
    auto implied = Implies(result->cover, phi, arity);
    ASSERT_TRUE(implied.ok());
    EXPECT_TRUE(*implied) << "cover misses " << phi.ToString(cat_);
  }
  // And no unconditioned leakage.
  CFD plain_ac = CFD::FD(kViewSchemaId, {0}, 4).value();
  auto implied = Implies(result->cover, plain_ac, arity);
  ASSERT_TRUE(implied.ok());
  EXPECT_FALSE(*implied);
}

TEST_F(PropCoverTest, StatsAreReported) {
  ASSERT_TRUE(cat_.AddRelation("R", {"A", "B", "C"}).ok());
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.Project(a, "A").ok());
  ASSERT_TRUE(b.Project(a, "C").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  std::vector<CFD> sigma = {CFD::FD(0, {0}, 1).value(),
                            CFD::FD(0, {1}, 2).value()};
  auto result = PropagationCoverSPC(cat_, *view, sigma);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->input_cfds, 2u);
  EXPECT_EQ(result->sigma_v_size, 2u);
  EXPECT_GE(result->rbr_output_size, 1u);
  ASSERT_EQ(result->cover.size(), 1u);  // A -> C on the view
  EXPECT_EQ(result->cover[0], CFD::FD(kViewSchemaId, {0}, 1).value());
}

}  // namespace
}  // namespace cfdprop
