// Snapshot round-trip and corruption tests for the persistent cover
// cache (src/engine/snapshot.h).
//
// Round trips run on randomized generator workloads (the
// engine_differential_test setup): a cold engine serves every view,
// spills its cache, and a fresh engine restored from the file must
// serve every request as a cache hit with a byte-identical cover.
// Corruption tests mangle the file every way a disk can — truncation
// at every boundary, bad magic, a version bump, bit rot — and demand a
// clean rejection: an error Status, an untouched cache, no crash (the
// suite also runs under the ASan/TSan CI matrix).

#include <cstdio>
#include <unistd.h>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/engine/snapshot.h"
#include "src/gen/generators.h"

namespace cfdprop {
namespace {

struct Workload {
  EngineOptions options;
  std::vector<SPCView> spc_views;
  std::vector<SPCUView> spcu_views;
};

/// Same construction as engine_differential_test: catalog, sigma and
/// views are all deterministic in the seed, so two MakeEngine calls
/// with one seed model "the same deployment restarted".
std::unique_ptr<Engine> MakeEngine(uint64_t seed, Workload* w) {
  SchemaGenOptions so;
  so.num_relations = 4;
  so.min_arity = 6;
  so.max_arity = 8;
  Catalog cat = GenerateSchema(so, seed);

  CFDGenOptions co;
  co.count = 32;
  co.min_lhs = 1;
  co.max_lhs = 3;
  std::vector<CFD> sigma = GenerateCFDs(cat, co, seed + 1);

  auto engine = std::make_unique<Engine>(std::move(cat), w->options);
  EXPECT_TRUE(engine->RegisterSigma(std::move(sigma)).ok());

  ViewGenOptions vo;
  vo.num_projection = 5;
  vo.num_selections = 3;
  vo.num_atoms = 2;
  for (size_t i = 0; i < 6; ++i) {
    auto v = GenerateSPCView(engine->catalog(), vo, seed + 10 + i);
    EXPECT_TRUE(v.ok()) << v.status();
    if (!v.ok()) return nullptr;
    w->spc_views.push_back(std::move(v).value());
  }
  for (size_t i = 0; i + 1 < w->spc_views.size(); i += 2) {
    SPCUView u;
    u.disjuncts = {w->spc_views[i], w->spc_views[i + 1]};
    EXPECT_TRUE(u.Validate(engine->catalog()).ok());
    w->spcu_views.push_back(std::move(u));
  }
  return engine;
}

/// Serves every SPC and SPCU view once, returning the covers in request
/// order. `expect_hit` pins the cache behavior when set.
std::vector<std::vector<CFD>> ServeAll(Engine& engine, const Workload& w,
                                       std::optional<bool> expect_hit,
                                       const char* phase) {
  std::vector<std::vector<CFD>> covers;
  for (size_t i = 0; i < w.spc_views.size(); ++i) {
    auto r = engine.Propagate(w.spc_views[i], 0);
    EXPECT_TRUE(r.ok()) << phase << " spc[" << i << "]: " << r.status();
    if (!r.ok()) return covers;
    if (expect_hit) {
      EXPECT_EQ(r->cache_hit, *expect_hit) << phase << " spc[" << i << "]";
    }
    covers.push_back(r->cover->cover);
  }
  for (size_t i = 0; i < w.spcu_views.size(); ++i) {
    auto r = engine.PropagateUnion(w.spcu_views[i], 0);
    EXPECT_TRUE(r.ok()) << phase << " spcu[" << i << "]: " << r.status();
    if (!r.ok()) return covers;
    if (expect_hit) {
      EXPECT_EQ(r->cache_hit, *expect_hit) << phase << " spcu[" << i << "]";
    }
    covers.push_back(r->cover->cover);
  }
  return covers;
}

std::string SnapshotPath(const char* name) {
  return ::testing::TempDir() + "cfdprop_" + name + "_" +
         std::to_string(::getpid()) + ".ccsnap";
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << path;
}

class EngineSnapshotTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineSnapshotTest, WarmRestartServesByteIdenticalCovers) {
  const std::string path = SnapshotPath("roundtrip");
  Workload cold_w;
  cold_w.options.num_threads = 1;
  auto cold = MakeEngine(GetParam(), &cold_w);
  ASSERT_NE(cold, nullptr);
  auto cold_covers = ServeAll(*cold, cold_w, false, "cold");

  auto saved = cold->SaveSnapshot(path);
  ASSERT_TRUE(saved.ok()) << saved.status();
  EXPECT_EQ(*saved, cold->Stats().cache.entries);
  EXPECT_GT(*saved, 0u);

  // "Restart": a fresh engine built from the same deployment spec.
  Workload warm_w;
  warm_w.options.num_threads = 1;
  auto warm = MakeEngine(GetParam(), &warm_w);
  ASSERT_NE(warm, nullptr);
  auto loaded = warm->LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->restored, *saved);
  EXPECT_EQ(loaded->rejected, 0u);
  EXPECT_EQ(warm->Stats().cache.restored, *saved);

  // Every request is a hit, and every cover is byte-identical to what
  // the cold process computed.
  auto warm_covers = ServeAll(*warm, warm_w, true, "warm");
  ASSERT_EQ(warm_covers.size(), cold_covers.size());
  for (size_t i = 0; i < cold_covers.size(); ++i) {
    EXPECT_EQ(warm_covers[i], cold_covers[i]) << "request " << i;
  }
  EXPECT_EQ(warm->Stats().cache.misses, 0u);
  std::remove(path.c_str());
}

TEST_P(EngineSnapshotTest, SaveLoadSaveIsByteIdentical) {
  // Serialize -> deserialize -> serialize must reproduce the file
  // bit-for-bit: lines are sorted and the string table is first-use
  // ordered, so equal cache content means equal bytes — the property
  // that makes the CI persistence diff meaningful.
  const std::string path1 = SnapshotPath("bytes1");
  const std::string path2 = SnapshotPath("bytes2");
  Workload w1, w2;
  w1.options.num_threads = 1;
  w2.options.num_threads = 1;
  auto a = MakeEngine(GetParam(), &w1);
  auto b = MakeEngine(GetParam(), &w2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ServeAll(*a, w1, false, "populate");

  ASSERT_TRUE(a->SaveSnapshot(path1).ok());
  auto loaded = b->LoadSnapshot(path1);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(b->SaveSnapshot(path2).ok());
  EXPECT_EQ(ReadFile(path1), ReadFile(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST_P(EngineSnapshotTest, ChurnedAndRevertedSigmaStillRestores) {
  // AddCfd + RetractCfd back to the registered content: the generation
  // moved to 2 but the minimized set — and so its fingerprint — is the
  // registration-time one again. A restart (generation 0) must restore
  // the lines and adopt its own generation.
  const std::string path = SnapshotPath("churned");
  Workload w;
  w.options.num_threads = 1;
  auto engine = MakeEngine(GetParam(), &w);
  ASSERT_NE(engine, nullptr);

  CFDGenOptions co;
  co.count = 1;
  co.min_lhs = 1;
  co.max_lhs = 2;
  std::vector<CFD> churn =
      GenerateCFDs(engine->catalog(), co, GetParam() + 1000);
  ASSERT_EQ(churn.size(), 1u);
  ASSERT_TRUE(engine->AddCfd(0, churn[0]).ok());
  ASSERT_TRUE(engine->RetractCfd(0, churn[0]).ok());
  ASSERT_EQ(engine->sigma_generation(0), 2u);
  auto covers = ServeAll(*engine, w, false, "post-churn");
  auto saved = engine->SaveSnapshot(path);
  ASSERT_TRUE(saved.ok()) << saved.status();

  Workload warm_w;
  warm_w.options.num_threads = 1;
  auto warm = MakeEngine(GetParam(), &warm_w);
  ASSERT_NE(warm, nullptr);
  ASSERT_EQ(warm->sigma_generation(0), 0u);
  auto loaded = warm->LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->restored, *saved);
  EXPECT_EQ(loaded->rejected, 0u);
  auto warm_covers = ServeAll(*warm, warm_w, true, "warm");
  EXPECT_EQ(warm_covers, covers);
  std::remove(path.c_str());
}

TEST_P(EngineSnapshotTest, ChangedSigmaRejectsEveryLine) {
  const std::string path = SnapshotPath("mismatch");
  Workload w;
  w.options.num_threads = 1;
  auto engine = MakeEngine(GetParam(), &w);
  ASSERT_NE(engine, nullptr);
  ServeAll(*engine, w, false, "populate");
  auto saved = engine->SaveSnapshot(path);
  ASSERT_TRUE(saved.ok());

  // A different seed registers a different sigma over a same-shaped
  // schema: content fingerprints differ, so nothing may restore.
  Workload other_w;
  other_w.options.num_threads = 1;
  auto other = MakeEngine(GetParam() + 7777, &other_w);
  ASSERT_NE(other, nullptr);
  const size_t pool_size_before = other->catalog().pool().size();
  auto loaded = other->LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->restored, 0u);
  EXPECT_EQ(loaded->rejected, *saved);
  EXPECT_EQ(other->Stats().cache.entries, 0u);
  EXPECT_EQ(other->Stats().cache.rejected, *saved);
  // Rejected lines intern nothing: the append-only pool is unpolluted.
  EXPECT_EQ(other->catalog().pool().size(), pool_size_before);
  std::remove(path.c_str());
}

TEST_P(EngineSnapshotTest, CorruptFilesRejectCleanlyWithoutRestoring) {
  const std::string path = SnapshotPath("corrupt");
  Workload w;
  w.options.num_threads = 1;
  auto engine = MakeEngine(GetParam(), &w);
  ASSERT_NE(engine, nullptr);
  ServeAll(*engine, w, false, "populate");
  ASSERT_TRUE(engine->SaveSnapshot(path).ok());
  const std::string good = ReadFile(path);
  ASSERT_GT(good.size(), 24u);

  auto expect_rejected = [&](const std::string& bytes, const char* what) {
    WriteFile(path, bytes);
    Workload fresh_w;
    fresh_w.options.num_threads = 1;
    auto fresh = MakeEngine(GetParam(), &fresh_w);
    ASSERT_NE(fresh, nullptr);
    auto loaded = fresh->LoadSnapshot(path);
    EXPECT_FALSE(loaded.ok()) << what;
    // Nothing half-restored: the cache is exactly as cold as before.
    EXPECT_EQ(fresh->Stats().cache.entries, 0u) << what;
    EXPECT_EQ(fresh->Stats().cache.restored, 0u) << what;
  };

  // Truncation at every kind of boundary, including an empty file and
  // losing just the final checksum byte.
  for (size_t len : {size_t{0}, size_t{7}, size_t{15}, size_t{23},
                     good.size() / 3, good.size() / 2, good.size() - 9,
                     good.size() - 1}) {
    expect_rejected(good.substr(0, len),
                    ("truncated to " + std::to_string(len)).c_str());
  }
  // Bad magic.
  {
    std::string bad = good;
    bad[0] ^= 0x5a;
    expect_rejected(bad, "bad magic");
  }
  // Version bump: the loader must refuse formats from the future.
  {
    std::string bad = good;
    bad[8] = static_cast<char>(kSnapshotVersion + 1);
    expect_rejected(bad, "version bump");
  }
  // Bit rot in the middle of the payload: caught by the checksum.
  {
    std::string bad = good;
    bad[good.size() / 2] ^= 0x01;
    expect_rejected(bad, "payload bit flip");
  }
  // The original bytes still load after all that (the tamper helper
  // rewrote the file each time).
  WriteFile(path, good);
  Workload ok_w;
  ok_w.options.num_threads = 1;
  auto ok_engine = MakeEngine(GetParam(), &ok_w);
  ASSERT_NE(ok_engine, nullptr);
  auto loaded = ok_engine->LoadSnapshot(path);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_GT(loaded->restored, 0u);
  std::remove(path.c_str());
}

TEST(EngineSnapshotValuePoolTest, ConstantsRemapAcrossDifferentPools) {
  // The loading pool interns other texts first, so every snapshot
  // constant lands on a different Value id than in the saving pool; the
  // string-table remap must still reproduce the same *texts*.
  auto build = [](bool skew) {
    Catalog cat;
    if (skew) {
      for (int i = 0; i < 10; ++i) cat.pool().Intern("skew" + std::to_string(i));
    }
    EXPECT_TRUE(cat.AddRelation("R", {"A", "B", "C"}).ok());
    return cat;
  };

  Catalog save_cat = build(false);
  Value lnd = save_cat.pool().Intern("LND");
  Value nyc = save_cat.pool().Intern("NYC");
  std::vector<CFD> sigma;
  auto cfd = CFD::Make(0, {0}, {PatternValue::Constant(lnd)}, 1,
                       PatternValue::Constant(nyc));
  ASSERT_TRUE(cfd.ok());
  sigma.push_back(*cfd);

  Engine save_engine(std::move(save_cat), EngineOptions{.num_threads = 1});
  ASSERT_TRUE(save_engine.RegisterSigma(sigma).ok());
  SPCView view;
  view.atoms = {0};
  view.selections = {};
  view.output = {OutputColumn::Projected("a", 0), OutputColumn::Projected("b", 1),
                 OutputColumn::Projected("c", 2)};
  auto served = save_engine.Propagate(view, 0);
  ASSERT_TRUE(served.ok()) << served.status();
  ASSERT_FALSE(served->cover->cover.empty());
  const std::string path = SnapshotPath("pools");
  ASSERT_TRUE(save_engine.SaveSnapshot(path).ok());

  Catalog load_cat = build(true);  // different interning order
  Value lnd2 = load_cat.pool().Intern("LND");
  Value nyc2 = load_cat.pool().Intern("NYC");
  ASSERT_NE(lnd2, lnd);
  std::vector<CFD> sigma2;
  auto cfd2 = CFD::Make(0, {0}, {PatternValue::Constant(lnd2)}, 1,
                        PatternValue::Constant(nyc2));
  ASSERT_TRUE(cfd2.ok());
  sigma2.push_back(*cfd2);
  Engine load_engine(std::move(load_cat), EngineOptions{.num_threads = 1});
  ASSERT_TRUE(load_engine.RegisterSigma(sigma2).ok());

  auto loaded = load_engine.LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->restored, 1u);
  auto warm = load_engine.Propagate(view, 0);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  // Same covers by *text* (ids may differ between the pools).
  ASSERT_EQ(warm->cover->cover.size(), served->cover->cover.size());
  for (size_t i = 0; i < warm->cover->cover.size(); ++i) {
    EXPECT_EQ(warm->cover->cover[i].ToString(load_engine.catalog()),
              served->cover->cover[i].ToString(save_engine.catalog()))
        << "cover CFD " << i;
  }
  std::remove(path.c_str());
}

TEST(EngineSnapshotEdgeTest, MissingFileIsNotFoundAndEmptyCacheRoundTrips) {
  Workload w;
  w.options.num_threads = 1;
  auto engine = MakeEngine(3, &w);
  ASSERT_NE(engine, nullptr);
  auto missing = engine->LoadSnapshot(SnapshotPath("does_not_exist"));
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // An empty cache snapshots to a valid file that restores zero lines.
  const std::string path = SnapshotPath("empty");
  auto saved = engine->SaveSnapshot(path);
  ASSERT_TRUE(saved.ok()) << saved.status();
  EXPECT_EQ(*saved, 0u);
  auto loaded = engine->LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->restored, 0u);
  EXPECT_EQ(loaded->rejected, 0u);
  std::remove(path.c_str());
}

TEST(EngineSnapshotEdgeTest, ConcurrentSavesToOnePathAllSucceed) {
  // Regression: SaveSnapshot used a fixed `path + ".tmp"` staging file,
  // so two concurrent spills of the same tenant raced — one rename
  // could publish the other's half-written bytes, or fail outright on
  // the vanished tmp. Staging names are now writer-unique, so every
  // save must succeed and the survivor must be one complete snapshot.
  Workload w;
  w.options.num_threads = 1;
  auto engine = MakeEngine(17, &w);
  ASSERT_NE(engine, nullptr);
  ServeAll(*engine, w, false, "warmup");

  const std::string path = SnapshotPath("concurrent");
  constexpr int kThreads = 4;
  constexpr int kSavesPerThread = 8;
  std::vector<Status> failures[kThreads];
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kSavesPerThread; ++i) {
          auto saved = engine->SaveSnapshot(path);
          if (!saved.ok()) failures[t].push_back(saved.status());
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    for (const Status& s : failures[t]) {
      ADD_FAILURE() << "thread " << t << ": " << s;
    }
  }

  // Whichever save won the last rename, the published file is whole.
  Workload warm_w;
  warm_w.options.num_threads = 1;
  auto warm = MakeEngine(17, &warm_w);
  ASSERT_NE(warm, nullptr);
  auto loaded = warm->LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->restored, engine->Stats().cache.entries);
  EXPECT_GT(loaded->restored, 0u);
  EXPECT_EQ(loaded->rejected, 0u);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSnapshotTest,
                         ::testing::Values(3u, 17u, 99u));

}  // namespace
}  // namespace cfdprop
