#include "src/data/eval.h"
#include "src/data/validate.h"

#include <gtest/gtest.h>

namespace cfdprop {
namespace {

// Fig. 1 of the paper: UK/US/NL customer instances.
class Fig1Test : public ::testing::Test {
 protected:
  static constexpr AttrIndex kAC = 0, kStreet = 3, kCity = 4, kZip = 5;

  void SetUp() override {
    std::vector<std::string> attrs = {"AC",    "phn",  "name",
                                      "street", "city", "zip"};
    for (const char* name : {"R1", "R2", "R3"}) {
      ASSERT_TRUE(cat_.AddRelation(name, attrs).ok());
    }
    db_ = std::make_unique<Database>(cat_);
    // D1 (UK).
    ASSERT_TRUE(db_->InsertText(
        "R1", {"20", "1234567", "Mike", "Portland", "LDN", "W1B 1JL"}).ok());
    ASSERT_TRUE(db_->InsertText(
        "R1", {"20", "3456789", "Rick", "Portland", "LDN", "W1B 1JL"}).ok());
    // D2 (US).
    ASSERT_TRUE(db_->InsertText(
        "R2", {"610", "3456789", "Joe", "Copley", "Darby", "19082"}).ok());
    ASSERT_TRUE(db_->InsertText(
        "R2", {"610", "1234567", "Mary", "Walnut", "Darby", "19082"}).ok());
    // D3 (NL).
    ASSERT_TRUE(db_->InsertText(
        "R3", {"20", "3456789", "Marx", "Kruise", "Amsterdam", "1096"}).ok());
    ASSERT_TRUE(db_->InsertText(
        "R3", {"36", "1234567", "Bart", "Grote", "Almere", "1316"}).ok());
  }

  SPCUView MakeUnionView() {
    SPCUView u;
    const char* ccs[3] = {"44", "01", "31"};
    for (int i = 0; i < 3; ++i) {
      SPCViewBuilder b(cat_);
      size_t atom = b.AddAtom(static_cast<RelationId>(i));
      const RelationSchema& schema = cat_.relation(static_cast<RelationId>(i));
      for (AttrIndex k = 0; k < schema.arity(); ++k) {
        EXPECT_TRUE(b.Project(atom, schema.attr(k).name).ok());
      }
      EXPECT_TRUE(b.ProjectConstant("CC", ccs[i]).ok());
      auto v = b.Build();
      EXPECT_TRUE(v.ok());
      u.disjuncts.push_back(*v);
    }
    return u;
  }

  PatternValue Wc() { return PatternValue::Wildcard(); }
  PatternValue Const(const char* s) {
    return PatternValue::Constant(cat_.pool().Intern(s));
  }

  Catalog cat_;
  std::unique_ptr<Database> db_;
};

TEST_F(Fig1Test, SourceFDsHold) {
  // f1: R1(zip -> street), f2: R1(AC -> city), f3: R3(AC -> city).
  auto f1 = Satisfies(*db_, CFD::FD(0, {kZip}, kStreet).value());
  auto f2 = Satisfies(*db_, CFD::FD(0, {kAC}, kCity).value());
  auto f3 = Satisfies(*db_, CFD::FD(2, {kAC}, kCity).value());
  ASSERT_TRUE(f1.ok() && f2.ok() && f3.ok());
  EXPECT_TRUE(*f1);
  EXPECT_TRUE(*f2);
  EXPECT_TRUE(*f3);

  // zip does not determine street in the US source.
  auto us = Satisfies(*db_, CFD::FD(1, {kZip}, kStreet).value());
  ASSERT_TRUE(us.ok());
  EXPECT_FALSE(*us);
}

TEST_F(Fig1Test, ViewEvaluationProducesSixTuples) {
  SPCUView u = MakeUnionView();
  auto rows = Evaluate(*db_, u);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);
  for (const Tuple& t : *rows) EXPECT_EQ(t.size(), 7u);
}

TEST_F(Fig1Test, ViewViolatesPlainFDButSatisfiesCFD) {
  SPCUView u = MakeUnionView();
  auto rows = Evaluate(*db_, u);
  ASSERT_TRUE(rows.ok());
  const size_t arity = 7;  // AC phn name street city zip CC

  // f1 as a plain view FD is violated (t3, t4 from the US source).
  CFD plain = CFD::FD(kViewSchemaId, {5}, 3).value();
  auto sat = Satisfies(*rows, plain, arity);
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);
  auto viol = FindViolations(*rows, plain, arity);
  ASSERT_TRUE(viol.ok());
  EXPECT_FALSE(viol->empty());

  // phi1: ([CC=44, zip] -> street) holds.
  CFD phi1 = CFD::Make(kViewSchemaId, {6, 5}, {Const("44"), Wc()}, 3, Wc())
                 .value();
  sat = Satisfies(*rows, phi1, arity);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);

  // phi2 / phi3 hold; plain AC -> city does not (t1 vs t5).
  CFD phi2 = CFD::Make(kViewSchemaId, {6, 0}, {Const("44"), Wc()}, 4, Wc())
                 .value();
  CFD phi3 = CFD::Make(kViewSchemaId, {6, 0}, {Const("31"), Wc()}, 4, Wc())
                 .value();
  CFD plain_ac = CFD::FD(kViewSchemaId, {0}, 4).value();
  EXPECT_TRUE(*Satisfies(*rows, phi2, arity));
  EXPECT_TRUE(*Satisfies(*rows, phi3, arity));
  EXPECT_FALSE(*Satisfies(*rows, plain_ac, arity));

  // phi4 with pattern constants holds; without CC it is violated
  // (Example 2.2).
  CFD phi4 = CFD::Make(kViewSchemaId, {6, 0}, {Const("44"), Const("20")}, 4,
                       Const("LDN"))
                 .value();
  CFD no_cc =
      CFD::Make(kViewSchemaId, {0}, {Const("20")}, 4, Const("LDN")).value();
  EXPECT_TRUE(*Satisfies(*rows, phi4, arity));
  EXPECT_FALSE(*Satisfies(*rows, no_cc, arity));
}

TEST_F(Fig1Test, SingleTupleViolationsAreReported) {
  // ([AC=20] -> city=LDN) on R3: Marx (AC 20, Amsterdam) violates alone.
  CFD cfd = CFD::Make(2, {kAC}, {Const("20")}, kCity, Const("LDN")).value();
  const Relation& r3 = db_->relation(2);
  auto viol = FindViolations(r3.tuples(), cfd, r3.schema().arity());
  ASSERT_TRUE(viol.ok());
  ASSERT_EQ(viol->size(), 1u);
  EXPECT_EQ((*viol)[0].first, (*viol)[0].second);  // single-tuple
}

TEST_F(Fig1Test, EqualityCFDValidation) {
  std::vector<Tuple> rows = {{1, 1, 2}, {3, 4, 3}};
  CFD eq01 = CFD::Equality(kViewSchemaId, 0, 1);
  CFD eq02 = CFD::Equality(kViewSchemaId, 0, 2);
  auto s1 = Satisfies(rows, eq01, 3);
  auto s2 = Satisfies(rows, eq02, 3);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_FALSE(*s1);  // second row 3 != 4
  EXPECT_FALSE(*s2);  // first row 1 != 2
  std::vector<Tuple> good = {{1, 1, 1}, {2, 2, 2}};
  EXPECT_TRUE(*Satisfies(good, eq01, 3));
}

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.AddRelation("R", {"A", "B"}).ok());
    ASSERT_TRUE(cat_.AddRelation("S", {"C", "D"}).ok());
    db_ = std::make_unique<Database>(cat_);
  }
  Catalog cat_;
  std::unique_ptr<Database> db_;
};

TEST_F(EvalTest, SelectionAndProjection) {
  ASSERT_TRUE(db_->InsertText("R", {"1", "x"}).ok());
  ASSERT_TRUE(db_->InsertText("R", {"2", "y"}).ok());
  ASSERT_TRUE(db_->InsertText("R", {"1", "z"}).ok());

  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(a, "A", "1").ok());
  ASSERT_TRUE(b.Project(a, "B").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  auto rows = Evaluate(*db_, *v);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // x and z
}

TEST_F(EvalTest, JoinViaSelection) {
  ASSERT_TRUE(db_->InsertText("R", {"1", "k1"}).ok());
  ASSERT_TRUE(db_->InsertText("R", {"2", "k2"}).ok());
  ASSERT_TRUE(db_->InsertText("S", {"k1", "v1"}).ok());
  ASSERT_TRUE(db_->InsertText("S", {"k3", "v3"}).ok());

  SPCViewBuilder b(cat_);
  size_t r = b.AddAtom(0);
  size_t s = b.AddAtom(1);
  ASSERT_TRUE(b.SelectEq(r, "B", s, "C").ok());
  ASSERT_TRUE(b.Project(r, "A").ok());
  ASSERT_TRUE(b.Project(s, "D").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  auto rows = Evaluate(*db_, *v);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(cat_.pool().Text((*rows)[0][0]), "1");
  EXPECT_EQ(cat_.pool().Text((*rows)[0][1]), "v1");
}

TEST_F(EvalTest, SetSemanticsDedupe) {
  ASSERT_TRUE(db_->InsertText("R", {"1", "x"}).ok());
  ASSERT_TRUE(db_->InsertText("R", {"2", "x"}).ok());

  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.Project(a, "B").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());
  auto rows = Evaluate(*db_, *v);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(EvalTest, UnionMergesDisjuncts) {
  ASSERT_TRUE(db_->InsertText("R", {"1", "x"}).ok());
  ASSERT_TRUE(db_->InsertText("S", {"1", "x"}).ok());

  auto make = [&](RelationId rel) {
    SPCViewBuilder b(cat_);
    size_t a = b.AddAtom(rel);
    EXPECT_TRUE(
        b.Project(a, cat_.relation(rel).attr(0).name).ok());
    EXPECT_TRUE(
        b.Project(a, cat_.relation(rel).attr(1).name).ok());
    auto v = b.Build();
    EXPECT_TRUE(v.ok());
    return *v;
  };
  SPCUView u;
  u.disjuncts = {make(0), make(1)};
  auto rows = Evaluate(*db_, u);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);  // identical tuples merge under union
}

TEST_F(EvalTest, RowBudgetGuard) {
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(db_->InsertText("R", {std::to_string(i), "x"}).ok());
    ASSERT_TRUE(db_->InsertText("S", {std::to_string(i), "y"}).ok());
  }
  SPCViewBuilder b(cat_);
  b.AddAtom(0);
  b.AddAtom(1);
  auto v = b.Build();
  ASSERT_TRUE(v.ok());
  EvalOptions tight;
  tight.max_rows = 100;
  auto rows = Evaluate(*db_, *v, tight);
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EvalTest, ConstantOutputColumns) {
  ASSERT_TRUE(db_->InsertText("R", {"1", "x"}).ok());
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.Project(a, "A").ok());
  ASSERT_TRUE(b.ProjectConstant("CC", "44").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());
  auto rows = Evaluate(*db_, *v);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(cat_.pool().Text((*rows)[0][1]), "44");
}

TEST_F(EvalTest, SelfJoinUsesIndependentAtomCopies) {
  // sigma_{0.B = 1.A}(R x R): a tuple can join with a different copy.
  ASSERT_TRUE(db_->InsertText("R", {"1", "2"}).ok());
  ASSERT_TRUE(db_->InsertText("R", {"2", "3"}).ok());
  SPCViewBuilder b(cat_);
  size_t r0 = b.AddAtom(0);
  size_t r1 = b.AddAtom(0);
  ASSERT_TRUE(b.SelectEq(r0, "B", r1, "A").ok());
  ASSERT_TRUE(b.Project(r0, "A", "x").ok());
  ASSERT_TRUE(b.Project(r1, "B", "y").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());
  auto rows = Evaluate(*db_, *v);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);  // (1,2) |> (2,3) => (1,3)
  EXPECT_EQ(cat_.pool().Text((*rows)[0][0]), "1");
  EXPECT_EQ(cat_.pool().Text((*rows)[0][1]), "3");
}

TEST_F(EvalTest, EmptySourceYieldsEmptyView) {
  SPCViewBuilder b(cat_);
  b.AddAtom(0);
  auto v = b.Build();
  ASSERT_TRUE(v.ok());
  auto rows = Evaluate(*db_, *v);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(EvalTest, RelationRejectsBadTuples) {
  auto bad_arity = db_->InsertText("R", {"1"});
  EXPECT_FALSE(bad_arity.ok());
  EXPECT_FALSE(db_->InsertText("Missing", {"1", "2"}).ok());
}

}  // namespace
}  // namespace cfdprop
