#include "src/parser/parser.h"

#include <gtest/gtest.h>

#include "src/propagation/propagation.h"

namespace cfdprop {
namespace {

TEST(ParserTest, RelationsWithDomains) {
  auto spec = ParseSpec(
      "relation R(A, B, C)\n"
      "relation S(flag{0,1}, val)\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->catalog.num_relations(), 2u);
  const RelationSchema& s = spec->catalog.relation(1);
  EXPECT_TRUE(s.attr(0).domain.finite());
  EXPECT_EQ(s.attr(0).domain.values().size(), 2u);
  EXPECT_FALSE(s.attr(1).domain.finite());
}

TEST(ParserTest, SourceCFDs) {
  auto spec = ParseSpec(
      "relation R(A, B, C)\n"
      "cfd R: [A] -> B\n"
      "cfd R: [A=20, B] -> C=x\n"
      "cfd R: [] -> C=k\n"
      "eq R: A = B\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->source_cfds.size(), 4u);

  const CFD& fd = spec->source_cfds[0];
  EXPECT_TRUE(fd.IsPlainFD());
  EXPECT_EQ(fd.lhs, (std::vector<AttrIndex>{0}));
  EXPECT_EQ(fd.rhs, 1u);

  const CFD& cfd = spec->source_cfds[1];
  EXPECT_EQ(cfd.lhs.size(), 1u);  // wildcard B canonicalized away
  EXPECT_TRUE(cfd.rhs_pat.is_constant());
  EXPECT_EQ(spec->catalog.pool().Text(cfd.rhs_pat.value()), "x");

  const CFD& constant = spec->source_cfds[2];
  EXPECT_TRUE(constant.lhs.empty());
  EXPECT_EQ(constant.rhs, 2u);

  EXPECT_TRUE(spec->source_cfds[3].is_special_x());
}

TEST(ParserTest, ViewWithPiSigmaFrom) {
  auto spec = ParseSpec(
      "relation R(A, B)\n"
      "relation S(C, D)\n"
      "view V = pi(0.A as a, 1.D as d, \"44\" as cc)\n"
      "         sigma(0.B = 1.C, 0.A = \"7\") from(R, S)\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->views.count("V"), 1u);
  const SPCUView& v = spec->views.at("V");
  ASSERT_EQ(v.disjuncts.size(), 1u);
  const SPCView& d = v.disjuncts[0];
  EXPECT_EQ(d.atoms.size(), 2u);
  EXPECT_EQ(d.selections.size(), 2u);
  ASSERT_EQ(d.OutputArity(), 3u);
  EXPECT_EQ(d.output[0].name, "a");
  EXPECT_TRUE(d.output[2].is_constant);
  EXPECT_EQ(spec->FindViewColumn("V", "d"), 1u);
  EXPECT_EQ(spec->FindViewColumn("V", "zzz"), kNoAttr);
}

TEST(ParserTest, ViewWithoutPiProjectsAll) {
  auto spec = ParseSpec(
      "relation R(A, B)\n"
      "view V = from(R)\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->views.at("V").OutputArity(), 2u);
}

TEST(ParserTest, UnionViews) {
  auto spec = ParseSpec(
      "relation R(A, B)\n"
      "relation S(C, D)\n"
      "view V = pi(0.A as x) from(R) union pi(0.C as x) from(S)\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->views.at("V").disjuncts.size(), 2u);
}

TEST(ParserTest, ViewCFDsResolveOutputColumns) {
  auto spec = ParseSpec(
      "relation R(A, B, C)\n"
      "view V = pi(0.A as a, 0.B as b) from(R)\n"
      "cfd V: [a] -> b\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->view_cfds.size(), 1u);
  EXPECT_EQ(spec->view_cfds[0].first, "V");
  EXPECT_EQ(spec->view_cfds[0].second.relation, kViewSchemaId);
  EXPECT_EQ(spec->view_cfds[0].second.lhs, (std::vector<AttrIndex>{0}));
  EXPECT_EQ(spec->view_cfds[0].second.rhs, 1u);
}

TEST(ParserTest, InsertsBuildDatabase) {
  auto spec = ParseSpec(
      "relation R(A, B)\n"
      "insert R(1, hello)\n"
      "insert R(2, \"two words\")\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto db = spec->MakeDatabase();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->relation(0).size(), 2u);
  EXPECT_EQ(spec->catalog.pool().Text(db->relation(0).tuples()[1][1]),
            "two words");
}

TEST(ParserTest, CommentsAndSeparators) {
  auto spec = ParseSpec(
      "# leading comment\n"
      "relation R(A, B);  # trailing comment\n"
      ";\n"
      "cfd R: [A] -> B\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->source_cfds.size(), 1u);
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto e1 = ParseSpec("relation R(A, B)\ncfd Q: [A] -> B\n");
  ASSERT_FALSE(e1.ok());
  EXPECT_NE(e1.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(e1.status().message().find("unknown relation"),
            std::string::npos);

  auto e2 = ParseSpec("relation R(A, B)\ncfd R: [Z] -> B\n");
  ASSERT_FALSE(e2.ok());
  EXPECT_NE(e2.status().message().find("unknown attribute"),
            std::string::npos);

  auto e3 = ParseSpec("relation R(A, B)\ninsert R(1)\n");
  ASSERT_FALSE(e3.ok());
  EXPECT_NE(e3.status().message().find("arity"), std::string::npos);

  auto e4 = ParseSpec("bogus stuff\n");
  ASSERT_FALSE(e4.ok());

  auto e5 = ParseSpec("relation R(A, \"unterminated\n");
  ASSERT_FALSE(e5.ok());
}

TEST(ParserTest, DuplicateViewNameRejected) {
  auto e = ParseSpec(
      "relation R(A, B)\n"
      "view V = from(R)\n"
      "view V = from(R)\n");
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.status().message().find("duplicate"), std::string::npos);
}

TEST(ParserTest, FormatCFDRoundTripsThroughParser) {
  auto spec = ParseSpec(
      "relation R(A, B, C)\n"
      "cfd R: [A=20, B] -> C=x\n"
      "eq R: A = C\n");
  ASSERT_TRUE(spec.ok());
  const RelationSchema& schema = spec->catalog.relation(0);
  auto name = [&](AttrIndex i) { return schema.attr(i).name; };

  std::string text = "relation R(A, B, C)\n";
  for (const CFD& c : spec->source_cfds) {
    text += FormatCFD(c, spec->catalog.pool(), "R", name) + "\n";
  }
  auto reparsed = ParseSpec(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  ASSERT_EQ(reparsed->source_cfds.size(), spec->source_cfds.size());
  for (size_t i = 0; i < spec->source_cfds.size(); ++i) {
    EXPECT_EQ(reparsed->source_cfds[i], spec->source_cfds[i]);
  }
}

TEST(ParserTest, SigmaMutationDirectives) {
  auto spec = ParseSpec(
      "relation R(A, B, C)\n"
      "cfd R: [A] -> B\n"
      "add-cfd R: [A=20] -> C=7\n"
      "drop-cfd R: [A] -> B\n"
      "add-cfd R: [B] -> C\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  // Declarations and mutations land in separate lists, file order kept.
  EXPECT_EQ(spec->source_cfds.size(), 1u);
  ASSERT_EQ(spec->sigma_mutations.size(), 3u);
  EXPECT_TRUE(spec->sigma_mutations[0].add);
  EXPECT_FALSE(spec->sigma_mutations[1].add);
  EXPECT_TRUE(spec->sigma_mutations[2].add);
  EXPECT_EQ(spec->sigma_mutations[1].cfd, spec->source_cfds[0]);
  EXPECT_EQ(spec->sigma_mutations[0].cfd.lhs_pats.size(), 1u);
  EXPECT_TRUE(spec->sigma_mutations[0].cfd.lhs_pats[0].is_constant());

  // Mutations target the registered source sigma, never a view.
  auto on_view = ParseSpec(
      "relation R(A, B)\n"
      "view V = from(R)\n"
      "add-cfd V: [A] -> B\n");
  EXPECT_FALSE(on_view.ok());
}

TEST(ParserTest, UnionStatementComposesDeclaredViews) {
  auto spec = ParseSpec(
      "relation R(A, B)\n"
      "relation S(C, D)\n"
      "view V1 = pi(0.A as x) sigma(0.B = \"1\") from(R)\n"
      "view V2 = pi(0.C as x) from(S)\n"
      "view V3 = pi(0.A as x) from(R) union pi(0.C as x) from(S)\n"
      "union U = V1, V2\n"
      "union W = U, V3\n");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->views.at("U").disjuncts.size(), 2u);
  // Members contribute all their disjuncts (U's two plus V3's two).
  EXPECT_EQ(spec->views.at("W").disjuncts.size(), 4u);
  EXPECT_EQ(spec->view_names.back(), "W");

  // Union-incompatible members (different output arity) are rejected, as
  // are unknown members and duplicate names.
  EXPECT_FALSE(ParseSpec(
                   "relation R(A, B)\n"
                   "view V1 = pi(0.A as x) from(R)\n"
                   "view V2 = pi(0.A as x, 0.B as y) from(R)\n"
                   "union U = V1, V2\n")
                   .ok());
  EXPECT_FALSE(ParseSpec("relation R(A, B)\n"
                         "union U = V9\n")
                   .ok());
  EXPECT_FALSE(ParseSpec("relation R(A, B)\n"
                         "view V1 = from(R)\n"
                         "union V1 = V1\n")
                   .ok());
}

TEST(ParserTest, ServeStatementDeclaresTheRound) {
  auto spec = ParseSpec(
      "relation R(A, B)\n"
      "cfd R: [A] -> B\n"
      "view V1 = pi(0.A as A) from(R)\n"
      "view V2 = pi(0.B as B) from(R)\n"
      "serve V2, V1, V2\n"
      "serve V1\n");  // a second statement appends
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->round_views,
            (std::vector<std::string>{"V2", "V1", "V2", "V1"}));
  EXPECT_EQ(spec->ServingRound(), spec->round_views);

  // Without a serve statement the round is every view once, in order.
  auto plain = ParseSpec(
      "relation R(A, B)\n"
      "view V1 = pi(0.A as A) from(R)\n"
      "view V2 = pi(0.B as B) from(R)\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->round_views.empty());
  EXPECT_EQ(plain->ServingRound(), plain->view_names);

  // serve must name declared views.
  auto bad = ParseSpec(
      "relation R(A, B)\n"
      "view V1 = pi(0.A as A) from(R)\n"
      "serve V1, Nope\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("undeclared view 'Nope'"),
            std::string::npos);
}

TEST(ParserTest, FullPaperSpecDrivesPropagation) {
  // A compact version of examples/specs/customers.spec.
  auto spec = ParseSpec(
      "relation R1(AC, city)\n"
      "relation R3(AC, city)\n"
      "cfd R1: [AC] -> city\n"
      "cfd R3: [AC] -> city\n"
      "view V = pi(0.AC as AC, 0.city as city, \"44\" as CC) from(R1)\n"
      "   union pi(0.AC as AC, 0.city as city, \"31\" as CC) from(R3)\n"
      "cfd V: [AC] -> city\n"
      "cfd V: [CC=44, AC] -> city\n");
  ASSERT_TRUE(spec.ok()) << spec.status();

  const SPCUView& view = spec->views.at("V");
  auto r_plain = IsPropagated(spec->catalog, view, spec->source_cfds,
                              spec->view_cfds[0].second);
  auto r_cond = IsPropagated(spec->catalog, view, spec->source_cfds,
                             spec->view_cfds[1].second);
  ASSERT_TRUE(r_plain.ok() && r_cond.ok());
  EXPECT_FALSE(*r_plain);  // AC -> city fails across the union
  EXPECT_TRUE(*r_cond);    // [CC=44, AC] -> city holds
}

}  // namespace
}  // namespace cfdprop
