#include "src/propagation/propagation.h"

#include <gtest/gtest.h>

namespace cfdprop {
namespace {

// The running example of the paper (Example 1.1): customer relations for
// the UK (R1), US (R2) and the Netherlands (R3), integrated by the SPCU
// view V = Q1 union Q2 union Q3 where Qi appends a country code CC.
//
// View output columns: 0=AC 1=phn 2=name 3=street 4=city 5=zip 6=CC.
class PaperExampleTest : public ::testing::Test {
 protected:
  static constexpr AttrIndex kAC = 0, kPhn = 1, kName = 2, kStreet = 3,
                             kCity = 4, kZip = 5, kCC = 6;

  void SetUp() override {
    std::vector<std::string> attrs = {"AC",   "phn",  "name",
                                      "street", "city", "zip"};
    for (const char* name : {"R1", "R2", "R3"}) {
      ASSERT_TRUE(cat_.AddRelation(name, attrs).ok());
    }
    for (int i = 0; i < 3; ++i) {
      view_.disjuncts.push_back(MakeDisjunct(i, kCountryCodes[i]));
    }
    ASSERT_TRUE(view_.Validate(cat_).ok());

    // f1: R1(zip -> street), f2: R1(AC -> city), f3: R3(AC -> city).
    sigma_.push_back(CFD::FD(0, {kZip}, kStreet).value());
    sigma_.push_back(CFD::FD(0, {kAC}, kCity).value());
    sigma_.push_back(CFD::FD(2, {kAC}, kCity).value());
    // cfd1: R1([AC=20] -> [city=ldn]), cfd2: R3([AC=20] -> [city=Ams]).
    sigma_.push_back(CFD::Make(0, {kAC}, {Const("20")}, kCity,
                               Const("ldn"))
                         .value());
    sigma_.push_back(CFD::Make(2, {kAC}, {Const("20")}, kCity,
                               Const("Amsterdam"))
                         .value());
  }

  SPCView MakeDisjunct(RelationId rel, const char* cc) {
    SPCViewBuilder b(cat_);
    size_t atom = b.AddAtom(rel);
    const RelationSchema& schema = cat_.relation(rel);
    for (AttrIndex i = 0; i < schema.arity(); ++i) {
      EXPECT_TRUE(b.Project(atom, schema.attr(i).name).ok());
    }
    EXPECT_TRUE(b.ProjectConstant("CC", cc).ok());
    auto v = b.Build();
    EXPECT_TRUE(v.ok());
    return *v;
  }

  PatternValue Const(const char* s) {
    return PatternValue::Constant(cat_.pool().Intern(s));
  }
  PatternValue Wc() { return PatternValue::Wildcard(); }

  CFD ViewCFD(std::vector<AttrIndex> lhs, std::vector<PatternValue> pats,
              AttrIndex rhs, PatternValue rp) {
    return CFD::Make(kViewSchemaId, std::move(lhs), std::move(pats), rhs, rp)
        .value();
  }

  bool Propagated(const CFD& phi) {
    auto r = IsPropagated(cat_, view_, sigma_, phi);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() && *r;
  }

  static constexpr const char* kCountryCodes[3] = {"44", "01", "31"};

  Catalog cat_;
  SPCUView view_;
  std::vector<CFD> sigma_;
};

TEST_F(PaperExampleTest, Phi1IsPropagated) {
  // phi1: R([CC=44, zip] -> [street]).
  CFD phi1 = ViewCFD({kCC, kZip}, {Const("44"), Wc()}, kStreet, Wc());
  EXPECT_TRUE(Propagated(phi1));
}

TEST_F(PaperExampleTest, PlainZipFDIsNotPropagated) {
  // f1 as a standard FD on the view fails: the US source has no zip FD.
  CFD fd = ViewCFD({kZip}, {Wc()}, kStreet, Wc());
  EXPECT_FALSE(Propagated(fd));
}

TEST_F(PaperExampleTest, Phi2AndPhi3ArePropagated) {
  CFD phi2 = ViewCFD({kCC, kAC}, {Const("44"), Wc()}, kCity, Wc());
  CFD phi3 = ViewCFD({kCC, kAC}, {Const("31"), Wc()}, kCity, Wc());
  EXPECT_TRUE(Propagated(phi2));
  EXPECT_TRUE(Propagated(phi3));
}

TEST_F(PaperExampleTest, PlainACFDIsNotPropagated) {
  // Area code 20 is both London and Amsterdam: AC -> city fails on the
  // union (tuples t1, t5 of Fig. 1).
  CFD fd = ViewCFD({kAC}, {Wc()}, kCity, Wc());
  EXPECT_FALSE(Propagated(fd));
}

TEST_F(PaperExampleTest, USConditionIsNotPropagated) {
  // No FD holds on R2, so conditioning on CC=01 does not help.
  CFD phi = ViewCFD({kCC, kAC}, {Const("01"), Wc()}, kCity, Wc());
  EXPECT_FALSE(Propagated(phi));
}

TEST_F(PaperExampleTest, Phi4AndPhi5WithConstantsArePropagated) {
  CFD phi4 =
      ViewCFD({kCC, kAC}, {Const("44"), Const("20")}, kCity, Const("ldn"));
  CFD phi5 = ViewCFD({kCC, kAC}, {Const("31"), Const("20")}, kCity,
                     Const("Amsterdam"));
  EXPECT_TRUE(Propagated(phi4));
  EXPECT_TRUE(Propagated(phi5));
}

TEST_F(PaperExampleTest, Phi4WithoutCCIsNotPropagated) {
  // Example 2.2: dropping CC from phi4 breaks it (Amsterdam's AC 20).
  CFD phi = ViewCFD({kAC}, {Const("20")}, kCity, Const("ldn"));
  EXPECT_FALSE(Propagated(phi));
}

TEST_F(PaperExampleTest, Phi6IsNotPropagated) {
  // phi6: CC, AC, phn -> street is not propagated (Section 1, data
  // cleaning discussion).
  CFD phi6 = ViewCFD({kCC, kAC, kPhn}, {Wc(), Wc(), Wc()}, kStreet, Wc());
  EXPECT_FALSE(Propagated(phi6));
}

TEST_F(PaperExampleTest, WrongConstantIsNotPropagated) {
  CFD phi =
      ViewCFD({kCC, kAC}, {Const("44"), Const("20")}, kCity, Const("paris"));
  EXPECT_FALSE(Propagated(phi));
}

TEST_F(PaperExampleTest, ImpossibleLhsIsVacuouslyPropagated) {
  // CC is 44/01/31 per disjunct; conditioning on CC=99 matches nothing.
  CFD phi = ViewCFD({kCC, kZip}, {Const("99"), Wc()}, kStreet, Wc());
  EXPECT_TRUE(Propagated(phi));
}

// --- smaller structural cases -----------------------------------------

class PropagationBasicsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.AddRelation("R", {"A", "B", "C"}).ok());
    ASSERT_TRUE(cat_.AddRelation("S", {"D", "E"}).ok());
  }
  PatternValue Wc() { return PatternValue::Wildcard(); }
  PatternValue Const(const char* s) {
    return PatternValue::Constant(cat_.pool().Intern(s));
  }
  Catalog cat_;
};

TEST_F(PropagationBasicsTest, ProjectionPreservesContainedFDs) {
  // V = pi_{A,B}(R), f = A -> B: propagated as-is.
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.Project(a, "A").ok());
  ASSERT_TRUE(b.Project(a, "B").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  std::vector<CFD> sigma = {CFD::FD(0, {0}, 1).value()};
  CFD phi = CFD::Make(kViewSchemaId, {0}, {Wc()}, 1, Wc()).value();
  auto r = IsPropagated(cat_, *v, sigma, phi);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);

  // But B -> A was never a source FD.
  CFD psi = CFD::Make(kViewSchemaId, {1}, {Wc()}, 0, Wc()).value();
  r = IsPropagated(cat_, *v, sigma, psi);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST_F(PropagationBasicsTest, ProjectionShortcutsTransitively) {
  // V = pi_{A,C}(R), {A -> B, B -> C} |= A -> C on the view.
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.Project(a, "A").ok());
  ASSERT_TRUE(b.Project(a, "C").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  std::vector<CFD> sigma = {CFD::FD(0, {0}, 1).value(),
                            CFD::FD(0, {1}, 2).value()};
  CFD phi = CFD::Make(kViewSchemaId, {0}, {Wc()}, 1, Wc()).value();
  auto r = IsPropagated(cat_, *v, sigma, phi);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST_F(PropagationBasicsTest, SelectionEqualityIsPropagated) {
  // V = sigma_{A=B}(R): the view satisfies the x-CFD A = B.
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectEq(a, "A", a, "B").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  CFD eq = CFD::Equality(kViewSchemaId, 0, 1);
  auto r = IsPropagated(cat_, *v, {}, eq);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);

  CFD eq_ac = CFD::Equality(kViewSchemaId, 0, 2);
  r = IsPropagated(cat_, *v, {}, eq_ac);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST_F(PropagationBasicsTest, SelectionConstantIsPropagated) {
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(a, "A", "7").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  CFD k = CFD::ConstantColumn(kViewSchemaId, 0, cat_.pool().Intern("7"));
  auto r = IsPropagated(cat_, *v, {}, k);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);

  CFD wrong = CFD::ConstantColumn(kViewSchemaId, 0, cat_.pool().Intern("8"));
  r = IsPropagated(cat_, *v, {}, wrong);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST_F(PropagationBasicsTest, JoinTransfersFDsAcrossAtoms) {
  // V = sigma_{C=D}(R x S) with R: A -> C and S: D -> E.
  // Then A -> E holds on the view (A -> C = D -> E).
  SPCViewBuilder b(cat_);
  size_t r = b.AddAtom(0);
  size_t s = b.AddAtom(1);
  ASSERT_TRUE(b.SelectEq(r, "C", s, "D").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());
  // Output columns: 0=A 1=B 2=C 3=D 4=E.

  std::vector<CFD> sigma = {CFD::FD(0, {0}, 2).value(),
                            CFD::FD(1, {0}, 1).value()};
  CFD phi = CFD::Make(kViewSchemaId, {0}, {Wc()}, 4, Wc()).value();
  auto res = IsPropagated(cat_, *v, sigma, phi);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(*res);

  // Without the join condition the FDs do not connect.
  SPCViewBuilder b2(cat_);
  b2.AddAtom(0);
  b2.AddAtom(1);
  auto v2 = b2.Build();
  ASSERT_TRUE(v2.ok());
  res = IsPropagated(cat_, *v2, sigma, phi);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(*res);
}

TEST_F(PropagationBasicsTest, AlwaysEmptyViewPropagatesEverything) {
  // Example 3.1: sigma forces B = b1 on all tuples, the view selects
  // B = b2: the view is always empty and satisfies any CFD.
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(a, "B", "b2").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  std::vector<CFD> sigma = {
      CFD::Make(0, {0}, {Wc()}, 1, Const("b1")).value()};
  CFD arbitrary = CFD::Make(kViewSchemaId, {2}, {Wc()}, 0, Wc()).value();
  auto r = IsPropagated(cat_, *v, sigma, arbitrary);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST_F(PropagationBasicsTest, UnionRequiresAllDisjuncts) {
  // V = R union (renamed) R with different constant bindings.
  SPCViewBuilder b1(cat_);
  size_t a1 = b1.AddAtom(0);
  ASSERT_TRUE(b1.SelectConst(a1, "A", "1").ok());
  auto v1 = b1.Build();
  ASSERT_TRUE(v1.ok());

  SPCViewBuilder b2(cat_);
  size_t a2 = b2.AddAtom(0);
  ASSERT_TRUE(b2.SelectConst(a2, "A", "2").ok());
  auto v2 = b2.Build();
  ASSERT_TRUE(v2.ok());

  SPCUView u;
  u.disjuncts = {*v1, *v2};

  // A is constant within each disjunct but not across the union.
  Value one = cat_.pool().Intern("1");
  CFD k1 = CFD::ConstantColumn(kViewSchemaId, 0, one);
  auto r1 = IsPropagated(cat_, SPCUView(*v1), {}, k1);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  auto ru = IsPropagated(cat_, u, {}, k1);
  ASSERT_TRUE(ru.ok());
  EXPECT_FALSE(*ru);

  // An FD that holds in each disjunct can fail across the union:
  // B -> A with sigma = {} fails even per disjunct...
  CFD ba = CFD::Make(kViewSchemaId, {1}, {Wc()}, 0, Wc()).value();
  auto rd = IsPropagated(cat_, SPCUView(*v1), {}, ba);
  ASSERT_TRUE(rd.ok());
  EXPECT_TRUE(*rd);  // ...within one disjunct A is constant, so B -> A holds
  auto rdu = IsPropagated(cat_, u, {}, ba);
  ASSERT_TRUE(rdu.ok());
  EXPECT_FALSE(*rdu);  // but across disjuncts the same B maps to A=1 and A=2
}

TEST_F(PropagationBasicsTest, RejectsMalformedInputs) {
  SPCViewBuilder b(cat_);
  b.AddAtom(0);
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  // phi must be tagged as a view CFD.
  CFD phi = CFD::FD(0, {0}, 1).value();
  auto r = IsPropagated(cat_, *v, {}, phi);
  EXPECT_FALSE(r.ok());

  // phi out of the view arity.
  CFD oob = CFD::Make(kViewSchemaId, {0}, {Wc()}, 9, Wc()).value();
  r = IsPropagated(cat_, *v, {}, oob);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace cfdprop
