#include "src/schema/schema.h"

#include <gtest/gtest.h>

#include "src/schema/domain.h"

namespace cfdprop {
namespace {

TEST(DomainTest, InfiniteContainsEverything) {
  Domain d = Domain::Infinite("string");
  EXPECT_FALSE(d.finite());
  EXPECT_TRUE(d.Contains(0));
  EXPECT_TRUE(d.Contains(123456));
}

TEST(DomainTest, FiniteMembership) {
  ValuePool pool;
  Value a = pool.Intern("a");
  Value b = pool.Intern("b");
  Value c = pool.Intern("c");
  Domain d = Domain::Finite("abc", {a, b});
  EXPECT_TRUE(d.finite());
  EXPECT_TRUE(d.Contains(a));
  EXPECT_TRUE(d.Contains(b));
  EXPECT_FALSE(d.Contains(c));
  EXPECT_EQ(d.values().size(), 2u);
}

TEST(DomainTest, BooleanHasTwoValues) {
  ValuePool pool;
  Domain d = Domain::Boolean(pool);
  EXPECT_TRUE(d.finite());
  EXPECT_EQ(d.values().size(), 2u);
}

TEST(CatalogTest, AddAndFindRelation) {
  Catalog cat;
  auto r = cat.AddRelation("R", {"A", "B", "C"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(cat.num_relations(), 1u);
  EXPECT_EQ(cat.FindRelation("R"), *r);
  EXPECT_EQ(cat.FindRelation("S"), kNoRelation);

  const RelationSchema& schema = cat.relation(*r);
  EXPECT_EQ(schema.arity(), 3u);
  EXPECT_EQ(schema.FindAttr("B"), 1u);
  EXPECT_EQ(schema.FindAttr("Z"), kNoAttr);
}

TEST(CatalogTest, RejectsDuplicateRelationName) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation("R", {"A"}).ok());
  auto dup = cat.AddRelation("R", {"B"});
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, RejectsDuplicateAttributeName) {
  Catalog cat;
  auto r = cat.AddRelation("R", {"A", "A"});
  EXPECT_FALSE(r.ok());
}

TEST(CatalogTest, RejectsEmptyRelation) {
  Catalog cat;
  auto r = cat.AddRelation("R", std::vector<std::string>{});
  EXPECT_FALSE(r.ok());
}

TEST(CatalogTest, FiniteDomainDetection) {
  Catalog cat;
  ASSERT_TRUE(cat.AddRelation("R", {"A", "B"}).ok());
  EXPECT_FALSE(cat.HasFiniteDomainAttr());

  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"X", Domain::Infinite()});
  attrs.push_back(Attribute{"F", Domain::Boolean(cat.pool())});
  ASSERT_TRUE(cat.AddRelation("S", std::move(attrs)).ok());
  EXPECT_TRUE(cat.HasFiniteDomainAttr());
  EXPECT_FALSE(cat.relation(0).HasFiniteDomainAttr());
  EXPECT_TRUE(cat.relation(1).HasFiniteDomainAttr());
}

TEST(CatalogTest, RejectsEmptyFiniteDomain) {
  Catalog cat;
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"F", Domain::Finite("empty", {})});
  auto r = cat.AddRelation("S", std::move(attrs));
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace cfdprop
