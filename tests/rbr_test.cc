#include "src/cover/rbr.h"

#include <gtest/gtest.h>

#include "src/cfd/implication.h"

namespace cfdprop {
namespace {

constexpr size_t kArity = 8;

class RBRTest : public ::testing::Test {
 protected:
  Value V(const char* s) { return pool_.Intern(s); }
  CFD FD(std::vector<AttrIndex> lhs, AttrIndex rhs) {
    return CFD::FD(0, std::move(lhs), rhs).value();
  }
  CFD Pat(std::vector<AttrIndex> lhs, std::vector<PatternValue> pats,
          AttrIndex rhs, PatternValue rp) {
    return CFD::Make(0, std::move(lhs), std::move(pats), rhs, rp).value();
  }
  std::vector<CFD> Run(std::vector<CFD> sigma, std::vector<AttrIndex> drop) {
    auto r = RBR(std::move(sigma), drop, kArity);
    EXPECT_TRUE(r.ok()) << r.status();
    EXPECT_FALSE(r->truncated);
    return r.ok() ? r->cover : std::vector<CFD>{};
  }

  ValuePool pool_;
};

TEST_F(RBRTest, Example42ResolventFromThePaper) {
  // phi1 = ([A1,A2] -> A, (_, c || a)), phi2 = ([A,A2,B1] -> B,
  // (_, c, b || _)); the paper's A-resolvent is
  // ([A1,A2,B1] -> B, (_, c, b || _)). Our constant-RHS canonicalization
  // first reduces phi1 to ([A2] -> A, (c || a)) (the wildcard A1 is
  // redundant for a constant RHS), so the computed resolvent is the
  // strictly stronger ([A2,B1] -> B, (c, b || _)), which implies the
  // paper's. Attribute ids: A1=0, A2=1, A=2, B1=3, B=4.
  PatternValue wc = PatternValue::Wildcard();
  PatternValue pc = PatternValue::Constant(V("c"));
  PatternValue pa = PatternValue::Constant(V("a"));
  PatternValue pb = PatternValue::Constant(V("b"));
  CFD phi1 = Pat({0, 1}, {wc, pc}, 2, pa);
  EXPECT_EQ(phi1.lhs, (std::vector<AttrIndex>{1}));  // canonicalized
  CFD phi2 = Pat({2, 1, 3}, {wc, pc, pb}, 4, wc);

  auto r = Resolvent(phi1, phi2, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lhs, (std::vector<AttrIndex>{1, 3}));
  EXPECT_EQ(r->lhs_pats[0], pc);
  EXPECT_EQ(r->lhs_pats[1], pb);
  EXPECT_EQ(r->rhs, 4u);
  EXPECT_EQ(r->rhs_pat, wc);

  // The paper's resolvent follows from ours.
  CFD paper = Pat({0, 1, 3}, {wc, pc, pb}, 4, wc);
  auto implied = Implies({*r}, paper, kArity);
  ASSERT_TRUE(implied.ok());
  EXPECT_TRUE(*implied);
}

TEST_F(RBRTest, ResolventRequiresOrderCondition) {
  // t1[A] = 'a' but t2's LHS pattern at A is 'b': a !<= b, undefined.
  PatternValue wc = PatternValue::Wildcard();
  CFD phi1 = Pat({0}, {wc}, 2, PatternValue::Constant(V("a")));
  CFD phi2 = Pat({2}, {PatternValue::Constant(V("b"))}, 3, wc);
  EXPECT_FALSE(Resolvent(phi1, phi2, 2).has_value());

  // With matching constants it is defined.
  CFD phi2b = Pat({2}, {PatternValue::Constant(V("a"))}, 3, wc);
  EXPECT_TRUE(Resolvent(phi1, phi2b, 2).has_value());

  // Wildcard RHS is <= only a wildcard LHS pattern.
  CFD phi1w = Pat({0}, {wc}, 2, wc);
  CFD phi2w = Pat({2}, {wc}, 3, wc);
  EXPECT_TRUE(Resolvent(phi1w, phi2w, 2).has_value());
  EXPECT_FALSE(Resolvent(phi1w, phi2b, 2).has_value());
}

TEST_F(RBRTest, ResolventUndefinedOnIncomparableOverlap) {
  // Shared attribute 1 carries 'a' in phi1 and 'b' in phi2: oplus fails.
  PatternValue wc = PatternValue::Wildcard();
  CFD phi1 = Pat({0, 1}, {wc, PatternValue::Constant(V("a"))}, 2, wc);
  CFD phi2 = Pat({2, 1}, {wc, PatternValue::Constant(V("b"))}, 3, wc);
  EXPECT_FALSE(Resolvent(phi1, phi2, 2).has_value());
}

TEST_F(RBRTest, DropSingleAttributeShortcutsFDs) {
  // {A -> B, B -> C}, drop B: cover of {A, C} must contain A -> C.
  std::vector<CFD> cover = Run({FD({0}, 1), FD({1}, 2)}, {1});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], FD({0}, 2));
}

TEST_F(RBRTest, DropPreservesUnrelatedCFDs) {
  std::vector<CFD> cover = Run({FD({0}, 1), FD({2}, 3)}, {5});
  EXPECT_EQ(cover.size(), 2u);
}

TEST_F(RBRTest, ChainOfDrops) {
  // A -> B -> C -> D, drop {B, C}: A -> D survives.
  std::vector<CFD> cover =
      Run({FD({0}, 1), FD({1}, 2), FD({2}, 3)}, {1, 2});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], FD({0}, 3));
}

TEST_F(RBRTest, OutputNeverMentionsDroppedAttributes) {
  std::vector<CFD> sigma = {FD({0, 1}, 2), FD({2}, 3), FD({3, 4}, 5),
                            FD({0}, 4)};
  std::vector<CFD> cover = Run(sigma, {2, 3});
  for (const CFD& c : cover) {
    EXPECT_FALSE(c.Mentions(2));
    EXPECT_FALSE(c.Mentions(3));
  }
}

TEST_F(RBRTest, CoverIsSoundAndCompleteOnY) {
  // Proposition 4.4: RBR(Sigma, U-Y) covers Sigma+[Y]. Here Y = {0,3,4}.
  std::vector<CFD> sigma = {FD({0}, 1), FD({1}, 2), FD({2}, 3),
                            FD({0, 3}, 4)};
  std::vector<CFD> cover = Run(sigma, {1, 2});
  // A -> D (via B, C) must be derivable from the cover.
  auto implied = Implies(cover, FD({0}, 3), kArity);
  ASSERT_TRUE(implied.ok());
  EXPECT_TRUE(*implied);
  // And A -> E via A -> D and AD -> E.
  implied = Implies(cover, FD({0}, 4), kArity);
  ASSERT_TRUE(implied.ok());
  EXPECT_TRUE(*implied);
  // Soundness: everything in the cover is implied by sigma.
  for (const CFD& c : cover) {
    auto r = Implies(sigma, c, kArity);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(*r) << "unsound member of RBR cover";
  }
}

TEST_F(RBRTest, ConstantsBlockResolution) {
  // ([A=a] -> B=b) and ([B=c] -> C) cannot resolve on B (b !<= c);
  // dropping B leaves nothing involving A, C.
  PatternValue wc = PatternValue::Wildcard();
  CFD f1 = Pat({0}, {PatternValue::Constant(V("a"))}, 1,
               PatternValue::Constant(V("b")));
  CFD f2 = Pat({1}, {PatternValue::Constant(V("c"))}, 2, wc);
  std::vector<CFD> cover = Run({f1, f2}, {1});
  EXPECT_TRUE(cover.empty());

  // With aligned constants the resolvent survives.
  CFD f2b = Pat({1}, {PatternValue::Constant(V("b"))}, 2,
                PatternValue::Constant(V("d")));
  cover = Run({f1, f2b}, {1});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].lhs, (std::vector<AttrIndex>{0}));
  EXPECT_EQ(cover[0].rhs, 2u);
  EXPECT_EQ(cover[0].rhs_pat, PatternValue::Constant(V("d")));
}

TEST_F(RBRTest, EmptyLhsConstantResolves) {
  // (() -> B=b) with ([B=b] -> C=c): dropping B yields (() -> C=c).
  CFD k;
  k.relation = 0;
  k.rhs = 1;
  k.rhs_pat = PatternValue::Constant(V("b"));
  CFD f = Pat({1}, {PatternValue::Constant(V("b"))}, 2,
              PatternValue::Constant(V("c")));
  std::vector<CFD> cover = Run({k, f}, {1});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_TRUE(cover[0].lhs.empty());
  EXPECT_EQ(cover[0].rhs, 2u);
  EXPECT_EQ(cover[0].rhs_pat, PatternValue::Constant(V("c")));
}

TEST_F(RBRTest, TruncationModeReturnsSubset) {
  // Example 4.1 blow-up with n = 6: Ai -> Ci, Bi -> Ci, C1..C6 -> D over
  // 19 attributes; dropping all Ci forces 2^6 combinations.
  const size_t n = 6;
  const size_t arity = 3 * n + 1;
  std::vector<CFD> sigma;
  std::vector<AttrIndex> cs;
  for (size_t i = 0; i < n; ++i) {
    AttrIndex a = i, b = n + i, c = 2 * n + i;
    sigma.push_back(CFD::FD(0, {a}, c).value());
    sigma.push_back(CFD::FD(0, {b}, c).value());
    cs.push_back(c);
  }
  sigma.push_back(CFD::FD(0, cs, 3 * n).value());

  RBROptions tight;
  tight.max_cover_size = 16;
  tight.on_budget = RBROptions::OnBudget::kTruncate;
  tight.intermediate_mincover = false;
  std::vector<AttrIndex> drop(cs.begin(), cs.end());
  auto r = RBR(sigma, drop, arity, tight);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated);
  for (const CFD& c : r->cover) {
    for (AttrIndex d : drop) EXPECT_FALSE(c.Mentions(d));
  }

  RBROptions err;
  err.max_cover_size = 16;
  err.on_budget = RBROptions::OnBudget::kError;
  err.intermediate_mincover = false;
  auto r2 = RBR(sigma, drop, arity, err);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(RBRTest, RejectsSpecialX) {
  auto r = RBR({CFD::Equality(0, 0, 1)}, {0}, kArity);
  EXPECT_FALSE(r.ok());
}

TEST_F(RBRTest, IsForbiddenPatternDetection) {
  PatternValue pa = PatternValue::Constant(V("a"));
  PatternValue pb = PatternValue::Constant(V("b"));
  CFD forbidden = Pat({0, 1}, {pa, pb}, 0, pb);  // [A=a,B=b] -> A=b
  EXPECT_TRUE(forbidden.IsForbiddenPattern());

  CFD normal = Pat({0}, {pa}, 1, pb);
  EXPECT_FALSE(normal.IsForbiddenPattern());
  CFD fd = FD({0}, 1);
  EXPECT_FALSE(fd.IsForbiddenPattern());
}

TEST_F(RBRTest, ForbiddenResolventFromConflictingProducers) {
  // ([A=a] -> C=1) and ([B=b] -> C=2): tuples with A=a and B=b would need
  // C = 1 = 2, so the pattern (A=a, B=b) is forbidden.
  PatternValue pa = PatternValue::Constant(V("a"));
  PatternValue pb = PatternValue::Constant(V("b"));
  CFD p1 = Pat({0}, {pa}, 2, PatternValue::Constant(V("1")));
  CFD p2 = Pat({1}, {pb}, 2, PatternValue::Constant(V("2")));

  bool unconditional = false;
  auto fb = ForbiddenResolvent(p1, p2, 2, &unconditional);
  ASSERT_TRUE(fb.has_value());
  EXPECT_FALSE(unconditional);
  EXPECT_TRUE(fb->IsForbiddenPattern());
  EXPECT_FALSE(fb->Mentions(2));
  // Same constants: no conflict.
  CFD p3 = Pat({1}, {pb}, 2, PatternValue::Constant(V("1")));
  EXPECT_FALSE(ForbiddenResolvent(p1, p3, 2, &unconditional).has_value());
}

TEST_F(RBRTest, ForbiddenResolventUnconditional) {
  // Two unconditional producers with distinct constants: every tuple is
  // forbidden — the relation is inconsistent.
  CFD k1, k2;
  k1.relation = k2.relation = 0;
  k1.rhs = k2.rhs = 2;
  k1.rhs_pat = PatternValue::Constant(V("1"));
  k2.rhs_pat = PatternValue::Constant(V("2"));
  bool unconditional = false;
  auto fb = ForbiddenResolvent(k1, k2, 2, &unconditional);
  EXPECT_FALSE(fb.has_value());
  EXPECT_TRUE(unconditional);

  auto r = RBR({k1, k2}, {2}, kArity);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->inconsistent);
}

TEST_F(RBRTest, ForbiddenConstraintSurvivesProjection) {
  // ([A=6] -> C=2) + ([] -> C=4): dropping C must keep "no tuple with
  // A=6" — the completeness gap that motivated forbidden resolvents.
  PatternValue p6 = PatternValue::Constant(V("6"));
  CFD c1 = Pat({0}, {p6}, 2, PatternValue::Constant(V("2")));
  CFD c2;
  c2.relation = 0;
  c2.rhs = 2;
  c2.rhs_pat = PatternValue::Constant(V("4"));

  std::vector<CFD> cover = Run({c1, c2}, {2});
  ASSERT_FALSE(cover.empty());
  // The forbidden pattern implies [A=6] -> B = anything (vacuously).
  CFD probe = Pat({0}, {p6}, 1, PatternValue::Constant(V("99")));
  auto implied = Implies(cover, probe, kArity);
  ASSERT_TRUE(implied.ok());
  EXPECT_TRUE(*implied);
}

TEST_F(RBRTest, ForbiddenProjectionThroughProducer) {
  // Forbidden pattern (A=a, D=d) + producer ([B=b] -> D=d): dropping D
  // must forbid (A=a, B=b).
  PatternValue pa = PatternValue::Constant(V("a"));
  PatternValue pb = PatternValue::Constant(V("b"));
  PatternValue pd = PatternValue::Constant(V("d"));
  // Encode "no tuple with A=a and D=d" as [A=a, D=d] -> A=zz.
  CFD forbidden =
      Pat({0, 3}, {pa, pd}, 0, PatternValue::Constant(V("zz")));
  ASSERT_TRUE(forbidden.IsForbiddenPattern());
  CFD producer = Pat({1}, {pb}, 3, pd);

  bool unconditional = false;
  auto projected = ForbiddenProjection(forbidden, producer, 3,
                                       &unconditional);
  ASSERT_TRUE(projected.has_value());
  EXPECT_FALSE(projected->Mentions(3));
  EXPECT_TRUE(projected->IsForbiddenPattern());

  // End to end through RBR: probe that (A=a, B=b) is forbidden.
  std::vector<CFD> cover = Run({forbidden, producer}, {3});
  CFD probe = CFD::Make(0, {0, 1}, {pa, pb}, 2,
                        PatternValue::Constant(V("q")))
                  .value();
  auto implied = Implies(cover, probe, kArity);
  ASSERT_TRUE(implied.ok());
  EXPECT_TRUE(*implied);
}

TEST_F(RBRTest, ForbiddenProjectionRequiresMatchingConstant) {
  PatternValue pa = PatternValue::Constant(V("a"));
  PatternValue pb = PatternValue::Constant(V("b"));
  PatternValue pd = PatternValue::Constant(V("d"));
  PatternValue pe = PatternValue::Constant(V("e"));
  CFD forbidden =
      Pat({0, 3}, {pa, pd}, 0, PatternValue::Constant(V("zz")));
  // Producer forces D = e != d: its matches never hit the forbidden
  // pattern, so no projection.
  CFD producer = Pat({1}, {pb}, 3, pe);
  bool unconditional = false;
  EXPECT_FALSE(ForbiddenProjection(forbidden, producer, 3, &unconditional)
                   .has_value());
}

TEST_F(RBRTest, IntermediateMinCoverDoesNotChangeSemantics) {
  std::vector<CFD> sigma = {FD({0}, 1), FD({1}, 2), FD({2}, 3),
                            FD({0, 1}, 3), FD({1, 2}, 0)};
  RBROptions with_opt;
  with_opt.intermediate_mincover = true;
  with_opt.mincover_partition = 2;
  RBROptions without_opt;
  without_opt.intermediate_mincover = false;

  auto r1 = RBR(sigma, {1}, kArity, with_opt);
  auto r2 = RBR(sigma, {1}, kArity, without_opt);
  ASSERT_TRUE(r1.ok() && r2.ok());
  // The two covers must be equivalent.
  for (const CFD& c : r1->cover) {
    auto imp = Implies(r2->cover, c, kArity);
    ASSERT_TRUE(imp.ok());
    EXPECT_TRUE(*imp);
  }
  for (const CFD& c : r2->cover) {
    auto imp = Implies(r1->cover, c, kArity);
    ASSERT_TRUE(imp.ok());
    EXPECT_TRUE(*imp);
  }
}

}  // namespace
}  // namespace cfdprop
