#include "src/algebra/view.h"

#include <gtest/gtest.h>

namespace cfdprop {
namespace {

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.AddRelation("R1", {"A", "B", "C"}).ok());
    ASSERT_TRUE(cat_.AddRelation("R2", {"D", "E"}).ok());
  }
  Catalog cat_;
};

TEST_F(ViewTest, BuilderResolvesColumns) {
  SPCViewBuilder b(cat_);
  size_t r1 = b.AddAtom(0);
  auto r2 = b.AddAtom("R2");
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(b.SelectEq(r1, "C", *r2, "D").ok());
  ASSERT_TRUE(b.SelectConst(r1, "A", "42").ok());
  ASSERT_TRUE(b.Project(r1, "B").ok());
  ASSERT_TRUE(b.Project(*r2, "E", "e").ok());
  ASSERT_TRUE(b.ProjectConstant("CC", "uk").ok());

  auto view = b.Build();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->atoms.size(), 2u);
  EXPECT_EQ(view->NumEcColumns(cat_), 5u);
  EXPECT_EQ(view->OutputArity(), 3u);
  EXPECT_EQ(view->output[1].name, "e");
  EXPECT_TRUE(view->output[2].is_constant);

  ASSERT_EQ(view->selections.size(), 2u);
  EXPECT_EQ(view->selections[0].kind, Selection::Kind::kColumnEq);
  EXPECT_EQ(view->selections[0].left, 2u);   // R1.C
  EXPECT_EQ(view->selections[0].right, 3u);  // R2.D
  EXPECT_EQ(view->selections[1].kind, Selection::Kind::kConstantEq);
}

TEST_F(ViewTest, BuilderRejectsUnknownNames) {
  SPCViewBuilder b(cat_);
  EXPECT_FALSE(b.AddAtom("R9").ok());
  size_t r1 = b.AddAtom(0);
  EXPECT_FALSE(b.Project(r1, "Z").ok());
  EXPECT_FALSE(b.Project(7, "A").ok());
}

TEST_F(ViewTest, DefaultProjectionIsAllColumns) {
  SPCViewBuilder b(cat_);
  b.AddAtom(0);
  auto view = b.Build();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->OutputArity(), 3u);
  EXPECT_FALSE(view->Profile(cat_).projection);
}

TEST_F(ViewTest, LocateInvertsColumnIds) {
  SPCViewBuilder b(cat_);
  b.AddAtom(0);
  b.AddAtom(1);
  b.AddAtom(0);
  auto view = b.Build();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->NumEcColumns(cat_), 8u);
  EXPECT_EQ(view->AtomBase(cat_, 0), 0u);
  EXPECT_EQ(view->AtomBase(cat_, 1), 3u);
  EXPECT_EQ(view->AtomBase(cat_, 2), 5u);
  auto [atom, attr] = view->Locate(cat_, 6);
  EXPECT_EQ(atom, 2u);
  EXPECT_EQ(attr, 1u);
}

TEST_F(ViewTest, ProfileClassifiesFragments) {
  {  // identity
    SPCViewBuilder b(cat_);
    b.AddAtom(0);
    auto v = b.Build();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->Profile(cat_).Label(), "I");
  }
  {  // S
    SPCViewBuilder b(cat_);
    size_t a = b.AddAtom(0);
    ASSERT_TRUE(b.SelectConst(a, "A", "1").ok());
    auto v = b.Build();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->Profile(cat_).Label(), "S");
  }
  {  // P
    SPCViewBuilder b(cat_);
    size_t a = b.AddAtom(0);
    ASSERT_TRUE(b.Project(a, "A").ok());
    auto v = b.Build();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->Profile(cat_).Label(), "P");
  }
  {  // C via product
    SPCViewBuilder b(cat_);
    b.AddAtom(0);
    b.AddAtom(1);
    auto v = b.Build();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->Profile(cat_).Label(), "C");
  }
  {  // C via constant relation (the paper's Q1 = {(CC:44)} x R1)
    SPCViewBuilder b(cat_);
    size_t a = b.AddAtom(0);
    ASSERT_TRUE(b.Project(a, "A").ok());
    ASSERT_TRUE(b.Project(a, "B").ok());
    ASSERT_TRUE(b.Project(a, "C").ok());
    ASSERT_TRUE(b.ProjectConstant("CC", "44").ok());
    auto v = b.Build();
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(v->Profile(cat_).product);
  }
  {  // SPC
    SPCViewBuilder b(cat_);
    size_t a = b.AddAtom(0);
    b.AddAtom(1);
    ASSERT_TRUE(b.SelectConst(a, "A", "1").ok());
    ASSERT_TRUE(b.Project(a, "B").ok());
    auto v = b.Build();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->Profile(cat_).Label(), "SPC");
  }
}

TEST_F(ViewTest, OutputDomains) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"F", Domain::Boolean(cat_.pool())});
  attrs.push_back(Attribute{"G", Domain::Infinite()});
  ASSERT_TRUE(cat_.AddRelation("R3", std::move(attrs)).ok());

  SPCViewBuilder b(cat_);
  auto r3 = b.AddAtom("R3");
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(b.Project(*r3, "F").ok());
  ASSERT_TRUE(b.Project(*r3, "G").ok());
  ASSERT_TRUE(b.ProjectConstant("K", "9").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());
  ASSERT_NE(v->OutputDomain(cat_, 0), nullptr);
  EXPECT_TRUE(v->OutputDomain(cat_, 0)->finite());
  ASSERT_NE(v->OutputDomain(cat_, 1), nullptr);
  EXPECT_FALSE(v->OutputDomain(cat_, 1)->finite());
  EXPECT_EQ(v->OutputDomain(cat_, 2), nullptr);
}

TEST_F(ViewTest, SPCUValidation) {
  SPCViewBuilder b1(cat_);
  size_t a1 = b1.AddAtom(0);
  ASSERT_TRUE(b1.Project(a1, "A").ok());
  auto v1 = b1.Build();
  ASSERT_TRUE(v1.ok());

  SPCViewBuilder b2(cat_);
  size_t a2 = b2.AddAtom(1);
  ASSERT_TRUE(b2.Project(a2, "D").ok());
  auto v2 = b2.Build();
  ASSERT_TRUE(v2.ok());

  SPCUView u;
  u.disjuncts = {*v1, *v2};
  EXPECT_TRUE(u.Validate(cat_).ok());
  EXPECT_TRUE(u.Profile(cat_).has_union);
  EXPECT_EQ(u.Profile(cat_).Label(), "PU");

  // Arity mismatch breaks union compatibility.
  SPCViewBuilder b3(cat_);
  size_t a3 = b3.AddAtom(0);
  ASSERT_TRUE(b3.Project(a3, "A").ok());
  ASSERT_TRUE(b3.Project(a3, "B").ok());
  auto v3 = b3.Build();
  ASSERT_TRUE(v3.ok());
  u.disjuncts.push_back(*v3);
  EXPECT_FALSE(u.Validate(cat_).ok());
}

TEST_F(ViewTest, ValidateCatchesOutOfRange) {
  SPCView v;
  v.atoms = {0};
  v.output.push_back(OutputColumn::Projected("c", 99));
  EXPECT_FALSE(v.Validate(cat_).ok());

  SPCView v2;
  v2.atoms = {0};
  v2.selections.push_back(Selection::ColumnEq(0, 99));
  v2.output.push_back(OutputColumn::Projected("c", 0));
  EXPECT_FALSE(v2.Validate(cat_).ok());

  SPCView v3;  // no atoms
  v3.output.push_back(OutputColumn::Projected("c", 0));
  EXPECT_FALSE(v3.Validate(cat_).ok());
}

TEST_F(ViewTest, ToStringMentionsStructure) {
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(a, "A", "7").ok());
  ASSERT_TRUE(b.Project(a, "B", "out").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());
  std::string s = v->ToString(cat_);
  EXPECT_NE(s.find("out"), std::string::npos);
  EXPECT_NE(s.find("'7'"), std::string::npos);
  EXPECT_NE(s.find("R1"), std::string::npos);
}

}  // namespace
}  // namespace cfdprop
