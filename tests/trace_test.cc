// Tracer suite: the span ring's drop-on-full invariant under concurrent
// writers, counter-based sampling exactness, deterministic-seed
// byte-identical dumps, slow-request capture semantics, and — the
// acceptance criterion — a routed 3-shard loopback run whose sampled
// requests stitch into complete span trees with verified parent
// linkage at every hop.

#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/net/cover_client.h"
#include "src/net/cover_router.h"
#include "src/net/cover_server.h"
#include "src/schema/schema.h"
#include "src/service/catalog_service.h"

namespace cfdprop {
namespace obs {
namespace {

TEST(SpanRingTest, ConcurrentWritersPreserveTheDropInvariant) {
  // 4 threads x 20k spans into a ring far too small to hold them. The
  // fetch_add slot claim means every append is either retained in a
  // uniquely-owned slot or counted as dropped — never lost, never torn.
  constexpr size_t kCapacity = 1024;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  SpanRing ring(kCapacity);

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        ring.Append(/*trace_id=*/1, /*span_id=*/2 + i,
                    /*parent_id=*/1, "stress", /*start_us=*/i,
                    /*dur_us=*/7, "tenant", static_cast<int32_t>(t), {});
      }
    });
  }
  for (auto& w : writers) w.join();

  std::vector<SpanRecord> retained;
  ring.Snapshot(&retained, /*slow=*/false);

  EXPECT_EQ(ring.recorded(), kThreads * kPerThread);
  EXPECT_EQ(retained.size(), kCapacity);
  // The invariant, exactly: dropped + retained == recorded.
  EXPECT_EQ(ring.dropped() + retained.size(), ring.recorded());
  // Every retained span is fully published (no torn slot observed).
  for (const SpanRecord& span : retained) {
    EXPECT_EQ(span.trace_id, 1u);
    EXPECT_GE(span.span_id, 2u);
    EXPECT_EQ(span.name, "stress");
    EXPECT_EQ(span.tenant, "tenant");
    EXPECT_EQ(span.dur_us, 7u);
  }
}

TEST(SpanRingTest, SnapshotTruncatesInlineStringsCleanly) {
  SpanRing ring(4);
  const std::string long_name(64, 'n');
  const std::string long_tenant(64, 't');
  const std::string long_annot(64, 'a');
  ASSERT_TRUE(ring.Append(1, 2, 0, long_name, 0, 0, long_tenant, -1,
                          long_annot));
  std::vector<SpanRecord> out;
  ring.Snapshot(&out, false);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].name, long_name.substr(0, SpanRing::kNameBytes - 1));
  EXPECT_EQ(out[0].tenant, long_tenant.substr(0, SpanRing::kTenantBytes - 1));
  EXPECT_EQ(out[0].annot, long_annot.substr(0, SpanRing::kAnnotBytes - 1));
}

TEST(TracerTest, CounterBasedSamplingIsExact) {
  // shift=3 -> exactly 1 in 8, the first trace always included, and
  // every trace id non-zero and distinct.
  ObsOptions options;
  options.trace_sample_shift = 3;
  options.trace_seed = 42;
  Tracer tracer(options);

  int sampled = 0;
  std::set<uint64_t> ids;
  for (int i = 0; i < 80; ++i) {
    TraceContext ctx = tracer.StartTrace();
    EXPECT_NE(ctx.trace_id, 0u);
    ids.insert(ctx.trace_id);
    if (i == 0) EXPECT_TRUE(ctx.sampled);
    if (ctx.sampled) ++sampled;
  }
  EXPECT_EQ(sampled, 10);
  EXPECT_EQ(ids.size(), 80u);

  // shift=0 samples everything; negative shift samples nothing.
  ObsOptions all;
  all.trace_sample_shift = 0;
  Tracer always(all);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(always.StartTrace().sampled);

  ObsOptions none;
  none.trace_sample_shift = -1;
  Tracer never(none);
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(never.StartTrace().sampled);
}

/// Drives one fixed span sequence through a tracer: a two-trace set
/// with nesting, annotations, and an edge record.
std::string DumpFixedSequence(uint64_t seed) {
  ObsOptions options;
  options.trace_sample_shift = 0;
  options.trace_seed = seed;
  uint64_t fake_now = 1000;
  options.clock = [&fake_now] { return fake_now += 10; };
  Tracer tracer(options);

  for (int t = 0; t < 2; ++t) {
    TraceContext ctx = tracer.StartTrace();
    const uint64_t root = tracer.NewSpanId();
    const uint64_t start = tracer.NowUs();
    const uint64_t child = tracer.NewSpanId();
    tracer.Record(ctx, child, root, "compute", tracer.NowUs(), 5, "eu",
                  /*shard=*/1, "hits=4,misses=1");
    ctx.parent_span_id = 0;
    tracer.RecordEdge(ctx, root, "request", start, tracer.NowUs() - start,
                      "eu");
  }
  return FormatSpanTrees(tracer.Snapshot());
}

TEST(TracerTest, EqualSeedsProduceByteIdenticalDumps) {
  const std::string a = DumpFixedSequence(0xfeedbeef);
  const std::string b = DumpFixedSequence(0xfeedbeef);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("compute"), std::string::npos);
  EXPECT_NE(a.find("annot=hits=4,misses=1"), std::string::npos);

  // A different seed draws from a different id stream.
  EXPECT_NE(a, DumpFixedSequence(0xdeadbeef));
}

TEST(TracerTest, DefaultSeedIsPerProcessNotShared) {
  // Two tracers with the default seed 0 must not hand out the same id
  // streams — they model distinct processes whose dumps get stitched.
  Tracer a, b;
  EXPECT_NE(a.StartTrace().trace_id, b.StartTrace().trace_id);
  EXPECT_NE(a.NewSpanId(), b.NewSpanId());
}

TEST(TracerTest, SlowRingCapturesUnsampledEdges) {
  // Sampling fully off, slow threshold 0: every edge crossing the
  // threshold is force-retained, sampled or not.
  ObsOptions options;
  options.trace_sample_shift = -1;
  options.slow_threshold_us = 0;
  options.trace_seed = 7;
  Tracer tracer(options);
  ASSERT_TRUE(tracer.slow_enabled());

  for (int i = 0; i < 3; ++i) {
    TraceContext ctx = tracer.StartTrace();
    ASSERT_FALSE(ctx.sampled);
    tracer.RecordEdge(ctx, tracer.NewSpanId(), "request", 100, 250,
                      i == 0 ? "eu" : "us");
  }
  EXPECT_EQ(tracer.slow_requests(), 3u);

  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  for (const SpanRecord& span : spans) {
    EXPECT_TRUE(span.slow);
    EXPECT_EQ(span.name, "request");
    EXPECT_EQ(span.dur_us, 250u);
  }

  // The per-tenant counter surfaces in the metric families.
  bool found = false;
  for (const MetricFamilySamples& family : tracer.CollectFamilies()) {
    if (family.name != "cfdprop_slow_requests_total") continue;
    found = true;
    ASSERT_EQ(family.samples.size(), 2u);  // eu, us
    std::map<std::string, double> by_tenant;
    for (const auto& sample : family.samples) {
      for (const auto& [key, value] : sample.labels) {
        if (key == "tenant") by_tenant[value] = sample.value;
      }
    }
    EXPECT_EQ(by_tenant["eu"], 1.0);
    EXPECT_EQ(by_tenant["us"], 2.0);
  }
  EXPECT_TRUE(found);
}

TEST(TracerTest, BelowThresholdEdgesAreNotCaptured) {
  ObsOptions options;
  options.trace_sample_shift = -1;
  options.slow_threshold_us = 1000;
  Tracer tracer(options);
  TraceContext ctx = tracer.StartTrace();
  tracer.RecordEdge(ctx, tracer.NewSpanId(), "request", 0, 999, "eu");
  EXPECT_EQ(tracer.slow_requests(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
  tracer.RecordEdge(ctx, tracer.NewSpanId(), "request", 0, 1000, "eu");
  EXPECT_EQ(tracer.slow_requests(), 1u);
}

TEST(FormatSpanTreesTest, OrphanSpansRootTheirOwnSubtrees) {
  // A dump missing one process's ring (the parent span) still renders:
  // the orphan roots its own subtree instead of vanishing.
  std::vector<SpanRecord> spans;
  SpanRecord orphan;
  orphan.trace_id = 5;
  orphan.span_id = 9;
  orphan.parent_id = 1234;  // absent from the set
  orphan.name = "decode";
  spans.push_back(orphan);
  const std::string out = FormatSpanTrees(spans);
  EXPECT_NE(out.find("trace 0000000000000005 spans=1"), std::string::npos);
  EXPECT_NE(out.find("  decode id=0000000000000009"), std::string::npos);
}

// --------------------------------------------------------------------
// The acceptance criterion: a routed 3-shard loopback run produces a
// complete stitched span tree per sampled request — client rpc under
// router route, server decode/admission/queue_wait/dispatch/propagate/
// compute/reply/encode/write all linked to the same trace.
// --------------------------------------------------------------------

constexpr char kDemoSpec[] = R"(
relation T(region, cust, tier, rep)

cfd T: [region] -> rep
cfd T: [tier] -> rep

view ByRegion = pi("r" as tag, 0.region as region, 0.rep as rep) from(T)
view GoldReps = pi("g" as tag, 0.cust as cust, 0.rep as rep) sigma(0.tier = "gold") from(T)

serve ByRegion, GoldReps
)";

TEST(RoutedTraceTest, ThreeShardRunStitchesCompleteTrees) {
  // Everything in one process, so one installed tracer catches every
  // hop's spans: the router's edge, the client rpc, and the per-shard
  // server/service/engine stages (exactly what the CI job greps across
  // process boundaries via TRACE_DUMP).
  ObsOptions topts;
  topts.trace_sample_shift = 0;  // sample every request
  topts.trace_seed = 99;
  Tracer tracer(topts);
  ScopedProcessTracer scoped(&tracer);

  ServiceOptions sopts;
  sopts.engine.num_threads = 1;
  std::vector<std::unique_ptr<CatalogService>> services;
  std::vector<std::unique_ptr<net::CoverServer>> servers;
  net::CoverRouterOptions ropts;
  for (int i = 0; i < 3; ++i) {
    services.push_back(std::make_unique<CatalogService>(sopts));
    servers.push_back(std::make_unique<net::CoverServer>(*services.back()));
    ASSERT_TRUE(servers.back()->Start().ok());
    net::CoverClientOptions copts;
    copts.port = servers.back()->port();
    ropts.shards.push_back(copts);
  }
  net::CoverRouter router(std::move(ropts));

  // Spread tenants until at least two distinct shards serve traffic.
  std::set<size_t> shards_hit;
  std::vector<std::string> tenants;
  for (int i = 0; i < 16 && shards_hit.size() < 2; ++i) {
    const std::string tenant = "tenant" + std::to_string(i);
    shards_hit.insert(router.ShardFor(tenant));
    tenants.push_back(tenant);
  }
  ASSERT_GE(shards_hit.size(), 2u);

  Catalog scratch;
  std::set<uint64_t> trace_ids;
  for (const std::string& tenant : tenants) {
    ASSERT_TRUE(router.OpenCatalog(tenant, kDemoSpec).ok()) << tenant;
    auto results =
        router.SubmitBatches(tenant, {{"ByRegion", "GoldReps"}}, scratch.pool());
    ASSERT_TRUE(results.ok()) << results.status();
  }

  // The TRACE_DUMP wire path reads spans back while shards still serve,
  // stamped with the shard they were fetched from.
  auto dump = router.TraceDumpFrom(0);
  ASSERT_TRUE(dump.ok()) << dump.status();
  ASSERT_FALSE(dump->empty());
  for (const SpanRecord& span : *dump) {
    EXPECT_GE(span.shard, 0);
  }
  EXPECT_FALSE(router.TraceDumpFrom(17).ok());

  for (auto& server : servers) server->Stop();

  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_FALSE(spans.empty());

  // Regroup by trace and verify each submit's tree end to end.
  std::map<uint64_t, std::vector<const SpanRecord*>> traces;
  for (const SpanRecord& span : spans) traces[span.trace_id].push_back(&span);

  size_t complete_trees = 0;
  const std::set<std::string> kRequired = {
      "route",     "rpc",      "decode",    "admission", "queue_wait",
      "dispatch",  "propagate", "compute",  "reply",     "encode",
      "write"};
  for (const auto& [trace_id, members] : traces) {
    std::map<uint64_t, const SpanRecord*> by_id;
    std::set<std::string> names;
    for (const SpanRecord* span : members) {
      by_id.emplace(span->span_id, span);
      names.insert(span->name);
    }
    if (names.count("route") == 0) continue;  // an open/stats trace
    ++complete_trees;
    trace_ids.insert(trace_id);
    for (const std::string& name : kRequired) {
      EXPECT_EQ(names.count(name), 1u)
          << "trace " << trace_id << " missing span " << name;
    }
    const SpanRecord* route = nullptr;
    const SpanRecord* rpc = nullptr;
    for (const SpanRecord* span : members) {
      if (span->name == "route") route = span;
      if (span->name == "rpc") rpc = span;
    }
    ASSERT_NE(route, nullptr);
    ASSERT_NE(rpc, nullptr);
    // The route span is the root; the rpc span nests under it; every
    // other span's parent resolves inside the same trace — the full
    // parent linkage the dump stitches on.
    EXPECT_EQ(route->parent_id, 0u);
    EXPECT_EQ(rpc->parent_id, route->span_id);
    for (const SpanRecord* span : members) {
      if (span == route) continue;
      EXPECT_EQ(by_id.count(span->parent_id), 1u)
          << "span " << span->name << " in trace " << trace_id
          << " has an unresolvable parent";
    }
  }
  // One complete tree per submitted batch request.
  EXPECT_EQ(complete_trees, tenants.size());

  // The rendered form shows the same structure: one block per trace,
  // route at the root (depth-0 spans indent 2), rpc nested once under
  // it (depth 1 indents 4).
  const std::string rendered = FormatSpanTrees(spans);
  EXPECT_NE(rendered.find("\n  route id="), std::string::npos);
  EXPECT_NE(rendered.find("\n    rpc id="), std::string::npos);
}

TEST(RoutedTraceTest, MigrationRecordsAnAnnotatedSpan) {
  ObsOptions topts;
  topts.trace_sample_shift = 0;
  topts.trace_seed = 5;
  Tracer tracer(topts);
  ScopedProcessTracer scoped(&tracer);

  ServiceOptions sopts;
  sopts.engine.num_threads = 1;
  std::vector<std::unique_ptr<CatalogService>> services;
  std::vector<std::unique_ptr<net::CoverServer>> servers;
  net::CoverRouterOptions ropts;
  for (int i = 0; i < 2; ++i) {
    services.push_back(std::make_unique<CatalogService>(sopts));
    servers.push_back(std::make_unique<net::CoverServer>(*services.back()));
    ASSERT_TRUE(servers.back()->Start().ok());
    net::CoverClientOptions copts;
    copts.port = servers.back()->port();
    ropts.shards.push_back(copts);
  }
  net::CoverRouter router(std::move(ropts));

  const std::string tenant = "eu";
  ASSERT_TRUE(router.OpenCatalog(tenant, kDemoSpec).ok());
  const size_t home = router.ShardFor(tenant);
  const size_t target = (home + 1) % 2;
  ASSERT_TRUE(router.MigrateTenant(tenant, target).ok());
  for (auto& server : servers) server->Stop();

  bool saw_migrate = false;
  for (const SpanRecord& span : tracer.Snapshot()) {
    if (span.name != "migrate") continue;
    saw_migrate = true;
    EXPECT_EQ(span.tenant, tenant);
    const std::string expect_annot = "from=" + std::to_string(home) +
                                     " to=" + std::to_string(target);
    EXPECT_EQ(span.annot, expect_annot);
  }
  EXPECT_TRUE(saw_migrate);
}

}  // namespace
}  // namespace obs
}  // namespace cfdprop
