#include "src/cfd/cfd.h"

#include <gtest/gtest.h>

namespace cfdprop {
namespace {

class CFDTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.AddRelation("R", {"A", "B", "C", "D"}).ok());
    a_ = cat_.pool().Intern("a");
    b_ = cat_.pool().Intern("b");
  }

  Catalog cat_;
  Value a_, b_;
};

TEST_F(CFDTest, MakeSortsLhs) {
  auto c = CFD::Make(0, {2, 0}, {PatternValue::Wildcard(),
                                 PatternValue::Constant(a_)},
                     3, PatternValue::Wildcard());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->lhs, (std::vector<AttrIndex>{0, 2}));
  EXPECT_EQ(c->lhs_pats[0], PatternValue::Constant(a_));
  EXPECT_EQ(c->lhs_pats[1], PatternValue::Wildcard());
}

TEST_F(CFDTest, MakeMergesDuplicateLhsViaMin) {
  auto c = CFD::Make(0, {1, 1}, {PatternValue::Wildcard(),
                                 PatternValue::Constant(a_)},
                     3, PatternValue::Wildcard());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->lhs, (std::vector<AttrIndex>{1}));
  EXPECT_EQ(c->lhs_pats[0], PatternValue::Constant(a_));
}

TEST_F(CFDTest, MakeRejectsIncomparableDuplicates) {
  auto c = CFD::Make(0, {1, 1}, {PatternValue::Constant(a_),
                                 PatternValue::Constant(b_)},
                     3, PatternValue::Wildcard());
  EXPECT_FALSE(c.ok());
}

TEST_F(CFDTest, MakeRejectsExplicitSpecialX) {
  auto c = CFD::Make(0, {1}, {PatternValue::SpecialX()}, 2,
                     PatternValue::Wildcard());
  EXPECT_FALSE(c.ok());
}

TEST_F(CFDTest, PlainFDDetection) {
  auto fd = CFD::FD(0, {0, 1}, 2);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(fd->IsPlainFD());
  EXPECT_FALSE(fd->IsTrivial());

  auto cfd = CFD::Make(0, {0}, {PatternValue::Constant(a_)}, 2,
                       PatternValue::Wildcard());
  ASSERT_TRUE(cfd.ok());
  EXPECT_FALSE(cfd->IsPlainFD());

  EXPECT_FALSE(CFD::Equality(0, 0, 1).IsPlainFD());
}

TEST_F(CFDTest, TrivialityRules) {
  // A in X with equal patterns: trivial.
  auto t1 = CFD::Make(0, {0, 1}, {PatternValue::Wildcard(),
                                  PatternValue::Wildcard()},
                      0, PatternValue::Wildcard());
  ASSERT_TRUE(t1.ok());
  EXPECT_TRUE(t1->IsTrivial());

  // A in X, LHS constant, RHS '_': trivial.
  auto t2 = CFD::Make(0, {0, 1}, {PatternValue::Constant(a_),
                                  PatternValue::Wildcard()},
                      0, PatternValue::Wildcard());
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(t2->IsTrivial());

  // A in X, LHS '_', RHS constant: NOT trivial (forces A = a on the
  // matching subset) — challenge (b) of Section 4.1.
  auto n1 = CFD::Make(0, {0, 1}, {PatternValue::Wildcard(),
                                  PatternValue::Wildcard()},
                      0, PatternValue::Constant(a_));
  ASSERT_TRUE(n1.ok());
  EXPECT_FALSE(n1->IsTrivial());

  // A in X with two distinct constants: NOT trivial (forbidden pattern).
  auto n2 = CFD::Make(0, {0}, {PatternValue::Constant(a_)}, 0,
                      PatternValue::Constant(b_));
  ASSERT_TRUE(n2.ok());
  EXPECT_FALSE(n2->IsTrivial());

  // Equality CFDs: A = A is trivial, A = B is not.
  EXPECT_TRUE(CFD::Equality(0, 2, 2).IsTrivial());
  EXPECT_FALSE(CFD::Equality(0, 1, 2).IsTrivial());
}

TEST_F(CFDTest, ConstantColumnShape) {
  // Canonical form of the paper's R(A -> A, ( || a)): empty LHS.
  CFD c = CFD::ConstantColumn(0, 2, a_);
  EXPECT_TRUE(c.lhs.empty());
  EXPECT_EQ(c.rhs, 2u);
  EXPECT_EQ(c.rhs_pat, PatternValue::Constant(a_));
  EXPECT_FALSE(c.IsTrivial());
}

TEST_F(CFDTest, ConstantRhsCanonicalizationDropsWildcardLhs) {
  // (XZ -> A, (a, _ || b)) == (X -> A, (a || b)): the wildcard Z adds
  // nothing when the RHS is a constant (pairs include (t, t)).
  auto c = CFD::Make(0, {0, 1}, {PatternValue::Constant(a_),
                                 PatternValue::Wildcard()},
                     2, PatternValue::Constant(b_));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->lhs, (std::vector<AttrIndex>{0}));
  ASSERT_EQ(c->lhs_pats.size(), 1u);
  EXPECT_EQ(c->lhs_pats[0], PatternValue::Constant(a_));

  // With a wildcard RHS the LHS is untouched.
  auto d = CFD::Make(0, {0, 1}, {PatternValue::Constant(a_),
                                 PatternValue::Wildcard()},
                     2, PatternValue::Wildcard());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->lhs.size(), 2u);
}

TEST_F(CFDTest, ValidateChecksRanges) {
  auto c = CFD::FD(0, {0, 1}, 2);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->Validate(4).ok());
  EXPECT_FALSE(c->Validate(2).ok());  // rhs out of range
}

TEST_F(CFDTest, MentionsAndFindLhs) {
  auto c = CFD::FD(0, {0, 2}, 3);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->Mentions(0));
  EXPECT_TRUE(c->Mentions(2));
  EXPECT_TRUE(c->Mentions(3));
  EXPECT_FALSE(c->Mentions(1));
  EXPECT_EQ(c->FindLhs(2), 1u);
  EXPECT_EQ(c->FindLhs(1), SIZE_MAX);
}

TEST_F(CFDTest, EqualityAndHash) {
  auto c1 = CFD::FD(0, {0, 1}, 2);
  auto c2 = CFD::FD(0, {1, 0}, 2);  // same after sorting
  auto c3 = CFD::FD(0, {0, 1}, 3);
  ASSERT_TRUE(c1.ok() && c2.ok() && c3.ok());
  EXPECT_EQ(*c1, *c2);
  EXPECT_NE(*c1, *c3);
  CFDHash h;
  EXPECT_EQ(h(*c1), h(*c2));
}

TEST_F(CFDTest, GeneralFormNormalizes) {
  GeneralCFD g;
  g.relation = 0;
  g.lhs = {0};
  g.lhs_pats = {PatternValue::Constant(a_)};
  g.rhs = {1, 2};
  g.rhs_pats = {PatternValue::Wildcard(), PatternValue::Constant(b_)};
  auto normalized = g.Normalize();
  ASSERT_TRUE(normalized.ok());
  ASSERT_EQ(normalized->size(), 2u);
  EXPECT_EQ((*normalized)[0].rhs, 1u);
  EXPECT_EQ((*normalized)[1].rhs, 2u);
  EXPECT_EQ((*normalized)[1].rhs_pat, PatternValue::Constant(b_));
}

TEST_F(CFDTest, DedupeAndDropTrivial) {
  auto fd = CFD::FD(0, {0}, 1);
  auto triv = CFD::Make(0, {0}, {PatternValue::Wildcard()}, 0,
                        PatternValue::Wildcard());
  ASSERT_TRUE(fd.ok() && triv.ok());
  std::vector<CFD> in = {*fd, *fd, *triv};
  std::vector<CFD> out = DedupeAndDropTrivial(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], *fd);
}

TEST_F(CFDTest, ToStringRendersPaperStyle) {
  auto c = CFD::Make(0, {0, 1}, {PatternValue::Constant(a_),
                                 PatternValue::Wildcard()},
                     2, PatternValue::Wildcard());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->ToString(cat_), "R([A, B] -> C, (a, _ || _))");
}

TEST_F(CFDTest, EmptyLhsIsSupported) {
  CFD c;
  c.relation = 0;
  c.rhs = 1;
  c.rhs_pat = PatternValue::Constant(a_);
  EXPECT_TRUE(c.Validate(4).ok());
  EXPECT_FALSE(c.IsTrivial());
}

}  // namespace
}  // namespace cfdprop
