// Router-tier suite: the CoverRouter's consistent-hash placement, the
// RemoteBackend reconnect-and-reopen fix, and live tenant migration —
// byte-identical covers across the move, and only legal generations
// under churn.

#include "src/net/cover_router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/cfd/cfd.h"
#include "src/engine/snapshot.h"
#include "src/net/cover_backend.h"
#include "src/obs/exporter.h"
#include "src/net/cover_client.h"
#include "src/net/cover_server.h"
#include "src/parser/parser.h"
#include "src/service/catalog_service.h"

namespace cfdprop {
namespace net {
namespace {

/// The loopback suite's demo spec (tests embed their inputs).
constexpr char kDemoSpec[] = R"(
relation T(region, cust, tier, rep)
relation P(sku, region, price)

cfd T: [region] -> rep
cfd T: [tier] -> rep
cfd P: [sku, region] -> price

view ByRegion = pi("r" as tag, 0.region as region, 0.rep as rep) from(T)
view GoldReps = pi("g" as tag, 0.cust as cust, 0.rep as rep) sigma(0.tier = "gold") from(T)
view Pricing  = pi(0.sku as sku, 0.region as region, 0.price as price) sigma(0.region = "emea") from(P)

union AllReps = ByRegion, GoldReps

serve ByRegion, GoldReps, Pricing, AllReps, ByRegion
)";

ServiceOptions DeterministicOptions() {
  ServiceOptions options;
  options.engine.num_threads = 1;
  return options;
}

/// One shard: a service and its loopback server.
struct ShardFixture {
  ShardFixture() : service(DeterministicOptions()), server(service) {
    EXPECT_TRUE(server.Start().ok());
  }
  ~ShardFixture() { server.Stop(); }
  CatalogService service;
  CoverServer server;
};

/// A router over `n` fresh loopback shards.
struct ClusterFixture {
  explicit ClusterFixture(size_t n) {
    CoverRouterOptions ropts;
    for (size_t i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<ShardFixture>());
      CoverClientOptions copts;
      copts.port = shards.back()->server.port();
      ropts.shards.push_back(copts);
    }
    router = std::make_unique<CoverRouter>(std::move(ropts));
  }
  std::vector<std::unique_ptr<ShardFixture>> shards;
  std::unique_ptr<CoverRouter> router;
};

TEST(CoverRouterTest, RingPlacementIsDeterministicAndCoversEveryShard) {
  // Placement is a pure function of the shard count — two routers over
  // equal shard lists agree on every tenant, connections never made.
  CoverRouterOptions a_opts, b_opts;
  a_opts.shards.resize(3);
  b_opts.shards.resize(3);
  CoverRouter a(a_opts), b(b_opts);
  std::set<size_t> used;
  for (int i = 0; i < 200; ++i) {
    const std::string tenant = "tenant" + std::to_string(i);
    const size_t shard = a.ShardFor(tenant);
    EXPECT_EQ(shard, b.ShardFor(tenant)) << tenant;
    ASSERT_LT(shard, 3u);
    used.insert(shard);
  }
  EXPECT_EQ(used.size(), 3u) << "200 tenants should touch every shard";
}

TEST(CoverRouterTest, MigrationMarkBouncesSubmitsAndOverridesFlipRoutes) {
  CoverRouterOptions opts;
  opts.shards.resize(3);
  CoverRouter router(opts);
  Catalog scratch;

  const std::string tenant = "eu";
  const size_t home = router.ShardFor(tenant);
  ASSERT_TRUE(router.BeginMigration(tenant).ok());
  // Second begin is refused — one move at a time.
  EXPECT_EQ(router.BeginMigration(tenant).code(), StatusCode::kUnavailable);
  // Mid-flight submits fail fast with the typed retry signal, before
  // any socket is touched.
  auto bounced = router.SubmitBatches(tenant, {{"ByRegion"}}, scratch.pool());
  ASSERT_FALSE(bounced.ok());
  EXPECT_EQ(bounced.status().code(), StatusCode::kUnavailable);
  // The route itself is unchanged until the flip.
  EXPECT_EQ(router.ShardFor(tenant), home);

  const size_t target = (home + 1) % 3;
  ASSERT_TRUE(router.CompleteMigration(tenant, target).ok());
  EXPECT_EQ(router.ShardFor(tenant), target);

  // An abort keeps the (now overridden) route and clears the mark.
  ASSERT_TRUE(router.BeginMigration(tenant).ok());
  router.AbortMigration(tenant);
  EXPECT_EQ(router.ShardFor(tenant), target);

  // Flipping back to the ring placement erases the override.
  ASSERT_TRUE(router.CompleteMigration(tenant, home).ok());
  EXPECT_EQ(router.ShardFor(tenant), home);

  EXPECT_EQ(router.CompleteMigration(tenant, 99).code(),
            StatusCode::kInvalidArgument);
}

TEST(RemoteBackendTest, ReconnectReopensCatalogsAfterServerRestart) {
  auto shard = std::make_unique<ShardFixture>();
  const uint16_t port = shard->server.port();

  CoverClientOptions copts;
  copts.port = port;
  copts.connect_timeout = std::chrono::milliseconds(10000);
  RemoteBackend backend(copts);
  ASSERT_TRUE(backend.OpenCatalog("eu", kDemoSpec).ok());

  auto client_spec = ParseSpec(kDemoSpec);
  ASSERT_TRUE(client_spec.ok());
  ValuePool& pool = client_spec->catalog.pool();
  const std::vector<std::string> round = client_spec->ServingRound();

  auto first = backend.SubmitBatch("eu", round, pool);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->status.ok());

  // A plain dropped connection (socket deadline, flaky link): the next
  // call reconnects and still serves.
  backend.CloseConnection();
  ASSERT_FALSE(backend.connected());
  auto after_drop = backend.SubmitBatch("eu", round, pool);
  ASSERT_TRUE(after_drop.ok()) << after_drop.status();
  ASSERT_TRUE(after_drop->status.ok());

  // The hard case — the historical bug: the server process restarts
  // (fresh service, no catalogs) on the same port. A raw CoverClient
  // that reconnects now gets NotFound on every submit, because its
  // open-catalog state died with the old server.
  shard.reset();
  CatalogService fresh_service(DeterministicOptions());
  CoverServerOptions sopts;
  sopts.port = port;
  CoverServer fresh_server(fresh_service, sopts);
  ASSERT_TRUE(fresh_server.Start().ok());

  CoverClient raw(copts);
  ASSERT_TRUE(raw.Connect().ok());
  Catalog raw_scratch;
  auto lost = raw.SubmitBatch("eu", round, raw_scratch.pool());
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kNotFound)
      << "fresh server has no catalogs";

  // RemoteBackend replays its catalog opens on reconnect, so the same
  // round keeps serving across the restart.
  backend.CloseConnection();
  auto after_restart = backend.SubmitBatch("eu", round, pool);
  ASSERT_TRUE(after_restart.ok()) << after_restart.status();
  ASSERT_TRUE(after_restart->status.ok());
  for (const auto& r : after_restart->results) ASSERT_TRUE(r.ok());

  fresh_server.Stop();
}

TEST(CoverRouterTest, LiveMigrationKeepsCoversByteIdenticalAndWarm) {
  ClusterFixture cluster(3);
  CoverRouter& router = *cluster.router;

  ASSERT_TRUE(router.OpenCatalog("eu", kDemoSpec).ok());
  const size_t src = router.ShardFor("eu");

  auto client_spec = ParseSpec(kDemoSpec);
  ASSERT_TRUE(client_spec.ok());
  ValuePool& pool = client_spec->catalog.pool();
  const std::vector<std::string> round = client_spec->ServingRound();

  // Serve twice: the cold round fills the source cache, the second is
  // the all-hits reference. (cache_hit travels in the reply encoding,
  // and the migrated round is all-hits too — warm compares to warm.)
  auto cold = router.SubmitBatches("eu", {round}, pool);
  ASSERT_TRUE(cold.ok()) << cold.status();
  ASSERT_TRUE(cold->front().status.ok());
  auto before = router.SubmitBatches("eu", {round}, pool);
  ASSERT_TRUE(before.ok()) << before.status();
  ASSERT_TRUE(before->front().status.ok());

  // Misuse is typed before any bytes move.
  EXPECT_EQ(router.MigrateTenant("eu", src).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(router.MigrateTenant("eu", 99).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(router.MigrateTenant("ghost", (src + 1) % 3).status().code(),
            StatusCode::kUnsupported)
      << "no spec text recorded for a tenant the router never opened";

  const size_t dst = (src + 1) % 3;
  auto report = router.MigrateTenant("eu", dst);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->from, src);
  EXPECT_EQ(report->to, dst);
  EXPECT_GT(report->snapshot_bytes, 0u);
  EXPECT_GT(report->restored, 0u)
      << "the served covers should cross inside the snapshot";
  EXPECT_EQ(router.ShardFor("eu"), dst);

  // The source copy is retired...
  EXPECT_EQ(cluster.shards[src]->service.ResolveCatalog("eu").status().code(),
            StatusCode::kNotFound);
  // ...and the target serves the same round byte-identically — *warm*:
  // every request hits the migrated cache lines.
  auto after = router.SubmitBatches("eu", {round}, pool);
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_TRUE(after->front().status.ok());
  EXPECT_EQ(EncodeSubmitBatchReply(Status::OK(), {after->front()}, pool),
            EncodeSubmitBatchReply(Status::OK(), {before->front()}, pool));
  for (size_t i = 0; i < after->front().results.size(); ++i) {
    const auto& r = after->front().results[i];
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->cache_hit) << "request " << i << " should be warm";
  }

  // Aggregated stats see the tenant exactly once, on its new shard.
  auto stats = router.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->tenants.size(), 1u);
  EXPECT_EQ(stats->tenants[0].name, "eu");

  // Metrics merge every shard's families into one scrape: a shard's
  // series are distinguished by the injected shard="N" label, family
  // headers appear once, and the whole output round-trips through the
  // exposition parser like any single server's scrape.
  auto metrics = router.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->find("# --- shard"), std::string::npos);
  auto parsed = obs::ParseMetricsText(*metrics);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // The migrated tenant's serving counters live on its new shard.
  const std::string to_str = std::to_string(dst);
  EXPECT_TRUE(parsed->Has("cfdprop_requests_total{shard=\"" + to_str +
                          "\",tenant=\"eu\"}"));
  // Every shard exposes the service-level scalar exactly once, shard-
  // labeled; the family header is not repeated per shard.
  for (size_t shard = 0; shard < router.num_shards(); ++shard) {
    EXPECT_TRUE(parsed->Has("cfdprop_tenants{shard=\"" +
                            std::to_string(shard) + "\"}"));
  }
  const std::string type_header = "# TYPE cfdprop_tenants gauge";
  const size_t first = metrics->find(type_header);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(metrics->find(type_header, first + 1), std::string::npos);
  // The router's own tier counters close the scrape, unlabeled.
  EXPECT_EQ(parsed->Value("cfdprop_router_migrations_total"), 1.0);
  EXPECT_GE(parsed->Value("cfdprop_router_batches_routed_total"), 1.0);
}

TEST(CoverRouterTest, MigrationUnderChurnServesOnlyLegalGenerations) {
  ClusterFixture cluster(2);
  CoverRouter& router = *cluster.router;

  ASSERT_TRUE(router.OpenCatalog("eu", kDemoSpec).ok());
  const size_t src = router.ShardFor("eu");
  const size_t dst = 1 - src;

  auto client_spec = ParseSpec(kDemoSpec);
  ASSERT_TRUE(client_spec.ok());

  // Serves one GoldReps request and hashes the served cover's *content*
  // (pool-independent), not its request fingerprint — the cache key is
  // the same across Σ generations by design; the content is not.
  auto serve_one = [&](ValuePool& pool) -> Result<uint64_t> {
    auto batch = router.SubmitBatches("eu", {{"GoldReps"}}, pool);
    if (!batch.ok()) return batch.status();
    if (!batch->front().status.ok()) return batch->front().status;
    if (!batch->front().results.front().ok()) {
      return batch->front().results.front().status();
    }
    return FingerprintSigmaSet(pool,
                               batch->front().results.front()->cover->cover);
  };

  // The two legal generations: the base cover (spec's Σ0), and the
  // churned cover after [rep] -> cust joins Σ0 on the source. (The FD
  // must not be implied by the base cover: sigma(tier = "gold") turns
  // [tier] -> rep into a constant-LHS FD on rep, which would subsume
  // anything with rep on the right.) The churn is NOT in the spec text,
  // so the migrated target — re-opened from text — is back on the base
  // generation and the churned snapshot lines are rejected at warm
  // start.
  auto fp_base = serve_one(client_spec->catalog.pool());
  ASSERT_TRUE(fp_base.ok()) << fp_base.status();
  auto handle = cluster.shards[src]->service.ResolveCatalog("eu");
  ASSERT_TRUE(handle.ok());
  const CFD churn = CFD::FD(0, {3}, 1).value();  // T: [rep] -> cust
  ASSERT_TRUE((*handle)->engine().AddCfd(0, churn).ok());
  auto fp_churned = serve_one(client_spec->catalog.pool());
  ASSERT_TRUE(fp_churned.ok());
  ASSERT_NE(*fp_base, *fp_churned)
      << "[rep] -> cust must propagate into GoldReps(cust, rep)";

  // A client hammering the tenant while it migrates: typed kUnavailable
  // is the only acceptable hiccup (and is retried); anything else is a
  // failed submit. Every served cover must be one of the two legal
  // generations.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0}, unavailable_retries{0}, failures{0};
  std::atomic<uint64_t> illegal{0};
  std::thread hammer([&] {
    auto worker_spec = ParseSpec(kDemoSpec);
    if (!worker_spec.ok()) {  // no gtest fatals off the main thread
      failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    while (!stop.load(std::memory_order_relaxed)) {
      auto fp = serve_one(worker_spec->catalog.pool());
      if (fp.ok()) {
        served.fetch_add(1, std::memory_order_relaxed);
        if (*fp != *fp_base && *fp != *fp_churned) {
          illegal.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (fp.status().code() == StatusCode::kUnavailable) {
        unavailable_retries.fetch_add(1, std::memory_order_relaxed);
      } else {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto report = router.MigrateTenant("eu", dst);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true);
  hammer.join();
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(failures.load(), 0u)
      << "a migration must not fail submits (kUnavailable + retry only)";
  EXPECT_EQ(illegal.load(), 0u)
      << "every served cover is one of the two legal generations";
  EXPECT_GT(served.load(), 0u);

  // After the flip: the target re-opened from spec text serves the base
  // generation, and the churned snapshot lines were rejected.
  auto fp_after = serve_one(client_spec->catalog.pool());
  ASSERT_TRUE(fp_after.ok()) << fp_after.status();
  EXPECT_EQ(*fp_after, *fp_base);
  EXPECT_GT(report->rejected, 0u)
      << "churned-generation lines cannot warm-start a base-Σ tenant";
}

}  // namespace
}  // namespace net
}  // namespace cfdprop
