#include "src/chase/symbolic_instance.h"

#include <gtest/gtest.h>

namespace cfdprop {
namespace {

TEST(SymbolicInstanceTest, FreshCellsAreDistinct) {
  SymbolicInstance inst;
  CellId a = inst.NewCell();
  CellId b = inst.NewCell();
  EXPECT_NE(inst.Find(a), inst.Find(b));
  EXPECT_FALSE(inst.EqualCells(a, b));
}

TEST(SymbolicInstanceTest, UnionMergesClasses) {
  SymbolicInstance inst;
  CellId a = inst.NewCell();
  CellId b = inst.NewCell();
  CellId c = inst.NewCell();
  EXPECT_TRUE(inst.Union(a, b));
  EXPECT_TRUE(inst.EqualCells(a, b));
  EXPECT_FALSE(inst.EqualCells(a, c));
  EXPECT_TRUE(inst.Union(b, c));
  EXPECT_TRUE(inst.EqualCells(a, c));
}

TEST(SymbolicInstanceTest, ConstBindingPropagatesThroughClass) {
  SymbolicInstance inst;
  CellId a = inst.NewCell();
  CellId b = inst.NewCell();
  ASSERT_TRUE(inst.Union(a, b));
  ASSERT_TRUE(inst.BindConst(a, 7));
  EXPECT_EQ(inst.ConstOf(b), std::optional<Value>(7));
}

TEST(SymbolicInstanceTest, EqualCellsViaSharedConstant) {
  SymbolicInstance inst;
  CellId a = inst.NewCell();
  CellId b = inst.NewCell();
  ASSERT_TRUE(inst.BindConst(a, 3));
  ASSERT_TRUE(inst.BindConst(b, 3));
  // Different classes, same constant: equal values.
  EXPECT_NE(inst.Find(a), inst.Find(b));
  EXPECT_TRUE(inst.EqualCells(a, b));
}

TEST(SymbolicInstanceTest, ConflictingBindContradicts) {
  SymbolicInstance inst;
  CellId a = inst.NewCell();
  ASSERT_TRUE(inst.BindConst(a, 1));
  EXPECT_FALSE(inst.BindConst(a, 2));
  EXPECT_TRUE(inst.contradiction());
}

TEST(SymbolicInstanceTest, ConflictingUnionContradicts) {
  SymbolicInstance inst;
  CellId a = inst.NewCell();
  CellId b = inst.NewCell();
  ASSERT_TRUE(inst.BindConst(a, 1));
  ASSERT_TRUE(inst.BindConst(b, 2));
  EXPECT_FALSE(inst.Union(a, b));
  EXPECT_TRUE(inst.contradiction());
}

TEST(SymbolicInstanceTest, VersionBumpsOnEffectiveChange) {
  SymbolicInstance inst;
  CellId a = inst.NewCell();
  CellId b = inst.NewCell();
  uint64_t v0 = inst.version();
  ASSERT_TRUE(inst.Union(a, b));
  EXPECT_GT(inst.version(), v0);
  uint64_t v1 = inst.version();
  ASSERT_TRUE(inst.Union(a, b));  // no-op
  EXPECT_EQ(inst.version(), v1);
  ASSERT_TRUE(inst.BindConst(a, 5));
  EXPECT_GT(inst.version(), v1);
  uint64_t v2 = inst.version();
  ASSERT_TRUE(inst.BindConst(b, 5));  // already bound
  EXPECT_EQ(inst.version(), v2);
}

TEST(SymbolicInstanceTest, FiniteDomainsIntersectOnUnion) {
  ValuePool pool;
  Value a = pool.Intern("a"), b = pool.Intern("b"), c = pool.Intern("c");
  Domain d1 = Domain::Finite("d1", {a, b});
  Domain d2 = Domain::Finite("d2", {b, c});

  SymbolicInstance inst;
  CellId x = inst.NewCell(&d1);
  CellId y = inst.NewCell(&d2);
  ASSERT_TRUE(inst.Union(x, y));
  const auto& dom = inst.FiniteDomainOf(x);
  ASSERT_TRUE(dom.has_value());
  EXPECT_EQ(*dom, std::vector<Value>{b});
}

TEST(SymbolicInstanceTest, EmptyIntersectionContradicts) {
  ValuePool pool;
  Value a = pool.Intern("a"), b = pool.Intern("b");
  Domain d1 = Domain::Finite("d1", {a});
  Domain d2 = Domain::Finite("d2", {b});

  SymbolicInstance inst;
  CellId x = inst.NewCell(&d1);
  CellId y = inst.NewCell(&d2);
  EXPECT_FALSE(inst.Union(x, y));
  EXPECT_TRUE(inst.contradiction());
}

TEST(SymbolicInstanceTest, BindOutsideFiniteDomainContradicts) {
  ValuePool pool;
  Value a = pool.Intern("a");
  Value z = pool.Intern("z");
  Domain d = Domain::Finite("d", {a});

  SymbolicInstance inst;
  CellId x = inst.NewCell(&d);
  EXPECT_FALSE(inst.BindConst(x, z));
  EXPECT_TRUE(inst.contradiction());
}

TEST(SymbolicInstanceTest, UnboundFiniteCellsListsRootsOnly) {
  ValuePool pool;
  Value a = pool.Intern("a"), b = pool.Intern("b");
  Domain d = Domain::Finite("d", {a, b});

  SymbolicInstance inst;
  CellId x = inst.NewCell(&d);
  CellId y = inst.NewCell(&d);
  CellId z = inst.NewCell();  // infinite
  CellId w = inst.NewCell(&d);
  ASSERT_TRUE(inst.Union(x, y));
  ASSERT_TRUE(inst.BindConst(w, a));
  (void)z;

  std::vector<CellId> cells = inst.UnboundFiniteCells();
  ASSERT_EQ(cells.size(), 1u);  // the {x,y} root; z infinite; w bound
  EXPECT_EQ(inst.Find(cells[0]), inst.Find(x));
}

TEST(SymbolicInstanceTest, CopyForksIndependently) {
  SymbolicInstance inst;
  CellId a = inst.NewCell();
  CellId b = inst.NewCell();
  SymbolicInstance fork = inst;
  ASSERT_TRUE(fork.Union(a, b));
  EXPECT_TRUE(fork.EqualCells(a, b));
  EXPECT_FALSE(inst.EqualCells(a, b));
}

TEST(SymbolicInstanceTest, RowsKeepRelationTags) {
  SymbolicInstance inst;
  CellId a = inst.NewCell();
  CellId b = inst.NewCell();
  size_t r = inst.AddRow(3, {a, b});
  EXPECT_EQ(inst.num_rows(), 1u);
  EXPECT_EQ(inst.row(r).relation, 3u);
  EXPECT_EQ(inst.row(r).cells.size(), 2u);
}

}  // namespace
}  // namespace cfdprop
