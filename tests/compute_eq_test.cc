#include "src/cover/compute_eq.h"

#include <gtest/gtest.h>

namespace cfdprop {
namespace {

class ComputeEQTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.AddRelation("R", {"A", "B", "C"}).ok());
    ASSERT_TRUE(cat_.AddRelation("S", {"D", "E"}).ok());
  }
  PatternValue Wc() { return PatternValue::Wildcard(); }
  PatternValue Const(const char* s) {
    return PatternValue::Constant(cat_.pool().Intern(s));
  }
  Catalog cat_;
};

TEST_F(ComputeEQTest, SelectionsFormClasses) {
  // sigma_{C=D and A='7'}(R x S): classes {A}=7, {B}, {C,D}, {E}.
  SPCViewBuilder b(cat_);
  size_t r = b.AddAtom(0);
  size_t s = b.AddAtom(1);
  ASSERT_TRUE(b.SelectEq(r, "C", s, "D").ok());
  ASSERT_TRUE(b.SelectConst(r, "A", "7").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  auto eq = ComputeEQ(cat_, *v, {});
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(eq->inconsistent);
  EXPECT_TRUE(eq->SameClass(2, 3));   // C = D
  EXPECT_FALSE(eq->SameClass(0, 1));
  EXPECT_EQ(eq->Key(0), cat_.pool().Find("7"));
  EXPECT_EQ(eq->Key(1), kNoValue);
  EXPECT_EQ(eq->Key(2), kNoValue);
}

TEST_F(ComputeEQTest, SourceCFDsContributeKeys) {
  // sigma forces B = b on every tuple (all-wildcard LHS), so column B is
  // keyed even without a selection on it.
  SPCViewBuilder b(cat_);
  b.AddAtom(0);
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  std::vector<CFD> sigma = {
      CFD::Make(0, {0}, {Wc()}, 1, Const("b")).value()};
  auto eq = ComputeEQ(cat_, *v, sigma);
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->Key(1), cat_.pool().Find("b"));
}

TEST_F(ComputeEQTest, InteractionPropagatesConstants) {
  // Selection A='a'; sigma: ([A=a] -> B=b). Chasing derives key(B)=b.
  SPCViewBuilder b(cat_);
  size_t r = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(r, "A", "a").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  std::vector<CFD> sigma = {
      CFD::Make(0, {0}, {Const("a")}, 1, Const("b")).value()};
  auto eq = ComputeEQ(cat_, *v, sigma);
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->Key(1), cat_.pool().Find("b"));
}

TEST_F(ComputeEQTest, ConflictYieldsBottom) {
  // Example 3.1 shape: CFD forces B=b1 everywhere, selection wants b2.
  SPCViewBuilder b(cat_);
  size_t r = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(r, "B", "b2").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  std::vector<CFD> sigma = {
      CFD::Make(0, {0}, {Wc()}, 1, Const("b1")).value()};
  auto eq = ComputeEQ(cat_, *v, sigma);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq->inconsistent);
}

TEST_F(ComputeEQTest, EQ2CFDEmitsConstantsAndEqualities) {
  // Output: A (keyed '7'), C and D (one unkeyed class), constant col K.
  SPCViewBuilder b(cat_);
  size_t r = b.AddAtom(0);
  size_t s = b.AddAtom(1);
  ASSERT_TRUE(b.SelectEq(r, "C", s, "D").ok());
  ASSERT_TRUE(b.SelectConst(r, "A", "7").ok());
  ASSERT_TRUE(b.Project(r, "A").ok());
  ASSERT_TRUE(b.Project(r, "C").ok());
  ASSERT_TRUE(b.Project(s, "D").ok());
  ASSERT_TRUE(b.ProjectConstant("K", "9").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  auto eq = ComputeEQ(cat_, *v, {});
  ASSERT_TRUE(eq.ok());
  std::vector<CFD> sigma_d = EQ2CFD(cat_, *v, *eq);

  int constants = 0, equalities = 0;
  for (const CFD& c : sigma_d) {
    if (c.is_special_x()) {
      ++equalities;
      // The only equality is between output cols 1 (C) and 2 (D).
      EXPECT_EQ(c.lhs[0], 1u);
      EXPECT_EQ(c.rhs, 2u);
    } else {
      ASSERT_TRUE(c.rhs_pat.is_constant());
      ++constants;
    }
  }
  EXPECT_EQ(equalities, 1);
  EXPECT_EQ(constants, 2);  // A='7' and K='9'
}

TEST_F(ComputeEQTest, EmptyViewCoverShapeAndDetection) {
  SPCViewBuilder b(cat_);
  b.AddAtom(0);
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  std::vector<CFD> pair = MakeEmptyViewCover(cat_, *v);
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_TRUE(IsEmptyViewCover(pair));

  // A normal cover is not an empty-view marker.
  std::vector<CFD> normal = {
      CFD::ConstantColumn(kViewSchemaId, 0, cat_.pool().Intern("0"))};
  EXPECT_FALSE(IsEmptyViewCover(normal));
}

TEST_F(ComputeEQTest, DuplicateProjectionOfOneColumnIsEquality) {
  SPCViewBuilder b(cat_);
  size_t r = b.AddAtom(0);
  ASSERT_TRUE(b.Project(r, "A", "a1").ok());
  ASSERT_TRUE(b.Project(r, "A", "a2").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  auto eq = ComputeEQ(cat_, *v, {});
  ASSERT_TRUE(eq.ok());
  std::vector<CFD> sigma_d = EQ2CFD(cat_, *v, *eq);
  ASSERT_EQ(sigma_d.size(), 1u);
  EXPECT_TRUE(sigma_d[0].is_special_x());
}

}  // namespace
}  // namespace cfdprop
