// End-to-end scenarios tying the whole pipeline together: build schema ->
// declare CFDs -> define views -> compute covers -> check propagation ->
// evaluate views on data -> validate the cover on the materialized view.

#include <gtest/gtest.h>

#include "src/cfd/implication.h"
#include "src/cover/propcfd_spc.h"
#include "src/data/eval.h"
#include "src/data/validate.h"
#include "src/propagation/emptiness.h"
#include "src/propagation/propagation.h"

namespace cfdprop {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  PatternValue Wc() { return PatternValue::Wildcard(); }
  PatternValue Const(const char* s) {
    return PatternValue::Constant(cat_.pool().Intern(s));
  }
  Catalog cat_;
};

TEST_F(IntegrationTest, PaperScenarioCoverHoldsOnData) {
  // Example 1.1 sources and data; the SPC disjunct Q1 (UK) only.
  std::vector<std::string> attrs = {"AC",    "phn",  "name",
                                    "street", "city", "zip"};
  ASSERT_TRUE(cat_.AddRelation("R1", attrs).ok());

  std::vector<CFD> sigma = {
      CFD::FD(0, {5}, 3).value(),                                 // zip->street
      CFD::FD(0, {0}, 4).value(),                                 // AC->city
      CFD::Make(0, {0}, {Const("20")}, 4, Const("LDN")).value(),  // cfd1
  };

  SPCViewBuilder b(cat_);
  size_t atom = b.AddAtom(0);
  for (const std::string& a : attrs) ASSERT_TRUE(b.Project(atom, a).ok());
  ASSERT_TRUE(b.ProjectConstant("CC", "44").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  // Compute the minimal propagation cover.
  auto cover = PropagationCoverSPC(cat_, *view, sigma);
  ASSERT_TRUE(cover.ok()) << cover.status();
  EXPECT_FALSE(cover->always_empty);
  EXPECT_FALSE(cover->cover.empty());

  // phi1 ([CC=44, zip] -> street) and phi4 must follow from the cover.
  CFD phi1 =
      CFD::Make(kViewSchemaId, {6, 5}, {Const("44"), Wc()}, 3, Wc()).value();
  CFD phi4 = CFD::Make(kViewSchemaId, {6, 0}, {Const("44"), Const("20")}, 4,
                       Const("LDN"))
                 .value();
  auto i1 = Implies(cover->cover, phi1, 7);
  auto i4 = Implies(cover->cover, phi4, 7);
  ASSERT_TRUE(i1.ok() && i4.ok());
  EXPECT_TRUE(*i1);
  EXPECT_TRUE(*i4);

  // Every cover CFD passes the independent propagation test.
  for (const CFD& c : cover->cover) {
    auto prop = IsPropagated(cat_, *view, sigma, c);
    ASSERT_TRUE(prop.ok());
    EXPECT_TRUE(*prop) << c.ToString(cat_);
  }

  // Materialize the view on the Fig. 1 UK data and check every cover
  // member holds on it.
  Database db(cat_);
  ASSERT_TRUE(db.InsertText(
      "R1", {"20", "1234567", "Mike", "Portland", "LDN", "W1B 1JL"}).ok());
  ASSERT_TRUE(db.InsertText(
      "R1", {"20", "3456789", "Rick", "Portland", "LDN", "W1B 1JL"}).ok());
  auto sat_src = SatisfiesAll(db, sigma);
  ASSERT_TRUE(sat_src.ok());
  ASSERT_TRUE(*sat_src);

  auto rows = Evaluate(db, *view);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  for (const CFD& c : cover->cover) {
    auto sat = Satisfies(*rows, c, 7);
    ASSERT_TRUE(sat.ok());
    EXPECT_TRUE(*sat) << c.ToString(cat_);
  }
}

TEST_F(IntegrationTest, DataIntegrationUpdateRejection) {
  // Application (2) of Section 1: a view update violating a propagated
  // CFD can be rejected without touching the sources. Insert a tuple
  // with CC=44, AC=20, city=edi into the view: phi4 rejects it.
  std::vector<std::string> attrs = {"AC", "city"};
  ASSERT_TRUE(cat_.AddRelation("R1", attrs).ok());
  std::vector<CFD> sigma = {
      CFD::Make(0, {0}, {Const("20")}, 1, Const("ldn")).value()};

  SPCViewBuilder b(cat_);
  size_t atom = b.AddAtom(0);
  ASSERT_TRUE(b.Project(atom, "AC").ok());
  ASSERT_TRUE(b.Project(atom, "city").ok());
  ASSERT_TRUE(b.ProjectConstant("CC", "44").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  auto cover = PropagationCoverSPC(cat_, *view, sigma);
  ASSERT_TRUE(cover.ok());

  // Current view contents + the candidate insertion.
  std::vector<Tuple> rows = {
      {cat_.pool().Intern("20"), cat_.pool().Intern("ldn"),
       cat_.pool().Intern("44")},
      {cat_.pool().Intern("20"), cat_.pool().Intern("edi"),
       cat_.pool().Intern("44")}};
  bool rejected = false;
  for (const CFD& c : cover->cover) {
    auto sat = Satisfies(rows, c, 3);
    ASSERT_TRUE(sat.ok());
    if (!*sat) rejected = true;
  }
  EXPECT_TRUE(rejected);
}

TEST_F(IntegrationTest, EmptinessAgreesWithCoverMarker) {
  ASSERT_TRUE(cat_.AddRelation("R", {"A", "B"}).ok());
  SPCViewBuilder b(cat_);
  size_t a = b.AddAtom(0);
  ASSERT_TRUE(b.SelectConst(a, "B", "b2").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  std::vector<CFD> sigma = {
      CFD::Make(0, {0}, {Wc()}, 1, Const("b1")).value()};

  auto empty = IsAlwaysEmpty(cat_, *view, sigma);
  auto cover = PropagationCoverSPC(cat_, *view, sigma);
  ASSERT_TRUE(empty.ok() && cover.ok());
  EXPECT_TRUE(*empty);
  EXPECT_TRUE(cover->always_empty);
  EXPECT_TRUE(IsEmptyViewCover(cover->cover));
}

TEST_F(IntegrationTest, CoverAnswersArbitraryPropagationQueries) {
  // The cover + implication = a propagation oracle (Section 4 intro):
  // Sigma |=_V phi iff Cover |= phi. Cross-check on a join view.
  ASSERT_TRUE(cat_.AddRelation("R", {"A", "B", "C"}).ok());
  ASSERT_TRUE(cat_.AddRelation("S", {"D", "E"}).ok());

  SPCViewBuilder b(cat_);
  size_t r = b.AddAtom(0);
  size_t s = b.AddAtom(1);
  ASSERT_TRUE(b.SelectEq(r, "C", s, "D").ok());
  ASSERT_TRUE(b.Project(r, "A").ok());
  ASSERT_TRUE(b.Project(r, "B").ok());
  ASSERT_TRUE(b.Project(s, "E").ok());
  auto view = b.Build();
  ASSERT_TRUE(view.ok());

  std::vector<CFD> sigma = {CFD::FD(0, {0}, 2).value(),   // R: A -> C
                            CFD::FD(1, {0}, 1).value()};  // S: D -> E
  auto cover = PropagationCoverSPC(cat_, *view, sigma);
  ASSERT_TRUE(cover.ok());

  std::vector<CFD> queries = {
      CFD::FD(kViewSchemaId, {0}, 2).value(),      // A -> E: yes
      CFD::FD(kViewSchemaId, {1}, 2).value(),      // B -> E: no
      CFD::FD(kViewSchemaId, {0}, 1).value(),      // A -> B: no
      CFD::FD(kViewSchemaId, {0, 1}, 2).value(),   // AB -> E: yes
  };
  for (const CFD& q : queries) {
    auto direct = IsPropagated(cat_, *view, sigma, q);
    auto via_cover = Implies(cover->cover, q, view->OutputArity());
    ASSERT_TRUE(direct.ok() && via_cover.ok());
    EXPECT_EQ(*direct, *via_cover) << q.ToString(cat_);
  }
}

}  // namespace
}  // namespace cfdprop
