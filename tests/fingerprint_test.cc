#include "src/engine/fingerprint.h"

#include <gtest/gtest.h>

#include "src/algebra/view.h"

namespace cfdprop {
namespace {

class FingerprintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.AddRelation("R", {"A", "B", "C"}).ok());
    ASSERT_TRUE(cat_.AddRelation("S", {"D", "E"}).ok());
  }

  uint64_t Fp(const SPCView& v) { return FingerprintSPCView(cat_, v); }

  Catalog cat_;
};

TEST_F(FingerprintTest, PermutedSelectionsCollide) {
  auto make = [&](bool swap_order) {
    SPCViewBuilder b(cat_);
    size_t r = b.AddAtom(0), s = b.AddAtom(1);
    if (swap_order) {
      EXPECT_TRUE(b.SelectConst(r, "A", "7").ok());
      EXPECT_TRUE(b.SelectEq(r, "B", s, "D").ok());
    } else {
      EXPECT_TRUE(b.SelectEq(s, "D", r, "B").ok());  // also flipped sides
      EXPECT_TRUE(b.SelectConst(r, "A", "7").ok());
    }
    EXPECT_TRUE(b.Project(r, "C").ok());
    auto v = b.Build();
    EXPECT_TRUE(v.ok());
    return *v;
  };
  EXPECT_EQ(Fp(make(false)), Fp(make(true)));
}

TEST_F(FingerprintTest, ReorderedProductAtomsCollide) {
  // R x S vs S x R with the same selections/projections: equivalent
  // modulo column renaming, so the fingerprints must collide.
  SPCView rs, sr;
  {
    SPCViewBuilder b(cat_);
    size_t r = b.AddAtom(0), s = b.AddAtom(1);
    ASSERT_TRUE(b.SelectEq(r, "B", s, "D").ok());
    ASSERT_TRUE(b.SelectConst(s, "E", "9").ok());
    ASSERT_TRUE(b.Project(r, "A").ok());
    ASSERT_TRUE(b.Project(s, "D").ok());
    auto v = b.Build();
    ASSERT_TRUE(v.ok());
    rs = *v;
  }
  {
    SPCViewBuilder b(cat_);
    size_t s = b.AddAtom(1), r = b.AddAtom(0);
    ASSERT_TRUE(b.SelectEq(r, "B", s, "D").ok());
    ASSERT_TRUE(b.SelectConst(s, "E", "9").ok());
    ASSERT_TRUE(b.Project(r, "A").ok());
    ASSERT_TRUE(b.Project(s, "D").ok());
    auto v = b.Build();
    ASSERT_TRUE(v.ok());
    sr = *v;
  }
  EXPECT_EQ(Fp(rs), Fp(sr));
}

TEST_F(FingerprintTest, RenamedOutputColumnsCollide) {
  auto make = [&](const char* name_a, const char* name_c) {
    SPCViewBuilder b(cat_);
    size_t r = b.AddAtom(0);
    EXPECT_TRUE(b.Project(r, "A", name_a).ok());
    EXPECT_TRUE(b.Project(r, "C", name_c).ok());
    auto v = b.Build();
    EXPECT_TRUE(v.ok());
    return *v;
  };
  EXPECT_EQ(Fp(make("A", "C")), Fp(make("x", "y")));
}

TEST_F(FingerprintTest, DifferentSelectionConstantsDiffer) {
  auto make = [&](const char* c) {
    SPCViewBuilder b(cat_);
    size_t r = b.AddAtom(0);
    EXPECT_TRUE(b.SelectConst(r, "A", c).ok());
    auto v = b.Build();
    EXPECT_TRUE(v.ok());
    return *v;
  };
  EXPECT_NE(Fp(make("7")), Fp(make("8")));
}

TEST_F(FingerprintTest, DifferentProjectionsDiffer) {
  auto make = [&](const char* attr) {
    SPCViewBuilder b(cat_);
    size_t r = b.AddAtom(0);
    EXPECT_TRUE(b.Project(r, attr).ok());
    auto v = b.Build();
    EXPECT_TRUE(v.ok());
    return *v;
  };
  EXPECT_NE(Fp(make("A")), Fp(make("B")));
}

TEST_F(FingerprintTest, OutputPositionsMatter) {
  // pi(A, C) and pi(C, A) serve different (positionally-indexed) covers.
  auto make = [&](bool swapped) {
    SPCViewBuilder b(cat_);
    size_t r = b.AddAtom(0);
    EXPECT_TRUE(b.Project(r, swapped ? "C" : "A").ok());
    EXPECT_TRUE(b.Project(r, swapped ? "A" : "C").ok());
    auto v = b.Build();
    EXPECT_TRUE(v.ok());
    return *v;
  };
  EXPECT_NE(Fp(make(false)), Fp(make(true)));
}

TEST_F(FingerprintTest, ConstantOutputColumnsAreHashedByText) {
  auto make = [&](const char* c) {
    SPCViewBuilder b(cat_);
    size_t r = b.AddAtom(0);
    EXPECT_TRUE(b.Project(r, "A").ok());
    EXPECT_TRUE(b.ProjectConstant("CC", c).ok());
    auto v = b.Build();
    EXPECT_TRUE(v.ok());
    return *v;
  };
  EXPECT_EQ(Fp(make("44")), Fp(make("44")));
  EXPECT_NE(Fp(make("44")), Fp(make("31")));
}

TEST_F(FingerprintTest, DuplicateSelectionsAreDeduped) {
  auto make = [&](int copies) {
    SPCViewBuilder b(cat_);
    size_t r = b.AddAtom(0);
    for (int i = 0; i < copies; ++i) {
      EXPECT_TRUE(b.SelectConst(r, "A", "7").ok());
    }
    auto v = b.Build();
    EXPECT_TRUE(v.ok());
    return *v;
  };
  EXPECT_EQ(Fp(make(1)), Fp(make(3)));
}

TEST_F(FingerprintTest, CanonicalViewIsEquivalent) {
  SPCViewBuilder b(cat_);
  size_t s = b.AddAtom(1), r = b.AddAtom(0);
  ASSERT_TRUE(b.SelectEq(r, "B", s, "D").ok());
  ASSERT_TRUE(b.Project(r, "A").ok());
  ASSERT_TRUE(b.Project(s, "E").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());

  SPCView canonical = CanonicalizeSPCView(cat_, *v);
  ASSERT_TRUE(canonical.Validate(cat_).ok());
  // R (id 0) sorts before S (id 1).
  EXPECT_EQ(canonical.atoms, (std::vector<RelationId>{0, 1}));
  // Output positions survive; the projected columns still point at R.A
  // and S.E after the remap (R.A = column 0, S.E = column 4 in R x S).
  ASSERT_EQ(canonical.output.size(), 2u);
  EXPECT_EQ(canonical.output[0].ec_column, 0u);
  EXPECT_EQ(canonical.output[1].ec_column, 4u);
  // Canonicalizing is idempotent on the fingerprint.
  EXPECT_EQ(Fp(*v), Fp(canonical));
}

TEST_F(FingerprintTest, RequestFingerprintSeparatesSigmaSets) {
  SPCViewBuilder b(cat_);
  size_t r = b.AddAtom(0);
  ASSERT_TRUE(b.Project(r, "A").ok());
  auto v = b.Build();
  ASSERT_TRUE(v.ok());
  EXPECT_NE(FingerprintRequest(cat_, *v, 0), FingerprintRequest(cat_, *v, 1));
  EXPECT_EQ(FingerprintRequest(cat_, *v, 0), FingerprintRequest(cat_, *v, 0));
}

class UnionFingerprintTest : public FingerprintTest {
 protected:
  /// pi(A, C) from R with a selection constant `c` on B.
  SPCView Disjunct(const char* c) {
    SPCViewBuilder b(cat_);
    size_t r = b.AddAtom(0);
    EXPECT_TRUE(b.SelectConst(r, "B", c).ok());
    EXPECT_TRUE(b.Project(r, "A").ok());
    EXPECT_TRUE(b.Project(r, "C").ok());
    auto v = b.Build();
    EXPECT_TRUE(v.ok());
    return *v;
  }

  SPCUView Union(std::vector<SPCView> disjuncts) {
    SPCUView u;
    u.disjuncts = std::move(disjuncts);
    return u;
  }
};

TEST_F(UnionFingerprintTest, InvariantUnderDisjunctReordering) {
  SPCView d1 = Disjunct("1"), d2 = Disjunct("2"), d3 = Disjunct("3");
  uint64_t fp123 = FingerprintSPCUView(cat_, Union({d1, d2, d3}));
  EXPECT_EQ(fp123, FingerprintSPCUView(cat_, Union({d3, d1, d2})));
  EXPECT_EQ(fp123, FingerprintSPCUView(cat_, Union({d2, d3, d1})));
  // The per-disjunct fingerprints stay in input order (they key the
  // partial-hit lookups), only the fused key is order-insensitive.
  UnionFingerprint a = FingerprintUnionRequestPair(cat_, Union({d1, d2}), 0);
  UnionFingerprint b = FingerprintUnionRequestPair(cat_, Union({d2, d1}), 0);
  EXPECT_EQ(a.fused.key, b.fused.key);
  EXPECT_EQ(a.fused.check, b.fused.check);
  ASSERT_EQ(a.disjuncts.size(), 2u);
  EXPECT_EQ(a.disjuncts[0].key, b.disjuncts[1].key);
  EXPECT_EQ(a.disjuncts[1].key, b.disjuncts[0].key);
}

TEST_F(UnionFingerprintTest, DistinctFromAnySingleDisjunctSpcFingerprint) {
  SPCView d1 = Disjunct("1"), d2 = Disjunct("2");
  uint64_t fused = FingerprintSPCUView(cat_, Union({d1, d2}));
  EXPECT_NE(fused, FingerprintSPCView(cat_, d1));
  EXPECT_NE(fused, FingerprintSPCView(cat_, d2));
  // Even a one-disjunct union is domain-separated from the bare SPC
  // request (the engine never caches under it — it degenerates to the
  // SPC path — but the keys must not alias).
  EXPECT_NE(FingerprintSPCUView(cat_, Union({d1})),
            FingerprintSPCView(cat_, d1));
}

TEST_F(UnionFingerprintTest, MultisetSemanticsCountDuplicates) {
  SPCView d1 = Disjunct("1"), d2 = Disjunct("2");
  EXPECT_NE(FingerprintSPCUView(cat_, Union({d1, d2})),
            FingerprintSPCUView(cat_, Union({d1, d1, d2})));
  EXPECT_EQ(FingerprintSPCUView(cat_, Union({d1, d1, d2})),
            FingerprintSPCUView(cat_, Union({d2, d1, d1})));
}

TEST_F(UnionFingerprintTest, DifferentDisjunctsOrSigmaDiffer) {
  SPCView d1 = Disjunct("1"), d2 = Disjunct("2"), d3 = Disjunct("3");
  EXPECT_NE(FingerprintSPCUView(cat_, Union({d1, d2})),
            FingerprintSPCUView(cat_, Union({d1, d3})));
  EXPECT_NE(FingerprintUnionRequestPair(cat_, Union({d1, d2}), 0).fused.key,
            FingerprintUnionRequestPair(cat_, Union({d1, d2}), 1).fused.key);
}

TEST_F(UnionFingerprintTest, EquivalentDisjunctVariantsCollide) {
  // Each disjunct is canonicalized before fusing, so a union of renamed/
  // reordered variants shares the union's cache line.
  SPCView d1 = Disjunct("1");
  SPCView d1_renamed;
  {
    SPCViewBuilder b(cat_);
    size_t r = b.AddAtom(0);
    EXPECT_TRUE(b.SelectConst(r, "B", "1").ok());
    EXPECT_TRUE(b.SelectConst(r, "B", "1").ok());  // duplicate conjunct
    EXPECT_TRUE(b.Project(r, "A", "x").ok());
    EXPECT_TRUE(b.Project(r, "C", "y").ok());
    auto v = b.Build();
    ASSERT_TRUE(v.ok());
    d1_renamed = *v;
  }
  SPCView d2 = Disjunct("2");
  EXPECT_EQ(FingerprintSPCUView(cat_, Union({d1, d2})),
            FingerprintSPCUView(cat_, Union({d1_renamed, d2})));
}

}  // namespace
}  // namespace cfdprop
