#include "src/cfd/implication.h"

#include <gtest/gtest.h>

#include "src/cfd/mincover.h"

namespace cfdprop {
namespace {

// All tests run over an abstract relation (id 0) with `kArity` attributes
// named by index: 0=A, 1=B, 2=C, 3=D.
constexpr size_t kArity = 4;

class ImplicationTest : public ::testing::Test {
 protected:
  Value V(const char* s) { return pool_.Intern(s); }
  CFD FD(std::vector<AttrIndex> lhs, AttrIndex rhs) {
    return CFD::FD(0, std::move(lhs), rhs).value();
  }
  CFD Pat(std::vector<AttrIndex> lhs, std::vector<PatternValue> pats,
          AttrIndex rhs, PatternValue rp) {
    return CFD::Make(0, std::move(lhs), std::move(pats), rhs, rp).value();
  }
  bool Implied(const std::vector<CFD>& sigma, const CFD& phi) {
    auto r = Implies(sigma, phi, kArity);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() && *r;
  }

  ValuePool pool_;
};

TEST_F(ImplicationTest, Reflexivity) {
  // {} |= nothing nontrivial, but sigma |= its own members.
  CFD f = FD({0}, 1);
  EXPECT_TRUE(Implied({f}, f));
  EXPECT_FALSE(Implied({}, f));
}

TEST_F(ImplicationTest, FDTransitivity) {
  CFD ab = FD({0}, 1), bc = FD({1}, 2), ac = FD({0}, 2);
  EXPECT_TRUE(Implied({ab, bc}, ac));
  EXPECT_FALSE(Implied({ab}, ac));
  EXPECT_FALSE(Implied({bc}, ac));
}

TEST_F(ImplicationTest, FDAugmentation) {
  // A -> B implies AC -> B.
  CFD ab = FD({0}, 1);
  CFD acb = FD({0, 2}, 1);
  EXPECT_TRUE(Implied({ab}, acb));
  EXPECT_FALSE(Implied({acb}, ab));  // converse fails
}

TEST_F(ImplicationTest, PatternUpgrade) {
  // (A -> B, (_ || _)) implies (A -> B, (a || _)): the conditional
  // version is weaker.
  PatternValue wc = PatternValue::Wildcard();
  PatternValue pa = PatternValue::Constant(V("a"));
  CFD general = Pat({0}, {wc}, 1, wc);
  CFD conditional = Pat({0}, {pa}, 1, wc);
  EXPECT_TRUE(Implied({general}, conditional));
  EXPECT_FALSE(Implied({conditional}, general));
}

TEST_F(ImplicationTest, ConstantRhsIsStronger) {
  // (A -> B, (a || b)) implies (A -> B, (a || _)) but not conversely.
  PatternValue wc = PatternValue::Wildcard();
  PatternValue pa = PatternValue::Constant(V("a"));
  PatternValue pb = PatternValue::Constant(V("b"));
  CFD with_const = Pat({0}, {pa}, 1, pb);
  CFD with_var = Pat({0}, {pa}, 1, wc);
  EXPECT_TRUE(Implied({with_const}, with_var));
  EXPECT_FALSE(Implied({with_var}, with_const));
}

TEST_F(ImplicationTest, CFDTransitivityWithPatterns) {
  // ([A=a] -> B=b) and ([B=b] -> C=c) imply ([A=a] -> C=c).
  PatternValue pa = PatternValue::Constant(V("a"));
  PatternValue pb = PatternValue::Constant(V("b"));
  PatternValue pc = PatternValue::Constant(V("c"));
  CFD f1 = Pat({0}, {pa}, 1, pb);
  CFD f2 = Pat({1}, {pb}, 2, pc);
  CFD f3 = Pat({0}, {pa}, 2, pc);
  EXPECT_TRUE(Implied({f1, f2}, f3));
  EXPECT_FALSE(Implied({f2}, f3));
}

TEST_F(ImplicationTest, ConstantsBlockTransitivity) {
  // ([A=a] -> B=b) and ([B=c] -> C=c') do NOT chain: b != c.
  PatternValue pa = PatternValue::Constant(V("a"));
  PatternValue pb = PatternValue::Constant(V("b"));
  PatternValue pc = PatternValue::Constant(V("c"));
  PatternValue pc2 = PatternValue::Constant(V("c2"));
  CFD f1 = Pat({0}, {pa}, 1, pb);
  CFD f2 = Pat({1}, {pc}, 2, pc2);
  CFD f3 = Pat({0}, {pa}, 2, pc2);
  EXPECT_FALSE(Implied({f1, f2}, f3));
}

TEST_F(ImplicationTest, UnsatisfiableLhsIsVacuouslyImplied) {
  // Sigma forces B = b on all tuples; phi conditions on B = b2 != b.
  PatternValue wc = PatternValue::Wildcard();
  PatternValue pb = PatternValue::Constant(V("b"));
  PatternValue pb2 = PatternValue::Constant(V("b2"));
  CFD all_b = Pat({0}, {wc}, 1, pb);  // (A -> B, (_ || b))
  CFD phi = Pat({1}, {pb2}, 2, wc);   // ([B=b2] -> C)
  EXPECT_TRUE(Implied({all_b}, phi));
}

TEST_F(ImplicationTest, EqualityCFDImplication) {
  // x-CFD A = B together with (B -> C) implies (A -> C).
  CFD eq = CFD::Equality(0, 0, 1);
  CFD bc = FD({1}, 2);
  CFD ac = FD({0}, 2);
  EXPECT_TRUE(Implied({eq, bc}, ac));
  EXPECT_FALSE(Implied({bc}, ac));

  // And A = B itself is implied only when present.
  EXPECT_TRUE(Implied({eq}, CFD::Equality(0, 0, 1)));
  EXPECT_TRUE(Implied({eq}, CFD::Equality(0, 1, 0)));  // symmetry
  EXPECT_FALSE(Implied({bc}, CFD::Equality(0, 0, 1)));
}

TEST_F(ImplicationTest, EqualityTransitivity) {
  CFD ab = CFD::Equality(0, 0, 1);
  CFD bc = CFD::Equality(0, 1, 2);
  EXPECT_TRUE(Implied({ab, bc}, CFD::Equality(0, 0, 2)));
}

TEST_F(ImplicationTest, EmptyLhsConstantImpliesConstantColumn) {
  // (() -> A = a) and the (A -> A, (_ || a)) form are equivalent.
  CFD empty_lhs;
  empty_lhs.relation = 0;
  empty_lhs.rhs = 0;
  empty_lhs.rhs_pat = PatternValue::Constant(V("a"));
  CFD col_form = CFD::ConstantColumn(0, 0, V("a"));
  EXPECT_TRUE(Implied({empty_lhs}, col_form));
  EXPECT_TRUE(Implied({col_form}, empty_lhs));
}

TEST_F(ImplicationTest, MismatchedRelationRejected) {
  CFD f = FD({0}, 1);
  CFD g = f;
  g.relation = 1;
  auto r = Implies({f}, g, kArity);
  EXPECT_FALSE(r.ok());
}

// --- general setting: finite domains change the answers ---------------

TEST_F(ImplicationTest, FiniteDomainEnablesCaseAnalysis) {
  // dom(A) = {0, 1}. ([A=0] -> B=b) and ([A=1] -> B=b) imply
  // (A -> B, (_ || b)) only in the general setting: every tuple's A is 0
  // or 1, so B = b always. With infinite domains a fresh A-value escapes
  // both premises.
  Value v0 = V("0"), v1 = V("1"), vb = V("b");
  Domain bool_dom = Domain::Finite("bool", {v0, v1});
  AttrDomains domains(kArity, nullptr);
  domains[0] = &bool_dom;

  CFD f0 = Pat({0}, {PatternValue::Constant(v0)}, 1,
               PatternValue::Constant(vb));
  CFD f1 = Pat({0}, {PatternValue::Constant(v1)}, 1,
               PatternValue::Constant(vb));
  CFD phi = Pat({0}, {PatternValue::Wildcard()}, 1,
                PatternValue::Constant(vb));

  ImplicationOptions infinite;
  auto r_inf = Implies({f0, f1}, phi, kArity, domains, infinite);
  ASSERT_TRUE(r_inf.ok());
  EXPECT_FALSE(*r_inf);

  ImplicationOptions general;
  general.general_setting = true;
  auto r_gen = Implies({f0, f1}, phi, kArity, domains, general);
  ASSERT_TRUE(r_gen.ok());
  EXPECT_TRUE(*r_gen);
}

TEST_F(ImplicationTest, SatisfiabilityInfiniteDomain) {
  PatternValue wc = PatternValue::Wildcard();
  CFD a1 = Pat({0}, {wc}, 1, PatternValue::Constant(V("x1")));
  CFD a2 = Pat({0}, {wc}, 1, PatternValue::Constant(V("x2")));
  auto sat1 = IsSatisfiable({a1}, kArity);
  ASSERT_TRUE(sat1.ok());
  EXPECT_TRUE(*sat1);
  // B must equal two distinct constants on every tuple: unsatisfiable.
  auto sat2 = IsSatisfiable({a1, a2}, kArity);
  ASSERT_TRUE(sat2.ok());
  EXPECT_FALSE(*sat2);
}

TEST_F(ImplicationTest, SatisfiabilityGeneralSetting) {
  // dom(A) = {0,1}; ([A=0] -> B=p) + ([A=0] -> B=q) is satisfiable by
  // tuples with A=1, and the general-setting check must find that
  // instantiation.
  Value v0 = V("0"), v1 = V("1");
  Domain bool_dom = Domain::Finite("bool", {v0, v1});
  AttrDomains domains(kArity, nullptr);
  domains[0] = &bool_dom;

  CFD f0 = Pat({0}, {PatternValue::Constant(v0)}, 1,
               PatternValue::Constant(V("p")));
  CFD f1 = Pat({0}, {PatternValue::Constant(v0)}, 1,
               PatternValue::Constant(V("q")));
  ImplicationOptions general;
  general.general_setting = true;
  auto sat = IsSatisfiable({f0, f1}, kArity, domains, general);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);

  // Forcing both branches closed makes it unsatisfiable.
  CFD g0 = Pat({0}, {PatternValue::Constant(v1)}, 1,
               PatternValue::Constant(V("p")));
  CFD g1 = Pat({0}, {PatternValue::Constant(v1)}, 1,
               PatternValue::Constant(V("q")));
  auto sat2 = IsSatisfiable({f0, f1, g0, g1}, kArity, domains, general);
  ASSERT_TRUE(sat2.ok());
  EXPECT_FALSE(*sat2);
}

TEST_F(ImplicationTest, GeneralSettingBudgetErrorsOut) {
  // 20 boolean attributes: 2^20+ instantiations exceed a small budget.
  std::vector<Value> bools = {V("0"), V("1")};
  Domain bool_dom = Domain::Finite("bool", bools);
  AttrDomains domains(kArity, &bool_dom);

  CFD phi = Pat({0}, {PatternValue::Wildcard()}, 1,
                PatternValue::Wildcard());
  ImplicationOptions tight;
  tight.general_setting = true;
  tight.instantiation.max_instantiations = 3;  // 2 rows x 4 attrs > 3
  auto r = Implies({}, phi, kArity, domains, tight);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ImplicationTest, EquivalenceUtility) {
  CFD ab = FD({0}, 1), bc = FD({1}, 2), ac = FD({0}, 2);
  auto eq1 = AreEquivalent({ab, bc}, {ab, bc, ac}, kArity);
  ASSERT_TRUE(eq1.ok());
  EXPECT_TRUE(*eq1);
  auto eq2 = AreEquivalent({ab}, {ab, bc}, kArity);
  ASSERT_TRUE(eq2.ok());
  EXPECT_FALSE(*eq2);
  auto eq3 = AreEquivalent({}, {}, kArity);
  ASSERT_TRUE(eq3.ok());
  EXPECT_TRUE(*eq3);
}

TEST_F(ImplicationTest, EmptySigmaIsSatisfiable) {
  auto sat = IsSatisfiable({}, kArity);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
}

}  // namespace
}  // namespace cfdprop
