#include "src/cfd/pattern.h"

#include <gtest/gtest.h>

namespace cfdprop {
namespace {

class PatternTest : public ::testing::Test {
 protected:
  ValuePool pool_;
  Value a_ = pool_.Intern("a");
  Value b_ = pool_.Intern("b");
  PatternValue wc_ = PatternValue::Wildcard();
  PatternValue pa_ = PatternValue::Constant(a_);
  PatternValue pb_ = PatternValue::Constant(b_);
  PatternValue x_ = PatternValue::SpecialX();
};

TEST_F(PatternTest, Kinds) {
  EXPECT_TRUE(wc_.is_wildcard());
  EXPECT_TRUE(pa_.is_constant());
  EXPECT_TRUE(x_.is_special_x());
  EXPECT_EQ(pa_.value(), a_);
}

TEST_F(PatternTest, DataLevelMatch) {
  EXPECT_TRUE(wc_.MatchesValue(a_));
  EXPECT_TRUE(wc_.MatchesValue(b_));
  EXPECT_TRUE(pa_.MatchesValue(a_));
  EXPECT_FALSE(pa_.MatchesValue(b_));
  EXPECT_FALSE(x_.MatchesValue(a_));  // x never matches data directly
}

TEST_F(PatternTest, PatternLevelMatch) {
  // (Portland, ldn) matches (_, ldn) but not (_, nyc) — Section 2.1.
  EXPECT_TRUE(PatternValue::Matches(pa_, wc_));
  EXPECT_TRUE(PatternValue::Matches(wc_, pa_));
  EXPECT_TRUE(PatternValue::Matches(pa_, pa_));
  EXPECT_FALSE(PatternValue::Matches(pa_, pb_));
}

TEST_F(PatternTest, OrderPutsConstantsBelowWildcard) {
  EXPECT_TRUE(PatternValue::LessEq(pa_, wc_));
  EXPECT_TRUE(PatternValue::LessEq(pa_, pa_));
  EXPECT_TRUE(PatternValue::LessEq(wc_, wc_));
  EXPECT_FALSE(PatternValue::LessEq(wc_, pa_));
  EXPECT_FALSE(PatternValue::LessEq(pa_, pb_));
}

TEST_F(PatternTest, MinIsTheMeet) {
  auto m1 = PatternValue::Min(pa_, wc_);
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(*m1, pa_);

  auto m2 = PatternValue::Min(wc_, pa_);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(*m2, pa_);

  auto m3 = PatternValue::Min(wc_, wc_);
  ASSERT_TRUE(m3.has_value());
  EXPECT_EQ(*m3, wc_);

  auto m4 = PatternValue::Min(pa_, pa_);
  ASSERT_TRUE(m4.has_value());
  EXPECT_EQ(*m4, pa_);

  // Two distinct constants are incomparable: oplus undefined.
  EXPECT_FALSE(PatternValue::Min(pa_, pb_).has_value());
}

TEST_F(PatternTest, EqualityDistinguishesKindsAndValues) {
  EXPECT_EQ(wc_, PatternValue::Wildcard());
  EXPECT_EQ(x_, PatternValue::SpecialX());
  EXPECT_NE(pa_, pb_);
  EXPECT_NE(pa_, wc_);
  EXPECT_NE(x_, wc_);
}

TEST_F(PatternTest, ToString) {
  EXPECT_EQ(wc_.ToString(pool_), "_");
  EXPECT_EQ(x_.ToString(pool_), "x");
  EXPECT_EQ(pa_.ToString(pool_), "a");
}

}  // namespace
}  // namespace cfdprop
