// CFD satisfaction on concrete data (Definition 2.1 semantics) and
// violation detection — the data-cleaning use of CFDs.
//
// D |= (X -> A, tp) iff for every ordered pair of tuples t1, t2
// (including t1 = t2) with t1[X] = t2[X] matching tp[X], t1[A] = t2[A]
// matches tp[A]. A pair (i, i) in a violation report is a single-tuple
// violation: the tuple matches tp[X] but its A disagrees with a constant
// tp[A]. D |= (A -> B, (x || x)) iff every tuple has t[A] = t[B].

#ifndef CFDPROP_DATA_VALIDATE_H_
#define CFDPROP_DATA_VALIDATE_H_

#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/data/database.h"

namespace cfdprop {

/// A violating pair of tuple indices (i <= j; i == j for single-tuple
/// constant violations).
using Violation = std::pair<size_t, size_t>;

/// All violations of `cfd` on a tuple set (a relation instance or a
/// materialized view). `arity` is the tuple width the CFD is over.
Result<std::vector<Violation>> FindViolations(const std::vector<Tuple>& rows,
                                              const CFD& cfd, size_t arity);

/// True iff the tuple set satisfies `cfd`. Decides in one pass with an
/// early exit at the first violation — it never materializes the
/// violation list, so prefer it over FindViolations().empty() on hot
/// paths (repair loops, generators).
Result<bool> Satisfies(const std::vector<Tuple>& rows, const CFD& cfd,
                       size_t arity);

/// True iff the database satisfies a source CFD (on cfd.relation).
Result<bool> Satisfies(const Database& db, const CFD& cfd);

/// True iff the database satisfies every CFD of sigma.
Result<bool> SatisfiesAll(const Database& db, const std::vector<CFD>& sigma);

}  // namespace cfdprop

#endif  // CFDPROP_DATA_VALIDATE_H_
