#include "src/data/database.h"

namespace cfdprop {

Database::Database(Catalog& catalog) : catalog_(catalog) {
  relations_.reserve(catalog.num_relations());
  for (RelationId i = 0; i < catalog.num_relations(); ++i) {
    relations_.emplace_back(&catalog.relation(i), i);
  }
}

Status Database::Insert(RelationId id, Tuple t) {
  if (id >= relations_.size()) {
    return Status::InvalidArgument("unknown relation id");
  }
  return relations_[id].Insert(std::move(t));
}

Status Database::InsertText(std::string_view relation_name,
                            const std::vector<std::string>& texts) {
  RelationId id = catalog_.FindRelation(relation_name);
  if (id == kNoRelation) {
    return Status::NotFound("unknown relation: " +
                            std::string(relation_name));
  }
  Tuple t;
  t.reserve(texts.size());
  for (const std::string& s : texts) t.push_back(catalog_.pool().Intern(s));
  return Insert(id, std::move(t));
}

}  // namespace cfdprop
