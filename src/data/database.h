// A database: one Relation instance per catalog relation.

#ifndef CFDPROP_DATA_DATABASE_H_
#define CFDPROP_DATA_DATABASE_H_

#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/data/relation.h"
#include "src/schema/schema.h"

namespace cfdprop {

/// Holds an instance of every relation of a catalog. The catalog is
/// non-const so text inserts can intern new constants.
class Database {
 public:
  explicit Database(Catalog& catalog);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  Relation& relation(RelationId id) { return relations_[id]; }
  const Relation& relation(RelationId id) const { return relations_[id]; }
  size_t num_relations() const { return relations_.size(); }

  /// Inserts a tuple of already-interned values.
  Status Insert(RelationId id, Tuple t);

  /// Convenience: interns `texts` and inserts into the named relation.
  Status InsertText(std::string_view relation_name,
                    const std::vector<std::string>& texts);

 private:
  Catalog& catalog_;
  std::vector<Relation> relations_;
};

}  // namespace cfdprop

#endif  // CFDPROP_DATA_DATABASE_H_
