#include "src/data/validate.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/base/hash.h"

namespace cfdprop {

namespace {

/// Hash for LHS key vectors: FNV-1a over the Values, each spread through
/// SplitMix64 first so near-identical small ids (interned constants are
/// dense from 0) don't cluster the buckets.
struct KeyVectorHash {
  size_t operator()(const std::vector<Value>& key) const {
    Fnv1aHasher h;
    for (Value v : key) h.Mix(SplitMix64(v));
    return static_cast<size_t>(h.digest());
  }
};

/// True iff the tuple matches tp[X] (all LHS pattern entries).
bool MatchesLhs(const Tuple& t, const CFD& cfd) {
  for (size_t k = 0; k < cfd.lhs.size(); ++k) {
    if (!cfd.lhs_pats[k].MatchesValue(t[cfd.lhs[k]])) return false;
  }
  return true;
}

std::vector<Value> LhsKey(const Tuple& t, const CFD& cfd) {
  std::vector<Value> key;
  key.reserve(cfd.lhs.size());
  for (AttrIndex a : cfd.lhs) key.push_back(t[a]);
  return key;
}

}  // namespace

Result<std::vector<Violation>> FindViolations(const std::vector<Tuple>& rows,
                                              const CFD& cfd, size_t arity) {
  CFDPROP_RETURN_NOT_OK(cfd.Validate(arity));
  std::vector<Violation> out;

  if (cfd.is_special_x()) {
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i][cfd.lhs[0]] != rows[i][cfd.rhs]) out.emplace_back(i, i);
    }
    return out;
  }

  // Group the tuples matching tp[X] by their X values; within a group
  // every RHS value must be identical and match tp[A]. Hash-grouped:
  // the final sort below fixes the report order, so the ordered map the
  // grouping used to pay for brought nothing.
  std::unordered_map<std::vector<Value>, std::vector<size_t>, KeyVectorHash>
      groups;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!MatchesLhs(rows[i], cfd)) continue;
    groups[LhsKey(rows[i], cfd)].push_back(i);
  }

  for (const auto& [key, members] : groups) {
    // Single-tuple violations: constant RHS pattern mismatch.
    if (cfd.rhs_pat.is_constant()) {
      for (size_t i : members) {
        if (rows[i][cfd.rhs] != cfd.rhs_pat.value()) out.emplace_back(i, i);
      }
    }
    // Pair violations: disagreement on the RHS within the group.
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        if (rows[members[a]][cfd.rhs] != rows[members[b]][cfd.rhs]) {
          out.emplace_back(members[a], members[b]);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<bool> Satisfies(const std::vector<Tuple>& rows, const CFD& cfd,
                       size_t arity) {
  CFDPROP_RETURN_NOT_OK(cfd.Validate(arity));

  if (cfd.is_special_x()) {
    for (const Tuple& t : rows) {
      if (t[cfd.lhs[0]] != t[cfd.rhs]) return false;
    }
    return true;
  }

  // Early exit: deciding satisfaction never needs the violation list
  // FindViolations builds — the first offending tuple settles it.
  if (cfd.rhs_pat.is_constant()) {
    // With a constant RHS, group disagreement is impossible among
    // non-offending tuples (they all equal the constant), so the
    // single-tuple check alone decides — no grouping map at all.
    for (const Tuple& t : rows) {
      if (MatchesLhs(t, cfd) && t[cfd.rhs] != cfd.rhs_pat.value()) {
        return false;
      }
    }
    return true;
  }
  // Wildcard RHS: one representative RHS per LHS group; the first
  // tuple that disagrees with its group's representative decides.
  std::unordered_map<std::vector<Value>, Value, KeyVectorHash> group_rhs;
  for (const Tuple& t : rows) {
    if (!MatchesLhs(t, cfd)) continue;
    auto [it, inserted] = group_rhs.emplace(LhsKey(t, cfd), t[cfd.rhs]);
    if (!inserted && it->second != t[cfd.rhs]) return false;
  }
  return true;
}

Result<bool> Satisfies(const Database& db, const CFD& cfd) {
  if (cfd.relation >= db.num_relations()) {
    return Status::InvalidArgument("CFD on unknown relation");
  }
  const Relation& rel = db.relation(cfd.relation);
  return Satisfies(rel.tuples(), cfd, rel.schema().arity());
}

Result<bool> SatisfiesAll(const Database& db, const std::vector<CFD>& sigma) {
  for (const CFD& c : sigma) {
    CFDPROP_ASSIGN_OR_RETURN(bool ok, Satisfies(db, c));
    if (!ok) return false;
  }
  return true;
}

}  // namespace cfdprop
