#include "src/data/validate.h"

#include <algorithm>
#include <map>

namespace cfdprop {

Result<std::vector<Violation>> FindViolations(const std::vector<Tuple>& rows,
                                              const CFD& cfd, size_t arity) {
  CFDPROP_RETURN_NOT_OK(cfd.Validate(arity));
  std::vector<Violation> out;

  if (cfd.is_special_x()) {
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i][cfd.lhs[0]] != rows[i][cfd.rhs]) out.emplace_back(i, i);
    }
    return out;
  }

  // Group the tuples matching tp[X] by their X values; within a group
  // every RHS value must be identical and match tp[A].
  std::map<std::vector<Value>, std::vector<size_t>> groups;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Tuple& t = rows[i];
    bool matches = true;
    for (size_t k = 0; k < cfd.lhs.size(); ++k) {
      if (!cfd.lhs_pats[k].MatchesValue(t[cfd.lhs[k]])) {
        matches = false;
        break;
      }
    }
    if (!matches) continue;
    std::vector<Value> key;
    key.reserve(cfd.lhs.size());
    for (AttrIndex a : cfd.lhs) key.push_back(t[a]);
    groups[std::move(key)].push_back(i);
  }

  for (const auto& [key, members] : groups) {
    // Single-tuple violations: constant RHS pattern mismatch.
    if (cfd.rhs_pat.is_constant()) {
      for (size_t i : members) {
        if (rows[i][cfd.rhs] != cfd.rhs_pat.value()) out.emplace_back(i, i);
      }
    }
    // Pair violations: disagreement on the RHS within the group.
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        if (rows[members[a]][cfd.rhs] != rows[members[b]][cfd.rhs]) {
          out.emplace_back(members[a], members[b]);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<bool> Satisfies(const std::vector<Tuple>& rows, const CFD& cfd,
                       size_t arity) {
  CFDPROP_ASSIGN_OR_RETURN(std::vector<Violation> v,
                           FindViolations(rows, cfd, arity));
  return v.empty();
}

Result<bool> Satisfies(const Database& db, const CFD& cfd) {
  if (cfd.relation >= db.num_relations()) {
    return Status::InvalidArgument("CFD on unknown relation");
  }
  const Relation& rel = db.relation(cfd.relation);
  return Satisfies(rel.tuples(), cfd, rel.schema().arity());
}

Result<bool> SatisfiesAll(const Database& db, const std::vector<CFD>& sigma) {
  for (const CFD& c : sigma) {
    CFDPROP_ASSIGN_OR_RETURN(bool ok, Satisfies(db, c));
    if (!ok) return false;
  }
  return true;
}

}  // namespace cfdprop
