// Concrete relations: bags of interned-value tuples over a schema.

#ifndef CFDPROP_DATA_RELATION_H_
#define CFDPROP_DATA_RELATION_H_

#include <vector>

#include "src/base/status.h"
#include "src/base/value.h"
#include "src/schema/schema.h"

namespace cfdprop {

/// A tuple of interned values; position i corresponds to attribute i.
using Tuple = std::vector<Value>;

/// An instance of one relation schema. Set semantics: duplicate inserts
/// are ignored.
class Relation {
 public:
  Relation(const RelationSchema* schema, RelationId id)
      : schema_(schema), id_(id) {}

  const RelationSchema& schema() const { return *schema_; }
  RelationId id() const { return id_; }

  /// Inserts a tuple; checks arity and finite-domain membership.
  Status Insert(Tuple t);

  size_t size() const { return tuples_.size(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }

 private:
  const RelationSchema* schema_;
  RelationId id_;
  std::vector<Tuple> tuples_;
};

}  // namespace cfdprop

#endif  // CFDPROP_DATA_RELATION_H_
