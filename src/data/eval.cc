#include "src/data/eval.h"

#include <algorithm>

namespace cfdprop {

namespace {

/// Recursive product with selection pushdown: extends `current` (the
/// concatenated tuple over atoms [0, depth)) one atom at a time, checking
/// every selection whose columns are all materialized.
struct ProductState {
  const Database& db;
  const SPCView& view;
  const EvalOptions& options;
  std::vector<ColumnId> atom_base;  // first column of each atom
  std::vector<Value> current;       // Ec columns materialized so far
  std::vector<Tuple> out;
  uint64_t rows = 0;

  bool SelectionsHold(size_t columns_ready) const {
    for (const Selection& s : view.selections) {
      if (s.left >= columns_ready) continue;
      if (s.kind == Selection::Kind::kConstantEq) {
        if (current[s.left] != s.value) return false;
      } else {
        if (s.right >= columns_ready) continue;
        if (current[s.left] != current[s.right]) return false;
      }
    }
    return true;
  }

  Status Recurse(size_t atom) {
    if (atom == view.atoms.size()) {
      Tuple t;
      t.reserve(view.output.size());
      for (const OutputColumn& o : view.output) {
        t.push_back(o.is_constant ? o.value : current[o.ec_column]);
      }
      out.push_back(std::move(t));
      return Status::OK();
    }
    const Relation& rel = db.relation(view.atoms[atom]);
    const size_t before = current.size();
    for (const Tuple& row : rel.tuples()) {
      if (++rows > options.max_rows) {
        return Status::ResourceExhausted("view evaluation row budget");
      }
      current.insert(current.end(), row.begin(), row.end());
      if (SelectionsHold(current.size())) {
        CFDPROP_RETURN_NOT_OK(Recurse(atom + 1));
      }
      current.resize(before);
    }
    return Status::OK();
  }
};

void Dedupe(std::vector<Tuple>& rows) {
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
}

}  // namespace

Result<std::vector<Tuple>> Evaluate(const Database& db, const SPCView& view,
                                    const EvalOptions& options) {
  CFDPROP_RETURN_NOT_OK(view.Validate(db.catalog()));
  ProductState state{db, view, options, {}, {}, {}, 0};
  CFDPROP_RETURN_NOT_OK(state.Recurse(0));
  Dedupe(state.out);
  return std::move(state.out);
}

Result<std::vector<Tuple>> Evaluate(const Database& db, const SPCUView& view,
                                    const EvalOptions& options) {
  CFDPROP_RETURN_NOT_OK(view.Validate(db.catalog()));
  std::vector<Tuple> all;
  for (const SPCView& v : view.disjuncts) {
    CFDPROP_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                             Evaluate(db, v, options));
    for (Tuple& t : rows) all.push_back(std::move(t));
  }
  Dedupe(all);
  return all;
}

}  // namespace cfdprop
