// Evaluation of SPC/SPCU views over concrete databases.
//
// Used by the examples (materializing Example 1.1's integration view)
// and by the property tests: for random sources satisfying Sigma, every
// CFD of a propagation cover must hold on the evaluated view.

#ifndef CFDPROP_DATA_EVAL_H_
#define CFDPROP_DATA_EVAL_H_

#include <vector>

#include "src/algebra/view.h"
#include "src/base/status.h"
#include "src/data/database.h"

namespace cfdprop {

struct EvalOptions {
  /// Cap on intermediate product size; the Cartesian product of n atoms
  /// is exponential in n.
  uint64_t max_rows = 1u << 22;
};

/// Evaluates an SPC view; set semantics (duplicates eliminated).
Result<std::vector<Tuple>> Evaluate(const Database& db, const SPCView& view,
                                    const EvalOptions& options = {});

/// Evaluates an SPCU view (union of the disjuncts' results).
Result<std::vector<Tuple>> Evaluate(const Database& db, const SPCUView& view,
                                    const EvalOptions& options = {});

}  // namespace cfdprop

#endif  // CFDPROP_DATA_EVAL_H_
