#include "src/data/relation.h"

#include <algorithm>

namespace cfdprop {

Status Relation::Insert(Tuple t) {
  if (t.size() != schema_->arity()) {
    return Status::InvalidArgument("tuple arity mismatch for relation " +
                                   schema_->name());
  }
  for (size_t i = 0; i < t.size(); ++i) {
    const Domain& d = schema_->attr(static_cast<AttrIndex>(i)).domain;
    if (!d.Contains(t[i])) {
      return Status::InvalidArgument(
          "value outside the finite domain of attribute " +
          schema_->attr(static_cast<AttrIndex>(i)).name);
    }
  }
  if (std::find(tuples_.begin(), tuples_.end(), t) != tuples_.end()) {
    return Status::OK();  // set semantics
  }
  tuples_.push_back(std::move(t));
  return Status::OK();
}

}  // namespace cfdprop
