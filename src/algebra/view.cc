#include "src/algebra/view.h"

namespace cfdprop {

std::string OperatorProfile::Label() const {
  std::string out;
  if (selection) out += 'S';
  if (projection) out += 'P';
  if (product) out += 'C';
  if (has_union) out += 'U';
  if (out.empty()) out = "I";
  return out;
}

Status SPCView::Validate(const Catalog& catalog) const {
  if (atoms.empty()) {
    return Status::InvalidArgument("SPC view has no relation atoms");
  }
  for (RelationId r : atoms) {
    if (r >= catalog.num_relations()) {
      return Status::InvalidArgument("unknown relation atom");
    }
  }
  const size_t u = NumEcColumns(catalog);
  for (const Selection& s : selections) {
    if (s.left >= u) return Status::InvalidArgument("selection column oob");
    if (s.kind == Selection::Kind::kColumnEq) {
      if (s.right >= u) {
        return Status::InvalidArgument("selection column oob");
      }
    } else if (s.value == kNoValue) {
      return Status::InvalidArgument("constant selection without value");
    }
  }
  if (output.empty()) {
    return Status::InvalidArgument("SPC view has empty output");
  }
  for (const OutputColumn& o : output) {
    if (o.is_constant) {
      if (o.value == kNoValue) {
        return Status::InvalidArgument("constant output without value");
      }
    } else if (o.ec_column >= u) {
      return Status::InvalidArgument("output column oob");
    }
  }
  return Status::OK();
}

size_t SPCView::NumEcColumns(const Catalog& catalog) const {
  size_t u = 0;
  for (RelationId r : atoms) u += catalog.relation(r).arity();
  return u;
}

ColumnId SPCView::AtomBase(const Catalog& catalog, size_t atom) const {
  size_t base = 0;
  for (size_t j = 0; j < atom; ++j) {
    base += catalog.relation(atoms[j]).arity();
  }
  return static_cast<ColumnId>(base);
}

std::pair<size_t, AttrIndex> SPCView::Locate(const Catalog& catalog,
                                             ColumnId col) const {
  size_t base = 0;
  for (size_t j = 0; j < atoms.size(); ++j) {
    size_t arity = catalog.relation(atoms[j]).arity();
    if (col < base + arity) {
      return {j, static_cast<AttrIndex>(col - base)};
    }
    base += arity;
  }
  return {atoms.size(), kNoAttr};  // out of range
}

const Domain* SPCView::EcColumnDomain(const Catalog& catalog,
                                      ColumnId col) const {
  auto [atom, attr] = Locate(catalog, col);
  if (atom >= atoms.size()) return nullptr;
  return &catalog.relation(atoms[atom]).attr(attr).domain;
}

const Domain* SPCView::OutputDomain(const Catalog& catalog, size_t i) const {
  const OutputColumn& o = output[i];
  if (o.is_constant) return nullptr;
  return EcColumnDomain(catalog, o.ec_column);
}

SPCView SPCView::PermuteAtoms(const Catalog& catalog,
                              const std::vector<size_t>& order) const {
  SPCView permuted;
  permuted.atoms.reserve(atoms.size());
  for (size_t old_atom : order) permuted.atoms.push_back(atoms[old_atom]);

  // col_map[old column] = new column.
  const size_t u = NumEcColumns(catalog);
  std::vector<ColumnId> col_map(u, 0);
  ColumnId new_base = 0;
  for (size_t old_atom : order) {
    ColumnId old_base = AtomBase(catalog, old_atom);
    size_t arity = catalog.relation(atoms[old_atom]).arity();
    for (size_t k = 0; k < arity; ++k) {
      col_map[old_base + k] = new_base + static_cast<ColumnId>(k);
    }
    new_base += static_cast<ColumnId>(arity);
  }

  permuted.selections = selections;
  for (Selection& s : permuted.selections) {
    s.left = col_map[s.left];
    if (s.kind == Selection::Kind::kColumnEq) s.right = col_map[s.right];
  }
  permuted.output = output;
  for (OutputColumn& o : permuted.output) {
    if (!o.is_constant) o.ec_column = col_map[o.ec_column];
  }
  return permuted;
}

OperatorProfile SPCView::Profile(const Catalog& catalog) const {
  OperatorProfile p;
  p.selection = !selections.empty();
  bool has_const_col = false;
  size_t projected = 0;
  for (const OutputColumn& o : output) {
    if (o.is_constant) {
      has_const_col = true;
    } else {
      ++projected;
    }
  }
  // Proper projection: not all Ec columns appear in the output.
  p.projection = projected < NumEcColumns(catalog);
  p.product = atoms.size() > 1 || has_const_col;
  return p;
}

std::string SPCView::ToString(const Catalog& catalog) const {
  std::string out = "pi[";
  for (size_t i = 0; i < output.size(); ++i) {
    if (i > 0) out += ", ";
    out += output[i].name;
    if (output[i].is_constant) {
      out += "=" + catalog.pool().Text(output[i].value);
    }
  }
  out += "] sigma[";
  auto col_name = [&](ColumnId c) {
    auto [atom, attr] = Locate(catalog, c);
    const RelationSchema& rel = catalog.relation(atoms[atom]);
    return rel.name() + "#" + std::to_string(atom) + "." +
           rel.attr(attr).name;
  };
  for (size_t i = 0; i < selections.size(); ++i) {
    if (i > 0) out += " and ";
    const Selection& s = selections[i];
    out += col_name(s.left);
    out += " = ";
    if (s.kind == Selection::Kind::kColumnEq) {
      out += col_name(s.right);
    } else {
      out += "'" + catalog.pool().Text(s.value) + "'";
    }
  }
  out += "] (";
  for (size_t j = 0; j < atoms.size(); ++j) {
    if (j > 0) out += " x ";
    out += catalog.relation(atoms[j]).name();
  }
  out += ")";
  return out;
}

Status SPCUView::Validate(const Catalog& catalog) const {
  if (disjuncts.empty()) {
    return Status::InvalidArgument("SPCU view has no disjuncts");
  }
  const size_t arity = disjuncts.front().OutputArity();
  for (const SPCView& v : disjuncts) {
    CFDPROP_RETURN_NOT_OK(v.Validate(catalog));
    if (v.OutputArity() != arity) {
      return Status::InvalidArgument("SPCU disjuncts not union-compatible");
    }
  }
  return Status::OK();
}

OperatorProfile SPCUView::Profile(const Catalog& catalog) const {
  OperatorProfile p;
  for (const SPCView& v : disjuncts) {
    OperatorProfile q = v.Profile(catalog);
    p.selection |= q.selection;
    p.projection |= q.projection;
    p.product |= q.product;
  }
  p.has_union = disjuncts.size() > 1;
  return p;
}

std::string SPCUView::ToString(const Catalog& catalog) const {
  std::string out;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (i > 0) out += "\n  union\n";
    out += disjuncts[i].ToString(catalog);
  }
  return out;
}

size_t SPCViewBuilder::AddAtom(RelationId relation) {
  atom_bases_.push_back(num_columns_);
  num_columns_ += catalog_.relation(relation).arity();
  view_.atoms.push_back(relation);
  return view_.atoms.size() - 1;
}

Result<size_t> SPCViewBuilder::AddAtom(std::string_view relation_name) {
  RelationId r = catalog_.FindRelation(relation_name);
  if (r == kNoRelation) {
    return Status::NotFound("unknown relation: " + std::string(relation_name));
  }
  return AddAtom(r);
}

Result<ColumnId> SPCViewBuilder::ResolveColumn(size_t atom,
                                               std::string_view attr) const {
  if (atom >= view_.atoms.size()) {
    return Status::InvalidArgument("atom index out of range");
  }
  const RelationSchema& rel = catalog_.relation(view_.atoms[atom]);
  AttrIndex i = rel.FindAttr(attr);
  if (i == kNoAttr) {
    return Status::NotFound("unknown attribute " + std::string(attr) +
                            " in relation " + rel.name());
  }
  return static_cast<ColumnId>(atom_bases_[atom] + i);
}

Status SPCViewBuilder::SelectEq(size_t atom_a, std::string_view attr_a,
                                size_t atom_b, std::string_view attr_b) {
  CFDPROP_ASSIGN_OR_RETURN(ColumnId a, ResolveColumn(atom_a, attr_a));
  CFDPROP_ASSIGN_OR_RETURN(ColumnId b, ResolveColumn(atom_b, attr_b));
  view_.selections.push_back(Selection::ColumnEq(a, b));
  return Status::OK();
}

Status SPCViewBuilder::SelectConst(size_t atom, std::string_view attr,
                                   std::string_view constant) {
  CFDPROP_ASSIGN_OR_RETURN(ColumnId a, ResolveColumn(atom, attr));
  Value v = catalog_.pool().Intern(constant);
  view_.selections.push_back(Selection::ConstantEq(a, v));
  return Status::OK();
}

Status SPCViewBuilder::Project(size_t atom, std::string_view attr,
                               std::string name) {
  CFDPROP_ASSIGN_OR_RETURN(ColumnId c, ResolveColumn(atom, attr));
  if (name.empty()) {
    const RelationSchema& rel = catalog_.relation(view_.atoms[atom]);
    name = rel.name() + std::to_string(atom) + "." + std::string(attr);
  }
  view_.output.push_back(OutputColumn::Projected(std::move(name), c));
  return Status::OK();
}

Status SPCViewBuilder::ProjectConstant(std::string name,
                                       std::string_view constant) {
  Value v = catalog_.pool().Intern(constant);
  view_.output.push_back(OutputColumn::Constant(std::move(name), v));
  return Status::OK();
}

Result<SPCView> SPCViewBuilder::Build() {
  if (view_.output.empty()) {
    // No projection operator: emit every Ec column.
    for (size_t j = 0; j < view_.atoms.size(); ++j) {
      const RelationSchema& rel = catalog_.relation(view_.atoms[j]);
      for (AttrIndex i = 0; i < rel.arity(); ++i) {
        view_.output.push_back(OutputColumn::Projected(
            rel.name() + std::to_string(j) + "." + rel.attr(i).name,
            static_cast<ColumnId>(atom_bases_[j] + i)));
      }
    }
  }
  CFDPROP_RETURN_NOT_OK(view_.Validate(catalog_));
  return view_;
}

}  // namespace cfdprop
