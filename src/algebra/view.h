// SPC and SPCU views in normal form (Section 2.2).
//
// An SPC query over R = (S1, ..., Sm) is represented in the normal form
//
//     pi_Y ( Rc  x  sigma_F ( R1 x ... x Rn ) )
//
// where Rc is a one-tuple constant relation, each Rj is a renamed copy of
// a relation of the catalog, and F is a conjunction of equality atoms
// A = B and A = 'a'. The columns of Ec = R1 x ... x Rn form a dense
// column space 0..U-1 (atom-major, attribute-minor); selections and the
// projection list refer to those column ids. An SPCU view is a union of
// union-compatible SPC views.
//
// Fragments (S, P, C, SP, SC, PC, SPC) are recovered from the structure:
// S = nonempty F, P = proper projection, C = product (more than one atom
// or a nonempty Rc, which is itself a product with a constant relation).

#ifndef CFDPROP_ALGEBRA_VIEW_H_
#define CFDPROP_ALGEBRA_VIEW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/value.h"
#include "src/schema/schema.h"

namespace cfdprop {

/// Index into the Ec column space of an SPC view.
using ColumnId = uint32_t;

/// One conjunct of the selection condition F.
struct Selection {
  enum class Kind : uint8_t {
    kColumnEq,   // A = B
    kConstantEq, // A = 'a'
  };
  Kind kind;
  ColumnId left;
  ColumnId right = 0;     // kColumnEq only
  Value value = kNoValue; // kConstantEq only

  static Selection ColumnEq(ColumnId a, ColumnId b) {
    return Selection{Kind::kColumnEq, a, b, kNoValue};
  }
  static Selection ConstantEq(ColumnId a, Value v) {
    return Selection{Kind::kConstantEq, a, 0, v};
  }
};

/// One output column of the view schema RV: either a projected Ec column
/// or a constant column contributed by Rc.
struct OutputColumn {
  std::string name;
  bool is_constant = false;
  ColumnId ec_column = 0;  // when !is_constant
  Value value = kNoValue;  // when is_constant

  static OutputColumn Projected(std::string name, ColumnId col) {
    OutputColumn o;
    o.name = std::move(name);
    o.ec_column = col;
    return o;
  }
  static OutputColumn Constant(std::string name, Value v) {
    OutputColumn o;
    o.name = std::move(name);
    o.is_constant = true;
    o.value = v;
    return o;
  }
};

/// Which RA operators a view uses.
struct OperatorProfile {
  bool selection = false;
  bool projection = false;
  bool product = false;
  bool has_union = false;

  /// "S", "PC", "SPC", "SPCU", ... ("I" for the bare identity view).
  std::string Label() const;
};

/// An SPC view in normal form. Construct via SPCViewBuilder (or fill the
/// fields directly and call Validate).
class SPCView {
 public:
  SPCView() = default;

  std::vector<RelationId> atoms;
  std::vector<Selection> selections;
  std::vector<OutputColumn> output;

  /// Structural validation against the catalog.
  Status Validate(const Catalog& catalog) const;

  /// --- Ec column-space geometry -------------------------------------

  /// Total number of Ec columns (sum of atom arities).
  size_t NumEcColumns(const Catalog& catalog) const;

  /// First Ec column of atom j.
  ColumnId AtomBase(const Catalog& catalog, size_t atom) const;

  /// Maps an Ec column back to (atom index, attribute index).
  std::pair<size_t, AttrIndex> Locate(const Catalog& catalog,
                                      ColumnId col) const;

  /// Domain of an Ec column (the underlying source attribute's domain).
  const Domain* EcColumnDomain(const Catalog& catalog, ColumnId col) const;

  /// Domain of output column i (null/infinite for constant columns).
  const Domain* OutputDomain(const Catalog& catalog, size_t i) const;

  /// --- Canonicalization hook ------------------------------------------

  /// Returns an equivalent view with the product atoms permuted by
  /// `order` (new atom j is the old atom order[j]); selection and output
  /// column ids are remapped into the permuted column space, and output
  /// *positions* are untouched, so the view denotes the same query.
  /// Precondition: `order` is a permutation of 0..atoms.size()-1.
  /// Used by the engine's fingerprinting to put the product into a
  /// canonical atom order (products commute modulo column renaming).
  SPCView PermuteAtoms(const Catalog& catalog,
                       const std::vector<size_t>& order) const;

  /// --- Introspection --------------------------------------------------

  size_t OutputArity() const { return output.size(); }

  OperatorProfile Profile(const Catalog& catalog) const;

  /// Human-readable rendering of the normal form.
  std::string ToString(const Catalog& catalog) const;
};

/// An SPCU view: union of union-compatible SPC views.
class SPCUView {
 public:
  SPCUView() = default;
  explicit SPCUView(SPCView v) { disjuncts.push_back(std::move(v)); }

  std::vector<SPCView> disjuncts;

  /// Validates each disjunct and union-compatibility (equal output arity).
  Status Validate(const Catalog& catalog) const;

  size_t OutputArity() const {
    return disjuncts.empty() ? 0 : disjuncts.front().OutputArity();
  }

  OperatorProfile Profile(const Catalog& catalog) const;

  std::string ToString(const Catalog& catalog) const;
};

/// Incremental construction of SPC views with (atom, attribute)-level
/// addressing; resolves names and computes column ids.
class SPCViewBuilder {
 public:
  /// The catalog is non-const because constants in selections and output
  /// columns are interned into its value pool.
  explicit SPCViewBuilder(Catalog& catalog) : catalog_(catalog) {}

  /// Adds a renamed copy of `relation` to the product; returns its atom
  /// index.
  size_t AddAtom(RelationId relation);
  Result<size_t> AddAtom(std::string_view relation_name);

  /// Selection conjunct: column of atom a = column of atom b.
  Status SelectEq(size_t atom_a, std::string_view attr_a, size_t atom_b,
                  std::string_view attr_b);
  /// Selection conjunct: column = interned constant.
  Status SelectConst(size_t atom, std::string_view attr,
                     std::string_view constant);

  /// Appends a projected output column (default name "Rj.attr").
  Status Project(size_t atom, std::string_view attr, std::string name = "");
  /// Appends a constant output column (the Rc part of the normal form).
  Status ProjectConstant(std::string name, std::string_view constant);

  /// Finishes the view. If no output column was added, all Ec columns are
  /// projected in order (views without the projection operator).
  Result<SPCView> Build();

 private:
  Result<ColumnId> ResolveColumn(size_t atom, std::string_view attr) const;

  Catalog& catalog_;
  SPCView view_;
  std::vector<size_t> atom_bases_;
  size_t num_columns_ = 0;
};

}  // namespace cfdprop

#endif  // CFDPROP_ALGEBRA_VIEW_H_
