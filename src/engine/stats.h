// Engine serving metrics: per-request timings and aggregate counters.
//
// EngineStats is updated with relaxed atomics from the worker pool (the
// counters are independent monotone sums, so no ordering is needed) and
// read via Snapshot(). Cache counters live in CoverCache; the engine
// merges both into one EngineStatsSnapshot.
//
// Latency accumulation rides on src/obs histograms: each timing field
// is one obs::Histogram whose nanosecond sum plays the old accumulator
// role (the former `atomic<double>` CAS loops are gone) and whose
// buckets give the per-engine latency distribution the exporter
// renders. Constructing with `latency_histograms = false` keeps only
// the sums — the registry-disabled path BM_MetricsOverhead measures.

#ifndef CFDPROP_ENGINE_STATS_H_
#define CFDPROP_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/base/strfmt.h"
#include "src/engine/cover_cache.h"
#include "src/obs/metrics.h"

namespace cfdprop {

/// Timings of one served request, microseconds.
struct RequestTiming {
  double total_us = 0;       // fingerprint + cache + compute
  double fingerprint_us = 0; // canonicalization + hashing
  double compute_us = 0;     // PropagationCoverSPC (0 on a cache hit)
};

/// A consistent-enough view of the engine's counters (individual fields
/// are exact; cross-field ratios can be off by in-flight requests).
struct EngineStatsSnapshot {
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t batches = 0;
  /// SPCU requests (each also counts once in `requests`).
  uint64_t union_requests = 0;
  /// Per-disjunct SPC cache lines reused / computed while assembling
  /// union covers (the "k partial hits" of an SPCU request).
  uint64_t disjunct_hits = 0;
  uint64_t disjunct_misses = 0;
  /// AddCfd/RetractCfd mutations applied across all sigma sets.
  uint64_t sigma_mutations = 0;
  double total_us = 0;
  double fingerprint_us = 0;
  double compute_us = 0;
  /// PropagateBatch accounting: wall-clock time spent inside batch calls
  /// and the sum of the per-request serve times within them. Their ratio
  /// is the *effective* parallelism actually achieved — on a 1-CPU box it
  /// honestly reports ~1.0 no matter how many workers are configured
  /// (ROADMAP "Multi-core validation").
  double batch_wall_us = 0;
  double batch_busy_us = 0;
  /// Latency distributions behind the sums above (empty buckets when the
  /// engine runs with latency_histograms off).
  obs::HistogramSnapshot total_latency;
  obs::HistogramSnapshot fingerprint_latency;
  obs::HistogramSnapshot compute_latency;

  double BatchParallelism() const {
    return batch_wall_us > 0 ? batch_busy_us / batch_wall_us : 0.0;
  }
  CacheStats cache;

  std::string ToString() const {
    return StrPrintf(
        "requests=%llu errors=%llu batches=%llu "
        "hit_rate=%.1f%% (hits=%llu misses=%llu evictions=%llu "
        "invalidations=%llu entries=%zu restored=%llu "
        "rejected=%llu) unions=%llu "
        "disjunct_hits=%llu/%llu mutations=%llu "
        "par_eff=%.2f compute=%.1fms total=%.1fms",
        static_cast<unsigned long long>(requests),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(batches), 100.0 * cache.HitRate(),
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses),
        static_cast<unsigned long long>(cache.evictions),
        static_cast<unsigned long long>(cache.invalidations), cache.entries,
        static_cast<unsigned long long>(cache.restored),
        static_cast<unsigned long long>(cache.rejected),
        static_cast<unsigned long long>(union_requests),
        static_cast<unsigned long long>(disjunct_hits),
        static_cast<unsigned long long>(disjunct_hits + disjunct_misses),
        static_cast<unsigned long long>(sigma_mutations), BatchParallelism(),
        compute_us / 1000.0, total_us / 1000.0);
  }
};

class EngineStats {
 public:
  explicit EngineStats(bool latency_histograms = true)
      : total_hist_(latency_histograms),
        fingerprint_hist_(latency_histograms),
        compute_hist_(latency_histograms) {}

  void Record(const RequestTiming& t, bool error) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (error) errors_.fetch_add(1, std::memory_order_relaxed);
    total_hist_.Record(t.total_us);
    fingerprint_hist_.Record(t.fingerprint_us);
    compute_hist_.Record(t.compute_us);
  }

  void RecordBatch() { batches_.fetch_add(1, std::memory_order_relaxed); }

  /// One PropagateBatch completed: `wall_us` is its wall-clock span,
  /// `busy_us` the sum of its requests' serve times.
  void RecordBatchTiming(double wall_us, double busy_us) {
    batch_wall_ns_.fetch_add(ToNanos(wall_us), std::memory_order_relaxed);
    batch_busy_ns_.fetch_add(ToNanos(busy_us), std::memory_order_relaxed);
  }

  void RecordUnion(size_t disjunct_hits, size_t disjunct_misses) {
    union_requests_.fetch_add(1, std::memory_order_relaxed);
    disjunct_hits_.fetch_add(disjunct_hits, std::memory_order_relaxed);
    disjunct_misses_.fetch_add(disjunct_misses, std::memory_order_relaxed);
  }

  void RecordMutation() {
    sigma_mutations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Cache counters are filled in by the engine (they live in the cache).
  EngineStatsSnapshot Snapshot() const {
    EngineStatsSnapshot s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.union_requests = union_requests_.load(std::memory_order_relaxed);
    s.disjunct_hits = disjunct_hits_.load(std::memory_order_relaxed);
    s.disjunct_misses = disjunct_misses_.load(std::memory_order_relaxed);
    s.sigma_mutations = sigma_mutations_.load(std::memory_order_relaxed);
    s.total_latency = total_hist_.Snapshot();
    s.fingerprint_latency = fingerprint_hist_.Snapshot();
    s.compute_latency = compute_hist_.Snapshot();
    s.total_us = s.total_latency.sum_us;
    s.fingerprint_us = s.fingerprint_latency.sum_us;
    s.compute_us = s.compute_latency.sum_us;
    s.batch_wall_us =
        static_cast<double>(batch_wall_ns_.load(std::memory_order_relaxed)) /
        1000.0;
    s.batch_busy_us =
        static_cast<double>(batch_busy_ns_.load(std::memory_order_relaxed)) /
        1000.0;
    return s;
  }

 private:
  static uint64_t ToNanos(double us) {
    return us > 0 ? static_cast<uint64_t>(us * 1000.0 + 0.5) : 0;
  }

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> union_requests_{0};
  std::atomic<uint64_t> disjunct_hits_{0};
  std::atomic<uint64_t> disjunct_misses_{0};
  std::atomic<uint64_t> sigma_mutations_{0};
  obs::Histogram total_hist_;
  obs::Histogram fingerprint_hist_;
  obs::Histogram compute_hist_;
  std::atomic<uint64_t> batch_wall_ns_{0};
  std::atomic<uint64_t> batch_busy_ns_{0};
};

}  // namespace cfdprop

#endif  // CFDPROP_ENGINE_STATS_H_
