// Engine serving metrics: per-request timings and aggregate counters.
//
// EngineStats is updated with relaxed atomics from the worker pool (the
// counters are independent monotone sums, so no ordering is needed) and
// read via Snapshot(). Cache counters live in CoverCache; the engine
// merges both into one EngineStatsSnapshot.

#ifndef CFDPROP_ENGINE_STATS_H_
#define CFDPROP_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/engine/cover_cache.h"

namespace cfdprop {

/// Timings of one served request, microseconds.
struct RequestTiming {
  double total_us = 0;       // fingerprint + cache + compute
  double fingerprint_us = 0; // canonicalization + hashing
  double compute_us = 0;     // PropagationCoverSPC (0 on a cache hit)
};

/// A consistent-enough view of the engine's counters (individual fields
/// are exact; cross-field ratios can be off by in-flight requests).
struct EngineStatsSnapshot {
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t batches = 0;
  /// SPCU requests (each also counts once in `requests`).
  uint64_t union_requests = 0;
  /// Per-disjunct SPC cache lines reused / computed while assembling
  /// union covers (the "k partial hits" of an SPCU request).
  uint64_t disjunct_hits = 0;
  uint64_t disjunct_misses = 0;
  /// AddCfd/RetractCfd mutations applied across all sigma sets.
  uint64_t sigma_mutations = 0;
  double total_us = 0;
  double fingerprint_us = 0;
  double compute_us = 0;
  /// PropagateBatch accounting: wall-clock time spent inside batch calls
  /// and the sum of the per-request serve times within them. Their ratio
  /// is the *effective* parallelism actually achieved — on a 1-CPU box it
  /// honestly reports ~1.0 no matter how many workers are configured
  /// (ROADMAP "Multi-core validation").
  double batch_wall_us = 0;
  double batch_busy_us = 0;

  double BatchParallelism() const {
    return batch_wall_us > 0 ? batch_busy_us / batch_wall_us : 0.0;
  }
  CacheStats cache;

  std::string ToString() const {
    char buf[448];
    std::snprintf(buf, sizeof(buf),
                  "requests=%llu errors=%llu batches=%llu "
                  "hit_rate=%.1f%% (hits=%llu misses=%llu evictions=%llu "
                  "invalidations=%llu entries=%zu restored=%llu "
                  "rejected=%llu) unions=%llu "
                  "disjunct_hits=%llu/%llu mutations=%llu "
                  "par_eff=%.2f compute=%.1fms total=%.1fms",
                  static_cast<unsigned long long>(requests),
                  static_cast<unsigned long long>(errors),
                  static_cast<unsigned long long>(batches),
                  100.0 * cache.HitRate(),
                  static_cast<unsigned long long>(cache.hits),
                  static_cast<unsigned long long>(cache.misses),
                  static_cast<unsigned long long>(cache.evictions),
                  static_cast<unsigned long long>(cache.invalidations),
                  cache.entries,
                  static_cast<unsigned long long>(cache.restored),
                  static_cast<unsigned long long>(cache.rejected),
                  static_cast<unsigned long long>(union_requests),
                  static_cast<unsigned long long>(disjunct_hits),
                  static_cast<unsigned long long>(disjunct_hits +
                                                  disjunct_misses),
                  static_cast<unsigned long long>(sigma_mutations),
                  BatchParallelism(), compute_us / 1000.0,
                  total_us / 1000.0);
    return buf;
  }
};

class EngineStats {
 public:
  void Record(const RequestTiming& t, bool error) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (error) errors_.fetch_add(1, std::memory_order_relaxed);
    AddDouble(total_us_, t.total_us);
    AddDouble(fingerprint_us_, t.fingerprint_us);
    AddDouble(compute_us_, t.compute_us);
  }

  void RecordBatch() { batches_.fetch_add(1, std::memory_order_relaxed); }

  /// One PropagateBatch completed: `wall_us` is its wall-clock span,
  /// `busy_us` the sum of its requests' serve times.
  void RecordBatchTiming(double wall_us, double busy_us) {
    AddDouble(batch_wall_us_, wall_us);
    AddDouble(batch_busy_us_, busy_us);
  }

  void RecordUnion(size_t disjunct_hits, size_t disjunct_misses) {
    union_requests_.fetch_add(1, std::memory_order_relaxed);
    disjunct_hits_.fetch_add(disjunct_hits, std::memory_order_relaxed);
    disjunct_misses_.fetch_add(disjunct_misses, std::memory_order_relaxed);
  }

  void RecordMutation() {
    sigma_mutations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Cache counters are filled in by the engine (they live in the cache).
  EngineStatsSnapshot Snapshot() const {
    EngineStatsSnapshot s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.union_requests = union_requests_.load(std::memory_order_relaxed);
    s.disjunct_hits = disjunct_hits_.load(std::memory_order_relaxed);
    s.disjunct_misses = disjunct_misses_.load(std::memory_order_relaxed);
    s.sigma_mutations = sigma_mutations_.load(std::memory_order_relaxed);
    s.total_us = total_us_.load(std::memory_order_relaxed);
    s.fingerprint_us = fingerprint_us_.load(std::memory_order_relaxed);
    s.compute_us = compute_us_.load(std::memory_order_relaxed);
    s.batch_wall_us = batch_wall_us_.load(std::memory_order_relaxed);
    s.batch_busy_us = batch_busy_us_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static void AddDouble(std::atomic<double>& a, double x) {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + x,
                                    std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> union_requests_{0};
  std::atomic<uint64_t> disjunct_hits_{0};
  std::atomic<uint64_t> disjunct_misses_{0};
  std::atomic<uint64_t> sigma_mutations_{0};
  std::atomic<double> total_us_{0};
  std::atomic<double> fingerprint_us_{0};
  std::atomic<double> compute_us_{0};
  std::atomic<double> batch_wall_us_{0};
  std::atomic<double> batch_busy_us_{0};
};

}  // namespace cfdprop

#endif  // CFDPROP_ENGINE_STATS_H_
