#include "src/engine/cover_cache.h"

#include <algorithm>

namespace cfdprop {

CoverCache::CoverCache(size_t capacity, size_t num_shards) {
  // At most one shard per requested entry (so capacities below the
  // shard count are honored, not rounded up to one slot per shard), at
  // least one shard, and at most 256 — ShardFor selects by the key's
  // top byte, so shards past 256 could never be addressed.
  num_shards = std::clamp<size_t>(std::min(num_shards, capacity), 1, 256);
  per_shard_capacity_ = std::max<size_t>(1, (capacity + num_shards - 1) /
                                                num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const CachedCover> CoverCache::Lookup(uint64_t fingerprint,
                                                      uint64_t check) {
  Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fingerprint);
  if (it == shard.index.end() || it->second->check != check) {
    // Absent, or a key collision between non-equivalent requests: miss.
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->cover;
}

void CoverCache::Insert(uint64_t fingerprint, uint64_t check,
                        std::shared_ptr<const CachedCover> cover) {
  Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fingerprint);
  if (it != shard.index.end()) {
    if (it->second->check == check) {
      // Concurrent compute of the same request: keep the first result
      // (the computation is deterministic, so both are equal).
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    // Key collision: latest wins, so both colliding requests keep
    // recomputing rather than one permanently shadowing the other.
    it->second->check = check;
    it->second->cover = std::move(cover);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{fingerprint, check, std::move(cover)});
  shard.index.emplace(fingerprint, shard.lru.begin());
  ++shard.insertions;
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().fingerprint);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void CoverCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

CacheStats CoverCache::Stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.entries += shard->lru.size();
  }
  return out;
}

}  // namespace cfdprop
