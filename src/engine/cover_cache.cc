#include "src/engine/cover_cache.h"

#include <algorithm>

namespace cfdprop {

CoverCache::CoverCache(size_t capacity, size_t num_shards) {
  // At most one shard per requested entry (so capacities below the
  // shard count are honored, not rounded up to one slot per shard), at
  // least one shard, and at most 256 — ShardFor selects by the key's
  // top byte, so shards past 256 could never be addressed.
  num_shards = std::clamp<size_t>(std::min(num_shards, capacity), 1, 256);
  // Round DOWN to a shard multiple (min 1 per shard): `capacity` is a
  // budget, i.e. an upper bound — a multi-tenant split that rounded up
  // would overshoot its global budget by up to shards-1 per tenant.
  per_shard_capacity_ = std::max<size_t>(1, capacity / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const CachedCover> CoverCache::Lookup(uint64_t fingerprint,
                                                      uint64_t check,
                                                      uint64_t tag,
                                                      uint64_t generation) {
  Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fingerprint);
  if (it == shard.index.end() || it->second->check != check ||
      it->second->tag != tag || it->second->generation != generation) {
    // Absent, a key collision between non-equivalent requests, or a
    // cover computed against a sigma state that mutated away: miss.
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->cover;
}

void CoverCache::Insert(uint64_t fingerprint, uint64_t check,
                        std::shared_ptr<const CachedCover> cover,
                        uint64_t tag, uint64_t generation) {
  Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fingerprint);
  if (it != shard.index.end()) {
    if (it->second->check == check && it->second->tag == tag &&
        it->second->generation == generation) {
      // Concurrent compute of the same request: keep the first result
      // (the computation is deterministic, so both are equal).
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (it->second->tag == tag && it->second->generation > generation) {
      // A slow in-flight compute finishing after a mutation must not
      // displace the cover already recomputed at the newer generation:
      // generations are monotone per tag, so the incoming entry is the
      // stale one. Drop it (it could never be served anyway).
      return;
    }
    // Key collision (different tag/check) or genuinely newer generation:
    // latest wins. Colliding requests keep recomputing rather than one
    // permanently shadowing the other; a fresh-generation insert
    // displaces the stale cover.
    it->second->check = check;
    it->second->tag = tag;
    it->second->generation = generation;
    it->second->cover = std::move(cover);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{fingerprint, check, tag, generation,
                             std::move(cover)});
  shard.index.emplace(fingerprint, shard.lru.begin());
  ++shard.insertions;
  if (shard.lru.size() > per_shard_capacity_.load(std::memory_order_relaxed)) {
    shard.index.erase(shard.lru.back().fingerprint);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

size_t CoverCache::SetBudget(size_t capacity) {
  const size_t num_shards = shards_.size();
  // Same floor-to-shard-multiple policy as the constructor: a budget is
  // an upper bound, so never round it up.
  const size_t per_shard = std::max<size_t>(1, capacity / num_shards);
  per_shard_capacity_.store(per_shard, std::memory_order_relaxed);
  // Trim each shard to the bound just computed (not a re-load: racing
  // SetBudget calls each stay internally consistent), oldest first. A
  // concurrent Insert that lands between the store above and a shard's
  // trim enforces the new bound itself, so the cache can only
  // transiently exceed it.
  size_t evicted = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    while (shard->lru.size() > per_shard) {
      shard->index.erase(shard->lru.back().fingerprint);
      shard->lru.pop_back();
      ++shard->evictions;
      ++evicted;
    }
  }
  return evicted;
}

size_t CoverCache::EraseTagged(uint64_t tag) {
  size_t erased = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->tag != tag) {
        ++it;
        continue;
      }
      shard->index.erase(it->fingerprint);
      it = shard->lru.erase(it);
      ++shard->invalidations;
      ++erased;
    }
  }
  return erased;
}

void CoverCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Counted as invalidations so content-change tracking (e.g. the
    // service's snapshot dirtiness) sees an explicit clear — otherwise
    // a stale snapshot of the cleared entries would look up to date.
    shard->invalidations += shard->lru.size();
    shard->lru.clear();
    shard->index.clear();
  }
}

CacheStats CoverCache::Stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.invalidations += shard->invalidations;
    out.entries += shard->lru.size();
  }
  out.restored = restored_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace cfdprop
