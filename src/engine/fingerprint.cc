#include "src/engine/fingerprint.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "src/base/hash.h"

namespace cfdprop {

namespace {

using Hasher = Fnv1aHasher;

/// Orients a column-equality selection with the smaller column first
/// (A = B and B = A denote the same conjunct).
Selection Oriented(const Selection& s) {
  if (s.kind == Selection::Kind::kColumnEq && s.right < s.left) {
    return Selection::ColumnEq(s.right, s.left);
  }
  return s;
}

bool SelectionLess(const Catalog& catalog, const Selection& a,
                   const Selection& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.left != b.left) return a.left < b.left;
  if (a.kind == Selection::Kind::kColumnEq) return a.right < b.right;
  return catalog.pool().Text(a.value) < catalog.pool().Text(b.value);
}

bool SelectionEq(const Selection& a, const Selection& b) {
  return a.kind == b.kind && a.left == b.left &&
         (a.kind == Selection::Kind::kColumnEq ? a.right == b.right
                                               : a.value == b.value);
}

/// An atom-order-invariant signature of one product atom: its relation
/// plus how its columns are used by selections and the projection. Used
/// only to tie-break atoms of the same relation, so atoms whose local
/// footprints differ sort deterministically. Atoms with identical
/// signatures keep their input order (stable sort); for symmetric join
/// patterns (e.g. a cycle of same-relation atoms) two listings of the
/// same query can then canonicalize differently — the cost is a missed
/// cache hit, never a wrong cover. A WL-style refinement would make the
/// order truly canonical (ROADMAP).
uint64_t AtomSignature(const Catalog& catalog, const SPCView& view,
                       size_t atom) {
  const ColumnId base = view.AtomBase(catalog, atom);
  const size_t arity = catalog.relation(view.atoms[atom]).arity();

  Hasher h;
  h.Mix(static_cast<uint64_t>(view.atoms[atom]));
  // Per local column: constant selections, column-eq partner footprints
  // (partner = (relation, local offset), not an atom index), and output
  // positions.
  for (size_t k = 0; k < arity; ++k) {
    const ColumnId col = base + static_cast<ColumnId>(k);
    std::vector<std::string> consts;
    std::vector<uint64_t> partners;
    for (const Selection& s : view.selections) {
      if (s.kind == Selection::Kind::kConstantEq) {
        if (s.left == col) consts.push_back(catalog.pool().Text(s.value));
        continue;
      }
      for (ColumnId other : {s.left, s.right}) {
        ColumnId self = other == s.left ? s.right : s.left;
        if (self != col) continue;
        auto [patom, pattr] = view.Locate(catalog, other);
        partners.push_back((static_cast<uint64_t>(view.atoms[patom]) << 32) |
                           pattr);
      }
    }
    std::sort(consts.begin(), consts.end());
    std::sort(partners.begin(), partners.end());
    h.Mix(static_cast<uint64_t>(k));
    for (const std::string& c : consts) h.Mix(c);
    h.Mix(0xfeedull);
    for (uint64_t p : partners) h.Mix(p);
    h.Mix(0xbeefull);
    for (size_t i = 0; i < view.output.size(); ++i) {
      const OutputColumn& o = view.output[i];
      if (!o.is_constant && o.ec_column == col) {
        h.Mix(static_cast<uint64_t>(i));
      }
    }
  }
  return h.digest();
}

}  // namespace

SPCView CanonicalizeSPCView(const Catalog& catalog, const SPCView& view) {
  // Canonical atom order: by (relation id, footprint signature), stable
  // so equal keys keep their input order (interchangeable atoms).
  std::vector<uint64_t> sig(view.atoms.size());
  for (size_t j = 0; j < view.atoms.size(); ++j) {
    sig[j] = AtomSignature(catalog, view, j);
  }
  std::vector<size_t> order(view.atoms.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (view.atoms[a] != view.atoms[b]) return view.atoms[a] < view.atoms[b];
    return sig[a] < sig[b];
  });
  SPCView canonical = view.PermuteAtoms(catalog, order);

  // Normalize the selection conjunction: orient, sort, dedupe.
  for (Selection& s : canonical.selections) s = Oriented(s);
  std::sort(canonical.selections.begin(), canonical.selections.end(),
            [&](const Selection& a, const Selection& b) {
              return SelectionLess(catalog, a, b);
            });
  canonical.selections.erase(
      std::unique(canonical.selections.begin(), canonical.selections.end(),
                  SelectionEq),
      canonical.selections.end());
  return canonical;
}

namespace {

/// Canonical byte serialization of (canonicalized view, sigma id); both
/// request hashes are computed over this one stream. Output column
/// names are deliberately not serialized: covers are positional, so
/// renamed outputs serve the same cover.
std::string SerializeRequest(const Catalog& catalog, const SPCView& canonical,
                             uint64_t sigma_id) {
  std::string out;
  auto put = [&out](uint64_t x) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(x >> (8 * i)));
  };
  auto put_text = [&](const std::string& s) {
    put(s.size());
    out.append(s);
  };
  put(sigma_id);
  put(canonical.atoms.size());
  for (RelationId r : canonical.atoms) put(r);
  put(canonical.selections.size());
  for (const Selection& s : canonical.selections) {
    put(static_cast<uint64_t>(s.kind));
    put(s.left);
    if (s.kind == Selection::Kind::kColumnEq) {
      put(s.right);
    } else {
      put_text(catalog.pool().Text(s.value));
    }
  }
  put(canonical.output.size());
  for (const OutputColumn& o : canonical.output) {
    if (o.is_constant) {
      put(0xc0);
      put_text(catalog.pool().Text(o.value));
    } else {
      put(0x90);
      put(o.ec_column);
    }
  }
  return out;
}

uint64_t Fnv1a(const std::string& bytes) {
  Hasher h;
  h.Mix(bytes);
  return h.digest();
}

/// A second, structurally different hash over the same bytes (SplitMix
/// absorption), so a wrong cache serve needs both to collide.
uint64_t CheckHash(const std::string& bytes) {
  uint64_t h = 0x2545f4914f6cdd1dull;
  for (char c : bytes) {
    h = SplitMix64(h ^ static_cast<uint8_t>(c));
  }
  return SplitMix64(h ^ bytes.size());
}

}  // namespace

uint64_t FingerprintSPCView(const Catalog& catalog, const SPCView& view) {
  SPCView canonical = CanonicalizeSPCView(catalog, view);
  return Fnv1a(SerializeRequest(catalog, canonical, /*sigma_id=*/0));
}

RequestFingerprint FingerprintRequestPair(const Catalog& catalog,
                                          const SPCView& view,
                                          uint64_t sigma_id) {
  SPCView canonical = CanonicalizeSPCView(catalog, view);
  std::string bytes = SerializeRequest(catalog, canonical, sigma_id);
  return RequestFingerprint{Fnv1a(bytes), CheckHash(bytes)};
}

uint64_t FingerprintRequest(const Catalog& catalog, const SPCView& view,
                            uint64_t sigma_id) {
  return FingerprintRequestPair(catalog, view, sigma_id).key;
}

UnionFingerprint FingerprintUnionRequestPair(const Catalog& catalog,
                                             const SPCUView& view,
                                             uint64_t sigma_id) {
  UnionFingerprint out;
  out.disjuncts.reserve(view.disjuncts.size());
  for (const SPCView& d : view.disjuncts) {
    out.disjuncts.push_back(FingerprintRequestPair(catalog, d, sigma_id));
  }
  // Multiset fuse: sort copies of the per-disjunct (key, check) pairs so
  // disjunct order cannot affect the fused key, then serialize under a
  // union domain tag. SerializeRequest streams never start with this tag
  // followed by a pair count, so a union cannot alias an SPC request.
  std::vector<std::pair<uint64_t, uint64_t>> sorted;
  sorted.reserve(out.disjuncts.size());
  for (const RequestFingerprint& f : out.disjuncts) {
    sorted.emplace_back(f.key, f.check);
  }
  std::sort(sorted.begin(), sorted.end());
  std::string bytes;
  auto put = [&bytes](uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<char>(x >> (8 * i)));
    }
  };
  put(0x554e494f4eull);  // "UNION" domain tag
  put(sorted.size());
  for (const auto& [key, check] : sorted) {
    put(key);
    put(check);
  }
  out.fused = RequestFingerprint{Fnv1a(bytes), CheckHash(bytes)};
  return out;
}

uint64_t FingerprintSPCUView(const Catalog& catalog, const SPCUView& view) {
  return FingerprintUnionRequestPair(catalog, view, /*sigma_id=*/0).fused.key;
}

}  // namespace cfdprop
