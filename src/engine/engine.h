// The propagation engine: cached, batched, multi-threaded serving of
// CFD propagation covers (PropCFD_SPC / SPCU) over a shared catalog.
//
// A deployment (schema mapping, data exchange, cleaning-rule discovery)
// issues many near-identical propagation requests against one source
// schema and a handful of CFD sets. The one-shot pipeline recomputes
// MinCover/ComputeEQ/RBR per call; the engine amortizes that work:
//
//   * source CFD sets are registered once and min-covered at
//     registration (Fig. 2 line 1 runs once, not per request), and can
//     be *mutated* afterwards — AddCfd/RetractCfd re-minimize only the
//     touched set, bump its generation and invalidate only that set's
//     cache lines (never a global Clear),
//   * each request is canonically fingerprinted (src/engine/fingerprint.h)
//     and served from a sharded LRU cover cache on a repeat; SPCU
//     requests are keyed by the multiset of their disjuncts'
//     fingerprints, and assemble from the per-SPC cache lines, so a
//     union of k disjuncts can be served as up to k partial hits,
//   * batches run on a fixed worker pool; results come back in request
//     order regardless of the thread count.
//
// Thread-safety contract: Propagate/PropagateUnion/PropagateBatch,
// RegisterSigma, AddCfd and RetractCfd are safe to call concurrently
// once the engine is constructed — sigma state is guarded by a
// shared_mutex and served via shared_ptr snapshots, so a retraction
// never frees CFDs or covers an in-flight request (or a caller-held
// EngineResult) still references. Building views against catalog()
// (which interns constants into the shared ValuePool), and constructing
// the CFDs handed to RegisterSigma/AddCfd/RetractCfd when that
// construction interns new constants, must still be serialized against
// serving: the pool itself is append-only and not thread-safe. The
// propagation pipeline only ever interns the two ComputeEQ/Lemma-4.5
// constants, which the constructor pre-interns, so serving and mutation
// with pre-built CFDs never mutate the pool.

#ifndef CFDPROP_ENGINE_ENGINE_H_
#define CFDPROP_ENGINE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "src/algebra/view.h"
#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/cover/propcfd_spc.h"
#include "src/engine/cover_cache.h"
#include "src/engine/fingerprint.h"
#include "src/engine/stats.h"
#include "src/obs/trace.h"
#include "src/schema/schema.h"

namespace cfdprop {

/// Engine-local id of a registered source CFD set.
using SigmaId = uint32_t;

struct EngineOptions {
  /// Worker pool size for PropagateBatch. 0 or 1 = serve batches inline
  /// on the calling thread.
  size_t num_threads = 4;

  /// Total cover-cache capacity (entries) and shard count.
  size_t cache_capacity = 1024;
  size_t cache_shards = 8;

  /// Disable to force every request down the compute path (baseline
  /// measurements; the cache is still constructed but never consulted).
  bool use_cache = true;

  /// Disable to drop latency-histogram bucket recording (timing sums and
  /// counters still accumulate) — the registry-disabled baseline
  /// BM_MetricsOverhead compares against.
  bool metrics = true;

  /// Options forwarded to PropagationCoverSPC. `input_mincover` is
  /// ignored: registration already minimized, so requests always run
  /// with input_mincover = false.
  PropCoverOptions cover;
};

/// One served request. `cover` is shared with the cache: it stays valid
/// for as long as the caller holds it, across evictions, Clear() and
/// sigma retraction.
struct EngineResult {
  std::shared_ptr<const CachedCover> cover;
  uint64_t fingerprint = 0;
  bool cache_hit = false;

  /// SPCU requests only (disjunct_count >= 2): how many of the union's
  /// disjuncts were served from existing per-SPC cache lines while
  /// assembling. A full union-level hit reports disjunct_hits ==
  /// disjunct_count.
  size_t disjunct_hits = 0;
  size_t disjunct_count = 0;

  RequestTiming timing;
};

class Engine {
 public:
  /// Takes ownership of the catalog all registered CFD sets and served
  /// views refer to.
  explicit Engine(Catalog catalog, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a source CFD set and minimizes it per relation (Fig. 2
  /// line 1, hoisted out of the request path). Thread-safe.
  Result<SigmaId> RegisterSigma(std::vector<CFD> sigma);

  /// Adds one CFD to a registered set: re-minimizes only that set, bumps
  /// its generation and drops only the cache lines whose fingerprint
  /// binds `id` (other sigma sets' lines are untouched). The CFD must be
  /// fully built — any constants already interned — before the call.
  /// Thread-safe against serving and other mutations.
  Status AddCfd(SigmaId id, CFD cfd);

  /// Retracts the first CFD of the set's *registered* (pre-minimization)
  /// list that equals `cfd`, then re-minimizes, bumps the generation and
  /// selectively invalidates like AddCfd. NotFound when no registered
  /// CFD matches. Covers already handed out stay valid (shared_ptr).
  /// Thread-safe.
  Status RetractCfd(SigmaId id, const CFD& cfd);

  size_t num_sigmas() const;

  /// Snapshot of the minimized set served for `id`. The snapshot stays
  /// valid (and unchanged) across later AddCfd/RetractCfd calls.
  /// Precondition: id < num_sigmas().
  std::shared_ptr<const std::vector<CFD>> sigma(SigmaId id) const;

  /// Copy of the registered (pre-minimization) list, as mutated by
  /// AddCfd/RetractCfd — the input a one-shot differential run should
  /// use. Precondition: id < num_sigmas().
  std::vector<CFD> sigma_raw(SigmaId id) const;

  /// Mutation counter of the set: bumped by every AddCfd/RetractCfd.
  /// Cache lines record the generation they were computed at and are
  /// only served while it matches. Precondition: id < num_sigmas().
  uint64_t sigma_generation(SigmaId id) const;

  const Catalog& catalog() const { return catalog_; }
  /// Mutable access for setup (SPCViewBuilder interns constants). Must
  /// not be used concurrently with serving.
  Catalog& catalog() { return catalog_; }

  /// Serves one SPC request on the calling thread (cache → compute).
  Result<EngineResult> Propagate(const SPCView& view, SigmaId sigma_id);

  /// Serves one SPCU request on the calling thread. The union is cached
  /// under the multiset fingerprint of its disjuncts (order-insensitive)
  /// and, on a union-level miss, each disjunct is served from the per-SPC
  /// cache lines before the cross-disjunct assembly runs — byte-identical
  /// to one-shot PropagationCoverSPCU on the same inputs. A
  /// single-disjunct union degenerates to Propagate.
  Result<EngineResult> PropagateUnion(const SPCUView& view, SigmaId sigma_id);

  struct Request {
    SPCUView view;
    SigmaId sigma_id = 0;

    Request() = default;
    Request(SPCView v, SigmaId s) : view(std::move(v)), sigma_id(s) {}
    Request(SPCUView v, SigmaId s) : view(std::move(v)), sigma_id(s) {}
  };

  /// Serves a batch across the worker pool. results[i] answers
  /// requests[i] — output order is deterministic and independent of the
  /// thread count and of scheduling. Requests may mix SPC and SPCU
  /// views.
  std::vector<Result<EngineResult>> PropagateBatch(
      const std::vector<Request>& requests);

  /// Same, recording a "compute" span against `trace` (sampled, with a
  /// process tracer installed — see src/obs/trace.h) annotated with the
  /// batch's cache hit/miss split. The untraced overload costs no
  /// tracing work at all; this one costs one branch when the context is
  /// unsampled.
  std::vector<Result<EngineResult>> PropagateBatch(
      const std::vector<Request>& requests, const obs::TraceContext& trace);

  /// Engine + cache counters.
  EngineStatsSnapshot Stats() const;

  /// Spills every live cover-cache line to `path` atomically
  /// (write-to-temp + rename; snapshot format in src/engine/snapshot.h).
  /// Each line is bound to its sigma's content fingerprint, so a
  /// restart whose registered sets differ rejects it instead of serving
  /// a stale cover. Returns the number of lines written. Thread-safe
  /// against serving and mutation.
  Result<uint64_t> SaveSnapshot(const std::string& path) const;

  /// Warm-starts the cover cache from a snapshot: call it after
  /// registering (in the same order) the sigma sets the saving process
  /// had, and before serving traffic — it interns snapshot constants
  /// into the shared pool, which is not thread-safe. Lines restore only
  /// if their sigma's content fingerprint still matches, and adopt that
  /// sigma's *current* generation, so later AddCfd/RetractCfd churn
  /// invalidates them exactly like natively computed lines. A
  /// version/format mismatch or corrupt file rejects wholesale with a
  /// Status (the cache is untouched); per-sigma mismatches reject just
  /// those lines (see SnapshotLoadStats and the restored=/rejected=
  /// counters in Stats()).
  Result<SnapshotLoadStats> LoadSnapshot(const std::string& path);

  /// SaveSnapshot without the file: the snapshot bytes in memory,
  /// exactly what SaveSnapshot would publish. Tenant migration ships
  /// these over the wire. Thread-safe against serving and mutation.
  SerializedSnapshot SerializeSnapshot() const;

  /// LoadSnapshot from bytes already in memory (the receiving side of a
  /// migration). Same validation, acceptance and thread-safety rules as
  /// LoadSnapshot: call before serving traffic.
  Result<SnapshotLoadStats> LoadSnapshotBytes(std::string_view bytes);

  /// Drops all cached covers (handed-out results stay valid).
  void ClearCache();

  /// Resizes the cover cache to `entries` total slots (shard count is
  /// fixed). A shrink evicts in deterministic LRU order; handed-out
  /// covers stay valid. Returns how many entries were evicted. This is
  /// the hook a multi-tenant service uses to rebalance per-tenant
  /// budgets at runtime. Thread-safe.
  size_t SetCacheBudget(size_t entries);

  /// Current cover-cache capacity in entries (reflects SetCacheBudget,
  /// unlike options().cache_capacity which records the construction-time
  /// value).
  size_t cache_capacity() const;

  const EngineOptions& options() const { return options_; }

 private:
  struct SigmaEntry {
    /// As registered/churned, before minimization; AddCfd appends,
    /// RetractCfd erases the first match.
    std::vector<CFD> raw;
    /// Min-covered serving snapshot; replaced wholesale on mutation so
    /// in-flight requests keep their copy alive.
    std::shared_ptr<const std::vector<CFD>> minimized;
    /// Bumped on every mutation; bound into cache entries.
    uint64_t generation = 0;
  };

  Status ValidateSigma(const std::vector<CFD>& sigma) const;

  /// Shared tail of AddCfd/RetractCfd: re-minimizes `raw` (outside
  /// sigma_mu_ — serving only ever blocks on the snapshot swap), swaps
  /// the entry's state, bumps the generation, drops the sigma's cache
  /// lines. Caller must hold mutation_mu_.
  Status MutateSigma(SigmaId id, std::vector<CFD> raw);

  /// Snapshots (minimized set, generation) for a sigma id under the
  /// shared lock; InvalidArgument for unknown ids.
  Result<std::pair<std::shared_ptr<const std::vector<CFD>>, uint64_t>>
  SnapshotSigma(SigmaId sigma_id) const;

  /// (content fingerprint, generation) of every registered sigma, in
  /// SigmaId order — what Save/LoadSnapshot validate lines against.
  std::vector<SigmaSnapshotInfo> SigmaSnapshotInfos() const;

  Result<EngineResult> Serve(const SPCView& view, SigmaId sigma_id);
  Result<EngineResult> ServeUnion(const SPCUView& view, SigmaId sigma_id);
  Result<EngineResult> ServeRequest(const Request& request);
  /// ServeRequest with exceptions surfaced as Status::Internal — the
  /// batch contract ("errors come back as the slot's Status") for both
  /// the inline and the worker-chunk path.
  Result<EngineResult> ServeRequestNoThrow(const Request& request);
  void WorkerLoop();
  void StartWorkers();

  Catalog catalog_;
  EngineOptions options_;

  /// Guards sigmas_ (the vector and every entry). Serving takes it
  /// shared just long enough to snapshot; mutations take it exclusively
  /// just long enough to swap a re-minimized entry in (the minimization
  /// itself runs outside, see MutateSigma).
  mutable std::shared_mutex sigma_mu_;
  std::vector<SigmaEntry> sigmas_;
  /// Serializes AddCfd/RetractCfd against each other, so a mutation can
  /// copy raw, minimize unlocked, and swap without losing a concurrent
  /// mutator's update.
  std::mutex mutation_mu_;

  CoverCache cache_;
  EngineStats stats_;

  // Work queue for PropagateBatch.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace cfdprop

#endif  // CFDPROP_ENGINE_ENGINE_H_
