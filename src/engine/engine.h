// The propagation engine: cached, batched, multi-threaded serving of
// CFD propagation covers (PropCFD_SPC) over a shared catalog.
//
// A deployment (schema mapping, data exchange, cleaning-rule discovery)
// issues many near-identical propagation requests against one source
// schema and a handful of CFD sets. The one-shot pipeline recomputes
// MinCover/ComputeEQ/RBR per call; the engine amortizes that work:
//
//   * source CFD sets are registered once and min-covered at
//     registration (Fig. 2 line 1 runs once, not per request),
//   * each request is canonically fingerprinted (src/engine/fingerprint.h)
//     and served from a sharded LRU cover cache on a repeat,
//   * batches run on a fixed worker pool; results come back in request
//     order regardless of the thread count.
//
// Thread-safety contract: Propagate/PropagateBatch are safe to call
// concurrently once setup is done. Setup — Engine construction,
// RegisterSigma, and building views against catalog() (which interns
// constants into the shared ValuePool) — must be serialized and must
// happen-before serving. The propagation pipeline itself only ever
// interns the two ComputeEQ/Lemma-4.5 constants, which the constructor
// pre-interns, so concurrent requests never mutate the pool.

#ifndef CFDPROP_ENGINE_ENGINE_H_
#define CFDPROP_ENGINE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/algebra/view.h"
#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/cover/propcfd_spc.h"
#include "src/engine/cover_cache.h"
#include "src/engine/stats.h"
#include "src/schema/schema.h"

namespace cfdprop {

/// Engine-local id of a registered source CFD set.
using SigmaId = uint32_t;

struct EngineOptions {
  /// Worker pool size for PropagateBatch. 0 or 1 = serve batches inline
  /// on the calling thread.
  size_t num_threads = 4;

  /// Total cover-cache capacity (entries) and shard count.
  size_t cache_capacity = 1024;
  size_t cache_shards = 8;

  /// Disable to force every request down the compute path (baseline
  /// measurements; the cache is still constructed but never consulted).
  bool use_cache = true;

  /// Options forwarded to PropagationCoverSPC. `input_mincover` is
  /// ignored: registration already minimized, so requests always run
  /// with input_mincover = false.
  PropCoverOptions cover;
};

/// One served request. `cover` is shared with the cache: it stays valid
/// for as long as the caller holds it, across evictions and Clear().
struct EngineResult {
  std::shared_ptr<const CachedCover> cover;
  uint64_t fingerprint = 0;
  bool cache_hit = false;
  RequestTiming timing;
};

class Engine {
 public:
  /// Takes ownership of the catalog all registered CFD sets and served
  /// views refer to.
  explicit Engine(Catalog catalog, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a source CFD set and minimizes it per relation (Fig. 2
  /// line 1, hoisted out of the request path). Not thread-safe against
  /// in-flight requests.
  Result<SigmaId> RegisterSigma(std::vector<CFD> sigma);

  size_t num_sigmas() const { return sigmas_.size(); }
  const std::vector<CFD>& sigma(SigmaId id) const { return sigmas_[id]; }

  const Catalog& catalog() const { return catalog_; }
  /// Mutable access for setup (SPCViewBuilder interns constants). Must
  /// not be used concurrently with serving.
  Catalog& catalog() { return catalog_; }

  /// Serves one request on the calling thread (cache → compute).
  Result<EngineResult> Propagate(const SPCView& view, SigmaId sigma_id);

  struct Request {
    SPCView view;
    SigmaId sigma_id = 0;
  };

  /// Serves a batch across the worker pool. results[i] answers
  /// requests[i] — output order is deterministic and independent of the
  /// thread count and of scheduling.
  std::vector<Result<EngineResult>> PropagateBatch(
      const std::vector<Request>& requests);

  /// Engine + cache counters.
  EngineStatsSnapshot Stats() const;

  /// Drops all cached covers (handed-out results stay valid).
  void ClearCache();

  const EngineOptions& options() const { return options_; }

 private:
  Result<EngineResult> Serve(const SPCView& view, SigmaId sigma_id);
  void WorkerLoop();
  void StartWorkers();

  Catalog catalog_;
  EngineOptions options_;
  std::vector<std::vector<CFD>> sigmas_;
  CoverCache cache_;
  EngineStats stats_;

  // Work queue for PropagateBatch.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace cfdprop

#endif  // CFDPROP_ENGINE_ENGINE_H_
