#include "src/engine/engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "src/cfd/mincover.h"
#include "src/engine/fingerprint.h"

namespace cfdprop {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

Engine::Engine(Catalog catalog, EngineOptions options)
    : catalog_(std::move(catalog)),
      options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards) {
  // Pre-intern the only constants the propagation pipeline interns (the
  // ComputeEQ/Lemma 4.5 pair): with these present, concurrent requests
  // hit ValuePool::Intern's read-only path and never mutate the pool.
  catalog_.pool().Intern("0");
  catalog_.pool().Intern("1");
  if (options_.num_threads > 1) StartWorkers();
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

Result<SigmaId> Engine::RegisterSigma(std::vector<CFD> sigma) {
  for (const CFD& c : sigma) {
    if (c.relation >= catalog_.num_relations()) {
      return Status::InvalidArgument("source CFD with unknown relation");
    }
    CFDPROP_RETURN_NOT_OK(c.Validate(catalog_.relation(c.relation).arity()));
  }
  // Fig. 2 line 1, hoisted: minimize once per registration instead of
  // once per request. Grouped per relation, deterministic output order.
  std::unordered_map<RelationId, std::vector<CFD>> groups;
  std::vector<RelationId> order;
  for (CFD& c : sigma) {
    if (groups.find(c.relation) == groups.end()) order.push_back(c.relation);
    groups[c.relation].push_back(std::move(c));
  }
  std::vector<CFD> minimized;
  for (RelationId r : order) {
    CFDPROP_ASSIGN_OR_RETURN(
        std::vector<CFD> mc,
        MinCover(std::move(groups[r]), catalog_.relation(r).arity(),
                 /*domains=*/{}, options_.cover.mincover));
    for (CFD& c : mc) minimized.push_back(std::move(c));
  }
  sigmas_.push_back(std::move(minimized));
  return static_cast<SigmaId>(sigmas_.size() - 1);
}

Result<EngineResult> Engine::Serve(const SPCView& view, SigmaId sigma_id) {
  if (sigma_id >= sigmas_.size()) {
    return Status::InvalidArgument("unknown sigma id");
  }
  const auto start = Clock::now();
  EngineResult result;
  RequestFingerprint fp = FingerprintRequestPair(catalog_, view, sigma_id);
  result.fingerprint = fp.key;
  result.timing.fingerprint_us = MicrosSince(start);

  if (options_.use_cache) {
    if (auto cached = cache_.Lookup(fp.key, fp.check)) {
      result.cover = std::move(cached);
      result.cache_hit = true;
      result.timing.total_us = MicrosSince(start);
      stats_.Record(result.timing, /*error=*/false);
      return result;
    }
  }

  const auto compute_start = Clock::now();
  PropCoverOptions cover_options = options_.cover;
  cover_options.input_mincover = false;  // minimized at registration
  auto computed = PropagationCoverSPC(catalog_, view, sigmas_[sigma_id],
                                      cover_options);
  result.timing.compute_us = MicrosSince(compute_start);
  result.timing.total_us = MicrosSince(start);
  if (!computed.ok()) {
    stats_.Record(result.timing, /*error=*/true);
    return computed.status();
  }

  auto cached = std::make_shared<CachedCover>();
  cached->cover = std::move(computed->cover);
  cached->always_empty = computed->always_empty;
  cached->truncated = computed->truncated;
  if (options_.use_cache && !cached->truncated) {
    // Truncated covers are budget artifacts, not the request's answer;
    // don't let them shadow a future full computation.
    cache_.Insert(fp.key, fp.check, cached);
  }
  result.cover = std::move(cached);
  stats_.Record(result.timing, /*error=*/false);
  return result;
}

Result<EngineResult> Engine::Propagate(const SPCView& view,
                                       SigmaId sigma_id) {
  return Serve(view, sigma_id);
}

std::vector<Result<EngineResult>> Engine::PropagateBatch(
    const std::vector<Request>& requests) {
  stats_.RecordBatch();
  // Result slots are indexed by request position: output order is the
  // request order no matter which worker finishes first.
  std::vector<std::optional<Result<EngineResult>>> slots(requests.size());

  if (options_.num_threads <= 1 || workers_.empty() || requests.size() <= 1) {
    for (size_t i = 0; i < requests.size(); ++i) {
      slots[i] = Serve(requests[i].view, requests[i].sigma_id);
    }
  } else {
    struct BatchState {
      std::mutex mu;
      std::condition_variable done_cv;
      size_t remaining;
    };
    auto state = std::make_shared<BatchState>();
    state->remaining = requests.size();
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < requests.size(); ++i) {
        queue_.push_back([this, &requests, &slots, state, i] {
          // A throwing task would std::terminate the worker thread and
          // leave the batch waiting forever; surface it as a Status like
          // the inline path surfaces errors, and always decrement.
          try {
            slots[i] = Serve(requests[i].view, requests[i].sigma_id);
          } catch (const std::exception& e) {
            slots[i] = Result<EngineResult>(
                Status::Internal(std::string("worker exception: ") +
                                 e.what()));
          } catch (...) {
            slots[i] =
                Result<EngineResult>(Status::Internal("worker exception"));
          }
          std::lock_guard<std::mutex> done_lock(state->mu);
          if (--state->remaining == 0) state->done_cv.notify_one();
        });
      }
    }
    work_cv_.notify_all();
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] { return state->remaining == 0; });
  }

  std::vector<Result<EngineResult>> results;
  results.reserve(requests.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

EngineStatsSnapshot Engine::Stats() const {
  EngineStatsSnapshot s = stats_.Snapshot();
  s.cache = cache_.Stats();
  return s;
}

void Engine::ClearCache() { cache_.Clear(); }

void Engine::StartWorkers() {
  // Guard against pathological configs: more workers than can do useful
  // work just burns memory on stacks (and std::thread creation throws
  // past OS limits).
  constexpr size_t kMaxWorkers = 256;
  options_.num_threads = std::min(options_.num_threads, kMaxWorkers);
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Engine::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace cfdprop
