#include "src/engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "src/cfd/mincover.h"

namespace cfdprop {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

Engine::Engine(Catalog catalog, EngineOptions options)
    : catalog_(std::move(catalog)),
      options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards),
      stats_(options_.metrics) {
  // Pre-intern the only constants the propagation pipeline interns (the
  // ComputeEQ/Lemma 4.5 pair): with these present, concurrent requests
  // hit ValuePool::Intern's read-only path and never mutate the pool.
  catalog_.pool().Intern("0");
  catalog_.pool().Intern("1");
  if (options_.num_threads > 1) StartWorkers();
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

Status Engine::ValidateSigma(const std::vector<CFD>& sigma) const {
  for (const CFD& c : sigma) {
    if (c.relation >= catalog_.num_relations()) {
      return Status::InvalidArgument("source CFD with unknown relation");
    }
    CFDPROP_RETURN_NOT_OK(c.Validate(catalog_.relation(c.relation).arity()));
  }
  return Status::OK();
}

Result<SigmaId> Engine::RegisterSigma(std::vector<CFD> sigma) {
  CFDPROP_RETURN_NOT_OK(ValidateSigma(sigma));
  // Fig. 2 line 1, hoisted: minimize once per registration instead of
  // once per request (MinCoverSigma is the same step the one-shot
  // pipeline runs, so cached and direct results agree byte-for-byte).
  CFDPROP_ASSIGN_OR_RETURN(
      std::vector<CFD> minimized,
      MinCoverSigma(catalog_, sigma, options_.cover.mincover));
  std::unique_lock<std::shared_mutex> lock(sigma_mu_);
  sigmas_.push_back(SigmaEntry{
      std::move(sigma),
      std::make_shared<const std::vector<CFD>>(std::move(minimized)),
      /*generation=*/0});
  return static_cast<SigmaId>(sigmas_.size() - 1);
}

Status Engine::MutateSigma(SigmaId id, std::vector<CFD> raw) {
  // Caller holds mutation_mu_, so `raw` (derived from the entry's
  // current list) cannot be raced by another mutator. Re-minimize
  // OUTSIDE sigma_mu_ — MinCover is the expensive step, and serving
  // must only ever block on the O(1) snapshot swap below.
  auto minimized = MinCoverSigma(catalog_, raw, options_.cover.mincover);
  if (!minimized.ok()) return minimized.status();  // sigma unchanged
  {
    // Re-index instead of holding a reference across the compute:
    // RegisterSigma may have grown (reallocated) the vector meanwhile.
    std::unique_lock<std::shared_mutex> lock(sigma_mu_);
    SigmaEntry& entry = sigmas_[id];
    entry.raw = std::move(raw);
    entry.minimized = std::make_shared<const std::vector<CFD>>(
        std::move(minimized).value());
    ++entry.generation;
  }
  // After the generation bump no stale line can be served (lookup checks
  // the generation), so dropping them outside the lock only reclaims
  // capacity — and touches nothing registered to other sigma ids.
  cache_.EraseTagged(id);
  stats_.RecordMutation();
  return Status::OK();
}

Status Engine::AddCfd(SigmaId id, CFD cfd) {
  if (cfd.relation >= catalog_.num_relations()) {
    return Status::InvalidArgument("source CFD with unknown relation");
  }
  CFDPROP_RETURN_NOT_OK(
      cfd.Validate(catalog_.relation(cfd.relation).arity()));

  std::lock_guard<std::mutex> mutation_lock(mutation_mu_);
  std::vector<CFD> raw;
  {
    std::shared_lock<std::shared_mutex> lock(sigma_mu_);
    if (id >= sigmas_.size()) {
      return Status::InvalidArgument("unknown sigma id");
    }
    raw = sigmas_[id].raw;
  }
  raw.push_back(std::move(cfd));
  return MutateSigma(id, std::move(raw));
}

Status Engine::RetractCfd(SigmaId id, const CFD& cfd) {
  std::lock_guard<std::mutex> mutation_lock(mutation_mu_);
  std::vector<CFD> raw;
  {
    std::shared_lock<std::shared_mutex> lock(sigma_mu_);
    if (id >= sigmas_.size()) {
      return Status::InvalidArgument("unknown sigma id");
    }
    raw = sigmas_[id].raw;
  }
  auto it = std::find(raw.begin(), raw.end(), cfd);
  if (it == raw.end()) {
    return Status::NotFound("CFD is not registered in this sigma set");
  }
  raw.erase(it);
  return MutateSigma(id, std::move(raw));
}

size_t Engine::num_sigmas() const {
  std::shared_lock<std::shared_mutex> lock(sigma_mu_);
  return sigmas_.size();
}

std::shared_ptr<const std::vector<CFD>> Engine::sigma(SigmaId id) const {
  std::shared_lock<std::shared_mutex> lock(sigma_mu_);
  return sigmas_[id].minimized;
}

std::vector<CFD> Engine::sigma_raw(SigmaId id) const {
  std::shared_lock<std::shared_mutex> lock(sigma_mu_);
  return sigmas_[id].raw;
}

uint64_t Engine::sigma_generation(SigmaId id) const {
  std::shared_lock<std::shared_mutex> lock(sigma_mu_);
  return sigmas_[id].generation;
}

Result<std::pair<std::shared_ptr<const std::vector<CFD>>, uint64_t>>
Engine::SnapshotSigma(SigmaId sigma_id) const {
  std::shared_lock<std::shared_mutex> lock(sigma_mu_);
  if (sigma_id >= sigmas_.size()) {
    return Status::InvalidArgument("unknown sigma id");
  }
  return std::make_pair(sigmas_[sigma_id].minimized,
                        sigmas_[sigma_id].generation);
}

Result<EngineResult> Engine::Serve(const SPCView& view, SigmaId sigma_id) {
  CFDPROP_ASSIGN_OR_RETURN(auto snapshot, SnapshotSigma(sigma_id));
  const auto& [sigma, generation] = snapshot;

  const auto start = Clock::now();
  EngineResult result;
  RequestFingerprint fp = FingerprintRequestPair(catalog_, view, sigma_id);
  result.fingerprint = fp.key;
  result.timing.fingerprint_us = MicrosSince(start);

  if (options_.use_cache) {
    if (auto cached = cache_.Lookup(fp.key, fp.check, sigma_id, generation)) {
      result.cover = std::move(cached);
      result.cache_hit = true;
      result.timing.total_us = MicrosSince(start);
      stats_.Record(result.timing, /*error=*/false);
      return result;
    }
  }

  const auto compute_start = Clock::now();
  PropCoverOptions cover_options = options_.cover;
  cover_options.input_mincover = false;  // minimized at registration
  auto computed = PropagationCoverSPC(catalog_, view, *sigma, cover_options);
  result.timing.compute_us = MicrosSince(compute_start);
  result.timing.total_us = MicrosSince(start);
  if (!computed.ok()) {
    stats_.Record(result.timing, /*error=*/true);
    return computed.status();
  }

  auto cached = std::make_shared<CachedCover>();
  cached->cover = std::move(computed->cover);
  cached->always_empty = computed->always_empty;
  cached->truncated = computed->truncated;
  if (options_.use_cache && !cached->truncated) {
    // Truncated covers are budget artifacts, not the request's answer;
    // don't let them shadow a future full computation. The generation
    // recorded here is the one the compute used: if the sigma mutated
    // mid-compute, the entry is already stale and lookups at the new
    // generation will miss it (and replace it on the next insert).
    cache_.Insert(fp.key, fp.check, cached, sigma_id, generation);
  }
  result.cover = std::move(cached);
  stats_.Record(result.timing, /*error=*/false);
  return result;
}

Result<EngineResult> Engine::ServeUnion(const SPCUView& view,
                                        SigmaId sigma_id) {
  if (view.disjuncts.size() == 1) {
    return Serve(view.disjuncts.front(), sigma_id);
  }
  CFDPROP_ASSIGN_OR_RETURN(auto snapshot, SnapshotSigma(sigma_id));
  const auto& [sigma, generation] = snapshot;

  const auto start = Clock::now();
  EngineResult result;
  result.disjunct_count = view.disjuncts.size();
  UnionFingerprint ufp =
      FingerprintUnionRequestPair(catalog_, view, sigma_id);
  result.fingerprint = ufp.fused.key;
  result.timing.fingerprint_us = MicrosSince(start);

  if (options_.use_cache) {
    if (auto cached = cache_.Lookup(ufp.fused.key, ufp.fused.check, sigma_id,
                                    generation)) {
      result.cover = std::move(cached);
      result.cache_hit = true;
      result.disjunct_hits = result.disjunct_count;
      result.timing.total_us = MicrosSince(start);
      stats_.Record(result.timing, /*error=*/false);
      stats_.RecordUnion(result.disjunct_count, 0);
      return result;
    }
  }

  // Union-level miss: validate the union (cross-disjunct compatibility —
  // deliberately after the fused lookup: a check-hash hit implies an
  // identical multiset of disjuncts already assembled successfully, so
  // hot repeats skip the walk), then serve each disjunct from the
  // per-SPC cache lines (the partial hits), computing and inserting the
  // missing ones, and run the cross-disjunct assembly — the same
  // AssembleUnionCover the one-shot path runs, on the same inputs.
  CFDPROP_RETURN_NOT_OK(view.Validate(catalog_));
  const auto compute_start = Clock::now();
  PropCoverOptions cover_options = options_.cover;
  cover_options.input_mincover = false;  // minimized at registration
  std::vector<PropCoverResult> per_disjunct;
  per_disjunct.reserve(view.disjuncts.size());
  for (size_t j = 0; j < view.disjuncts.size(); ++j) {
    const RequestFingerprint& dfp = ufp.disjuncts[j];
    if (options_.use_cache) {
      if (auto hit = cache_.Lookup(dfp.key, dfp.check, sigma_id,
                                   generation)) {
        ++result.disjunct_hits;
        PropCoverResult r;
        r.cover = hit->cover;  // copy: the assembly consumes its inputs
        r.always_empty = hit->always_empty;
        r.truncated = hit->truncated;
        per_disjunct.push_back(std::move(r));
        continue;
      }
    }
    auto computed = PropagationCoverSPC(catalog_, view.disjuncts[j], *sigma,
                                        cover_options);
    if (!computed.ok()) {
      result.timing.compute_us = MicrosSince(compute_start);
      result.timing.total_us = MicrosSince(start);
      stats_.Record(result.timing, /*error=*/true);
      stats_.RecordUnion(result.disjunct_hits,
                         view.disjuncts.size() - result.disjunct_hits);
      return computed.status();
    }
    if (options_.use_cache && !computed->truncated) {
      auto line = std::make_shared<CachedCover>();
      line->cover = computed->cover;  // copy: the original feeds assembly
      line->always_empty = computed->always_empty;
      line->truncated = computed->truncated;
      cache_.Insert(dfp.key, dfp.check, std::move(line), sigma_id,
                    generation);
    }
    per_disjunct.push_back(std::move(computed).value());
  }
  stats_.RecordUnion(result.disjunct_hits,
                     view.disjuncts.size() - result.disjunct_hits);

  auto assembled = AssembleUnionCover(catalog_, view, *sigma,
                                      std::move(per_disjunct), cover_options);
  result.timing.compute_us = MicrosSince(compute_start);
  result.timing.total_us = MicrosSince(start);
  if (!assembled.ok()) {
    stats_.Record(result.timing, /*error=*/true);
    return assembled.status();
  }

  auto cached = std::make_shared<CachedCover>();
  cached->cover = std::move(assembled->cover);
  cached->always_empty = assembled->always_empty;
  cached->truncated = assembled->truncated;
  if (options_.use_cache && !cached->truncated) {
    cache_.Insert(ufp.fused.key, ufp.fused.check, cached, sigma_id,
                  generation);
  }
  result.cover = std::move(cached);
  stats_.Record(result.timing, /*error=*/false);
  return result;
}

Result<EngineResult> Engine::ServeRequest(const Request& request) {
  if (request.view.disjuncts.size() == 1) {
    return Serve(request.view.disjuncts.front(), request.sigma_id);
  }
  return ServeUnion(request.view, request.sigma_id);
}

Result<EngineResult> Engine::ServeRequestNoThrow(const Request& request) {
  // An exception escaping a worker task would std::terminate the worker
  // thread and leave the batch waiting forever; escaping the inline
  // loop it would tear down whatever serving thread (e.g. a service
  // dispatcher) called PropagateBatch. Surface it as a Status either
  // way.
  try {
    return ServeRequest(request);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("worker exception: ") + e.what());
  } catch (...) {
    return Status::Internal("worker exception");
  }
}

Result<EngineResult> Engine::Propagate(const SPCView& view,
                                       SigmaId sigma_id) {
  return Serve(view, sigma_id);
}

Result<EngineResult> Engine::PropagateUnion(const SPCUView& view,
                                            SigmaId sigma_id) {
  if (view.disjuncts.empty()) {
    return Status::InvalidArgument("union view with no disjuncts");
  }
  return ServeUnion(view, sigma_id);
}

std::vector<Result<EngineResult>> Engine::PropagateBatch(
    const std::vector<Request>& requests) {
  stats_.RecordBatch();
  const auto wall_start = Clock::now();
  // Result slots are indexed by request position: output order is the
  // request order no matter which worker finishes first.
  std::vector<std::optional<Result<EngineResult>>> slots(requests.size());

  if (options_.num_threads <= 1 || workers_.empty() || requests.size() <= 1) {
    for (size_t i = 0; i < requests.size(); ++i) {
      slots[i] = ServeRequestNoThrow(requests[i]);
    }
  } else {
    struct BatchState {
      std::mutex mu;
      std::condition_variable done_cv;
      size_t remaining;
    };
    // Chunked fan-out: queue one task per contiguous index range rather
    // than one per request, cutting queue-mutex traffic by the chunk
    // length while the position-indexed slots keep output order exact.
    // ~4 chunks per worker leaves enough pieces to rebalance when
    // request costs are skewed.
    const size_t target_chunks =
        std::min(requests.size(), options_.num_threads * 4);
    const size_t chunk_len =
        (requests.size() + target_chunks - 1) / target_chunks;
    const size_t num_chunks = (requests.size() + chunk_len - 1) / chunk_len;
    auto state = std::make_shared<BatchState>();
    state->remaining = num_chunks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t begin = 0; begin < requests.size(); begin += chunk_len) {
        const size_t end = std::min(begin + chunk_len, requests.size());
        queue_.push_back([this, &requests, &slots, state, begin, end] {
          for (size_t i = begin; i < end; ++i) {
            slots[i] = ServeRequestNoThrow(requests[i]);
          }
          std::lock_guard<std::mutex> done_lock(state->mu);
          if (--state->remaining == 0) state->done_cv.notify_one();
        });
      }
    }
    work_cv_.notify_all();
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] { return state->remaining == 0; });
  }

  // Wall vs. summed per-request time = the parallelism this batch
  // actually achieved (par_eff in the stats line).
  double busy_us = 0;
  for (const auto& slot : slots) {
    if (slot->ok()) busy_us += (*slot)->timing.total_us;
  }
  stats_.RecordBatchTiming(MicrosSince(wall_start), busy_us);

  std::vector<Result<EngineResult>> results;
  results.reserve(requests.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

std::vector<Result<EngineResult>> Engine::PropagateBatch(
    const std::vector<Request>& requests, const obs::TraceContext& trace) {
  obs::Tracer* tracer =
      trace.sampled ? obs::ProcessTracer() : nullptr;
  if (tracer == nullptr) return PropagateBatch(requests);
  const uint64_t start_us = tracer->NowUs();
  std::vector<Result<EngineResult>> results = PropagateBatch(requests);
  const uint64_t dur_us = tracer->NowUs() - start_us;
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (const auto& r : results) {
    if (!r.ok()) continue;
    if (r->cache_hit) {
      ++hits;
    } else {
      ++misses;
    }
  }
  char annot[32];
  std::snprintf(annot, sizeof(annot), "hits=%llu misses=%llu",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses));
  tracer->Record(trace, tracer->NewSpanId(), trace.parent_span_id, "compute",
                 start_us, dur_us, /*tenant=*/"", /*shard=*/-1, annot);
  return results;
}

std::vector<SigmaSnapshotInfo> Engine::SigmaSnapshotInfos() const {
  std::shared_lock<std::shared_mutex> lock(sigma_mu_);
  std::vector<SigmaSnapshotInfo> infos;
  infos.reserve(sigmas_.size());
  for (const SigmaEntry& e : sigmas_) {
    infos.push_back(SigmaSnapshotInfo{
        FingerprintSigmaSet(catalog_.pool(), *e.minimized), e.generation});
  }
  return infos;
}

Result<uint64_t> Engine::SaveSnapshot(const std::string& path) const {
  return cache_.SaveSnapshot(path, catalog_.pool(), SigmaSnapshotInfos());
}

Result<SnapshotLoadStats> Engine::LoadSnapshot(const std::string& path) {
  return cache_.LoadSnapshot(path, catalog_.pool(), SigmaSnapshotInfos());
}

SerializedSnapshot Engine::SerializeSnapshot() const {
  return cache_.SerializeSnapshot(catalog_.pool(), SigmaSnapshotInfos());
}

Result<SnapshotLoadStats> Engine::LoadSnapshotBytes(std::string_view bytes) {
  return cache_.LoadSnapshotBytes(bytes, catalog_.pool(),
                                  SigmaSnapshotInfos());
}

EngineStatsSnapshot Engine::Stats() const {
  EngineStatsSnapshot s = stats_.Snapshot();
  s.cache = cache_.Stats();
  return s;
}

void Engine::ClearCache() { cache_.Clear(); }

size_t Engine::SetCacheBudget(size_t entries) {
  return cache_.SetBudget(entries);
}

size_t Engine::cache_capacity() const { return cache_.capacity(); }

void Engine::StartWorkers() {
  // Guard against pathological configs: more workers than can do useful
  // work just burns memory on stacks (and std::thread creation throws
  // past OS limits).
  constexpr size_t kMaxWorkers = 256;
  options_.num_threads = std::min(options_.num_threads, kMaxWorkers);
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Engine::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace cfdprop
