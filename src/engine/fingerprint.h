// Canonical fingerprints of propagation requests.
//
// The engine's cover cache is keyed by a 64-bit fingerprint of
// (canonicalized SPC view, registered Sigma set). Canonicalization maps
// syntactic variants of the same query to one representative so that
// equivalent requests hit the same cache line:
//
//   * product atoms are put into a canonical order (products commute
//     modulo column renaming; column ids are remapped accordingly),
//   * the selection conjunction is normalized: A = B atoms are oriented
//     with the smaller column first, conjuncts are sorted and deduped,
//   * output column *names* are ignored — propagation covers are
//     positional (CFD attribute indices are output positions), so
//     renamings do not change the served cover.
//
// Constants are hashed by their pool *text*, not their Value id, so the
// fingerprint of a view does not depend on interning order.
//
// A request is identified by a RequestFingerprint: a 64-bit cache key
// plus an independently-computed 64-bit check hash over the same
// canonical serialization. The cache compares the check hash on every
// hit, so a key collision between non-equivalent requests degrades to a
// cache miss (recompute) rather than serving the wrong cover; a wrong
// serve needs both hashes to collide (~2^-128 per pair).

#ifndef CFDPROP_ENGINE_FINGERPRINT_H_
#define CFDPROP_ENGINE_FINGERPRINT_H_

#include <cstdint>

#include "src/algebra/view.h"
#include "src/schema/schema.h"

namespace cfdprop {

/// Returns the canonical representative of `view`'s equivalence class
/// under atom permutation and selection reordering: atoms sorted by
/// (relation id, selection/output footprint), selections normalized,
/// sorted and deduped. Output column names are preserved (they are
/// ignored by FingerprintSPCView, not rewritten).
SPCView CanonicalizeSPCView(const Catalog& catalog, const SPCView& view);

/// 64-bit fingerprint of the canonicalized view. Equal for equivalent
/// views (permuted selections, reordered product atoms, renamed output
/// columns); distinct with high probability otherwise.
uint64_t FingerprintSPCView(const Catalog& catalog, const SPCView& view);

/// Cache key + independent check hash of one propagation request.
struct RequestFingerprint {
  uint64_t key = 0;    // shard + index key of the cover cache
  uint64_t check = 0;  // compared on every hit; mismatch = miss
};

/// Fingerprints a full request: the canonicalized view plus the
/// engine-local id of the registered source CFD set.
RequestFingerprint FingerprintRequestPair(const Catalog& catalog,
                                          const SPCView& view,
                                          uint64_t sigma_id);

/// Convenience: the cache key alone.
uint64_t FingerprintRequest(const Catalog& catalog, const SPCView& view,
                            uint64_t sigma_id);

/// Fingerprint of an SPCU request. A union is identified by the
/// *multiset* of its disjuncts' SPC fingerprints: the per-disjunct pairs
/// are sorted before fusing, so two listings of the same union that only
/// reorder disjuncts share one cache line, while duplicated disjuncts
/// still count (a multiset, not a set). The fused serialization is
/// domain-separated from SerializeRequest, so a union — even a 1-disjunct
/// one — never aliases any single-disjunct SPC fingerprint.
struct UnionFingerprint {
  /// Cache key of the assembled union cover.
  RequestFingerprint fused;
  /// Per-disjunct SPC fingerprints in input order; these are exactly the
  /// keys of the engine's per-SPC cache lines, so an SPCU request with k
  /// disjuncts can be served as up to k partial hits.
  std::vector<RequestFingerprint> disjuncts;
};

/// Fingerprints an SPCU request against a registered sigma set.
UnionFingerprint FingerprintUnionRequestPair(const Catalog& catalog,
                                             const SPCUView& view,
                                             uint64_t sigma_id);

/// Convenience: the fused cache key alone (sigma id 0).
uint64_t FingerprintSPCUView(const Catalog& catalog, const SPCUView& view);

}  // namespace cfdprop

#endif  // CFDPROP_ENGINE_FINGERPRINT_H_
