// Persistent cover-cache snapshots: the versioned, self-validating wire
// format behind CoverCache::SaveSnapshot/LoadSnapshot and
// Engine::SaveSnapshot/LoadSnapshot.
//
// The engine's sharded LRU dies with the process, so every restart used
// to pay the full one-shot propagation cost per request. A snapshot
// spills every live cache line — fingerprint, check word, (tag,
// generation) and the CachedCover payload — to one file that a restart
// restores atomically, serving warm covers byte-identical to what the
// cold process computed.
//
// Wire format (all integers fixed-width little-endian, see
// src/base/wire.h):
//
//   magic[8]            "CFDPSNP1"
//   version   u32       kSnapshotVersion; any other value rejects
//   reserved  u32       0
//   sigma table:
//     count   u64       registered sigma sets at save time
//     per set: fingerprint u64 (FingerprintSigmaSet of the minimized
//              set, text-level so it is pool-independent),
//              generation u64 (the set's mutation counter at save;
//              informational — lines from stale generations are
//              filtered out at save, so lines carry no generation)
//   string table:
//     count   u64
//     per string: len u64 + raw bytes — every pattern-constant text the
//              spilled covers reference, in first-use order
//   lines:
//     count   u64
//     per line (sorted by (tag, fingerprint) so identical cache content
//              serializes to identical bytes):
//       fingerprint u64, check u64, tag u64,
//       flags u8 (bit0 always_empty, bit1 truncated),
//       cover count u64, then each CFD via CFD::AppendSnapshotBytes
//       (pattern constants as string-table indices, never Value ids —
//       ids are process-local and are remapped through the table on
//       load)
//   checksum  u64       FNV-1a over every preceding byte; catches
//                       truncation and bit rot before any line parses
//
// Validation on load, in order: magic, version, checksum, then per
// line: the line's tag must name a currently registered sigma whose
// FingerprintSigmaSet equals the file's — a changed Σ rejects that
// sigma's lines (they'd be stale covers) while other sigmas' lines
// still restore. Restored lines are inserted under the *current*
// generation of their sigma, so a freshly started engine (generation 0)
// serves them immediately. Any structural failure rejects the whole
// file with a Status; nothing is ever partially trusted.
//
// Versioning policy: kSnapshotVersion bumps on ANY layout change — the
// format carries no compatibility shims, a version mismatch simply
// rejects and the restart recomputes (a snapshot is a cache, losing it
// is never incorrect).

#ifndef CFDPROP_ENGINE_SNAPSHOT_H_
#define CFDPROP_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/value.h"
#include "src/cfd/cfd.h"

namespace cfdprop {

/// First bytes of every cover snapshot file.
inline constexpr char kSnapshotMagic[8] = {'C', 'F', 'D', 'P',
                                           'S', 'N', 'P', '1'};

/// Bumped on any wire-format change; a mismatch cleanly rejects the file.
inline constexpr uint32_t kSnapshotVersion = 1;

/// What a snapshot records about one registered sigma set, and what a
/// loader presents about its own registered sets to validate against.
struct SigmaSnapshotInfo {
  /// FingerprintSigmaSet of the minimized set — content-addressed and
  /// text-level, so two processes that registered the same CFDs agree
  /// on it regardless of interning order.
  uint64_t fingerprint = 0;
  /// The set's mutation counter (Engine generation).
  uint64_t generation = 0;
};

/// A snapshot serialized to memory: the exact bytes SaveSnapshot would
/// publish to a file, plus the line count it would report. Migration
/// ships these bytes over the wire instead of through the filesystem.
struct SerializedSnapshot {
  std::string bytes;
  /// Live lines serialized.
  uint64_t lines = 0;
};

/// Outcome of a LoadSnapshot call.
struct SnapshotLoadStats {
  /// Lines inserted into the cache.
  uint64_t restored = 0;
  /// Lines skipped because their sigma no longer exists or its content
  /// fingerprint changed (stale-at-save lines never reach the file).
  uint64_t rejected = 0;
};

/// Stable, pool-independent fingerprint of a CFD set: hashes relation
/// ids, attribute positions and pattern entries with constants by their
/// *text*. Order-sensitive over `cfds` (minimization is deterministic,
/// so equal registered sets fingerprint equal). Binds snapshot lines to
/// the sigma content they were computed against.
uint64_t FingerprintSigmaSet(const ValuePool& pool,
                             const std::vector<CFD>& cfds);

}  // namespace cfdprop

#endif  // CFDPROP_ENGINE_SNAPSHOT_H_
