// Sharded LRU cache mapping request fingerprints to propagation covers.
//
// The cache stores covers behind shared_ptr<const CachedCover>, so a hit
// hands out a reference that stays valid after the entry is evicted —
// readers never copy the cover and eviction never invalidates a result a
// request is still holding. Shards are locked independently (a
// fingerprint's shard is derived from its high bits), keeping the worker
// pool's lookups from serializing on one mutex.
//
// Entries additionally carry a (tag, generation) pair supplied by the
// engine: the tag is the SigmaId the cover was computed against and the
// generation is that sigma's mutation counter at compute time. Lookup
// compares both, so a cover computed against a retracted/extended sigma
// can never be served, even when a stale in-flight insert lands after
// the sigma mutated (the stale entry's generation no longer matches and
// degrades to a miss). EraseTagged drops every line bound to one tag —
// the selective-invalidation primitive behind AddCfd/RetractCfd, which
// never needs a global Clear().

#ifndef CFDPROP_ENGINE_COVER_CACHE_H_
#define CFDPROP_ENGINE_COVER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/cfd/cfd.h"
#include "src/engine/snapshot.h"

namespace cfdprop {

/// A cached propagation cover: the PropCoverResult fields a repeated
/// request needs back.
struct CachedCover {
  std::vector<CFD> cover;
  bool always_empty = false;
  bool truncated = false;
};

/// Aggregated counters across all shards.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Entries dropped by EraseTagged (sigma mutation), not by LRU pressure.
  uint64_t invalidations = 0;
  /// Lines restored from / rejected by LoadSnapshot (warm starts).
  uint64_t restored = 0;
  uint64_t rejected = 0;
  size_t entries = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class CoverCache {
 public:
  /// `capacity` = total budget of cached covers, split evenly across
  /// `num_shards` shards (rounded down to a shard multiple — a budget
  /// is an upper bound — but each shard gets at least one slot).
  explicit CoverCache(size_t capacity, size_t num_shards = 8);

  CoverCache(const CoverCache&) = delete;
  CoverCache& operator=(const CoverCache&) = delete;

  /// Returns the cached cover and refreshes its LRU position, or nullptr
  /// on a miss. An entry whose stored check hash differs from `check`
  /// is a key collision between non-equivalent requests; an entry whose
  /// (tag, generation) differs was computed against a sigma state that
  /// no longer exists. Both are treated as misses, so collisions and
  /// stale covers recompute instead of serving a wrong cover.
  /// Thread-safe.
  std::shared_ptr<const CachedCover> Lookup(uint64_t fingerprint,
                                            uint64_t check, uint64_t tag = 0,
                                            uint64_t generation = 0);

  /// Inserts (or refreshes) an entry, evicting the shard's least
  /// recently used cover when the shard is full. An existing entry with
  /// a different check hash or (tag, generation) is replaced.
  /// Thread-safe.
  void Insert(uint64_t fingerprint, uint64_t check,
              std::shared_ptr<const CachedCover> cover, uint64_t tag = 0,
              uint64_t generation = 0);

  /// Drops every entry bound to `tag` (handed-out covers stay valid);
  /// returns how many were dropped. All other tags' lines are untouched:
  /// this is the selective invalidation used when one sigma mutates.
  /// Thread-safe.
  size_t EraseTagged(uint64_t tag);

  /// Resizes the cache to `capacity` total entries (the shard count is
  /// fixed at construction; each shard keeps at least one slot, so the
  /// effective floor is num_shards() entries — a budget below that
  /// over-delivers, see capacity() for the honored value). A shrink
  /// evicts deterministically — shard 0..N-1 in order, each shard's
  /// least recently used entries first — so rebalancing tenant budgets
  /// at runtime always drops the same lines for the same access
  /// history. Handed-out covers stay valid. Returns how many entries
  /// were evicted (counted in `evictions`). Thread-safe.
  size_t SetBudget(size_t capacity);

  /// Drops every entry; hit/miss counters are preserved and the dropped
  /// entries count as `invalidations` (so dirtiness tracking built on
  /// the change counters registers an explicit clear).
  void Clear();

  /// Spills every live line to `path` atomically (write-to-temp +
  /// rename): the snapshot wire format of src/engine/snapshot.h, with
  /// pattern constants exported as `pool` texts. `sigmas[tag]` supplies
  /// each sigma's content fingerprint and current generation; lines
  /// whose tag is unknown or whose generation is stale (an in-flight
  /// insert that lost to a mutation) are skipped. Returns the number of
  /// lines written. Thread-safe against concurrent serving.
  /// Implemented in snapshot.cc.
  Result<uint64_t> SaveSnapshot(const std::string& path,
                                const ValuePool& pool,
                                const std::vector<SigmaSnapshotInfo>& sigmas)
      const;

  /// SaveSnapshot without the file: serializes every live line to the
  /// snapshot wire format in memory (checksum trailer included — the
  /// bytes are exactly what SaveSnapshot would publish). This is what
  /// tenant migration ships over the network. Thread-safe against
  /// concurrent serving. Implemented in snapshot.cc.
  SerializedSnapshot SerializeSnapshot(
      const ValuePool& pool,
      const std::vector<SigmaSnapshotInfo>& sigmas) const;

  /// Restores a snapshot written by SaveSnapshot: validates magic,
  /// version and checksum (any failure rejects the whole file), and
  /// inserts every line whose sigma still matches — same tag
  /// registered, same content fingerprint — under that sigma's
  /// *current* generation from `sigmas`. Restored covers' constants
  /// are interned into `pool` lazily (remapping process-local Value
  /// ids); rejected lines never intern, so a mismatched snapshot leaves
  /// the pool untouched. Mismatched lines count as `rejected` and are
  /// dropped; they can never serve a stale cover.
  /// NOT thread-safe against serving (it interns into the shared pool);
  /// call before traffic. Implemented in snapshot.cc.
  Result<SnapshotLoadStats> LoadSnapshot(
      const std::string& path, ValuePool& pool,
      const std::vector<SigmaSnapshotInfo>& sigmas);

  /// LoadSnapshot from bytes already in memory (the receiving side of a
  /// migration): identical validation and acceptance rules, minus the
  /// file read. NOT thread-safe against serving; call before traffic.
  /// Implemented in snapshot.cc.
  Result<SnapshotLoadStats> LoadSnapshotBytes(
      std::string_view bytes, ValuePool& pool,
      const std::vector<SigmaSnapshotInfo>& sigmas);

  CacheStats Stats() const;

  size_t capacity() const {
    return per_shard_capacity_.load(std::memory_order_relaxed) *
           shards_.size();
  }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    uint64_t fingerprint;
    uint64_t check;
    uint64_t tag;
    uint64_t generation;
    std::shared_ptr<const CachedCover> cover;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<uint64_t, decltype(lru)::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };

  Shard& ShardFor(uint64_t fingerprint) {
    // High bits pick the shard; the map key keeps the full fingerprint.
    return *shards_[(fingerprint >> 56) % shards_.size()];
  }

  /// Atomic: Insert reads it under its own shard's lock only, while
  /// SetBudget rewrites it without holding every shard lock at once.
  std::atomic<size_t> per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// LoadSnapshot outcomes; cache-global (not per shard) because a load
  /// happens once per process, not per lookup.
  std::atomic<uint64_t> restored_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace cfdprop

#endif  // CFDPROP_ENGINE_COVER_CACHE_H_
