// Cover-cache snapshot serialization: FingerprintSigmaSet plus the
// CoverCache::SaveSnapshot/LoadSnapshot implementations. The wire
// format is documented in snapshot.h; the CFD/pattern byte layout lives
// with the types themselves (CFD::AppendSnapshotBytes).

#include "src/engine/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/wire.h"
#include "src/engine/cover_cache.h"

namespace cfdprop {

namespace {

/// FNV-1a over the raw bytes: the file checksum. (Not cryptographic —
/// snapshots guard against truncation and stale state, not an
/// adversary; an untrusted file should simply not be loaded.)
uint64_t Checksum(std::string_view bytes) {
  Fnv1aHasher h;
  for (char c : bytes) h.MixByte(static_cast<uint8_t>(c));
  return h.digest();
}

constexpr uint8_t kFlagAlwaysEmpty = 1u << 0;
constexpr uint8_t kFlagTruncated = 1u << 1;

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("cover snapshot rejected: " + what);
}

}  // namespace

uint64_t FingerprintSigmaSet(const ValuePool& pool,
                             const std::vector<CFD>& cfds) {
  Fnv1aHasher h;
  h.Mix(static_cast<uint64_t>(cfds.size()));
  auto mix_pattern = [&](const PatternValue& p) {
    h.Mix(static_cast<uint64_t>(p.kind()));
    if (p.is_constant()) h.Mix(pool.Text(p.value()));
  };
  for (const CFD& c : cfds) {
    h.Mix(static_cast<uint64_t>(c.relation));
    h.Mix(static_cast<uint64_t>(c.lhs.size()));
    for (size_t i = 0; i < c.lhs.size(); ++i) {
      h.Mix(static_cast<uint64_t>(c.lhs[i]));
      mix_pattern(c.lhs_pats[i]);
    }
    h.Mix(static_cast<uint64_t>(c.rhs));
    mix_pattern(c.rhs_pat);
  }
  return h.digest();
}

SerializedSnapshot CoverCache::SerializeSnapshot(
    const ValuePool& pool,
    const std::vector<SigmaSnapshotInfo>& sigmas) const {
  // Copy the live lines shard by shard (shared_ptr copies, never the
  // covers themselves); serving proceeds on the other shards meanwhile.
  struct Line {
    uint64_t fingerprint, check, tag, generation;
    std::shared_ptr<const CachedCover> cover;
  };
  std::vector<Line> lines;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& e : shard->lru) {
      // Skip lines no lookup could serve: an unknown tag or a stale
      // generation (an in-flight insert that lost to a mutation).
      if (e.tag >= sigmas.size()) continue;
      if (e.generation != sigmas[e.tag].generation) continue;
      lines.push_back({e.fingerprint, e.check, e.tag, e.generation, e.cover});
    }
  }
  // Deterministic bytes for deterministic content: fingerprints are
  // unique cache-wide, so (tag, fingerprint) is a total order.
  std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    return std::tie(a.tag, a.fingerprint) < std::tie(b.tag, b.fingerprint);
  });

  // Serialize the lines first: the string table is collected lazily in
  // first-use order, but the format places it before the lines.
  std::unordered_map<Value, uint32_t> value_slot;
  std::vector<Value> table_values;
  auto value_index = [&](Value v) {
    auto [it, inserted] =
        value_slot.emplace(v, static_cast<uint32_t>(table_values.size()));
    if (inserted) table_values.push_back(v);
    return it->second;
  };
  std::string body;
  wire::PutU64(body, lines.size());
  for (const Line& line : lines) {
    wire::PutU64(body, line.fingerprint);
    wire::PutU64(body, line.check);
    wire::PutU64(body, line.tag);
    uint8_t flags = 0;
    if (line.cover->always_empty) flags |= kFlagAlwaysEmpty;
    if (line.cover->truncated) flags |= kFlagTruncated;
    wire::PutU8(body, flags);
    wire::PutU64(body, line.cover->cover.size());
    for (const CFD& c : line.cover->cover) {
      c.AppendSnapshotBytes(body, value_index);
    }
  }

  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  wire::PutU32(out, kSnapshotVersion);
  wire::PutU32(out, 0);  // reserved
  wire::PutU64(out, sigmas.size());
  for (const SigmaSnapshotInfo& s : sigmas) {
    wire::PutU64(out, s.fingerprint);
    wire::PutU64(out, s.generation);
  }
  wire::PutU64(out, table_values.size());
  for (Value v : table_values) {
    const std::string& text = pool.Text(v);
    wire::PutU64(out, text.size());
    out.append(text);
  }
  out.append(body);
  wire::PutU64(out, Checksum(out));
  return SerializedSnapshot{std::move(out),
                            static_cast<uint64_t>(lines.size())};
}

Result<uint64_t> CoverCache::SaveSnapshot(
    const std::string& path, const ValuePool& pool,
    const std::vector<SigmaSnapshotInfo>& sigmas) const {
  SerializedSnapshot snapshot = SerializeSnapshot(pool, sigmas);
  const std::string& out = snapshot.bytes;

  // Atomic publish: write a *writer-unique* sibling temp file, fsync
  // it, then rename over the target — a reader never observes a
  // half-written snapshot, a crash can't publish unsynced bytes (the
  // rename is ordered after the data reaches disk), and concurrent
  // savers to the same path (background spill policy racing a
  // DropCatalog flush, or two engines sharing a path) each own their
  // temp file instead of clobbering or remove()-ing each other's
  // in-flight write. Last rename wins, and every published file is a
  // complete, checksummed snapshot.
  static std::atomic<uint64_t> save_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(save_seq.fetch_add(1));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return Status::InvalidArgument("cannot open " + tmp);
  size_t written = 0;
  while (written < out.size()) {
    const ssize_t w = ::write(fd, out.data() + written, out.size() - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      return Status::InvalidArgument("short write to " + tmp);
    }
    written += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return Status::InvalidArgument("fsync failed on " + tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::InvalidArgument("cannot rename " + tmp + " to " + path);
  }
  return snapshot.lines;
}

Result<SnapshotLoadStats> CoverCache::LoadSnapshot(
    const std::string& path, ValuePool& pool,
    const std::vector<SigmaSnapshotInfo>& sigmas) {
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    if (!f) return Status::NotFound("cannot open " + path);
    std::string buf((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
    if (!f.eof() && !f) return Corrupt("read error on " + path);
    bytes = std::move(buf);
  }
  return LoadSnapshotBytes(bytes, pool, sigmas);
}

Result<SnapshotLoadStats> CoverCache::LoadSnapshotBytes(
    std::string_view bytes, ValuePool& pool,
    const std::vector<SigmaSnapshotInfo>& sigmas) {
  // Header gate: magic, version, checksum — in that order, so the error
  // names the most specific cause. Everything after runs on a stream
  // the checksum already vouches for; parse failures past this point
  // mean a format bug, and still reject cleanly.
  if (bytes.size() < sizeof(kSnapshotMagic) + 8 + 8) {
    return Corrupt("file shorter than header + checksum");
  }
  if (bytes.compare(0, sizeof(kSnapshotMagic), kSnapshotMagic,
                    sizeof(kSnapshotMagic)) != 0) {
    return Corrupt("bad magic (not a cover snapshot)");
  }
  size_t pos = sizeof(kSnapshotMagic);
  uint32_t version = 0, reserved = 0;
  wire::GetU32(bytes, &pos, &version);
  wire::GetU32(bytes, &pos, &reserved);
  if (version != kSnapshotVersion) {
    return Corrupt("format version " + std::to_string(version) +
                   " (this build reads " +
                   std::to_string(kSnapshotVersion) + ")");
  }
  size_t checksum_pos = bytes.size() - 8;
  uint64_t stored_checksum = 0;
  wire::GetU64(bytes, &checksum_pos, &stored_checksum);
  if (Checksum(std::string_view(bytes).substr(0, bytes.size() - 8)) !=
      stored_checksum) {
    return Corrupt("checksum mismatch (truncated or corrupt)");
  }
  std::string_view payload(bytes.data(), bytes.size() - 8);

  uint64_t num_sigmas = 0;
  if (!wire::GetU64(payload, &pos, &num_sigmas) ||
      num_sigmas > (payload.size() - pos) / 16) {
    return Corrupt("sigma table truncated");
  }
  std::vector<SigmaSnapshotInfo> file_sigmas(num_sigmas);
  for (SigmaSnapshotInfo& s : file_sigmas) {
    wire::GetU64(payload, &pos, &s.fingerprint);
    wire::GetU64(payload, &pos, &s.generation);
  }

  uint64_t num_strings = 0;
  if (!wire::GetU64(payload, &pos, &num_strings) ||
      num_strings > (payload.size() - pos) / 8) {
    return Corrupt("string table truncated");
  }
  // Texts stay views into the file bytes; interning is lazy (below), so
  // a rejected line's constants never pollute the append-only pool —
  // loading a fully mismatched snapshot leaves the pool untouched.
  std::vector<std::string_view> texts;
  texts.reserve(num_strings);
  for (uint64_t i = 0; i < num_strings; ++i) {
    uint64_t len = 0;
    std::string_view text;
    if (!wire::GetU64(payload, &pos, &len) ||
        !wire::GetBytes(payload, &pos, len, &text)) {
      return Corrupt("string table entry truncated");
    }
    texts.push_back(text);
  }
  std::vector<Value> interned(texts.size(), kNoValue);
  std::function<Result<Value>(uint32_t)> intern_at =
      [&](uint32_t index) -> Result<Value> {
    if (index >= texts.size()) {
      return Status::InvalidArgument(
          "pattern constant index out of string-table range");
    }
    if (interned[index] == kNoValue) {
      interned[index] = pool.Intern(texts[index]);
    }
    return interned[index];
  };
  // Rejected lines still parse (the format has no per-line length to
  // skip by) but resolve to a placeholder: bounds are checked, nothing
  // interns, and the decoded cover is discarded.
  std::function<Result<Value>(uint32_t)> skip_at =
      [&](uint32_t index) -> Result<Value> {
    if (index >= texts.size()) {
      return Status::InvalidArgument(
          "pattern constant index out of string-table range");
    }
    return kNoValue;
  };

  // Parse every line before inserting any: a structurally bad file is
  // rejected whole, never half-restored. (Constants of lines accepted
  // before a — post-checksum, so practically unreachable — parse
  // failure may already have interned; the pool is append-only and
  // extra texts are harmless, unlike half a cache.)
  struct Parsed {
    uint64_t fingerprint, check, tag;
    std::shared_ptr<CachedCover> cover;
    bool accepted;
  };
  uint64_t num_lines = 0;
  if (!wire::GetU64(payload, &pos, &num_lines) ||
      num_lines > (payload.size() - pos) / 33) {
    return Corrupt("line table truncated");
  }
  std::vector<Parsed> parsed;
  parsed.reserve(num_lines);
  for (uint64_t i = 0; i < num_lines; ++i) {
    Parsed line;
    uint8_t flags = 0;
    uint64_t cover_size = 0;
    if (!wire::GetU64(payload, &pos, &line.fingerprint) ||
        !wire::GetU64(payload, &pos, &line.check) ||
        !wire::GetU64(payload, &pos, &line.tag) ||
        !wire::GetU8(payload, &pos, &flags) ||
        !wire::GetU64(payload, &pos, &cover_size) ||
        cover_size > (payload.size() - pos) / 9) {
      return Corrupt("line " + std::to_string(i) + " truncated");
    }
    // Accept only lines whose sigma still exists with the same content:
    // everything else is a stale cover. (Lines carry no generation of
    // their own — SaveSnapshot already filtered to each sigma's current
    // generation, so the content fingerprint is the whole contract.)
    // The acceptance check runs before the cover decodes so rejected
    // lines resolve through skip_at and never intern their constants.
    line.accepted =
        line.tag < sigmas.size() && line.tag < file_sigmas.size() &&
        file_sigmas[line.tag].fingerprint == sigmas[line.tag].fingerprint;
    line.cover = std::make_shared<CachedCover>();
    line.cover->always_empty = (flags & kFlagAlwaysEmpty) != 0;
    line.cover->truncated = (flags & kFlagTruncated) != 0;
    line.cover->cover.reserve(cover_size);
    for (uint64_t j = 0; j < cover_size; ++j) {
      auto cfd = CFD::FromSnapshotBytes(payload, &pos,
                                        line.accepted ? intern_at : skip_at);
      if (!cfd.ok()) {
        return Corrupt("line " + std::to_string(i) + ": " +
                       cfd.status().message());
      }
      line.cover->cover.push_back(std::move(cfd).value());
    }
    parsed.push_back(std::move(line));
  }
  if (pos != payload.size()) {
    return Corrupt("trailing bytes after line table");
  }

  // Insert the accepted lines under their sigma's *current* generation —
  // the loading process counts mutations from zero, and the fingerprint
  // match is what proves the content is the same.
  SnapshotLoadStats stats;
  for (Parsed& line : parsed) {
    if (!line.accepted) {
      ++stats.rejected;
      continue;
    }
    Insert(line.fingerprint, line.check, std::move(line.cover), line.tag,
           sigmas[line.tag].generation);
    ++stats.restored;
  }
  restored_.fetch_add(stats.restored, std::memory_order_relaxed);
  rejected_.fetch_add(stats.rejected, std::memory_order_relaxed);
  return stats;
}

}  // namespace cfdprop
