// The chase, extended to CFDs (appendix, proofs of Theorems 3.1-3.8).
//
// Rules applied until fixpoint, for each CFD psi = R(W -> C, sp) and rows
// of relation R in the symbolic instance:
//
//   * single-tuple rule: if t[W] matches sp[W] (a variable cell matches
//     only '_'; a bound cell matches '_' or its own constant), then t[C]
//     must match sp[C]: when sp[C] is a constant it is bound into t[C]
//     (conflict => contradiction, the "undefined" chase);
//   * pair rule: if t1[W] = t2[W] (cell-equal) and matches sp[W], then
//     t1[C] and t2[C] are merged, and additionally bound to sp[C] when it
//     is a constant;
//   * equality rule (view CFDs R(A -> B, (x || x))): t[A] and t[B] are
//     merged in every row.
//
// A variable cell matching only '_' is exactly what makes the chase sound
// in the infinite-domain setting: fresh variables denote pairwise-distinct
// values outside every pattern constant. In the general setting the
// caller first instantiates finite-domain variables (see
// ForEachFiniteInstantiation) because such a variable *will* take one of
// finitely many values and may then match a constant pattern.

#ifndef CFDPROP_CHASE_CHASE_H_
#define CFDPROP_CHASE_CHASE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/chase/symbolic_instance.h"

namespace cfdprop {

enum class ChaseOutcome {
  kFixpoint,       // chase terminated; the instance is satisfiable
  kContradiction,  // chase undefined; no concrete refinement exists
};

struct ChaseOptions {
  /// Upper bound on chase passes; the chase of a fixed instance always
  /// terminates (each pass that changes anything merges classes or binds
  /// constants, both bounded), so this only guards against bugs.
  uint64_t max_passes = 1u << 20;
};

/// Runs the CFD chase to fixpoint. CFDs apply to rows whose relation tag
/// equals cfd.relation. Returns kContradiction iff the instance became
/// contradictory (which may also have been true on entry).
Result<ChaseOutcome> Chase(SymbolicInstance& instance,
                           const std::vector<CFD>& sigma,
                           const ChaseOptions& options = {});

struct InstantiationOptions {
  /// Budget on the number of finite-domain assignments enumerated; the
  /// general-setting procedures are coNP-/NP-complete (Theorems 3.2, 3.3,
  /// 3.7), so exhaustive enumeration is exponential in the worst case.
  uint64_t max_instantiations = 1u << 22;
};

/// Enumerates every instantiation of the unbound finite-domain variable
/// cells of `base` (Theorems 3.2/3.3/3.7 proofs). For each assignment the
/// callback receives a fork of `base` with those cells bound (not yet
/// chased). Enumeration stops early when the callback returns false.
/// Returns ResourceExhausted if the budget is exceeded, otherwise whether
/// the callback ever returned false (i.e. enumeration was cut short).
Result<bool> ForEachFiniteInstantiation(
    const SymbolicInstance& base,
    const std::function<bool(SymbolicInstance&)>& callback,
    const InstantiationOptions& options = {});

/// Branch-and-prune search over the finite instantiations — the
/// engine behind the general-setting decision procedures.
///
/// Semantically equivalent to "for every full instantiation of the
/// unbound finite-domain cells, chase, and test contradiction-free
/// leaves with `leaf_predicate`; return whether any leaf satisfied it" —
/// but instead of enumerating the exponential assignment space up front
/// (ForEachFiniteInstantiation), it chases FIRST and branches on one
/// still-unbound finite cell at a time, DPLL-style. The chase closes
/// contradictory branches early and binds further cells along the way,
/// which collapses most of the 2^k space the appendix proofs enumerate
/// (and makes the Theorem 3.2 3SAT construction tractable for small
/// formulas; see src/propagation/reductions.h).
///
/// `leaf_predicate` is called on fixpoint instances with no unbound
/// finite cells; contradictory branches never reach it. The budget
/// counts visited search nodes.
Result<bool> ExistsChaseBranch(
    const SymbolicInstance& base, const std::vector<CFD>& sigma,
    const std::function<bool(SymbolicInstance&)>& leaf_predicate,
    const InstantiationOptions& options = {});

}  // namespace cfdprop

#endif  // CFDPROP_CHASE_CHASE_H_
