#include "src/chase/symbolic_instance.h"

#include <algorithm>
#include <cassert>

namespace cfdprop {

namespace {

/// Intersects two sorted-or-not value lists (small inputs).
std::vector<Value> Intersect(const std::vector<Value>& a,
                             const std::vector<Value>& b) {
  std::vector<Value> out;
  for (Value v : a) {
    if (std::find(b.begin(), b.end(), v) != b.end()) out.push_back(v);
  }
  return out;
}

}  // namespace

CellId SymbolicInstance::NewCell(const Domain* domain) {
  CellId id = static_cast<CellId>(parent_.size());
  parent_.push_back(id);
  rank_.push_back(0);
  const_of_.push_back(kNoValue);
  if (domain != nullptr && domain->finite()) {
    finite_.emplace_back(domain->values());
    if (domain->values().empty()) contradiction_ = true;
  } else {
    finite_.emplace_back(std::nullopt);
  }
  return id;
}

CellId SymbolicInstance::NewConstCell(Value v, const Domain* domain) {
  CellId id = NewCell(domain);
  BindConst(id, v);
  return id;
}

size_t SymbolicInstance::AddRow(RelationId relation,
                                std::vector<CellId> cells) {
  rows_.push_back(Row{relation, std::move(cells)});
  return rows_.size() - 1;
}

CellId SymbolicInstance::Find(CellId c) {
  assert(c < parent_.size());
  while (parent_[c] != c) {
    parent_[c] = parent_[parent_[c]];
    c = parent_[c];
  }
  return c;
}

bool SymbolicInstance::Union(CellId a, CellId b) {
  CellId ra = Find(a);
  CellId rb = Find(b);
  if (ra == rb) return true;
  ++version_;

  // Merge constants.
  Value cv = const_of_[ra];
  if (const_of_[rb] != kNoValue) {
    if (cv != kNoValue && cv != const_of_[rb]) {
      contradiction_ = true;
      return false;
    }
    cv = const_of_[rb];
  }

  // Merge finite domains by intersection.
  std::optional<std::vector<Value>> dom;
  if (finite_[ra].has_value() && finite_[rb].has_value()) {
    dom = Intersect(*finite_[ra], *finite_[rb]);
  } else if (finite_[ra].has_value()) {
    dom = std::move(finite_[ra]);
  } else if (finite_[rb].has_value()) {
    dom = std::move(finite_[rb]);
  }

  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  const_of_[ra] = cv;
  finite_[ra] = std::move(dom);

  if (finite_[ra].has_value()) {
    if (cv != kNoValue) {
      // Bound constant must lie in the (possibly narrowed) domain.
      if (std::find(finite_[ra]->begin(), finite_[ra]->end(), cv) ==
          finite_[ra]->end()) {
        contradiction_ = true;
        return false;
      }
    } else if (finite_[ra]->empty()) {
      contradiction_ = true;
      return false;
    }
  }
  return true;
}

bool SymbolicInstance::BindConst(CellId c, Value v) {
  CellId r = Find(c);
  if (const_of_[r] != kNoValue) {
    if (const_of_[r] == v) return true;
    contradiction_ = true;
    return false;
  }
  ++version_;
  if (finite_[r].has_value() &&
      std::find(finite_[r]->begin(), finite_[r]->end(), v) ==
          finite_[r]->end()) {
    contradiction_ = true;
    return false;
  }
  const_of_[r] = v;
  return true;
}

std::optional<Value> SymbolicInstance::ConstOf(CellId c) {
  Value v = const_of_[Find(c)];
  if (v == kNoValue) return std::nullopt;
  return v;
}

bool SymbolicInstance::EqualCells(CellId a, CellId b) {
  CellId ra = Find(a);
  CellId rb = Find(b);
  if (ra == rb) return true;
  return const_of_[ra] != kNoValue && const_of_[ra] == const_of_[rb];
}

const std::optional<std::vector<Value>>& SymbolicInstance::FiniteDomainOf(
    CellId c) {
  return finite_[Find(c)];
}

std::vector<CellId> SymbolicInstance::UnboundFiniteCells() {
  std::vector<CellId> out;
  for (CellId c = 0; c < parent_.size(); ++c) {
    if (Find(c) != c) continue;
    if (const_of_[c] == kNoValue && finite_[c].has_value()) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace cfdprop
