#include "src/chase/chase.h"

namespace cfdprop {

namespace {

/// Does the row's cell at `attr` match pattern `p`?  '_' matches
/// everything; a constant matches only a cell bound to that constant.
bool CellMatches(SymbolicInstance& inst, const SymbolicInstance::Row& row,
                 AttrIndex attr, const PatternValue& p) {
  if (p.is_wildcard()) return true;
  auto c = inst.ConstOf(row.cells[attr]);
  return c.has_value() && p.is_constant() && *c == p.value();
}

/// Single-tuple application of a normal-form CFD.
void ApplySingle(SymbolicInstance& inst, const CFD& cfd,
                 const SymbolicInstance::Row& row) {
  for (size_t i = 0; i < cfd.lhs.size(); ++i) {
    if (!CellMatches(inst, row, cfd.lhs[i], cfd.lhs_pats[i])) return;
  }
  if (cfd.rhs_pat.is_constant()) {
    inst.BindConst(row.cells[cfd.rhs], cfd.rhs_pat.value());
  }
}

/// Pair application of a normal-form CFD.
void ApplyPair(SymbolicInstance& inst, const CFD& cfd,
               const SymbolicInstance::Row& r1,
               const SymbolicInstance::Row& r2) {
  for (size_t i = 0; i < cfd.lhs.size(); ++i) {
    AttrIndex a = cfd.lhs[i];
    if (!inst.EqualCells(r1.cells[a], r2.cells[a])) return;
    if (!CellMatches(inst, r1, a, cfd.lhs_pats[i])) return;
  }
  if (!inst.Union(r1.cells[cfd.rhs], r2.cells[cfd.rhs])) return;
  if (cfd.rhs_pat.is_constant()) {
    inst.BindConst(r1.cells[cfd.rhs], cfd.rhs_pat.value());
  }
}

}  // namespace

Result<ChaseOutcome> Chase(SymbolicInstance& inst,
                           const std::vector<CFD>& sigma,
                           const ChaseOptions& options) {
  uint64_t passes = 0;
  uint64_t last_version = UINT64_MAX;
  while (!inst.contradiction() && inst.version() != last_version) {
    last_version = inst.version();
    if (++passes > options.max_passes) {
      return Status::Internal("chase exceeded max_passes; likely a bug");
    }
    for (const CFD& cfd : sigma) {
      if (inst.contradiction()) break;
      if (cfd.is_special_x()) {
        // Equality rule: every row must have cell[A] = cell[B].
        for (size_t i = 0; i < inst.num_rows(); ++i) {
          const auto& row = inst.row(i);
          if (row.relation != cfd.relation) continue;
          inst.Union(row.cells[cfd.lhs[0]], row.cells[cfd.rhs]);
          if (inst.contradiction()) break;
        }
        continue;
      }
      for (size_t i = 0; i < inst.num_rows() && !inst.contradiction(); ++i) {
        const auto& r1 = inst.row(i);
        if (r1.relation != cfd.relation) continue;
        ApplySingle(inst, cfd, r1);
        for (size_t j = i + 1;
             j < inst.num_rows() && !inst.contradiction(); ++j) {
          const auto& r2 = inst.row(j);
          if (r2.relation != cfd.relation) continue;
          ApplyPair(inst, cfd, r1, r2);
        }
      }
    }
  }
  return inst.contradiction() ? ChaseOutcome::kContradiction
                              : ChaseOutcome::kFixpoint;
}

namespace {

/// Recursive worker for ExistsChaseBranch. Returns true when a
/// satisfying leaf was found; `nodes` tracks the budget.
Result<bool> BranchSearch(
    SymbolicInstance inst, const std::vector<CFD>& sigma,
    const std::function<bool(SymbolicInstance&)>& leaf_predicate,
    uint64_t max_nodes, uint64_t* nodes) {
  if (++*nodes > max_nodes) {
    return Status::ResourceExhausted(
        "branch-and-prune node budget exceeded");
  }
  CFDPROP_ASSIGN_OR_RETURN(ChaseOutcome outcome, Chase(inst, sigma));
  if (outcome == ChaseOutcome::kContradiction) return false;  // closed

  // Branch on one unbound finite cell; prefer the smallest domain
  // (fail-first heuristic).
  std::vector<CellId> cells = inst.UnboundFiniteCells();
  if (cells.empty()) {
    return leaf_predicate(inst);
  }
  CellId pick = cells.front();
  size_t best = SIZE_MAX;
  for (CellId c : cells) {
    const auto& dom = inst.FiniteDomainOf(c);
    if (dom->size() < best) {
      best = dom->size();
      pick = c;
    }
  }
  // Copy the domain: binding mutates the instance.
  std::vector<Value> values = *inst.FiniteDomainOf(pick);
  for (Value v : values) {
    SymbolicInstance fork = inst;
    fork.BindConst(pick, v);
    CFDPROP_ASSIGN_OR_RETURN(
        bool found,
        BranchSearch(std::move(fork), sigma, leaf_predicate, max_nodes,
                     nodes));
    if (found) return true;
  }
  return false;
}

}  // namespace

Result<bool> ExistsChaseBranch(
    const SymbolicInstance& base, const std::vector<CFD>& sigma,
    const std::function<bool(SymbolicInstance&)>& leaf_predicate,
    const InstantiationOptions& options) {
  uint64_t nodes = 0;
  return BranchSearch(base, sigma, leaf_predicate,
                      options.max_instantiations, &nodes);
}

Result<bool> ForEachFiniteInstantiation(
    const SymbolicInstance& base,
    const std::function<bool(SymbolicInstance&)>& callback,
    const InstantiationOptions& options) {
  SymbolicInstance probe = base;  // Find() mutates (path compression)
  std::vector<CellId> cells = probe.UnboundFiniteCells();

  if (cells.empty()) {
    SymbolicInstance fork = base;
    return !callback(fork);
  }

  // Domain sizes and running budget check: the product of domain sizes is
  // the number of assignments.
  std::vector<std::vector<Value>> domains;
  domains.reserve(cells.size());
  uint64_t total = 1;
  for (CellId c : cells) {
    const auto& dom = probe.FiniteDomainOf(c);
    // UnboundFiniteCells only returns finite-domain cells.
    domains.push_back(*dom);
    if (total > options.max_instantiations / domains.back().size() + 1) {
      return Status::ResourceExhausted(
          "finite-domain instantiation budget exceeded");
    }
    total *= domains.back().size();
  }
  if (total > options.max_instantiations) {
    return Status::ResourceExhausted(
        "finite-domain instantiation budget exceeded");
  }

  // Odometer over the assignment space.
  std::vector<size_t> pick(cells.size(), 0);
  while (true) {
    SymbolicInstance fork = base;
    for (size_t i = 0; i < cells.size(); ++i) {
      fork.BindConst(cells[i], domains[i][pick[i]]);
    }
    if (!callback(fork)) return true;

    size_t i = 0;
    for (; i < pick.size(); ++i) {
      if (++pick[i] < domains[i].size()) break;
      pick[i] = 0;
    }
    if (i == pick.size()) break;
  }
  return false;
}

}  // namespace cfdprop
