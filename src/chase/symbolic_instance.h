// Symbolic instances: the tableaux the chase runs on.
//
// A symbolic instance is a bag of rows over source relations (or over a
// single abstract relation, for implication tests). Each row entry is a
// *cell*; a union-find over cells tracks equalities forced so far, and
// each equivalence class may be bound to a constant. Merging two classes
// bound to distinct constants makes the instance *contradictory* — the
// "undefined chase" of the paper's appendix, meaning no concrete instance
// refines this symbolic one.
//
// Cells carry the (possibly finite) domain of their attribute so the
// general-setting procedures can enumerate instantiations of
// finite-domain variables (proofs of Theorems 3.2/3.3/3.7).

#ifndef CFDPROP_CHASE_SYMBOLIC_INSTANCE_H_
#define CFDPROP_CHASE_SYMBOLIC_INSTANCE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/value.h"
#include "src/schema/domain.h"
#include "src/schema/schema.h"

namespace cfdprop {

using CellId = uint32_t;
inline constexpr CellId kNoCell = UINT32_MAX;

/// A bag of symbolic rows with a union-find over their cells.
/// Copyable: the finite-domain enumerators fork instances per assignment.
class SymbolicInstance {
 public:
  struct Row {
    RelationId relation;
    std::vector<CellId> cells;
  };

  SymbolicInstance() = default;

  /// Creates a fresh variable cell. `domain` may be null (infinite).
  CellId NewCell(const Domain* domain = nullptr);

  /// Creates a cell bound to constant `v`.
  CellId NewConstCell(Value v, const Domain* domain = nullptr);

  /// Appends a row; returns its index. Cells must exist.
  size_t AddRow(RelationId relation, std::vector<CellId> cells);

  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  size_t num_cells() const { return parent_.size(); }

  /// Union-find root (path compression).
  CellId Find(CellId c);

  /// Merges the classes of a and b. On conflicting constants, marks the
  /// instance contradictory and returns false.
  bool Union(CellId a, CellId b);

  /// Binds the class of c to constant v. On conflict (already bound to a
  /// different constant, or v outside the class's finite domain), marks
  /// the instance contradictory and returns false.
  bool BindConst(CellId c, Value v);

  /// The constant bound to c's class, if any.
  std::optional<Value> ConstOf(CellId c);

  /// True when the two cells are known equal: same class, or both bound
  /// to the same constant.
  bool EqualCells(CellId a, CellId b);

  /// The effective finite domain of c's class (intersection over merged
  /// cells); nullopt = infinite.
  const std::optional<std::vector<Value>>& FiniteDomainOf(CellId c);

  /// True once any merge/bind conflicted; a contradictory instance
  /// refines to no concrete instance.
  bool contradiction() const { return contradiction_; }
  void MarkContradiction() { contradiction_ = true; }

  /// Monotone counter bumped by every effective Union/BindConst; the
  /// chase uses it to detect its fixpoint.
  uint64_t version() const { return version_; }

  /// Root cells that are unbound variables with a finite domain — the
  /// cells the general-setting procedures must instantiate.
  std::vector<CellId> UnboundFiniteCells();

 private:
  std::vector<CellId> parent_;
  std::vector<uint32_t> rank_;
  // Per-root metadata (valid only at roots).
  std::vector<Value> const_of_;                             // kNoValue = none
  std::vector<std::optional<std::vector<Value>>> finite_;   // nullopt = inf

  std::vector<Row> rows_;
  bool contradiction_ = false;
  uint64_t version_ = 0;
};

}  // namespace cfdprop

#endif  // CFDPROP_CHASE_SYMBOLIC_INSTANCE_H_
