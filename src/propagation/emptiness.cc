#include "src/propagation/emptiness.h"

#include "src/tableau/tableau.h"

namespace cfdprop {

namespace {

/// Can this disjunct produce a tuple under some Sigma-satisfying source?
Result<bool> DisjunctNonEmpty(const Catalog& catalog, const SPCView& view,
                              const std::vector<CFD>& sigma,
                              const EmptinessOptions& options) {
  SymbolicInstance base;
  CFDPROP_ASSIGN_OR_RETURN(ViewTableau t,
                           BuildViewTableau(catalog, view, base));
  (void)t;

  if (!options.general_setting) {
    CFDPROP_ASSIGN_OR_RETURN(ChaseOutcome outcome, Chase(base, sigma));
    return outcome == ChaseOutcome::kFixpoint;
  }

  // Non-empty iff the branch-and-prune search reaches any
  // contradiction-free leaf (a witness instantiation).
  return ExistsChaseBranch(
      base, sigma, [](SymbolicInstance&) { return true; },
      options.instantiation);
}

}  // namespace

Result<bool> IsAlwaysEmpty(const Catalog& catalog, const SPCUView& view,
                           const std::vector<CFD>& sigma,
                           const EmptinessOptions& options) {
  CFDPROP_RETURN_NOT_OK(view.Validate(catalog));
  for (const CFD& c : sigma) {
    if (c.relation >= catalog.num_relations()) {
      return Status::InvalidArgument("source CFD with unknown relation");
    }
    CFDPROP_RETURN_NOT_OK(c.Validate(catalog.relation(c.relation).arity()));
  }
  for (const SPCView& disjunct : view.disjuncts) {
    CFDPROP_ASSIGN_OR_RETURN(
        bool nonempty, DisjunctNonEmpty(catalog, disjunct, sigma, options));
    if (nonempty) return false;
  }
  return true;
}

Result<bool> IsAlwaysEmpty(const Catalog& catalog, const SPCView& view,
                           const std::vector<CFD>& sigma,
                           const EmptinessOptions& options) {
  return IsAlwaysEmpty(catalog, SPCUView(view), sigma, options);
}

}  // namespace cfdprop
