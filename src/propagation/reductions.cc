#include "src/propagation/reductions.h"

#include <string>

namespace cfdprop {

namespace {

/// The truth value literal `lit` needs its variable to take for the
/// clause to be satisfied through it: "1" for a positive literal, "0"
/// for a negated one.
const char* RequiredValue(const ThreeSat::Literal& lit) {
  return lit.negated ? "0" : "1";
}

}  // namespace

Result<Theorem32Instance> BuildTheorem32Reduction(const ThreeSat& formula) {
  if (formula.num_vars == 0 || formula.clauses.empty()) {
    return Status::InvalidArgument("formula needs variables and clauses");
  }
  for (const auto& clause : formula.clauses) {
    for (const auto& lit : clause) {
      if (lit.var == 0 || lit.var > formula.num_vars) {
        return Status::InvalidArgument("literal variable out of range");
      }
    }
  }

  Theorem32Instance out;
  Catalog& cat = out.catalog;

  // R0(X, A, Z): A and Z boolean, X infinite (variable indices).
  {
    std::vector<Attribute> attrs;
    attrs.push_back(Attribute{"X", Domain::Infinite("int")});
    attrs.push_back(Attribute{"A", Domain::Boolean(cat.pool())});
    attrs.push_back(Attribute{"Z", Domain::Boolean(cat.pool())});
    CFDPROP_ASSIGN_OR_RETURN(RelationId r0,
                             cat.AddRelation("R0", std::move(attrs)));
    // phi0 = R0(X -> A): assignments are functional.
    CFDPROP_ASSIGN_OR_RETURN(CFD phi0, CFD::FD(r0, {0}, 1));
    out.sigma.push_back(std::move(phi0));
  }

  // Ri(A1, A2, Xi, Ai) per clause.
  for (size_t i = 0; i < formula.clauses.size(); ++i) {
    std::vector<Attribute> attrs;
    attrs.push_back(Attribute{"A1", Domain::Boolean(cat.pool())});
    attrs.push_back(Attribute{"A2", Domain::Boolean(cat.pool())});
    attrs.push_back(Attribute{"Xi", Domain::Infinite("int")});
    attrs.push_back(Attribute{"Ai", Domain::Boolean(cat.pool())});
    CFDPROP_ASSIGN_OR_RETURN(
        RelationId ri,
        cat.AddRelation("R" + std::to_string(i + 1), std::move(attrs)));
    // phi_i1 = Ri(A1 A2 -> Xi Ai) in normal form, phi_i2 = Ri(Xi -> Ai).
    CFDPROP_ASSIGN_OR_RETURN(CFD k1, CFD::FD(ri, {0, 1}, 2));
    CFDPROP_ASSIGN_OR_RETURN(CFD k2, CFD::FD(ri, {0, 1}, 3));
    CFDPROP_ASSIGN_OR_RETURN(CFD k3, CFD::FD(ri, {2}, 3));
    out.sigma.push_back(std::move(k1));
    out.sigma.push_back(std::move(k2));
    out.sigma.push_back(std::move(k3));
  }

  // The SC view e x e01 x e02 x e1 x ... x en (project-all).
  SPCViewBuilder b(cat);
  RelationId r0 = cat.FindRelation("R0");

  // e: one free R0 atom — its X, A, Z become output columns 0, 1, 2.
  b.AddAtom(r0);

  // e01: sigma_{X=j}(R0) for j = 1..m, so every variable has a row.
  for (uint32_t j = 1; j <= formula.num_vars; ++j) {
    size_t atom = b.AddAtom(r0);
    CFDPROP_RETURN_NOT_OK(b.SelectConst(atom, "X", std::to_string(j)));
  }

  // e02 and ei per clause.
  for (size_t i = 0; i < formula.clauses.size(); ++i) {
    RelationId ri = cat.FindRelation("R" + std::to_string(i + 1));
    // e02: sigma_{R0.X = Ri.Xi and R0.A = Ri.Ai}(R0 x Ri) — the clause's
    // chosen variable and its truth value must be consistent with the
    // assignment rows.
    size_t a0 = b.AddAtom(r0);
    size_t ai = b.AddAtom(ri);
    CFDPROP_RETURN_NOT_OK(b.SelectEq(a0, "X", ai, "Xi"));
    CFDPROP_RETURN_NOT_OK(b.SelectEq(a0, "A", ai, "Ai"));

    // ei: four pinned Ri rows enumerating the satisfying literal
    // choices (the (1,1) row repeats literal 1, as in the proof).
    const auto& clause = formula.clauses[i];
    const ThreeSat::Literal picks[4] = {clause[0], clause[1], clause[2],
                                        clause[0]};
    const char* a1a2[4][2] = {{"0", "0"}, {"0", "1"}, {"1", "0"},
                              {"1", "1"}};
    for (int k = 0; k < 4; ++k) {
      size_t atom = b.AddAtom(ri);
      CFDPROP_RETURN_NOT_OK(b.SelectConst(atom, "A1", a1a2[k][0]));
      CFDPROP_RETURN_NOT_OK(b.SelectConst(atom, "A2", a1a2[k][1]));
      CFDPROP_RETURN_NOT_OK(
          b.SelectConst(atom, "Xi", std::to_string(picks[k].var)));
      CFDPROP_RETURN_NOT_OK(
          b.SelectConst(atom, "Ai", RequiredValue(picks[k])));
    }
  }
  CFDPROP_ASSIGN_OR_RETURN(out.view, b.Build());

  // psi = V(X, A -> Z) over the e columns (outputs 0, 1, 2).
  CFDPROP_ASSIGN_OR_RETURN(out.psi, CFD::FD(kViewSchemaId, {0, 1}, 2));
  return out;
}

bool BruteForceSatisfiable(const ThreeSat& formula) {
  for (uint64_t assignment = 0; assignment < (1ull << formula.num_vars);
       ++assignment) {
    bool all = true;
    for (const auto& clause : formula.clauses) {
      bool sat = false;
      for (const auto& lit : clause) {
        bool value = (assignment >> (lit.var - 1)) & 1;
        if (value != lit.negated) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

}  // namespace cfdprop
