#include "src/propagation/propagation.h"

#include "src/tableau/tableau.h"

namespace cfdprop {

namespace {

/// Checks one chased fork of a two-copy instance against phi's RHS.
/// `t1`/`t2` are the two summary rows.
Result<bool> PairPasses(SymbolicInstance& fork, const std::vector<CFD>& sigma,
                        const CFD& phi, const std::vector<CellId>& t1,
                        const std::vector<CellId>& t2) {
  CFDPROP_ASSIGN_OR_RETURN(ChaseOutcome outcome, Chase(fork, sigma));
  if (outcome == ChaseOutcome::kContradiction) {
    return true;  // no Sigma-satisfying source produces this pair
  }
  if (phi.is_special_x()) {
    return fork.EqualCells(t1[phi.lhs[0]], t1[phi.rhs]);
  }
  if (!fork.EqualCells(t1[phi.rhs], t2[phi.rhs])) return false;
  if (phi.rhs_pat.is_constant()) {
    auto c = fork.ConstOf(t1[phi.rhs]);
    if (!c.has_value() || *c != phi.rhs_pat.value()) return false;
  }
  return true;
}

/// Does a chased, fully-instantiated leaf violate phi's RHS condition?
bool LeafViolates(SymbolicInstance& leaf, const CFD& phi,
                  const std::vector<CellId>& t1,
                  const std::vector<CellId>& t2) {
  if (phi.is_special_x()) {
    return !leaf.EqualCells(t1[phi.lhs[0]], t1[phi.rhs]);
  }
  if (!leaf.EqualCells(t1[phi.rhs], t2[phi.rhs])) return true;
  if (phi.rhs_pat.is_constant()) {
    auto c = leaf.ConstOf(t1[phi.rhs]);
    if (!c.has_value() || *c != phi.rhs_pat.value()) return true;
  }
  return false;
}

/// Runs the pass/fail check over the finite-domain instantiation space
/// (branch-and-prune in the general setting, a single chase otherwise).
/// Returns true iff no instantiation violates phi.
Result<bool> AllInstantiationsPass(const SymbolicInstance& base,
                                   const std::vector<CFD>& sigma,
                                   const CFD& phi,
                                   const std::vector<CellId>& t1,
                                   const std::vector<CellId>& t2,
                                   const PropagationOptions& options) {
  if (!options.general_setting) {
    SymbolicInstance fork = base;
    return PairPasses(fork, sigma, phi, t1, t2);
  }
  CFDPROP_ASSIGN_OR_RETURN(
      bool counterexample,
      ExistsChaseBranch(
          base, sigma,
          [&](SymbolicInstance& leaf) {
            return LeafViolates(leaf, phi, t1, t2);
          },
          options.instantiation));
  return !counterexample;
}

/// The single-copy check for special-x phi (A = B on the view): every
/// view tuple of every disjunct must have equal A/B cells.
Result<bool> CheckEqualityCFD(const Catalog& catalog, const SPCUView& view,
                              const std::vector<CFD>& sigma, const CFD& phi,
                              const PropagationOptions& options) {
  for (const SPCView& disjunct : view.disjuncts) {
    SymbolicInstance base;
    CFDPROP_ASSIGN_OR_RETURN(ViewTableau t,
                             BuildViewTableau(catalog, disjunct, base));
    CFDPROP_ASSIGN_OR_RETURN(
        bool pass, AllInstantiationsPass(base, sigma, phi, t.summary,
                                         t.summary, options));
    if (!pass) return false;
  }
  return true;
}

}  // namespace

PropagationOptions AutoOptions(const Catalog& catalog, const SPCUView& view) {
  PropagationOptions options;
  for (const SPCView& v : view.disjuncts) {
    for (RelationId r : v.atoms) {
      if (catalog.relation(r).HasFiniteDomainAttr()) {
        options.general_setting = true;
        return options;
      }
    }
  }
  return options;
}

Result<bool> IsPropagated(const Catalog& catalog, const SPCUView& view,
                          const std::vector<CFD>& sigma, const CFD& phi,
                          const PropagationOptions& options) {
  CFDPROP_RETURN_NOT_OK(view.Validate(catalog));
  CFDPROP_RETURN_NOT_OK(phi.Validate(view.OutputArity()));
  if (phi.relation != kViewSchemaId) {
    return Status::InvalidArgument("phi must be a view CFD (kViewSchemaId)");
  }
  for (const CFD& c : sigma) {
    if (c.relation >= catalog.num_relations()) {
      return Status::InvalidArgument("source CFD with unknown relation");
    }
    CFDPROP_RETURN_NOT_OK(
        c.Validate(catalog.relation(c.relation).arity()));
  }

  if (phi.is_special_x()) {
    return CheckEqualityCFD(catalog, view, sigma, phi, options);
  }

  // All k^2 ordered disjunct combinations (t1 from e_i, t2 from e_j);
  // (i, j) and (j, i) are symmetric, so i <= j suffices.
  const size_t k = view.disjuncts.size();
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i; j < k; ++j) {
      SymbolicInstance base;
      CFDPROP_ASSIGN_OR_RETURN(
          ViewTableau ti, BuildViewTableau(catalog, view.disjuncts[i], base));
      CFDPROP_ASSIGN_OR_RETURN(
          ViewTableau tj, BuildViewTableau(catalog, view.disjuncts[j], base));

      // rho1/rho2: identify the copies on phi's LHS and bind pattern
      // constants. Conflicts mark the instance contradictory, which
      // PairPasses reads as "pair impossible".
      for (size_t l = 0; l < phi.lhs.size(); ++l) {
        AttrIndex a = phi.lhs[l];
        base.Union(ti.summary[a], tj.summary[a]);
        if (phi.lhs_pats[l].is_constant()) {
          base.BindConst(ti.summary[a], phi.lhs_pats[l].value());
        }
      }

      CFDPROP_ASSIGN_OR_RETURN(
          bool pass, AllInstantiationsPass(base, sigma, phi, ti.summary,
                                           tj.summary, options));
      if (!pass) return false;
    }
  }
  return true;
}

Result<bool> IsPropagated(const Catalog& catalog, const SPCView& view,
                          const std::vector<CFD>& sigma, const CFD& phi,
                          const PropagationOptions& options) {
  return IsPropagated(catalog, SPCUView(view), sigma, phi, options);
}

}  // namespace cfdprop
