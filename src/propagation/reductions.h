// The Theorem 3.2 reduction: 3SAT to the complement of FD propagation
// through SC views, in the general setting (appendix, proof of
// Theorem 3.2). This is the construction that makes the propagation
// problem coNP-hard once finite-domain attributes exist; we implement it
// both as executable evidence for Table 1/2 and as a stress test for the
// general-setting decision procedure.
//
// Given phi = C1 and ... and Cn over variables x1..xm (each clause three
// literals), the reduction builds:
//
//   * R0(X, A, Z) with dom(A) = dom(Z) = {0,1} and the FD X -> A: a
//     tuple (j, a, z) encodes "variable x_j is assigned a"; the FD makes
//     assignments functional;
//   * Ri(A1, A2, Xi, Ai) per clause with FDs (A1 A2 -> Xi Ai) and
//     (Xi -> Ai): the four (A1, A2) combinations enumerate the (three)
//     satisfying literal choices of clause Ci;
//   * the SC view V = e x e01 x e02 x e1 x ... x en where e = R0,
//     e01 forces rows X=1..X=m to exist, e02 joins each clause's chosen
//     variable/assignment back to R0, and each ei pins Ri's four rows to
//     the literals of Ci;
//   * psi = V(X, A -> Z) over the columns of e.
//
// Then phi is satisfiable iff Sigma does NOT propagate psi via V: a
// satisfying assignment lets the view contain two tuples that agree on
// (X, A) but differ on Z.

#ifndef CFDPROP_PROPAGATION_REDUCTIONS_H_
#define CFDPROP_PROPAGATION_REDUCTIONS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/algebra/view.h"
#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/schema/schema.h"

namespace cfdprop {

/// A 3SAT instance. Variables are 1-based; a literal is a variable index
/// plus a negation flag.
struct ThreeSat {
  struct Literal {
    uint32_t var;  // 1..num_vars
    bool negated;
  };
  uint32_t num_vars = 0;
  std::vector<std::array<Literal, 3>> clauses;
};

/// The reduction output: decide propagation of `psi` from `sigma` via
/// `view` (general setting) to decide satisfiability of the formula.
struct Theorem32Instance {
  Catalog catalog;
  SPCView view;
  std::vector<CFD> sigma;
  CFD psi;
};

/// Builds the Theorem 3.2 instance for `formula`.
Result<Theorem32Instance> BuildTheorem32Reduction(const ThreeSat& formula);

/// Reference oracle: brute-force satisfiability over the 2^num_vars
/// assignments (for validating the reduction on small formulas).
bool BruteForceSatisfiable(const ThreeSat& formula);

}  // namespace cfdprop

#endif  // CFDPROP_PROPAGATION_REDUCTIONS_H_
