// The dependency propagation problem (Section 3).
//
// Sigma |=_V phi: for every source instance D with D |= Sigma, the view
// V(D) satisfies phi. Decided by the chase of Theorem 3.1's proof:
//
//   * build the tableaux of two (possibly identical) SPC disjuncts e_i,
//     e_j of V into one symbolic instance — the rho1/rho2 copies;
//   * identify the two summary tuples t1, t2 on phi's LHS columns and
//     bind phi's LHS pattern constants (an "undefined rho" — a constant
//     clash — means the pair is impossible and the combination passes);
//   * chase with Sigma; a contradiction again means the pair is
//     impossible; otherwise phi is propagated for this combination iff
//     the chase forced t1[B] = t2[B] (and = tp[B] when constant);
//   * an SPCU view requires all k^2 disjunct combinations to pass.
//
// Infinite-domain setting: one chase per combination => PTIME
// (Theorems 3.1/3.5). General setting: finite-domain variables of the
// instance are instantiated exhaustively => coNP (Theorems 3.2/3.3,
// Corollary 3.6); the instantiation budget guards the exponential.

#ifndef CFDPROP_PROPAGATION_PROPAGATION_H_
#define CFDPROP_PROPAGATION_PROPAGATION_H_

#include <vector>

#include "src/algebra/view.h"
#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/chase/chase.h"
#include "src/schema/schema.h"

namespace cfdprop {

struct PropagationOptions {
  /// Instantiate finite-domain variables (the general setting). When
  /// false, every variable is treated as infinite-domain — the classical
  /// setting, and the only sound choice when the schema genuinely has no
  /// finite-domain attributes.
  bool general_setting = false;
  InstantiationOptions instantiation;
};

/// Picks general_setting automatically: true iff some attribute of a
/// relation used by `view` has a finite domain.
PropagationOptions AutoOptions(const Catalog& catalog, const SPCUView& view);

/// Decides Sigma |=_V phi. `sigma` holds CFDs tagged with source relation
/// ids; `phi` is a view CFD tagged kViewSchemaId whose attribute indices
/// are output column positions of `view`.
Result<bool> IsPropagated(const Catalog& catalog, const SPCUView& view,
                          const std::vector<CFD>& sigma, const CFD& phi,
                          const PropagationOptions& options = {});

/// Convenience overload for single-disjunct (SPC) views.
Result<bool> IsPropagated(const Catalog& catalog, const SPCView& view,
                          const std::vector<CFD>& sigma, const CFD& phi,
                          const PropagationOptions& options = {});

}  // namespace cfdprop

#endif  // CFDPROP_PROPAGATION_PROPAGATION_H_
