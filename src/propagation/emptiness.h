// The emptiness problem for CFDs and views (Section 3.3).
//
// Given a view V over R and source CFDs Sigma, is V(D) empty for *every*
// instance D |= Sigma? (Example 3.1: a CFD forcing B = b1 on all source
// tuples plus a selection B = b2 makes the view unconditionally empty —
// and then every view CFD is vacuously propagated.)
//
// Decided by chasing each disjunct's tableau with Sigma: an undefined
// (contradictory) chase means the disjunct yields no tuple; otherwise
// the fixpoint instantiates to a witness source producing a view tuple.
// PTIME without finite-domain attributes (Theorem 3.8); with them the
// non-emptiness test instantiates finite-domain variables, NP overall
// (Theorem 3.7).

#ifndef CFDPROP_PROPAGATION_EMPTINESS_H_
#define CFDPROP_PROPAGATION_EMPTINESS_H_

#include <vector>

#include "src/algebra/view.h"
#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/chase/chase.h"
#include "src/schema/schema.h"

namespace cfdprop {

struct EmptinessOptions {
  /// Instantiate finite-domain variables (general setting, Theorem 3.7).
  bool general_setting = false;
  InstantiationOptions instantiation;
};

/// True iff V(D) is empty for every D |= sigma.
Result<bool> IsAlwaysEmpty(const Catalog& catalog, const SPCUView& view,
                           const std::vector<CFD>& sigma,
                           const EmptinessOptions& options = {});

/// Convenience overload for SPC views.
Result<bool> IsAlwaysEmpty(const Catalog& catalog, const SPCView& view,
                           const std::vector<CFD>& sigma,
                           const EmptinessOptions& options = {});

}  // namespace cfdprop

#endif  // CFDPROP_PROPAGATION_EMPTINESS_H_
