// Deterministic pseudo-random number generation for the workload
// generators (src/gen). A small xoshiro256** implementation so generated
// workloads are reproducible across platforms and standard-library
// versions (std::mt19937 distributions are not portable).

#ifndef CFDPROP_BASE_RNG_H_
#define CFDPROP_BASE_RNG_H_

#include <cstdint>

namespace cfdprop {

/// xoshiro256** PRNG with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t Below(uint64_t n) { return Uniform(0, n - 1); }

  /// Bernoulli draw: true with probability pct/100.
  bool Percent(uint32_t pct) { return Uniform(1, 100) <= pct; }

 private:
  uint64_t s_[4];
};

}  // namespace cfdprop

#endif  // CFDPROP_BASE_RNG_H_
