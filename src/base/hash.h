// Shared non-cryptographic hash primitives.
//
// One definition for the FNV-1a streaming hasher and the SplitMix64
// mixer used by the engine's request fingerprints (src/engine/
// fingerprint.cc) and the snapshot checksum / sigma-set fingerprint
// (src/engine/snapshot.cc). Both outputs are persisted contracts — the
// cover-cache wire format stores them — so there must be exactly one
// implementation to diverge from.

#ifndef CFDPROP_BASE_HASH_H_
#define CFDPROP_BASE_HASH_H_

#include <cstdint>
#include <string_view>

namespace cfdprop {

/// FNV-1a, 64 bit. Mix(string) is length-prefixed so concatenated
/// fields cannot alias ("ab","c" hashes differently from "a","bc").
class Fnv1aHasher {
 public:
  void MixByte(uint8_t b) {
    h_ ^= b;
    h_ *= 1099511628211ull;
  }
  void Mix(uint64_t x) {
    for (int i = 0; i < 8; ++i) MixByte(static_cast<uint8_t>(x >> (8 * i)));
  }
  void Mix(std::string_view s) {
    Mix(static_cast<uint64_t>(s.size()));
    for (char c : s) MixByte(static_cast<uint8_t>(c));
  }
  uint64_t digest() const { return h_; }

 private:
  uint64_t h_ = 14695981039346656037ull;
};

inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace cfdprop

#endif  // CFDPROP_BASE_HASH_H_
