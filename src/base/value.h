// Interned constant values.
//
// Every constant appearing in data, pattern tuples, selection conditions or
// domains is interned once in a ValuePool and referred to by a 32-bit Value
// id afterwards. Value equality is id equality, which keeps the inner loops
// of the chase and of RBR free of string comparisons.

#ifndef CFDPROP_BASE_VALUE_H_
#define CFDPROP_BASE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cfdprop {

/// An interned constant. Valid ids are indices into the owning ValuePool.
using Value = uint32_t;

/// Sentinel for "no value".
inline constexpr Value kNoValue = UINT32_MAX;

/// An append-only intern table mapping strings <-> Value ids.
///
/// A ValuePool is owned by a Catalog (see src/schema/schema.h); all objects
/// derived from one catalog share its pool, so their Values are comparable.
/// Not thread-safe for concurrent interning.
class ValuePool {
 public:
  ValuePool() = default;

  // Movable but not copyable: Values are indices into this specific pool.
  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;
  ValuePool(ValuePool&&) = default;
  ValuePool& operator=(ValuePool&&) = default;

  /// Interns `text`, returning its id (existing id if already present).
  Value Intern(std::string_view text);

  /// Convenience: interns the decimal representation of `n`.
  Value InternInt(int64_t n) { return Intern(std::to_string(n)); }

  /// Looks up an id without interning; kNoValue when absent.
  Value Find(std::string_view text) const;

  /// The text of an interned value. Precondition: v < size().
  /// Snapshotting (src/engine/snapshot.h) exports constants through
  /// this, text by text; the import side is Intern, which remaps
  /// process-local ids on restore.
  const std::string& Text(Value v) const { return texts_[v]; }

  size_t size() const { return texts_.size(); }

 private:
  std::vector<std::string> texts_;
  std::unordered_map<std::string, Value> index_;
};

}  // namespace cfdprop

#endif  // CFDPROP_BASE_VALUE_H_
