#include "src/base/rng.h"

namespace cfdprop {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  for (auto& s : s_) s = SplitMix64(seed);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t lo, uint64_t hi) {
  const uint64_t span = hi - lo + 1;
  if (span == 0) return Next();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + v % span;
}

}  // namespace cfdprop
