// Status / Result<T>: lightweight error propagation in the style of
// Arrow/RocksDB. Library code returns Status (or Result<T>) instead of
// throwing; exceptions are reserved for programming errors (assertions).

#ifndef CFDPROP_BASE_STATUS_H_
#define CFDPROP_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace cfdprop {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (schema mismatch, bad pattern, ...)
  kNotFound,          // lookup failure (unknown attribute/relation)
  kInconsistent,      // a set of CFDs (+ view) admits no nonempty instance
  kResourceExhausted, // configured budget exceeded (e.g. instantiations)
  kUnsupported,       // operation outside the implemented fragment
  kInternal,          // invariant violation: a bug in the library
  kDeadlineExceeded,  // a configured time budget elapsed (socket I/O, ...)
  kUnavailable,       // transiently unserveable (route mid-flip); retry
};

/// Returns a short human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value access; only valid when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

// Propagates a non-OK Status out of the current function.
#define CFDPROP_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::cfdprop::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

// Assigns the value of a Result expression to `lhs`, or returns its error.
#define CFDPROP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

#define CFDPROP_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  CFDPROP_ASSIGN_OR_RETURN_IMPL(                                          \
      CFDPROP_CONCAT_(_result_tmp_, __LINE__), lhs, rexpr)

#define CFDPROP_CONCAT_INNER_(a, b) a##b
#define CFDPROP_CONCAT_(a, b) CFDPROP_CONCAT_INNER_(a, b)

}  // namespace cfdprop

#endif  // CFDPROP_BASE_STATUS_H_
