// Little-endian byte helpers shared by the snapshot serialization code
// (src/engine/snapshot.h and the CFD/pattern hooks that feed it).
//
// Writers append to a std::string; readers are bounds-checked and
// advance a caller-owned cursor only on success, so a truncated or
// corrupt byte stream surfaces as a clean `false` instead of an
// out-of-range read. All integers are fixed-width little-endian,
// independent of the host byte order.

#ifndef CFDPROP_BASE_WIRE_H_
#define CFDPROP_BASE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace cfdprop {
namespace wire {

inline void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>(v >> (8 * i)));
  }
}

inline void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(v >> (8 * i)));
  }
}

inline bool GetU8(std::string_view in, size_t* pos, uint8_t* v) {
  if (*pos + 1 > in.size()) return false;
  *v = static_cast<uint8_t>(in[*pos]);
  *pos += 1;
  return true;
}

inline bool GetU32(std::string_view in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  uint32_t x = 0;
  for (int i = 0; i < 4; ++i) {
    x |= static_cast<uint32_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *v = x;
  *pos += 4;
  return true;
}

inline bool GetU64(std::string_view in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t x = 0;
  for (int i = 0; i < 8; ++i) {
    x |= static_cast<uint64_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *v = x;
  *pos += 8;
  return true;
}

/// Reads `n` raw bytes as a view into `in` (no copy).
inline bool GetBytes(std::string_view in, size_t* pos, size_t n,
                     std::string_view* v) {
  if (n > in.size() || *pos > in.size() - n) return false;
  *v = in.substr(*pos, n);
  *pos += n;
  return true;
}

}  // namespace wire
}  // namespace cfdprop

#endif  // CFDPROP_BASE_WIRE_H_
