#include "src/base/value.h"

namespace cfdprop {

Value ValuePool::Intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) return it->second;
  Value id = static_cast<Value>(texts_.size());
  texts_.emplace_back(text);
  index_.emplace(texts_.back(), id);
  return id;
}

Value ValuePool::Find(std::string_view text) const {
  auto it = index_.find(std::string(text));
  return it == index_.end() ? kNoValue : it->second;
}

}  // namespace cfdprop
