// printf-style formatting into a std::string, sized exactly by the
// snprintf return value — no fixed buffer to silently truncate into.

#ifndef CFDPROP_BASE_STRFMT_H_
#define CFDPROP_BASE_STRFMT_H_

#include <cstdarg>
#include <cstdio>
#include <string>

namespace cfdprop {

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  // +1: vsnprintf writes the terminator; std::string owns size()+1 bytes.
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace cfdprop

#endif  // CFDPROP_BASE_STRFMT_H_
