#include "src/base/status.h"

namespace cfdprop {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInconsistent:
      return "Inconsistent";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cfdprop
