#include "src/tableau/tableau.h"

namespace cfdprop {

Result<ViewTableau> BuildViewTableau(const Catalog& catalog,
                                     const SPCView& view,
                                     SymbolicInstance& instance) {
  CFDPROP_RETURN_NOT_OK(view.Validate(catalog));

  ViewTableau t;
  t.ec_cells.reserve(view.NumEcColumns(catalog));

  // One free-tuple row of fresh variable cells per relation atom.
  for (RelationId rel : view.atoms) {
    const RelationSchema& schema = catalog.relation(rel);
    std::vector<CellId> row;
    row.reserve(schema.arity());
    for (AttrIndex i = 0; i < schema.arity(); ++i) {
      CellId c = instance.NewCell(&schema.attr(i).domain);
      row.push_back(c);
      t.ec_cells.push_back(c);
    }
    instance.AddRow(rel, std::move(row));
  }

  // Apply the selection condition F.
  for (const Selection& s : view.selections) {
    if (s.kind == Selection::Kind::kColumnEq) {
      instance.Union(t.ec_cells[s.left], t.ec_cells[s.right]);
    } else {
      instance.BindConst(t.ec_cells[s.left], s.value);
    }
  }

  // Summary row: the view tuple.
  t.summary.reserve(view.output.size());
  for (const OutputColumn& o : view.output) {
    if (o.is_constant) {
      t.summary.push_back(instance.NewConstCell(o.value));
    } else {
      t.summary.push_back(t.ec_cells[o.ec_column]);
    }
  }
  return t;
}

}  // namespace cfdprop
