// Tableau representation of SPC views (appendix, Fig. 9 / Theorem 1).
//
// The tableau of pi_Y(Rc x sigma_F(R1 x ... x Rn)) materialized into a
// SymbolicInstance: one free-tuple row per relation atom Rj (fresh
// variable cells carrying the source attributes' domains), the selection
// condition F applied as cell unions (A = B) and constant bindings
// (A = 'a'), and a summary mapping every output column of the view to a
// cell. Building two tableaux of (possibly different) disjuncts into one
// instance is how the propagation test constructs the rho1/rho2 copies of
// the Theorem 3.1 proof.

#ifndef CFDPROP_TABLEAU_TABLEAU_H_
#define CFDPROP_TABLEAU_TABLEAU_H_

#include <vector>

#include "src/algebra/view.h"
#include "src/base/status.h"
#include "src/chase/symbolic_instance.h"
#include "src/schema/schema.h"

namespace cfdprop {

/// Cell handles of one tableau copy inside a SymbolicInstance.
struct ViewTableau {
  /// Cell per Ec column (index = ColumnId).
  std::vector<CellId> ec_cells;
  /// Cell per output column of the view schema; constant output columns
  /// map to constant cells.
  std::vector<CellId> summary;
};

/// Appends one tableau copy of `view` to `instance`: rows tagged with the
/// source relation ids (so source CFDs chase against them), selections
/// applied. A constant conflict in F marks the instance contradictory
/// (the view is unconditionally empty), which callers observe via
/// instance.contradiction().
Result<ViewTableau> BuildViewTableau(const Catalog& catalog,
                                     const SPCView& view,
                                     SymbolicInstance& instance);

}  // namespace cfdprop

#endif  // CFDPROP_TABLEAU_TABLEAU_H_
