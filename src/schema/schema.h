// Relational schemas and the Catalog.
//
// A Catalog owns the ValuePool and the set of relation schemas
// R = (S1, ..., Sm) that sources, CFDs and views refer to. Relations and
// attributes are referred to by dense ids (RelationId, position indices)
// so the algorithms stay index-based.

#ifndef CFDPROP_SCHEMA_SCHEMA_H_
#define CFDPROP_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/base/value.h"
#include "src/schema/domain.h"

namespace cfdprop {

/// Index of a relation schema within its Catalog.
using RelationId = uint32_t;

/// Position of an attribute within its relation schema (0-based).
using AttrIndex = uint32_t;

inline constexpr RelationId kNoRelation = UINT32_MAX;
inline constexpr AttrIndex kNoAttr = UINT32_MAX;

/// One attribute: a name plus a domain.
struct Attribute {
  std::string name;
  Domain domain;
};

/// A relation schema S(A1, ..., Ak).
class RelationSchema {
 public:
  RelationSchema(std::string name, std::vector<Attribute> attrs)
      : name_(std::move(name)), attrs_(std::move(attrs)) {}

  const std::string& name() const { return name_; }
  size_t arity() const { return attrs_.size(); }
  const Attribute& attr(AttrIndex i) const { return attrs_[i]; }
  const std::vector<Attribute>& attrs() const { return attrs_; }

  /// Position of the attribute named `name`, or kNoAttr.
  AttrIndex FindAttr(std::string_view name) const;

  /// True when at least one attribute has a finite domain. Decision
  /// procedures use this to pick between the infinite-domain (PTIME) and
  /// general-setting (coNP) code paths.
  bool HasFiniteDomainAttr() const;

 private:
  std::string name_;
  std::vector<Attribute> attrs_;
};

/// The catalog: a value pool plus relation schemas.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  ValuePool& pool() { return pool_; }
  const ValuePool& pool() const { return pool_; }

  /// Adds a relation schema; returns its id.
  /// Fails with InvalidArgument on duplicate relation or attribute names.
  Result<RelationId> AddRelation(std::string name,
                                 std::vector<Attribute> attrs);

  /// Convenience: relation with all-infinite string attributes.
  Result<RelationId> AddRelation(std::string name,
                                 std::vector<std::string> attr_names);

  /// Brace-list convenience: AddRelation("R", {"A", "B"}).
  Result<RelationId> AddRelation(std::string name,
                                 std::initializer_list<std::string> attrs) {
    return AddRelation(std::move(name),
                       std::vector<std::string>(attrs));
  }

  size_t num_relations() const { return relations_.size(); }
  const RelationSchema& relation(RelationId id) const {
    return relations_[id];
  }

  /// Id of the relation named `name`, or kNoRelation.
  RelationId FindRelation(std::string_view name) const;

  /// True when any relation has a finite-domain attribute.
  bool HasFiniteDomainAttr() const;

 private:
  ValuePool pool_;
  std::vector<RelationSchema> relations_;
};

}  // namespace cfdprop

#endif  // CFDPROP_SCHEMA_SCHEMA_H_
