// Attribute domains.
//
// The paper distinguishes the *infinite-domain setting* (every attribute
// ranges over an infinite domain such as string or int) from the *general
// setting* where some attributes have finite domains (bool, date, enums).
// The distinction drives the complexity of every decision procedure
// (Tables 1 and 2), so domains are first-class here.

#ifndef CFDPROP_SCHEMA_DOMAIN_H_
#define CFDPROP_SCHEMA_DOMAIN_H_

#include <string>
#include <vector>

#include "src/base/value.h"

namespace cfdprop {

/// A domain is either infinite or an explicit finite set of values.
class Domain {
 public:
  /// An infinite domain (e.g. string, int). `name` is documentation only.
  static Domain Infinite(std::string name = "string") {
    Domain d;
    d.name_ = std::move(name);
    d.finite_ = false;
    return d;
  }

  /// A finite domain with the given (interned) values.
  /// Precondition: values non-empty and duplicate-free.
  static Domain Finite(std::string name, std::vector<Value> values) {
    Domain d;
    d.name_ = std::move(name);
    d.finite_ = true;
    d.values_ = std::move(values);
    return d;
  }

  /// Convenience: the two-valued {false,true}-style domain.
  static Domain Boolean(ValuePool& pool) {
    return Finite("bool", {pool.Intern("0"), pool.Intern("1")});
  }

  bool finite() const { return finite_; }
  const std::string& name() const { return name_; }

  /// Values of a finite domain; empty for infinite domains.
  const std::vector<Value>& values() const { return values_; }

  /// Membership test. Every value belongs to an infinite domain.
  bool Contains(Value v) const;

 private:
  Domain() = default;

  std::string name_;
  bool finite_ = false;
  std::vector<Value> values_;
};

}  // namespace cfdprop

#endif  // CFDPROP_SCHEMA_DOMAIN_H_
