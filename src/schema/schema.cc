#include "src/schema/schema.h"

#include <unordered_set>

namespace cfdprop {

AttrIndex RelationSchema::FindAttr(std::string_view name) const {
  for (AttrIndex i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return kNoAttr;
}

bool RelationSchema::HasFiniteDomainAttr() const {
  for (const Attribute& a : attrs_) {
    if (a.domain.finite()) return true;
  }
  return false;
}

Result<RelationId> Catalog::AddRelation(std::string name,
                                        std::vector<Attribute> attrs) {
  if (FindRelation(name) != kNoRelation) {
    return Status::InvalidArgument("duplicate relation name: " + name);
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("relation " + name + " has no attributes");
  }
  std::unordered_set<std::string> seen;
  for (const Attribute& a : attrs) {
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute " + a.name +
                                     " in relation " + name);
    }
    if (a.domain.finite() && a.domain.values().empty()) {
      return Status::InvalidArgument("attribute " + a.name +
                                     " has an empty finite domain");
    }
  }
  RelationId id = static_cast<RelationId>(relations_.size());
  relations_.emplace_back(std::move(name), std::move(attrs));
  return id;
}

Result<RelationId> Catalog::AddRelation(std::string name,
                                        std::vector<std::string> attr_names) {
  std::vector<Attribute> attrs;
  attrs.reserve(attr_names.size());
  for (std::string& n : attr_names) {
    attrs.push_back(Attribute{std::move(n), Domain::Infinite()});
  }
  return AddRelation(std::move(name), std::move(attrs));
}

RelationId Catalog::FindRelation(std::string_view name) const {
  for (RelationId i = 0; i < relations_.size(); ++i) {
    if (relations_[i].name() == name) return i;
  }
  return kNoRelation;
}

bool Catalog::HasFiniteDomainAttr() const {
  for (const RelationSchema& r : relations_) {
    if (r.HasFiniteDomainAttr()) return true;
  }
  return false;
}

}  // namespace cfdprop
