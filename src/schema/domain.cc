#include "src/schema/domain.h"

#include <algorithm>

namespace cfdprop {

bool Domain::Contains(Value v) const {
  if (!finite_) return true;
  return std::find(values_.begin(), values_.end(), v) != values_.end();
}

}  // namespace cfdprop
