// Multi-tenant catalog service: the routing/serving layer above the
// propagation engine.
//
// One Engine serves one catalog; the ROADMAP north star is many
// catalogs (tenants) behind one front end. CatalogService owns N named
// tenants — each a catalog, its registered Σ sets and a private Engine —
// and adds the three things the engine alone does not have:
//
//   * a tenant registry (OpenCatalog / DropCatalog / ResolveCatalog)
//     that carves per-tenant cover-cache budgets out of one global
//     entry budget, rebalancing live caches (deterministic LRU
//     eviction, CoverCache::SetBudget) whenever a tenant opens or
//     drops, and rolls every tenant's engine counters up into one
//     service stats snapshot;
//
//   * an async front end — SubmitBatch returns a std::future<BatchReply>
//     (or invokes a callback) and a service-level dispatcher pool fans
//     the batches out across tenant engines, so a network front end can
//     overlap many batches without blocking on any of them; results
//     come back in request order within each batch, exactly as
//     Engine::PropagateBatch orders them;
//
//   * a snapshot *policy* — PR 3 built the snapshot mechanism (when
//     asked, spill/restore the cover cache byte-stably); the service
//     decides WHEN: a background thread spills each tenant's cache to
//     <snapshot_dir>/<tenant>.ccsnap once at least
//     SnapshotPolicy::dirty_line_threshold cache changes accrued since
//     its last spill, checked every SnapshotPolicy::interval;
//     OpenCatalog warm-starts a tenant from its file (after registering
//     the Σ sets, so content fingerprints validate), and DropCatalog /
//     service shutdown flush dirty tenants so no computed cover is
//     lost.
//
// Thread-safety: every public method is safe to call concurrently once
// the service is constructed. Tenants are held by shared_ptr — a drop
// never frees an engine an in-flight batch (or a caller-held handle)
// still uses. The one caveat inherited from Engine: building the
// Catalog and CFDs *passed to* OpenCatalog interns into that tenant's
// pool and must happen-before the call; from then on serving never
// mutates it.

#ifndef CFDPROP_SERVICE_CATALOG_SERVICE_H_
#define CFDPROP_SERVICE_CATALOG_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/engine/engine.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/batch_result.h"

namespace cfdprop {

/// When the background thread spills a tenant's cover cache.
struct SnapshotPolicy {
  /// How often dirtiness is checked. 0 disables the background thread —
  /// tenants then spill only on DropCatalog/shutdown (and explicit
  /// SpillTenant calls), which keeps tests and scripts deterministic.
  std::chrono::milliseconds interval{0};

  /// Minimum cache changes (insertions + evictions + invalidations)
  /// since the tenant's last spill before the *background* thread
  /// considers it dirty (clamped to >= 1 at construction — a clean
  /// tenant is never re-spilled: equal content writes equal bytes, so
  /// skipping is purely an I/O saving). The DropCatalog/shutdown
  /// flushes ignore this bar and spill on ANY dirtiness, so a computed
  /// cover is never lost to a high threshold.
  uint64_t dirty_line_threshold = 1;
};

/// Per-tenant admission control: how many batches one tenant may have in
/// the service at once before further submissions are rejected instead
/// of queued. The point is fairness under saturation — with N tenants
/// sharing a dispatcher pool, one tenant flooding SubmitBatch must not
/// starve the others (dispatch is round-robin across tenants, and this
/// cap bounds how much of the queue a single tenant can occupy).
struct AdmissionOptions {
  /// Batches of one tenant the dispatchers may be running at once.
  /// 0 = unlimited (admission control off; nothing is ever rejected).
  uint64_t max_inflight_batches = 0;

  /// Waiting room beyond the running cap: a tenant's submissions are
  /// admitted while its total in-service count (running + queued) is
  /// below max_inflight_batches + max_queued_batches, and rejected with
  /// a deterministic ResourceExhausted Status at the bound. Ignored
  /// while max_inflight_batches is 0.
  uint64_t max_queued_batches = 0;
};

struct ServiceOptions {
  /// Dispatcher pool size: how many batches can be in flight across all
  /// tenants at once (each dispatcher blocks inside one
  /// Engine::PropagateBatch at a time).
  size_t dispatcher_threads = 2;

  AdmissionOptions admission;

  /// Total cover-cache entries split evenly across open tenants (each
  /// tenant gets at least 1; re-split on every open/drop). Per-tenant
  /// shares round down to shard multiples, so this is a true upper
  /// bound — with one caveat: a cache's shard count is fixed when its
  /// tenant opens (clamped to its share at that moment), and each shard
  /// keeps >= 1 slot, so if later opens shrink a tenant's share below
  /// its shard count (engine.cache_shards, default 8) that tenant
  /// floors at one entry per shard. Keep the budget >= tenants x shards
  /// (the default 4096 allows 512 such tenants) to stay within bound.
  size_t global_cache_budget = 4096;

  /// Per-tenant engine template. `cache_capacity` is overridden by the
  /// budget split above; everything else (worker threads, cover
  /// options, shard count) applies to every tenant's engine as-is.
  EngineOptions engine;

  /// Directory for per-tenant snapshot files ("" disables persistence
  /// entirely: no warm starts, no spills). Must exist.
  std::string snapshot_dir;

  SnapshotPolicy policy;
};

/// One open tenant: a named catalog with its own engine. Handles are
/// shared_ptr — they (and the covers they served) outlive DropCatalog.
class Tenant {
 public:
  const std::string& name() const { return name_; }
  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }

  /// Current cover-cache budget (entries) as actually honored by the
  /// cache after the service's global-budget split (shares round down
  /// to shard multiples, so this never overstates capacity).
  size_t cache_budget() const {
    return cache_budget_.load(std::memory_order_relaxed);
  }

 private:
  friend class CatalogService;

  Tenant(std::string name, std::unique_ptr<Engine> engine)
      : name_(std::move(name)), engine_(std::move(engine)) {}

  std::string name_;
  std::unique_ptr<Engine> engine_;
  std::atomic<size_t> cache_budget_{0};

  /// Serializes spills of this tenant (policy thread vs. Drop vs.
  /// explicit SpillTenant). SaveSnapshot's temp files are now
  /// writer-unique (pid + counter, last rename wins), so concurrent
  /// saves can no longer clobber each other's bytes — this lock is
  /// about *ordering*: without it a stale policy spill could rename
  /// over a newer flush. Held across the disk write — which is why the
  /// counters below are atomics: Stats() must never stall behind
  /// snapshot I/O.
  std::mutex spill_mu;
  /// Cache-change counter (insertions+evictions+invalidations) observed
  /// at the last spill; the delta against it is the dirtiness. Written
  /// under spill_mu, read lock-free by Stats().
  std::atomic<uint64_t> spill_marker{0};
  std::atomic<uint64_t> last_spill_lines{0};
  std::atomic<uint64_t> spills{0};    // total spills (policy + flush)
  /// Set by DropCatalog after its final flush (under spill_mu): the
  /// policy thread may still hold this handle from a pre-drop snapshot
  /// of the registry, and must not rewrite the tenant's file — a
  /// same-name tenant may have re-opened and own it now.
  std::atomic<bool> dropped{false};
  std::atomic<uint64_t> policy_spills{0};  // spills by the background thread
  std::atomic<uint64_t> batches_submitted{0};

  /// Admission state. The gauges (queued/running) are only ever written
  /// under the service's queue_mu_ — which is what makes burst admission
  /// decisions deterministic — but are atomics so Stats() can read them
  /// without taking the queue lock.
  std::atomic<uint64_t> admission_admitted{0};
  std::atomic<uint64_t> admission_rejected{0};
  std::atomic<uint64_t> admission_queued{0};   // waiting in the tenant queue
  std::atomic<uint64_t> admission_running{0};  // held by a dispatcher

  /// Per-stage latency histograms (`cfdprop_stage_latency_us{tenant=,
  /// stage=}`), owned by the service's MetricsRegistry and resolved at
  /// OpenCatalog — re-opening a name continues the same series. Only
  /// service code records into them.
  struct StageTimers {
    obs::Histogram* admission = nullptr;   // submit entry -> enqueued
    obs::Histogram* queue_wait = nullptr;  // enqueued -> dispatcher pop
    obs::Histogram* dispatch = nullptr;    // pop -> batch handed to engine
    obs::Histogram* propagate = nullptr;   // Engine::PropagateBatch wall
    obs::Histogram* reply = nullptr;       // promise/callback delivery
  };
  StageTimers stages_;
};

using TenantHandle = std::shared_ptr<Tenant>;

/// One completed batch, delivered through the future or callback. The
/// payload is the BatchResult shape the wire protocol also speaks
/// (results[i] answers requests[i] of the submitted batch); `status` is
/// always OK here — rejections surface synchronously from SubmitBatch —
/// but lets a CoverBackend fold sync rejections and replies into one
/// slot without a conversion.
struct BatchReply : BatchResult {
  std::string tenant;
  /// Per-tenant submission sequence number (0-based): replies to one
  /// tenant can be re-ordered by the dispatcher pool, the sequence says
  /// which submit each reply answers.
  uint64_t sequence = 0;
};

/// Per-tenant rollup inside ServiceStatsSnapshot.
struct TenantStatsSnapshot {
  std::string name;
  size_t cache_budget = 0;
  uint64_t batches_submitted = 0;
  uint64_t spills = 0;         // all snapshot spills (policy + flush)
  uint64_t policy_spills = 0;  // spills initiated by the background thread
  uint64_t last_spill_lines = 0;
  /// Cache changes since the last spill — what the policy compares to
  /// dirty_line_threshold. 0 means the snapshot file is up to date (a
  /// warm-started tenant that only ever hit stays clean forever).
  uint64_t dirty_lines = 0;
  /// Admission control (see AdmissionOptions): batches admitted/rejected
  /// over the tenant's lifetime, and the current queued/running gauges.
  uint64_t admitted = 0;
  uint64_t admission_rejected = 0;
  uint64_t queued = 0;
  uint64_t running = 0;
  EngineStatsSnapshot engine;

  /// "tenant <name>: budget=... batches=... spills=... <engine stats>".
  std::string ToString() const;
};

struct ServiceStatsSnapshot {
  size_t global_cache_budget = 0;
  uint64_t batches_submitted = 0;
  uint64_t batches_completed = 0;
  /// Submissions refused by per-tenant admission control, service-wide
  /// (rejected batches do not count in batches_submitted).
  uint64_t batches_rejected = 0;
  /// In tenant-name order.
  std::vector<TenantStatsSnapshot> tenants;
};

class CatalogService {
 public:
  explicit CatalogService(ServiceOptions options = {});

  /// Stops the dispatchers (draining every queued batch first, so no
  /// future is ever broken) and the policy thread, then flushes every
  /// dirty tenant to the snapshot directory.
  ~CatalogService();

  CatalogService(const CatalogService&) = delete;
  CatalogService& operator=(const CatalogService&) = delete;

  /// Opens a tenant: builds its engine (per-tenant budget carved from
  /// the global one), registers `sigmas` in order (their SigmaIds are
  /// 0, 1, ... as Engine::RegisterSigma assigns them), then — when a
  /// snapshot directory is configured and <dir>/<name>.ccsnap exists —
  /// warm-starts the cover cache from it (a rejected/corrupt file is
  /// not an error: the tenant just starts cold). Tenant names are file
  /// names, so only [A-Za-z0-9_.-] is accepted, and not starting with
  /// '.'. Fails on duplicate names. Rebalances every tenant's cache
  /// budget to global/N.
  Result<TenantHandle> OpenCatalog(const std::string& name, Catalog catalog,
                                   std::vector<std::vector<CFD>> sigmas = {});

  /// OpenCatalog, but warm-started from snapshot bytes shipped in
  /// memory (the receiving side of a tenant migration) instead of this
  /// service's snapshot directory. A rejected/corrupt snapshot is not
  /// an error — the tenant starts cold, exactly like a failed file
  /// warm-start; the per-line outcome is readable from the engine's
  /// restored=/rejected= counters. Unlike the file path, the restored
  /// cache counts as *dirty* against the tenant's own snapshot file, so
  /// the next spill persists the migrated covers locally.
  Result<TenantHandle> OpenCatalogFromSnapshot(
      const std::string& name, Catalog catalog,
      std::vector<std::vector<CFD>> sigmas, std::string_view snapshot);

  /// Closes a tenant: flushes its cache to the snapshot directory (when
  /// configured), then removes it from the registry and rebalances the
  /// remaining tenants' budgets. A failed flush fails the drop — the
  /// tenant stays open for a retry rather than silently losing its
  /// covers. Batches already submitted still complete — they hold the
  /// tenant handle — but their late cache insertions are not
  /// re-spilled. NotFound for unknown names.
  Status DropCatalog(const std::string& name);

  /// Looks a tenant up by name. The handle stays valid across a later
  /// DropCatalog.
  Result<TenantHandle> ResolveCatalog(const std::string& name) const;

  size_t num_tenants() const;
  /// Open tenant names, sorted.
  std::vector<std::string> TenantNames() const;

  /// Submits a batch for async serving on `tenant`'s engine; the future
  /// resolves with results in request order once a dispatcher has run
  /// it. Resolution failures (unknown tenant, service shutting down, an
  /// admission rejection — ResourceExhausted, see AdmissionOptions)
  /// surface synchronously as the Result's status.
  Result<std::future<BatchReply>> SubmitBatch(
      const std::string& tenant, std::vector<Engine::Request> requests);

  /// Pipelined submit: every batch's admission is decided under one
  /// queue-lock hold, before any of them can be dispatched or complete —
  /// so the admit/reject pattern of a burst is a pure function of the
  /// caps and the tenant's in-service count at the call, never of
  /// dispatcher timing. slot i answers batches[i]: either a future (the
  /// batch was admitted and will resolve) or the synchronous rejection
  /// Status. This is what the network front end maps a multi-batch
  /// submit frame onto. `trace` (when sampled, with a process tracer
  /// installed) attaches the request's trace context to every batch:
  /// the five stage spans (admission/queue_wait/dispatch/propagate/
  /// reply) are recorded against it, parented to
  /// `trace.parent_span_id`, reusing the exact stamps the stage
  /// histograms read — tracing adds no clock calls of its own.
  std::vector<Result<std::future<BatchReply>>> SubmitBatches(
      const std::string& tenant,
      std::vector<std::vector<Engine::Request>> batches,
      const obs::TraceContext& trace = {});

  /// Callback overload: `done` runs on a dispatcher thread when the
  /// batch completes. It must not block for long (it occupies the
  /// dispatcher) and must not throw.
  Status SubmitBatch(const std::string& tenant,
                     std::vector<Engine::Request> requests,
                     std::function<void(BatchReply)> done);

  /// Spills one tenant's cover cache to the snapshot directory now,
  /// regardless of dirtiness. Returns the number of lines written.
  /// Fails when no snapshot directory is configured.
  Result<uint64_t> SpillTenant(const std::string& name);

  /// Blocks until the tenant has no batches in the service (queued +
  /// running == 0) — the quiesce step of a migration. The caller is
  /// responsible for holding new submissions off (the router marks the
  /// tenant migrating first); DrainTenant only waits out what is
  /// already in. `deadline` <= 0 waits forever; otherwise typed
  /// DeadlineExceeded when the tenant is still busy at the deadline.
  Status DrainTenant(const std::string& name,
                     std::chrono::milliseconds deadline);

  /// The tenant's cover cache serialized to snapshot bytes in memory
  /// (.ccsnap wire format, checksum included) — what a migration ships
  /// to the target shard. Thread-safe against serving; for a settled
  /// byte image, DrainTenant first.
  Result<SerializedSnapshot> ExportTenantSnapshot(const std::string& name);

  /// Per-tenant and service-level counters.
  ServiceStatsSnapshot Stats() const;

  /// The service's metrics registry: owns the per-tenant stage
  /// histograms and (via a collector) exports every counter in Stats()
  /// as text exposition. Valid for the service's lifetime; anything
  /// registering its own collector (e.g. CoverServer) must remove it
  /// before the service dies.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// RenderMetricsText(metrics()) — the library-level scrape behind the
  /// METRICS wire frame and --metrics-dump.
  std::string RenderMetricsText() const { return metrics_.RenderText(); }

  const ServiceOptions& options() const { return options_; }

 private:
  struct Job {
    TenantHandle tenant;
    std::vector<Engine::Request> requests;
    uint64_t sequence = 0;
    std::promise<BatchReply> promise;
    /// Empty = future overload (reply goes to `promise`); set = the
    /// callback overload.
    std::function<void(BatchReply)> callback;
    /// Lifecycle stamps for the stage histograms: when the submit call
    /// entered the service, and when admission accepted the batch.
    std::chrono::steady_clock::time_point submit_start{};
    std::chrono::steady_clock::time_point admitted_at{};
    /// Trace context from the submit edge; when sampled, the dispatcher
    /// records the stage spans against it (same stamps as the
    /// histograms).
    obs::TraceContext trace;
  };

  std::string SnapshotPath(const std::string& name) const;
  /// The shared body of OpenCatalog/OpenCatalogFromSnapshot: `warm`
  /// non-null = warm-start from those bytes (migration), null = from
  /// the snapshot directory's file when one is configured.
  Result<TenantHandle> OpenCatalogInternal(const std::string& name,
                                           Catalog catalog,
                                           std::vector<std::vector<CFD>> sigmas,
                                           const std::string_view* warm);
  /// The single definition of the per-tenant budget split (every site —
  /// engine construction, rebalance, the newcomer's recorded budget —
  /// must agree or cache_budget() drifts from real capacity).
  size_t ShareFor(size_t num_tenants) const {
    return std::max<size_t>(
        1, options_.global_cache_budget / std::max<size_t>(1, num_tenants));
  }
  /// The spill primitive behind the policy thread, DropCatalog,
  /// SpillTenant and shutdown. `from_policy` attributes the spill in
  /// the stats; the tenant is skipped (its last spill count returned)
  /// when it has fewer than `min_dirty` cache changes since its last
  /// spill — the policy thread passes its threshold, the drop/shutdown
  /// flushes pass 1, and SpillTenant passes 0 (unconditional).
  Result<uint64_t> Spill(Tenant& tenant, bool from_policy,
                         uint64_t min_dirty);
  /// Applies share = global_budget / num_tenants to every registered
  /// tenant; `num_tenants` may be the prospective count (OpenCatalog
  /// shrinks existing tenants *before* the new engine fills, so the
  /// global budget holds even mid-open). Caller holds registry_mu_
  /// (shared or exclusive is fine: budgets are atomics and resize is
  /// thread-safe).
  void RebalanceBudgets(size_t num_tenants);
  /// Resolves job.tenant from `tenant`, assigns the sequence and queues
  /// the (fully populated) job.
  Status Enqueue(const std::string& tenant, Job job);
  /// Admission decision + queue insertion; caller holds queue_mu_.
  Status EnqueueLocked(Job job);
  /// The next job a dispatcher should run, round-robin across tenant
  /// queues starting after rr_cursor_, skipping tenants at their running
  /// cap. Pops it (updating the admission gauges and the cursor) or
  /// returns false when nothing is currently eligible. Caller holds
  /// queue_mu_.
  bool PopEligibleLocked(Job* job);
  void DispatcherLoop();
  void PolicyLoop();
  /// Resolves the tenant's five stage histograms out of the registry.
  void BindStageTimers(Tenant& tenant);
  /// The render-time collector: one Stats() snapshot expanded into the
  /// full cfdprop_* family set (counters, gauges, engine latency
  /// histograms). Registered at construction.
  std::vector<obs::MetricFamilySamples> CollectFamilies() const;

  ServiceOptions options_;
  /// Declared right after options_ so the ctor can read the enabled
  /// flag (options_.engine.metrics); outlives every service thread.
  obs::MetricsRegistry metrics_;
  size_t metrics_collector_id_ = 0;

  mutable std::shared_mutex registry_mu_;
  std::map<std::string, TenantHandle> tenants_;
  /// Serializes OpenCatalog/DropCatalog against each other so the slow
  /// parts (engine construction, Σ minimization, snapshot I/O) never
  /// run under registry_mu_.
  std::mutex open_mu_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  /// One FIFO per tenant name; dispatchers drain them round-robin (see
  /// PopEligibleLocked) so a flooding tenant cannot starve the others.
  /// Jobs hold their TenantHandle, so a drop + same-name reopen sharing
  /// one queue entry is benign. Guarded by queue_mu_.
  std::map<std::string, std::deque<Job>> queues_;
  size_t total_queued_ = 0;           // guarded by queue_mu_
  std::string rr_cursor_;             // last tenant served; guarded by queue_mu_
  std::vector<std::thread> dispatchers_;
  bool stopping_ = false;  // guarded by queue_mu_

  std::mutex policy_mu_;
  std::condition_variable policy_cv_;
  std::thread policy_thread_;
  bool policy_stop_ = false;  // guarded by policy_mu_

  std::atomic<uint64_t> batches_submitted_{0};
  std::atomic<uint64_t> batches_completed_{0};
  std::atomic<uint64_t> batches_rejected_{0};
};

}  // namespace cfdprop

#endif  // CFDPROP_SERVICE_CATALOG_SERVICE_H_
