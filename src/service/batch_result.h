// BatchResult: the single batch-outcome shape shared by the in-process
// service (CatalogService's BatchReply derives from it) and the wire
// protocol (net::WireBatchResult is an alias for it). One batch's
// admission/resolution status plus — when admitted — per-request
// results carrying covers. Keeping the two layers on one struct means
// covers round-trip between a CoverBackend's implementations without
// per-call-site conversion glue, and the byte-identity tests can diff
// in-process and network results directly.

#ifndef CFDPROP_SERVICE_BATCH_RESULT_H_
#define CFDPROP_SERVICE_BATCH_RESULT_H_

#include <vector>

#include "src/base/status.h"
#include "src/engine/engine.h"

namespace cfdprop {

/// One batch's outcome: `status` is the batch-level admission or
/// resolution verdict (typed ResourceExhausted on rejection, NotFound
/// on an unknown view, ...); when it is OK, `results` answers the
/// batch's requests in order, each either a cover-bearing EngineResult
/// or its own typed error.
struct BatchResult {
  Status status = Status::OK();
  std::vector<Result<EngineResult>> results;
};

}  // namespace cfdprop

#endif  // CFDPROP_SERVICE_BATCH_RESULT_H_
