#include "src/service/catalog_service.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <utility>

#include "src/base/strfmt.h"

namespace cfdprop {

namespace {

double MicrosBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Tenant names become snapshot file names, so the alphabet is locked
/// down: [A-Za-z0-9_.-], first character alphanumeric or '_'. This
/// rules out path separators, ".." prefixes and empty names without any
/// escaping scheme to maintain.
Status ValidateTenantName(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  // Names become "<name>.ccsnap.tmp" files: far below NAME_MAX (255),
  // or every spill would fail with ENAMETOOLONG — and since a failed
  // flush fails DropCatalog, an unspillable tenant could never close.
  constexpr size_t kMaxTenantNameLen = 100;
  if (name.size() > kMaxTenantNameLen) {
    return Status::InvalidArgument("tenant name longer than 100 characters");
  }
  char first = name.front();
  if (!std::isalnum(static_cast<unsigned char>(first)) && first != '_') {
    return Status::InvalidArgument(
        "tenant name must start with a letter, digit or '_': '" + name + "'");
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return Status::InvalidArgument(
          "tenant name may only contain [A-Za-z0-9_.-]: '" + name + "'");
    }
  }
  return Status::OK();
}

/// Case-folded name for duplicate detection: tenant names become
/// snapshot file names, and on a case-insensitive filesystem
/// (macOS/Windows) "EU" and "eu" would silently share one .ccsnap file,
/// each spill overwriting the other's. The registry itself stays
/// case-preserving.
std::string FoldTenantName(const std::string& name) {
  std::string folded = name;
  for (char& c : folded) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return folded;
}

/// Monotone count of cache content changes: anything that adds or
/// removes a line. The delta against a tenant's spill_marker is its
/// dirtiness (restored lines count via `insertions`).
uint64_t CacheChangeCounter(const CacheStats& c) {
  return c.insertions + c.evictions + c.invalidations;
}

}  // namespace

std::string TenantStatsSnapshot::ToString() const {
  return StrPrintf("tenant %s: budget=%zu batches=%llu spills=%llu "
                   "policy_spills=%llu last_spill_lines=%llu dirty=%llu "
                   "admitted=%llu admission_rejected=%llu queued=%llu "
                   "running=%llu ",
                   name.c_str(), cache_budget,
                   static_cast<unsigned long long>(batches_submitted),
                   static_cast<unsigned long long>(spills),
                   static_cast<unsigned long long>(policy_spills),
                   static_cast<unsigned long long>(last_spill_lines),
                   static_cast<unsigned long long>(dirty_lines),
                   static_cast<unsigned long long>(admitted),
                   static_cast<unsigned long long>(admission_rejected),
                   static_cast<unsigned long long>(queued),
                   static_cast<unsigned long long>(running)) +
         engine.ToString();
}

CatalogService::CatalogService(ServiceOptions options)
    : options_(std::move(options)), metrics_(options_.engine.metrics) {
  // Same guard as the engine's worker pool: a dispatcher count past any
  // plausible hardware just burns thread stacks.
  constexpr size_t kMaxDispatchers = 256;
  options_.dispatcher_threads =
      std::clamp<size_t>(options_.dispatcher_threads, 1, kMaxDispatchers);
  // Threshold 0 would re-spill every clean tenant each interval (0
  // dirty lines >= 0); the meaningful minimum is "any change at all".
  options_.policy.dirty_line_threshold =
      std::max<uint64_t>(1, options_.policy.dirty_line_threshold);
  dispatchers_.reserve(options_.dispatcher_threads);
  for (size_t i = 0; i < options_.dispatcher_threads; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
  if (!options_.snapshot_dir.empty() &&
      options_.policy.interval.count() > 0) {
    policy_thread_ = std::thread([this] { PolicyLoop(); });
  }
  metrics_collector_id_ =
      metrics_.AddCollector([this] { return CollectFamilies(); });
}

CatalogService::~CatalogService() {
  // Unhook the collector before anything starts dying: a render racing
  // shutdown must not walk a half-destroyed service. (Renders come from
  // CoverServer frames or the embedding — both are contractually done
  // before the service destructs; this is belt and braces.)
  metrics_.RemoveCollector(metrics_collector_id_);
  // Stop serving first (dispatchers drain the queue before exiting, so
  // every submitted future still resolves), then the policy thread, and
  // only then take the final flush — its snapshots see the last batch's
  // insertions.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
  if (policy_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(policy_mu_);
      policy_stop_ = true;
    }
    policy_cv_.notify_all();
    policy_thread_.join();
  }
  if (!options_.snapshot_dir.empty()) {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    for (auto& [name, tenant] : tenants_) {
      // Any dirtiness flushes — the policy threshold only gates the
      // background thread, never whether a computed cover survives. A
      // destructor cannot return the error, so at least say what was
      // lost.
      auto spilled = Spill(*tenant, /*from_policy=*/false, /*min_dirty=*/1);
      if (!spilled.ok()) {
        std::fprintf(stderr,
                     "cfdprop: shutdown flush of tenant '%s' failed: %s\n",
                     name.c_str(), spilled.status().ToString().c_str());
      }
    }
  }
}

std::string CatalogService::SnapshotPath(const std::string& name) const {
  return options_.snapshot_dir + "/" + name + ".ccsnap";
}

void CatalogService::RebalanceBudgets(size_t num_tenants) {
  if (num_tenants == 0) return;
  const size_t share = ShareFor(num_tenants);
  for (auto& [name, tenant] : tenants_) {
    tenant->engine_->SetCacheBudget(share);
    // Record what the cache actually honors (shares round down to shard
    // multiples), so budget= in stats never overstates real capacity.
    tenant->cache_budget_.store(tenant->engine_->cache_capacity(),
                                std::memory_order_relaxed);
  }
}

Result<TenantHandle> CatalogService::OpenCatalog(
    const std::string& name, Catalog catalog,
    std::vector<std::vector<CFD>> sigmas) {
  return OpenCatalogInternal(name, std::move(catalog), std::move(sigmas),
                             nullptr);
}

Result<TenantHandle> CatalogService::OpenCatalogFromSnapshot(
    const std::string& name, Catalog catalog,
    std::vector<std::vector<CFD>> sigmas, std::string_view snapshot) {
  return OpenCatalogInternal(name, std::move(catalog), std::move(sigmas),
                             &snapshot);
}

Result<TenantHandle> CatalogService::OpenCatalogInternal(
    const std::string& name, Catalog catalog,
    std::vector<std::vector<CFD>> sigmas, const std::string_view* warm) {
  CFDPROP_RETURN_NOT_OK(ValidateTenantName(name));
  // open_mu_ serializes the slow path (engine build, Σ minimization,
  // snapshot I/O) outside registry_mu_, and makes the duplicate check
  // race-free against a concurrent open of the same name.
  std::lock_guard<std::mutex> open_lock(open_mu_);
  size_t tenants_after;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    const std::string folded = FoldTenantName(name);
    for (const auto& [existing, tenant] : tenants_) {
      if (FoldTenantName(existing) == folded) {
        return Status::InvalidArgument(
            "tenant '" + name + "' collides with open tenant '" + existing +
            "' (names are case-folded: snapshot files must stay distinct "
            "on case-insensitive filesystems)");
      }
    }
    tenants_after = tenants_.size() + 1;
  }

  EngineOptions engine_options = options_.engine;
  engine_options.cache_capacity = ShareFor(tenants_after);
  auto engine =
      std::make_unique<Engine>(std::move(catalog), std::move(engine_options));
  for (auto& sigma : sigmas) {
    auto id = engine->RegisterSigma(std::move(sigma));
    if (!id.ok()) return id.status();
  }

  // The open is now certain to succeed (warm-start failures are
  // non-fatal), so shrink the existing tenants to the post-open share
  // BEFORE the snapshot load fills the new cache: the fresh engine
  // holds zero entries, so total live capacity never exceeds the
  // global budget — and a failed open above never evicted anything.
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    RebalanceBudgets(tenants_after);
  }

  TenantHandle tenant(new Tenant(name, std::move(engine)));
  BindStageTimers(*tenant);
  if (warm != nullptr) {
    // Migration warm start: the shipped bytes win over any stale local
    // file. Any failure — version bump, changed Σ, corruption — just
    // means a cold cache. The spill marker stays 0: unlike the file
    // path below, these bytes are NOT this service's snapshot file, so
    // the restored lines count as dirty and the next spill persists
    // them locally.
    (void)tenant->engine_->LoadSnapshotBytes(*warm);
  } else if (!options_.snapshot_dir.empty()) {
    // Warm start. Any failure — no file yet, version bump, changed Σ,
    // corruption — just means a cold cache; LoadSnapshot already
    // guarantees a rejected file restores nothing. Runs before the
    // tenant is published, so the pool-interning load never races
    // serving.
    (void)tenant->engine_->LoadSnapshot(SnapshotPath(name));
    // A freshly restored cache is not dirty: its content IS the file.
    tenant->spill_marker.store(
        CacheChangeCounter(tenant->engine_->Stats().cache),
        std::memory_order_relaxed);
  }

  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  tenants_.emplace(name, tenant);
  // The existing tenants were already resized to this share before the
  // build; only the newcomer's budget field needs recording (its engine
  // was constructed at exactly the share).
  tenant->cache_budget_.store(tenant->engine_->cache_capacity(),
                              std::memory_order_relaxed);
  return tenant;
}

Status CatalogService::DropCatalog(const std::string& name) {
  std::lock_guard<std::mutex> open_lock(open_mu_);
  TenantHandle tenant;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::NotFound("unknown tenant '" + name + "'");
    }
    tenant = it->second;
  }
  if (!options_.snapshot_dir.empty()) {
    // Final flush (any dirtiness, regardless of the policy threshold)
    // so a reopen warm-starts from everything this tenant computed —
    // BEFORE the registry erase, so a failed spill fails the drop and
    // the tenant stays open for a retry instead of losing its covers.
    // Batches still in flight hold the handle and complete, but lines
    // they insert after this point are not re-spilled.
    auto spilled = Spill(*tenant, /*from_policy=*/false, /*min_dirty=*/1);
    if (!spilled.ok()) return spilled.status();
  }
  {
    // Under spill_mu so it cannot interleave with an in-flight policy
    // spill: from here on, late batch insertions on this (now stale)
    // handle must never rewrite the snapshot file — a same-name tenant
    // may re-open and own it.
    std::lock_guard<std::mutex> spill_lock(tenant->spill_mu);
    tenant->dropped.store(true, std::memory_order_relaxed);
  }
  // The survivors are about to be raised to global/(N-1), so release
  // this tenant's share: shrink its capacity to the floor (bounding
  // what in-flight batches can re-insert) and drop the just-spilled
  // entries. Handed-out covers and the handle's engine stay valid.
  tenant->engine_->SetCacheBudget(0);
  tenant->engine_->ClearCache();
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  tenants_.erase(name);
  RebalanceBudgets(tenants_.size());
  return Status::OK();
}

Result<TenantHandle> CatalogService::ResolveCatalog(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + name + "'");
  }
  return it->second;
}

size_t CatalogService::num_tenants() const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  return tenants_.size();
}

std::vector<std::string> CatalogService::TenantNames() const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;  // std::map iterates sorted
}

Status CatalogService::EnqueueLocked(Job job) {
  if (stopping_) {
    return Status::Unsupported("service is shutting down");
  }
  Tenant& tenant = *job.tenant;
  const AdmissionOptions& adm = options_.admission;
  if (adm.max_inflight_batches > 0) {
    // In-service count = running + queued; both gauges only move under
    // queue_mu_, so this comparison — and therefore the admit/reject
    // pattern of a SubmitBatches burst — is deterministic.
    const uint64_t in_service =
        tenant.admission_running.load(std::memory_order_relaxed) +
        tenant.admission_queued.load(std::memory_order_relaxed);
    if (in_service >= adm.max_inflight_batches + adm.max_queued_batches) {
      tenant.admission_rejected.fetch_add(1, std::memory_order_relaxed);
      batches_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission: tenant '" + tenant.name() + "' is over its in-flight "
          "cap (" + std::to_string(adm.max_inflight_batches) + " running + " +
          std::to_string(adm.max_queued_batches) + " queued)");
    }
  }
  // Counters and the per-tenant sequence move only once the batch is
  // definitely accepted (and under queue_mu_, so a rejected submit
  // can never skew them or leave a sequence gap).
  tenant.admission_admitted.fetch_add(1, std::memory_order_relaxed);
  tenant.admission_queued.fetch_add(1, std::memory_order_relaxed);
  job.sequence =
      tenant.batches_submitted.fetch_add(1, std::memory_order_relaxed);
  // Lifecycle stamp: queue-wait is measured from here, and the submit
  // entry -> admitted span is the "admission" stage.
  job.admitted_at = std::chrono::steady_clock::now();
  if (tenant.stages_.admission) {
    tenant.stages_.admission->Record(
        MicrosBetween(job.submit_start, job.admitted_at));
  }
  if (job.trace.sampled) {
    if (obs::Tracer* tracer = obs::ProcessTracer()) {
      tracer->Record(job.trace, tracer->NewSpanId(), job.trace.parent_span_id,
                     "admission", obs::Tracer::ToUs(job.submit_start),
                     static_cast<uint64_t>(
                         MicrosBetween(job.submit_start, job.admitted_at)),
                     tenant.name());
    }
  }
  queues_[tenant.name()].push_back(std::move(job));
  ++total_queued_;
  batches_submitted_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status CatalogService::Enqueue(const std::string& tenant_name, Job job) {
  job.submit_start = std::chrono::steady_clock::now();
  CFDPROP_ASSIGN_OR_RETURN(job.tenant, ResolveCatalog(tenant_name));
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    CFDPROP_RETURN_NOT_OK(EnqueueLocked(std::move(job)));
  }
  queue_cv_.notify_one();
  return Status::OK();
}

Result<std::future<BatchReply>> CatalogService::SubmitBatch(
    const std::string& tenant, std::vector<Engine::Request> requests) {
  Job job;
  job.requests = std::move(requests);
  std::future<BatchReply> future = job.promise.get_future();
  CFDPROP_RETURN_NOT_OK(Enqueue(tenant, std::move(job)));
  return future;
}

std::vector<Result<std::future<BatchReply>>> CatalogService::SubmitBatches(
    const std::string& tenant,
    std::vector<std::vector<Engine::Request>> batches,
    const obs::TraceContext& trace) {
  std::vector<Result<std::future<BatchReply>>> out;
  out.reserve(batches.size());
  auto resolved = ResolveCatalog(tenant);
  if (!resolved.ok()) {
    for (size_t i = 0; i < batches.size(); ++i) out.push_back(resolved.status());
    return out;
  }
  size_t admitted = 0;
  {
    // One lock hold across every decision: no dispatcher can pop or
    // complete a batch (both need queue_mu_) between the first and the
    // last admission check, so a burst's outcome depends only on the
    // caps and the in-service count at entry.
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (auto& requests : batches) {
      Job job;
      job.submit_start = std::chrono::steady_clock::now();
      job.tenant = *resolved;
      job.trace = trace;
      job.requests = std::move(requests);
      std::future<BatchReply> future = job.promise.get_future();
      Status enq = EnqueueLocked(std::move(job));
      if (enq.ok()) {
        out.push_back(std::move(future));
        ++admitted;
      } else {
        out.push_back(std::move(enq));
      }
    }
  }
  for (size_t i = 0; i < admitted; ++i) queue_cv_.notify_one();
  return out;
}

Status CatalogService::SubmitBatch(const std::string& tenant,
                                   std::vector<Engine::Request> requests,
                                   std::function<void(BatchReply)> done) {
  if (!done) {
    return Status::InvalidArgument("SubmitBatch callback must be set");
  }
  Job job;
  job.requests = std::move(requests);
  job.callback = std::move(done);
  return Enqueue(tenant, std::move(job));
}

bool CatalogService::PopEligibleLocked(Job* job) {
  if (queues_.empty()) return false;
  const uint64_t running_cap = options_.admission.max_inflight_batches;
  // Round-robin: scan tenant queues starting just past the last tenant
  // served, wrapping — under saturation every tenant with queued work
  // gets a dispatcher in name order, regardless of who floods the queue.
  auto start = queues_.upper_bound(rr_cursor_);
  if (start == queues_.end()) start = queues_.begin();
  auto it = start;
  do {
    std::deque<Job>& q = it->second;
    if (!q.empty()) {
      Tenant& tenant = *q.front().tenant;
      // A tenant at its running cap keeps its queue until a completion
      // frees a slot (the completing dispatcher notifies).
      if (running_cap == 0 ||
          tenant.admission_running.load(std::memory_order_relaxed) <
              running_cap) {
        *job = std::move(q.front());
        q.pop_front();
        --total_queued_;
        tenant.admission_queued.fetch_sub(1, std::memory_order_relaxed);
        tenant.admission_running.fetch_add(1, std::memory_order_relaxed);
        rr_cursor_ = it->first;
        if (q.empty()) queues_.erase(it);
        return true;
      }
    }
    ++it;
    if (it == queues_.end()) it = queues_.begin();
  } while (it != start);
  return false;
}

void CatalogService::DispatcherLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      for (;;) {
        if (PopEligibleLocked(&job)) break;
        // Drained means *empty queues*, not just "none eligible": a
        // queued batch behind a running-cap waits for the completion
        // notify below, even during shutdown, so no future ever breaks.
        if (stopping_ && total_queued_ == 0) return;
        queue_cv_.wait(lock);
      }
    }
    // Lifecycle stamps: queue-wait ended at the pop above; the engine
    // call is the propagate stage; delivering the reply is its own
    // stage (a slow future consumer or callback shows up here, not in
    // propagate).
    const auto popped_at = std::chrono::steady_clock::now();
    const Tenant::StageTimers& stages = job.tenant->stages_;
    if (stages.queue_wait) {
      stages.queue_wait->Record(MicrosBetween(job.admitted_at, popped_at));
    }
    // Stage spans ride the exact stamps the histograms read — a sampled
    // job adds span-ring appends but zero extra clock calls here.
    obs::Tracer* tracer = job.trace.sampled ? obs::ProcessTracer() : nullptr;
    auto span = [&](const char* name,
                    std::chrono::steady_clock::time_point from,
                    std::chrono::steady_clock::time_point to) {
      if (tracer == nullptr) return;
      tracer->Record(job.trace, tracer->NewSpanId(), job.trace.parent_span_id,
                     name, obs::Tracer::ToUs(from),
                     static_cast<uint64_t>(MicrosBetween(from, to)),
                     job.tenant->name());
    };
    span("queue_wait", job.admitted_at, popped_at);
    BatchReply reply;
    reply.tenant = job.tenant->name();
    reply.sequence = job.sequence;
    const auto propagate_start = std::chrono::steady_clock::now();
    if (stages.dispatch) {
      stages.dispatch->Record(MicrosBetween(popped_at, propagate_start));
    }
    span("dispatch", popped_at, propagate_start);
    // PropagateBatch already converts per-request exceptions to Status;
    // this guard is for anything outside that contract — one tenant's
    // failure must never std::terminate the whole service.
    try {
      reply.results =
          job.tenant->engine_->PropagateBatch(job.requests, job.trace);
    } catch (...) {
      reply.results.clear();
      for (size_t i = 0; i < job.requests.size(); ++i) {
        reply.results.emplace_back(
            Status::Internal("batch dispatch exception"));
      }
    }
    const auto propagate_end = std::chrono::steady_clock::now();
    if (stages.propagate) {
      stages.propagate->Record(MicrosBetween(propagate_start, propagate_end));
    }
    span("propagate", propagate_start, propagate_end);
    batches_completed_.fetch_add(1, std::memory_order_relaxed);
    if (!job.callback) {
      job.promise.set_value(std::move(reply));
    } else {
      // A throwing callback would std::terminate the dispatcher; the
      // contract says "must not throw", the catch makes a violation
      // lose one reply instead of the whole service.
      try {
        job.callback(std::move(reply));
      } catch (...) {
      }
    }
    if (stages.reply || tracer != nullptr) {
      const auto reply_end = std::chrono::steady_clock::now();
      if (stages.reply) {
        stages.reply->Record(MicrosBetween(propagate_end, reply_end));
      }
      span("reply", propagate_end, reply_end);
    }
    // Release the running slot only after the reply is delivered (a
    // batch "in flight" admission-wise is one whose caller hasn't heard
    // back yet), and notify: a queued batch of this tenant may have been
    // waiting on the cap, and the shutdown drain waits on exactly this.
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      job.tenant->admission_running.fetch_sub(1, std::memory_order_relaxed);
    }
    queue_cv_.notify_all();
  }
}

Result<uint64_t> CatalogService::Spill(Tenant& tenant, bool from_policy,
                                       uint64_t min_dirty) {
  std::lock_guard<std::mutex> lock(tenant.spill_mu);
  if (tenant.dropped.load(std::memory_order_relaxed)) {
    // A stale handle (the policy thread snapshots the registry before a
    // concurrent DropCatalog): the drop already took the final flush,
    // and the file may belong to a re-opened same-name tenant now.
    return tenant.last_spill_lines.load(std::memory_order_relaxed);
  }
  // The marker is read before the save: lines inserted while the save
  // runs miss the file but keep the tenant dirty, so the next pass
  // picks them up.
  const uint64_t changes =
      CacheChangeCounter(tenant.engine_->Stats().cache);
  const uint64_t dirty =
      changes - tenant.spill_marker.load(std::memory_order_relaxed);
  if (dirty < min_dirty) {
    return tenant.last_spill_lines.load(std::memory_order_relaxed);
  }
  CFDPROP_ASSIGN_OR_RETURN(
      uint64_t lines, tenant.engine_->SaveSnapshot(SnapshotPath(tenant.name_)));
  // Counters first, marker last with release ordering: a Stats() reader
  // that observes the new marker (dirty == 0, "settled") is then
  // guaranteed to also see the spill counters this spill bumped — so
  // "settled with policy_spills=0" can never be reported for a spill
  // that actually ran.
  tenant.last_spill_lines.store(lines, std::memory_order_relaxed);
  tenant.spills.fetch_add(1, std::memory_order_relaxed);
  if (from_policy) {
    tenant.policy_spills.fetch_add(1, std::memory_order_relaxed);
  }
  tenant.spill_marker.store(changes, std::memory_order_release);
  return lines;
}

Result<uint64_t> CatalogService::SpillTenant(const std::string& name) {
  if (options_.snapshot_dir.empty()) {
    return Status::Unsupported("service has no snapshot directory");
  }
  CFDPROP_ASSIGN_OR_RETURN(TenantHandle tenant, ResolveCatalog(name));
  return Spill(*tenant, /*from_policy=*/false, /*min_dirty=*/0);
}

Status CatalogService::DrainTenant(const std::string& name,
                                   std::chrono::milliseconds deadline) {
  CFDPROP_ASSIGN_OR_RETURN(TenantHandle tenant, ResolveCatalog(name));
  // Both gauges only move under queue_mu_, and the dispatcher releases
  // the running slot (then notifies) only after the reply is delivered —
  // so "queued + running == 0" here means every submitted batch has
  // answered its caller, not merely left the queue.
  auto drained = [&] {
    return tenant->admission_queued.load(std::memory_order_relaxed) +
               tenant->admission_running.load(std::memory_order_relaxed) ==
           0;
  };
  std::unique_lock<std::mutex> lock(queue_mu_);
  if (deadline.count() <= 0) {
    queue_cv_.wait(lock, drained);
    return Status::OK();
  }
  if (!queue_cv_.wait_for(lock, deadline, drained)) {
    return Status::DeadlineExceeded("tenant '" + name +
                                    "' still has batches in service after " +
                                    std::to_string(deadline.count()) + "ms");
  }
  return Status::OK();
}

Result<SerializedSnapshot> CatalogService::ExportTenantSnapshot(
    const std::string& name) {
  CFDPROP_ASSIGN_OR_RETURN(TenantHandle tenant, ResolveCatalog(name));
  return tenant->engine_->SerializeSnapshot();
}

void CatalogService::PolicyLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(policy_mu_);
      policy_cv_.wait_for(lock, options_.policy.interval,
                          [&] { return policy_stop_; });
      if (policy_stop_) return;
    }
    // Snapshot the handles first: spilling under registry_mu_ would
    // block OpenCatalog on snapshot I/O.
    std::vector<TenantHandle> tenants;
    {
      std::shared_lock<std::shared_mutex> lock(registry_mu_);
      tenants.reserve(tenants_.size());
      for (const auto& [name, tenant] : tenants_) {
        tenants.push_back(tenant);
      }
    }
    for (const TenantHandle& tenant : tenants) {
      // Best effort: an unwritable directory surfaces on the explicit
      // SpillTenant/DropCatalog paths; the background thread just keeps
      // trying (the tenant stays dirty).
      (void)Spill(*tenant, /*from_policy=*/true,
                  options_.policy.dirty_line_threshold);
    }
  }
}

void CatalogService::BindStageTimers(Tenant& tenant) {
  constexpr std::string_view kName = "cfdprop_stage_latency_us";
  constexpr std::string_view kHelp =
      "Per-stage batch lifecycle latency in microseconds";
  auto stage = [&](const char* stage_name) {
    return metrics_.GetHistogram(
        kName, kHelp,
        {{"tenant", tenant.name_}, {"stage", stage_name}});
  };
  tenant.stages_.admission = stage("admission");
  tenant.stages_.queue_wait = stage("queue_wait");
  tenant.stages_.dispatch = stage("dispatch");
  tenant.stages_.propagate = stage("propagate");
  tenant.stages_.reply = stage("reply");
}

std::vector<obs::MetricFamilySamples> CatalogService::CollectFamilies() const {
  // ONE Stats() snapshot feeds every family below — per-tenant values
  // across families come from the same read, and counters are monotone,
  // so consecutive scrapes never see a series move backwards.
  const ServiceStatsSnapshot s = Stats();

  std::vector<obs::MetricFamilySamples> out;
  auto family = [&out](std::string_view name, obs::MetricType type,
                       std::string_view help) -> obs::MetricFamilySamples& {
    out.push_back({std::string(name), type, std::string(help), {}});
    return out.back();
  };
  auto per_tenant = [&s, &family](
                        std::string_view name, obs::MetricType type,
                        std::string_view help,
                        double (*get)(const TenantStatsSnapshot&)) {
    auto& f = family(name, type, help);
    f.samples.reserve(s.tenants.size());
    for (const TenantStatsSnapshot& t : s.tenants) {
      f.samples.push_back({{{"tenant", t.name}}, get(t), std::nullopt});
    }
  };
  auto per_tenant_hist =
      [&s, &family](std::string_view name, std::string_view help,
                    const obs::HistogramSnapshot& (*get)(
                        const TenantStatsSnapshot&)) {
        auto& f = family(name, obs::MetricType::kHistogram, help);
        f.samples.reserve(s.tenants.size());
        for (const TenantStatsSnapshot& t : s.tenants) {
          f.samples.push_back({{{"tenant", t.name}}, 0.0, get(t)});
        }
      };
  auto u64 = [](uint64_t v) { return static_cast<double>(v); };

  using TS = TenantStatsSnapshot;
  using obs::MetricType;
  // Cache.
  per_tenant("cfdprop_cache_hits_total", MetricType::kCounter,
             "Cover-cache hits", +[](const TS& t) {
               return static_cast<double>(t.engine.cache.hits);
             });
  per_tenant("cfdprop_cache_misses_total", MetricType::kCounter,
             "Cover-cache misses", +[](const TS& t) {
               return static_cast<double>(t.engine.cache.misses);
             });
  per_tenant("cfdprop_cache_insertions_total", MetricType::kCounter,
             "Cover-cache insertions", +[](const TS& t) {
               return static_cast<double>(t.engine.cache.insertions);
             });
  per_tenant("cfdprop_cache_evictions_total", MetricType::kCounter,
             "Cover-cache LRU evictions", +[](const TS& t) {
               return static_cast<double>(t.engine.cache.evictions);
             });
  per_tenant("cfdprop_cache_invalidations_total", MetricType::kCounter,
             "Cover-cache lines dropped by sigma mutation",
             +[](const TS& t) {
               return static_cast<double>(t.engine.cache.invalidations);
             });
  per_tenant("cfdprop_cache_restored_total", MetricType::kCounter,
             "Cover-cache lines warm-started from snapshots",
             +[](const TS& t) {
               return static_cast<double>(t.engine.cache.restored);
             });
  per_tenant("cfdprop_cache_rejected_total", MetricType::kCounter,
             "Snapshot lines rejected at warm start", +[](const TS& t) {
               return static_cast<double>(t.engine.cache.rejected);
             });
  per_tenant("cfdprop_cache_entries", MetricType::kGauge,
             "Live cover-cache entries", +[](const TS& t) {
               return static_cast<double>(t.engine.cache.entries);
             });
  per_tenant("cfdprop_cache_budget", MetricType::kGauge,
             "Cover-cache capacity after the global split",
             +[](const TS& t) { return static_cast<double>(t.cache_budget); });
  // Engine serving.
  per_tenant("cfdprop_requests_total", MetricType::kCounter,
             "Propagation requests served", +[](const TS& t) {
               return static_cast<double>(t.engine.requests);
             });
  per_tenant("cfdprop_request_errors_total", MetricType::kCounter,
             "Requests that returned an error", +[](const TS& t) {
               return static_cast<double>(t.engine.errors);
             });
  per_tenant("cfdprop_engine_batches_total", MetricType::kCounter,
             "PropagateBatch calls run by the engine", +[](const TS& t) {
               return static_cast<double>(t.engine.batches);
             });
  per_tenant("cfdprop_union_requests_total", MetricType::kCounter,
             "SPCU (union) requests", +[](const TS& t) {
               return static_cast<double>(t.engine.union_requests);
             });
  per_tenant("cfdprop_disjunct_hits_total", MetricType::kCounter,
             "Union disjuncts served from per-SPC cache lines",
             +[](const TS& t) {
               return static_cast<double>(t.engine.disjunct_hits);
             });
  per_tenant("cfdprop_disjunct_misses_total", MetricType::kCounter,
             "Union disjuncts that had to be computed", +[](const TS& t) {
               return static_cast<double>(t.engine.disjunct_misses);
             });
  per_tenant("cfdprop_sigma_mutations_total", MetricType::kCounter,
             "AddCfd/RetractCfd mutations applied", +[](const TS& t) {
               return static_cast<double>(t.engine.sigma_mutations);
             });
  per_tenant("cfdprop_batch_parallel_efficiency", MetricType::kGauge,
             "PropagateBatch busy/wall ratio (par_eff)",
             +[](const TS& t) { return t.engine.BatchParallelism(); });
  // Admission + spill policy.
  per_tenant("cfdprop_admitted_total", MetricType::kCounter,
             "Batches admitted",
             +[](const TS& t) { return static_cast<double>(t.admitted); });
  per_tenant("cfdprop_admission_rejected_total", MetricType::kCounter,
             "Batches refused by admission control", +[](const TS& t) {
               return static_cast<double>(t.admission_rejected);
             });
  per_tenant("cfdprop_queued_batches", MetricType::kGauge,
             "Batches waiting in the tenant queue",
             +[](const TS& t) { return static_cast<double>(t.queued); });
  per_tenant("cfdprop_running_batches", MetricType::kGauge,
             "Batches held by a dispatcher",
             +[](const TS& t) { return static_cast<double>(t.running); });
  per_tenant("cfdprop_spills_total", MetricType::kCounter,
             "Cover-cache snapshot spills (policy + flush)",
             +[](const TS& t) { return static_cast<double>(t.spills); });
  per_tenant("cfdprop_policy_spills_total", MetricType::kCounter,
             "Spills initiated by the background policy thread",
             +[](const TS& t) { return static_cast<double>(t.policy_spills); });
  per_tenant("cfdprop_dirty_lines", MetricType::kGauge,
             "Cache changes since the tenant's last spill",
             +[](const TS& t) { return static_cast<double>(t.dirty_lines); });
  // Engine latency distributions (sums back total=/compute= in
  // ToString()).
  per_tenant_hist("cfdprop_request_latency_us",
                  "Per-request serve latency in microseconds",
                  +[](const TS& t) -> const obs::HistogramSnapshot& {
                    return t.engine.total_latency;
                  });
  per_tenant_hist("cfdprop_fingerprint_latency_us",
                  "Canonicalization + hashing latency in microseconds",
                  +[](const TS& t) -> const obs::HistogramSnapshot& {
                    return t.engine.fingerprint_latency;
                  });
  per_tenant_hist("cfdprop_compute_latency_us",
                  "PropagationCoverSPC compute latency in microseconds",
                  +[](const TS& t) -> const obs::HistogramSnapshot& {
                    return t.engine.compute_latency;
                  });
  // Service-level scalars.
  family("cfdprop_batches_submitted_total", MetricType::kCounter,
         "Batches admitted service-wide")
      .samples.push_back({{}, u64(s.batches_submitted), std::nullopt});
  family("cfdprop_batches_completed_total", MetricType::kCounter,
         "Batches completed service-wide")
      .samples.push_back({{}, u64(s.batches_completed), std::nullopt});
  family("cfdprop_batches_rejected_total", MetricType::kCounter,
         "Batches refused by admission control service-wide")
      .samples.push_back({{}, u64(s.batches_rejected), std::nullopt});
  family("cfdprop_tenants", MetricType::kGauge, "Open tenants")
      .samples.push_back(
          {{}, static_cast<double>(s.tenants.size()), std::nullopt});
  family("cfdprop_global_cache_budget", MetricType::kGauge,
         "Global cover-cache entry budget")
      .samples.push_back(
          {{}, static_cast<double>(s.global_cache_budget), std::nullopt});
  // Tracing health (span/drop/slow counters) joins the same scrape when
  // a process tracer is installed, so one METRICS fetch answers "is the
  // ring overflowing" without a TRACE_DUMP.
  if (obs::Tracer* tracer = obs::ProcessTracer()) {
    for (auto& f : tracer->CollectFamilies()) out.push_back(std::move(f));
  }
  return out;
}

ServiceStatsSnapshot CatalogService::Stats() const {
  ServiceStatsSnapshot s;
  s.global_cache_budget = options_.global_cache_budget;
  s.batches_submitted = batches_submitted_.load(std::memory_order_relaxed);
  s.batches_completed = batches_completed_.load(std::memory_order_relaxed);
  s.batches_rejected = batches_rejected_.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  s.tenants.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    TenantStatsSnapshot t;
    t.name = name;
    // Lock-free reads: the spill thread may be mid-SaveSnapshot holding
    // spill_mu, and stats must not wait out the disk write. The marker
    // loads FIRST (acquire, pairing with Spill's release store): seeing
    // a spill's marker implies seeing its counter bumps below.
    const uint64_t marker =
        tenant->spill_marker.load(std::memory_order_acquire);
    t.cache_budget = tenant->cache_budget();
    t.batches_submitted =
        tenant->batches_submitted.load(std::memory_order_relaxed);
    t.spills = tenant->spills.load(std::memory_order_relaxed);
    t.policy_spills = tenant->policy_spills.load(std::memory_order_relaxed);
    t.last_spill_lines =
        tenant->last_spill_lines.load(std::memory_order_relaxed);
    t.admitted = tenant->admission_admitted.load(std::memory_order_relaxed);
    t.admission_rejected =
        tenant->admission_rejected.load(std::memory_order_relaxed);
    t.queued = tenant->admission_queued.load(std::memory_order_relaxed);
    t.running = tenant->admission_running.load(std::memory_order_relaxed);
    t.engine = tenant->engine_->Stats();
    const uint64_t changes = CacheChangeCounter(t.engine.cache);
    t.dirty_lines = changes > marker ? changes - marker : 0;
    s.tenants.push_back(std::move(t));
  }
  return s;
}

}  // namespace cfdprop
