#include "src/service/catalog_service.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <utility>

namespace cfdprop {

namespace {

/// Tenant names become snapshot file names, so the alphabet is locked
/// down: [A-Za-z0-9_.-], first character alphanumeric or '_'. This
/// rules out path separators, ".." prefixes and empty names without any
/// escaping scheme to maintain.
Status ValidateTenantName(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  // Names become "<name>.ccsnap.tmp" files: far below NAME_MAX (255),
  // or every spill would fail with ENAMETOOLONG — and since a failed
  // flush fails DropCatalog, an unspillable tenant could never close.
  constexpr size_t kMaxTenantNameLen = 100;
  if (name.size() > kMaxTenantNameLen) {
    return Status::InvalidArgument("tenant name longer than 100 characters");
  }
  char first = name.front();
  if (!std::isalnum(static_cast<unsigned char>(first)) && first != '_') {
    return Status::InvalidArgument(
        "tenant name must start with a letter, digit or '_': '" + name + "'");
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return Status::InvalidArgument(
          "tenant name may only contain [A-Za-z0-9_.-]: '" + name + "'");
    }
  }
  return Status::OK();
}

/// Case-folded name for duplicate detection: tenant names become
/// snapshot file names, and on a case-insensitive filesystem
/// (macOS/Windows) "EU" and "eu" would silently share one .ccsnap file,
/// each spill overwriting the other's. The registry itself stays
/// case-preserving.
std::string FoldTenantName(const std::string& name) {
  std::string folded = name;
  for (char& c : folded) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return folded;
}

/// Monotone count of cache content changes: anything that adds or
/// removes a line. The delta against a tenant's spill_marker is its
/// dirtiness (restored lines count via `insertions`).
uint64_t CacheChangeCounter(const CacheStats& c) {
  return c.insertions + c.evictions + c.invalidations;
}

}  // namespace

std::string TenantStatsSnapshot::ToString() const {
  // Sized like EngineStatsSnapshot::ToString's buffer: the 100-char
  // name cap plus ten full-width counters must never truncate.
  char buf[576];
  std::snprintf(buf, sizeof(buf),
                "tenant %s: budget=%zu batches=%llu spills=%llu "
                "policy_spills=%llu last_spill_lines=%llu dirty=%llu "
                "admitted=%llu admission_rejected=%llu queued=%llu "
                "running=%llu ",
                name.c_str(), cache_budget,
                static_cast<unsigned long long>(batches_submitted),
                static_cast<unsigned long long>(spills),
                static_cast<unsigned long long>(policy_spills),
                static_cast<unsigned long long>(last_spill_lines),
                static_cast<unsigned long long>(dirty_lines),
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(admission_rejected),
                static_cast<unsigned long long>(queued),
                static_cast<unsigned long long>(running));
  return std::string(buf) + engine.ToString();
}

CatalogService::CatalogService(ServiceOptions options)
    : options_(std::move(options)) {
  // Same guard as the engine's worker pool: a dispatcher count past any
  // plausible hardware just burns thread stacks.
  constexpr size_t kMaxDispatchers = 256;
  options_.dispatcher_threads =
      std::clamp<size_t>(options_.dispatcher_threads, 1, kMaxDispatchers);
  // Threshold 0 would re-spill every clean tenant each interval (0
  // dirty lines >= 0); the meaningful minimum is "any change at all".
  options_.policy.dirty_line_threshold =
      std::max<uint64_t>(1, options_.policy.dirty_line_threshold);
  dispatchers_.reserve(options_.dispatcher_threads);
  for (size_t i = 0; i < options_.dispatcher_threads; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
  if (!options_.snapshot_dir.empty() &&
      options_.policy.interval.count() > 0) {
    policy_thread_ = std::thread([this] { PolicyLoop(); });
  }
}

CatalogService::~CatalogService() {
  // Stop serving first (dispatchers drain the queue before exiting, so
  // every submitted future still resolves), then the policy thread, and
  // only then take the final flush — its snapshots see the last batch's
  // insertions.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
  if (policy_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(policy_mu_);
      policy_stop_ = true;
    }
    policy_cv_.notify_all();
    policy_thread_.join();
  }
  if (!options_.snapshot_dir.empty()) {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    for (auto& [name, tenant] : tenants_) {
      // Any dirtiness flushes — the policy threshold only gates the
      // background thread, never whether a computed cover survives. A
      // destructor cannot return the error, so at least say what was
      // lost.
      auto spilled = Spill(*tenant, /*from_policy=*/false, /*min_dirty=*/1);
      if (!spilled.ok()) {
        std::fprintf(stderr,
                     "cfdprop: shutdown flush of tenant '%s' failed: %s\n",
                     name.c_str(), spilled.status().ToString().c_str());
      }
    }
  }
}

std::string CatalogService::SnapshotPath(const std::string& name) const {
  return options_.snapshot_dir + "/" + name + ".ccsnap";
}

void CatalogService::RebalanceBudgets(size_t num_tenants) {
  if (num_tenants == 0) return;
  const size_t share = ShareFor(num_tenants);
  for (auto& [name, tenant] : tenants_) {
    tenant->engine_->SetCacheBudget(share);
    // Record what the cache actually honors (shares round down to shard
    // multiples), so budget= in stats never overstates real capacity.
    tenant->cache_budget_.store(tenant->engine_->cache_capacity(),
                                std::memory_order_relaxed);
  }
}

Result<TenantHandle> CatalogService::OpenCatalog(
    const std::string& name, Catalog catalog,
    std::vector<std::vector<CFD>> sigmas) {
  CFDPROP_RETURN_NOT_OK(ValidateTenantName(name));
  // open_mu_ serializes the slow path (engine build, Σ minimization,
  // snapshot I/O) outside registry_mu_, and makes the duplicate check
  // race-free against a concurrent open of the same name.
  std::lock_guard<std::mutex> open_lock(open_mu_);
  size_t tenants_after;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    const std::string folded = FoldTenantName(name);
    for (const auto& [existing, tenant] : tenants_) {
      if (FoldTenantName(existing) == folded) {
        return Status::InvalidArgument(
            "tenant '" + name + "' collides with open tenant '" + existing +
            "' (names are case-folded: snapshot files must stay distinct "
            "on case-insensitive filesystems)");
      }
    }
    tenants_after = tenants_.size() + 1;
  }

  EngineOptions engine_options = options_.engine;
  engine_options.cache_capacity = ShareFor(tenants_after);
  auto engine =
      std::make_unique<Engine>(std::move(catalog), std::move(engine_options));
  for (auto& sigma : sigmas) {
    auto id = engine->RegisterSigma(std::move(sigma));
    if (!id.ok()) return id.status();
  }

  // The open is now certain to succeed (warm-start failures are
  // non-fatal), so shrink the existing tenants to the post-open share
  // BEFORE the snapshot load fills the new cache: the fresh engine
  // holds zero entries, so total live capacity never exceeds the
  // global budget — and a failed open above never evicted anything.
  {
    std::unique_lock<std::shared_mutex> lock(registry_mu_);
    RebalanceBudgets(tenants_after);
  }

  TenantHandle tenant(new Tenant(name, std::move(engine)));
  if (!options_.snapshot_dir.empty()) {
    // Warm start. Any failure — no file yet, version bump, changed Σ,
    // corruption — just means a cold cache; LoadSnapshot already
    // guarantees a rejected file restores nothing. Runs before the
    // tenant is published, so the pool-interning load never races
    // serving.
    (void)tenant->engine_->LoadSnapshot(SnapshotPath(name));
    // A freshly restored cache is not dirty: its content IS the file.
    tenant->spill_marker.store(
        CacheChangeCounter(tenant->engine_->Stats().cache),
        std::memory_order_relaxed);
  }

  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  tenants_.emplace(name, tenant);
  // The existing tenants were already resized to this share before the
  // build; only the newcomer's budget field needs recording (its engine
  // was constructed at exactly the share).
  tenant->cache_budget_.store(tenant->engine_->cache_capacity(),
                              std::memory_order_relaxed);
  return tenant;
}

Status CatalogService::DropCatalog(const std::string& name) {
  std::lock_guard<std::mutex> open_lock(open_mu_);
  TenantHandle tenant;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::NotFound("unknown tenant '" + name + "'");
    }
    tenant = it->second;
  }
  if (!options_.snapshot_dir.empty()) {
    // Final flush (any dirtiness, regardless of the policy threshold)
    // so a reopen warm-starts from everything this tenant computed —
    // BEFORE the registry erase, so a failed spill fails the drop and
    // the tenant stays open for a retry instead of losing its covers.
    // Batches still in flight hold the handle and complete, but lines
    // they insert after this point are not re-spilled.
    auto spilled = Spill(*tenant, /*from_policy=*/false, /*min_dirty=*/1);
    if (!spilled.ok()) return spilled.status();
  }
  {
    // Under spill_mu so it cannot interleave with an in-flight policy
    // spill: from here on, late batch insertions on this (now stale)
    // handle must never rewrite the snapshot file — a same-name tenant
    // may re-open and own it.
    std::lock_guard<std::mutex> spill_lock(tenant->spill_mu);
    tenant->dropped.store(true, std::memory_order_relaxed);
  }
  // The survivors are about to be raised to global/(N-1), so release
  // this tenant's share: shrink its capacity to the floor (bounding
  // what in-flight batches can re-insert) and drop the just-spilled
  // entries. Handed-out covers and the handle's engine stay valid.
  tenant->engine_->SetCacheBudget(0);
  tenant->engine_->ClearCache();
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  tenants_.erase(name);
  RebalanceBudgets(tenants_.size());
  return Status::OK();
}

Result<TenantHandle> CatalogService::ResolveCatalog(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + name + "'");
  }
  return it->second;
}

size_t CatalogService::num_tenants() const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  return tenants_.size();
}

std::vector<std::string> CatalogService::TenantNames() const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;  // std::map iterates sorted
}

Status CatalogService::EnqueueLocked(Job job) {
  if (stopping_) {
    return Status::Unsupported("service is shutting down");
  }
  Tenant& tenant = *job.tenant;
  const AdmissionOptions& adm = options_.admission;
  if (adm.max_inflight_batches > 0) {
    // In-service count = running + queued; both gauges only move under
    // queue_mu_, so this comparison — and therefore the admit/reject
    // pattern of a SubmitBatches burst — is deterministic.
    const uint64_t in_service =
        tenant.admission_running.load(std::memory_order_relaxed) +
        tenant.admission_queued.load(std::memory_order_relaxed);
    if (in_service >= adm.max_inflight_batches + adm.max_queued_batches) {
      tenant.admission_rejected.fetch_add(1, std::memory_order_relaxed);
      batches_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission: tenant '" + tenant.name() + "' is over its in-flight "
          "cap (" + std::to_string(adm.max_inflight_batches) + " running + " +
          std::to_string(adm.max_queued_batches) + " queued)");
    }
  }
  // Counters and the per-tenant sequence move only once the batch is
  // definitely accepted (and under queue_mu_, so a rejected submit
  // can never skew them or leave a sequence gap).
  tenant.admission_admitted.fetch_add(1, std::memory_order_relaxed);
  tenant.admission_queued.fetch_add(1, std::memory_order_relaxed);
  job.sequence =
      tenant.batches_submitted.fetch_add(1, std::memory_order_relaxed);
  queues_[tenant.name()].push_back(std::move(job));
  ++total_queued_;
  batches_submitted_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status CatalogService::Enqueue(const std::string& tenant_name, Job job) {
  CFDPROP_ASSIGN_OR_RETURN(job.tenant, ResolveCatalog(tenant_name));
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    CFDPROP_RETURN_NOT_OK(EnqueueLocked(std::move(job)));
  }
  queue_cv_.notify_one();
  return Status::OK();
}

Result<std::future<BatchReply>> CatalogService::SubmitBatch(
    const std::string& tenant, std::vector<Engine::Request> requests) {
  Job job;
  job.requests = std::move(requests);
  std::future<BatchReply> future = job.promise.get_future();
  CFDPROP_RETURN_NOT_OK(Enqueue(tenant, std::move(job)));
  return future;
}

std::vector<Result<std::future<BatchReply>>> CatalogService::SubmitBatches(
    const std::string& tenant,
    std::vector<std::vector<Engine::Request>> batches) {
  std::vector<Result<std::future<BatchReply>>> out;
  out.reserve(batches.size());
  auto resolved = ResolveCatalog(tenant);
  if (!resolved.ok()) {
    for (size_t i = 0; i < batches.size(); ++i) out.push_back(resolved.status());
    return out;
  }
  size_t admitted = 0;
  {
    // One lock hold across every decision: no dispatcher can pop or
    // complete a batch (both need queue_mu_) between the first and the
    // last admission check, so a burst's outcome depends only on the
    // caps and the in-service count at entry.
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (auto& requests : batches) {
      Job job;
      job.tenant = *resolved;
      job.requests = std::move(requests);
      std::future<BatchReply> future = job.promise.get_future();
      Status enq = EnqueueLocked(std::move(job));
      if (enq.ok()) {
        out.push_back(std::move(future));
        ++admitted;
      } else {
        out.push_back(std::move(enq));
      }
    }
  }
  for (size_t i = 0; i < admitted; ++i) queue_cv_.notify_one();
  return out;
}

Status CatalogService::SubmitBatch(const std::string& tenant,
                                   std::vector<Engine::Request> requests,
                                   std::function<void(BatchReply)> done) {
  if (!done) {
    return Status::InvalidArgument("SubmitBatch callback must be set");
  }
  Job job;
  job.requests = std::move(requests);
  job.callback = std::move(done);
  return Enqueue(tenant, std::move(job));
}

bool CatalogService::PopEligibleLocked(Job* job) {
  if (queues_.empty()) return false;
  const uint64_t running_cap = options_.admission.max_inflight_batches;
  // Round-robin: scan tenant queues starting just past the last tenant
  // served, wrapping — under saturation every tenant with queued work
  // gets a dispatcher in name order, regardless of who floods the queue.
  auto start = queues_.upper_bound(rr_cursor_);
  if (start == queues_.end()) start = queues_.begin();
  auto it = start;
  do {
    std::deque<Job>& q = it->second;
    if (!q.empty()) {
      Tenant& tenant = *q.front().tenant;
      // A tenant at its running cap keeps its queue until a completion
      // frees a slot (the completing dispatcher notifies).
      if (running_cap == 0 ||
          tenant.admission_running.load(std::memory_order_relaxed) <
              running_cap) {
        *job = std::move(q.front());
        q.pop_front();
        --total_queued_;
        tenant.admission_queued.fetch_sub(1, std::memory_order_relaxed);
        tenant.admission_running.fetch_add(1, std::memory_order_relaxed);
        rr_cursor_ = it->first;
        if (q.empty()) queues_.erase(it);
        return true;
      }
    }
    ++it;
    if (it == queues_.end()) it = queues_.begin();
  } while (it != start);
  return false;
}

void CatalogService::DispatcherLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      for (;;) {
        if (PopEligibleLocked(&job)) break;
        // Drained means *empty queues*, not just "none eligible": a
        // queued batch behind a running-cap waits for the completion
        // notify below, even during shutdown, so no future ever breaks.
        if (stopping_ && total_queued_ == 0) return;
        queue_cv_.wait(lock);
      }
    }
    BatchReply reply;
    reply.tenant = job.tenant->name();
    reply.sequence = job.sequence;
    // PropagateBatch already converts per-request exceptions to Status;
    // this guard is for anything outside that contract — one tenant's
    // failure must never std::terminate the whole service.
    try {
      reply.results = job.tenant->engine_->PropagateBatch(job.requests);
    } catch (...) {
      reply.results.clear();
      for (size_t i = 0; i < job.requests.size(); ++i) {
        reply.results.emplace_back(
            Status::Internal("batch dispatch exception"));
      }
    }
    batches_completed_.fetch_add(1, std::memory_order_relaxed);
    if (!job.callback) {
      job.promise.set_value(std::move(reply));
    } else {
      // A throwing callback would std::terminate the dispatcher; the
      // contract says "must not throw", the catch makes a violation
      // lose one reply instead of the whole service.
      try {
        job.callback(std::move(reply));
      } catch (...) {
      }
    }
    // Release the running slot only after the reply is delivered (a
    // batch "in flight" admission-wise is one whose caller hasn't heard
    // back yet), and notify: a queued batch of this tenant may have been
    // waiting on the cap, and the shutdown drain waits on exactly this.
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      job.tenant->admission_running.fetch_sub(1, std::memory_order_relaxed);
    }
    queue_cv_.notify_all();
  }
}

Result<uint64_t> CatalogService::Spill(Tenant& tenant, bool from_policy,
                                       uint64_t min_dirty) {
  std::lock_guard<std::mutex> lock(tenant.spill_mu);
  if (tenant.dropped.load(std::memory_order_relaxed)) {
    // A stale handle (the policy thread snapshots the registry before a
    // concurrent DropCatalog): the drop already took the final flush,
    // and the file may belong to a re-opened same-name tenant now.
    return tenant.last_spill_lines.load(std::memory_order_relaxed);
  }
  // The marker is read before the save: lines inserted while the save
  // runs miss the file but keep the tenant dirty, so the next pass
  // picks them up.
  const uint64_t changes =
      CacheChangeCounter(tenant.engine_->Stats().cache);
  const uint64_t dirty =
      changes - tenant.spill_marker.load(std::memory_order_relaxed);
  if (dirty < min_dirty) {
    return tenant.last_spill_lines.load(std::memory_order_relaxed);
  }
  CFDPROP_ASSIGN_OR_RETURN(
      uint64_t lines, tenant.engine_->SaveSnapshot(SnapshotPath(tenant.name_)));
  // Counters first, marker last with release ordering: a Stats() reader
  // that observes the new marker (dirty == 0, "settled") is then
  // guaranteed to also see the spill counters this spill bumped — so
  // "settled with policy_spills=0" can never be reported for a spill
  // that actually ran.
  tenant.last_spill_lines.store(lines, std::memory_order_relaxed);
  tenant.spills.fetch_add(1, std::memory_order_relaxed);
  if (from_policy) {
    tenant.policy_spills.fetch_add(1, std::memory_order_relaxed);
  }
  tenant.spill_marker.store(changes, std::memory_order_release);
  return lines;
}

Result<uint64_t> CatalogService::SpillTenant(const std::string& name) {
  if (options_.snapshot_dir.empty()) {
    return Status::Unsupported("service has no snapshot directory");
  }
  CFDPROP_ASSIGN_OR_RETURN(TenantHandle tenant, ResolveCatalog(name));
  return Spill(*tenant, /*from_policy=*/false, /*min_dirty=*/0);
}

void CatalogService::PolicyLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(policy_mu_);
      policy_cv_.wait_for(lock, options_.policy.interval,
                          [&] { return policy_stop_; });
      if (policy_stop_) return;
    }
    // Snapshot the handles first: spilling under registry_mu_ would
    // block OpenCatalog on snapshot I/O.
    std::vector<TenantHandle> tenants;
    {
      std::shared_lock<std::shared_mutex> lock(registry_mu_);
      tenants.reserve(tenants_.size());
      for (const auto& [name, tenant] : tenants_) {
        tenants.push_back(tenant);
      }
    }
    for (const TenantHandle& tenant : tenants) {
      // Best effort: an unwritable directory surfaces on the explicit
      // SpillTenant/DropCatalog paths; the background thread just keeps
      // trying (the tenant stays dirty).
      (void)Spill(*tenant, /*from_policy=*/true,
                  options_.policy.dirty_line_threshold);
    }
  }
}

ServiceStatsSnapshot CatalogService::Stats() const {
  ServiceStatsSnapshot s;
  s.global_cache_budget = options_.global_cache_budget;
  s.batches_submitted = batches_submitted_.load(std::memory_order_relaxed);
  s.batches_completed = batches_completed_.load(std::memory_order_relaxed);
  s.batches_rejected = batches_rejected_.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  s.tenants.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    TenantStatsSnapshot t;
    t.name = name;
    // Lock-free reads: the spill thread may be mid-SaveSnapshot holding
    // spill_mu, and stats must not wait out the disk write. The marker
    // loads FIRST (acquire, pairing with Spill's release store): seeing
    // a spill's marker implies seeing its counter bumps below.
    const uint64_t marker =
        tenant->spill_marker.load(std::memory_order_acquire);
    t.cache_budget = tenant->cache_budget();
    t.batches_submitted =
        tenant->batches_submitted.load(std::memory_order_relaxed);
    t.spills = tenant->spills.load(std::memory_order_relaxed);
    t.policy_spills = tenant->policy_spills.load(std::memory_order_relaxed);
    t.last_spill_lines =
        tenant->last_spill_lines.load(std::memory_order_relaxed);
    t.admitted = tenant->admission_admitted.load(std::memory_order_relaxed);
    t.admission_rejected =
        tenant->admission_rejected.load(std::memory_order_relaxed);
    t.queued = tenant->admission_queued.load(std::memory_order_relaxed);
    t.running = tenant->admission_running.load(std::memory_order_relaxed);
    t.engine = tenant->engine_->Stats();
    const uint64_t changes = CacheChangeCounter(t.engine.cache);
    t.dirty_lines = changes > marker ? changes - marker : 0;
    s.tenants.push_back(std::move(t));
  }
  return s;
}

}  // namespace cfdprop
