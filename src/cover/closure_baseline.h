// The textbook closure-based method for propagation covers of FDs via
// projection views ([23, 26]; discussed in Sections 1 and 4.1).
//
// Given FDs F over U and a projection pi_Y, the method computes the
// closure F+ — every FD X -> A with X subseteq U implied by F — and
// projects it onto Y, keeping the FDs whose attributes all lie in Y.
// This always costs O(2^|Y|) attribute-closure computations regardless
// of the output size, which is the motivation for RBR (src/cover/rbr.h):
// RBR is output-sensitive and polynomial in the common case.
//
// Implemented for plain FDs only (the classical setting of the baseline);
// bench_ablation_rbr_vs_closure compares the two.

#ifndef CFDPROP_COVER_CLOSURE_BASELINE_H_
#define CFDPROP_COVER_CLOSURE_BASELINE_H_

#include <vector>

#include "src/base/status.h"
#include "src/cfd/cfd.h"

namespace cfdprop {

struct ClosureBaselineOptions {
  /// Hard cap on |Y|: the method enumerates all 2^|Y| LHS candidates.
  size_t max_projection_attrs = 22;

  /// Emit only FDs with subset-minimal LHS (still a cover; much smaller).
  bool minimal_lhs_only = true;
};

/// Attribute-set closure X+ under plain FDs (the linear-time primitive of
/// the baseline). `fds` must be plain FDs over `arity` attributes.
Result<std::vector<AttrIndex>> AttributeClosure(
    const std::vector<CFD>& fds, const std::vector<AttrIndex>& x,
    size_t arity);

/// The textbook propagation cover of `fds` via the projection onto `y`:
/// all (LHS-minimal) FDs X -> A with X, A within `y` implied by `fds`.
Result<std::vector<CFD>> ClosureBasedProjectionCover(
    const std::vector<CFD>& fds, const std::vector<AttrIndex>& y,
    size_t arity, const ClosureBaselineOptions& options = {});

}  // namespace cfdprop

#endif  // CFDPROP_COVER_CLOSURE_BASELINE_H_
