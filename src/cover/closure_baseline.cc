#include "src/cover/closure_baseline.h"

#include <algorithm>

namespace cfdprop {

namespace {

Status CheckPlainFDs(const std::vector<CFD>& fds, size_t arity) {
  for (const CFD& c : fds) {
    CFDPROP_RETURN_NOT_OK(c.Validate(arity));
    if (!c.IsPlainFD()) {
      return Status::Unsupported(
          "closure baseline handles plain FDs only (its classical form)");
    }
  }
  return Status::OK();
}

/// Closure of the attribute set encoded by `in` (bit per attribute).
uint64_t CloseBits(const std::vector<CFD>& fds, uint64_t in) {
  uint64_t closure = in;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const CFD& f : fds) {
      uint64_t lhs_bits = 0;
      for (AttrIndex a : f.lhs) lhs_bits |= (1ull << a);
      if ((closure & lhs_bits) == lhs_bits &&
          (closure & (1ull << f.rhs)) == 0) {
        closure |= (1ull << f.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

}  // namespace

Result<std::vector<AttrIndex>> AttributeClosure(
    const std::vector<CFD>& fds, const std::vector<AttrIndex>& x,
    size_t arity) {
  CFDPROP_RETURN_NOT_OK(CheckPlainFDs(fds, arity));
  if (arity > 63) {
    return Status::Unsupported("attribute closure supports arity <= 63");
  }
  uint64_t bits = 0;
  for (AttrIndex a : x) {
    if (a >= arity) return Status::InvalidArgument("attribute out of range");
    bits |= (1ull << a);
  }
  bits = CloseBits(fds, bits);
  std::vector<AttrIndex> out;
  for (AttrIndex a = 0; a < arity; ++a) {
    if (bits & (1ull << a)) out.push_back(a);
  }
  return out;
}

Result<std::vector<CFD>> ClosureBasedProjectionCover(
    const std::vector<CFD>& fds, const std::vector<AttrIndex>& y,
    size_t arity, const ClosureBaselineOptions& options) {
  CFDPROP_RETURN_NOT_OK(CheckPlainFDs(fds, arity));
  if (arity > 63) {
    return Status::Unsupported("closure baseline supports arity <= 63");
  }
  if (y.size() > options.max_projection_attrs) {
    return Status::ResourceExhausted(
        "projection set too large for the 2^|Y| closure enumeration");
  }

  const uint64_t y_bits = [&] {
    uint64_t b = 0;
    for (AttrIndex a : y) b |= (1ull << a);
    return b;
  }();

  // Enumerate every subset X of Y, smallest first so that LHS-minimality
  // can be checked against previously emitted FDs.
  std::vector<uint64_t> subsets;
  subsets.reserve(1ull << y.size());
  for (uint64_t mask = 0; mask < (1ull << y.size()); ++mask) {
    uint64_t x_bits = 0;
    for (size_t i = 0; i < y.size(); ++i) {
      if (mask & (1ull << i)) x_bits |= (1ull << y[i]);
    }
    subsets.push_back(x_bits);
  }
  std::sort(subsets.begin(), subsets.end(),
            [](uint64_t a, uint64_t b) {
              int pa = __builtin_popcountll(a), pb = __builtin_popcountll(b);
              return pa != pb ? pa < pb : a < b;
            });

  // emitted[A] collects LHS bitsets already emitted for RHS A.
  std::vector<std::vector<uint64_t>> emitted(arity);
  std::vector<CFD> out;
  RelationId rel = fds.empty() ? kViewSchemaId : fds.front().relation;

  for (uint64_t x_bits : subsets) {
    uint64_t closure = CloseBits(fds, x_bits);
    uint64_t new_in_y = (closure & y_bits) & ~x_bits;
    for (AttrIndex a = 0; a < arity; ++a) {
      if ((new_in_y & (1ull << a)) == 0) continue;
      if (options.minimal_lhs_only) {
        bool subsumed = false;
        for (uint64_t prev : emitted[a]) {
          if ((prev & x_bits) == prev) {  // a smaller LHS already works
            subsumed = true;
            break;
          }
        }
        if (subsumed) continue;
      }
      emitted[a].push_back(x_bits);
      std::vector<AttrIndex> lhs;
      for (AttrIndex b = 0; b < arity; ++b) {
        if (x_bits & (1ull << b)) lhs.push_back(b);
      }
      Result<CFD> fd = CFD::FD(rel, std::move(lhs), a);
      if (fd.ok()) out.push_back(std::move(fd).value());
    }
  }
  return out;
}

}  // namespace cfdprop
