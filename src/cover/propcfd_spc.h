// PropCFD_SPC (Fig. 2): minimal propagation covers of CFDs via SPC views.
//
// Given source CFDs Sigma and an SPC view V = pi_Y(Rc x sigma_F(Ec)),
// computes a minimal cover of CFDp(Sigma, V), the set of all view CFDs
// propagated from Sigma via V, in the infinite-domain setting (the
// setting of Section 4; finite-domain attributes are treated as
// infinite, which keeps the output sound but possibly incomplete — the
// generalization is the paper's future work).
//
// Pipeline, following Fig. 2 line by line:
//   1. Sigma := MinCover(Sigma)                        (per source relation)
//   2. EQ := ComputeEQ(Es, Sigma); "⊥" => Lemma 4.5 pair
//   3. Sigma_V := renamed copies of Sigma per product atom
//   4. substitute class representatives (Lemma 4.3) and simplify with
//      class keys; keep only Y attributes in classes
//   5. Sigma_c := RBR(Sigma_V, attr(Es) - Y)           (projection)
//   6. Sigma_d := EQ2CFD(EQ)                           (domain constraints)
//   7. return MinCover(Sigma_c ++ Sigma_d)
//
// A union extension (Section 7 "future work") is provided as
// PropagationCoverSPCU: sound — every returned CFD is propagated — but
// not guaranteed complete across disjuncts.

#ifndef CFDPROP_COVER_PROPCFD_SPC_H_
#define CFDPROP_COVER_PROPCFD_SPC_H_

#include <vector>

#include "src/algebra/view.h"
#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/cfd/mincover.h"
#include "src/cover/compute_eq.h"
#include "src/cover/rbr.h"

namespace cfdprop {

struct PropCoverOptions {
  RBROptions rbr;
  MinCoverOptions mincover;

  /// Run the final MinCover (Fig. 2 line 13). Disable to inspect the raw
  /// RBR + EQ2CFD output.
  bool final_mincover = true;

  /// Simplify Sigma_V with class keys before RBR: constants forced by F
  /// make pattern conditions vacuous or CFDs redundant. This is the
  /// interaction the paper credits for runtimes *decreasing* as |F|
  /// grows (Fig. 7 discussion).
  bool simplify_with_keys = true;

  /// Run MinCover on the input Sigma (Fig. 2 line 1). Disable when the
  /// caller already minimized.
  bool input_mincover = true;
};

struct PropCoverResult {
  /// The propagation cover, over the view's output columns, tagged
  /// kViewSchemaId.
  std::vector<CFD> cover;

  /// True when ComputeEQ returned "⊥": the view is empty under every
  /// Sigma-satisfying source and `cover` is the Lemma 4.5 pair.
  bool always_empty = false;

  /// True when RBR hit its budget (OnBudget::kTruncate): `cover` is a
  /// sound subset of a propagation cover.
  bool truncated = false;

  // Introspection counters for the experimental study.
  size_t input_cfds = 0;      // |Sigma| after input MinCover
  size_t sigma_v_size = 0;    // |Sigma_V| handed to RBR
  size_t rbr_output_size = 0; // |Sigma_c| before the final MinCover
};

/// Computes a minimal propagation cover of `sigma` via `view`.
/// `sigma` holds CFDs tagged with source relation ids of `catalog`.
/// The catalog is non-const only for interning the Lemma 4.5 constants.
Result<PropCoverResult> PropagationCoverSPC(Catalog& catalog,
                                            const SPCView& view,
                                            std::vector<CFD> sigma,
                                            const PropCoverOptions& options =
                                                {});

/// Union extension: a *sound* propagation cover via an SPCU view — each
/// returned CFD is propagated via every disjunct — computed by filtering
/// the per-disjunct covers through the propagation test. Completeness
/// across disjuncts is not guaranteed (open problem, Section 7).
Result<PropCoverResult> PropagationCoverSPCU(Catalog& catalog,
                                             const SPCUView& view,
                                             std::vector<CFD> sigma,
                                             const PropCoverOptions& options =
                                                 {});

/// Fig. 2 line 1 as a standalone step: minimizes `sigma` per source
/// relation (grouped in first-seen order; deterministic output). The
/// engine runs this once at registration; the pipelines above run it
/// when options.input_mincover is set. Both paths share this function so
/// cached and one-shot results are built from byte-identical inputs.
Result<std::vector<CFD>> MinCoverSigma(const Catalog& catalog,
                                       std::vector<CFD> sigma,
                                       const MinCoverOptions& options = {});

/// The union-assembly half of PropagationCoverSPCU, split out so a
/// caller that already holds the per-disjunct SPC covers (e.g. the
/// engine's cover cache) can skip recomputing them: guards each
/// disjunct's CFDs with that disjunct's constant output columns, keeps
/// the candidates propagated via the whole union, and min-covers.
///
/// `per_disjunct[i]` must answer `view.disjuncts[i]` for `sigma` (the
/// introspection counters may be zero; only cover/always_empty/truncated
/// are read). `sigma` must be the CFD set — or an equivalent cover, such
/// as its MinCover — the per-disjunct results were computed from. The
/// output is byte-identical to PropagationCoverSPCU on the same inputs:
/// the assembly is deterministic in (view, sigma, per_disjunct).
Result<PropCoverResult> AssembleUnionCover(
    Catalog& catalog, const SPCUView& view, const std::vector<CFD>& sigma,
    std::vector<PropCoverResult> per_disjunct,
    const PropCoverOptions& options = {});

}  // namespace cfdprop

#endif  // CFDPROP_COVER_PROPCFD_SPC_H_
