// Reduction by Resolution (RBR) for CFDs — Fig. 3 and Proposition 4.4,
// extending Gottlob's PODS'87 algorithm from FDs to CFDs.
//
// Given CFDs Sigma over an attribute space U and a set X = U - Y of
// attributes to eliminate, RBR repeatedly "drops" an attribute A by
// shortcutting every pair phi1 = (W -> A, t1), phi2 = (AZ -> B, t2) with
// t1[A] <= t2[A] into the A-resolvent (WZ -> B, (t1[W] (+) t2[Z] || t2[B]))
// and then discarding all CFDs mentioning A. The result is a cover of
// Sigma+[Y], the CFDs implied by Sigma that mention only Y attributes —
// i.e. a propagation cover through the projection pi_Y.
//
// Unlike the textbook closure-based method (see closure_baseline.h),
// which is always exponential in |Sigma|, RBR is output-sensitive: it is
// polynomial whenever the intermediate covers stay polynomial, which is
// the common case (Section 4.2). The paper's Section 4.3 optimization —
// partitioned MinCover over intermediate results — is implemented here.

#ifndef CFDPROP_COVER_RBR_H_
#define CFDPROP_COVER_RBR_H_

#include <optional>
#include <vector>

#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/cfd/mincover.h"

namespace cfdprop {

struct RBROptions {
  /// Apply MinCover to fixed-size partitions of the intermediate cover
  /// after each dropped attribute (Section 4.3). Removes redundant CFDs
  /// "to an extent, without increasing the worst-case complexity".
  bool intermediate_mincover = true;

  /// Partition size k0 for the intermediate minimization.
  size_t mincover_partition = 64;

  /// Covers can be inherently exponential (Example 4.1). When the
  /// intermediate cover exceeds this bound the algorithm either fails
  /// (kError) or returns the subset computed so far (kTruncate) — the
  /// polynomial-time heuristic described in the introduction.
  size_t max_cover_size = 1u << 20;
  enum class OnBudget { kError, kTruncate };
  OnBudget on_budget = OnBudget::kError;
};

struct RBRResult {
  std::vector<CFD> cover;
  /// True when max_cover_size hit under OnBudget::kTruncate: `cover` is a
  /// sound subset of a propagation cover, not necessarily complete.
  bool truncated = false;
  /// True when elimination derived an unconditional contradiction (two
  /// constants forced on one attribute for every tuple): the relation
  /// admits no tuples at all. Callers treat this like the "⊥" outcome of
  /// ComputeEQ (Lemma 4.5).
  bool inconsistent = false;
};

/// The A-resolvent of phi1 = (W -> A, t1) and phi2 = (AZ -> B, t2)
/// (both over the same attribute space):
/// nullopt when undefined (t1[A] !<= t2[A], oplus undefined, the result
/// still mentions `a`, or the result is trivial).
std::optional<CFD> Resolvent(const CFD& phi1, const CFD& phi2, AttrIndex a);

/// The forbidden-pattern A-resolvent — a CFD-specific rule with no FD
/// counterpart. Two producers (W1 -> A, (p1 || c1)), (W2 -> A,
/// (p2 || c2)) with distinct constants c1 != c2 forbid every tuple
/// matching p1 (+) p2: such a tuple would need A = c1 and A = c2. That
/// constraint survives the projection that drops A, encoded as the
/// forbidden-pattern CFD (W1W2 -> C, (p1 (+) p2 || f)) where C is an
/// attribute with a constant pattern e and f != e. Returns nullopt when
/// no conflict arises (equal constants, oplus undefined, result mentions
/// `a`); sets *unconditional when the merged pattern matches every tuple
/// (the relation is inconsistent).
std::optional<CFD> ForbiddenResolvent(const CFD& phi1, const CFD& phi2,
                                      AttrIndex a, bool* unconditional);

/// Encodes "no tuple matches the pattern (attrs, pats)" as a
/// forbidden-pattern CFD: (attrs -> C, (pats || f)) for some attribute C
/// whose pattern is a constant e and some f != e. `alt1`/`alt2` are two
/// known-distinct constants to draw f from. Merges duplicate attributes
/// via pattern-min; returns nullopt when the merge is undefined (the
/// pattern already matches nothing). Sets *unconditional when the
/// pattern has no constant entry, i.e. it matches every tuple and the
/// relation is inconsistent.
std::optional<CFD> EncodeForbiddenPattern(RelationId relation,
                                          std::vector<AttrIndex> attrs,
                                          std::vector<PatternValue> pats,
                                          Value alt1, Value alt2,
                                          bool* unconditional);

/// Projects a forbidden-pattern CFD `phif` (whose LHS mentions `a` with
/// constant e) through the elimination of `a`, using a producer
/// `phip` = (W -> a, (w || e)) that forces a = e: the combined pattern
/// (phif.lhs - a) (+) W is then forbidden without mentioning `a`.
/// Returns nullopt when the rule does not apply or the merged pattern is
/// unsatisfiable; sets *unconditional as in EncodeForbiddenPattern.
std::optional<CFD> ForbiddenProjection(const CFD& phif, const CFD& phip,
                                       AttrIndex a, bool* unconditional);

/// Runs RBR, eliminating the attributes of `drop` from `sigma`.
/// All CFDs must share one relation tag and be over `arity` attributes.
/// No special-x CFDs are allowed (PropCFD_SPC substitutes them away
/// before projection handling).
Result<RBRResult> RBR(std::vector<CFD> sigma,
                      const std::vector<AttrIndex>& drop, size_t arity,
                      const RBROptions& options = {});

}  // namespace cfdprop

#endif  // CFDPROP_COVER_RBR_H_
