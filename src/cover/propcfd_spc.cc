#include "src/cover/propcfd_spc.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "src/propagation/propagation.h"

namespace cfdprop {

namespace {

/// Fig. 2 lines 5-6: rename source CFDs onto the Ec column space, one
/// copy per product atom using that relation.
std::vector<CFD> RenameToEcColumns(const Catalog& catalog,
                                   const SPCView& view,
                                   const std::vector<CFD>& sigma) {
  std::vector<CFD> out;
  for (size_t j = 0; j < view.atoms.size(); ++j) {
    ColumnId base = view.AtomBase(catalog, j);
    for (const CFD& c : sigma) {
      if (c.relation != view.atoms[j]) continue;
      CFD renamed = c;
      renamed.relation = kViewSchemaId;
      for (AttrIndex& a : renamed.lhs) a += base;
      renamed.rhs += base;
      out.push_back(std::move(renamed));
    }
  }
  return out;
}

/// Representative choice per Fig. 2 line 8: the class representative,
/// preferring a column that is projected into the output.
std::vector<ColumnId> ChooseReps(const Catalog& catalog, const SPCView& view,
                                 const EqClasses& eq) {
  const size_t u = view.NumEcColumns(catalog);
  std::vector<bool> projected(u, false);
  for (const OutputColumn& o : view.output) {
    if (!o.is_constant) projected[o.ec_column] = true;
  }
  // Per class root: the smallest projected member if any, else the root.
  std::vector<ColumnId> choice(u, kNoAttr);
  for (ColumnId c = 0; c < u; ++c) {
    ColumnId root = eq.Rep(c);
    if (projected[c] && (choice[root] == kNoAttr || c < choice[root])) {
      choice[root] = c;
    }
  }
  std::vector<ColumnId> rep(u);
  for (ColumnId c = 0; c < u; ++c) {
    ColumnId root = eq.Rep(c);
    rep[c] = choice[root] != kNoAttr ? choice[root] : root;
  }
  return rep;
}

/// Fig. 2 line 9 (Lemma 4.3) + key simplification: substitutes class
/// representatives into a CFD and simplifies against class keys.
/// Returns nullopt when the CFD becomes vacuous/trivial/redundant
/// (implied by the Sigma_d CFDs emitted by EQ2CFD).
std::optional<CFD> SubstituteAndSimplify(const CFD& c,
                                         const std::vector<ColumnId>& rep,
                                         const EqClasses& eq,
                                         bool simplify_with_keys) {
  std::vector<AttrIndex> lhs;
  std::vector<PatternValue> pats;
  lhs.reserve(c.lhs.size());
  pats.reserve(c.lhs.size());
  for (size_t i = 0; i < c.lhs.size(); ++i) {
    ColumnId col = rep[c.lhs[i]];
    const PatternValue& p = c.lhs_pats[i];
    Value key = eq.Key(col);
    if (simplify_with_keys && key != kNoValue) {
      if (p.is_constant() && p.value() != key) {
        // The column is always `key` on the view, so no view tuple
        // matches this LHS: the CFD is vacuous (and implied by Sigma_d).
        return std::nullopt;
      }
      // '_' or the key itself: the condition holds on every view tuple;
      // drop the attribute (agreement on a constant column is automatic).
      continue;
    }
    lhs.push_back(col);
    pats.push_back(p);
  }

  ColumnId rhs = rep[c.rhs];
  PatternValue rhs_pat = c.rhs_pat;
  Value rhs_key = eq.Key(rhs);
  if (simplify_with_keys && rhs_key != kNoValue) {
    if (rhs_pat.is_wildcard() ||
        (rhs_pat.is_constant() && rhs_pat.value() == rhs_key)) {
      // RHS agreement/binding already guaranteed by the constant column.
      return std::nullopt;
    }
    // Constant different from the key: the CFD asserts that no view
    // tuple matches its LHS at all. Re-encode as a forbidden-pattern
    // CFD over the LHS so the constraint survives the projection even
    // when `rhs` itself is projected out.
    bool unconditional = false;
    std::optional<CFD> forbidden = EncodeForbiddenPattern(
        kViewSchemaId, std::move(lhs), std::move(pats), rhs_pat.value(),
        rhs_key, &unconditional);
    // `unconditional` cannot hold here: ComputeEQ chased the tableau
    // with sigma, so an all-wildcard LHS would have conflicted there.
    return forbidden;
  }

  Result<CFD> made =
      CFD::Make(kViewSchemaId, std::move(lhs), std::move(pats), rhs, rhs_pat);
  if (!made.ok()) {
    // Two LHS occurrences of one class carry incomparable constants: the
    // LHS matches no view tuple (the class columns are equal), vacuous.
    return std::nullopt;
  }
  if (made.value().IsTrivial()) return std::nullopt;
  return std::move(made).value();
}

}  // namespace

Result<std::vector<CFD>> MinCoverSigma(const Catalog& catalog,
                                       std::vector<CFD> sigma,
                                       const MinCoverOptions& options) {
  // Fig. 2 line 1: minimize the input per source relation, grouped in
  // first-seen order so the output order is deterministic.
  std::unordered_map<RelationId, std::vector<CFD>> groups;
  std::vector<RelationId> order;
  for (CFD& c : sigma) {
    if (groups.find(c.relation) == groups.end()) order.push_back(c.relation);
    groups[c.relation].push_back(std::move(c));
  }
  std::vector<CFD> out;
  for (RelationId r : order) {
    CFDPROP_ASSIGN_OR_RETURN(
        std::vector<CFD> mc,
        MinCover(std::move(groups[r]), catalog.relation(r).arity(),
                 /*domains=*/{}, options));
    for (CFD& c : mc) out.push_back(std::move(c));
  }
  return out;
}

Result<PropCoverResult> PropagationCoverSPC(Catalog& catalog,
                                            const SPCView& view,
                                            std::vector<CFD> sigma,
                                            const PropCoverOptions& options) {
  CFDPROP_RETURN_NOT_OK(view.Validate(catalog));
  for (const CFD& c : sigma) {
    if (c.relation >= catalog.num_relations()) {
      return Status::InvalidArgument("source CFD with unknown relation");
    }
    CFDPROP_RETURN_NOT_OK(c.Validate(catalog.relation(c.relation).arity()));
  }

  PropCoverResult result;

  // Line 1: Sigma := MinCover(Sigma).
  if (options.input_mincover) {
    CFDPROP_ASSIGN_OR_RETURN(
        sigma, MinCoverSigma(catalog, std::move(sigma), options.mincover));
  }
  result.input_cfds = sigma.size();

  // Line 2: EQ := ComputeEQ(Es, Sigma).
  CFDPROP_ASSIGN_OR_RETURN(EqClasses eq, ComputeEQ(catalog, view, sigma));

  // Lines 3-4: inconsistency => the Lemma 4.5 pair.
  if (eq.inconsistent) {
    result.cover = MakeEmptyViewCover(catalog, view);
    result.always_empty = true;
    return result;
  }

  // Lines 5-6: Sigma_V := renamed copies per product atom.
  std::vector<CFD> sigma_v = RenameToEcColumns(catalog, view, sigma);

  // Lines 7-10: substitute representatives, apply domain constraints.
  std::vector<ColumnId> rep = ChooseReps(catalog, view, eq);
  {
    std::vector<CFD> substituted;
    substituted.reserve(sigma_v.size());
    for (const CFD& c : sigma_v) {
      std::optional<CFD> s =
          SubstituteAndSimplify(c, rep, eq, options.simplify_with_keys);
      if (s.has_value()) substituted.push_back(std::move(*s));
    }
    sigma_v = DedupeAndDropTrivial(std::move(substituted));
  }

  const size_t u = view.NumEcColumns(catalog);
  if (!options.simplify_with_keys) {
    // Keys were not folded into the CFDs; expose them to RBR as
    // empty-LHS constant CFDs so resolution can use them.
    for (ColumnId c = 0; c < u; ++c) {
      if (rep[c] != c) continue;
      Value key = eq.Key(c);
      if (key == kNoValue) continue;
      CFD k;
      k.relation = kViewSchemaId;
      k.rhs = c;
      k.rhs_pat = PatternValue::Constant(key);
      sigma_v.push_back(std::move(k));
    }
  }
  result.sigma_v_size = sigma_v.size();

  // Line 11: Sigma_c := RBR(Sigma_V, attr(Es) - Y). Only attributes that
  // actually occur in Sigma_V need dropping: absent attributes generate
  // no resolvents and nothing to remove.
  std::vector<bool> keep(u, false);
  for (const OutputColumn& o : view.output) {
    if (!o.is_constant) keep[rep[o.ec_column]] = true;
  }
  std::vector<bool> mentioned(u, false);
  for (const CFD& c : sigma_v) {
    for (AttrIndex a : c.lhs) mentioned[a] = true;
    mentioned[c.rhs] = true;
  }
  std::vector<AttrIndex> drop;
  for (ColumnId c = 0; c < u; ++c) {
    if (mentioned[c] && !keep[c]) drop.push_back(c);
  }
  CFDPROP_ASSIGN_OR_RETURN(RBRResult rbr,
                           RBR(std::move(sigma_v), drop, u, options.rbr));
  if (rbr.inconsistent) {
    // Elimination derived an unconditional contradiction that the
    // ComputeEQ chase missed: the view is always empty (Lemma 4.5).
    result.cover = MakeEmptyViewCover(catalog, view);
    result.always_empty = true;
    return result;
  }
  result.truncated = rbr.truncated;
  result.rbr_output_size = rbr.cover.size();

  // Map Ec representatives to output column positions.
  std::unordered_map<ColumnId, AttrIndex> rep_to_out;
  for (size_t i = 0; i < view.output.size(); ++i) {
    const OutputColumn& o = view.output[i];
    if (o.is_constant) continue;
    rep_to_out.emplace(rep[o.ec_column], static_cast<AttrIndex>(i));
  }
  std::vector<CFD> cover;
  cover.reserve(rbr.cover.size());
  for (const CFD& c : rbr.cover) {
    std::vector<AttrIndex> lhs;
    std::vector<PatternValue> pats;
    bool ok = true;
    for (size_t i = 0; i < c.lhs.size(); ++i) {
      auto it = rep_to_out.find(c.lhs[i]);
      if (it == rep_to_out.end()) {
        ok = false;  // defensive; RBR leaves only kept columns
        break;
      }
      lhs.push_back(it->second);
      pats.push_back(c.lhs_pats[i]);
    }
    auto rit = rep_to_out.find(c.rhs);
    if (!ok || rit == rep_to_out.end()) continue;
    Result<CFD> made = CFD::Make(kViewSchemaId, std::move(lhs),
                                 std::move(pats), rit->second, c.rhs_pat);
    if (made.ok() && !made.value().IsTrivial()) {
      cover.push_back(std::move(made).value());
    }
  }

  // Line 12: Sigma_d := EQ2CFD(EQ).
  std::vector<CFD> sigma_d = EQ2CFD(catalog, view, eq);
  for (CFD& c : sigma_d) cover.push_back(std::move(c));

  // Line 13: MinCover(Sigma_c ++ Sigma_d).
  if (options.final_mincover) {
    CFDPROP_ASSIGN_OR_RETURN(
        cover, MinCover(std::move(cover), view.OutputArity(), /*domains=*/{},
                        options.mincover));
  } else {
    cover = DedupeAndDropTrivial(std::move(cover));
  }
  result.cover = std::move(cover);
  return result;
}

Result<PropCoverResult> PropagationCoverSPCU(Catalog& catalog,
                                             const SPCUView& view,
                                             std::vector<CFD> sigma,
                                             const PropCoverOptions& options) {
  CFDPROP_RETURN_NOT_OK(view.Validate(catalog));
  if (view.disjuncts.size() == 1) {
    return PropagationCoverSPC(catalog, view.disjuncts[0], std::move(sigma),
                               options);
  }

  // Line 1 hoisted above the disjunct loop: minimize once and hand every
  // disjunct (and the cross-disjunct propagation filter) the same
  // minimized set — exactly what the engine does at registration, so the
  // cached and one-shot paths assemble from identical per-disjunct
  // inputs.
  PropCoverOptions disjunct_options = options;
  if (options.input_mincover) {
    CFDPROP_ASSIGN_OR_RETURN(
        sigma, MinCoverSigma(catalog, std::move(sigma), options.mincover));
    disjunct_options.input_mincover = false;
  }
  std::vector<PropCoverResult> per_disjunct;
  per_disjunct.reserve(view.disjuncts.size());
  for (const SPCView& disjunct : view.disjuncts) {
    CFDPROP_ASSIGN_OR_RETURN(
        PropCoverResult r,
        PropagationCoverSPC(catalog, disjunct, sigma, disjunct_options));
    per_disjunct.push_back(std::move(r));
  }
  return AssembleUnionCover(catalog, view, sigma, std::move(per_disjunct),
                            options);
}

Result<PropCoverResult> AssembleUnionCover(
    Catalog& catalog, const SPCUView& view, const std::vector<CFD>& sigma,
    std::vector<PropCoverResult> per_disjunct,
    const PropCoverOptions& options) {
  if (per_disjunct.size() != view.disjuncts.size()) {
    return Status::InvalidArgument(
        "per-disjunct results do not match the union view");
  }
  if (view.disjuncts.size() == 1) {
    // Parity with PropagationCoverSPCU's single-disjunct delegation.
    return std::move(per_disjunct[0]);
  }

  // Candidates: the union of per-disjunct covers, each CFD additionally
  // guarded by its disjunct's constant output columns. Within a disjunct
  // those columns are constant, so MinCover strips conditions on them —
  // but across the union they are exactly the discriminators that make a
  // CFD propagatable (the CC = '44' of phi1 in Example 1.1).
  PropCoverResult result;
  std::vector<CFD> candidates;
  size_t empty_disjuncts = 0;
  for (size_t j = 0; j < view.disjuncts.size(); ++j) {
    const SPCView& disjunct = view.disjuncts[j];
    PropCoverResult& r = per_disjunct[j];
    result.truncated |= r.truncated;
    result.input_cfds = std::max(result.input_cfds, r.input_cfds);
    result.sigma_v_size += r.sigma_v_size;
    result.rbr_output_size += r.rbr_output_size;
    if (r.always_empty) {
      ++empty_disjuncts;
      continue;  // an always-empty disjunct constrains nothing
    }
    std::vector<std::pair<AttrIndex, Value>> guards;
    for (size_t i = 0; i < disjunct.output.size(); ++i) {
      if (disjunct.output[i].is_constant) {
        guards.emplace_back(static_cast<AttrIndex>(i),
                            disjunct.output[i].value);
      }
    }
    for (CFD& c : r.cover) {
      if (!guards.empty() && !c.is_special_x()) {
        std::vector<AttrIndex> lhs = c.lhs;
        std::vector<PatternValue> pats = c.lhs_pats;
        for (const auto& [attr, value] : guards) {
          if (c.FindLhs(attr) == SIZE_MAX) {
            lhs.push_back(attr);
            pats.push_back(PatternValue::Constant(value));
          }
        }
        Result<CFD> guarded = CFD::Make(kViewSchemaId, std::move(lhs),
                                        std::move(pats), c.rhs, c.rhs_pat);
        if (guarded.ok() && !guarded.value().IsTrivial()) {
          candidates.push_back(std::move(guarded).value());
        }
      }
      candidates.push_back(std::move(c));
    }
  }
  if (empty_disjuncts == view.disjuncts.size()) {
    result.cover = MakeEmptyViewCover(catalog, view.disjuncts[0]);
    result.always_empty = true;
    return result;
  }
  candidates = DedupeAndDropTrivial(std::move(candidates));

  // Keep the candidates propagated via the whole union (the cross-
  // disjunct pair checks are what per-disjunct covers cannot see).
  std::vector<CFD> kept;
  for (CFD& c : candidates) {
    CFDPROP_ASSIGN_OR_RETURN(bool prop, IsPropagated(catalog, view, sigma, c));
    if (prop) kept.push_back(std::move(c));
  }
  if (options.final_mincover) {
    CFDPROP_ASSIGN_OR_RETURN(
        kept, MinCover(std::move(kept), view.OutputArity(), /*domains=*/{},
                       options.mincover));
  }
  result.cover = std::move(kept);
  return result;
}

}  // namespace cfdprop
