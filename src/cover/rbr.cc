#include "src/cover/rbr.h"

#include <algorithm>
#include <unordered_set>

namespace cfdprop {

std::optional<CFD> Resolvent(const CFD& phi1, const CFD& phi2, AttrIndex a) {
  if (phi1.rhs != a) return std::nullopt;
  size_t pos = phi2.FindLhs(a);
  if (pos == SIZE_MAX) return std::nullopt;
  // Shortcutting into phi2's own RHS at A would keep A around.
  if (phi2.rhs == a) return std::nullopt;
  // Order condition t1[A] <= t2[A] (Fig. 3 line 6).
  if (!PatternValue::LessEq(phi1.rhs_pat, phi2.lhs_pats[pos])) {
    return std::nullopt;
  }

  // Build W ++ Z with parallel patterns; CFD::Make merges overlapping
  // attributes via pattern-min (the (+) operator) and fails when the min
  // is undefined.
  std::vector<AttrIndex> lhs = phi1.lhs;
  std::vector<PatternValue> pats = phi1.lhs_pats;
  for (size_t i = 0; i < phi2.lhs.size(); ++i) {
    if (i == pos) continue;
    lhs.push_back(phi2.lhs[i]);
    pats.push_back(phi2.lhs_pats[i]);
  }
  Result<CFD> made = CFD::Make(phi1.relation, std::move(lhs),
                               std::move(pats), phi2.rhs, phi2.rhs_pat);
  if (!made.ok()) return std::nullopt;  // oplus undefined
  CFD out = std::move(made).value();
  // A in W (phi1's own LHS) would survive into the resolvent; such
  // resolvents are discarded with the rest of the A-mentioning CFDs.
  if (out.Mentions(a)) return std::nullopt;
  if (out.IsTrivial()) return std::nullopt;
  return out;
}

std::optional<CFD> EncodeForbiddenPattern(RelationId relation,
                                          std::vector<AttrIndex> attrs,
                                          std::vector<PatternValue> pats,
                                          Value alt1, Value alt2,
                                          bool* unconditional) {
  *unconditional = false;
  // Merge duplicates first via a throwaway Make (wildcard RHS on an
  // arbitrary attribute keeps the LHS untouched apart from the merge).
  // An undefined merge means the pattern matches nothing: no constraint.
  if (attrs.empty()) {
    *unconditional = true;
    return std::nullopt;
  }
  const AttrIndex probe_rhs = attrs[0];
  Result<CFD> merged = CFD::Make(relation, std::move(attrs),
                                 std::move(pats), probe_rhs,
                                 PatternValue::Wildcard());
  if (!merged.ok()) return std::nullopt;
  std::vector<AttrIndex> m_attrs = std::move(merged.value().lhs);
  std::vector<PatternValue> m_pats = std::move(merged.value().lhs_pats);

  size_t c_pos = SIZE_MAX;
  for (size_t i = 0; i < m_pats.size(); ++i) {
    if (m_pats[i].is_constant()) {
      c_pos = i;
      break;
    }
  }
  if (c_pos == SIZE_MAX) {
    *unconditional = true;  // matches every tuple: relation inconsistent
    return std::nullopt;
  }
  AttrIndex c_attr = m_attrs[c_pos];
  Value e = m_pats[c_pos].value();
  Value f = alt1 != e ? alt1 : alt2;

  Result<CFD> made = CFD::Make(relation, std::move(m_attrs),
                               std::move(m_pats), c_attr,
                               PatternValue::Constant(f));
  if (!made.ok()) return std::nullopt;
  if (made.value().IsTrivial()) return std::nullopt;
  return std::move(made).value();
}

std::optional<CFD> ForbiddenResolvent(const CFD& phi1, const CFD& phi2,
                                      AttrIndex a, bool* unconditional) {
  *unconditional = false;
  if (phi1.rhs != a || phi2.rhs != a) return std::nullopt;
  if (!phi1.rhs_pat.is_constant() || !phi2.rhs_pat.is_constant()) {
    return std::nullopt;
  }
  if (phi1.rhs_pat.value() == phi2.rhs_pat.value()) return std::nullopt;

  std::vector<AttrIndex> lhs = phi1.lhs;
  std::vector<PatternValue> pats = phi1.lhs_pats;
  lhs.insert(lhs.end(), phi2.lhs.begin(), phi2.lhs.end());
  pats.insert(pats.end(), phi2.lhs_pats.begin(), phi2.lhs_pats.end());

  std::optional<CFD> out =
      EncodeForbiddenPattern(phi1.relation, std::move(lhs), std::move(pats),
                             phi1.rhs_pat.value(), phi2.rhs_pat.value(),
                             unconditional);
  if (out.has_value() && out->Mentions(a)) return std::nullopt;
  return out;
}

std::optional<CFD> ForbiddenProjection(const CFD& phif, const CFD& phip,
                                       AttrIndex a, bool* unconditional) {
  *unconditional = false;
  if (!phif.IsForbiddenPattern()) return std::nullopt;
  size_t a_pos = phif.FindLhs(a);
  if (a_pos == SIZE_MAX || !phif.lhs_pats[a_pos].is_constant()) {
    return std::nullopt;
  }
  Value e = phif.lhs_pats[a_pos].value();
  // phip must force a = e on its matches.
  if (phip.rhs != a || !phip.rhs_pat.is_constant() ||
      phip.rhs_pat.value() != e) {
    return std::nullopt;
  }

  // Merged forbidden pattern: (phif.lhs - a) (+) phip.lhs.
  std::vector<AttrIndex> lhs;
  std::vector<PatternValue> pats;
  for (size_t i = 0; i < phif.lhs.size(); ++i) {
    if (i == a_pos) continue;
    lhs.push_back(phif.lhs[i]);
    pats.push_back(phif.lhs_pats[i]);
  }
  lhs.insert(lhs.end(), phip.lhs.begin(), phip.lhs.end());
  pats.insert(pats.end(), phip.lhs_pats.begin(), phip.lhs_pats.end());

  // Two known-distinct constants from phif's own conflict.
  size_t r_pos = phif.FindLhs(phif.rhs);
  Value alt1 = phif.rhs_pat.value();
  Value alt2 = phif.lhs_pats[r_pos].value();

  std::optional<CFD> out = EncodeForbiddenPattern(
      phif.relation, std::move(lhs), std::move(pats), alt1, alt2,
      unconditional);
  if (out.has_value() && out->Mentions(a)) return std::nullopt;
  return out;
}

namespace {

/// Incrementally maintained producer/consumer degrees per attribute,
/// used to pick the drop order: next is the attribute with the fewest
/// potential resolvents (#CFDs with RHS A times #CFDs with A in LHS).
/// Any order is correct (Proposition 4.4); this one keeps intermediate
/// covers small, and keeping the counts incremental avoids rescanning
/// the cover for every remaining attribute (quadratic at Fig. 8 scale).
class AttrDegrees {
 public:
  AttrDegrees(size_t arity, const std::vector<CFD>& gamma)
      : producers_(arity, 0), consumers_(arity, 0) {
    for (const CFD& c : gamma) Add(c);
  }

  void Add(const CFD& c) {
    ++producers_[c.rhs];
    for (AttrIndex a : c.lhs) ++consumers_[a];
  }
  void Remove(const CFD& c) {
    --producers_[c.rhs];
    for (AttrIndex a : c.lhs) --consumers_[a];
  }

  AttrIndex PickNext(const std::vector<AttrIndex>& remaining) const {
    AttrIndex best = remaining.front();
    uint64_t best_score = UINT64_MAX;
    for (AttrIndex a : remaining) {
      uint64_t score = static_cast<uint64_t>(producers_[a]) * consumers_[a];
      if (score < best_score) {
        best_score = score;
        best = a;
      }
    }
    return best;
  }

 private:
  std::vector<uint32_t> producers_;
  std::vector<uint32_t> consumers_;
};

/// Partitioned MinCover (Section 4.3): minimize fixed-size chunks,
/// O(|Gamma| * k0^2) implication calls.
Result<std::vector<CFD>> PartitionedMinCover(std::vector<CFD> gamma,
                                             size_t arity, size_t k0) {
  if (gamma.size() <= k0) {
    return RemoveRedundantCFDs(std::move(gamma), arity);
  }
  std::vector<CFD> out;
  out.reserve(gamma.size());
  for (size_t begin = 0; begin < gamma.size(); begin += k0) {
    size_t end = std::min(begin + k0, gamma.size());
    std::vector<CFD> chunk(std::make_move_iterator(gamma.begin() + begin),
                           std::make_move_iterator(gamma.begin() + end));
    CFDPROP_ASSIGN_OR_RETURN(chunk,
                             RemoveRedundantCFDs(std::move(chunk), arity));
    for (CFD& c : chunk) out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

Result<RBRResult> RBR(std::vector<CFD> sigma,
                      const std::vector<AttrIndex>& drop, size_t arity,
                      const RBROptions& options) {
  for (const CFD& c : sigma) {
    CFDPROP_RETURN_NOT_OK(c.Validate(arity));
    if (c.is_special_x()) {
      return Status::InvalidArgument(
          "RBR does not accept special-x CFDs; substitute representatives "
          "first (PropCFD_SPC line 9)");
    }
  }

  RBRResult result;
  std::vector<CFD> gamma = DedupeAndDropTrivial(std::move(sigma));
  std::vector<AttrIndex> remaining = drop;
  AttrDegrees degrees(arity, gamma);
  std::unordered_set<CFD, CFDHash> gamma_set(gamma.begin(), gamma.end());
  // Watermark for the growth-triggered intermediate minimization.
  size_t last_minimized_size = gamma.size();

  while (!remaining.empty()) {
    AttrIndex a = degrees.PickNext(remaining);
    remaining.erase(std::find(remaining.begin(), remaining.end(), a));

    // C := all nontrivial A-resolvents, including forbidden-pattern
    // resolvents from pairs of conflicting constant producers.
    std::vector<CFD> resolvents;
    std::unordered_set<CFD, CFDHash> seen;
    auto over_budget = [&] {
      return gamma.size() + resolvents.size() > options.max_cover_size;
    };
    for (size_t i = 0; i < gamma.size() && !result.truncated; ++i) {
      const CFD& phi1 = gamma[i];
      if (phi1.rhs != a) continue;
      for (size_t j = 0; j < gamma.size(); ++j) {
        const CFD& phi2 = gamma[j];
        std::optional<CFD> r = Resolvent(phi1, phi2, a);
        if (r.has_value() && seen.insert(*r).second) {
          resolvents.push_back(std::move(*r));
        }
        if (j > i) {
          bool unconditional = false;
          std::optional<CFD> fb =
              ForbiddenResolvent(phi1, phi2, a, &unconditional);
          if (unconditional) {
            result.inconsistent = true;
            result.cover.clear();
            return result;
          }
          if (fb.has_value() && seen.insert(*fb).second) {
            resolvents.push_back(std::move(*fb));
          }
        }
        // Project forbidden patterns mentioning `a` through producers
        // that force the matching constant (phi1 is the producer here).
        {
          bool unconditional = false;
          std::optional<CFD> fp =
              ForbiddenProjection(phi2, phi1, a, &unconditional);
          if (unconditional) {
            result.inconsistent = true;
            result.cover.clear();
            return result;
          }
          if (fp.has_value() && seen.insert(*fp).second) {
            resolvents.push_back(std::move(*fp));
          }
        }
        if (over_budget()) {
          if (options.on_budget == RBROptions::OnBudget::kError) {
            return Status::ResourceExhausted(
                "RBR intermediate cover exceeded max_cover_size");
          }
          result.truncated = true;
          break;
        }
      }
    }

    // Gamma := Gamma[U - {A}] ++ C.
    std::erase_if(gamma, [&](const CFD& c) {
      if (!c.Mentions(a)) return false;
      degrees.Remove(c);
      gamma_set.erase(c);
      return true;
    });
    for (CFD& r : resolvents) {
      if (gamma_set.insert(r).second) {
        degrees.Add(r);
        gamma.push_back(std::move(r));
      }
    }

    // Growth-triggered intermediate minimization (Section 4.3): the
    // point of MinCover-ing intermediate results is to bound resolution
    // blowups, so run it when the cover has grown by a partition's worth
    // of CFDs since the last minimization — amortized O(|Gamma| * k0^2)
    // overall, and never on the (common) shrinking drops.
    if (options.intermediate_mincover &&
        gamma.size() > options.mincover_partition &&
        gamma.size() >= last_minimized_size + options.mincover_partition) {
      CFDPROP_ASSIGN_OR_RETURN(
          gamma, PartitionedMinCover(std::move(gamma), arity,
                                     options.mincover_partition));
      degrees = AttrDegrees(arity, gamma);
      gamma_set = std::unordered_set<CFD, CFDHash>(gamma.begin(),
                                                   gamma.end());
      last_minimized_size = gamma.size();
    }
    if (result.truncated) break;
  }

  // Truncation may have left CFDs that mention un-dropped attributes;
  // remove them so the output is always over Y only.
  if (result.truncated) {
    for (AttrIndex a : remaining) {
      std::erase_if(gamma, [a](const CFD& c) { return c.Mentions(a); });
    }
  }

  result.cover = std::move(gamma);
  return result;
}

}  // namespace cfdprop
