// ComputeEQ and EQ2CFD (Section 4.2/4.3, Figs. 2 and 4).
//
// ComputeEQ partitions the Ec columns of an SPC view into equivalence
// classes EQ: columns A, B share a class iff A = B is derivable from the
// selection condition F together with the domain-constraint content of
// the source CFDs; each class may carry a constant key(eq) when some
// member is forced to a constant. A key conflict (two distinct constants
// in one class) means the view is empty for every source satisfying
// Sigma ("⊥", Lemma 4.5).
//
// We derive EQ by chasing the single-copy view tableau with Sigma, which
// subsumes the paper's syntactic fixpoint (it also catches interactions
// such as Example 3.1, where a source CFD forces a column constant that
// contradicts a selection constant).
//
// EQ2CFD converts the classes into view CFDs (Lemma 4.2): a keyed class
// contributes RV(A -> A, (_ || key)) per member; an unkeyed class with
// >= 2 output members contributes equality CFDs RV(A -> B, (x || x)).

#ifndef CFDPROP_COVER_COMPUTE_EQ_H_
#define CFDPROP_COVER_COMPUTE_EQ_H_

#include <vector>

#include "src/algebra/view.h"
#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/schema/schema.h"

namespace cfdprop {

/// The result of ComputeEQ: per-Ec-column representative and key.
class EqClasses {
 public:
  /// True when the view is empty under every Sigma-satisfying source
  /// (the "⊥" outcome of ComputeEQ).
  bool inconsistent = false;

  /// rep[c] = representative column of c's class (rep[rep[c]] == rep[c]).
  std::vector<ColumnId> rep;

  /// key[c] = constant forced on c's class, or kNoValue. Stored per
  /// column; all members of a class agree.
  std::vector<Value> key;

  ColumnId Rep(ColumnId c) const { return rep[c]; }
  Value Key(ColumnId c) const { return key[c]; }
  bool SameClass(ColumnId a, ColumnId b) const { return rep[a] == rep[b]; }
};

/// Computes the attribute equivalence classes of `view` under `sigma`
/// (source CFDs tagged with catalog relation ids).
Result<EqClasses> ComputeEQ(const Catalog& catalog, const SPCView& view,
                            const std::vector<CFD>& sigma);

/// Converts EQ (plus the Rc constant columns) into view CFDs over the
/// output schema of `view`. CFDs are tagged kViewSchemaId with attribute
/// indices = output column positions.
std::vector<CFD> EQ2CFD(const Catalog& catalog, const SPCView& view,
                        const EqClasses& eq);

/// The Lemma 4.5 pair: two conflicting constant CFDs on output column 0
/// asserting the view is always empty.
std::vector<CFD> MakeEmptyViewCover(Catalog& catalog, const SPCView& view);

/// True iff `cover` is a Lemma 4.5 pair, i.e. marks an always-empty view
/// (two constant CFDs forcing distinct constants on the same column).
bool IsEmptyViewCover(const std::vector<CFD>& cover);

}  // namespace cfdprop

#endif  // CFDPROP_COVER_COMPUTE_EQ_H_
