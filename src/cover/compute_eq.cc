#include "src/cover/compute_eq.h"

#include <unordered_map>

#include "src/chase/chase.h"
#include "src/tableau/tableau.h"

namespace cfdprop {

Result<EqClasses> ComputeEQ(const Catalog& catalog, const SPCView& view,
                            const std::vector<CFD>& sigma) {
  SymbolicInstance inst;
  CFDPROP_ASSIGN_OR_RETURN(ViewTableau tableau,
                           BuildViewTableau(catalog, view, inst));
  CFDPROP_ASSIGN_OR_RETURN(ChaseOutcome outcome, Chase(inst, sigma));

  EqClasses eq;
  if (outcome == ChaseOutcome::kContradiction) {
    eq.inconsistent = true;
    return eq;
  }

  const size_t u = tableau.ec_cells.size();
  eq.rep.resize(u);
  eq.key.resize(u, kNoValue);

  // Canonical representative per chase class: the smallest column id.
  std::unordered_map<CellId, ColumnId> root_to_rep;
  for (ColumnId c = 0; c < u; ++c) {
    CellId root = inst.Find(tableau.ec_cells[c]);
    auto [it, inserted] = root_to_rep.emplace(root, c);
    eq.rep[c] = it->second;
    auto key = inst.ConstOf(tableau.ec_cells[c]);
    if (key.has_value()) eq.key[c] = *key;
  }
  return eq;
}

std::vector<CFD> EQ2CFD(const Catalog& catalog, const SPCView& view,
                        const EqClasses& eq) {
  (void)catalog;
  std::vector<CFD> out;

  // Group projected output columns by their EQ class representative.
  std::unordered_map<ColumnId, std::vector<AttrIndex>> by_class;
  for (size_t i = 0; i < view.output.size(); ++i) {
    const OutputColumn& o = view.output[i];
    if (o.is_constant) {
      // The Rc part: each constant column yields RV(A -> A, (_ || a)).
      out.push_back(CFD::ConstantColumn(kViewSchemaId,
                                        static_cast<AttrIndex>(i), o.value));
    } else {
      by_class[eq.Rep(o.ec_column)].push_back(static_cast<AttrIndex>(i));
    }
  }

  for (auto& [rep, members] : by_class) {
    Value key = eq.Key(rep);
    if (key != kNoValue) {
      // Keyed class: every member column is the constant key(eq).
      for (AttrIndex a : members) {
        out.push_back(CFD::ConstantColumn(kViewSchemaId, a, key));
      }
    } else if (members.size() > 1) {
      // Unkeyed class: members are pairwise equal; a chain through the
      // first member suffices (MinCover would thin the full clique).
      for (size_t i = 1; i < members.size(); ++i) {
        out.push_back(CFD::Equality(kViewSchemaId, members[0], members[i]));
      }
    }
  }
  return out;
}

std::vector<CFD> MakeEmptyViewCover(Catalog& catalog, const SPCView& view) {
  (void)view;
  // Lemma 4.5: an always-empty view satisfies every CFD; two conflicting
  // constant CFDs on one column imply them all.
  Value a = catalog.pool().Intern("0");
  Value b = catalog.pool().Intern("1");
  return {CFD::ConstantColumn(kViewSchemaId, 0, a),
          CFD::ConstantColumn(kViewSchemaId, 0, b)};
}

bool IsEmptyViewCover(const std::vector<CFD>& cover) {
  // Two unconditional constant CFDs forcing distinct values on the same
  // column (canonical form: empty LHS).
  for (size_t i = 0; i < cover.size(); ++i) {
    const CFD& c1 = cover[i];
    if (!c1.rhs_pat.is_constant() || !c1.lhs.empty()) continue;
    for (size_t j = i + 1; j < cover.size(); ++j) {
      const CFD& c2 = cover[j];
      if (c2.rhs != c1.rhs || !c2.rhs_pat.is_constant() || !c2.lhs.empty()) {
        continue;
      }
      if (c2.rhs_pat.value() != c1.rhs_pat.value()) return true;
    }
  }
  return false;
}

}  // namespace cfdprop
