// Observability primitives: named counters, gauges, and log-bucketed
// latency histograms behind a MetricsRegistry that renders Prometheus-
// style text exposition.
//
// Hot-path discipline matches EngineStats: every Record()/Add() is a
// relaxed atomic fetch_add — no locks, no CAS loops (histogram value
// sums accumulate in integer nanoseconds precisely so `atomic<double>`
// CAS retries never appear on the serving path). Registration (Get*)
// takes a mutex and is meant for setup/open paths only; the returned
// handles stay valid for the registry's lifetime, and re-registering
// the same name+labels returns the same handle, so a tenant that is
// dropped and re-opened keeps accumulating the same monotone series.
//
// Histogram buckets are fixed at construction: power-of-two microsecond
// upper bounds 1us, 2us, 4us, ... 2^24us (~16.8s), plus +Inf. Fixed
// boundaries keep Record() branch-free of allocation and make quantile
// interpolation deterministic — the unit tests compute expected
// p50/p95/p99 by hand from the same bounds.
//
// Snapshot semantics: HistogramSnapshot derives `count` from the very
// bucket values it read, so "sum of buckets == count" holds in every
// snapshot by construction even while writers race; counters are
// monotone, so consecutive renders can only move values up.

#ifndef CFDPROP_OBS_METRICS_H_
#define CFDPROP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cfdprop {
namespace obs {

/// Finite latency buckets: upper bounds 2^0 .. 2^24 microseconds.
inline constexpr size_t kFiniteLatencyBuckets = 25;
/// Finite buckets plus the +Inf overflow bucket.
inline constexpr size_t kLatencyBuckets = kFiniteLatencyBuckets + 1;

/// One histogram's state at a point in time. `buckets` are per-bucket
/// (non-cumulative) counts; `count` is their sum — equal by
/// construction, never torn apart by concurrent writers.
struct HistogramSnapshot {
  std::array<uint64_t, kLatencyBuckets> buckets{};
  uint64_t count = 0;
  double sum_us = 0;

  /// Upper bound of finite bucket `i` in microseconds (2^i).
  static double BucketUpperBoundUs(size_t i) {
    return std::ldexp(1.0, static_cast<int>(i));
  }

  /// Quantile estimate by linear interpolation inside the target
  /// bucket: with `target = q * count` ranks, the answer lies
  /// `(target - ranks_below) / bucket_count` of the way between the
  /// bucket's lower and upper bound. Values landing in +Inf clamp to
  /// the largest finite bound. Deterministic given the recorded set.
  double Quantile(double q) const;
};

/// Monotone counter. Add/Increment are single relaxed fetch_adds.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins gauge (atomic store, no CAS).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed latency histogram. Record() is lock-free: one bucket
/// fetch_add plus one sum fetch_add (nanoseconds, so the sum is a plain
/// integer add). When constructed with `buckets_enabled = false` the
/// bucket increment is skipped and only the sum accumulates — the
/// "registry-disabled" path BM_MetricsOverhead compares against.
class Histogram {
 public:
  explicit Histogram(bool buckets_enabled = true)
      : buckets_enabled_(buckets_enabled) {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  void Record(double us) {
    sum_ns_.fetch_add(ToNanos(us), std::memory_order_relaxed);
    if (buckets_enabled_) {
      buckets_[BucketFor(us)].fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Smallest bucket whose upper bound admits `us`. Exact powers of two
  /// land in their own bucket (4us -> le=4, not le=8).
  static size_t BucketFor(double us) {
    if (!(us > 1.0)) return 0;  // also absorbs NaN and negatives
    int exp = 0;
    const double mantissa = std::frexp(us, &exp);  // us = m * 2^exp
    size_t idx = static_cast<size_t>(mantissa == 0.5 ? exp - 1 : exp);
    return idx < kFiniteLatencyBuckets ? idx : kLatencyBuckets - 1;
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    for (size_t i = 0; i < kLatencyBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      s.count += s.buckets[i];
    }
    s.sum_us =
        static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1000.0;
    return s;
  }

  /// The value-sum alone (microseconds) — the accumulator role this
  /// class takes over from EngineStats' old CAS-looped atomic<double>.
  double SumUs() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
           1000.0;
  }

 private:
  static uint64_t ToNanos(double us) {
    return us > 0 ? static_cast<uint64_t>(us * 1000.0 + 0.5) : 0;
  }

  std::array<std::atomic<uint64_t>, kLatencyBuckets> buckets_;
  std::atomic<uint64_t> sum_ns_{0};
  const bool buckets_enabled_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

std::string_view MetricTypeName(MetricType type);

/// Ordered label set; rendered as {k1="v1",k2="v2"} in declaration
/// order.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// One rendered series: a scalar value for counters/gauges, a full
/// snapshot for histograms.
struct Sample {
  LabelSet labels;
  double value = 0;
  std::optional<HistogramSnapshot> histogram;
};

/// A family (one name, one type) and its series, as produced by a
/// collector callback at render time.
struct MetricFamilySamples {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::string help;
  std::vector<Sample> samples;
};

/// Owns registered metrics and renders them (plus any collector-
/// supplied families) as text exposition. Thread-safe; Get* handles
/// remain valid until the registry is destroyed.
class MetricsRegistry {
 public:
  /// `enabled = false` builds histograms on the sum-only path and lets
  /// instrumentation sites skip optional clock reads.
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// Idempotent: the same name+labels returns the same handle. A name
  /// reused with a different metric type returns nullptr.
  Counter* GetCounter(std::string_view name, std::string_view help,
                      LabelSet labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  LabelSet labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          LabelSet labels = {});

  /// Registers a render-time callback contributing whole families
  /// (e.g. a service exporting an existing stats snapshot). Returns an
  /// id for RemoveCollector — anything whose lifetime is shorter than
  /// the registry's MUST remove its collector before dying.
  size_t AddCollector(std::function<std::vector<MetricFamilySamples>()> fn);
  void RemoveCollector(size_t id);

  /// Prometheus-style text exposition: families sorted by name,
  /// series sorted by label string; `# HELP`/`# TYPE` per family;
  /// histograms expand to cumulative `_bucket{le=...}` series plus
  /// `_sum` and `_count`. Each metric is read exactly once per render.
  std::string RenderText() const;

 private:
  struct Child {
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::map<std::string, Child> children;  // keyed by rendered label text
  };

  Family* FamilyFor(std::string_view name, std::string_view help,
                    MetricType type);

  const bool enabled_;
  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::map<size_t, std::function<std::vector<MetricFamilySamples>()>>
      collectors_;
  size_t next_collector_id_ = 1;
};

/// Renders one label set as it appears in exposition text (no braces):
/// `k1="v1",k2="v2"` with `\\`, `"`, and newline escaped.
std::string RenderLabels(const LabelSet& labels);

}  // namespace obs
}  // namespace cfdprop

#endif  // CFDPROP_OBS_METRICS_H_
