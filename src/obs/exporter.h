// Text-exposition entry points: RenderMetricsText is the library-level
// scrape (the METRICS wire frame and --metrics-dump both funnel into
// it), and ParseMetricsText reads the format back — used by the
// round-trip tests and by anything that wants to diff two scrapes.

#ifndef CFDPROP_OBS_EXPORTER_H_
#define CFDPROP_OBS_EXPORTER_H_

#include <map>
#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/obs/metrics.h"

namespace cfdprop {
namespace obs {

/// Renders the registry (owned metrics + collectors) as Prometheus-
/// style text exposition. One registry snapshot per call.
std::string RenderMetricsText(const MetricsRegistry& registry);

/// A parsed scrape: series are keyed by their exact exposition text up
/// to the value (`name` or `name{labels}`), types by family name.
struct ParsedMetrics {
  std::map<std::string, std::string> types;
  std::map<std::string, double> values;

  /// 0.0 when absent; exposition never carries negative series here.
  double Value(std::string_view series) const {
    auto it = values.find(std::string(series));
    return it == values.end() ? 0.0 : it->second;
  }
  bool Has(std::string_view series) const {
    return values.count(std::string(series)) > 0;
  }
};

/// Parses text exposition as produced by RenderMetricsText. Unknown
/// comment lines are skipped; a malformed series line is an
/// InvalidArgument naming the line.
Result<ParsedMetrics> ParseMetricsText(std::string_view text);

}  // namespace obs
}  // namespace cfdprop

#endif  // CFDPROP_OBS_EXPORTER_H_
