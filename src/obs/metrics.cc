#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "src/base/strfmt.h"

namespace cfdprop {
namespace obs {

namespace {

/// Exposition value formatting: integers print exactly (CI greps match
/// `cfdprop_cache_hits_total{...} 21` literally), everything else
/// prints with round-trip precision so render -> parse -> compare is
/// lossless.
std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
    return StrPrintf("%lld", static_cast<long long>(v));
  }
  return StrPrintf("%.17g", v);
}

std::string EscapeLabelValue(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// `le` bound for finite buckets renders as an exact integer
/// microsecond count (the bounds are 2^0..2^24).
std::string FormatLe(size_t bucket_index) {
  if (bucket_index >= kFiniteLatencyBuckets) return "+Inf";
  return StrPrintf(
      "%llu", static_cast<unsigned long long>(1ull << bucket_index));
}

void RenderFamily(const MetricFamilySamples& family, std::string& out) {
  if (family.samples.empty()) return;
  if (!family.help.empty()) {
    out += "# HELP " + family.name + " " + family.help + "\n";
  }
  out += "# TYPE " + family.name + " ";
  out += MetricTypeName(family.type);
  out += "\n";
  for (const Sample& s : family.samples) {
    const std::string labels = RenderLabels(s.labels);
    if (family.type == MetricType::kHistogram && s.histogram) {
      const HistogramSnapshot& h = *s.histogram;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < kLatencyBuckets; ++i) {
        cumulative += h.buckets[i];
        out += family.name + "_bucket{";
        if (!labels.empty()) out += labels + ",";
        out += "le=\"" + FormatLe(i) + "\"} " +
               StrPrintf("%llu", static_cast<unsigned long long>(cumulative)) +
               "\n";
      }
      out += family.name + "_sum";
      if (!labels.empty()) out += "{" + labels + "}";
      out += " " + FormatValue(h.sum_us) + "\n";
      out += family.name + "_count";
      if (!labels.empty()) out += "{" + labels + "}";
      out += " " + StrPrintf("%llu", static_cast<unsigned long long>(h.count)) +
             "\n";
    } else {
      out += family.name;
      if (!labels.empty()) out += "{" + labels + "}";
      out += " " + FormatValue(s.value) + "\n";
    }
  }
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double below = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target) {
      if (i >= kFiniteLatencyBuckets) {
        // +Inf bucket: clamp to the largest finite bound.
        return BucketUpperBoundUs(kFiniteLatencyBuckets - 1);
      }
      const double lower = i == 0 ? 0.0 : BucketUpperBoundUs(i - 1);
      const double upper = BucketUpperBoundUs(i);
      const double frac =
          (target - below) / static_cast<double>(buckets[i]);
      return lower + frac * (upper - lower);
    }
  }
  return BucketUpperBoundUs(kFiniteLatencyBuckets - 1);
}

std::string_view MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

std::string RenderLabels(const LabelSet& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  return out;
}

MetricsRegistry::Family* MetricsRegistry::FamilyFor(std::string_view name,
                                                    std::string_view help,
                                                    MetricType type) {
  auto [it, inserted] = families_.try_emplace(std::string(name));
  Family& family = it->second;
  if (inserted) {
    family.type = type;
    family.help = std::string(help);
  } else if (family.type != type) {
    return nullptr;
  }
  return &family;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help, LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FamilyFor(name, help, MetricType::kCounter);
  if (!family) return nullptr;
  Child& child = family->children[RenderLabels(labels)];
  if (!child.counter) {
    child.labels = std::move(labels);
    child.counter = std::make_unique<Counter>();
  }
  return child.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FamilyFor(name, help, MetricType::kGauge);
  if (!family) return nullptr;
  Child& child = family->children[RenderLabels(labels)];
  if (!child.gauge) {
    child.labels = std::move(labels);
    child.gauge = std::make_unique<Gauge>();
  }
  return child.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         LabelSet labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FamilyFor(name, help, MetricType::kHistogram);
  if (!family) return nullptr;
  Child& child = family->children[RenderLabels(labels)];
  if (!child.histogram) {
    child.labels = std::move(labels);
    child.histogram = std::make_unique<Histogram>(enabled_);
  }
  return child.histogram.get();
}

size_t MetricsRegistry::AddCollector(
    std::function<std::vector<MetricFamilySamples>()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void MetricsRegistry::RemoveCollector(size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

std::string MetricsRegistry::RenderText() const {
  // One snapshot per render: every owned metric is loaded exactly once,
  // every collector runs exactly once, and only then is text assembled.
  // Collectors are copied out and run unlocked — a collector may call
  // into code (e.g. CatalogService::Stats) that takes its own locks and
  // could re-enter Get* here, so holding mu_ across them would invert
  // lock order against registration sites.
  std::vector<MetricFamilySamples> families;
  std::vector<std::function<std::vector<MetricFamilySamples>()>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    families.reserve(families_.size() + collectors_.size());
    for (const auto& [id, collector] : collectors_) {
      collectors.push_back(collector);
    }
    for (const auto& [name, family] : families_) {
      MetricFamilySamples out;
      out.name = name;
      out.type = family.type;
      out.help = family.help;
      for (const auto& [key, child] : family.children) {
        Sample s;
        s.labels = child.labels;
        if (child.counter) {
          s.value = static_cast<double>(child.counter->Value());
        } else if (child.gauge) {
          s.value = child.gauge->Value();
        } else if (child.histogram) {
          s.histogram = child.histogram->Snapshot();
        }
        out.samples.push_back(std::move(s));
      }
      families.push_back(std::move(out));
    }
  }
  for (const auto& collector : collectors) {
    auto collected = collector();
    for (auto& family : collected) families.push_back(std::move(family));
  }
  std::stable_sort(families.begin(), families.end(),
                   [](const MetricFamilySamples& a,
                      const MetricFamilySamples& b) { return a.name < b.name; });
  std::string out;
  for (const MetricFamilySamples& family : families) RenderFamily(family, out);
  return out;
}

}  // namespace obs
}  // namespace cfdprop
