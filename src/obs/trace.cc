#include "src/obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "src/base/hash.h"

namespace cfdprop {
namespace obs {

namespace {

/// Distinct salts keep the trace-id and span-id SplitMix64 streams
/// disjoint even under the same seed.
constexpr uint64_t kTraceIdSalt = 0x7261636554444643ull;  // "CFDTrace"
constexpr uint64_t kSpanIdSalt = 0x6e61705344444643ull;   // "CFDSpan"

void CopyTruncated(char* dst, size_t cap, std::string_view src) {
  const size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

uint64_t SteadyNowUs() {
  return Tracer::ToUs(std::chrono::steady_clock::now());
}

std::atomic<Tracer*> g_process_tracer{nullptr};

}  // namespace

SpanRing::SpanRing(size_t capacity) : slots_(std::max<size_t>(1, capacity)) {}

bool SpanRing::Append(uint64_t trace_id, uint64_t span_id, uint64_t parent_id,
                      std::string_view name, uint64_t start_us,
                      uint64_t dur_us, std::string_view tenant, int32_t shard,
                      std::string_view annot) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  if (seq >= slots_.size()) {
    // Drop-on-full: the slot range is exhausted, so the span is counted
    // rather than retained — never silently lost.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // seq < capacity claims slot `seq` exclusively (fetch_add hands each
  // value out once), so these are single-writer plain stores.
  Slot& slot = slots_[seq];
  slot.trace_id = trace_id;
  slot.span_id = span_id;
  slot.parent_id = parent_id;
  slot.start_us = start_us;
  slot.dur_us = dur_us;
  slot.shard = shard;
  CopyTruncated(slot.name, kNameBytes, name);
  CopyTruncated(slot.tenant, kTenantBytes, tenant);
  CopyTruncated(slot.annot, kAnnotBytes, annot);
  slot.published.store(1, std::memory_order_release);
  return true;
}

void SpanRing::Snapshot(std::vector<SpanRecord>* out, bool slow) const {
  for (const Slot& slot : slots_) {
    if (slot.published.load(std::memory_order_acquire) == 0) break;
    SpanRecord r;
    r.trace_id = slot.trace_id;
    r.span_id = slot.span_id;
    r.parent_id = slot.parent_id;
    r.start_us = slot.start_us;
    r.dur_us = slot.dur_us;
    r.shard = slot.shard;
    r.name = slot.name;
    r.tenant = slot.tenant;
    r.annot = slot.annot;
    r.slow = slow;
    out->push_back(std::move(r));
  }
}

Tracer::Tracer(ObsOptions options)
    : options_(std::move(options)),
      // Seed 0 = derive per process: distinct processes must draw from
      // distinct id streams or their stitched dumps collide (a server
      // span would reuse the client span id it nests under).
      id_seed_(options_.trace_seed != 0
                   ? options_.trace_seed
                   : SplitMix64(SteadyNowUs() ^
                                (static_cast<uint64_t>(::getpid()) << 32) ^
                                reinterpret_cast<uintptr_t>(this))),
      sample_mask_(options_.trace_sample_shift < 0
                       ? ~0ull
                       : (options_.trace_sample_shift >= 63
                              ? ~0ull >> 1
                              : (1ull << options_.trace_sample_shift) - 1)),
      ring_(options_.trace_ring_capacity),
      slow_ring_(options_.slow_ring_capacity) {}

TraceContext Tracer::StartTrace() {
  const uint64_t n = trace_counter_.fetch_add(1, std::memory_order_relaxed);
  TraceContext ctx;
  ctx.trace_id = SplitMix64(id_seed_ ^ (kTraceIdSalt + n));
  if (ctx.trace_id == 0) ctx.trace_id = 1;  // 0 means "no trace"
  // Counter-based sampling: exactly 1 in 2^shift, first trace included,
  // and deterministic for a deterministic request order.
  ctx.sampled = options_.trace_sample_shift >= 0 && (n & sample_mask_) == 0;
  return ctx;
}

uint64_t Tracer::NewSpanId() {
  const uint64_t n = span_counter_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t id = SplitMix64(id_seed_ ^ (kSpanIdSalt + n));
  return id == 0 ? 1 : id;
}

uint64_t Tracer::NowUs() const {
  return options_.clock ? options_.clock() : SteadyNowUs();
}

void Tracer::Record(const TraceContext& ctx, uint64_t span_id,
                    uint64_t parent_id, std::string_view name,
                    uint64_t start_us, uint64_t dur_us,
                    std::string_view tenant, int32_t shard,
                    std::string_view annot) {
  ring_.Append(ctx.trace_id, span_id, parent_id, name, start_us, dur_us,
               tenant, shard, annot);
}

void Tracer::RecordEdge(const TraceContext& ctx, uint64_t span_id,
                        std::string_view name, uint64_t start_us,
                        uint64_t dur_us, std::string_view tenant,
                        int32_t shard) {
  if (ctx.sampled) {
    Record(ctx, span_id, ctx.parent_span_id, name, start_us, dur_us, tenant,
           shard);
  }
  if (slow_enabled() &&
      dur_us >= static_cast<uint64_t>(options_.slow_threshold_us)) {
    slow_requests_.fetch_add(1, std::memory_order_relaxed);
    slow_ring_.Append(ctx.trace_id, span_id, ctx.parent_span_id, name,
                      start_us, dur_us, tenant, shard, {});
    std::lock_guard<std::mutex> lock(slow_mu_);
    ++slow_by_tenant_[std::string(tenant)];
  }
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  ring_.Snapshot(&out, /*slow=*/false);
  slow_ring_.Snapshot(&out, /*slow=*/true);
  return out;
}

std::vector<MetricFamilySamples> Tracer::CollectFamilies() const {
  std::vector<MetricFamilySamples> families;

  MetricFamilySamples spans;
  spans.name = "cfdprop_trace_spans_total";
  spans.type = MetricType::kCounter;
  spans.help = "Spans recorded by the tracer (retained + dropped)";
  spans.samples.push_back(
      {{}, static_cast<double>(spans_recorded()), std::nullopt});
  families.push_back(std::move(spans));

  MetricFamilySamples dropped;
  dropped.name = "cfdprop_trace_dropped_total";
  dropped.type = MetricType::kCounter;
  dropped.help = "Spans dropped on ring overflow";
  dropped.samples.push_back(
      {{}, static_cast<double>(spans_dropped()), std::nullopt});
  families.push_back(std::move(dropped));

  MetricFamilySamples slow;
  slow.name = "cfdprop_slow_requests_total";
  slow.type = MetricType::kCounter;
  slow.help = "Requests whose end-to-end latency crossed the slow threshold";
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    for (const auto& [tenant, count] : slow_by_tenant_) {
      slow.samples.push_back(
          {{{"tenant", tenant}}, static_cast<double>(count), std::nullopt});
    }
  }
  families.push_back(std::move(slow));
  return families;
}

Tracer* ProcessTracer() {
  return g_process_tracer.load(std::memory_order_acquire);
}

void InstallProcessTracer(Tracer* tracer) {
  g_process_tracer.store(tracer, std::memory_order_release);
}

namespace {

std::string HexId(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

void AppendSpanLine(std::string& out, const SpanRecord& span, int depth) {
  out.append(static_cast<size_t>(2 + 2 * depth), ' ');
  out += span.name;
  out += " id=" + HexId(span.span_id);
  out += " parent=" + HexId(span.parent_id);
  out += " tenant=";
  out += span.tenant.empty() ? "-" : span.tenant;
  out += " shard=";
  out += span.shard < 0 ? "-" : std::to_string(span.shard);
  out += " start_us=" + std::to_string(span.start_us);
  out += " dur_us=" + std::to_string(span.dur_us);
  if (!span.annot.empty()) out += " annot=" + span.annot;
  if (span.slow) out += " slow";
  out += "\n";
}

void AppendSubtree(std::string& out, const SpanRecord& span,
                   const std::multimap<uint64_t, const SpanRecord*>& children,
                   int depth) {
  AppendSpanLine(out, span, depth);
  auto [lo, hi] = children.equal_range(span.span_id);
  std::vector<const SpanRecord*> kids;
  for (auto it = lo; it != hi; ++it) kids.push_back(it->second);
  std::stable_sort(kids.begin(), kids.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     if (a->start_us != b->start_us)
                       return a->start_us < b->start_us;
                     return a->span_id < b->span_id;
                   });
  for (const SpanRecord* kid : kids) {
    AppendSubtree(out, *kid, children, depth + 1);
  }
}

}  // namespace

std::string FormatSpanTrees(const std::vector<SpanRecord>& spans) {
  // Group by trace id, ordered — a pure function of the span set.
  std::map<uint64_t, std::vector<const SpanRecord*>> traces;
  for (const SpanRecord& span : spans) {
    traces[span.trace_id].push_back(&span);
  }
  std::string out;
  for (auto& [trace_id, members] : traces) {
    out += "trace " + HexId(trace_id) +
           " spans=" + std::to_string(members.size()) + "\n";
    std::multimap<uint64_t, const SpanRecord*> children;
    std::map<uint64_t, const SpanRecord*> by_id;
    for (const SpanRecord* span : members) by_id.emplace(span->span_id, span);
    std::vector<const SpanRecord*> roots;
    for (const SpanRecord* span : members) {
      // A span whose parent is absent (or zero) roots its own subtree,
      // so a dump missing one process's ring still renders usefully.
      if (span->parent_id != 0 && span->parent_id != span->span_id &&
          by_id.count(span->parent_id) != 0) {
        children.emplace(span->parent_id, span);
      } else {
        roots.push_back(span);
      }
    }
    std::stable_sort(roots.begin(), roots.end(),
                     [](const SpanRecord* a, const SpanRecord* b) {
                       if (a->start_us != b->start_us)
                         return a->start_us < b->start_us;
                       return a->span_id < b->span_id;
                     });
    for (const SpanRecord* root : roots) {
      AppendSubtree(out, *root, children, 0);
    }
  }
  return out;
}

}  // namespace obs
}  // namespace cfdprop
