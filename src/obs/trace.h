// Sampling distributed tracer: the per-request counterpart of the
// aggregate metrics in src/obs/metrics.h.
//
// A request entering the system at an edge (CoverRouter, CoverClient,
// InProcBackend) gets a TraceContext — a trace id, the id of the span
// that encloses whatever happens next, and a sampling decision made
// once at that edge. The context rides the wire inside the submit-batch
// frame (src/net/wire_protocol.h), so every hop the request crosses —
// router route, client rpc, server decode/encode/write, the service's
// admission/queue_wait/dispatch/propagate/reply stages, the engine's
// compute — records its span against the same trace id, and a dump
// stitched across processes reassembles the whole tree.
//
// Hot-path discipline: recording is append-into-a-lock-free-ring — one
// fetch_add to claim a slot, plain stores into it, one release store to
// publish. No locks, no allocation (names and tenants are truncated
// into fixed slot fields). When no tracer is installed the only cost at
// an instrumentation site is one relaxed atomic load and a branch, and
// with sampling off (`trace_sample_shift < 0`) StartTrace never marks a
// context sampled, so no site ever reads a clock for tracing.
//
// The ring is bounded and drop-on-full: the first `ring_capacity` spans
// are retained, later ones are counted in dropped_ — so the invariant
//   dropped + retained == recorded
// holds exactly even under concurrent writers (the concurrency test
// hammers it with 4 threads). Slow-request capture is a second, smaller
// ring: an edge whose end-to-end duration crosses `slow_threshold_us`
// force-records its root span there even when the trace was not
// sampled, so tail outliers survive any sampling rate.
//
// Determinism: trace and span ids are SplitMix64 streams over a seeded
// counter, and the dump encodings (text and wire) order spans by their
// ring append order — a seeded run with an injected clock produces a
// byte-identical dump every time.

#ifndef CFDPROP_OBS_TRACE_H_
#define CFDPROP_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"

namespace cfdprop {
namespace obs {

/// Tracer configuration. A default-constructed ObsOptions traces at
/// 1/64 sampling with slow capture off; `trace_sample_shift < 0`
/// disables sampling entirely (no context is ever marked sampled).
struct ObsOptions {
  /// Sample 1 in 2^k requests at the edge. 6 = 1/64. Negative = off:
  /// StartTrace still hands out ids (they are cheap and make the wire
  /// block deterministic) but never sets `sampled`.
  int trace_sample_shift = 6;

  /// End-to-end latency (microseconds) past which an edge force-retains
  /// the request's root span in the slow ring, sampled or not.
  /// Negative = slow capture off.
  int64_t slow_threshold_us = -1;

  /// Seed for the trace/span id streams. An explicit non-zero seed is
  /// deterministic: equal seeds + equal append order = equal ids =
  /// byte-identical dumps. 0 (the default) derives a per-process seed
  /// instead — two processes stitching their dumps together must not
  /// share an id stream, or a server span can collide with the very
  /// client span it should nest under.
  uint64_t trace_seed = 0;

  /// Main span ring capacity (drop-on-full past this).
  size_t trace_ring_capacity = 8192;

  /// Slow-request ring capacity.
  size_t slow_ring_capacity = 512;

  /// Clock override for deterministic tests; null = steady_clock
  /// microseconds. Only consulted on sampled/slow paths.
  std::function<uint64_t()> clock;
};

/// What rides with one request: generated at the edge, propagated
/// in-band on the wire. `parent_span_id` is the span enclosing the
/// receiver's work (the client's rpc span, once it crosses the wire).
/// A zero trace_id means "no trace attached".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool sampled = false;
};

/// One recorded span, as read back out of a ring (slot fields widened
/// back into strings). `shard` is -1 when the recording site had no
/// shard identity; the stitching side may fill it in (the route CLI
/// labels each shard's dump with the shard it was fetched from).
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  std::string name;
  std::string tenant;
  /// Free-form site annotation, e.g. the compute span's "hits=4,misses=1".
  std::string annot;
  int32_t shard = -1;
  bool slow = false;
};

/// Lock-free bounded span ring. Append claims a slot with one
/// fetch_add; slots past the capacity are dropped and counted. Each
/// slot has exactly one writer ever, publishing with a release store —
/// readers (Snapshot) acquire-load the flag, so there is no data race
/// for TSan to find and no torn span can be observed.
class SpanRing {
 public:
  /// Truncation bounds for the slot's inline strings (no allocation on
  /// the record path). Generous for every name this codebase uses.
  static constexpr size_t kNameBytes = 16;
  static constexpr size_t kTenantBytes = 32;
  static constexpr size_t kAnnotBytes = 32;

  explicit SpanRing(size_t capacity);

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  /// Appends one span. Returns false when the ring was full (the span
  /// is dropped and counted in dropped()).
  bool Append(uint64_t trace_id, uint64_t span_id, uint64_t parent_id,
              std::string_view name, uint64_t start_us, uint64_t dur_us,
              std::string_view tenant, int32_t shard, std::string_view annot);

  /// Append attempts, including dropped ones.
  uint64_t recorded() const { return next_.load(std::memory_order_relaxed); }
  /// Appends refused because the ring was full.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t capacity() const { return slots_.size(); }

  /// Published spans in append order; `slow` stamps every record's flag
  /// (the tracer reads its slow ring back with slow = true).
  void Snapshot(std::vector<SpanRecord>* out, bool slow) const;

 private:
  struct Slot {
    std::atomic<uint8_t> published{0};
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_id = 0;
    uint64_t start_us = 0;
    uint64_t dur_us = 0;
    int32_t shard = -1;
    char name[kNameBytes] = {};
    char tenant[kTenantBytes] = {};
    char annot[kAnnotBytes] = {};
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> dropped_{0};
};

/// The per-process tracer: id streams, the sampling decision, the two
/// rings, and the subsystem's own health counters. All methods are
/// thread-safe; everything on the record path is lock-free (the only
/// mutex guards the per-tenant slow counter map, touched by slow
/// requests only).
class Tracer {
 public:
  explicit Tracer(ObsOptions options = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const ObsOptions& options() const { return options_; }

  /// New trace at an edge: assigns the next trace id from the seeded
  /// stream and decides sampling (1 in 2^trace_sample_shift, counter-
  /// based so the rate is exact and deterministic).
  TraceContext StartTrace();

  /// Next span id from the seeded stream.
  uint64_t NewSpanId();

  /// Current time in microseconds (the injected clock, or steady_clock).
  uint64_t NowUs() const;

  /// steady_clock time point -> the same microsecond scale NowUs() uses
  /// on the real-clock path. Lets the service turn its existing stage
  /// stamps into span times without re-reading any clock.
  static uint64_t ToUs(std::chrono::steady_clock::time_point tp) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            tp.time_since_epoch())
            .count());
  }

  bool slow_enabled() const { return options_.slow_threshold_us >= 0; }
  int64_t slow_threshold_us() const { return options_.slow_threshold_us; }

  /// Records one span into the main ring. Callers gate on ctx.sampled.
  void Record(const TraceContext& ctx, uint64_t span_id, uint64_t parent_id,
              std::string_view name, uint64_t start_us, uint64_t dur_us,
              std::string_view tenant, int32_t shard = -1,
              std::string_view annot = {});

  /// Edge completion: records the root span normally when sampled, and
  /// force-retains it in the slow ring (plus the per-tenant slow
  /// counter) when slow capture is armed and `dur_us` crosses the
  /// threshold — sampled or not.
  void RecordEdge(const TraceContext& ctx, uint64_t span_id,
                  std::string_view name, uint64_t start_us, uint64_t dur_us,
                  std::string_view tenant, int32_t shard = -1);

  /// Both rings (main, then slow), each in append order — the
  /// deterministic dump order.
  std::vector<SpanRecord> Snapshot() const;

  // Health counters (satellite: exported as cfdprop_trace_* metrics).
  uint64_t spans_recorded() const {
    return ring_.recorded() + slow_ring_.recorded();
  }
  uint64_t spans_dropped() const {
    return ring_.dropped() + slow_ring_.dropped();
  }
  uint64_t slow_requests() const {
    return slow_requests_.load(std::memory_order_relaxed);
  }

  /// Metric families for the registry render: cfdprop_trace_spans_total,
  /// cfdprop_trace_dropped_total, cfdprop_slow_requests_total{tenant}.
  std::vector<MetricFamilySamples> CollectFamilies() const;

 private:
  const ObsOptions options_;
  /// options_.trace_seed, or a per-process derivation when that is 0.
  const uint64_t id_seed_;
  const uint64_t sample_mask_;  // 2^shift - 1; sampling off = all-ones

  std::atomic<uint64_t> trace_counter_{0};
  std::atomic<uint64_t> span_counter_{0};

  SpanRing ring_;
  SpanRing slow_ring_;

  std::atomic<uint64_t> slow_requests_{0};
  mutable std::mutex slow_mu_;
  std::map<std::string, uint64_t> slow_by_tenant_;  // guarded by slow_mu_
};

/// The installed per-process tracer, or null when tracing is off. One
/// relaxed-ish (acquire) load — the whole cost of a disabled
/// instrumentation site.
Tracer* ProcessTracer();

/// Installs (or, with null, uninstalls) the process tracer. The caller
/// keeps ownership and must uninstall before destroying the tracer and
/// after quiescing everything that records into it.
void InstallProcessTracer(Tracer* tracer);

/// RAII install/uninstall for tests and the workload runner.
class ScopedProcessTracer {
 public:
  explicit ScopedProcessTracer(Tracer* tracer) { InstallProcessTracer(tracer); }
  ~ScopedProcessTracer() { InstallProcessTracer(nullptr); }
  ScopedProcessTracer(const ScopedProcessTracer&) = delete;
  ScopedProcessTracer& operator=(const ScopedProcessTracer&) = delete;
};

/// Renders spans as stitched trees: one block per trace (ordered by
/// trace id), roots at top, children indented and ordered by
/// (start_us, span_id). A span whose parent is absent from the set
/// roots its own subtree, so a partial dump still renders. The output
/// is a pure function of the span set — the byte-identical-dump test
/// leans on exactly that.
std::string FormatSpanTrees(const std::vector<SpanRecord>& spans);

}  // namespace obs
}  // namespace cfdprop

#endif  // CFDPROP_OBS_TRACE_H_
