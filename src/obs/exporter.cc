#include "src/obs/exporter.h"

#include <cstdlib>

namespace cfdprop {
namespace obs {

std::string RenderMetricsText(const MetricsRegistry& registry) {
  return registry.RenderText();
}

namespace {

/// Returns the index one past the series key: past the matching `}`
/// when the line carries labels (quote- and escape-aware, since label
/// values may contain spaces or braces), else past the bare name.
size_t KeyEnd(std::string_view line) {
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  if (i == line.size() || line[i] == ' ') return i;
  bool in_quotes = false;
  for (++i; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_quotes = false;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == '}') {
      return i + 1;
    }
  }
  return line.size();
}

}  // namespace

Result<ParsedMetrics> ParseMetricsText(std::string_view text) {
  ParsedMetrics out;
  size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view()
                                        : text.substr(nl + 1);
    if (line.empty()) continue;
    if (line[0] == '#') {
      constexpr std::string_view kTypePrefix = "# TYPE ";
      if (line.substr(0, kTypePrefix.size()) == kTypePrefix) {
        std::string_view rest = line.substr(kTypePrefix.size());
        const size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
          return Status::InvalidArgument("malformed # TYPE line " +
                                         std::to_string(line_no));
        }
        out.types[std::string(rest.substr(0, space))] =
            std::string(rest.substr(space + 1));
      }
      continue;  // # HELP and other comments
    }
    const size_t key_end = KeyEnd(line);
    if (key_end == 0 || key_end >= line.size() || line[key_end] != ' ') {
      return Status::InvalidArgument("malformed series at line " +
                                     std::to_string(line_no));
    }
    const std::string key(line.substr(0, key_end));
    const std::string value_text(line.substr(key_end + 1));
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) {
      return Status::InvalidArgument("unparseable value at line " +
                                     std::to_string(line_no));
    }
    out.values[key] = value;
  }
  return out;
}

}  // namespace obs
}  // namespace cfdprop
