#include "src/cfd/implication.h"

namespace cfdprop {

namespace {

/// Adds a row of `arity` fresh variable cells for `relation`.
std::vector<CellId> AddTemplateRow(SymbolicInstance& inst, size_t arity,
                                   RelationId relation,
                                   const AttrDomains& domains) {
  std::vector<CellId> cells;
  cells.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    const Domain* d = i < domains.size() ? domains[i] : nullptr;
    cells.push_back(inst.NewCell(d));
  }
  inst.AddRow(relation, cells);
  return cells;
}

/// Chases a fork and reports whether phi holds on it. `t1`/`t2` are the
/// template rows' cells; for special-x phi only t1 is used.
Result<bool> HoldsOnFork(SymbolicInstance& fork,
                         const std::vector<CFD>& sigma, const CFD& phi,
                         const std::vector<CellId>& t1,
                         const std::vector<CellId>& t2) {
  CFDPROP_ASSIGN_OR_RETURN(ChaseOutcome outcome, Chase(fork, sigma));
  if (outcome == ChaseOutcome::kContradiction) {
    // The premise (a pair/tuple matching phi's LHS) is unsatisfiable
    // under sigma, so phi holds vacuously on this branch.
    return true;
  }
  if (phi.is_special_x()) {
    return fork.EqualCells(t1[phi.lhs[0]], t1[phi.rhs]);
  }
  if (!fork.EqualCells(t1[phi.rhs], t2[phi.rhs])) return false;
  if (phi.rhs_pat.is_constant()) {
    auto c = fork.ConstOf(t1[phi.rhs]);
    if (!c.has_value() || *c != phi.rhs_pat.value()) return false;
  }
  return true;
}

}  // namespace

AttrDomains DomainsOf(const Catalog& catalog, RelationId relation) {
  const RelationSchema& schema = catalog.relation(relation);
  AttrDomains out(schema.arity(), nullptr);
  for (size_t i = 0; i < schema.arity(); ++i) {
    out[i] = &schema.attr(static_cast<AttrIndex>(i)).domain;
  }
  return out;
}

Result<bool> Implies(const std::vector<CFD>& sigma, const CFD& phi,
                     size_t arity, const AttrDomains& domains,
                     const ImplicationOptions& options) {
  CFDPROP_RETURN_NOT_OK(phi.Validate(arity));
  for (const CFD& c : sigma) {
    CFDPROP_RETURN_NOT_OK(c.Validate(arity));
    if (c.relation != phi.relation) {
      return Status::InvalidArgument(
          "implication requires all CFDs on the same relation");
    }
  }

  // Build the template. For a normal phi = (X -> A, tp): two rows that
  // agree on X and match tp[X]. For special-x phi (A = B): one generic
  // row (CFDs are closed under sub-instances, so a single arbitrary tuple
  // is the canonical counterexample).
  SymbolicInstance base;
  std::vector<CellId> t1 =
      AddTemplateRow(base, arity, phi.relation, domains);
  std::vector<CellId> t2;
  if (!phi.is_special_x()) {
    t2 = AddTemplateRow(base, arity, phi.relation, domains);
    for (size_t i = 0; i < phi.lhs.size(); ++i) {
      AttrIndex a = phi.lhs[i];
      base.Union(t1[a], t2[a]);
      if (phi.lhs_pats[i].is_constant()) {
        base.BindConst(t1[a], phi.lhs_pats[i].value());
      }
    }
    if (base.contradiction()) return true;  // LHS pattern unsatisfiable
  }

  if (!options.general_setting) {
    SymbolicInstance fork = base;
    return HoldsOnFork(fork, sigma, phi, t1, t2);
  }

  // General setting: phi is implied iff no instantiation of the
  // finite-domain variables yields a counterexample. Branch-and-prune:
  // chase first, branch on surviving unbound finite cells only.
  CFDPROP_ASSIGN_OR_RETURN(
      bool counterexample,
      ExistsChaseBranch(
          base, sigma,
          [&](SymbolicInstance& leaf) {
            // Leaf is already chased and contradiction-free; phi fails
            // on it iff the RHS condition is not forced.
            if (phi.is_special_x()) {
              return !leaf.EqualCells(t1[phi.lhs[0]], t1[phi.rhs]);
            }
            if (!leaf.EqualCells(t1[phi.rhs], t2[phi.rhs])) return true;
            if (phi.rhs_pat.is_constant()) {
              auto c = leaf.ConstOf(t1[phi.rhs]);
              if (!c.has_value() || *c != phi.rhs_pat.value()) return true;
            }
            return false;
          },
          options.instantiation));
  return !counterexample;
}

Result<bool> IsSatisfiable(const std::vector<CFD>& sigma, size_t arity,
                           const AttrDomains& domains,
                           const ImplicationOptions& options) {
  if (sigma.empty()) return true;
  RelationId rel = sigma.front().relation;
  for (const CFD& c : sigma) {
    CFDPROP_RETURN_NOT_OK(c.Validate(arity));
    if (c.relation != rel) {
      return Status::InvalidArgument(
          "satisfiability requires all CFDs on the same relation");
    }
  }

  SymbolicInstance base;
  AddTemplateRow(base, arity, rel, domains);

  if (!options.general_setting) {
    SymbolicInstance fork = base;
    CFDPROP_ASSIGN_OR_RETURN(ChaseOutcome outcome, Chase(fork, sigma));
    return outcome == ChaseOutcome::kFixpoint;
  }

  // Satisfiable iff some instantiation survives the chase: any
  // contradiction-free leaf is a witness tuple.
  return ExistsChaseBranch(
      base, sigma, [](SymbolicInstance&) { return true; },
      options.instantiation);
}

}  // namespace cfdprop
