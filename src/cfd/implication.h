// Implication and consistency analysis for CFDs (reference [8] of the
// paper: Fan, Geerts, Jia, Kementsietsidis, "Conditional functional
// dependencies for capturing data inconsistencies", TODS).
//
// Sigma |= phi iff every instance satisfying Sigma satisfies phi. In the
// infinite-domain setting this is decidable in PTIME via a chase of a
// two-tuple template (CFD satisfaction is closed under sub-instances, so
// a counterexample can always be shrunk to the two offending tuples). In
// the general setting the problem is coNP-complete; we decide it by
// enumerating instantiations of the finite-domain variables of the
// template, exactly as the paper's appendix proofs do.
//
// These procedures are what MinCover (src/cfd/mincover.h) and the final
// minimization step of PropCFD_SPC are built on.

#ifndef CFDPROP_CFD_IMPLICATION_H_
#define CFDPROP_CFD_IMPLICATION_H_

#include <vector>

#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/chase/chase.h"
#include "src/schema/schema.h"

namespace cfdprop {

struct ImplicationOptions {
  /// When true, unbound finite-domain variables of the chase template are
  /// instantiated exhaustively (general setting, coNP). When false they
  /// are treated as infinite-domain variables (the setting of Section 4).
  bool general_setting = false;
  InstantiationOptions instantiation;
};

/// Per-attribute domains of the attribute space CFDs are defined on;
/// entries may be null (infinite). An empty vector means all-infinite.
using AttrDomains = std::vector<const Domain*>;

/// The domains of a catalog relation, for building AttrDomains.
AttrDomains DomainsOf(const Catalog& catalog, RelationId relation);

/// Decides Sigma |= phi over an attribute space of `arity` attributes.
/// All CFDs (sigma's and phi) must carry the same relation tag; rows of
/// the internal template are tagged with it.
Result<bool> Implies(const std::vector<CFD>& sigma, const CFD& phi,
                     size_t arity, const AttrDomains& domains = {},
                     const ImplicationOptions& options = {});

/// The consistency (satisfiability) problem: is there a *nonempty*
/// instance satisfying sigma? PTIME without finite domains, NP-complete
/// with them ([8]; also the view-free case of the emptiness problem,
/// Section 3.3).
Result<bool> IsSatisfiable(const std::vector<CFD>& sigma, size_t arity,
                           const AttrDomains& domains = {},
                           const ImplicationOptions& options = {});

}  // namespace cfdprop

#endif  // CFDPROP_CFD_IMPLICATION_H_
