#include "src/cfd/mincover.h"

#include <algorithm>

namespace cfdprop {

namespace {

/// phi with its i-th LHS attribute removed.
CFD DropLhsAttr(const CFD& phi, size_t i) {
  CFD out = phi;
  out.lhs.erase(out.lhs.begin() + i);
  out.lhs_pats.erase(out.lhs_pats.begin() + i);
  return out;
}

}  // namespace

Result<std::vector<CFD>> MinCover(std::vector<CFD> sigma, size_t arity,
                                  const AttrDomains& domains,
                                  const MinCoverOptions& options) {
  sigma = DedupeAndDropTrivial(std::move(sigma));

  // Phase 1: remove redundant LHS attributes. phi' (with B dropped) is
  // stronger than phi, so the replacement is sound iff sigma |= phi'.
  for (size_t k = 0; k < sigma.size(); ++k) {
    if (sigma[k].is_special_x()) continue;  // single-attribute LHS
    for (size_t i = 0; i < sigma[k].lhs.size();) {
      CFD candidate = DropLhsAttr(sigma[k], i);
      if (candidate.IsTrivial()) {
        ++i;
        continue;
      }
      CFDPROP_ASSIGN_OR_RETURN(
          bool implied,
          Implies(sigma, candidate, arity, domains, options.implication));
      if (implied) {
        sigma[k] = std::move(candidate);
        // Restart at position i: indices shifted left.
      } else {
        ++i;
      }
    }
  }

  // Attribute removal can introduce duplicates (two CFDs minimizing to
  // the same one).
  sigma = DedupeAndDropTrivial(std::move(sigma));

  // Phase 2: remove redundant CFDs.
  return RemoveRedundantCFDs(std::move(sigma), arity, domains, options);
}

Result<bool> AreEquivalent(const std::vector<CFD>& a,
                           const std::vector<CFD>& b, size_t arity,
                           const AttrDomains& domains,
                           const ImplicationOptions& options) {
  for (const CFD& c : a) {
    CFDPROP_ASSIGN_OR_RETURN(bool implied,
                             Implies(b, c, arity, domains, options));
    if (!implied) return false;
  }
  for (const CFD& c : b) {
    CFDPROP_ASSIGN_OR_RETURN(bool implied,
                             Implies(a, c, arity, domains, options));
    if (!implied) return false;
  }
  return true;
}

Result<std::vector<CFD>> RemoveRedundantCFDs(std::vector<CFD> sigma,
                                             size_t arity,
                                             const AttrDomains& domains,
                                             const MinCoverOptions& options) {
  sigma = DedupeAndDropTrivial(std::move(sigma));
  for (size_t k = 0; k < sigma.size();) {
    CFD phi = std::move(sigma[k]);
    sigma.erase(sigma.begin() + k);
    CFDPROP_ASSIGN_OR_RETURN(
        bool implied,
        Implies(sigma, phi, arity, domains, options.implication));
    if (!implied) {
      sigma.insert(sigma.begin() + k, std::move(phi));
      ++k;
    }
    // If implied: phi stays removed; k now points at the next CFD.
  }
  return sigma;
}

}  // namespace cfdprop
