// MinCover: minimal covers of CFD sets (Section 4.1).
//
// A minimal cover Sigma_mc of Sigma (i) implies every CFD of Sigma, (ii)
// contains no redundant CFD, and (iii) contains no CFD with a redundant
// LHS attribute: an attribute B of phi = R(X -> A, tp) is redundant when
// Sigma already implies phi' = R(X\B -> A, (tp[X\B] || tp[A])) — phi' is
// stronger than phi, so replacing phi by phi' preserves equivalence.
//
// Runs in O(|Sigma|^3) implication calls, matching the MinCover algorithm
// of [8] that PropCFD_SPC invokes (lines 1 and 13 of Fig. 2).

#ifndef CFDPROP_CFD_MINCOVER_H_
#define CFDPROP_CFD_MINCOVER_H_

#include <vector>

#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/cfd/implication.h"

namespace cfdprop {

struct MinCoverOptions {
  ImplicationOptions implication;
};

/// Computes a minimal cover of `sigma` (all CFDs on one relation of
/// `arity` attributes). Deterministic: scans in input order.
Result<std::vector<CFD>> MinCover(std::vector<CFD> sigma, size_t arity,
                                  const AttrDomains& domains = {},
                                  const MinCoverOptions& options = {});

/// Removes only redundant *CFDs* (no LHS minimization); used by the
/// partitioned intermediate-minimization optimization inside RBR
/// (Section 4.3), where full minimization would be wasted work.
Result<std::vector<CFD>> RemoveRedundantCFDs(
    std::vector<CFD> sigma, size_t arity, const AttrDomains& domains = {},
    const MinCoverOptions& options = {});

/// True iff the two CFD sets are logically equivalent (each implies every
/// member of the other). Useful for comparing covers produced by
/// different pipelines/options.
Result<bool> AreEquivalent(const std::vector<CFD>& a,
                           const std::vector<CFD>& b, size_t arity,
                           const AttrDomains& domains = {},
                           const ImplicationOptions& options = {});

}  // namespace cfdprop

#endif  // CFDPROP_CFD_MINCOVER_H_
