#include "src/cfd/cfd.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "src/base/wire.h"

namespace cfdprop {

Result<CFD> CFD::Make(RelationId relation, std::vector<AttrIndex> lhs,
                      std::vector<PatternValue> lhs_pats, AttrIndex rhs,
                      PatternValue rhs_pat) {
  if (lhs.size() != lhs_pats.size()) {
    return Status::InvalidArgument("lhs and lhs_pats sizes differ");
  }
  for (const PatternValue& p : lhs_pats) {
    if (p.is_special_x()) {
      return Status::InvalidArgument(
          "special variable x is only allowed via CFD::Equality");
    }
  }
  if (rhs_pat.is_special_x()) {
    return Status::InvalidArgument(
        "special variable x is only allowed via CFD::Equality");
  }

  // Sort by attribute index, keeping patterns parallel.
  std::vector<size_t> order(lhs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return lhs[a] < lhs[b]; });

  CFD out;
  out.relation = relation;
  out.rhs = rhs;
  out.rhs_pat = rhs_pat;
  out.lhs.reserve(lhs.size());
  out.lhs_pats.reserve(lhs.size());
  for (size_t idx : order) {
    if (!out.lhs.empty() && out.lhs.back() == lhs[idx]) {
      // Duplicate LHS attribute: merge the two patterns via min.
      auto merged = PatternValue::Min(out.lhs_pats.back(), lhs_pats[idx]);
      if (!merged.has_value()) {
        return Status::InvalidArgument(
            "duplicate LHS attribute with incomparable constants");
      }
      out.lhs_pats.back() = *merged;
      continue;
    }
    out.lhs.push_back(lhs[idx]);
    out.lhs_pats.push_back(lhs_pats[idx]);
  }

  // Canonicalization: with a constant RHS, wildcard-pattern LHS
  // attributes are redundant. Satisfaction quantifies over pairs
  // including (t, t), so (XZ -> A, (tx, _ || c)) already forces A = c on
  // every tuple matching tx alone — the agreement requirement on Z adds
  // nothing. Dropping them keeps resolution (RBR) complete: otherwise a
  // projected-out Z with no producer CFD would take this constraint with
  // it even though it survives the projection.
  if (out.rhs_pat.is_constant()) {
    size_t w = 0;
    for (size_t r = 0; r < out.lhs.size(); ++r) {
      if (out.lhs_pats[r].is_wildcard()) continue;
      out.lhs[w] = out.lhs[r];
      out.lhs_pats[w] = out.lhs_pats[r];
      ++w;
    }
    out.lhs.resize(w);
    out.lhs_pats.resize(w);
  }
  return out;
}

CFD CFD::Equality(RelationId relation, AttrIndex a, AttrIndex b) {
  CFD out;
  out.relation = relation;
  out.lhs = {a};
  out.lhs_pats = {PatternValue::SpecialX()};
  out.rhs = b;
  out.rhs_pat = PatternValue::SpecialX();
  return out;
}

CFD CFD::ConstantColumn(RelationId relation, AttrIndex a, Value c) {
  // The paper writes this as R(A -> A, ( || a)); canonically the LHS is
  // empty (the wildcard A adds nothing, see Make).
  CFD out;
  out.relation = relation;
  out.rhs = a;
  out.rhs_pat = PatternValue::Constant(c);
  return out;
}

Result<CFD> CFD::FD(RelationId relation, std::vector<AttrIndex> lhs,
                    AttrIndex rhs) {
  std::vector<PatternValue> pats(lhs.size(), PatternValue::Wildcard());
  return Make(relation, std::move(lhs), std::move(pats), rhs,
              PatternValue::Wildcard());
}

bool CFD::IsPlainFD() const {
  if (is_special_x()) return false;
  if (!rhs_pat.is_wildcard()) return false;
  for (const PatternValue& p : lhs_pats) {
    if (!p.is_wildcard()) return false;
  }
  return true;
}

bool CFD::IsTrivial() const {
  if (is_special_x()) {
    return lhs.size() == 1 && lhs[0] == rhs;
  }
  size_t pos = FindLhs(rhs);
  if (pos == SIZE_MAX) return false;
  const PatternValue& p_lhs = lhs_pats[pos];
  // (eta1 || eta2) with eta1 == eta2, or eta1 constant and eta2 == '_'.
  if (p_lhs == rhs_pat) return true;
  if (p_lhs.is_constant() && rhs_pat.is_wildcard()) return true;
  return false;
}

bool CFD::IsForbiddenPattern() const {
  if (!rhs_pat.is_constant()) return false;
  size_t pos = FindLhs(rhs);
  if (pos == SIZE_MAX) return false;
  return lhs_pats[pos].is_constant() &&
         lhs_pats[pos].value() != rhs_pat.value();
}

size_t CFD::FindLhs(AttrIndex attr) const {
  auto it = std::lower_bound(lhs.begin(), lhs.end(), attr);
  if (it != lhs.end() && *it == attr) {
    return static_cast<size_t>(it - lhs.begin());
  }
  return SIZE_MAX;
}

bool CFD::Mentions(AttrIndex attr) const {
  return rhs == attr || FindLhs(attr) != SIZE_MAX;
}

Status CFD::Validate(size_t arity) const {
  if (lhs.size() != lhs_pats.size()) {
    return Status::Internal("lhs/lhs_pats size mismatch");
  }
  if (rhs >= arity) return Status::InvalidArgument("rhs attr out of range");
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (lhs[i] >= arity) {
      return Status::InvalidArgument("lhs attr out of range");
    }
    if (i > 0 && lhs[i - 1] >= lhs[i]) {
      return Status::Internal("lhs not strictly ascending");
    }
  }
  if (is_special_x()) {
    if (lhs.size() != 1 || !lhs_pats[0].is_special_x()) {
      return Status::Internal("malformed special-x CFD");
    }
  } else {
    for (const PatternValue& p : lhs_pats) {
      if (p.is_special_x()) {
        return Status::Internal("special x in a non-equality CFD");
      }
    }
  }
  return Status::OK();
}

bool CFD::operator==(const CFD& o) const {
  return relation == o.relation && lhs == o.lhs && lhs_pats == o.lhs_pats &&
         rhs == o.rhs && rhs_pat == o.rhs_pat;
}

std::string CFD::ToString(
    const ValuePool& pool,
    const std::function<std::string(AttrIndex)>& attr_name) const {
  std::string out = "([";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += attr_name(lhs[i]);
  }
  out += "] -> ";
  out += attr_name(rhs);
  out += ", (";
  for (size_t i = 0; i < lhs_pats.size(); ++i) {
    if (i > 0) out += ", ";
    out += lhs_pats[i].ToString(pool);
  }
  out += " || ";
  out += rhs_pat.ToString(pool);
  out += "))";
  return out;
}

std::string CFD::ToString(const Catalog& catalog) const {
  const RelationSchema* schema = nullptr;
  std::string rel_name = "V";
  if (relation != kViewSchemaId && relation < catalog.num_relations()) {
    schema = &catalog.relation(relation);
    rel_name = schema->name();
  }
  auto name = [&](AttrIndex i) -> std::string {
    if (schema != nullptr && i < schema->arity()) return schema->attr(i).name;
    return "#" + std::to_string(i);
  };
  return rel_name + ToString(catalog.pool(), name);
}

size_t CFDHash::operator()(const CFD& c) const {
  auto mix = [](size_t h, size_t v) {
    return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  size_t h = c.relation;
  auto mix_pat = [&](const PatternValue& p) {
    h = mix(h, static_cast<size_t>(p.kind()));
    if (p.is_constant()) h = mix(h, p.value());
  };
  for (size_t i = 0; i < c.lhs.size(); ++i) {
    h = mix(h, c.lhs[i]);
    mix_pat(c.lhs_pats[i]);
  }
  h = mix(h, c.rhs);
  mix_pat(c.rhs_pat);
  return h;
}

Result<std::vector<CFD>> GeneralCFD::Normalize() const {
  if (rhs.size() != rhs_pats.size()) {
    return Status::InvalidArgument("rhs and rhs_pats sizes differ");
  }
  std::vector<CFD> out;
  out.reserve(rhs.size());
  for (size_t i = 0; i < rhs.size(); ++i) {
    CFDPROP_ASSIGN_OR_RETURN(
        CFD c, CFD::Make(relation, lhs, lhs_pats, rhs[i], rhs_pats[i]));
    out.push_back(std::move(c));
  }
  return out;
}

void CFD::AppendSnapshotBytes(
    std::string& out, const std::function<uint32_t(Value)>& value_index)
    const {
  wire::PutU32(out, relation);
  wire::PutU32(out, static_cast<uint32_t>(lhs.size()));
  for (size_t i = 0; i < lhs.size(); ++i) {
    wire::PutU32(out, lhs[i]);
    lhs_pats[i].AppendSnapshotBytes(out, value_index);
  }
  wire::PutU32(out, rhs);
  rhs_pat.AppendSnapshotBytes(out, value_index);
}

Result<CFD> CFD::FromSnapshotBytes(
    std::string_view bytes, size_t* pos,
    const std::function<Result<Value>(uint32_t)>& value_at) {
  CFD c;
  uint32_t lhs_size = 0;
  if (!wire::GetU32(bytes, pos, &c.relation) ||
      !wire::GetU32(bytes, pos, &lhs_size)) {
    return Status::InvalidArgument("CFD header truncated");
  }
  // An LHS can never be wider than the encoding that claims it: each
  // attribute costs >= 5 bytes, so an absurd count is corruption, not a
  // huge allocation.
  if (lhs_size > (bytes.size() - *pos) / 5) {
    return Status::InvalidArgument("CFD lhs count exceeds remaining bytes");
  }
  c.lhs.reserve(lhs_size);
  c.lhs_pats.reserve(lhs_size);
  for (uint32_t i = 0; i < lhs_size; ++i) {
    AttrIndex attr = kNoAttr;
    if (!wire::GetU32(bytes, pos, &attr)) {
      return Status::InvalidArgument("CFD lhs truncated");
    }
    CFDPROP_ASSIGN_OR_RETURN(
        PatternValue pat,
        PatternValue::FromSnapshotBytes(bytes, pos, value_at));
    c.lhs.push_back(attr);
    c.lhs_pats.push_back(pat);
  }
  if (!wire::GetU32(bytes, pos, &c.rhs)) {
    return Status::InvalidArgument("CFD rhs truncated");
  }
  CFDPROP_ASSIGN_OR_RETURN(
      c.rhs_pat, PatternValue::FromSnapshotBytes(bytes, pos, value_at));
  return c;
}

std::vector<CFD> DedupeAndDropTrivial(std::vector<CFD> cfds) {
  std::vector<CFD> out;
  out.reserve(cfds.size());
  std::unordered_set<CFD, CFDHash> seen;
  for (CFD& c : cfds) {
    if (c.IsTrivial()) continue;
    if (seen.insert(c).second) out.push_back(std::move(c));
  }
  return out;
}

}  // namespace cfdprop
