// Conditional functional dependencies (CFDs), Definition 2.1.
//
// A CFD in *normal form* is R(X -> A, (tp[X] || tp[A])) with a single RHS
// attribute A; the general form R(X -> Y, tp) converts to an equivalent
// set of normal-form CFDs in linear time. Traditional FDs are the special
// case where every pattern entry is '_'.
//
// Satisfaction quantifies over ordered tuple pairs *including* t1 = t2,
// which gives constant-RHS CFDs their single-tuple reading: a CFD
// R(A -> A, (_ || a)) says every tuple has A = a. This is why
// R(AX -> A, tp) can be meaningful even though AX -> A is a trivial FD
// (Section 4.1, challenge (b)).

#ifndef CFDPROP_CFD_CFD_H_
#define CFDPROP_CFD_CFD_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/value.h"
#include "src/cfd/pattern.h"
#include "src/schema/schema.h"

namespace cfdprop {

/// Pseudo relation-id tagging CFDs defined on a view schema rather than a
/// source relation of the catalog.
inline constexpr RelationId kViewSchemaId = UINT32_MAX - 1;

/// A CFD in normal form. Plain value type; attribute positions index into
/// the relation schema (source CFDs) or the view schema (view CFDs).
///
/// Invariants (established by Make/Validate):
///   * lhs is strictly ascending, lhs_pats is parallel to it;
///   * a special-x CFD has exactly one LHS attribute, both patterns are x;
///   * otherwise no pattern entry is the special variable x.
struct CFD {
  RelationId relation = kNoRelation;
  std::vector<AttrIndex> lhs;
  std::vector<PatternValue> lhs_pats;
  AttrIndex rhs = kNoAttr;
  PatternValue rhs_pat;

  /// Builds a normal-form CFD, sorting the LHS and merging duplicate LHS
  /// attributes via pattern-min. Fails when duplicate LHS attributes carry
  /// incomparable constants (the LHS would match no tuple).
  static Result<CFD> Make(RelationId relation,
                          std::vector<AttrIndex> lhs,
                          std::vector<PatternValue> lhs_pats,
                          AttrIndex rhs, PatternValue rhs_pat);

  /// Builds the special view CFD R(a -> b, (x || x)) expressing "column a
  /// equals column b in every tuple".
  static CFD Equality(RelationId relation, AttrIndex a, AttrIndex b);

  /// Builds the constant CFD R(a -> a, (_ || c)) expressing "column a is
  /// the constant c in every tuple".
  static CFD ConstantColumn(RelationId relation, AttrIndex a, Value c);

  /// Builds a traditional FD: all pattern entries '_'.
  static Result<CFD> FD(RelationId relation, std::vector<AttrIndex> lhs,
                        AttrIndex rhs);

  bool is_special_x() const {
    return rhs_pat.is_special_x();
  }

  /// True when every pattern entry is '_' (a plain FD).
  bool IsPlainFD() const;

  /// Trivial CFDs carry no information and are never emitted in covers:
  /// either a special-x CFD A = A, or rhs in lhs with (p_lhs == p_rhs) or
  /// (p_lhs constant and p_rhs == '_').
  bool IsTrivial() const;

  /// True for forbidden-pattern CFDs: rhs occurs in lhs with a constant
  /// pattern e while rhs_pat is a different constant f. Such a CFD
  /// asserts that no tuple matches its LHS pattern at all (a matching
  /// tuple would need rhs = e and rhs = f simultaneously) — the
  /// nontrivial case (b) of Section 4.1 pushed to its extreme.
  bool IsForbiddenPattern() const;

  /// Position of `attr` in lhs, or SIZE_MAX.
  size_t FindLhs(AttrIndex attr) const;

  /// True when `attr` occurs in the CFD (lhs or rhs).
  bool Mentions(AttrIndex attr) const;

  /// Structural validation against a schema arity (attribute indices in
  /// range, invariants above). `arity` = number of attributes in the
  /// relation/view schema the CFD is defined on.
  Status Validate(size_t arity) const;

  bool operator==(const CFD& o) const;
  bool operator!=(const CFD& o) const { return !(*this == o); }

  /// e.g. "R1([CC=44, AC] -> [city], (44, _ || _))" rendered as
  /// "R1([CC, AC] -> city, (44, _ || _))"; names come from `attr_name`.
  std::string ToString(const ValuePool& pool,
                       const std::function<std::string(AttrIndex)>& attr_name)
      const;

  /// Convenience: renders with attribute names from the catalog relation
  /// (source CFDs) or "#i" (view CFDs / out-of-range).
  std::string ToString(const Catalog& catalog) const;

  /// Appends the stable binary encoding of this CFD for cover snapshots
  /// (src/engine/snapshot.h): relation, LHS attribute/pattern pairs, RHS
  /// attribute/pattern. Pattern constants are rewritten through
  /// `value_index` into pool-independent string-table slots.
  void AppendSnapshotBytes(
      std::string& out,
      const std::function<uint32_t(Value)>& value_index) const;

  /// Decodes one CFD encoded by AppendSnapshotBytes from bytes[*pos..],
  /// advancing *pos past it. `value_at` maps string-table indices to the
  /// loading pool's Values (see PatternValue::FromSnapshotBytes).
  /// Structural failures (truncation, bad kind byte, out-of-range index)
  /// reject cleanly; the decoded CFD is NOT re-validated against a
  /// schema — callers restoring untrusted data should run Validate()
  /// with the target arity afterwards.
  static Result<CFD> FromSnapshotBytes(
      std::string_view bytes, size_t* pos,
      const std::function<Result<Value>(uint32_t)>& value_at);
};

/// Hash functor so covers can dedupe CFDs in unordered containers.
struct CFDHash {
  size_t operator()(const CFD& c) const;
};

/// A CFD in general form R(X -> Y, tp) with multiple RHS attributes.
struct GeneralCFD {
  RelationId relation = kNoRelation;
  std::vector<AttrIndex> lhs;
  std::vector<PatternValue> lhs_pats;
  std::vector<AttrIndex> rhs;
  std::vector<PatternValue> rhs_pats;

  /// Converts to the equivalent set of normal-form CFDs (one per RHS
  /// attribute), Section 4 preliminaries.
  Result<std::vector<CFD>> Normalize() const;
};

/// Removes exact duplicates and trivial CFDs, preserving first-seen order.
std::vector<CFD> DedupeAndDropTrivial(std::vector<CFD> cfds);

}  // namespace cfdprop

#endif  // CFDPROP_CFD_CFD_H_
