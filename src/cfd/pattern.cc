#include "src/cfd/pattern.h"

namespace cfdprop {

std::string PatternValue::ToString(const ValuePool& pool) const {
  switch (kind_) {
    case PatternKind::kWildcard:
      return "_";
    case PatternKind::kSpecialX:
      return "x";
    case PatternKind::kConstant:
      return pool.Text(value_);
  }
  return "?";
}

}  // namespace cfdprop
