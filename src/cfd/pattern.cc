#include "src/cfd/pattern.h"

#include "src/base/wire.h"

namespace cfdprop {

std::string PatternValue::ToString(const ValuePool& pool) const {
  switch (kind_) {
    case PatternKind::kWildcard:
      return "_";
    case PatternKind::kSpecialX:
      return "x";
    case PatternKind::kConstant:
      return pool.Text(value_);
  }
  return "?";
}

void PatternValue::AppendSnapshotBytes(
    std::string& out, const std::function<uint32_t(Value)>& value_index)
    const {
  wire::PutU8(out, static_cast<uint8_t>(kind_));
  if (kind_ == PatternKind::kConstant) {
    wire::PutU32(out, value_index(value_));
  }
}

Result<PatternValue> PatternValue::FromSnapshotBytes(
    std::string_view bytes, size_t* pos,
    const std::function<Result<Value>(uint32_t)>& value_at) {
  uint8_t kind = 0;
  if (!wire::GetU8(bytes, pos, &kind)) {
    return Status::InvalidArgument("pattern entry truncated");
  }
  switch (static_cast<PatternKind>(kind)) {
    case PatternKind::kWildcard:
      return Wildcard();
    case PatternKind::kSpecialX:
      return SpecialX();
    case PatternKind::kConstant: {
      uint32_t index = 0;
      if (!wire::GetU32(bytes, pos, &index)) {
        return Status::InvalidArgument("pattern constant truncated");
      }
      CFDPROP_ASSIGN_OR_RETURN(Value v, value_at(index));
      return Constant(v);
    }
  }
  return Status::InvalidArgument("unknown pattern kind byte");
}

}  // namespace cfdprop
