// Pattern values and the operators the paper defines on them.
//
// A pattern-tuple entry is one of
//   * a constant 'a' from the attribute's domain,
//   * the unnamed variable '_' drawing values from the domain, or
//   * the special variable 'x' used only by view CFDs of the form
//     R(A -> B, (x || x)) that encode a selection condition A = B.
//
// Three relations drive all reasoning (Section 2.1 and 4.2):
//   * match   (written # in the paper text):  e1 # e2 iff e1 = e2 or one
//     of them is '_';
//   * order   (<=): e1 <= e2 iff e1 and e2 are the same constant, or
//     e2 = '_' (so constants sit below '_');
//   * min / oplus: the meet under <= used to build A-resolvents in RBR.

#ifndef CFDPROP_CFD_PATTERN_H_
#define CFDPROP_CFD_PATTERN_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/base/value.h"

namespace cfdprop {

enum class PatternKind : uint8_t {
  kWildcard = 0,  // '_'
  kConstant = 1,  // 'a'
  kSpecialX = 2,  // 'x' (view CFDs expressing A = B)
};

/// One entry of a pattern tuple.
class PatternValue {
 public:
  /// Default-constructs the wildcard '_'.
  PatternValue() : kind_(PatternKind::kWildcard), value_(kNoValue) {}

  static PatternValue Wildcard() { return PatternValue(); }
  static PatternValue Constant(Value v) {
    PatternValue p;
    p.kind_ = PatternKind::kConstant;
    p.value_ = v;
    return p;
  }
  static PatternValue SpecialX() {
    PatternValue p;
    p.kind_ = PatternKind::kSpecialX;
    return p;
  }

  PatternKind kind() const { return kind_; }
  bool is_wildcard() const { return kind_ == PatternKind::kWildcard; }
  bool is_constant() const { return kind_ == PatternKind::kConstant; }
  bool is_special_x() const { return kind_ == PatternKind::kSpecialX; }

  /// The constant; only valid when is_constant().
  Value value() const { return value_; }

  /// Data-level match: v # p. A constant matches itself; '_' matches
  /// every value. (SpecialX never matches at the data level; equality of
  /// two columns is enforced separately.)
  bool MatchesValue(Value v) const {
    return is_wildcard() || (is_constant() && value_ == v);
  }

  /// Pattern-level match p1 # p2: equal, or either side is '_'.
  static bool Matches(const PatternValue& p1, const PatternValue& p2) {
    return p1.is_wildcard() || p2.is_wildcard() || p1 == p2;
  }

  /// Partial order p1 <= p2: same constant, or p2 = '_'.
  static bool LessEq(const PatternValue& p1, const PatternValue& p2) {
    if (p2.is_wildcard()) return true;
    return p1 == p2;
  }

  /// min(p1, p2) under <=, i.e. the pattern-tuple oplus at one position:
  /// defined iff p1 <= p2 or p2 <= p1 (then the smaller one), otherwise
  /// nullopt (two distinct constants).
  static std::optional<PatternValue> Min(const PatternValue& p1,
                                         const PatternValue& p2) {
    if (LessEq(p1, p2)) return p1;
    if (LessEq(p2, p1)) return p2;
    return std::nullopt;
  }

  bool operator==(const PatternValue& o) const {
    return kind_ == o.kind_ && (kind_ != PatternKind::kConstant ||
                                value_ == o.value_);
  }
  bool operator!=(const PatternValue& o) const { return !(*this == o); }

  /// "_", "x", or the constant's text.
  std::string ToString(const ValuePool& pool) const;

  /// Appends the stable snapshot encoding of this entry: the kind byte
  /// (PatternKind's numeric values are part of the wire format and must
  /// never be renumbered), plus — for constants only — a 32-bit
  /// string-table index obtained from `value_index`. Value ids are
  /// process-local, so snapshots never store them directly; the caller's
  /// `value_index` assigns pool-independent table slots.
  void AppendSnapshotBytes(
      std::string& out,
      const std::function<uint32_t(Value)>& value_index) const;

  /// Decodes one entry encoded by AppendSnapshotBytes from bytes[*pos..],
  /// advancing *pos past it. `value_at` maps a string-table index to a
  /// Value of the *loading* process's pool (the snapshot loader interns
  /// lazily, so only indices a kept cover references ever intern) and
  /// errors on an out-of-range index. Fails cleanly — never reads out
  /// of bounds — on truncation or an unknown kind byte.
  static Result<PatternValue> FromSnapshotBytes(
      std::string_view bytes, size_t* pos,
      const std::function<Result<Value>(uint32_t)>& value_at);

 private:
  PatternKind kind_;
  Value value_ = kNoValue;
};

}  // namespace cfdprop

#endif  // CFDPROP_CFD_PATTERN_H_
