#include "src/workload/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/cfd/cfd.h"
#include "src/net/cover_client.h"
#include "src/net/cover_server.h"
#include "src/obs/metrics.h"
#include "src/service/catalog_service.h"

namespace cfdprop {
namespace workload {

namespace {

using gen::WorkloadOp;
using gen::WorkloadPlan;

using ViewsMap = std::map<std::string, SPCUView>;

/// Per-tenant runner state. The views map is what batches resolve names
/// against; a reopen swaps in the regenerated spec's map (same bytes —
/// BuildTenantSpec is deterministic — but a fresh ValuePool).
struct TenantRuntime {
  std::string name;
  std::mutex mu;
  std::shared_ptr<const ViewsMap> views;
};

/// Counters shared by every worker; folded into the report at the end.
struct Totals {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> covers{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> churn_ops{0};
  std::atomic<uint64_t> reopens{0};
  std::atomic<uint64_t> restored{0};
};

/// Spins until `tenant` has no queued or running batches. Admission
/// releases a slot only after the reply is delivered, so a worker that
/// just drained its futures can still observe the decrement a beat
/// late — burst determinism needs in-service == 0 at the admission
/// decision, hence this barrier before every burst-reject burst.
void WaitTenantDrained(CatalogService& service, const std::string& tenant) {
  for (int spin = 0; spin < 200000; ++spin) {
    const ServiceStatsSnapshot stats = service.Stats();
    for (const TenantStatsSnapshot& t : stats.tenants) {
      if (t.name != tenant) continue;
      if (t.queued + t.running == 0) return;
      break;
    }
    if (spin >= 199999) return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

class Worker {
 public:
  Worker(const WorkloadPlan& plan, const RunnerOptions& options,
         CatalogService& service, net::CoverServer* server,
         std::vector<std::unique_ptr<TenantRuntime>>& tenants,
         Totals& totals, obs::Histogram& latency)
      : plan_(plan),
        options_(options),
        service_(service),
        server_(server),
        tenants_(tenants),
        totals_(totals),
        latency_(latency),
        // Pool-independent (wildcards only), so one instance serves
        // every tenant regardless of reopens: R0(A0 A1 -> A2).
        churn_cfd_(CFD::FD(0, {0, 1}, 2).value()) {}

  /// Runs one client script. Serving errors are counted; only transport
  /// setup (connect) is fatal.
  Status Run(size_t client) {
    if (options_.over_tcp) {
      net::CoverClientOptions copts;
      copts.port = server_->port();
      copts.connect_timeout = std::chrono::milliseconds(10000);
      copts.io_timeout = options_.io_timeout;
      client_ = std::make_unique<net::CoverClient>(copts);
      CFDPROP_RETURN_NOT_OK(client_->Connect());
    }
    for (const WorkloadOp& op : plan_.scripts[client]) {
      TenantRuntime& tenant = *tenants_[op.tenant];
      switch (op.type) {
        case WorkloadOp::Type::kBatch:
          RunBatches(tenant, op.batches, nullptr);
          break;
        case WorkloadOp::Type::kBurst: {
          // Drain before deciding: the pattern is then a function of the
          // caps alone. This is a guarantee only for burst-reject, whose
          // pinned scripts mean nobody else touches this tenant; mixed
          // bursts race with other clients' batches by design, so their
          // pattern is reported but not asserted anywhere.
          WaitTenantDrained(service_, tenant.name);
          RunBatches(tenant, op.batches, &pattern_);
          break;
        }
        case WorkloadOp::Type::kChurnAdd:
        case WorkloadOp::Type::kChurnDrop:
          RunChurn(tenant, op.type == WorkloadOp::Type::kChurnAdd);
          break;
        case WorkloadOp::Type::kSpill: {
          auto spilled = service_.SpillTenant(tenant.name);
          if (!spilled.ok()) {
            totals_.errors.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        case WorkloadOp::Type::kReopen:
          RunReopen(tenant, op.tenant);
          break;
      }
    }
    return Status::OK();
  }

  const std::string& pattern() const { return pattern_; }

 private:
  /// Submits every batch in one admission decision (a single batch is
  /// just a burst of one) and waits for all replies. With `pattern` set,
  /// appends one 'A'/'R'/'E' per batch.
  void RunBatches(TenantRuntime& tenant,
                  const std::vector<std::vector<std::string>>& batches,
                  std::string* pattern) {
    size_t n = 0;
    for (const auto& b : batches) n += b.size();
    totals_.requests.fetch_add(n, std::memory_order_relaxed);
    totals_.batches.fetch_add(batches.size(), std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    if (options_.over_tcp) {
      RunBatchesTcp(tenant, batches, pattern);
    } else {
      RunBatchesInproc(tenant, batches, pattern);
    }
    latency_.Record(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }

  void CountResult(const Status& status, std::string* pattern) {
    char letter = 'A';
    if (!status.ok()) {
      letter = status.code() == StatusCode::kResourceExhausted ? 'R' : 'E';
      if (letter == 'E') {
        totals_.errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (pattern) pattern->push_back(letter);
  }

  void RunBatchesInproc(TenantRuntime& tenant,
                        const std::vector<std::vector<std::string>>& batches,
                        std::string* pattern) {
    std::shared_ptr<const ViewsMap> views;
    {
      std::lock_guard<std::mutex> lock(tenant.mu);
      views = tenant.views;
    }
    std::vector<std::vector<Engine::Request>> requests;
    requests.reserve(batches.size());
    for (const auto& names : batches) {
      std::vector<Engine::Request> batch;
      batch.reserve(names.size());
      for (const std::string& name : names) {
        auto it = views->find(name);
        if (it == views->end()) continue;  // plans only name known views
        batch.push_back({it->second, /*sigma_id=*/0});
      }
      requests.push_back(std::move(batch));
    }
    auto submitted = service_.SubmitBatches(tenant.name, std::move(requests));
    // Collect futures only after every slot's admission is known — the
    // pattern reflects the one-lock decision, not completion order.
    for (auto& slot : submitted) {
      CountResult(slot.ok() ? Status::OK() : slot.status(), pattern);
    }
    for (auto& slot : submitted) {
      if (!slot.ok()) continue;
      BatchReply reply = slot.value().get();
      for (const Result<EngineResult>& r : reply.results) {
        if (r.ok()) {
          totals_.covers.fetch_add(1, std::memory_order_relaxed);
        } else {
          totals_.errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  void RunBatchesTcp(TenantRuntime& tenant,
                     const std::vector<std::vector<std::string>>& batches,
                     std::string* pattern) {
    // RoundTrip drops the connection on failure; reconnect so one
    // transport hiccup doesn't starve the rest of the script.
    if (!client_->connected()) {
      if (Status c = client_->Connect(); !c.ok()) {
        totals_.errors.fetch_add(batches.size(), std::memory_order_relaxed);
        if (pattern) pattern->append(batches.size(), 'E');
        return;
      }
    }
    auto replies =
        client_->SubmitBatches(tenant.name, batches, scratch_.pool());
    if (!replies.ok()) {
      totals_.errors.fetch_add(batches.size(), std::memory_order_relaxed);
      if (pattern) pattern->append(batches.size(), 'E');
      return;
    }
    for (const net::WireBatchResult& batch : *replies) {
      CountResult(batch.status, pattern);
      if (!batch.status.ok()) continue;
      for (const Result<EngineResult>& r : batch.results) {
        if (r.ok()) {
          totals_.covers.fetch_add(1, std::memory_order_relaxed);
        } else {
          totals_.errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }

  void RunChurn(TenantRuntime& tenant, bool add) {
    auto handle = service_.ResolveCatalog(tenant.name);
    if (!handle.ok()) {
      totals_.errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Status mutated = add
                         ? (*handle)->engine().AddCfd(0, churn_cfd_)
                         : (*handle)->engine().RetractCfd(0, churn_cfd_);
    if (mutated.ok()) {
      totals_.churn_ops.fetch_add(1, std::memory_order_relaxed);
    } else {
      totals_.errors.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Drop + re-open from a regenerated (byte-identical) spec. With a
  /// snapshot_dir configured the drop flushes and the open warm-starts,
  /// so the reopened tenant serves its old covers as hits.
  void RunReopen(TenantRuntime& tenant, size_t tenant_index) {
    Spec spec = gen::BuildTenantSpec(plan_, tenant_index);
    auto views = std::make_shared<const ViewsMap>(spec.views);
    uint64_t restored = 0;
    if (options_.over_tcp) {
      Status dropped = client_->DropCatalog(tenant.name);
      if (!dropped.ok()) {
        totals_.errors.fetch_add(1, std::memory_order_relaxed);
      }
      auto opened = server_->OpenParsedSpec(tenant.name, std::move(spec));
      if (!opened.ok()) {
        totals_.errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      restored = opened->restored;
    } else {
      Status dropped = service_.DropCatalog(tenant.name);
      if (!dropped.ok()) {
        totals_.errors.fetch_add(1, std::memory_order_relaxed);
      }
      std::vector<std::vector<CFD>> sigmas = {spec.source_cfds};
      Catalog catalog = std::move(spec.catalog);
      auto handle = service_.OpenCatalog(tenant.name, std::move(catalog),
                                         std::move(sigmas));
      if (!handle.ok()) {
        totals_.errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      restored = (*handle)->engine().Stats().cache.restored;
    }
    totals_.reopens.fetch_add(1, std::memory_order_relaxed);
    totals_.restored.fetch_add(restored, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(tenant.mu);
    tenant.views = std::move(views);
  }

  const WorkloadPlan& plan_;
  const RunnerOptions& options_;
  CatalogService& service_;
  net::CoverServer* server_;
  std::vector<std::unique_ptr<TenantRuntime>>& tenants_;
  Totals& totals_;
  obs::Histogram& latency_;
  CFD churn_cfd_;
  std::unique_ptr<net::CoverClient> client_;
  Catalog scratch_;  // tcp decode pool
  std::string pattern_;
};

}  // namespace

std::string WorkloadReport::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s [%s]: %llu covers in %.3f s (%.0f covers/s) "
      "p50=%.0fus p95=%.0fus p99=%.0fus hits=%.1f%% "
      "admitted=%llu rejected=%llu errors=%llu",
      workload.c_str(), path.c_str(),
      static_cast<unsigned long long>(covers_served), elapsed_s,
      covers_per_sec, p50_us, p95_us, p99_us, hit_rate_pct,
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(errors));
  return buf;
}

Result<WorkloadReport> RunWorkload(const gen::WorkloadPlan& plan,
                                   const RunnerOptions& options) {
  if (plan.needs_snapshots && options.snapshot_dir.empty()) {
    return Status::InvalidArgument(
        std::string(gen::WorkloadKindName(plan.options.kind)) +
        " spills snapshots; the runner needs a snapshot_dir");
  }

  ServiceOptions sopts;
  sopts.dispatcher_threads =
      options.dispatcher_threads
          ? options.dispatcher_threads
          : std::max<size_t>(2, plan.options.tenants);
  sopts.admission.max_inflight_batches = plan.max_inflight;
  sopts.admission.max_queued_batches = plan.max_queue;
  sopts.global_cache_budget =
      std::max<size_t>(4096, 1024 * plan.options.tenants);
  sopts.engine.num_threads = std::max<size_t>(1, options.engine_threads);
  sopts.snapshot_dir = options.snapshot_dir;
  CatalogService service(sopts);

  std::unique_ptr<net::CoverServer> server;
  if (options.over_tcp) {
    net::CoverServerOptions nopts;
    nopts.io_timeout = options.io_timeout;
    server = std::make_unique<net::CoverServer>(service, nopts);
    CFDPROP_RETURN_NOT_OK(server->Start());
  }

  std::vector<std::unique_ptr<TenantRuntime>> tenants;
  for (size_t t = 0; t < plan.options.tenants; ++t) {
    Spec spec = gen::BuildTenantSpec(plan, t);
    auto runtime = std::make_unique<TenantRuntime>();
    runtime->name = plan.TenantName(t);
    runtime->views = std::make_shared<const ViewsMap>(spec.views);
    if (options.over_tcp) {
      auto opened = server->OpenParsedSpec(runtime->name, std::move(spec));
      CFDPROP_RETURN_NOT_OK(opened.status());
    } else {
      std::vector<std::vector<CFD>> sigmas = {spec.source_cfds};
      Catalog catalog = std::move(spec.catalog);
      auto handle = service.OpenCatalog(runtime->name, std::move(catalog),
                                        std::move(sigmas));
      CFDPROP_RETURN_NOT_OK(handle.status());
    }
    tenants.push_back(std::move(runtime));
  }

  Totals totals;
  obs::Histogram latency;
  const size_t clients = plan.scripts.size();
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workers.push_back(std::make_unique<Worker>(plan, options, service,
                                               server.get(), tenants, totals,
                                               latency));
  }

  std::vector<Status> worker_status(clients);
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back(
          [&, c] { worker_status[c] = workers[c]->Run(c); });
    }
    for (auto& t : threads) t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const Status& s : worker_status) CFDPROP_RETURN_NOT_OK(s);

  WorkloadReport report;
  report.workload = gen::WorkloadKindName(plan.options.kind);
  report.path = options.over_tcp ? "tcp" : "inproc";
  report.seed = plan.options.seed;
  report.stream_fingerprint = gen::FingerprintScripts(plan);
  report.requests = totals.requests.load();
  report.covers_served = totals.covers.load();
  report.batches = totals.batches.load();
  report.errors = totals.errors.load();
  report.churn_ops = totals.churn_ops.load();
  report.reopens = totals.reopens.load();
  report.restored_lines = totals.restored.load();
  report.elapsed_s = elapsed;
  report.covers_per_sec =
      elapsed > 0 ? static_cast<double>(report.covers_served) / elapsed : 0;
  const obs::HistogramSnapshot snap = latency.Snapshot();
  report.p50_us = snap.Quantile(0.50);
  report.p95_us = snap.Quantile(0.95);
  report.p99_us = snap.Quantile(0.99);
  for (const auto& w : workers) report.admit_pattern += w->pattern();

  // Admission totals and hit rate through the path under test: the
  // stats *frame* on tcp (so the determinism suite compares what a real
  // remote client would see), Stats() in process.
  uint64_t hits = 0, misses = 0;
  if (options.over_tcp) {
    net::CoverClientOptions copts;
    copts.port = server->port();
    copts.connect_timeout = std::chrono::milliseconds(10000);
    net::CoverClient stats_client(copts);
    CFDPROP_RETURN_NOT_OK(stats_client.Connect());
    CFDPROP_ASSIGN_OR_RETURN(net::WireServiceStats wire,
                             stats_client.Stats());
    for (const net::WireTenantStats& t : wire.tenants) {
      report.admitted += t.admitted;
      report.rejected += t.admission_rejected;
    }
  } else {
    const ServiceStatsSnapshot stats = service.Stats();
    for (const TenantStatsSnapshot& t : stats.tenants) {
      report.admitted += t.admitted;
      report.rejected += t.admission_rejected;
    }
  }
  {
    // Hit rate always from the in-process snapshot (the wire stats ship
    // the engine line as rendered text, not numbers).
    const ServiceStatsSnapshot stats = service.Stats();
    for (const TenantStatsSnapshot& t : stats.tenants) {
      hits += t.engine.cache.hits;
      misses += t.engine.cache.misses;
    }
  }
  report.hit_rate_pct =
      hits + misses > 0
          ? 100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0;

  if (server) server->Stop();
  return report;
}

}  // namespace workload
}  // namespace cfdprop
