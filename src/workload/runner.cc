#include "src/workload/runner.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/cfd/cfd.h"
#include "src/engine/snapshot.h"
#include "src/net/cover_backend.h"
#include "src/net/cover_router.h"
#include "src/net/cover_server.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/catalog_service.h"

namespace cfdprop {
namespace workload {

namespace {

using gen::WorkloadOp;
using gen::WorkloadPlan;

/// Counters shared by every worker; folded into the report at the end.
struct Totals {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> covers{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> churn_ops{0};
  std::atomic<uint64_t> reopens{0};
  std::atomic<uint64_t> restored{0};
  /// Wrapping sum of served cover fingerprints — commutative, so the
  /// aggregate is independent of thread interleaving.
  std::atomic<uint64_t> cover_fp{0};
};

/// Everything the chosen path stands up. One service/server on inproc
/// and tcp; router_shards of each plus the router on routed. Members
/// are declared in dependency order (services before the servers that
/// wrap them, router last) so teardown reverses it safely.
struct PathRuntime {
  std::vector<std::unique_ptr<CatalogService>> services;
  std::vector<std::unique_ptr<net::CoverServer>> servers;
  std::unique_ptr<net::InProcBackend> inproc;
  std::unique_ptr<net::CoverRouter> router;

  /// The shard owning `tenant`: the router's placement on routed, 0
  /// everywhere else.
  size_t ShardFor(const std::string& tenant) const {
    return router ? router->ShardFor(tenant) : 0;
  }
  CatalogService& ServiceFor(const std::string& tenant) {
    return *services[ShardFor(tenant)];
  }
  net::CoverServer& ServerFor(const std::string& tenant) {
    return *servers[ShardFor(tenant)];
  }
};

/// Spins until `tenant` has no queued or running batches. Admission
/// releases a slot only after the reply is delivered, so a worker that
/// just drained its futures can still observe the decrement a beat
/// late — burst determinism needs in-service == 0 at the admission
/// decision, hence this barrier before every burst-reject burst.
void WaitTenantDrained(CatalogService& service, const std::string& tenant) {
  for (int spin = 0; spin < 200000; ++spin) {
    const ServiceStatsSnapshot stats = service.Stats();
    for (const TenantStatsSnapshot& t : stats.tenants) {
      if (t.name != tenant) continue;
      if (t.queued + t.running == 0) return;
      break;
    }
    if (spin >= 199999) return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

class Worker {
 public:
  Worker(const WorkloadPlan& plan, const RunnerOptions& options,
         PathRuntime& rt, Totals& totals, obs::Histogram& latency)
      : plan_(plan),
        options_(options),
        rt_(rt),
        totals_(totals),
        latency_(latency),
        // Pool-independent (wildcards only), so one instance serves
        // every tenant regardless of reopens: R0(A0 A1 -> A2).
        churn_cfd_(CFD::FD(0, {0, 1}, 2).value()) {}

  /// Runs one client script. Serving errors are counted; only transport
  /// setup (connect) is fatal.
  Status Run(size_t client) {
    // The path injection: which CoverBackend this worker talks to. The
    // shared backends (inproc, router) are thread-safe; the tcp path
    // gives every worker its own single-conversation RemoteBackend.
    switch (options_.path) {
      case RunnerPath::kInproc:
        backend_ = rt_.inproc.get();
        break;
      case RunnerPath::kRouted:
        backend_ = rt_.router.get();
        break;
      case RunnerPath::kTcp: {
        net::CoverClientOptions copts;
        copts.port = rt_.servers[0]->port();
        copts.connect_timeout = std::chrono::milliseconds(10000);
        copts.io_timeout = options_.io_timeout;
        remote_ = std::make_unique<net::RemoteBackend>(copts);
        CFDPROP_RETURN_NOT_OK(remote_->Connect());
        backend_ = remote_.get();
        break;
      }
    }
    for (const WorkloadOp& op : plan_.scripts[client]) {
      const std::string tenant = plan_.TenantName(op.tenant);
      switch (op.type) {
        case WorkloadOp::Type::kBatch:
          RunBatches(tenant, op.batches, nullptr);
          break;
        case WorkloadOp::Type::kBurst: {
          // Drain before deciding: the pattern is then a function of the
          // caps alone. This is a guarantee only for burst-reject, whose
          // pinned scripts mean nobody else touches this tenant; mixed
          // bursts race with other clients' batches by design, so their
          // pattern is reported but not asserted anywhere.
          WaitTenantDrained(rt_.ServiceFor(tenant), tenant);
          RunBatches(tenant, op.batches, &pattern_);
          break;
        }
        case WorkloadOp::Type::kChurnAdd:
        case WorkloadOp::Type::kChurnDrop:
          RunChurn(tenant, op.type == WorkloadOp::Type::kChurnAdd);
          break;
        case WorkloadOp::Type::kSpill: {
          auto spilled = rt_.ServiceFor(tenant).SpillTenant(tenant);
          if (!spilled.ok()) {
            totals_.errors.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        case WorkloadOp::Type::kReopen:
          RunReopen(tenant, op.tenant);
          break;
      }
    }
    return Status::OK();
  }

  const std::string& pattern() const { return pattern_; }

 private:
  /// Submits every batch in one admission decision (a single batch is
  /// just a burst of one) and waits for all replies. With `pattern` set,
  /// appends one 'A'/'R'/'E' per batch. One code path for every
  /// backend — the decode pool only matters on the wire paths.
  void RunBatches(const std::string& tenant,
                  const std::vector<std::vector<std::string>>& batches,
                  std::string* pattern) {
    size_t n = 0;
    for (const auto& b : batches) n += b.size();
    totals_.requests.fetch_add(n, std::memory_order_relaxed);
    totals_.batches.fetch_add(batches.size(), std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    auto replies = backend_->SubmitBatches(tenant, batches, scratch_.pool());
    if (!replies.ok()) {
      // The whole call failed (tenant mid-reopen, transport hiccup):
      // every slot is an error.
      totals_.errors.fetch_add(batches.size(), std::memory_order_relaxed);
      if (pattern) pattern->append(batches.size(), 'E');
    } else {
      // The content hash needs the pool the covers' constants are
      // interned in: the wire paths decoded into this worker's scratch
      // pool, while inproc results live in the tenant's own pool — pin
      // the tenant so that pool outlives the hashing. (A reopen racing
      // us can make the pin miss; those churny scenarios are never
      // fingerprint-compared, so skipping the fold there is fine.)
      const ValuePool* pool = &scratch_.pool();
      TenantHandle pin;
      if (options_.path == RunnerPath::kInproc) {
        auto handle = rt_.ServiceFor(tenant).ResolveCatalog(tenant);
        if (handle.ok()) {
          pin = std::move(handle).value();
          pool = &pin->engine().catalog().pool();
        } else {
          pool = nullptr;
        }
      }
      for (const BatchResult& batch : *replies) {
        CountResult(batch.status, pattern);
        if (!batch.status.ok()) continue;
        for (const Result<EngineResult>& r : batch.results) {
          if (r.ok()) {
            totals_.covers.fetch_add(1, std::memory_order_relaxed);
            if (pool != nullptr && r->cover != nullptr) {
              totals_.cover_fp.fetch_add(
                  FingerprintSigmaSet(*pool, r->cover->cover),
                  std::memory_order_relaxed);
            }
          } else {
            totals_.errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
    latency_.Record(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }

  void CountResult(const Status& status, std::string* pattern) {
    char letter = 'A';
    if (!status.ok()) {
      letter = status.code() == StatusCode::kResourceExhausted ? 'R' : 'E';
      if (letter == 'E') {
        totals_.errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (pattern) pattern->push_back(letter);
  }

  void RunChurn(const std::string& tenant, bool add) {
    auto handle = rt_.ServiceFor(tenant).ResolveCatalog(tenant);
    if (!handle.ok()) {
      totals_.errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Status mutated = add
                         ? (*handle)->engine().AddCfd(0, churn_cfd_)
                         : (*handle)->engine().RetractCfd(0, churn_cfd_);
    if (mutated.ok()) {
      totals_.churn_ops.fetch_add(1, std::memory_order_relaxed);
    } else {
      totals_.errors.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Drop + re-open from a regenerated (byte-identical) spec. With a
  /// snapshot_dir configured the drop flushes and the open warm-starts,
  /// so the reopened tenant serves its old covers as hits. The drop
  /// travels through the path under test; the re-open is in-process on
  /// the owning shard's server — generated specs have no text form for
  /// the wire to carry.
  void RunReopen(const std::string& tenant, size_t tenant_index) {
    Spec spec = gen::BuildTenantSpec(plan_, tenant_index);
    Status dropped = backend_->DropCatalog(tenant);
    if (!dropped.ok()) {
      totals_.errors.fetch_add(1, std::memory_order_relaxed);
    }
    uint64_t restored = 0;
    if (options_.path == RunnerPath::kInproc) {
      auto opened = rt_.inproc->OpenParsedSpec(tenant, std::move(spec));
      if (!opened.ok()) {
        totals_.errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      restored = opened->restored;
    } else {
      auto opened =
          rt_.ServerFor(tenant).OpenParsedSpec(tenant, std::move(spec));
      if (!opened.ok()) {
        totals_.errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      restored = opened->restored;
    }
    totals_.reopens.fetch_add(1, std::memory_order_relaxed);
    totals_.restored.fetch_add(restored, std::memory_order_relaxed);
  }

  const WorkloadPlan& plan_;
  const RunnerOptions& options_;
  PathRuntime& rt_;
  Totals& totals_;
  obs::Histogram& latency_;
  CFD churn_cfd_;
  net::CoverBackend* backend_ = nullptr;
  std::unique_ptr<net::RemoteBackend> remote_;  // tcp path only
  Catalog scratch_;  // wire decode pool
  std::string pattern_;
};

}  // namespace

const char* RunnerPathName(RunnerPath path) {
  switch (path) {
    case RunnerPath::kInproc:
      return "inproc";
    case RunnerPath::kTcp:
      return "tcp";
    case RunnerPath::kRouted:
      return "routed";
  }
  return "unknown";
}

Result<RunnerPath> ParseRunnerPath(const std::string& name) {
  if (name == "inproc") return RunnerPath::kInproc;
  if (name == "tcp") return RunnerPath::kTcp;
  if (name == "routed") return RunnerPath::kRouted;
  return Status::InvalidArgument("unknown path '" + name +
                                 "' (inproc|tcp|routed)");
}

std::string WorkloadReport::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s [%s]: %llu covers in %.3f s (%.0f covers/s) "
      "p50=%.0fus p95=%.0fus p99=%.0fus hits=%.1f%% "
      "admitted=%llu rejected=%llu errors=%llu",
      workload.c_str(), path.c_str(),
      static_cast<unsigned long long>(covers_served), elapsed_s,
      covers_per_sec, p50_us, p95_us, p99_us, hit_rate_pct,
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(errors));
  std::string out = buf;
  if (migrations > 0) {
    std::snprintf(buf, sizeof(buf),
                  " migrations=%llu (%.1f/s, restored=%llu)",
                  static_cast<unsigned long long>(migrations),
                  migrations_per_sec,
                  static_cast<unsigned long long>(migrated_lines));
    out += buf;
  }
  return out;
}

Result<WorkloadReport> RunWorkload(const gen::WorkloadPlan& plan,
                                   const RunnerOptions& options) {
  if (plan.needs_snapshots && options.snapshot_dir.empty()) {
    return Status::InvalidArgument(
        std::string(gen::WorkloadKindName(plan.options.kind)) +
        " spills snapshots; the runner needs a snapshot_dir");
  }

  const size_t shards = options.path == RunnerPath::kRouted
                            ? std::max<size_t>(2, options.router_shards)
                            : 1;

  // Tracing is opt-in: with both knobs negative no tracer is installed
  // and every instrumentation site in the run costs one atomic load.
  // Declared before the runtime so teardown (which may still record
  // spans from dispatcher tails) finishes before the uninstall.
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::ScopedProcessTracer> scoped_tracer;
  if (options.trace_sample_shift >= 0 || options.slow_threshold_us >= 0) {
    obs::ObsOptions topts;
    topts.trace_sample_shift = options.trace_sample_shift;
    topts.slow_threshold_us = options.slow_threshold_us;
    topts.trace_seed = options.trace_seed;
    tracer = std::make_unique<obs::Tracer>(topts);
    scoped_tracer = std::make_unique<obs::ScopedProcessTracer>(tracer.get());
  }

  PathRuntime rt;
  for (size_t s = 0; s < shards; ++s) {
    ServiceOptions sopts;
    sopts.dispatcher_threads =
        options.dispatcher_threads
            ? options.dispatcher_threads
            : std::max<size_t>(2, plan.options.tenants);
    sopts.admission.max_inflight_batches = plan.max_inflight;
    sopts.admission.max_queued_batches = plan.max_queue;
    sopts.global_cache_budget =
        std::max<size_t>(4096, 1024 * plan.options.tenants);
    sopts.engine.num_threads = std::max<size_t>(1, options.engine_threads);
    sopts.snapshot_dir = options.snapshot_dir;
    if (shards > 1 && !options.snapshot_dir.empty()) {
      // Per-shard spill directories: after a migration both the source
      // (pre-drop flush) and the target would otherwise fight over one
      // <tenant>.ccsnap file.
      const std::string dir =
          options.snapshot_dir + "/shard" + std::to_string(s);
      ::mkdir(dir.c_str(), 0755);  // may already exist
      sopts.snapshot_dir = dir;
    }
    rt.services.push_back(std::make_unique<CatalogService>(sopts));
  }

  if (options.path != RunnerPath::kInproc) {
    for (auto& service : rt.services) {
      net::CoverServerOptions nopts;
      nopts.io_timeout = options.io_timeout;
      auto server = std::make_unique<net::CoverServer>(*service, nopts);
      CFDPROP_RETURN_NOT_OK(server->Start());
      rt.servers.push_back(std::move(server));
    }
  }
  if (options.path == RunnerPath::kInproc) {
    rt.inproc = std::make_unique<net::InProcBackend>(*rt.services[0]);
  }
  if (options.path == RunnerPath::kRouted) {
    net::CoverRouterOptions ropts;
    for (auto& server : rt.servers) {
      net::CoverClientOptions copts;
      copts.port = server->port();
      copts.connect_timeout = std::chrono::milliseconds(10000);
      copts.io_timeout = options.io_timeout;
      ropts.shards.push_back(copts);
    }
    rt.router = std::make_unique<net::CoverRouter>(std::move(ropts));
  }

  // Open every tenant on its owning shard (the ring decides on routed;
  // shard 0 otherwise). In process on every path: the specs are
  // generated, so there is no text to ship over the wire.
  for (size_t t = 0; t < plan.options.tenants; ++t) {
    const std::string name = plan.TenantName(t);
    Spec spec = gen::BuildTenantSpec(plan, t);
    if (options.path == RunnerPath::kInproc) {
      auto opened = rt.inproc->OpenParsedSpec(name, std::move(spec));
      CFDPROP_RETURN_NOT_OK(opened.status());
    } else {
      auto opened = rt.ServerFor(name).OpenParsedSpec(name, std::move(spec));
      CFDPROP_RETURN_NOT_OK(opened.status());
    }
  }

  Totals totals;
  obs::Histogram latency;
  const size_t clients = plan.scripts.size();
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workers.push_back(
        std::make_unique<Worker>(plan, options, rt, totals, latency));
  }

  std::vector<Status> worker_status(clients);
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back(
          [&, c] { worker_status[c] = workers[c]->Run(c); });
    }
    for (auto& t : threads) t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const Status& s : worker_status) CFDPROP_RETURN_NOT_OK(s);

  WorkloadReport report;
  report.workload = gen::WorkloadKindName(plan.options.kind);
  report.path = RunnerPathName(options.path);
  report.seed = plan.options.seed;
  report.stream_fingerprint = gen::FingerprintScripts(plan);
  report.requests = totals.requests.load();
  report.covers_served = totals.covers.load();
  report.batches = totals.batches.load();
  report.errors = totals.errors.load();
  report.churn_ops = totals.churn_ops.load();
  report.reopens = totals.reopens.load();
  report.restored_lines = totals.restored.load();
  report.cover_fingerprint = totals.cover_fp.load();
  report.elapsed_s = elapsed;
  report.covers_per_sec =
      elapsed > 0 ? static_cast<double>(report.covers_served) / elapsed : 0;
  const obs::HistogramSnapshot snap = latency.Snapshot();
  report.p50_us = snap.Quantile(0.50);
  report.p95_us = snap.Quantile(0.95);
  report.p99_us = snap.Quantile(0.99);
  for (const auto& w : workers) report.admit_pattern += w->pattern();

  // Admission totals through the path under test: the stats wire frame
  // on tcp, the router's cross-shard aggregate on routed, Stats() in
  // process — so the determinism suite compares what a real remote
  // client would see.
  if (options.path == RunnerPath::kTcp) {
    net::CoverClientOptions copts;
    copts.port = rt.servers[0]->port();
    copts.connect_timeout = std::chrono::milliseconds(10000);
    net::CoverClient stats_client(copts);
    CFDPROP_RETURN_NOT_OK(stats_client.Connect());
    CFDPROP_ASSIGN_OR_RETURN(net::WireServiceStats wire,
                             stats_client.Stats());
    for (const net::WireTenantStats& t : wire.tenants) {
      report.admitted += t.admitted;
      report.rejected += t.admission_rejected;
    }
  } else if (options.path == RunnerPath::kRouted) {
    CFDPROP_ASSIGN_OR_RETURN(net::WireServiceStats wire, rt.router->Stats());
    for (const net::WireTenantStats& t : wire.tenants) {
      report.admitted += t.admitted;
      report.rejected += t.admission_rejected;
    }
  } else {
    const ServiceStatsSnapshot stats = rt.services[0]->Stats();
    for (const TenantStatsSnapshot& t : stats.tenants) {
      report.admitted += t.admitted;
      report.rejected += t.admission_rejected;
    }
  }
  {
    // Hit rate always from the in-process snapshots (the wire stats
    // ship the engine line as rendered text, not numbers).
    uint64_t hits = 0, misses = 0;
    for (auto& service : rt.services) {
      const ServiceStatsSnapshot stats = service->Stats();
      for (const TenantStatsSnapshot& t : stats.tenants) {
        hits += t.engine.cache.hits;
        misses += t.engine.cache.misses;
      }
    }
    report.hit_rate_pct =
        hits + misses > 0 ? 100.0 * static_cast<double>(hits) /
                                static_cast<double>(hits + misses)
                          : 0;
  }

  // Routed epilogue, after every counter above is read (a migration
  // drops the source copy, which would erase its admission history):
  // live-migrate every tenant one shard clockwise through the router's
  // machinery — drain + snapshot fetch over the wire, in-process
  // warm-start on the target (generated specs have no text), route
  // flip, source drop — and report the throughput.
  if (options.path == RunnerPath::kRouted) {
    const auto m0 = std::chrono::steady_clock::now();
    for (size_t t = 0; t < plan.options.tenants; ++t) {
      const std::string name = plan.TenantName(t);
      const size_t src = rt.router->ShardFor(name);
      const size_t dst = (src + 1) % shards;
      if (!rt.router->BeginMigration(name).ok()) continue;
      auto snapshot = rt.router->FetchSnapshotFrom(src, name);
      if (!snapshot.ok()) {
        rt.router->AbortMigration(name);
        continue;
      }
      Spec spec = gen::BuildTenantSpec(plan, t);
      auto opened = rt.servers[dst]->OpenParsedSpecFromSnapshot(
          name, std::move(spec), *snapshot);
      if (!opened.ok()) {
        rt.router->AbortMigration(name);
        continue;
      }
      CFDPROP_RETURN_NOT_OK(rt.router->CompleteMigration(name, dst));
      (void)rt.router->DropCatalogOn(src, name);  // route is flipped
      report.migrations++;
      report.migrated_lines += opened->restored;
    }
    const double m_elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - m0)
                                 .count();
    report.migrations_per_sec =
        m_elapsed > 0 ? static_cast<double>(report.migrations) / m_elapsed
                      : 0;
  }

  // Per-stage latency breakdown from the tracer's rings: every sampled
  // span of the run (all layers live in this process on every path, so
  // one snapshot sees the whole tree), grouped by span name, quantiles
  // over the raw durations (nearest rank — these are exact samples, not
  // histogram buckets).
  if (tracer != nullptr) {
    report.spans_recorded = tracer->spans_recorded();
    report.spans_dropped = tracer->spans_dropped();
    report.slow_requests = tracer->slow_requests();
    std::map<std::string, std::vector<double>> by_stage;
    for (const obs::SpanRecord& span : tracer->Snapshot()) {
      // Slow-ring copies would double-count the sampled population;
      // the quantiles describe the unbiased sample only.
      if (span.slow) continue;
      by_stage[span.name].push_back(static_cast<double>(span.dur_us));
    }
    auto rank = [](const std::vector<double>& sorted, double q) {
      size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size()));
      if (idx >= sorted.size()) idx = sorted.size() - 1;
      return sorted[idx];
    };
    for (auto& entry : by_stage) {
      std::vector<double>& durs = entry.second;
      std::sort(durs.begin(), durs.end());
      WorkloadReport::StageLatency stage;
      stage.stage = entry.first;
      stage.spans = durs.size();
      stage.p50_us = rank(durs, 0.50);
      stage.p95_us = rank(durs, 0.95);
      stage.p99_us = rank(durs, 0.99);
      report.stages.push_back(std::move(stage));
    }
  }

  for (auto& server : rt.servers) server->Stop();
  return report;
}

}  // namespace workload
}  // namespace cfdprop
