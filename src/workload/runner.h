// Executes a gen::WorkloadPlan over any serving path and measures it.
// Workers program against the CoverBackend interface (src/net) — the
// path choice is an injection, not a branch:
//
//   * inproc — one shared InProcBackend over a CatalogService: name
//     resolution + future folding in process, no sockets;
//   * tcp    — a loopback CoverServer; every client thread gets its own
//     RemoteBackend (the full wire round trip: encode, checksum,
//     socket, decode, re-intern — with reconnect-and-reopen on drops);
//   * routed — `router_shards` loopback CoverServers behind one shared
//     CoverRouter: consistent-hash placement, per-shard services with
//     their own snapshot subdirectories. After the serving phase (and
//     after its counters are read) the runner live-migrates every
//     tenant one shard clockwise and reports the migration rate.
//
// One worker thread per client script; per-op latency lands in an
// obs::Histogram (log buckets, linear interpolation within a bucket)
// from which the report's p50/p95/p99 are read.
//
// Admission bookkeeping: burst ops append one letter per batch to the
// report's admit pattern — 'A' admitted, 'R' rejected
// (ResourceExhausted), 'E' any other error — and the admitted/rejected
// totals are read back from the service stats *through the path under
// test* (the stats wire frame on tcp, the router's cross-shard
// aggregate on routed), so the determinism suite can assert every path
// agrees about every decision. The report's cover_fingerprint is the
// wrapping sum of a pool-independent content hash of every served
// cover's CFDs (FingerprintSigmaSet) — order-independent, so two paths
// serving the same cover *bytes* report the same value no matter how
// their threads interleaved, and a path serving a wrong-but-cached
// cover cannot hide behind its request key.

#ifndef CFDPROP_WORKLOAD_RUNNER_H_
#define CFDPROP_WORKLOAD_RUNNER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/gen/workload.h"

namespace cfdprop {
namespace workload {

/// Which CoverBackend the workers are handed.
enum class RunnerPath {
  kInproc,  // InProcBackend over one CatalogService
  kTcp,     // RemoteBackend over one loopback CoverServer
  kRouted,  // CoverRouter over router_shards loopback CoverServers
};

/// "inproc" | "tcp" | "routed" — the --path spellings.
const char* RunnerPathName(RunnerPath path);
Result<RunnerPath> ParseRunnerPath(const std::string& name);

struct RunnerOptions {
  RunnerPath path = RunnerPath::kInproc;
  /// Engine worker threads per tenant (1 on the pinned-CPU CI).
  size_t engine_threads = 1;
  /// 0 = one dispatcher per tenant (min 2).
  size_t dispatcher_threads = 0;
  /// Directory for snapshot spills; required when the plan spills
  /// (snapshot-restart, tenant-churn). Must exist. The routed path
  /// creates one subdirectory per shard under it.
  std::string snapshot_dir;
  /// Socket deadline armed on both ends of the wire paths (0 = blocking).
  std::chrono::milliseconds io_timeout{0};
  /// Shards behind the router (routed path only; min 2).
  size_t router_shards = 3;

  /// Tracing (src/obs/trace.h): sample 1/2^k requests at the edge.
  /// Negative (the default) installs no tracer at all — the run is
  /// byte-identical to a build without tracing.
  int trace_sample_shift = -1;
  /// Slow-request capture threshold in microseconds; negative = off. A
  /// non-negative threshold installs the tracer even with sampling off.
  int64_t slow_threshold_us = -1;
  /// Seed for the tracer's id streams (deterministic dumps).
  uint64_t trace_seed = 0;
};

struct WorkloadReport {
  std::string workload;
  std::string path;  // RunnerPathName of the path run
  uint64_t seed = 0;
  /// The plan's request-stream fingerprint (gen::FingerprintScripts).
  uint64_t stream_fingerprint = 0;

  uint64_t requests = 0;        // view requests submitted
  uint64_t covers_served = 0;   // requests answered with an OK cover
  uint64_t batches = 0;         // batch + burst slots submitted
  uint64_t errors = 0;          // non-admission request/batch errors
  uint64_t churn_ops = 0;
  uint64_t reopens = 0;
  uint64_t restored_lines = 0;  // warm-start restores across reopens

  /// Wrapping sum of the pool-independent content hash
  /// (FingerprintSigmaSet) of every OK cover served. Scenario + seed
  /// determine it for churn-free plans, so equal values across paths
  /// mean the paths served byte-identical covers.
  uint64_t cover_fingerprint = 0;

  /// Admission totals as reported by the path under test (stats frame
  /// on tcp, router aggregate on routed, Stats() in process).
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  /// Concatenated per-burst patterns in client order ('A'/'R'/'E').
  std::string admit_pattern;

  /// Routed path only: live migrations performed after the serving
  /// phase (every tenant, one shard clockwise) and their rate.
  uint64_t migrations = 0;
  double migrations_per_sec = 0;
  /// Snapshot lines the migrations restored on their target shards.
  uint64_t migrated_lines = 0;

  double elapsed_s = 0;
  double covers_per_sec = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double hit_rate_pct = 0;

  /// Per-stage latency over the run's sampled spans (tracing on only):
  /// one row per span name (rpc/route/decode/admission/...), sorted by
  /// name, quantiles over the raw sampled durations — the bench's
  /// --json per-stage breakdown.
  struct StageLatency {
    std::string stage;
    uint64_t spans = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
  };
  std::vector<StageLatency> stages;
  /// Tracer health over the run (tracing on only).
  uint64_t spans_recorded = 0;
  uint64_t spans_dropped = 0;
  uint64_t slow_requests = 0;

  std::string ToString() const;
};

/// Runs the plan to completion. Fails (typed) on setup errors — a spec
/// that cannot open, a server that cannot bind, a missing snapshot_dir
/// for a spilling plan; per-request serving errors are counted, not
/// fatal.
Result<WorkloadReport> RunWorkload(const gen::WorkloadPlan& plan,
                                   const RunnerOptions& options);

}  // namespace workload
}  // namespace cfdprop

#endif  // CFDPROP_WORKLOAD_RUNNER_H_
