// Executes a gen::WorkloadPlan over either serving path and measures
// it: `inproc` drives CatalogService::SubmitBatch(es) directly, `tcp`
// stands up a loopback CoverServer and gives every client thread its
// own CoverClient — the full wire round trip (encode, checksum, socket,
// decode, re-intern) on exactly the same request stream. One worker
// thread per client script; per-op latency lands in an obs::Histogram
// (log buckets, linear interpolation within a bucket) from which the
// report's p50/p95/p99 are read.
//
// Admission bookkeeping: burst ops append one letter per batch to the
// report's admit pattern — 'A' admitted, 'R' rejected
// (ResourceExhausted), 'E' any other error — and the admitted/rejected
// totals are read back from the service stats *through the path under
// test* (the stats wire frame on tcp), so the determinism suite can
// assert the two paths agree about every decision.

#ifndef CFDPROP_WORKLOAD_RUNNER_H_
#define CFDPROP_WORKLOAD_RUNNER_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "src/base/status.h"
#include "src/gen/workload.h"

namespace cfdprop {
namespace workload {

struct RunnerOptions {
  /// false = in-process CatalogService; true = loopback TCP.
  bool over_tcp = false;
  /// Engine worker threads per tenant (1 on the pinned-CPU CI).
  size_t engine_threads = 1;
  /// 0 = one dispatcher per tenant (min 2).
  size_t dispatcher_threads = 0;
  /// Directory for snapshot spills; required when the plan spills
  /// (snapshot-restart, tenant-churn). Must exist.
  std::string snapshot_dir;
  /// Socket deadline armed on both ends of the tcp path (0 = blocking).
  std::chrono::milliseconds io_timeout{0};
};

struct WorkloadReport {
  std::string workload;
  std::string path;  // "inproc" | "tcp"
  uint64_t seed = 0;
  /// The plan's request-stream fingerprint (gen::FingerprintScripts).
  uint64_t stream_fingerprint = 0;

  uint64_t requests = 0;        // view requests submitted
  uint64_t covers_served = 0;   // requests answered with an OK cover
  uint64_t batches = 0;         // batch + burst slots submitted
  uint64_t errors = 0;          // non-admission request/batch errors
  uint64_t churn_ops = 0;
  uint64_t reopens = 0;
  uint64_t restored_lines = 0;  // warm-start restores across reopens

  /// Admission totals as reported by the path under test (stats frame
  /// on tcp, Stats() in process).
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  /// Concatenated per-burst patterns in client order ('A'/'R'/'E').
  std::string admit_pattern;

  double elapsed_s = 0;
  double covers_per_sec = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double hit_rate_pct = 0;

  std::string ToString() const;
};

/// Runs the plan to completion. Fails (typed) on setup errors — a spec
/// that cannot open, a server that cannot bind, a missing snapshot_dir
/// for a spilling plan; per-request serving errors are counted, not
/// fatal.
Result<WorkloadReport> RunWorkload(const gen::WorkloadPlan& plan,
                                   const RunnerOptions& options);

}  // namespace workload
}  // namespace cfdprop

#endif  // CFDPROP_WORKLOAD_RUNNER_H_
