// Scenario workload plans for the cbench-style harness (cfdprop_bench):
// a WorkloadPlan is a fully deterministic function of WorkloadOptions —
// per-tenant generated specs (src/gen generators under names V0..Vn,
// plus U0..Un union views where the scenario serves unions) and one op
// script per client. The runner (src/workload/runner.h) executes the
// same plan over either the in-process CatalogService or the TCP
// CoverClient→CoverServer path, which is what makes the two paths
// comparable: they serve byte-identical request streams.
//
// Determinism is a feature under test: SerializeScripts renders the
// request stream to canonical bytes and FingerprintScripts hashes them,
// so "same --seed ⇒ byte-identical stream" is a plain string compare.

#ifndef CFDPROP_GEN_WORKLOAD_H_
#define CFDPROP_GEN_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/parser/parser.h"

namespace cfdprop {
namespace gen {

/// The seven scenarios. Names (WorkloadKindName) are the --workload
/// spellings: hit-heavy, churn-heavy, union-heavy, tenant-churn,
/// burst-reject, snapshot-restart, mixed.
enum class WorkloadKind {
  kHitHeavy,         // hot SPC name stream, ~90% cache hits
  kChurnHeavy,       // hit-heavy + AddCfd/RetractCfd churn interleaved
  kUnionHeavy,       // SPCU names: k-partial-hit union assembly
  kTenantChurn,      // serving while tenants are dropped and re-opened
  kBurstReject,      // pipelined bursts against tight admission caps
  kSnapshotRestart,  // serve cold -> spill -> drop -> warm reopen -> serve
  kMixed,            // all of the above, interleaved
};

const char* WorkloadKindName(WorkloadKind kind);
Result<WorkloadKind> ParseWorkloadKind(const std::string& name);
std::vector<WorkloadKind> AllWorkloadKinds();

struct WorkloadOptions {
  WorkloadKind kind = WorkloadKind::kHitHeavy;
  /// Tenants opened for the run (tenant0..tenantN-1).
  size_t tenants = 2;
  /// Concurrent client scripts. Pinned-tenant scenarios (burst-reject,
  /// snapshot-restart) clamp this to `tenants` so each tenant has one
  /// deterministic driver.
  size_t clients = 2;
  /// Rounds per client script.
  size_t rounds = 5;
  uint64_t seed = 42;
  /// View-name requests per batch.
  size_t batch_size = 40;
  /// Batches pipelined per burst op (burst-reject / mixed).
  size_t burst = 6;
  /// Admission caps applied by the runner for burst-reject and mixed
  /// (the other scenarios run uncapped).
  uint64_t max_inflight = 1;
  uint64_t max_queue = 1;
  /// Generator sizes per tenant spec.
  size_t num_cfds = 120;
  size_t num_views = 40;
};

/// One step of a client script.
struct WorkloadOp {
  enum class Type {
    kBatch,     // submit batches[0], wait for the reply
    kBurst,     // pipeline all of `batches` in one admission decision
    kChurnAdd,  // AddCfd of the tenant's churn CFD to Σ0
    kChurnDrop, // RetractCfd of the same
    kSpill,     // spill the tenant's cover cache to disk
    kReopen,    // drop the tenant and re-open it (warm when spilled)
  };
  Type type = Type::kBatch;
  /// Tenant index into the plan's tenant list.
  size_t tenant = 0;
  /// View-name batches (kBatch: exactly one; kBurst: `burst` of them).
  std::vector<std::vector<std::string>> batches;
};

struct WorkloadPlan {
  WorkloadOptions options;
  /// Effective admission caps the runner must configure (0 = off).
  uint64_t max_inflight = 0;
  uint64_t max_queue = 0;
  /// Whether the plan's specs carry U* union views.
  bool with_unions = false;
  /// Whether any op spills/reopens (the runner then needs snapshot_dir).
  bool needs_snapshots = false;
  /// scripts[c] is client c's op sequence.
  std::vector<std::vector<WorkloadOp>> scripts;

  std::string TenantName(size_t t) const {
    return "tenant" + std::to_string(t);
  }
};

/// Builds the deterministic plan for `options` (clamping degenerate
/// knobs: >=1 tenant/client/round, pinned scenarios clamp clients).
WorkloadPlan BuildWorkloadPlan(const WorkloadOptions& options);

/// (Re)generates tenant t's spec — catalog, Σ0 source CFDs, V*/U*
/// views — purely from the plan's options, so a reopen after drop
/// rebuilds the exact same structures (and a warm start's Σ fingerprint
/// matches the spilled snapshot).
Spec BuildTenantSpec(const WorkloadPlan& plan, size_t tenant);

/// The canonical byte rendering of every client script, tenants and ops
/// in order. Two plans with equal options render equal bytes.
std::string SerializeScripts(const WorkloadPlan& plan);

/// FNV-1a over SerializeScripts — the request-stream fingerprint the
/// reports and determinism tests compare.
uint64_t FingerprintScripts(const WorkloadPlan& plan);

}  // namespace gen
}  // namespace cfdprop

#endif  // CFDPROP_GEN_WORKLOAD_H_
