#include "src/gen/generators.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/cfd/implication.h"
#include "src/data/validate.h"

namespace cfdprop {

namespace {

/// k distinct values drawn from [0, n).
std::vector<uint32_t> SampleDistinct(Rng& rng, size_t k, size_t n) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector; fine at our sizes.
  std::vector<uint32_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + rng.Below(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Value RandomConstant(Catalog& catalog, Rng& rng, const Domain& domain,
                     uint32_t lo, uint32_t hi) {
  if (domain.finite()) {
    const auto& vals = domain.values();
    return vals[rng.Below(vals.size())];
  }
  return catalog.pool().InternInt(
      static_cast<int64_t>(rng.Uniform(lo, hi)));
}

}  // namespace

Catalog GenerateSchema(const SchemaGenOptions& options, uint64_t seed) {
  Rng rng(seed);
  Catalog catalog;
  for (size_t r = 0; r < options.num_relations; ++r) {
    size_t arity = rng.Uniform(options.min_arity, options.max_arity);
    std::vector<Attribute> attrs;
    attrs.reserve(arity);
    for (size_t a = 0; a < arity; ++a) {
      std::string name = "A" + std::to_string(a);
      if (options.finite_pct > 0 && rng.Percent(options.finite_pct)) {
        std::vector<Value> values;
        values.reserve(options.finite_domain_size);
        for (size_t v = 0; v < options.finite_domain_size; ++v) {
          values.push_back(
              catalog.pool().Intern("d" + std::to_string(v)));
        }
        attrs.push_back(Attribute{std::move(name),
                                  Domain::Finite("enum", std::move(values))});
      } else {
        attrs.push_back(Attribute{std::move(name), Domain::Infinite()});
      }
    }
    auto added =
        catalog.AddRelation("R" + std::to_string(r), std::move(attrs));
    assert(added.ok());
    (void)added;
  }
  return catalog;
}

std::vector<CFD> GenerateCFDs(Catalog& catalog, const CFDGenOptions& options,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<CFD> out;
  out.reserve(options.count);
  while (out.size() < options.count) {
    RelationId rel =
        static_cast<RelationId>(rng.Below(catalog.num_relations()));
    const RelationSchema& schema = catalog.relation(rel);
    size_t max_lhs = std::min(options.max_lhs, schema.arity() - 1);
    size_t min_lhs = std::min(options.min_lhs, max_lhs);
    size_t k = rng.Uniform(min_lhs, max_lhs);

    // k LHS attributes plus a distinct RHS.
    std::vector<uint32_t> picked = SampleDistinct(rng, k + 1, schema.arity());
    AttrIndex rhs = picked.back();
    picked.pop_back();

    std::vector<AttrIndex> lhs(picked.begin(), picked.end());
    std::vector<PatternValue> pats;
    pats.reserve(k);
    for (AttrIndex a : lhs) {
      if (rng.Percent(options.var_pct)) {
        pats.push_back(PatternValue::Wildcard());
      } else {
        pats.push_back(PatternValue::Constant(
            RandomConstant(catalog, rng, schema.attr(a).domain,
                           options.const_lo, options.const_hi)));
      }
    }
    PatternValue rhs_pat =
        rng.Percent(options.var_pct)
            ? PatternValue::Wildcard()
            : PatternValue::Constant(
                  RandomConstant(catalog, rng, schema.attr(rhs).domain,
                                 options.const_lo, options.const_hi));

    // A constant RHS with an all-wildcard LHS forces the same constant
    // on EVERY tuple; two such CFDs on one attribute make Sigma globally
    // unsatisfiable, which would reduce every experiment to the trivial
    // always-empty case. Anchor such CFDs with one LHS constant.
    if (rhs_pat.is_constant() && !lhs.empty()) {
      bool has_const = false;
      for (const PatternValue& p : pats) has_const |= p.is_constant();
      if (!has_const) {
        size_t pos = rng.Below(pats.size());
        pats[pos] = PatternValue::Constant(
            RandomConstant(catalog, rng, schema.attr(lhs[pos]).domain,
                           options.const_lo, options.const_hi));
      }
    }

    Result<CFD> made =
        CFD::Make(rel, std::move(lhs), std::move(pats), rhs, rhs_pat);
    if (made.ok() && !made.value().IsTrivial()) {
      out.push_back(std::move(made).value());
    }
  }
  return out;
}

Result<SPCView> GenerateSPCView(Catalog& catalog,
                                const ViewGenOptions& options,
                                uint64_t seed) {
  if (options.num_atoms == 0) {
    return Status::InvalidArgument("view must have at least one atom");
  }
  Rng rng(seed);
  SPCView view;
  size_t u = 0;
  for (size_t j = 0; j < options.num_atoms; ++j) {
    RelationId rel =
        static_cast<RelationId>(rng.Below(catalog.num_relations()));
    view.atoms.push_back(rel);
    u += catalog.relation(rel).arity();
  }

  // Distinct left columns: two constant selections on one column would
  // almost surely conflict (constants range over [1, 100000]) and reduce
  // the view to the degenerate always-empty case.
  size_t num_selections = std::min(options.num_selections, u);
  std::vector<uint32_t> sel_cols = SampleDistinct(rng, num_selections, u);
  for (size_t f = 0; f < num_selections; ++f) {
    ColumnId a = static_cast<ColumnId>(sel_cols[f]);
    if (rng.Percent(options.const_selection_pct)) {
      Value v = catalog.pool().InternInt(
          static_cast<int64_t>(rng.Uniform(options.const_lo,
                                           options.const_hi)));
      view.selections.push_back(Selection::ConstantEq(a, v));
    } else {
      ColumnId b = static_cast<ColumnId>(rng.Below(u));
      if (b == a) b = static_cast<ColumnId>((b + 1) % u);
      view.selections.push_back(Selection::ColumnEq(a, b));
    }
  }

  size_t y = std::min(options.num_projection, u);
  if (y == 0) return Status::InvalidArgument("empty projection");
  std::vector<uint32_t> cols = SampleDistinct(rng, y, u);
  std::sort(cols.begin(), cols.end());
  for (size_t i = 0; i < cols.size(); ++i) {
    view.output.push_back(OutputColumn::Projected(
        "c" + std::to_string(i), static_cast<ColumnId>(cols[i])));
  }
  CFDPROP_RETURN_NOT_OK(view.Validate(catalog));
  return view;
}

Result<Database> GenerateSatisfyingDatabase(Catalog& catalog,
                                            const std::vector<CFD>& sigma,
                                            const DataGenOptions& options,
                                            uint64_t seed) {
  // An unsatisfiable sigma can never be repaired into; fail fast with a
  // clear status instead of burning repair rounds.
  for (RelationId r = 0; r < catalog.num_relations(); ++r) {
    std::vector<CFD> on_r;
    for (const CFD& c : sigma) {
      if (c.relation == r) on_r.push_back(c);
    }
    CFDPROP_ASSIGN_OR_RETURN(
        bool sat, IsSatisfiable(on_r, catalog.relation(r).arity()));
    if (!sat) {
      return Status::Inconsistent("sigma is unsatisfiable on relation " +
                                  catalog.relation(r).name());
    }
  }

  Rng rng(seed);
  Database db(catalog);

  // Random fill. Finite-domain attributes draw from their domain.
  for (RelationId r = 0; r < catalog.num_relations(); ++r) {
    const RelationSchema& schema = catalog.relation(r);
    for (size_t i = 0; i < options.rows_per_relation; ++i) {
      Tuple t;
      t.reserve(schema.arity());
      for (AttrIndex a = 0; a < schema.arity(); ++a) {
        const Domain& dom = schema.attr(a).domain;
        if (dom.finite()) {
          t.push_back(dom.values()[rng.Below(dom.values().size())]);
        } else {
          t.push_back(catalog.pool().InternInt(
              static_cast<int64_t>(rng.Uniform(1, options.value_range))));
        }
      }
      CFDPROP_RETURN_NOT_OK(db.Insert(r, std::move(t)));
    }
  }

  // Repair rounds. Value repair rewrites violating RHS cells (pattern
  // constant for single-tuple violations, the smaller value for pair
  // disagreements — monotone, so pair rules cannot oscillate). A tuple
  // whose LHS matches two CFDs that force different constants on the
  // same attribute cannot be value-repaired at all; after half the round
  // budget we switch to deleting violating tuples, which always
  // converges (sigma is satisfiable and CFDs are closed under subsets).
  for (size_t round = 0; round < options.max_repair_rounds; ++round) {
    const bool delete_mode = round >= options.max_repair_rounds / 2;
    bool changed = false;
    for (RelationId r = 0; r < catalog.num_relations(); ++r) {
      Relation& rel = db.relation(r);
      std::vector<Tuple> rows = rel.tuples();
      std::vector<bool> doomed(rows.size(), false);
      for (const CFD& cfd : sigma) {
        if (cfd.relation != r) continue;
        CFDPROP_ASSIGN_OR_RETURN(
            std::vector<Violation> violations,
            FindViolations(rows, cfd, rel.schema().arity()));
        for (const Violation& v : violations) {
          changed = true;
          if (delete_mode) {
            doomed[v.second] = true;
          } else if (v.first == v.second) {
            rows[v.first][cfd.rhs] = cfd.rhs_pat.value();
          } else {
            Value m = std::min(rows[v.first][cfd.rhs],
                               rows[v.second][cfd.rhs]);
            rows[v.first][cfd.rhs] = m;
            rows[v.second][cfd.rhs] = m;
          }
        }
      }
      // Rebuild the relation (set semantics may collapse duplicates).
      Relation rebuilt(&catalog.relation(r), r);
      for (size_t i = 0; i < rows.size(); ++i) {
        if (doomed[i]) continue;
        CFDPROP_RETURN_NOT_OK(rebuilt.Insert(std::move(rows[i])));
      }
      rel = std::move(rebuilt);
    }
    if (!changed) {
      CFDPROP_ASSIGN_OR_RETURN(bool ok, SatisfiesAll(db, sigma));
      if (ok) return db;
    }
  }
  return Status::Inconsistent(
      "database repair did not converge; try another seed or fewer CFDs");
}

}  // namespace cfdprop
