#include "src/gen/workload.h"

#include <algorithm>
#include <iterator>
#include <string_view>
#include <utility>

#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/gen/generators.h"

namespace cfdprop {
namespace gen {

namespace {

constexpr const char* kKindNames[] = {
    "hit-heavy",    "churn-heavy",      "union-heavy", "tenant-churn",
    "burst-reject", "snapshot-restart", "mixed",
};

/// Per-client RNG stream: SplitMix64 decorrelates neighboring seeds so
/// seed 42/client 0 and seed 43/client 0 share nothing.
uint64_t ClientSeed(uint64_t seed, size_t client) {
  return SplitMix64(seed ^ (0x9e3779b97f4a7c15ull * (client + 1)));
}

/// A batch of `n` view names over `unique` distinct views of `prefix`
/// ("V" for SPC views, "U" for unions). Small `unique` against a larger
/// view pool is what makes the stream hit-heavy once warm.
std::vector<std::string> MakeBatch(Rng& rng, const char* prefix,
                                   size_t unique, size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(prefix + std::to_string(rng.Below(unique)));
  }
  return names;
}

WorkloadOp BatchOp(size_t tenant, std::vector<std::string> names) {
  WorkloadOp op;
  op.type = WorkloadOp::Type::kBatch;
  op.tenant = tenant;
  op.batches.push_back(std::move(names));
  return op;
}

WorkloadOp SimpleOp(WorkloadOp::Type type, size_t tenant) {
  WorkloadOp op;
  op.type = type;
  op.tenant = tenant;
  return op;
}

const char* OpName(WorkloadOp::Type type) {
  switch (type) {
    case WorkloadOp::Type::kBatch:
      return "batch";
    case WorkloadOp::Type::kBurst:
      return "burst";
    case WorkloadOp::Type::kChurnAdd:
      return "churn-add";
    case WorkloadOp::Type::kChurnDrop:
      return "churn-drop";
    case WorkloadOp::Type::kSpill:
      return "spill";
    case WorkloadOp::Type::kReopen:
      return "reopen";
  }
  return "?";
}

}  // namespace

const char* WorkloadKindName(WorkloadKind kind) {
  return kKindNames[static_cast<size_t>(kind)];
}

Result<WorkloadKind> ParseWorkloadKind(const std::string& name) {
  for (size_t i = 0; i < std::size(kKindNames); ++i) {
    if (name == kKindNames[i]) return static_cast<WorkloadKind>(i);
  }
  return Status::InvalidArgument("unknown workload '" + name +
                                 "' (want hit-heavy, churn-heavy, "
                                 "union-heavy, tenant-churn, burst-reject, "
                                 "snapshot-restart or mixed)");
}

std::vector<WorkloadKind> AllWorkloadKinds() {
  std::vector<WorkloadKind> kinds;
  for (size_t i = 0; i < std::size(kKindNames); ++i) {
    kinds.push_back(static_cast<WorkloadKind>(i));
  }
  return kinds;
}

WorkloadPlan BuildWorkloadPlan(const WorkloadOptions& options) {
  WorkloadPlan plan;
  plan.options = options;
  WorkloadOptions& o = plan.options;
  o.tenants = std::max<size_t>(1, o.tenants);
  o.clients = std::max<size_t>(1, o.clients);
  o.rounds = std::max<size_t>(1, o.rounds);
  o.batch_size = std::max<size_t>(1, o.batch_size);
  o.burst = std::max<size_t>(2, o.burst);
  o.num_views = std::max<size_t>(4, o.num_views);
  o.num_cfds = std::max<size_t>(8, o.num_cfds);

  const WorkloadKind kind = o.kind;
  // Pinned scenarios: exactly one driver per tenant, so the in-service
  // count a burst observes — and therefore its admit/reject pattern —
  // is a pure function of the plan.
  const bool pinned = kind == WorkloadKind::kBurstReject ||
                      kind == WorkloadKind::kSnapshotRestart;
  if (pinned) o.clients = std::min(o.clients, o.tenants);
  plan.with_unions =
      kind == WorkloadKind::kUnionHeavy || kind == WorkloadKind::kMixed;
  plan.needs_snapshots = kind == WorkloadKind::kSnapshotRestart ||
                         kind == WorkloadKind::kTenantChurn;
  if (kind == WorkloadKind::kBurstReject || kind == WorkloadKind::kMixed) {
    plan.max_inflight = o.max_inflight;
    plan.max_queue = o.max_queue;
  }

  // ~90% of requests land on num_views/10 hot views.
  const size_t unique = std::max<size_t>(1, o.num_views / 10);

  plan.scripts.resize(o.clients);
  for (size_t c = 0; c < o.clients; ++c) {
    Rng rng(ClientSeed(o.seed, c));
    std::vector<WorkloadOp>& script = plan.scripts[c];
    switch (kind) {
      case WorkloadKind::kHitHeavy:
      case WorkloadKind::kUnionHeavy: {
        const char* prefix = kind == WorkloadKind::kUnionHeavy ? "U" : "V";
        for (size_t r = 0; r < o.rounds; ++r) {
          script.push_back(BatchOp((c + r) % o.tenants,
                                   MakeBatch(rng, prefix, unique,
                                             o.batch_size)));
        }
        break;
      }
      case WorkloadKind::kChurnHeavy: {
        for (size_t r = 0; r < o.rounds; ++r) {
          const size_t t = (c + r) % o.tenants;
          // Client 0 is the churner: a balanced AddCfd/RetractCfd pair
          // around its batch, so every round invalidates that tenant's
          // Σ0-tagged lines twice and Σ ends each round unchanged.
          if (c == 0) script.push_back(SimpleOp(WorkloadOp::Type::kChurnAdd, t));
          script.push_back(BatchOp(t, MakeBatch(rng, "V", unique,
                                                o.batch_size)));
          if (c == 0) {
            script.push_back(SimpleOp(WorkloadOp::Type::kChurnDrop, t));
          }
        }
        break;
      }
      case WorkloadKind::kTenantChurn: {
        for (size_t r = 0; r < o.rounds; ++r) {
          script.push_back(BatchOp((c + r) % o.tenants,
                                   MakeBatch(rng, "V", unique,
                                             o.batch_size)));
          // Client 0 cycles one tenant per round through
          // spill -> drop -> warm reopen while the others keep serving;
          // a submit that lands in the drop window is a *typed* NotFound
          // the runner counts, never a wedge or a crash.
          if (c == 0) {
            const size_t t = r % o.tenants;
            script.push_back(SimpleOp(WorkloadOp::Type::kSpill, t));
            script.push_back(SimpleOp(WorkloadOp::Type::kReopen, t));
          }
        }
        break;
      }
      case WorkloadKind::kBurstReject: {
        for (size_t r = 0; r < o.rounds; ++r) {
          WorkloadOp op;
          op.type = WorkloadOp::Type::kBurst;
          op.tenant = c;  // pinned
          for (size_t b = 0; b < o.burst; ++b) {
            op.batches.push_back(MakeBatch(rng, "V", unique, o.batch_size));
          }
          script.push_back(std::move(op));
        }
        break;
      }
      case WorkloadKind::kSnapshotRestart: {
        // Client c owns tenants t ≡ c (mod clients). Cold phase, then
        // spill + drop + warm reopen of every owned tenant, then the
        // warm phase — whose hits come out of the restored snapshot.
        std::vector<size_t> own;
        for (size_t t = c; t < o.tenants; t += o.clients) own.push_back(t);
        const size_t cold = std::max<size_t>(1, o.rounds / 2);
        for (size_t r = 0; r < cold; ++r) {
          script.push_back(BatchOp(own[r % own.size()],
                                   MakeBatch(rng, "V", unique,
                                             o.batch_size)));
        }
        for (size_t t : own) {
          script.push_back(SimpleOp(WorkloadOp::Type::kSpill, t));
          script.push_back(SimpleOp(WorkloadOp::Type::kReopen, t));
        }
        for (size_t r = cold; r < o.rounds; ++r) {
          script.push_back(BatchOp(own[r % own.size()],
                                   MakeBatch(rng, "V", unique,
                                             o.batch_size)));
        }
        break;
      }
      case WorkloadKind::kMixed: {
        for (size_t r = 0; r < o.rounds; ++r) {
          const size_t t = (c + r) % o.tenants;
          if (c == 0 && r % 3 == 0) {
            script.push_back(SimpleOp(WorkloadOp::Type::kChurnAdd, t));
          }
          script.push_back(BatchOp(t, MakeBatch(rng, "V", unique,
                                                o.batch_size)));
          if (r % 2 == 1) {
            script.push_back(BatchOp(t, MakeBatch(rng, "U", unique,
                                                  o.batch_size)));
          }
          if (c == 0 && r % 3 == 0) {
            script.push_back(SimpleOp(WorkloadOp::Type::kChurnDrop, t));
          }
          if (r % 4 == 2) {
            WorkloadOp op;
            op.type = WorkloadOp::Type::kBurst;
            op.tenant = c % o.tenants;
            for (size_t b = 0; b < o.burst; ++b) {
              op.batches.push_back(MakeBatch(rng, "V", unique,
                                             o.batch_size));
            }
            script.push_back(std::move(op));
          }
        }
        break;
      }
    }
  }
  return plan;
}

Spec BuildTenantSpec(const WorkloadPlan& plan, size_t tenant) {
  const WorkloadOptions& o = plan.options;
  const uint64_t seed = SplitMix64(o.seed) + 7919 * tenant;

  Spec spec;
  SchemaGenOptions schema_options;  // 10 relations, 10-20 attributes
  spec.catalog = GenerateSchema(schema_options, seed);

  CFDGenOptions cfd_options;
  cfd_options.count = o.num_cfds;
  cfd_options.min_lhs = 2;
  cfd_options.max_lhs = 5;
  spec.source_cfds = GenerateCFDs(spec.catalog, cfd_options, seed + 1);

  ViewGenOptions view_options;
  view_options.num_projection = 10;
  view_options.num_selections = 4;
  view_options.num_atoms = 2;
  std::vector<SPCView> views;
  views.reserve(o.num_views);
  for (size_t i = 0; i < o.num_views; ++i) {
    // Generated atoms always have >= 20 Ec columns (two relations of
    // arity >= 10), so |Y| = 10 is never clamped and generation cannot
    // fail — but stay honest about the Result.
    auto view = GenerateSPCView(spec.catalog, view_options, seed + 10 + i);
    if (!view.ok()) {
      --i;  // deterministic retry with the next seed
      continue;
    }
    views.push_back(std::move(view).value());
  }
  for (size_t i = 0; i < views.size(); ++i) {
    std::string name = "V" + std::to_string(i);
    spec.view_names.push_back(name);
    spec.views.emplace(std::move(name), SPCUView(views[i]));
  }
  if (plan.with_unions) {
    // U_i = V_i ∪ V_{i+1}: every disjunct is a live SPC cache line, so
    // union serving is the k-partial-hit assembly path.
    for (size_t i = 0; i < views.size(); ++i) {
      SPCUView u;
      u.disjuncts.push_back(views[i]);
      u.disjuncts.push_back(views[(i + 1) % views.size()]);
      std::string name = "U" + std::to_string(i);
      spec.view_names.push_back(name);
      spec.views.emplace(std::move(name), std::move(u));
    }
  }
  return spec;
}

std::string SerializeScripts(const WorkloadPlan& plan) {
  std::string out;
  out += "workload=";
  out += WorkloadKindName(plan.options.kind);
  out += " seed=" + std::to_string(plan.options.seed);
  out += " tenants=" + std::to_string(plan.options.tenants);
  out += " clients=" + std::to_string(plan.options.clients) + "\n";
  for (size_t c = 0; c < plan.scripts.size(); ++c) {
    out += "client " + std::to_string(c) + "\n";
    for (const WorkloadOp& op : plan.scripts[c]) {
      out += OpName(op.type);
      out += " t=" + std::to_string(op.tenant);
      for (const std::vector<std::string>& batch : op.batches) {
        out += " [";
        for (size_t i = 0; i < batch.size(); ++i) {
          if (i) out += ",";
          out += batch[i];
        }
        out += "]";
      }
      out += "\n";
    }
  }
  return out;
}

uint64_t FingerprintScripts(const WorkloadPlan& plan) {
  const std::string bytes = SerializeScripts(plan);
  Fnv1aHasher hasher;
  hasher.Mix(std::string_view(bytes));
  return hasher.digest();
}

}  // namespace gen
}  // namespace cfdprop
