// Workload generators reproducing the paper's experimental setting
// (Section 5): a schema generator ("at least 10 relations, each with 10
// to 20 attributes"), a CFD generator (parameters m, per-CFD LHS size,
// var%), and an SPC view generator (parameters |Y|, |F|, |Ec|, constants
// drawn from [1, 100000]).
//
// All generators are deterministic in their seed (xoshiro256**), so the
// benchmarks and property tests are reproducible.

#ifndef CFDPROP_GEN_GENERATORS_H_
#define CFDPROP_GEN_GENERATORS_H_

#include <vector>

#include "src/algebra/view.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/cfd/cfd.h"
#include "src/data/database.h"
#include "src/schema/schema.h"

namespace cfdprop {

struct SchemaGenOptions {
  size_t num_relations = 10;
  size_t min_arity = 10;
  size_t max_arity = 20;

  /// Fraction (percent) of attributes given a finite domain — 0 for the
  /// infinite-domain experiments of Section 5, nonzero for the
  /// general-setting decision benchmarks (Table 1).
  uint32_t finite_pct = 0;
  size_t finite_domain_size = 4;
};

/// Generates a catalog R0(A0..), R1(..), ...
Catalog GenerateSchema(const SchemaGenOptions& options, uint64_t seed);

struct CFDGenOptions {
  /// m: total number of CFDs (spread uniformly over the relations, so
  /// the per-relation average n is m / num_relations).
  size_t count = 200;

  /// Per-CFD LHS size is uniform in [min_lhs, LHS] (the paper varies
  /// LHS from 3 to 9 with "the number of attributes in each CFD ranged
  /// from 3 to 9").
  size_t min_lhs = 3;
  size_t max_lhs = 9;

  /// var%: the percentage of pattern entries filled with '_'; the rest
  /// draw random constants.
  uint32_t var_pct = 40;

  /// Range of generated constants (interned as decimal strings).
  uint32_t const_lo = 1;
  uint32_t const_hi = 100000;
};

/// Generates `count` source CFDs over the catalog's relations. Constants
/// on finite-domain attributes are drawn from the attribute's domain.
std::vector<CFD> GenerateCFDs(Catalog& catalog, const CFDGenOptions& options,
                              uint64_t seed);

struct ViewGenOptions {
  size_t num_projection = 25;  // |Y|
  size_t num_selections = 10;  // |F|
  size_t num_atoms = 4;        // |Ec|

  /// Probability (percent) that a selection conjunct is A = 'a' rather
  /// than A = B.
  uint32_t const_selection_pct = 50;

  uint32_t const_lo = 1;
  uint32_t const_hi = 100000;
};

/// Generates an SPC view pi_Y(sigma_F(R_{i1} x ... x R_{i|Ec|})) over the
/// catalog. |Y| is clamped to the number of Ec columns.
Result<SPCView> GenerateSPCView(Catalog& catalog,
                                const ViewGenOptions& options, uint64_t seed);

struct DataGenOptions {
  size_t rows_per_relation = 40;

  /// Values drawn from [1, value_range]; a small range makes pattern
  /// constants actually match so repairs exercise the CFD semantics.
  uint32_t value_range = 8;

  /// Rounds of violation repair before giving up.
  size_t max_repair_rounds = 64;
};

/// Generates a random database over the catalog and repairs it until it
/// satisfies `sigma` (chase-style: violating RHS values are overwritten
/// by the group leader's value or the pattern constant). Fails with
/// Inconsistent when repair does not converge within the round budget.
Result<Database> GenerateSatisfyingDatabase(Catalog& catalog,
                                            const std::vector<CFD>& sigma,
                                            const DataGenOptions& options,
                                            uint64_t seed);

}  // namespace cfdprop

#endif  // CFDPROP_GEN_GENERATORS_H_
