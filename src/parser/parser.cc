#include "src/parser/parser.h"

#include <cctype>

namespace cfdprop {

namespace {

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

enum class TokKind {
  kWord,    // identifier, bare value, or number
  kString,  // double-quoted value
  kPunct,   // single punctuation character
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#') {  // comment to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '"') {
        CFDPROP_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size()) {
          char w = text_[pos_];
          if (std::isalnum(static_cast<unsigned char>(w)) || w == '_') {
            ++pos_;
            continue;
          }
          // '-' joins words (the add-cfd / drop-cfd statement keywords)
          // unless it starts an '->' arrow or ends the word.
          if (w == '-' && pos_ + 1 < text_.size() &&
              (std::isalnum(static_cast<unsigned char>(text_[pos_ + 1])) ||
               text_[pos_ + 1] == '_')) {
            ++pos_;
            continue;
          }
          break;
        }
        out.push_back(Token{TokKind::kWord,
                            std::string(text_.substr(start, pos_ - start)),
                            line_});
        continue;
      }
      // '->' is two characters; everything else is single-char punct.
      if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
        out.push_back(Token{TokKind::kPunct, "->", line_});
        pos_ += 2;
        continue;
      }
      static constexpr std::string_view kPunct = "()[]{},.;=:";
      if (kPunct.find(c) != std::string_view::npos) {
        out.push_back(Token{TokKind::kPunct, std::string(1, c), line_});
        ++pos_;
        continue;
      }
      return Status::InvalidArgument("line " + std::to_string(line_) +
                                     ": unexpected character '" +
                                     std::string(1, c) + "'");
    }
    out.push_back(Token{TokKind::kEnd, "", line_});
    return out;
  }

 private:
  Result<Token> LexString() {
    size_t start_line = line_;
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') ++line_;
      value.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("line " + std::to_string(start_line) +
                                     ": unterminated string");
    }
    ++pos_;  // closing quote
    return Token{TokKind::kString, std::move(value), start_line};
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Spec> Parse() {
    while (!AtEnd()) {
      if (Accept(";")) continue;  // stray separators are harmless
      CFDPROP_ASSIGN_OR_RETURN(Token head, ExpectWord("statement keyword"));
      if (head.text == "relation") {
        CFDPROP_RETURN_NOT_OK(ParseRelation());
      } else if (head.text == "cfd" || head.text == "fd") {
        CFDPROP_RETURN_NOT_OK(ParseCFD());
      } else if (head.text == "add-cfd") {
        CFDPROP_RETURN_NOT_OK(ParseCFD(CfdMode::kAdd));
      } else if (head.text == "drop-cfd") {
        CFDPROP_RETURN_NOT_OK(ParseCFD(CfdMode::kDrop));
      } else if (head.text == "union") {
        CFDPROP_RETURN_NOT_OK(ParseUnion());
      } else if (head.text == "eq") {
        CFDPROP_RETURN_NOT_OK(ParseEq());
      } else if (head.text == "view") {
        CFDPROP_RETURN_NOT_OK(ParseView());
      } else if (head.text == "insert") {
        CFDPROP_RETURN_NOT_OK(ParseInsert());
      } else if (head.text == "serve") {
        CFDPROP_RETURN_NOT_OK(ParseServe());
      } else {
        return Error(head, "unknown statement '" + head.text + "'");
      }
    }
    return std::move(spec_);
  }

 private:
  // --- token helpers --------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool Accept(std::string_view punct) {
    if (Peek().kind == TokKind::kPunct && Peek().text == punct) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptWord(std::string_view word) {
    if (Peek().kind == TokKind::kWord && Peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(std::string_view punct) {
    if (!Accept(punct)) {
      return Error(Peek(), "expected '" + std::string(punct) + "'");
    }
    return Status::OK();
  }
  Result<Token> ExpectWord(std::string_view what) {
    if (Peek().kind != TokKind::kWord) {
      return Error(Peek(), "expected " + std::string(what));
    }
    return tokens_[pos_++];
  }
  /// A value: bare word or quoted string.
  Result<Token> ExpectValue() {
    if (Peek().kind != TokKind::kWord && Peek().kind != TokKind::kString) {
      return Error(Peek(), "expected a value");
    }
    return tokens_[pos_++];
  }

  Status Error(const Token& at, std::string message) const {
    return Status::InvalidArgument("line " + std::to_string(at.line) + ": " +
                                   std::move(message));
  }

  // --- statements -----------------------------------------------------

  // relation NAME '(' attr [ '{' v (',' v)* '}' ] (',' attr...)* ')'
  Status ParseRelation() {
    CFDPROP_ASSIGN_OR_RETURN(Token name, ExpectWord("relation name"));
    CFDPROP_RETURN_NOT_OK(Expect("("));
    std::vector<Attribute> attrs;
    do {
      CFDPROP_ASSIGN_OR_RETURN(Token attr, ExpectWord("attribute name"));
      if (Accept("{")) {
        std::vector<Value> values;
        do {
          CFDPROP_ASSIGN_OR_RETURN(Token v, ExpectValue());
          values.push_back(spec_.catalog.pool().Intern(v.text));
        } while (Accept(","));
        CFDPROP_RETURN_NOT_OK(Expect("}"));
        attrs.push_back(Attribute{
            attr.text, Domain::Finite("enum", std::move(values))});
      } else {
        attrs.push_back(Attribute{attr.text, Domain::Infinite()});
      }
    } while (Accept(","));
    CFDPROP_RETURN_NOT_OK(Expect(")"));
    CFDPROP_ASSIGN_OR_RETURN(
        RelationId id,
        spec_.catalog.AddRelation(name.text, std::move(attrs)));
    (void)id;
    return Status::OK();
  }

  /// Resolves a CFD target: a source relation or a declared view.
  /// On success sets *view_name ("" for source relations) and the
  /// callbacks used to resolve attribute names.
  Status ResolveTarget(const Token& name, std::string* view_name,
                       RelationId* relation, size_t* arity) {
    RelationId rel = spec_.catalog.FindRelation(name.text);
    if (rel != kNoRelation) {
      *view_name = "";
      *relation = rel;
      *arity = spec_.catalog.relation(rel).arity();
      return Status::OK();
    }
    auto it = spec_.views.find(name.text);
    if (it != spec_.views.end()) {
      *view_name = name.text;
      *relation = kViewSchemaId;
      *arity = it->second.OutputArity();
      return Status::OK();
    }
    return Error(name, "unknown relation or view '" + name.text + "'");
  }

  Result<AttrIndex> ResolveAttr(const std::string& view_name,
                                RelationId relation, const Token& attr) {
    AttrIndex i;
    if (relation == kViewSchemaId) {
      i = spec_.FindViewColumn(view_name, attr.text);
    } else {
      i = spec_.catalog.relation(relation).FindAttr(attr.text);
    }
    if (i == kNoAttr) {
      return Error(attr, "unknown attribute '" + attr.text + "'");
    }
    return i;
  }

  /// How a cfd-shaped statement lands in the spec: a declared dependency
  /// (cfd/fd) or a sigma churn step (add-cfd/drop-cfd).
  enum class CfdMode { kDeclare, kAdd, kDrop };

  // cfd TARGET ':' '[' [attr [= value] (',' ...)*] ']' '->' attr [= value]
  // add-cfd / drop-cfd share the body but target source relations only
  // and are recorded as mutations, not declarations.
  Status ParseCFD(CfdMode mode = CfdMode::kDeclare) {
    CFDPROP_ASSIGN_OR_RETURN(Token target, ExpectWord("relation or view"));
    std::string view_name;
    RelationId relation;
    size_t arity;
    CFDPROP_RETURN_NOT_OK(
        ResolveTarget(target, &view_name, &relation, &arity));
    if (mode != CfdMode::kDeclare && relation == kViewSchemaId) {
      return Error(target,
                   "add-cfd/drop-cfd mutate the registered source sigma; '" +
                       target.text + "' is a view");
    }
    CFDPROP_RETURN_NOT_OK(Expect(":"));
    CFDPROP_RETURN_NOT_OK(Expect("["));

    std::vector<AttrIndex> lhs;
    std::vector<PatternValue> pats;
    if (!Accept("]")) {
      do {
        CFDPROP_ASSIGN_OR_RETURN(Token attr, ExpectWord("attribute"));
        CFDPROP_ASSIGN_OR_RETURN(AttrIndex i,
                                 ResolveAttr(view_name, relation, attr));
        lhs.push_back(i);
        if (Accept("=")) {
          CFDPROP_ASSIGN_OR_RETURN(Token v, ExpectValue());
          pats.push_back(
              PatternValue::Constant(spec_.catalog.pool().Intern(v.text)));
        } else {
          pats.push_back(PatternValue::Wildcard());
        }
      } while (Accept(","));
      CFDPROP_RETURN_NOT_OK(Expect("]"));
    }
    CFDPROP_RETURN_NOT_OK(Expect("->"));
    CFDPROP_ASSIGN_OR_RETURN(Token rhs_attr, ExpectWord("RHS attribute"));
    CFDPROP_ASSIGN_OR_RETURN(AttrIndex rhs,
                             ResolveAttr(view_name, relation, rhs_attr));
    PatternValue rhs_pat = PatternValue::Wildcard();
    if (Accept("=")) {
      CFDPROP_ASSIGN_OR_RETURN(Token v, ExpectValue());
      rhs_pat = PatternValue::Constant(spec_.catalog.pool().Intern(v.text));
    }

    CFDPROP_ASSIGN_OR_RETURN(
        CFD cfd, CFD::Make(relation, std::move(lhs), std::move(pats), rhs,
                           rhs_pat));
    CFDPROP_RETURN_NOT_OK(cfd.Validate(arity));
    if (mode != CfdMode::kDeclare) {
      spec_.sigma_mutations.push_back(
          SigmaMutation{mode == CfdMode::kAdd, std::move(cfd)});
    } else if (relation == kViewSchemaId) {
      spec_.view_cfds.emplace_back(view_name, std::move(cfd));
    } else {
      spec_.source_cfds.push_back(std::move(cfd));
    }
    return Status::OK();
  }

  // union NAME '=' view (',' view)+ — an SPCU view assembled from the
  // disjuncts of previously declared views, registered like any view
  // (the engine serves it with per-disjunct cache reuse).
  Status ParseUnion() {
    CFDPROP_ASSIGN_OR_RETURN(Token name, ExpectWord("union name"));
    if (spec_.views.count(name.text) ||
        spec_.catalog.FindRelation(name.text) != kNoRelation) {
      return Error(name, "duplicate view/relation name '" + name.text + "'");
    }
    CFDPROP_RETURN_NOT_OK(Expect("="));
    SPCUView view;
    do {
      CFDPROP_ASSIGN_OR_RETURN(Token member, ExpectWord("view name"));
      auto it = spec_.views.find(member.text);
      if (it == spec_.views.end()) {
        return Error(member, "unknown view '" + member.text + "'");
      }
      for (const SPCView& d : it->second.disjuncts) {
        view.disjuncts.push_back(d);
      }
    } while (Accept(","));
    CFDPROP_RETURN_NOT_OK(view.Validate(spec_.catalog));
    spec_.view_names.push_back(name.text);
    spec_.views.emplace(name.text, std::move(view));
    return Status::OK();
  }

  // eq TARGET ':' attr '=' attr          (the special-x CFD A = B)
  Status ParseEq() {
    CFDPROP_ASSIGN_OR_RETURN(Token target, ExpectWord("relation or view"));
    std::string view_name;
    RelationId relation;
    size_t arity;
    CFDPROP_RETURN_NOT_OK(
        ResolveTarget(target, &view_name, &relation, &arity));
    CFDPROP_RETURN_NOT_OK(Expect(":"));
    CFDPROP_ASSIGN_OR_RETURN(Token a, ExpectWord("attribute"));
    CFDPROP_RETURN_NOT_OK(Expect("="));
    CFDPROP_ASSIGN_OR_RETURN(Token b, ExpectWord("attribute"));
    CFDPROP_ASSIGN_OR_RETURN(AttrIndex ia, ResolveAttr(view_name, relation, a));
    CFDPROP_ASSIGN_OR_RETURN(AttrIndex ib, ResolveAttr(view_name, relation, b));
    CFD cfd = CFD::Equality(relation, ia, ib);
    CFDPROP_RETURN_NOT_OK(cfd.Validate(arity));
    if (relation == kViewSchemaId) {
      spec_.view_cfds.emplace_back(view_name, std::move(cfd));
    } else {
      spec_.source_cfds.push_back(std::move(cfd));
    }
    return Status::OK();
  }

  // One SPC disjunct: [pi(...)] [sigma(...)] from(R1, R2, ...).
  // pi/sigma/from may appear in any order; from is mandatory.
  Result<SPCView> ParseDisjunct() {
    struct PiEntry {
      bool is_constant;
      std::string name;
      Value value = kNoValue;       // constant entries
      size_t atom = 0;              // projected entries
      std::string attr;
    };
    struct SigmaEntry {
      size_t left_atom;
      std::string left_attr;
      bool is_constant;
      Value value = kNoValue;
      size_t right_atom = 0;
      std::string right_attr;
    };
    std::vector<PiEntry> pi;
    bool have_pi = false;
    std::vector<SigmaEntry> sigma;
    std::vector<std::string> from;

    // col ref: <atom-index> '.' <attr>
    auto parse_colref = [&](size_t* atom, std::string* attr) -> Status {
      CFDPROP_ASSIGN_OR_RETURN(Token idx, ExpectWord("atom index"));
      if (idx.text.empty() || idx.text.size() > 6) {
        return Error(idx, "atom index out of range");
      }
      for (char c : idx.text) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return Error(idx, "atom index must be a number (got '" +
                                idx.text + "')");
        }
      }
      *atom = std::stoul(idx.text);
      CFDPROP_RETURN_NOT_OK(Expect("."));
      CFDPROP_ASSIGN_OR_RETURN(Token a, ExpectWord("attribute"));
      *attr = a.text;
      return Status::OK();
    };

    while (true) {
      if (AcceptWord("from")) {
        CFDPROP_RETURN_NOT_OK(Expect("("));
        do {
          CFDPROP_ASSIGN_OR_RETURN(Token rel, ExpectWord("relation name"));
          from.push_back(rel.text);
        } while (Accept(","));
        CFDPROP_RETURN_NOT_OK(Expect(")"));
      } else if (AcceptWord("pi")) {
        have_pi = true;
        CFDPROP_RETURN_NOT_OK(Expect("("));
        do {
          PiEntry e;
          if (Peek().kind == TokKind::kString) {
            e.is_constant = true;
            e.value = spec_.catalog.pool().Intern(tokens_[pos_++].text);
          } else {
            e.is_constant = false;
            CFDPROP_RETURN_NOT_OK(parse_colref(&e.atom, &e.attr));
          }
          if (AcceptWord("as")) {
            CFDPROP_ASSIGN_OR_RETURN(Token n, ExpectWord("column name"));
            e.name = n.text;
          } else if (!e.is_constant) {
            e.name = e.attr;
          } else {
            return Error(Peek(), "constant columns need 'as <name>'");
          }
          pi.push_back(std::move(e));
        } while (Accept(","));
        CFDPROP_RETURN_NOT_OK(Expect(")"));
      } else if (AcceptWord("sigma")) {
        CFDPROP_RETURN_NOT_OK(Expect("("));
        do {
          SigmaEntry e;
          CFDPROP_RETURN_NOT_OK(parse_colref(&e.left_atom, &e.left_attr));
          CFDPROP_RETURN_NOT_OK(Expect("="));
          if (Peek().kind == TokKind::kString) {
            e.is_constant = true;
            e.value = spec_.catalog.pool().Intern(tokens_[pos_++].text);
          } else {
            e.is_constant = false;
            CFDPROP_RETURN_NOT_OK(
                parse_colref(&e.right_atom, &e.right_attr));
          }
          sigma.push_back(std::move(e));
        } while (Accept(","));
        CFDPROP_RETURN_NOT_OK(Expect(")"));
      } else {
        break;
      }
    }
    if (from.empty()) {
      return Error(Peek(), "view disjunct needs from(...)");
    }

    SPCViewBuilder builder(spec_.catalog);
    for (const std::string& rel : from) {
      CFDPROP_ASSIGN_OR_RETURN(size_t atom, builder.AddAtom(rel));
      (void)atom;
    }
    for (const SigmaEntry& e : sigma) {
      if (e.left_atom >= from.size() ||
          (!e.is_constant && e.right_atom >= from.size())) {
        return Error(Peek(), "sigma atom index out of range");
      }
      if (e.is_constant) {
        CFDPROP_RETURN_NOT_OK(builder.SelectConst(
            e.left_atom, e.left_attr,
            spec_.catalog.pool().Text(e.value)));
      } else {
        CFDPROP_RETURN_NOT_OK(builder.SelectEq(e.left_atom, e.left_attr,
                                               e.right_atom, e.right_attr));
      }
    }
    if (have_pi) {
      for (const PiEntry& e : pi) {
        if (e.is_constant) {
          CFDPROP_RETURN_NOT_OK(builder.ProjectConstant(
              e.name, spec_.catalog.pool().Text(e.value)));
        } else {
          if (e.atom >= from.size()) {
            return Error(Peek(), "pi atom index out of range");
          }
          CFDPROP_RETURN_NOT_OK(builder.Project(e.atom, e.attr, e.name));
        }
      }
    }
    return builder.Build();
  }

  /// Accepts the infix 'union' that continues a view declaration. A
  /// 'union' followed by `NAME =` instead begins a standalone union
  /// statement and is left for the statement loop.
  bool AcceptUnionContinuation() {
    if (Peek().kind != TokKind::kWord || Peek().text != "union") return false;
    if (tokens_[pos_ + 1].kind == TokKind::kWord &&
        tokens_[pos_ + 2].kind == TokKind::kPunct &&
        tokens_[pos_ + 2].text == "=") {
      return false;
    }
    ++pos_;
    return true;
  }

  // view NAME '=' disjunct ('union' disjunct)*
  Status ParseView() {
    CFDPROP_ASSIGN_OR_RETURN(Token name, ExpectWord("view name"));
    if (spec_.views.count(name.text) ||
        spec_.catalog.FindRelation(name.text) != kNoRelation) {
      return Error(name, "duplicate view/relation name '" + name.text + "'");
    }
    CFDPROP_RETURN_NOT_OK(Expect("="));
    SPCUView view;
    do {
      CFDPROP_ASSIGN_OR_RETURN(SPCView disjunct, ParseDisjunct());
      view.disjuncts.push_back(std::move(disjunct));
    } while (AcceptUnionContinuation());
    CFDPROP_RETURN_NOT_OK(view.Validate(spec_.catalog));
    spec_.view_names.push_back(name.text);
    spec_.views.emplace(name.text, std::move(view));
    return Status::OK();
  }

  // serve VIEW (',' VIEW)* — declares the request round a serving CLI
  // mode replays (repeats allowed; multiple statements append). Views
  // must already be declared.
  Status ParseServe() {
    do {
      CFDPROP_ASSIGN_OR_RETURN(Token name, ExpectWord("view name"));
      if (!spec_.views.count(name.text)) {
        return Error(name, "serve names undeclared view '" + name.text + "'");
      }
      spec_.round_views.push_back(name.text);
    } while (Accept(","));
    return Status::OK();
  }

  // insert NAME '(' value (',' value)* ')'
  Status ParseInsert() {
    CFDPROP_ASSIGN_OR_RETURN(Token name, ExpectWord("relation name"));
    RelationId rel = spec_.catalog.FindRelation(name.text);
    if (rel == kNoRelation) {
      return Error(name, "unknown relation '" + name.text + "'");
    }
    CFDPROP_RETURN_NOT_OK(Expect("("));
    Tuple t;
    do {
      CFDPROP_ASSIGN_OR_RETURN(Token v, ExpectValue());
      t.push_back(spec_.catalog.pool().Intern(v.text));
    } while (Accept(","));
    CFDPROP_RETURN_NOT_OK(Expect(")"));
    if (t.size() != spec_.catalog.relation(rel).arity()) {
      return Error(name, "insert arity mismatch for '" + name.text + "'");
    }
    spec_.inserts.emplace_back(rel, std::move(t));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Spec spec_;
};

}  // namespace

AttrIndex Spec::FindViewColumn(const std::string& view_name,
                               std::string_view column) const {
  auto it = views.find(view_name);
  if (it == views.end() || it->second.disjuncts.empty()) return kNoAttr;
  const SPCView& first = it->second.disjuncts.front();
  for (size_t i = 0; i < first.output.size(); ++i) {
    if (first.output[i].name == column) return static_cast<AttrIndex>(i);
  }
  return kNoAttr;
}

Result<Database> Spec::MakeDatabase() {
  Database db(catalog);
  for (const auto& [rel, tuple] : inserts) {
    CFDPROP_RETURN_NOT_OK(db.Insert(rel, tuple));
  }
  return db;
}

Result<Spec> ParseSpec(std::string_view text) {
  Lexer lexer(text);
  CFDPROP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

std::string FormatCFD(
    const CFD& cfd, const ValuePool& pool, const std::string& target_name,
    const std::function<std::string(AttrIndex)>& attr_name) {
  if (cfd.is_special_x()) {
    return "eq " + target_name + ": " + attr_name(cfd.lhs[0]) + " = " +
           attr_name(cfd.rhs);
  }
  std::string out = "cfd " + target_name + ": [";
  for (size_t i = 0; i < cfd.lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += attr_name(cfd.lhs[i]);
    if (cfd.lhs_pats[i].is_constant()) {
      out += "=" + pool.Text(cfd.lhs_pats[i].value());
    }
  }
  out += "] -> " + attr_name(cfd.rhs);
  if (cfd.rhs_pat.is_constant()) {
    out += "=" + pool.Text(cfd.rhs_pat.value());
  }
  return out;
}

}  // namespace cfdprop
